// Top-level benchmarks: one per table and figure of the paper's evaluation
// section (each iteration regenerates the experiment on synthetic data),
// plus end-to-end benchmarks of the pipeline's hot paths.
//
// The population scale defaults to 5% of the paper's size so that
// `go test -bench=.` finishes in minutes; set CENSUSLINK_BENCH_SCALE to run
// closer to the full Table 1 magnitudes.
package censuslink_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/evolution"
	"censuslink/internal/experiments"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/store"
	"censuslink/internal/synth"
)

var (
	benchOnce sync.Once
	benchEnvV *experiments.Env
	benchErr  error
)

func benchScale() float64 {
	if s := os.Getenv("CENSUSLINK_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnvV, benchErr = experiments.NewEnv(experiments.Options{
			Scale: benchScale(), Seed: 1871,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnvV
}

// BenchmarkTable1DatasetOverview regenerates the dataset statistics table.
func BenchmarkTable1DatasetOverview(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if env.Table1() == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTable3PreMatchingConfig regenerates the ω1/ω2 × δ_low sweep.
func BenchmarkTable3PreMatchingConfig(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4GroupWeights regenerates the (α, β) sweep.
func BenchmarkTable4GroupWeights(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Iterative regenerates the iterative vs one-shot comparison.
func BenchmarkTable5Iterative(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6CollectiveBaseline regenerates the CL comparison.
func BenchmarkTable6CollectiveBaseline(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7GraphSimBaseline regenerates the GraphSim comparison.
func BenchmarkTable7GraphSimBaseline(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6EvolutionPatterns regenerates the per-pair pattern counts.
func BenchmarkFigure6EvolutionPatterns(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8PreserveChains regenerates the preserve-duration counts.
func BenchmarkTable8PreserveChains(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateSeries times the synthetic six-census generation.
func BenchmarkGenerateSeries(b *testing.B) {
	cfg := synth.TestConfig(benchScale(), 1871)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkPair times one full iterative linkage of a census pair (the
// system's hot path).
func BenchmarkLinkPair(b *testing.B) {
	env := benchEnv(b)
	old := env.Series.Dataset(1871)
	new := env.Series.Dataset(1881)
	cfg := linkage.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linkage.Link(old, new, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngines lists the two comparison paths side by side.
var benchEngines = []linkage.EngineKind{linkage.EngineNaive, linkage.EngineCompiled}

// benchShards is the shard count of the sharded bench rows — wide enough to
// exercise the partition/merge machinery, narrow enough that per-shard
// compile overhead stays visible rather than dominant.
const benchShards = 4

// benchPreMatch runs one standalone pre-matching pass; with a background
// context and no fault injection the error path is unreachable.
func benchPreMatch(oldDS, newDS *census.Dataset, f linkage.SimFunc, cfg linkage.Config,
	kind linkage.EngineKind, shards int) *linkage.PreMatchResult {
	pre, err := linkage.PreMatchOpts(context.Background(), oldDS.Records(), newDS.Records(),
		linkage.PreMatchOptions{
			Sim: f, OldYear: oldDS.Year, NewYear: newDS.Year,
			Strategies: cfg.Strategies, Workers: cfg.Workers, Engine: kind, Shards: shards,
		})
	if err != nil {
		panic(err)
	}
	return pre
}

// BenchmarkPreMatch compares one full pre-matching pass at δ_high through
// the interpreted and the compiled comparison engine. The compiled run pays
// for interning, profile construction and the blocking index on every
// iteration — the honest per-pass cost.
func BenchmarkPreMatch(b *testing.B) {
	old, new, err := synth.GeneratePair(synth.TestConfig(benchScale(), 1871), 1871, 1881)
	if err != nil {
		b.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	f := cfg.Sim.WithDelta(cfg.DeltaHigh)
	for _, kind := range benchEngines {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pre := benchPreMatch(old, new, f, cfg, kind, 0)
				if pre.Compared == 0 {
					b.Fatal("no candidate pairs compared")
				}
			}
		})
	}
}

// BenchmarkLinkSeries times the full six-census series linkage per engine.
func BenchmarkLinkSeries(b *testing.B) {
	series, err := synth.Generate(synth.TestConfig(benchScale(), 1871))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range benchEngines {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := linkage.DefaultConfig()
			cfg.Engine = kind
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := linkage.LinkSeries(series, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLinkSeriesIncremental contrasts a cold series linkage — every
// pair computed and persisted to a fresh snapshot store — with a warm
// incremental re-run over unchanged inputs, which skips the pipeline
// entirely and deserializes the snapshots instead.
func BenchmarkLinkSeriesIncremental(b *testing.B) {
	series, err := synth.Generate(synth.TestConfig(benchScale(), 1871))
	if err != nil {
		b.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
				linkage.SeriesOptions{Store: st, Incremental: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
			linkage.SeriesOptions{Store: st, Incremental: true}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
				linkage.SeriesOptions{Store: st, Incremental: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchTrajectory measures the naive-vs-compiled pre-matching speedup
// programmatically and writes a JSON report to the path named by the
// CENSUSLINK_BENCH_JSON environment variable. The report also carries the
// similarity-memo counters of one compiled Link run so the cache
// effectiveness is recorded alongside the timing.
//
// With CENSUSLINK_BENCH_BASELINE set to a previously committed report
// (BENCH_prematch.json), the test additionally acts as a performance
// regression gate: it fails when the compiled pre-matching pass has become
// more than 2x slower per op than the baseline. The test is skipped when
// neither variable is set.
func TestBenchTrajectory(t *testing.T) {
	path := os.Getenv("CENSUSLINK_BENCH_JSON")
	basePath := os.Getenv("CENSUSLINK_BENCH_BASELINE")
	if path == "" && basePath == "" {
		t.Skip("set CENSUSLINK_BENCH_JSON to write the pre-matching benchmark report, " +
			"or CENSUSLINK_BENCH_BASELINE to compare against a committed one")
	}
	old, new, err := synth.GeneratePair(synth.TestConfig(benchScale(), 1871), 1871, 1881)
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	f := cfg.Sim.WithDelta(cfg.DeltaHigh)
	run := func(kind linkage.EngineKind) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPreMatch(old, new, f, cfg, kind, 0)
			}
		})
	}
	naive := run(linkage.EngineNaive)
	compiled := run(linkage.EngineCompiled)
	speedup := float64(naive.NsPerOp()) / float64(compiled.NsPerOp())
	sharded := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPreMatch(old, new, f, cfg, linkage.EngineCompiled, benchShards)
		}
	})

	// LSH blocking rows: one compiled pre-matching pass under the MinHash/LSH
	// scheme, plus the candidate-count and true-match-coverage trade-off
	// against the default phonetic passes. The counts feed the regression
	// gate below: the scheme must keep its >= 5x pair reduction and >= 0.98
	// relative recall as the code evolves.
	lshStrategies, err := linkage.ParseBlocking("lsh")
	if err != nil {
		t.Fatal(err)
	}
	lshCfg := cfg
	lshCfg.Strategies = lshStrategies
	lshBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPreMatch(old, new, f, lshCfg, linkage.EngineCompiled, 0)
		}
	})
	truth := evaluate.TrueRecordMapping(old, new)
	countAndCoverage := func(strategies []block.Strategy) (int, float64) {
		pairs, covered := 0, 0
		block.Candidates(old.Records(), old.Year, new.Records(), new.Year, strategies,
			func(o, n *census.Record) {
				pairs++
				if truth[linkage.Pair{Old: o.ID, New: n.ID}] {
					covered++
				}
			})
		return pairs, float64(covered) / float64(len(truth))
	}
	exactPairs, exactCov := countAndCoverage(cfg.Strategies)
	lshPairs, lshCov := countAndCoverage(lshStrategies)
	lshReduction := float64(exactPairs) / float64(lshPairs)
	lshRelRecall := lshCov / exactCov
	t.Logf("lsh prematch %v/op; pairs %d vs %d exact (%.2fx reduction), relative recall %.4f",
		lshBench.NsPerOp(), lshPairs, exactPairs, lshReduction, lshRelRecall)
	if lshReduction < 5 {
		t.Errorf("LSH candidate-pair reduction %.2fx below the 5x target", lshReduction)
	}
	if lshRelRecall < 0.98 {
		t.Errorf("LSH relative recall %.4f below the 0.98 target", lshRelRecall)
	}

	statsCfg := linkage.DefaultConfig()
	statsCfg.Engine = linkage.EngineCompiled
	statsCfg.Obs = obs.NewStats(nil)
	if _, err := linkage.Link(old, new, statsCfg); err != nil {
		t.Fatal(err)
	}
	rep := statsCfg.Obs.Report()
	hits := rep.Counters[obs.SimCacheHits]
	misses := rep.Counters[obs.SimCacheMisses]

	report := map[string]any{
		"benchmark":              "PreMatch",
		"scale":                  benchScale(),
		"naive_ns_op":            naive.NsPerOp(),
		"compiled_ns_op":         compiled.NsPerOp(),
		"prematch_sharded_ns_op": sharded.NsPerOp(),
		"prematch_shards":        benchShards,
		"speedup":                speedup,
		"sim_cache_hits":         hits,
		"sim_cache_misses":       misses,
		"sim_cache_hit_rate":     float64(hits) / float64(hits+misses),
		"pruned_comparisons":     rep.Counters[obs.PrunedComparisons],

		"prematch_lsh_ns_op":           lshBench.NsPerOp(),
		"prematch_lsh_pairs":           lshPairs,
		"prematch_exact_pairs":         exactPairs,
		"prematch_lsh_pair_reduction":  lshReduction,
		"prematch_lsh_relative_recall": lshRelRecall,
	}

	// Incremental series rows: one cold pass per iteration (fresh store,
	// full pipeline) against a warm re-run served entirely from snapshots.
	series, err := synth.Generate(synth.TestConfig(benchScale(), 1871))
	if err != nil {
		t.Fatal(err)
	}
	seriesCfg := linkage.DefaultConfig()
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := linkage.LinkSeriesOpts(context.Background(), series, seriesCfg,
				linkage.SeriesOptions{Store: st, Incremental: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	warmStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := linkage.LinkSeriesOpts(context.Background(), series, seriesCfg,
		linkage.SeriesOptions{Store: warmStore, Incremental: true}); err != nil {
		t.Fatal(err)
	}
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linkage.LinkSeriesOpts(context.Background(), series, seriesCfg,
				linkage.SeriesOptions{Store: warmStore, Incremental: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	incSpeedup := float64(cold.NsPerOp()) / float64(warm.NsPerOp())
	report["series_cold_ns_op"] = cold.NsPerOp()
	report["series_warm_ns_op"] = warm.NsPerOp()
	report["incremental_speedup"] = incSpeedup
	t.Logf("series cold %v/op, warm (all snapshots) %v/op, incremental speedup %.2fx",
		cold.NsPerOp(), warm.NsPerOp(), incSpeedup)

	// Append-only evolution rows: a census year arriving as an event. The
	// rebuild row is what a non-incremental service pays on arrival — relink
	// the whole series and rebuild the evolution graph and timelines from
	// scratch. The warm append row is the event path the server takes: link
	// only the new pair (snapshot-warm), clone the resident graph and extend
	// it in place. The differential test in internal/evolution proves the two
	// agree; the gate here proves the append path earns its keep. The cold
	// row is the honest no-snapshot arrival (the pair really gets linked).
	baseSeries := census.NewSeries(series.Datasets[:len(series.Datasets)-1]...)
	nextDS := series.Datasets[len(series.Datasets)-1]
	lastDS := baseSeries.Datasets[len(baseSeries.Datasets)-1]
	baseResults, err := linkage.LinkSeriesOpts(context.Background(), baseSeries, seriesCfg,
		linkage.SeriesOptions{Store: warmStore, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	baseGraph, err := evolution.BuildGraphContext(context.Background(), baseSeries, baseResults, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseTimelines := baseGraph.PersonTimelines(1)
	appendOnce := func(b *testing.B, opts linkage.SeriesOptions) {
		res, err := linkage.LinkAppend(context.Background(), baseSeries, nextDS, seriesCfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		g := baseGraph.Clone()
		if err := g.AppendYear(lastDS, nextDS, res); err != nil {
			b.Fatal(err)
		}
		if len(g.ExtendTimelines(baseTimelines)) == 0 {
			b.Fatal("append produced no timelines")
		}
	}
	rebuild := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := linkage.LinkSeries(series, seriesCfg)
			if err != nil {
				b.Fatal(err)
			}
			g, err := evolution.BuildGraphContext(context.Background(), series, res, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(g.PersonTimelines(1)) == 0 {
				b.Fatal("rebuild produced no timelines")
			}
		}
	})
	appendWarm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			appendOnce(b, linkage.SeriesOptions{Store: warmStore, Incremental: true})
		}
	})
	appendCold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			appendOnce(b, linkage.SeriesOptions{})
		}
	})
	evoSpeedup := float64(rebuild.NsPerOp()) / float64(appendWarm.NsPerOp())
	report["evolution_incremental_rebuild_ns_op"] = rebuild.NsPerOp()
	report["evolution_incremental_append_ns_op"] = appendWarm.NsPerOp()
	report["evolution_incremental_speedup"] = evoSpeedup
	report["evolution_append_cold_pair_ns_op"] = appendCold.NsPerOp()
	t.Logf("evolution rebuild %v/op, warm append %v/op (%.2fx), cold-pair append %v/op",
		rebuild.NsPerOp(), appendWarm.NsPerOp(), evoSpeedup, appendCold.NsPerOp())
	if evoSpeedup < 10 {
		t.Errorf("warm append %.2fx faster than a full rebuild, below the 10x gate", evoSpeedup)
	}

	if path != "" {
		// Preserve the committed million-record rows (written separately by
		// TestLink1M, which takes hours) when this rewrite did not re-measure
		// them.
		if prev, err := os.ReadFile(path); err == nil {
			var old map[string]any
			if json.Unmarshal(prev, &old) == nil {
				for k, v := range old {
					if _, fresh := report[k]; !fresh && strings.HasPrefix(k, "link_1m_") {
						report[k] = v
					}
				}
			}
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("prematch naive %v/op, compiled %v/op (sharded x%d %v/op), speedup %.2fx, memo hit rate %.3f",
		naive.NsPerOp(), compiled.NsPerOp(), benchShards, sharded.NsPerOp(),
		speedup, float64(hits)/float64(hits+misses))
	if speedup < 2 {
		t.Errorf("compiled pre-matching speedup %.2fx below the 2x target", speedup)
	}

	if basePath != "" {
		base, err := readBenchBaseline(basePath)
		if err != nil {
			t.Fatal(err)
		}
		if base.Scale != benchScale() {
			t.Skipf("baseline scale %.3f != current scale %.3f: not comparable", base.Scale, benchScale())
		}
		ratio := float64(compiled.NsPerOp()) / float64(base.CompiledNsOp)
		t.Logf("compiled prematch vs baseline %s: %d ns/op now, %d ns/op then (%.2fx)",
			basePath, compiled.NsPerOp(), base.CompiledNsOp, ratio)
		if ratio > 2 {
			t.Errorf("compiled pre-matching regressed %.2fx vs the committed baseline (limit 2x): %d ns/op vs %d ns/op",
				ratio, compiled.NsPerOp(), base.CompiledNsOp)
		}
		if base.ShardedNsOp > 0 {
			sr := float64(sharded.NsPerOp()) / float64(base.ShardedNsOp)
			t.Logf("sharded prematch vs baseline: %d ns/op now, %d ns/op then (%.2fx)",
				sharded.NsPerOp(), base.ShardedNsOp, sr)
			if sr > 2 {
				t.Errorf("sharded pre-matching regressed %.2fx vs the committed baseline (limit 2x): %d ns/op vs %d ns/op",
					sr, sharded.NsPerOp(), base.ShardedNsOp)
			}
		}
		if base.LSHNsOp > 0 {
			lr := float64(lshBench.NsPerOp()) / float64(base.LSHNsOp)
			t.Logf("lsh prematch vs baseline: %d ns/op now, %d ns/op then (%.2fx)",
				lshBench.NsPerOp(), base.LSHNsOp, lr)
			if lr > 2 {
				t.Errorf("LSH pre-matching regressed %.2fx vs the committed baseline (limit 2x): %d ns/op vs %d ns/op",
					lr, lshBench.NsPerOp(), base.LSHNsOp)
			}
		}
	}
}

// benchBaseline is the subset of the BENCH_prematch.json report the
// regression gate compares against.
type benchBaseline struct {
	Scale        float64 `json:"scale"`
	CompiledNsOp int64   `json:"compiled_ns_op"`
	ShardedNsOp  int64   `json:"prematch_sharded_ns_op"`
	LSHNsOp      int64   `json:"prematch_lsh_ns_op"`
}

func readBenchBaseline(path string) (*benchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.CompiledNsOp <= 0 {
		return nil, fmt.Errorf("%s: missing or non-positive compiled_ns_op", path)
	}
	return &b, nil
}

// BenchmarkEvolutionAnalysis times pattern derivation for one linked pair.
func BenchmarkEvolutionAnalysis(b *testing.B) {
	env := benchEnv(b)
	old := env.Series.Dataset(1871)
	new := env.Series.Dataset(1881)
	res, err := linkage.Link(old, new, linkage.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evolution.Analyze(old, new, res) == nil {
			b.Fatal("nil analysis")
		}
	}
}

// BenchmarkLinkScaling measures the full pipeline across population scales
// (records grow roughly linearly with scale; candidate pairs faster).
func BenchmarkLinkScaling(b *testing.B) {
	for _, scale := range []float64{0.02, 0.05, 0.10} {
		scale := scale
		b.Run(fmt.Sprintf("scale=%.2f", scale), func(b *testing.B) {
			old, new, err := synth.GeneratePair(synth.TestConfig(scale, 1871), 1871, 1881)
			if err != nil {
				b.Fatal(err)
			}
			cfg := linkage.DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := linkage.Link(old, new, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines regenerates the record-baseline comparison (CL,
// temporal decay, iterative subgraph).
func BenchmarkBaselines(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBirthplaceExtension regenerates the stable-attribute extension.
func BenchmarkBirthplaceExtension(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.BirthplaceExtension(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQualityByDecade regenerates the per-pair quality table.
func BenchmarkQualityByDecade(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := env.QualityByPair(); err != nil {
			b.Fatal(err)
		}
	}
}
