// Package censuslink is a Go reproduction of "Temporal group linkage and
// evolution analysis for census data" (Christen, Groß, Wang, Christen,
// Fisher, Rahm — EDBT 2017).
//
// The library links person records (1:1) and households (N:M) between
// successive census datasets with the paper's iterative, graph-based
// subgraph matching algorithm, and derives household evolution patterns
// (preserve, add, remove, move, split, merge) on a multi-census evolution
// graph.
//
// Layout:
//
//   - internal/linkage     — the paper's contribution (Algorithms 1 and 2)
//   - internal/census      — data model and CSV I/O
//   - internal/hgraph      — household graphs and group enrichment
//   - internal/strsim      — string similarity functions
//   - internal/block       — blocking / indexing
//   - internal/cluster     — union-find clustering
//   - internal/assign      — Hungarian optimal 1:1 assignment
//   - internal/evolution   — evolution patterns and the evolution graph
//   - internal/evaluate    — precision / recall / F-measure
//   - internal/synth       — synthetic Rawtenstall-profile census generator
//   - internal/baseline    — CL, GraphSim and temporal-decay comparators
//   - internal/experiments — regenerates every table/figure of the paper
//   - internal/chart       — SVG bar charts (Figure 6 as an image)
//   - cmd/*                — censusgen, linker, evolve, benchall, tune, explain
//   - examples/*           — runnable example applications
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package censuslink
