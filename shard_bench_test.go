// Million-record sharded linkage measurement and the CI-scale sharded
// differential smoke test. Both are opt-in via environment variables: the
// 1M run takes hours on one core, the smoke test a few minutes.
package censuslink_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/synth"
)

// districtScoped wraps a blocking strategy so its keys are prefixed with the
// record's synthetic district (the "d<N>_" ID prefix emitted by
// synth.Config.Districts). Multi-district populations have no inter-district
// migration, so scoping blocks by district loses no true matches while
// keeping candidate pairs linear rather than quadratic in the district
// count — the same role enumeration districts play in real census linkage.
// Records without a district prefix (single-district synth, real data) keep
// their unscoped keys.
func districtScoped(inner block.Strategy) block.Strategy {
	return block.Strategy{
		Name: inner.Name + "-district",
		Keys: func(r *census.Record, year int) []string {
			keys := inner.Keys(r, year)
			d, _, ok := strings.Cut(r.ID, "_")
			if !ok || len(d) < 2 || d[0] != 'd' {
				return keys
			}
			for _, c := range d[1:] {
				if c < '0' || c > '9' {
					return keys
				}
			}
			for i, k := range keys {
				keys[i] = d + "|" + k
			}
			return keys
		},
	}
}

// TestLink1M generates a multi-district pair of roughly a million records
// (CENSUSLINK_BENCH_1M = district count, CENSUSLINK_BENCH_1M_SCALE = the
// per-district synth scale, default 0.1; 270 districts at scale 0.1 give
// ~1.0M records across 1851+1861) and links it sharded with
// district-scoped blocking, recording elapsed time and peak memory gauges.
// With CENSUSLINK_BENCH_1M_BOTH=1 it repeats the run unsharded, asserts
// the results are identical, and records the peak-heap ratio — the sharded
// run goes first because VmHWM only ever grows over the process lifetime.
// Rows are merged into the JSON report named by CENSUSLINK_BENCH_JSON
// (typically BENCH_prematch.json), which TestBenchTrajectory preserves on
// rewrite.
func TestLink1M(t *testing.T) {
	env := os.Getenv("CENSUSLINK_BENCH_1M")
	if env == "" {
		t.Skip("set CENSUSLINK_BENCH_1M to a district count (e.g. 270) to run the million-record measurement")
	}
	districts, err := strconv.Atoi(env)
	if err != nil || districts < 1 {
		t.Fatalf("CENSUSLINK_BENCH_1M = %q: want a positive district count", env)
	}
	scale := 0.1
	if s := os.Getenv("CENSUSLINK_BENCH_1M_SCALE"); s != "" {
		scale, err = strconv.ParseFloat(s, 64)
		if err != nil || scale <= 0 {
			t.Fatalf("CENSUSLINK_BENCH_1M_SCALE = %q: want a positive float", s)
		}
	}
	gen := synth.DefaultConfig()
	gen.Districts = districts
	gen.Scale = scale
	t0 := time.Now()
	old, new, err := synth.GeneratePair(gen, 1851, 1861)
	if err != nil {
		t.Fatal(err)
	}
	total := old.NumRecords() + new.NumRecords()
	t.Logf("generated %d districts at scale %g in %v: %d + %d = %d records",
		districts, scale, time.Since(t0).Round(time.Second), old.NumRecords(), new.NumRecords(), total)

	const shards = 16
	measure := func(k int) (*linkage.Result, time.Duration, map[string]int64) {
		runtime.GC()
		st := obs.NewStats(nil)
		cfg := linkage.DefaultConfig()
		cfg.Shards = k
		cfg.Obs = st
		for i, s := range cfg.Strategies {
			cfg.Strategies[i] = districtScoped(s)
		}
		start := time.Now()
		res, err := linkage.Link(old, new, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		elapsed := time.Since(start)
		rep := st.Report()
		t.Logf("shards=%d: %v, %d record links, peak heap in use %d MB, peak RSS %d MB",
			k, elapsed.Round(time.Second), len(res.RecordLinks),
			rep.Gauges[obs.PeakHeapInuse]>>20, rep.Gauges[obs.PeakRSS]>>20)
		return res, elapsed, rep.Gauges
	}

	shardedRes, shardedNs, shardedG := measure(shards)
	rows := map[string]any{
		"link_1m_records":                       total,
		"link_1m_districts":                     districts,
		"link_1m_scale":                         scale,
		"link_1m_district_blocking":             true,
		"link_1m_shards":                        shards,
		"link_1m_record_links":                  len(shardedRes.RecordLinks),
		"link_1m_sharded_ns":                    shardedNs.Nanoseconds(),
		"link_1m_sharded_peak_heap_inuse_bytes": shardedG[obs.PeakHeapInuse],
		"link_1m_peak_rss_bytes":                shardedG[obs.PeakRSS],
	}
	if os.Getenv("CENSUSLINK_BENCH_1M_BOTH") == "1" {
		unshardedRes, unshardedNs, unshardedG := measure(1)
		if !reflect.DeepEqual(shardedRes.RecordLinks, unshardedRes.RecordLinks) ||
			!reflect.DeepEqual(shardedRes.GroupLinks, unshardedRes.GroupLinks) {
			t.Errorf("sharded and unsharded results differ at %d records", total)
		}
		rows["link_1m_unsharded_ns"] = unshardedNs.Nanoseconds()
		rows["link_1m_unsharded_peak_heap_inuse_bytes"] = unshardedG[obs.PeakHeapInuse]
		ratio := float64(unshardedG[obs.PeakHeapInuse]) / float64(shardedG[obs.PeakHeapInuse])
		rows["link_1m_heap_ratio_unsharded_over_sharded"] = ratio
		t.Logf("peak heap in use: unsharded / sharded = %.2fx", ratio)
		if ratio < 1.0 {
			t.Errorf("sharding did not bound peak heap: unsharded %d B vs sharded %d B",
				unshardedG[obs.PeakHeapInuse], shardedG[obs.PeakHeapInuse])
		}
	}

	path := os.Getenv("CENSUSLINK_BENCH_JSON")
	if path == "" {
		t.Logf("rows (set CENSUSLINK_BENCH_JSON to persist): %v", rows)
		return
	}
	report := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	for k, v := range rows {
		report[k] = v
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardSmoke is the CI sharded differential: a quarter-scale pair
// linked unsharded and with 8 shards must produce identical results. Set
// CENSUSLINK_SHARD_SMOKE=1 to run it (about a minute at 0.25 scale).
func TestShardSmoke(t *testing.T) {
	if os.Getenv("CENSUSLINK_SHARD_SMOKE") != "1" {
		t.Skip("set CENSUSLINK_SHARD_SMOKE=1 to run the quarter-scale sharded differential")
	}
	old, new, err := synth.GeneratePair(synth.TestConfig(0.25, 1871), 1871, 1881)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int) *linkage.Result {
		cfg := linkage.DefaultConfig()
		cfg.Shards = k
		res, err := linkage.Link(old, new, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		return res
	}
	base := run(1)
	got := run(8)
	if len(base.RecordLinks) == 0 {
		t.Fatal("no record links; the differential is vacuous")
	}
	for _, cmp := range []struct {
		name string
		a, b any
	}{
		{"record links", base.RecordLinks, got.RecordLinks},
		{"group links", base.GroupLinks, got.GroupLinks},
		{"sources", base.Sources, got.Sources},
	} {
		if !reflect.DeepEqual(cmp.a, cmp.b) {
			t.Errorf("%s differ between shards=1 and shards=8", cmp.name)
		}
	}
	fmt.Printf("shard smoke: %d records linked identically at shards 1 and 8 (%d record links, %d group links)\n",
		old.NumRecords()+new.NumRecords(), len(base.RecordLinks), len(base.GroupLinks))
}
