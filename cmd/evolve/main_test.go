package main

import (
	"os"
	"path/filepath"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

// TestReadAppend covers the -append input path: the census year comes from
// the canonical file name unless -append-year overrides it, and files the
// year cannot be derived from are refused with a hint.
func TestReadAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "census_1891.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := census.WriteCSV(f, paperexample.New()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ds, err := readAppend(path, 0, census.LoadOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Year != 1891 || ds.NumRecords() != 11 {
		t.Errorf("derived-year load: year %d, %d records", ds.Year, ds.NumRecords())
	}
	if ds, err = readAppend(path, 1901, census.LoadOptions{Strict: true}); err != nil || ds.Year != 1901 {
		t.Errorf("explicit year: %v, year %d", err, ds.Year)
	}

	odd := filepath.Join(dir, "extra.csv")
	if err := os.Rename(path, odd); err != nil {
		t.Fatal(err)
	}
	if _, err := readAppend(odd, 0, census.LoadOptions{Strict: true}); err == nil {
		t.Error("underivable year accepted without -append-year")
	}
}

func TestReadSeriesFromDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d *census.Dataset) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := census.WriteCSV(f, d); err != nil {
			t.Fatal(err)
		}
	}
	write("census_1881.csv", paperexample.New())
	write("census_1871.csv", paperexample.Old())
	write("notes.txt", paperexample.Old()) // ignored: wrong name pattern
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	series, err := census.ReadSeriesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Datasets) != 2 {
		t.Fatalf("datasets = %d, want 2", len(series.Datasets))
	}
	years := series.Years()
	if years[0] != 1871 || years[1] != 1881 {
		t.Errorf("years = %v", years)
	}
	if series.Dataset(1871).NumRecords() != 8 || series.Dataset(1881).NumRecords() != 11 {
		t.Error("record counts wrong after load")
	}
}
