package main

import (
	"os"
	"path/filepath"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

func TestReadSeriesFromDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d *census.Dataset) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := census.WriteCSV(f, d); err != nil {
			t.Fatal(err)
		}
	}
	write("census_1881.csv", paperexample.New())
	write("census_1871.csv", paperexample.Old())
	write("notes.txt", paperexample.Old()) // ignored: wrong name pattern
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	series, err := census.ReadSeriesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Datasets) != 2 {
		t.Fatalf("datasets = %d, want 2", len(series.Datasets))
	}
	years := series.Years()
	if years[0] != 1871 || years[1] != 1881 {
		t.Errorf("years = %v", years)
	}
	if series.Dataset(1871).NumRecords() != 8 || series.Dataset(1881).NumRecords() != 11 {
		t.Error("record counts wrong after load")
	}
}
