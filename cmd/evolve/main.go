// Command evolve runs the full evolution analysis of Section 5.4 over a
// directory of census CSV files (census_<year>.csv, as written by
// censusgen): it links every successive pair, counts the group evolution
// patterns per decade (Fig. 6), reports the preserve-duration distribution
// (Table 8) and the largest connected component of the evolution graph.
//
// Usage:
//
//	evolve -dir data/ [-append census_1901.csv]
//
// With -append, the named census joins an already-linked series through the
// append-only path: only the (last year, new year) pair is linked (reusing a
// -store snapshot when one matches) and the evolution graph, pattern counts
// and person timelines are extended in place — the arrival cost of one new
// census is one pair linkage, not a series relink.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"censuslink/internal/census"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/report"
	"censuslink/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evolve: ")
	dir := flag.String("dir", ".", "directory containing census_<year>.csv files")
	dot := flag.String("dot", "", "also write the evolution graph in Graphviz DOT format to this file")
	statsOut := flag.String("stats", "", "write a JSON run report to this file (also on abort)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); the -stats report is still written")
	lenient := flag.Bool("lenient", false, "skip bad input rows instead of aborting, printing a data-quality summary to stderr")
	maxBadRows := flag.Int("max-bad-rows", 0, "with -lenient: give up once more than this many rows are skipped per file (0 = no cap)")
	storeDir := flag.String("store", "", "persist per-pair linkage results as snapshots in this directory (write-through)")
	incremental := flag.Bool("incremental", false, "with -store: skip year pairs whose snapshot already matches this input and configuration")
	pairWorkers := flag.Int("pair-workers", 1, "link up to this many year pairs concurrently")
	shards := flag.Int("shards", 0, "partition pre-matching and the remainder pass of each year pair into this many block-key shards, bounding peak memory (0 = unsharded; results are identical)")
	blocking := flag.String("blocking", "", "blocking scheme: default, high-recall, lsh or lsh+default")
	appendPath := flag.String("append", "", "append this census CSV to the linked series via the incremental pair-append path")
	appendYear := flag.Int("append-year", 0, "census year of the -append file (0 = derive from its census_<year>.csv name)")
	flag.Parse()

	// SIGINT/SIGTERM and -timeout cancel the shared context; the series
	// linkage and the graph build abort at their next checkpoint.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var stats *obs.Stats
	if *statsOut != "" || *incremental {
		// Incremental runs need the collector even without -stats: the
		// store hit/miss counters feed the reuse summary printed below.
		stats = obs.NewStats(nil)
	}
	// fail flushes the run report before exiting so an interrupted run still
	// keeps the observability data gathered up to the abort.
	fail := func(err error) {
		if *statsOut != "" {
			writeStats(*statsOut, stats)
		}
		log.Fatal(err)
	}

	series, reports, err := census.ReadSeriesDirOptions(*dir,
		census.LoadOptions{Strict: !*lenient, MaxBadRows: *maxBadRows})
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Clean() {
			fmt.Fprintf(os.Stderr, "%s:\n%s", census.SeriesFileName(rep.Year), rep.Summary())
		}
	}
	if len(series.Datasets) < 2 {
		log.Fatalf("need at least two censuses in %s, found %d", *dir, len(series.Datasets))
	}
	fmt.Printf("loaded %d censuses: %v\n\n", len(series.Datasets), series.Years())

	cfg := linkage.DefaultConfig()
	cfg.Obs = stats
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *blocking != "" {
		strategies, err := linkage.ParseBlocking(*blocking)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Strategies = strategies
	}
	opts := linkage.SeriesOptions{Incremental: *incremental, PairWorkers: *pairWorkers}
	if *storeDir != "" {
		snaps, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = snaps
	} else if *incremental {
		log.Fatal("-incremental requires -store")
	}
	results, err := linkage.LinkSeriesOpts(ctx, series, cfg, opts)
	if err != nil {
		// Completed pairs are checkpointed in the store (with -store), so a
		// re-run resumes instead of starting over; say so.
		var se *linkage.SeriesError
		if errors.As(err, &se) && opts.Store != nil && *incremental {
			log.Printf("%d of %d pairs are checkpointed in %s; re-run to resume", se.Completed, se.Pairs, *storeDir)
		}
		fail(err)
	}
	if *incremental {
		fmt.Printf("store: %d pairs reused, %d computed\n",
			stats.Total(obs.StoreHits), stats.Total(obs.StoreMisses)+stats.Total(obs.StoreCorrupt))
	}
	for i, pair := range series.Pairs() {
		fmt.Printf("linked %d-%d: %d record links, %d group links\n",
			pair[0].Year, pair[1].Year, len(results[i].RecordLinks), len(results[i].GroupLinks))
	}
	graph, err2 := evolution.BuildGraphContext(ctx, series, results, stats)
	if err2 != nil {
		fail(err2)
	}

	// -append: the new census arrives as an event. Link only the final pair
	// and extend the graph and timelines in place; everything printed below
	// covers the appended year exactly as a full relink would.
	if *appendPath != "" {
		next, err := readAppend(*appendPath, *appendYear,
			census.LoadOptions{Strict: !*lenient, MaxBadRows: *maxBadRows})
		if err != nil {
			fail(err)
		}
		prev := graph.PersonTimelines(2)
		res, err := linkage.LinkAppend(ctx, series, next, cfg, opts)
		if err != nil {
			fail(err)
		}
		last := series.Datasets[len(series.Datasets)-1]
		if err := graph.AppendYear(last, next, res); err != nil {
			fail(err)
		}
		extended := graph.ExtendTimelines(prev)
		series = census.NewSeries(append(append([]*census.Dataset{}, series.Datasets...), next)...)
		fmt.Printf("appended %d-%d: %d record links, %d group links, %d person timelines\n",
			last.Year, next.Year, len(res.RecordLinks), len(res.GroupLinks), len(extended))
	}
	if *statsOut != "" {
		writeStats(*statsOut, stats)
	}

	fmt.Println()
	patterns := &report.Table{
		Title:  "Group evolution patterns per census pair",
		Header: []string{"pair", "preserve_G", "add_G", "remove_G", "move", "split", "merge"},
	}
	for i, counts := range graph.PatternCounts() {
		a := graph.Analyses[i]
		patterns.AddRow(fmt.Sprintf("%d-%d", a.OldYear, a.NewYear),
			report.I(counts[evolution.PatternPreserve]),
			report.I(counts[evolution.PatternAdd]),
			report.I(counts[evolution.PatternRemove]),
			report.I(counts[evolution.PatternMove]),
			report.I(counts[evolution.PatternSplit]),
			report.I(counts[evolution.PatternMerge]))
	}
	if err := patterns.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	chains := &report.Table{
		Title:  "Preserved households per interval",
		Header: []string{"interval (years)", "count"},
	}
	gap := series.Years()[1] - series.Years()[0]
	for k := 1; k < len(series.Datasets); k++ {
		chains.AddRow(report.I(gap*k), report.I(graph.PreserveChains(k)))
	}
	size, share := graph.LargestComponentShare()
	chains.Note = fmt.Sprintf("largest connected component: %d household vertices (%.1f%%)",
		size, share*100)
	if err := chains.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := graph.WriteDOT(f, "evolution"); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (render with: dot -Tsvg %s)\n", *dot, *dot)
	}
}

// readAppend loads the census CSV an -append run feeds the incremental
// path, deriving the year from the canonical census_<year>.csv name when
// -append-year is not given.
func readAppend(path string, year int, opts census.LoadOptions) (*census.Dataset, error) {
	if year == 0 {
		base := filepath.Base(path)
		digits := strings.TrimSuffix(strings.TrimPrefix(base, "census_"), ".csv")
		y, err := strconv.Atoi(digits)
		if err != nil || digits == base {
			return nil, fmt.Errorf("cannot derive a census year from %q; pass -append-year", base)
		}
		year = y
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, rep, err := census.ReadCSVOptions(f, year, opts)
	if err != nil {
		return nil, err
	}
	if rep != nil && !rep.Clean() {
		fmt.Fprintf(os.Stderr, "%s:\n%s", filepath.Base(path), rep.Summary())
	}
	return ds, nil
}

// writeStats finalizes the collector and writes its JSON run report.
func writeStats(path string, stats *obs.Stats) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteReport(f, stats.Done()); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
