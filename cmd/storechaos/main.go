// Command storechaos is the crash-safety harness for the snapshot store.
// Each cycle boots a real linkserver against a shared -store directory,
// asks it for a year pair so a snapshot Save goes in flight — the
// CENSUSLINK_STORE_CHAOS_SLOW environment variable stretches the window
// between the payload write and the rename — and kill -9s the process
// inside that window. After every kill it audits the directory: a snapshot
// file must either load deep-equal to an in-process recomputation of the
// same pair or be quarantined. A half-written file that still parses is
// exactly the failure the store's write protocol exists to prevent, so one
// is a hard harness failure.
//
// Crash litter (orphaned temp files, the dead writer's lock file) is left
// in place between cycles so the next boot has to cope with it: stale-lock
// takeover, temp cleanup and quarantine are exercised by the loop itself,
// not reset around it.
//
// After the kill loop a two-replica convergence check runs: two fresh
// linkservers share the repaired store, only the first is asked to compute,
// and the second must adopt the snapshot through its refresh loop and serve
// the pair without recomputing — with "store":"ok" on /healthz and
// censuslink_store_degraded 0 on both.
//
// Usage:
//
//	storechaos -linkserver bin/linkserver [-cycles 30] [-slow 75ms] \
//	           [-dir workdir] [-seed 1]
//
// Exit status 0 means every cycle audited clean and the replicas converged.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
	"censuslink/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storechaos: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("storechaos", flag.ContinueOnError)
	linkserver := fs.String("linkserver", "bin/linkserver", "path to the linkserver binary to torture")
	cycles := fs.Int("cycles", 30, "kill -9 cycles to run")
	slow := fs.Duration("slow", 75*time.Millisecond, "chaos stretch of the write window (CENSUSLINK_STORE_CHAOS_SLOW)")
	workDir := fs.String("dir", "", "workspace directory (default: a fresh temp dir, removed on success)")
	seed := fs.Int64("seed", 1, "seed for the kill-delay schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := os.Stat(*linkserver); err != nil {
		return fmt.Errorf("linkserver binary: %w (build it with `go build -o bin/linkserver ./cmd/linkserver`)", err)
	}
	bin, err := filepath.Abs(*linkserver)
	if err != nil {
		return err
	}

	dir := *workDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "storechaos-*")
		if err != nil {
			return err
		}
	}
	seriesDir := filepath.Join(dir, "series")
	storeDir := filepath.Join(dir, "store")
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return err
	}

	// The workload is the paper's running example; the expected result is
	// recomputed here with the linkserver's default configuration, so the
	// audit can demand byte-level agreement, not just parseability.
	old, new := paperexample.Old(), paperexample.New()
	series := census.NewSeries(old, new)
	if err := census.WriteSeriesDir(seriesDir, series); err != nil {
		return err
	}
	cfg := linkage.DefaultConfig()
	engine, err := linkage.ParseEngine("compiled")
	if err != nil {
		return err
	}
	cfg.Engine = engine
	expected, err := linkage.LinkContext(ctx, old, new, cfg)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var survivors, quarantined, midWrite int
	for cycle := 1; cycle <= *cycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Drop loadable snapshots and old corpses so the server has to
		// recompute and re-save; temp litter and the dead writer's lock
		// stay behind on purpose.
		if err := removeGlob(storeDir, "snap_*.jsonl", "*.corrupt", "*.corrupt.reason"); err != nil {
			return err
		}

		proc, err := startServer(ctx, bin, seriesDir, storeDir, *slow, nil)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		// Fire the computing query and let it hang; the kill will cut it off.
		go func() {
			resp, err := proc.client.Get(proc.base + "/v1/links/1871/1881/records?limit=1")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		// Wait for the in-flight temp file, then kill at a random point
		// across one and a half write windows, so some kills land before
		// the rename and some just after it — both sides of the commit
		// point get audited.
		if waitForGlob(storeDir, ".tmp-snap-*", 5*time.Second) {
			midWrite++
			time.Sleep(time.Duration(rng.Int63n(int64(*slow * 3 / 2))))
		}
		proc.kill()

		s, err := store.Open(storeDir)
		if err != nil {
			return fmt.Errorf("cycle %d: reopen store: %w", cycle, err)
		}
		rep, err := s.Repair()
		if err != nil {
			return fmt.Errorf("cycle %d: repair: %w", cycle, err)
		}
		quarantined += rep.Corrupt
		l, err := s.List()
		if err != nil {
			return fmt.Errorf("cycle %d: list: %w", cycle, err)
		}
		if len(l.Skipped) > 0 {
			return fmt.Errorf("cycle %d: repair left unparsable snapshots behind: %v", cycle, l.Skipped)
		}
		for _, h := range l.Headers {
			got, err := s.Load(store.Key{ConfigHash: h.ConfigHash, OldHash: h.OldHash, NewHash: h.NewHash})
			if err != nil {
				return fmt.Errorf("cycle %d: snapshot passed repair but failed to load: %w", cycle, err)
			}
			if !reflect.DeepEqual(got, expected) {
				return fmt.Errorf("cycle %d: LOADABLE-BUT-WRONG snapshot %d->%d: survived the kill yet differs from the recomputed result", cycle, h.OldYear, h.NewYear)
			}
			survivors++
		}
		fmt.Fprintf(stdout, "cycle %2d/%d: %s\n", cycle, *cycles, rep.Summary())
	}
	fmt.Fprintf(stdout, "%d cycles: %d kills landed mid-write, %d complete snapshots survived, %d quarantined, 0 loadable-but-wrong\n",
		*cycles, midWrite, survivors, quarantined)

	if err := convergenceCheck(ctx, stdout, bin, seriesDir, storeDir); err != nil {
		return err
	}
	if *workDir == "" {
		os.RemoveAll(dir)
	}
	fmt.Fprintln(stdout, "storechaos: PASS")
	return nil
}

// convergenceCheck boots two replicas over the battle-scarred store, has
// only replica A compute the pair, and requires replica B to adopt the
// snapshot through its refresh loop and serve it — both healthy, neither
// degraded.
func convergenceCheck(ctx context.Context, stdout io.Writer, bin, seriesDir, storeDir string) error {
	if err := removeGlob(storeDir, "snap_*.jsonl", "*.corrupt", "*.corrupt.reason"); err != nil {
		return err
	}
	refresh := []string{"-store-refresh", "200ms"}
	a, err := startServer(ctx, bin, seriesDir, storeDir, 0, refresh)
	if err != nil {
		return fmt.Errorf("replica A: %w", err)
	}
	defer a.kill()
	b, err := startServer(ctx, bin, seriesDir, storeDir, 0, refresh)
	if err != nil {
		return fmt.Errorf("replica B: %w", err)
	}
	defer b.kill()

	if err := expectStatus(a, "/v1/links/1871/1881/records?limit=1", http.StatusOK); err != nil {
		return fmt.Errorf("replica A compute: %w", err)
	}
	// B must adopt A's snapshot without computing it: its refresh-load
	// counter has to move, since adoption only fills uncomputed slots.
	adopted := regexp.MustCompile(`censuslink_pipeline_total\{name="store_refresh_loads"\} [1-9]`)
	deadline := time.Now().Add(15 * time.Second)
	for {
		body, err := fetch(b, "/metrics")
		if err == nil && adopted.MatchString(body) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica B never adopted the snapshot via its refresh loop")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := expectStatus(b, "/v1/links/1871/1881/records?limit=1", http.StatusOK); err != nil {
		return fmt.Errorf("replica B serve after adoption: %w", err)
	}
	for name, p := range map[string]*serverProc{"A": a, "B": b} {
		health, err := fetch(p, "/healthz")
		if err != nil {
			return fmt.Errorf("replica %s healthz: %w", name, err)
		}
		if !strings.Contains(health, `"store":"ok"`) {
			return fmt.Errorf("replica %s healthz reports an unhealthy store: %s", name, strings.TrimSpace(health))
		}
		metrics, err := fetch(p, "/metrics")
		if err != nil {
			return fmt.Errorf("replica %s metrics: %w", name, err)
		}
		if !strings.Contains(metrics, "censuslink_store_degraded 0") {
			return fmt.Errorf("replica %s still degraded after the chaos loop", name)
		}
	}
	fmt.Fprintln(stdout, "replicas: B adopted A's snapshot via refresh, both healthy, store_degraded 0 on both")
	return nil
}

// serverProc is one linkserver child process plus the client to reach it.
type serverProc struct {
	cmd    *exec.Cmd
	base   string
	client *http.Client
	once   sync.Once
}

// startServer launches the linkserver binary on an ephemeral port and
// blocks until its listener line confirms the address accepts connections.
func startServer(ctx context.Context, bin, seriesDir, storeDir string, slow time.Duration, extra []string) (*serverProc, error) {
	args := append([]string{
		"-dir", seriesDir, "-addr", "127.0.0.1:0", "-store", storeDir,
	}, extra...)
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Env = os.Environ()
	if slow > 0 {
		cmd.Env = append(cmd.Env, "CENSUSLINK_STORE_CHAOS_SLOW="+slow.String())
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrRE := regexp.MustCompile(`listening on (http://\S+)`)
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
				addr <- m[1]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	p := &serverProc{cmd: cmd, client: &http.Client{Timeout: 30 * time.Second}}
	select {
	case p.base = <-addr:
		return p, nil
	case <-time.After(10 * time.Second):
		p.kill()
		return nil, fmt.Errorf("linkserver never printed its listen address")
	case <-ctx.Done():
		p.kill()
		return nil, ctx.Err()
	}
}

// kill delivers SIGKILL — no drain, no cleanup — and reaps the child.
func (p *serverProc) kill() {
	p.once.Do(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
}

// fetch GETs path from the replica and returns the body.
func fetch(p *serverProc, path string) (string, error) {
	resp, err := p.client.Get(p.base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// expectStatus GETs path and demands the given status code.
func expectStatus(p *serverProc, path string, want int) error {
	resp, err := p.client.Get(p.base + path)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
	}
	return nil
}

// removeGlob deletes every file in dir matching any of the patterns.
func removeGlob(dir string, patterns ...string) error {
	for _, pat := range patterns {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// waitForGlob polls dir until a file matching pattern exists or the
// timeout passes; it reports whether one was seen.
func waitForGlob(dir, pattern string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m, _ := filepath.Glob(filepath.Join(dir, pattern)); len(m) > 0 {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
