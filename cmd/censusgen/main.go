// Command censusgen generates a synthetic census series with the
// Rawtenstall profile of the paper's Table 1 and writes one CSV file per
// census year. The emitted records carry ground-truth person identifiers
// (truth_id column) for later evaluation.
//
// Usage:
//
//	censusgen -out data/ [-scale 0.1] [-seed 1871] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"censuslink/internal/census"
	"censuslink/internal/report"
	"censuslink/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("censusgen: ")
	out := flag.String("out", ".", "output directory for census_<year>.csv files")
	scale := flag.Float64("scale", 0.10, "population scale relative to the paper (1.0 = full size)")
	seed := flag.Int64("seed", 1871, "random seed")
	districts := flag.Int("districts", 1, "number of independently simulated districts to merge (multiplies the population; IDs gain a d<N>_ prefix)")
	stats := flag.Bool("stats", true, "print the Table 1 overview of the generated series")
	flag.Parse()

	cfg := synth.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Districts = *districts
	series, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := census.WriteSeriesDir(*out, series); err != nil {
		log.Fatal(err)
	}
	for _, d := range series.Datasets {
		fmt.Printf("wrote %s (%d records, %d households)\n",
			filepath.Join(*out, census.SeriesFileName(d.Year)), d.NumRecords(), d.NumHouseholds())
	}
	if *stats {
		t := &report.Table{
			Title:  "Generated series overview",
			Header: []string{"year", "|R|", "|G|", "|fn+sn|", "ratio_mv", "children", "m/f"},
		}
		for _, d := range series.Datasets {
			s := d.ComputeStats()
			dem := synth.Demographics(d)
			t.AddRow(report.I(s.Year), report.I(s.NumRecords), report.I(s.NumHouseholds),
				report.I(s.UniqueNames), report.Pct(s.MissingRatio)+"%",
				report.Pct(dem.ChildShare)+"%", report.F(dem.SexRatio, 2))
		}
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
