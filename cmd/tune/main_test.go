package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/synth"
)

// writePair generates a small synthetic census pair (with truth_id ground
// truth) and writes both files into a temp dir.
func writePair(t *testing.T) (oldPath, newPath string) {
	t.Helper()
	oldDS, newDS, err := synth.GeneratePair(synth.TestConfig(0.5, 7), 1871, 1881)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, d := range []*census.Dataset{oldDS, newDS} {
		path := filepath.Join(dir, census.SeriesFileName(d.Year))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := census.WriteCSV(f, d); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, census.SeriesFileName(1871)), filepath.Join(dir, census.SeriesFileName(1881))
}

// TestRunTunesWeights: a tiny end-to-end tuning run over synthetic data
// with ground truth must learn and print a weight vector.
func TestRunTunesWeights(t *testing.T) {
	oldPath, newPath := writePair(t)
	var out strings.Builder
	err := run([]string{"-old", oldPath, "-new", newPath, "-rounds", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"training sample:", "tuned in", "learned weights:", "reference"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunFlagErrors: bad invocations return errors instead of tuning.
func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing -old/-new accepted")
	}
	if err := run([]string{"-old", "no-year.csv", "-new", "also-none.csv"}, &out); err == nil {
		t.Error("year-less file names accepted")
	}
	if err := run([]string{"-old", "/does/not/exist_1871.csv", "-new", "/does/not/exist_1881.csv"}, &out); err == nil {
		t.Error("missing files accepted")
	}
}
