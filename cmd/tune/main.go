// Command tune learns an attribute weighting vector ω from labelled census
// data (the supervised alternative to Table 2's hand-chosen vectors that
// the paper points to via Richards et al.). The two input CSVs must carry
// truth_id columns, e.g. as written by censusgen.
//
// Usage:
//
//	tune -old data/census_1871.csv -new data/census_1881.csv [-delta 0.6]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tune: ")
	oldPath := flag.String("old", "", "older census CSV with truth_id (required)")
	newPath := flag.String("new", "", "newer census CSV with truth_id (required)")
	delta := flag.Float64("delta", 0.6, "match threshold the weights are tuned for")
	rounds := flag.Int("rounds", 40, "maximum coordinate-ascent rounds")
	negRatio := flag.Float64("negatives", 3.0, "non-matches sampled per match")
	seed := flag.Int64("seed", 1, "sampling seed")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldDS := load(*oldPath)
	newDS := load(*newPath)
	truth := evaluate.TrueRecordMapping(oldDS, newDS)
	if len(truth) == 0 {
		log.Fatal("no ground truth: the input files carry no shared truth_id values")
	}
	sample := linkage.BuildTrainingSet(oldDS, newDS, truth,
		block.DefaultStrategies(), *negRatio, *seed)
	fmt.Printf("training sample: %d pairs (%d matches)\n", len(sample), len(truth))

	res, err := linkage.TuneWeights(sample, linkage.OmegaOne(0).Matchers, *delta, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned in %d rounds, training F-measure %.3f\n", res.Rounds, res.F1)
	fmt.Println("learned weights:")
	for _, w := range linkage.WeightsByAttribute(res.Sim) {
		fmt.Printf("  %s\n", w)
	}

	// Compare against the paper's hand-chosen vectors on the same sample.
	for _, ref := range []linkage.SimFunc{linkage.OmegaOne(*delta), linkage.OmegaTwo(*delta)} {
		fmt.Printf("reference %s F-measure: %.3f\n", ref.Name, linkage.EvaluateWeights(sample, ref))
	}
}

func load(path string) *census.Dataset {
	m := regexp.MustCompile(`(1[89]\d\d)`).FindString(filepath.Base(path))
	if m == "" {
		log.Fatalf("%s: cannot infer census year from the file name", path)
	}
	year, _ := strconv.Atoi(m)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := census.ReadCSV(f, year)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return d
}
