// Command tune learns an attribute weighting vector ω from labelled census
// data (the supervised alternative to Table 2's hand-chosen vectors that
// the paper points to via Richards et al.). The two input CSVs must carry
// truth_id columns, e.g. as written by censusgen.
//
// Usage:
//
//	tune -old data/census_1871.csv -new data/census_1881.csv [-delta 0.6]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tune: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the whole command, split from main so tests can drive it with
// explicit arguments and capture stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	oldPath := fs.String("old", "", "older census CSV with truth_id (required)")
	newPath := fs.String("new", "", "newer census CSV with truth_id (required)")
	delta := fs.Float64("delta", 0.6, "match threshold the weights are tuned for")
	rounds := fs.Int("rounds", 40, "maximum coordinate-ascent rounds")
	negRatio := fs.Float64("negatives", 3.0, "non-matches sampled per match")
	seed := fs.Int64("seed", 1, "sampling seed")
	blocking := fs.String("blocking", "", "blocking scheme for training-pair generation: default, high-recall, lsh or lsh+default")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		fs.Usage()
		return fmt.Errorf("-old and -new are required")
	}

	oldDS, err := load(*oldPath)
	if err != nil {
		return err
	}
	newDS, err := load(*newPath)
	if err != nil {
		return err
	}
	truth := evaluate.TrueRecordMapping(oldDS, newDS)
	if len(truth) == 0 {
		return fmt.Errorf("no ground truth: the input files carry no shared truth_id values")
	}
	strategies, err := linkage.ParseBlocking(*blocking)
	if err != nil {
		return err
	}
	sample := linkage.BuildTrainingSet(oldDS, newDS, truth,
		strategies, *negRatio, *seed)
	fmt.Fprintf(stdout, "training sample: %d pairs (%d matches)\n", len(sample), len(truth))

	res, err := linkage.TuneWeights(sample, linkage.OmegaOne(0).Matchers, *delta, *rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tuned in %d rounds, training F-measure %.3f\n", res.Rounds, res.F1)
	fmt.Fprintln(stdout, "learned weights:")
	for _, w := range linkage.WeightsByAttribute(res.Sim) {
		fmt.Fprintf(stdout, "  %s\n", w)
	}

	// Compare against the paper's hand-chosen vectors on the same sample.
	for _, ref := range []linkage.SimFunc{linkage.OmegaOne(*delta), linkage.OmegaTwo(*delta)} {
		fmt.Fprintf(stdout, "reference %s F-measure: %.3f\n", ref.Name, linkage.EvaluateWeights(sample, ref))
	}
	return nil
}

func load(path string) (*census.Dataset, error) {
	m := regexp.MustCompile(`(1[89]\d\d)`).FindString(filepath.Base(path))
	if m == "" {
		return nil, fmt.Errorf("%s: cannot infer census year from the file name", path)
	}
	year, _ := strconv.Atoi(m)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := census.ReadCSV(f, year)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
