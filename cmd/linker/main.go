// Command linker links two census CSV files (as produced by censusgen or in
// the same format) and writes the record and group mappings. When the input
// carries truth_id columns, linkage quality is reported as well.
//
// Usage:
//
//	linker -old census_1871.csv -new census_1881.csv \
//	       [-method iterative|oneshot|cl|graphsim] \
//	       [-records records.csv] [-groups groups.csv]
//
// Maintenance mode:
//
//	linker -store snapdir -store-verify
//
// verifies every snapshot in the directory (header, address, checksum,
// payload), quarantines the corrupt ones, removes stale temp litter and
// prints the typed summary — run it after a crash or before trusting a
// replicated snapshot directory.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"

	"censuslink/internal/baseline/collective"
	"censuslink/internal/baseline/graphsim"
	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/report"
	"censuslink/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("linker: ")
	oldPath := flag.String("old", "", "older census CSV (required)")
	newPath := flag.String("new", "", "newer census CSV (required)")
	oldYear := flag.Int("old-year", 0, "older census year (default: parsed from the file name)")
	newYear := flag.Int("new-year", 0, "newer census year (default: parsed from the file name)")
	method := flag.String("method", "iterative", "linkage method: iterative, oneshot, cl or graphsim")
	deltaHigh := flag.Float64("delta-high", 0.7, "upper pre-matching threshold")
	deltaLow := flag.Float64("delta-low", 0.5, "lower pre-matching threshold")
	deltaStep := flag.Float64("delta-step", 0.05, "threshold decrement per iteration")
	alpha := flag.Float64("alpha", 0.2, "record-similarity weight in g_sim")
	beta := flag.Float64("beta", 0.7, "edge-similarity weight in g_sim")
	ageTol := flag.Int("age-tolerance", 3, "age tolerance in years")
	recordsOut := flag.String("records", "", "write the record mapping to this CSV file")
	groupsOut := flag.String("groups", "", "write the group mapping to this CSV file")
	configPath := flag.String("config", "", "load the linkage configuration from this JSON file (overrides the tuning flags)")
	writeConfig := flag.String("write-default-config", "", "write the default configuration as JSON to this file and exit")
	statsOut := flag.String("stats", "", "write a per-iteration JSON run report to this file")
	progress := flag.Bool("progress", false, "print per-iteration progress lines to stderr")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); the -stats report is still written")
	lenient := flag.Bool("lenient", false, "skip bad input rows instead of aborting, printing a data-quality summary to stderr")
	maxBadRows := flag.Int("max-bad-rows", 0, "with -lenient: give up once more than this many rows are skipped (0 = no cap)")
	panicPolicy := flag.String("panic-policy", "fail-fast", "worker panic policy: fail-fast or skip")
	engineFlag := flag.String("engine", "compiled", "comparison engine: compiled (interned values + similarity memo) or naive (interpreted oracle)")
	blockingFlag := flag.String("blocking", "", "blocking scheme: default, high-recall, lsh or lsh+default (empty = the config's choice)")
	shards := flag.Int("shards", 0, "partition pre-matching and the remainder pass into this many block-key shards with transient per-shard state, bounding peak memory (0 = unsharded; results are identical)")
	storeDir := flag.String("store", "", "persist the linkage result as a content-addressed snapshot in this directory (iterative/oneshot only)")
	incremental := flag.Bool("incremental", false, "with -store: serve a stored snapshot matching this input and configuration instead of recomputing")
	storeVerify := flag.Bool("store-verify", false, "with -store: verify and repair the snapshot directory, print the summary and exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	if *pprofAddr != "" {
		if err := obs.ServePprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	var stats *obs.Stats
	if *statsOut != "" || *progress {
		var sink obs.Sink
		if *progress {
			sink = obs.NewTextSink(os.Stderr)
		}
		stats = obs.NewStats(sink)
	}
	if *writeConfig != "" {
		f, err := os.Create(*writeConfig)
		if err != nil {
			log.Fatal(err)
		}
		if err := linkage.WriteConfigSpec(f, linkage.DefaultConfigSpec()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *writeConfig)
		return
	}
	if *storeVerify {
		if *storeDir == "" {
			log.Fatal("-store-verify requires -store")
		}
		if err := storeVerifyRun(*storeDir, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM and -timeout both cancel the pipeline context; the
	// linkage aborts at its next checkpoint and the -stats report is still
	// flushed below, so an interrupted run keeps its observability data.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	engine, err := linkage.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	// A JSON config may carry its own engine choice; an explicit -engine
	// flag wins over it.
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	loadOpts := census.LoadOptions{Strict: !*lenient, MaxBadRows: *maxBadRows}

	oldDS := loadCensus(*oldPath, *oldYear, loadOpts)
	newDS := loadCensus(*newPath, *newYear, loadOpts)
	fmt.Printf("loaded %d (%d records) and %d (%d records)\n",
		oldDS.Year, oldDS.NumRecords(), newDS.Year, newDS.NumRecords())

	var recordLinks []linkage.RecordLink
	var groupLinks []linkage.GroupLink
	var sources map[linkage.Pair]linkage.LinkSource
	switch *method {
	case "iterative", "oneshot":
		cfg := linkage.DefaultConfig()
		if *configPath != "" {
			f, err := os.Open(*configPath)
			if err != nil {
				log.Fatal(err)
			}
			spec, err := linkage.ReadConfigSpec(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			cfg, err = spec.Build()
			if err != nil {
				log.Fatal(err)
			}
		} else {
			cfg.DeltaHigh, cfg.DeltaLow, cfg.DeltaStep = *deltaHigh, *deltaLow, *deltaStep
			cfg.Alpha, cfg.Beta = *alpha, *beta
			cfg.AgeTolerance = *ageTol
		}
		if *configPath == "" || engineSet {
			cfg.Engine = engine
		}
		if *shards > 0 {
			cfg.Shards = *shards
		}
		// A JSON config may carry its own blocking choice; an explicit
		// -blocking flag wins over it.
		if *blockingFlag != "" {
			strategies, err := linkage.ParseBlocking(*blockingFlag)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Strategies = strategies
		}
		if *method == "oneshot" {
			cfg.DeltaHigh, cfg.DeltaStep = cfg.DeltaLow, 0
		}
		switch *panicPolicy {
		case "fail-fast":
			cfg.Panics = linkage.PanicFailFast
		case "skip":
			cfg.Panics = linkage.PanicSkip
		default:
			log.Fatalf("unknown -panic-policy %q (want fail-fast or skip)", *panicPolicy)
		}
		cfg.Obs = stats
		var snaps *store.Store
		if *storeDir != "" {
			var err error
			if snaps, err = store.Open(*storeDir); err != nil {
				log.Fatal(err)
			}
		} else if *incremental {
			log.Fatal("-incremental requires -store")
		}
		res, err := runLinkage(ctx, oldDS, newDS, cfg, stats, *statsOut, snaps, *incremental)
		if err != nil {
			log.Fatal(err)
		}
		recordLinks, groupLinks, sources = res.RecordLinks, res.GroupLinks, res.Sources
		fmt.Printf("%d iterations, %d remainder record links\n",
			len(res.Iterations), res.RemainderRecordLinks)
	case "cl":
		clCfg := collective.DefaultConfig()
		clCfg.Engine = engine
		stop := stats.Stage("baseline_cl")
		recordLinks = collective.Link(oldDS, newDS, clCfg)
		stop()
	case "graphsim":
		stop := stats.Stage("baseline_graphsim")
		res := graphsim.Link(oldDS, newDS, graphsim.DefaultConfig())
		stop()
		recordLinks, groupLinks = res.RecordLinks, res.GroupLinks
	default:
		log.Fatalf("unknown method %q", *method)
	}
	fmt.Printf("record links: %d, group links: %d\n", len(recordLinks), len(groupLinks))

	if *statsOut != "" {
		writeStats(*statsOut, stats)
	}

	if *recordsOut != "" {
		writeCSV(*recordsOut, []string{"old_record", "new_record", "similarity", "source"},
			func(w *csv.Writer) error {
				for _, l := range recordLinks {
					source := ""
					if src, ok := sources[linkage.Pair{Old: l.Old, New: l.New}]; ok {
						source = fmt.Sprintf("%s@%.2f", src.Kind, src.Delta)
					}
					if err := w.Write([]string{l.Old, l.New,
						strconv.FormatFloat(l.Sim, 'f', 4, 64), source}); err != nil {
						return err
					}
				}
				return nil
			})
	}
	if *groupsOut != "" {
		writeCSV(*groupsOut, []string{"old_household", "new_household"},
			func(w *csv.Writer) error {
				for _, l := range groupLinks {
					if err := w.Write([]string{l.Old, l.New}); err != nil {
						return err
					}
				}
				return nil
			})
	}

	if hasTruth(oldDS) && hasTruth(newDS) {
		rm := evaluate.RecordMetrics(recordLinks, evaluate.TrueRecordMapping(oldDS, newDS))
		t := &report.Table{
			Title:  "Quality vs ground truth",
			Header: []string{"mapping", "precision", "recall", "f-measure", "tp", "fp", "fn"},
		}
		t.AddRow("record", report.Pct(rm.Precision), report.Pct(rm.Recall), report.Pct(rm.F1),
			report.I(rm.TP), report.I(rm.FP), report.I(rm.FN))
		if len(groupLinks) > 0 {
			gm := evaluate.GroupMetrics(groupLinks, evaluate.TrueGroupMapping(oldDS, newDS))
			t.AddRow("group", report.Pct(gm.Precision), report.Pct(gm.Recall), report.Pct(gm.F1),
				report.I(gm.TP), report.I(gm.FP), report.I(gm.FN))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}

		// Why were links missed? Break the false negatives down by cause.
		b := evaluate.AnalyzeErrors(recordLinks, oldDS, newDS)
		et := &report.Table{
			Title:  "Missed links by cause",
			Header: []string{"cause", "count"},
		}
		for c := evaluate.CauseMissingName; c <= evaluate.CauseOther; c++ {
			if n := b.FalseNegatives[c]; n > 0 {
				et.AddRow(c.String(), report.I(n))
			}
		}
		if len(et.Rows) > 0 {
			fmt.Println()
			if err := et.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// loadCensus reads a census CSV under the given load policy; the year is
// parsed from the file name when not given explicitly. A lenient load that
// skipped or repaired rows prints the data-quality summary to stderr.
// storeVerifyRun is the -store-verify maintenance mode: heal the snapshot
// directory and print the typed summary. Corrupt snapshots are a success
// (found, quarantined, reported); only the directory itself failing is an
// error.
func storeVerifyRun(dir string, out io.Writer) error {
	snaps, err := store.Open(dir)
	if err != nil {
		return err
	}
	rep, err := snaps.Repair()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "store %s: %s\n", snaps.Dir(), rep.Summary())
	for _, p := range rep.Problems {
		suffix := ""
		if p.Quarantined {
			suffix = " (quarantined)"
		}
		fmt.Fprintf(out, "  %s: %s%s\n", p.File, p.Reason, suffix)
	}
	return nil
}

func loadCensus(path string, year int, opts census.LoadOptions) *census.Dataset {
	if year == 0 {
		m := regexp.MustCompile(`(1[89]\d\d)`).FindString(filepath.Base(path))
		if m == "" {
			log.Fatalf("%s: cannot infer census year, pass -old-year/-new-year", path)
		}
		year, _ = strconv.Atoi(m)
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, rep, err := census.ReadCSVOptions(f, year, opts)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if rep != nil && !rep.Clean() {
		fmt.Fprintf(os.Stderr, "%s:\n%s", path, rep.Summary())
	}
	return d
}

// runLinkage runs the context-aware linkage and, when it fails (timeout,
// SIGINT, worker panic), still writes the -stats report before returning so
// an aborted run keeps its partial observability data. With a snapshot
// store, -incremental first tries the stored result for this exact
// (configuration, input datasets) address — zero comparisons on a hit — and
// every computed result is written back (write-through).
func runLinkage(ctx context.Context, oldDS, newDS *census.Dataset, cfg linkage.Config,
	stats *obs.Stats, statsPath string, snaps *store.Store, incremental bool) (*linkage.Result, error) {
	var cfgHash string
	if snaps != nil {
		cfgHash = cfg.Fingerprint()
	}
	if snaps != nil && incremental {
		res, err := snaps.LoadResult(cfgHash, oldDS, newDS)
		switch {
		case err != nil:
			stats.Add(obs.StoreCorrupt, 1)
			log.Printf("store: %v (recomputing)", err)
		case res != nil:
			stats.Add(obs.StoreHits, 1)
			fmt.Printf("reused snapshot from %s\n", snaps.Dir())
			return res, nil
		default:
			stats.Add(obs.StoreMisses, 1)
		}
	}
	res, err := linkage.LinkContext(ctx, oldDS, newDS, cfg)
	if err != nil {
		if statsPath != "" {
			writeStats(statsPath, stats)
		}
		return res, err
	}
	if snaps != nil {
		if serr := snaps.SaveResult(cfgHash, oldDS, newDS, res); serr != nil {
			return nil, serr
		}
		fmt.Printf("stored snapshot in %s\n", snaps.Dir())
	}
	return res, nil
}

// writeStats finalizes the collector and writes its JSON run report.
func writeStats(path string, stats *obs.Stats) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteReport(f, stats.Done()); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func hasTruth(d *census.Dataset) bool {
	for _, r := range d.Records() {
		if r.TruthID != "" {
			return true
		}
	}
	return false
}

func writeCSV(path string, header []string, body func(*csv.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		log.Fatal(err)
	}
	if err := body(w); err != nil {
		log.Fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
