package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
	"censuslink/internal/store"
)

// TestStoreVerifyRun seeds a snapshot directory with one good snapshot, one
// bit-rotted one and temp litter, then runs the -store-verify mode: the
// corrupt file must be quarantined with its reason printed, the good one
// left serving, and a second pass must come back clean.
func TestStoreVerifyRun(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old, new := paperexample.Old(), paperexample.New()
	cfg := linkage.DefaultConfig()
	cfg.Workers = 1
	res, err := linkage.LinkContext(context.Background(), old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult(cfg.Fingerprint(), old, new, res); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult("other-config", old, new, res); err != nil {
		t.Fatal(err)
	}
	// Bit-rot the second snapshot.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap_*.jsonl"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	var rotted string
	for _, p := range snaps {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), `"config_hash":"other-config"`) {
			data[len(data)/2] ^= 0x10
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			rotted = filepath.Base(p)
		}
	}
	if rotted == "" {
		t.Fatal("could not locate the other-config snapshot to rot")
	}

	var out strings.Builder
	if err := storeVerifyRun(dir, &out); err != nil {
		t.Fatalf("storeVerifyRun: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "corrupt 1") || !strings.Contains(got, "ok 1") {
		t.Errorf("summary does not report 1 corrupt / 1 ok:\n%s", got)
	}
	if !strings.Contains(got, rotted) || !strings.Contains(got, "(quarantined)") {
		t.Errorf("problem listing missing %s or its quarantine mark:\n%s", rotted, got)
	}
	if _, err := os.Stat(filepath.Join(dir, rotted+".corrupt")); err != nil {
		t.Errorf("rotted snapshot not quarantined: %v", err)
	}

	// The good snapshot still loads; a second pass is clean apart from the
	// quarantined corpse.
	loaded, err := s.LoadResult(cfg.Fingerprint(), old, new)
	if err != nil || loaded == nil {
		t.Errorf("good snapshot lost: (%v, %v)", loaded, err)
	}
	out.Reset()
	if err := storeVerifyRun(dir, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "corrupt 0") {
		t.Errorf("second pass still reports corruption:\n%s", out.String())
	}
}
