package main

import (
	"context"
	"encoding/csv"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/paperexample"
)

func writeDataset(t *testing.T, dir, name string, d *census.Dataset) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := census.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCensusInfersYear(t *testing.T) {
	dir := t.TempDir()
	path := writeDataset(t, dir, "census_1871.csv", paperexample.Old())
	d := loadCensus(path, 0, census.LoadOptions{Strict: true})
	if d.Year != 1871 {
		t.Errorf("inferred year = %d", d.Year)
	}
	if d.NumRecords() != 8 {
		t.Errorf("records = %d", d.NumRecords())
	}
	// Explicit year overrides the file name.
	if got := loadCensus(path, 1899, census.LoadOptions{Strict: true}); got.Year != 1899 {
		t.Errorf("explicit year = %d", got.Year)
	}
}

// TestRunLinkageFlushesStatsOnAbort: a timed-out run must still produce the
// -stats report, so the observability data of an aborted multi-hour run is
// not lost with it.
func TestRunLinkageFlushesStatsOnAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats := obs.NewStats(nil)
	cfg := linkage.DefaultConfig()
	cfg.Obs = stats
	statsPath := filepath.Join(t.TempDir(), "stats.json")

	_, err := runLinkage(ctx, paperexample.Old(), paperexample.New(), cfg, stats, statsPath, nil, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	data, readErr := os.ReadFile(statsPath)
	if readErr != nil {
		t.Fatalf("stats report not written on abort: %v", readErr)
	}
	if len(data) == 0 {
		t.Error("stats report empty")
	}
}

func TestHasTruth(t *testing.T) {
	d := paperexample.Old()
	if hasTruth(d) {
		t.Error("running example has no truth IDs")
	}
	d.Records()[0].TruthID = "p1"
	if !hasTruth(d) {
		t.Error("truth ID not detected")
	}
}

func TestWriteCSVHelper(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	writeCSV(path, []string{"a", "b"}, func(w *csv.Writer) error {
		return w.Write([]string{"1", "2"})
	})
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "a" || rows[1][1] != "2" {
		t.Errorf("rows = %v", rows)
	}
}
