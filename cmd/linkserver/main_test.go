package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

// syncBuffer lets the test poll run's stdout while run keeps writing.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writeSeries lays the paper's running example out as a census series dir.
func writeSeries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s := census.NewSeries(paperexample.Old(), paperexample.New())
	if err := census.WriteSeriesDir(dir, s); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port,
// queries it over HTTP, then cancels the context (the SIGTERM path) and
// verifies the graceful drain and the final stats flush.
func TestRunServesAndShutsDown(t *testing.T) {
	dir := writeSeries(t)
	statsPath := filepath.Join(t.TempDir(), "report.json")
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-dir", dir, "-addr", "127.0.0.1:0", "-eager", "-stats", statsPath,
		}, &out)
	}()

	// Wait for the listener line, then extract the live address.
	addrRE := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line after 10s:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// -eager warmed the cache; /healthz reports it and queries succeed.
	var h struct {
		Status      string `json:"status"`
		PairsCached int    `json:"pairs_cached"`
	}
	getJSON(t, base+"/healthz", &h)
	if h.Status != "ok" || h.PairsCached != 1 {
		t.Errorf("healthz = %+v, want ok with 1 cached pair", h)
	}
	var rl struct {
		Page struct {
			Total int `json:"total"`
		} `json:"page"`
	}
	getJSON(t, base+"/v1/links/1871/1881/records", &rl)
	if rl.Page.Total == 0 {
		t.Error("no record links served")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "censuslink_pipeline_total") {
		t.Errorf("/metrics missing pipeline counters:\n%s", metrics)
	}

	// SIGTERM path: cancel drains and exits cleanly, flushing the report.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not shut down:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shutdown complete") {
		t.Errorf("missing shutdown line:\n%s", out.String())
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats report not flushed: %v", err)
	}
	var rep struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad stats report: %v\n%s", err, data)
	}
	if len(rep.Counters) == 0 {
		t.Errorf("stats report has no counters:\n%s", data)
	}
}

// bootServer starts run() in the background with the given extra flags and
// returns the live base URL once the listener line appears. Cleanup cancels
// the run context and waits for the graceful exit.
func bootServer(t *testing.T, extra ...string) string {
	t.Helper()
	dir := writeSeries(t)
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-dir", dir, "-addr", "127.0.0.1:0"}, extra...), &out)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Errorf("run did not shut down:\n%s", out.String())
		}
	})
	addrRE := regexp.MustCompile(`listening on (http://[^\s]+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line after 10s:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStalledHeaderDropped: a client that opens a connection and never
// finishes its request header is cut off by ReadHeaderTimeout instead of
// holding a server goroutine forever (the slowloris regression — the
// listener used to be built with no timeouts at all).
func TestStalledHeaderDropped(t *testing.T) {
	base := bootServer(t, "-read-header-timeout", "200ms")

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request header: no terminating blank line, then silence.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(make([]byte, 256))
	if err == nil || n > 0 {
		t.Fatalf("server answered a half-written header: n=%d err=%v", n, err)
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("connection still open 5s after the 200ms header timeout")
	}
	// The server dropped us — promptly, not at some multi-second default.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("connection dropped only after %v", elapsed)
	}

	// A well-formed client on a fresh connection is unaffected.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after stalled peer: %d", resp.StatusCode)
	}
}

// TestRunFlagErrors: bad invocations fail fast instead of serving.
func TestRunFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := run(context.Background(), []string{"-dir", t.TempDir()}, &out); err == nil {
		t.Error("empty series dir accepted")
	}
	if err := run(context.Background(), []string{
		"-dir", writeSeries(t), "-engine", "nope", "-addr", "127.0.0.1:0",
	}, &out); err == nil {
		t.Error("bad -engine accepted")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}
