// Command linkserver serves a census series as a long-lived linkage query
// service. It loads every census_<year>.csv from -dir, links successive
// year pairs at most once each — lazily on first demand or eagerly with
// -eager — and answers JSON queries for record links (with provenance),
// group links, evolution patterns, household timelines and per-record
// lifecycles. New census years arrive as events: POST /v1/census links the
// new pair incrementally and GET /v1/evolution/watch streams the resulting
// lifecycle transitions (SSE with a long-poll fallback). Pipeline counters
// and stage timings are exported on /metrics in Prometheus text format;
// /healthz, /v1/openapi.json and /debug/pprof are also served.
//
// Usage:
//
//	linkserver -dir data/series [-addr :8199] [-eager] \
//	           [-engine compiled|naive] [-config cfg.json] \
//	           [-compute-timeout 5m] [-max-concurrent 2] \
//	           [-max-inflight 256] [-rate-limit 50 -rate-burst 32] \
//	           [-read-header-timeout 5s] [-read-timeout 60s] \
//	           [-write-timeout 2m] [-idle-timeout 2m] \
//	           [-stats report.json] [-lenient] [-max-bad-rows 100] \
//	           [-store snapdir -store-refresh 2s -store-retry 3] \
//	           [-max-ingest-bytes 67108864] [-watch-buffer 1024] \
//	           [-watch-heartbeat 15s]
//
// With -store, N linkservers may share one snapshot directory: each writes
// the pairs it computes and adopts (every -store-refresh) those its
// replicas wrote. A store that stops answering flips the server into
// degraded mode — queries keep being served from cache and pipeline, the
// censuslink_store_degraded gauge reads 1 and /healthz carries
// "store":"degraded" — and recovery is automatic once the directory works
// again.
//
// SIGINT/SIGTERM drains in-flight requests, cancels any running
// computations and, with -stats, flushes the final pipeline report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/server"
	"censuslink/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("linkserver: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the whole server lifecycle: flag parsing, series loading, serving,
// graceful drain when ctx is cancelled. Split from main so tests can drive
// it with their own context and capture stdout.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("linkserver", flag.ContinueOnError)
	dir := fs.String("dir", "", "directory of census_<year>.csv files (required)")
	addr := fs.String("addr", "localhost:8199", "HTTP listen address")
	eager := fs.Bool("eager", false, "compute all year pairs and the evolution graph at startup")
	engineFlag := fs.String("engine", "compiled", "comparison engine: compiled or naive")
	blockingFlag := fs.String("blocking", "", "blocking scheme: default, high-recall, lsh or lsh+default (empty = the config's choice)")
	shards := fs.Int("shards", 0, "partition pre-matching and the remainder pass into this many block-key shards, bounding peak memory per computation (0 = unsharded; results and snapshots are identical)")
	configPath := fs.String("config", "", "load the linkage configuration from this JSON file")
	computeTimeout := fs.Duration("compute-timeout", 0, "cap one year-pair computation (0 = no cap)")
	maxConcurrent := fs.Int("max-concurrent", 2, "year-pair computations allowed to run at once")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "drop a connection whose request header has not arrived in time")
	readTimeout := fs.Duration("read-timeout", 60*time.Second, "cap reading one full request (0 = no cap)")
	writeTimeout := fs.Duration("write-timeout", 2*time.Minute, "cap writing one full response (0 = no cap)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "close keep-alive connections idle this long")
	maxInFlight := fs.Int("max-inflight", 256, "API requests served at once before shedding with 503 (0 = no cap)")
	rateLimit := fs.Float64("rate-limit", 0, "per-client sustained requests/second before 429 (0 = no limit)")
	rateBurst := fs.Int("rate-burst", 32, "per-client token-bucket burst capacity for -rate-limit")
	statsOut := fs.String("stats", "", "write the final pipeline JSON report to this file on shutdown")
	storeDir := fs.String("store", "", "warm-start the pair cache from snapshots in this directory and write computed pairs back")
	storeRefresh := fs.Duration("store-refresh", 2*time.Second, "with -store: adopt snapshots other replicas write, every this often (0 = no refresh loop)")
	storeRetry := fs.Int("store-retry", 0, "with -store: attempts per snapshot I/O operation on transient errors (0 = default)")
	lenient := fs.Bool("lenient", false, "skip bad input rows instead of aborting")
	maxBadRows := fs.Int("max-bad-rows", 0, "with -lenient: give up once more than this many rows are skipped (0 = no cap)")
	maxIngestBytes := fs.Int64("max-ingest-bytes", 0, "cap one POST /v1/census CSV upload (0 = the server default, 64 MiB)")
	watchBuffer := fs.Int("watch-buffer", 0, "events the /v1/evolution/watch feed retains for Last-Event-ID resume (0 = the server default, 1024)")
	watchHeartbeat := fs.Duration("watch-heartbeat", 0, "SSE keep-alive comment interval for /v1/evolution/watch (0 = the server default, 15s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-dir is required")
	}

	cfg := linkage.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		spec, err := linkage.ReadConfigSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		if cfg, err = spec.Build(); err != nil {
			return err
		}
	}
	engineSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if *configPath == "" || engineSet {
		engine, err := linkage.ParseEngine(*engineFlag)
		if err != nil {
			return err
		}
		cfg.Engine = engine
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	// A JSON config may carry its own blocking choice; an explicit -blocking
	// flag wins over it.
	if *blockingFlag != "" {
		strategies, err := linkage.ParseBlocking(*blockingFlag)
		if err != nil {
			return err
		}
		cfg.Strategies = strategies
	}

	series, reports, err := census.ReadSeriesDirOptions(*dir,
		census.LoadOptions{Strict: !*lenient, MaxBadRows: *maxBadRows})
	if err != nil {
		return err
	}
	for _, rep := range reports {
		if rep != nil && !rep.Clean() {
			fmt.Fprintf(os.Stderr, "census %d:\n%s", rep.Year, rep.Summary())
		}
	}
	fmt.Fprintf(stdout, "loaded series %v (%d records)\n", series.Years(), totalRecords(series))

	stats := obs.NewStats(nil)
	srvCfg := server.Config{
		Series:         series,
		Linkage:        cfg,
		MaxConcurrent:  *maxConcurrent,
		ComputeTimeout: *computeTimeout,
		Stats:          stats,
		MaxInFlight:    *maxInFlight,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
		MaxIngestBytes: *maxIngestBytes,
		WatchBuffer:    *watchBuffer,
		WatchHeartbeat: *watchHeartbeat,
	}
	if *storeDir != "" {
		snaps, err := store.OpenOptions(*storeDir, store.Options{Retry: store.RetryPolicy{Attempts: *storeRetry}})
		if err != nil {
			return err
		}
		srvCfg.Store = snaps
		srvCfg.StoreRefresh = *storeRefresh
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		return err
	}
	if *storeDir != "" {
		fmt.Fprintf(stdout, "store %s: %d of %d pairs warm\n",
			*storeDir, int(stats.Total(obs.StoreHits)), len(series.Pairs()))
	}
	if *eager {
		fmt.Fprintf(stdout, "precomputing %d year pairs...\n", len(series.Pairs()))
		if err := srv.Precompute(ctx); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "precompute done")
	}

	// Listen explicitly before serving, so "listening on" is only printed
	// once the address really accepts connections (tests rely on this).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Every timeout set: a listener with none lets one stalled client hold
	// a connection (and its goroutine) forever — classic slowloris. The
	// write timeout also bounds streamed list responses, so it defaults
	// well above the compute timeout a cold pair may need.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Abort()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests up to
	// -drain-timeout, then cancel any still-running computations and flush
	// the pipeline report.
	fmt.Fprintln(stdout, "shutting down: draining requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	srv.Abort()
	<-serveErr // always http.ErrServerClosed after Shutdown
	if *statsOut != "" {
		f, err := os.Create(*statsOut)
		if err != nil {
			return err
		}
		if err := obs.WriteReport(f, srv.Stats().Done()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *statsOut)
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return shutdownErr
}

func totalRecords(s *census.Series) int {
	n := 0
	for _, d := range s.Datasets {
		n += d.NumRecords()
	}
	return n
}
