// Command benchall regenerates every table and figure of the paper's
// evaluation section (Tables 1-8, Figure 6) on synthetic census data and
// prints them in the paper's layout.
//
// Usage:
//
//	benchall [-scale 0.1] [-seed 1871] [-only table3] [-o report.txt]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"censuslink/internal/experiments"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchall: ")
	scale := flag.Float64("scale", 0.10, "population scale relative to the paper (1.0 = full Rawtenstall size)")
	seed := flag.Int64("seed", 1871, "random seed for the synthetic series")
	workers := flag.Int("workers", 0, "linkage worker count (0 = all cores)")
	only := flag.String("only", "", "run a single experiment: table1..table8, figure6, ablation, baselines, birthplace or blocking")
	out := flag.String("o", "", "also write the report to this file")
	format := flag.String("format", "text", "output format: text or md")
	svg := flag.String("svg", "", "also render Figure 6 as an SVG bar chart to this file")
	statsOut := flag.String("stats", "", "write a JSON run report aggregating every linkage run to this file")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); the -stats report is still written")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	engineFlag := flag.String("engine", "compiled", "comparison engine: compiled (interned values + similarity memo) or naive (interpreted oracle)")
	flag.Parse()
	engine, err := linkage.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM and -timeout cancel every linkage run through
	// Options.Ctx; the experiments abort at the next linkage checkpoint.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *pprofAddr != "" {
		if err := obs.ServePprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	var stats *obs.Stats
	if *statsOut != "" {
		stats = obs.NewStats(nil)
	}
	// flushStats writes the aggregated run report; it also runs on the error
	// path so a timed-out or interrupted benchmark keeps its partial data.
	flushStats := func(w io.Writer) {
		if *statsOut == "" {
			return
		}
		f, err := os.Create(*statsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteReport(f, stats.Done()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "wrote %s\n", *statsOut)
	}

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	start := time.Now()
	env, err := experiments.NewEnv(experiments.Options{Scale: *scale, Seed: *seed, Workers: *workers, Obs: stats, Ctx: ctx, Engine: engine})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "censuslink experiment harness (scale=%.2f seed=%d, generated in %s)\n\n",
		*scale, *seed, time.Since(start).Round(time.Millisecond))

	type experiment struct {
		name string
		run  func() (*report.Table, error)
	}
	exps := []experiment{
		{"table1", func() (*report.Table, error) { return env.Table1(), nil }},
		{"table2", func() (*report.Table, error) { return env.Table2(), nil }},
		{"table3", func() (*report.Table, error) { t, _, err := env.Table3(); return t, err }},
		{"table4", func() (*report.Table, error) { t, _, err := env.Table4(); return t, err }},
		{"table5", func() (*report.Table, error) { t, _, err := env.Table5(); return t, err }},
		{"table6", func() (*report.Table, error) { t, _, err := env.Table6(); return t, err }},
		{"table7", func() (*report.Table, error) { t, _, err := env.Table7(); return t, err }},
		{"figure6", func() (*report.Table, error) { t, _, err := env.Figure6(); return t, err }},
		{"table8", func() (*report.Table, error) { t, _, err := env.Table8(); return t, err }},
		{"ablation", func() (*report.Table, error) { t, _, err := env.Ablation(); return t, err }},
		{"baselines", func() (*report.Table, error) { t, _, err := env.Baselines(); return t, err }},
		{"birthplace", func() (*report.Table, error) { t, _, err := env.BirthplaceExtension(); return t, err }},
		{"blocking", func() (*report.Table, error) { t, _, err := env.BlockingComparison(); return t, err }},
		{"decades", func() (*report.Table, error) { t, _, err := env.QualityByPair(); return t, err }},
	}
	ran := 0
	for _, ex := range exps {
		if *only != "" && !strings.EqualFold(*only, ex.name) {
			continue
		}
		ran++
		t0 := time.Now()
		table, err := ex.run()
		if err != nil {
			flushStats(w)
			log.Fatalf("%s: %v", ex.name, err)
		}
		var renderErr error
		if *format == "md" {
			renderErr = table.RenderMarkdown(w)
		} else {
			renderErr = table.Render(w)
		}
		if renderErr != nil {
			log.Fatal(renderErr)
		}
		fmt.Fprintf(w, "(%s in %s)\n\n", ex.name, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *only)
	}
	if *svg != "" {
		c, err := env.Figure6Chart()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*svg)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.RenderSVG(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "wrote %s\n", *svg)
	}
	flushStats(w)
	fmt.Fprintf(w, "total: %s\n", time.Since(start).Round(time.Millisecond))
}
