// Command explain audits the subgraph matching of one household pair: it
// shows both households, the candidate vertex pairs (with similarities and
// age-window verdicts), the edge compatibility matrix, and the resulting
// subgraph scores — or explains why no subgraph exists. Useful for
// debugging why two households were or were not linked.
//
// With -stats it instead renders a JSON run report (as written by
// linker -stats or benchall -stats) as human-readable tables.
//
// Usage:
//
//	explain -old census_1871.csv -new census_1881.csv \
//	        -old-household 1871_h12 -new-household 1881_h12 [-delta 0.5]
//	explain -stats run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/hgraph"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explain: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the whole command, split from main so tests can drive it with
// explicit arguments and capture stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	oldPath := fs.String("old", "", "older census CSV (required)")
	newPath := fs.String("new", "", "newer census CSV (required)")
	oldHH := fs.String("old-household", "", "household ID in the older census (required)")
	newHH := fs.String("new-household", "", "household ID in the newer census (required)")
	delta := fs.Float64("delta", 0.5, "pre-matching threshold to explain at")
	ageTol := fs.Int("age-tolerance", 3, "age tolerance in years")
	alpha := fs.Float64("alpha", 0.2, "record-similarity weight")
	beta := fs.Float64("beta", 0.7, "edge-similarity weight")
	statsPath := fs.String("stats", "", "render this JSON run report as tables and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *statsPath != "" {
		return renderStats(*statsPath, stdout)
	}
	if *oldPath == "" || *newPath == "" || *oldHH == "" || *newHH == "" {
		fs.Usage()
		return fmt.Errorf("-old, -new, -old-household and -new-household are required")
	}

	oldDS, err := load(*oldPath)
	if err != nil {
		return err
	}
	newDS, err := load(*newPath)
	if err != nil {
		return err
	}
	gOld, err := mustHousehold(oldDS, *oldHH)
	if err != nil {
		return err
	}
	gNew, err := mustHousehold(newDS, *newHH)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "=== %s (%d) ===\n", *oldHH, oldDS.Year)
	printMembers(stdout, oldDS, gOld)
	fmt.Fprintf(stdout, "\n=== %s (%d) ===\n", *newHH, newDS.Year)
	printMembers(stdout, newDS, gNew)

	sim := linkage.OmegaTwo(*delta)
	pre, err := linkage.PreMatchOpts(context.Background(), oldDS.Records(), newDS.Records(),
		linkage.PreMatchOptions{
			Sim: sim, OldYear: oldDS.Year, NewYear: newDS.Year,
			Strategies: block.DefaultStrategies(),
		})
	if err != nil {
		return err
	}
	cfg := linkage.MatchConfig{
		AgeTolerance: *ageTol,
		YearGap:      newDS.Year - oldDS.Year,
		Alpha:        *alpha,
		Beta:         *beta,
	}
	graphOld := hgraph.Build(oldDS, gOld)
	graphNew := hgraph.Build(newDS, gNew)

	fmt.Fprintf(stdout, "\n--- candidate vertex pairs (delta=%.2f) ---\n", *delta)
	candidates := 0
	for _, o := range graphOld.Members() {
		lo, okO := pre.Label(o.ID)
		for _, n := range graphNew.Members() {
			_, direct := pre.Sims[linkage.Pair{Old: o.ID, New: n.ID}]
			ln, okN := pre.Label(n.ID)
			sameLabel := okO && okN && lo == ln
			if !direct && !sameLabel {
				continue
			}
			candidates++
			verdict := "ok"
			if !cfg.AgeConsistent(o, n) {
				verdict = "REJECTED: age gap inconsistent with the census interval"
			}
			kind := "transitive"
			if direct {
				kind = "direct"
			}
			fmt.Fprintf(stdout, "  %-14s %-22s ~ %-22s sim=%.2f  ages %d->%d  [%s] %s\n",
				kind, name(o), name(n), sim.AggSim(o, n), o.Age, n.Age, o.ID+"/"+n.ID, verdict)
		}
	}
	if candidates == 0 {
		fmt.Fprintln(stdout, "  none: no member pair is similar at this threshold.")
		fmt.Fprintln(stdout, "\nverdict: NO LINK (no shared similar records)")
		return nil
	}

	sub := linkage.MatchGroups(graphOld, graphNew, pre, sim, cfg)
	if sub == nil {
		fmt.Fprintln(stdout, "\nverdict: NO LINK (fewer than two compatible vertices, or no edge")
		fmt.Fprintln(stdout, "with matching relationship type and similar age difference survived)")
		return nil
	}

	fmt.Fprintln(stdout, "\n--- matched subgraph ---")
	for _, v := range sub.Vertices {
		fmt.Fprintf(stdout, "  vertex  %-22s ~ %-22s sim=%.2f\n", name(v.Old), name(v.New), v.Sim)
	}
	for _, e := range sub.Edges {
		a, b := sub.Vertices[e.I], sub.Vertices[e.J]
		tOld, dOld, _ := graphOld.EdgeBetween(a.Old.ID, b.Old.ID)
		_, dNew, _ := graphNew.EdgeBetween(a.New.ID, b.New.ID)
		fmt.Fprintf(stdout, "  edge    %s -- %s  type=%s  age-diff %d vs %d  rp_sim=%.2f\n",
			a.Old.FirstName, b.Old.FirstName, tOld, dOld, dNew, e.RpSim)
	}
	fmt.Fprintf(stdout, "\nscores: avg_sim=%.3f  e_sim=%.3f  unique=%.3f  ->  g_sim=%.3f\n",
		sub.AvgSim, sub.ESim, sub.Unique, sub.GSim)
	fmt.Fprintln(stdout, "verdict: candidate LINK (subject to Algorithm 2's disjoint selection)")
	return nil
}

// renderStats renders a JSON run report (linker -stats / benchall -stats)
// as human-readable tables: one row per δ iteration, one per pipeline
// stage, and the run-total counters.
func renderStats(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := obs.ReadReport(f)
	if err != nil {
		return err
	}

	it := &report.Table{
		Title: "Iterations",
		Header: []string{"delta", "blocked", "compared", "links",
			"labels", "group pairs", "subgraphs", "group links", "record links", "time"},
	}
	for _, s := range r.Iterations {
		it.AddRow(
			report.F(s.Delta, 2),
			report.I(int(s.Count(obs.BlockingPairs))),
			report.I(int(s.Count(obs.PairsCompared))),
			report.I(int(s.Count(obs.CandidateLinks))),
			report.I(int(s.Count(obs.ClusterLabels))),
			report.I(int(s.Count(obs.GroupPairs))),
			report.I(int(s.Count(obs.Subgraphs))),
			report.I(int(s.Count(obs.GroupLinks))),
			report.I(int(s.Count(obs.RecordLinks))),
			s.ElapsedNS.Round(time.Millisecond).String(),
		)
	}
	if len(r.Iterations) == 0 {
		it.AddRow("(none)", "", "", "", "", "", "", "", "", "")
	}
	if err := it.Render(w); err != nil {
		return err
	}

	st := &report.Table{
		Title:  "Stages",
		Header: []string{"stage", "calls", "total", "avg"},
	}
	for _, name := range r.StageNames() {
		s := r.Stages[name]
		avg := time.Duration(0)
		if s.Calls > 0 {
			avg = s.TotalNS / time.Duration(s.Calls)
		}
		st.AddRow(name, report.I(s.Calls),
			s.TotalNS.Round(time.Microsecond).String(),
			avg.Round(time.Microsecond).String())
	}
	fmt.Fprintln(w)
	if err := st.Render(w); err != nil {
		return err
	}

	ct := &report.Table{
		Title:  "Run totals",
		Header: []string{"counter", "value"},
	}
	for _, name := range r.CounterNames() {
		ct.AddRow(name, report.I(int(r.Counters[name])))
	}
	ct.AddRow("elapsed", r.ElapsedNS.Round(time.Millisecond).String())
	fmt.Fprintln(w)
	if err := ct.Render(w); err != nil {
		return err
	}

	if len(r.Gauges) == 0 {
		return nil
	}
	gt := &report.Table{
		Title:  "Gauges",
		Header: []string{"gauge", "value"},
	}
	for _, name := range r.GaugeNames() {
		v := r.Gauges[name]
		row := report.I(int(v))
		if strings.HasSuffix(name, "_bytes") {
			row = fmt.Sprintf("%d (%d MB)", v, v>>20)
		}
		gt.AddRow(name, row)
	}
	fmt.Fprintln(w)
	return gt.Render(w)
}

func name(r *census.Record) string {
	return r.FirstName + " " + r.Surname
}

func printMembers(w io.Writer, d *census.Dataset, h *census.Household) {
	for _, m := range d.Members(h) {
		fmt.Fprintf(w, "  %-10s %-24s age=%-3d %s  %s\n", m.Role, name(m), m.Age, m.Occupation, m.Address)
	}
}

func mustHousehold(d *census.Dataset, id string) (*census.Household, error) {
	h := d.Household(id)
	if h == nil {
		return nil, fmt.Errorf("no household %q in the %d census", id, d.Year)
	}
	return h, nil
}

func load(path string) (*census.Dataset, error) {
	m := regexp.MustCompile(`(1[89]\d\d)`).FindString(filepath.Base(path))
	if m == "" {
		return nil, fmt.Errorf("%s: cannot infer census year from the file name", path)
	}
	year, _ := strconv.Atoi(m)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := census.ReadCSV(f, year)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
