// Command explain audits the subgraph matching of one household pair: it
// shows both households, the candidate vertex pairs (with similarities and
// age-window verdicts), the edge compatibility matrix, and the resulting
// subgraph scores — or explains why no subgraph exists. Useful for
// debugging why two households were or were not linked.
//
// With -stats it instead renders a JSON run report (as written by
// linker -stats or benchall -stats) as human-readable tables.
//
// Usage:
//
//	explain -old census_1871.csv -new census_1881.csv \
//	        -old-household 1871_h12 -new-household 1881_h12 [-delta 0.5]
//	explain -stats run.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/hgraph"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explain: ")
	oldPath := flag.String("old", "", "older census CSV (required)")
	newPath := flag.String("new", "", "newer census CSV (required)")
	oldHH := flag.String("old-household", "", "household ID in the older census (required)")
	newHH := flag.String("new-household", "", "household ID in the newer census (required)")
	delta := flag.Float64("delta", 0.5, "pre-matching threshold to explain at")
	ageTol := flag.Int("age-tolerance", 3, "age tolerance in years")
	alpha := flag.Float64("alpha", 0.2, "record-similarity weight")
	beta := flag.Float64("beta", 0.7, "edge-similarity weight")
	statsPath := flag.String("stats", "", "render this JSON run report as tables and exit")
	flag.Parse()
	if *statsPath != "" {
		if err := renderStats(*statsPath, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *oldPath == "" || *newPath == "" || *oldHH == "" || *newHH == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldDS := load(*oldPath)
	newDS := load(*newPath)
	gOld := mustHousehold(oldDS, *oldHH)
	gNew := mustHousehold(newDS, *newHH)

	fmt.Printf("=== %s (%d) ===\n", *oldHH, oldDS.Year)
	printMembers(oldDS, gOld)
	fmt.Printf("\n=== %s (%d) ===\n", *newHH, newDS.Year)
	printMembers(newDS, gNew)

	sim := linkage.OmegaTwo(*delta)
	pre := linkage.PreMatch(oldDS.Records(), oldDS.Year, newDS.Records(), newDS.Year,
		sim, block.DefaultStrategies(), 0)
	cfg := linkage.MatchConfig{
		AgeTolerance: *ageTol,
		YearGap:      newDS.Year - oldDS.Year,
		Alpha:        *alpha,
		Beta:         *beta,
	}
	graphOld := hgraph.Build(oldDS, gOld)
	graphNew := hgraph.Build(newDS, gNew)

	fmt.Printf("\n--- candidate vertex pairs (delta=%.2f) ---\n", *delta)
	candidates := 0
	for _, o := range graphOld.Members() {
		lo, okO := pre.Label(o.ID)
		for _, n := range graphNew.Members() {
			_, direct := pre.Sims[linkage.Pair{Old: o.ID, New: n.ID}]
			ln, okN := pre.Label(n.ID)
			sameLabel := okO && okN && lo == ln
			if !direct && !sameLabel {
				continue
			}
			candidates++
			verdict := "ok"
			if !cfg.AgeConsistent(o, n) {
				verdict = "REJECTED: age gap inconsistent with the census interval"
			}
			kind := "transitive"
			if direct {
				kind = "direct"
			}
			fmt.Printf("  %-14s %-22s ~ %-22s sim=%.2f  ages %d->%d  [%s] %s\n",
				kind, name(o), name(n), sim.AggSim(o, n), o.Age, n.Age, o.ID+"/"+n.ID, verdict)
		}
	}
	if candidates == 0 {
		fmt.Println("  none: no member pair is similar at this threshold.")
		fmt.Println("\nverdict: NO LINK (no shared similar records)")
		return
	}

	sub := linkage.MatchGroups(graphOld, graphNew, pre, sim, cfg)
	if sub == nil {
		fmt.Println("\nverdict: NO LINK (fewer than two compatible vertices, or no edge")
		fmt.Println("with matching relationship type and similar age difference survived)")
		return
	}

	fmt.Println("\n--- matched subgraph ---")
	for _, v := range sub.Vertices {
		fmt.Printf("  vertex  %-22s ~ %-22s sim=%.2f\n", name(v.Old), name(v.New), v.Sim)
	}
	for _, e := range sub.Edges {
		a, b := sub.Vertices[e.I], sub.Vertices[e.J]
		tOld, dOld, _ := graphOld.EdgeBetween(a.Old.ID, b.Old.ID)
		_, dNew, _ := graphNew.EdgeBetween(a.New.ID, b.New.ID)
		fmt.Printf("  edge    %s -- %s  type=%s  age-diff %d vs %d  rp_sim=%.2f\n",
			a.Old.FirstName, b.Old.FirstName, tOld, dOld, dNew, e.RpSim)
	}
	fmt.Printf("\nscores: avg_sim=%.3f  e_sim=%.3f  unique=%.3f  ->  g_sim=%.3f\n",
		sub.AvgSim, sub.ESim, sub.Unique, sub.GSim)
	fmt.Println("verdict: candidate LINK (subject to Algorithm 2's disjoint selection)")
}

// renderStats renders a JSON run report (linker -stats / benchall -stats)
// as human-readable tables: one row per δ iteration, one per pipeline
// stage, and the run-total counters.
func renderStats(path string, w *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := obs.ReadReport(f)
	if err != nil {
		return err
	}

	it := &report.Table{
		Title: "Iterations",
		Header: []string{"delta", "blocked", "compared", "links",
			"labels", "group pairs", "subgraphs", "group links", "record links", "time"},
	}
	for _, s := range r.Iterations {
		it.AddRow(
			report.F(s.Delta, 2),
			report.I(int(s.Count(obs.BlockingPairs))),
			report.I(int(s.Count(obs.PairsCompared))),
			report.I(int(s.Count(obs.CandidateLinks))),
			report.I(int(s.Count(obs.ClusterLabels))),
			report.I(int(s.Count(obs.GroupPairs))),
			report.I(int(s.Count(obs.Subgraphs))),
			report.I(int(s.Count(obs.GroupLinks))),
			report.I(int(s.Count(obs.RecordLinks))),
			s.ElapsedNS.Round(time.Millisecond).String(),
		)
	}
	if len(r.Iterations) == 0 {
		it.AddRow("(none)", "", "", "", "", "", "", "", "", "")
	}
	if err := it.Render(w); err != nil {
		return err
	}

	st := &report.Table{
		Title:  "Stages",
		Header: []string{"stage", "calls", "total", "avg"},
	}
	for _, name := range r.StageNames() {
		s := r.Stages[name]
		avg := time.Duration(0)
		if s.Calls > 0 {
			avg = s.TotalNS / time.Duration(s.Calls)
		}
		st.AddRow(name, report.I(s.Calls),
			s.TotalNS.Round(time.Microsecond).String(),
			avg.Round(time.Microsecond).String())
	}
	fmt.Fprintln(w)
	if err := st.Render(w); err != nil {
		return err
	}

	ct := &report.Table{
		Title:  "Run totals",
		Header: []string{"counter", "value"},
	}
	for _, name := range r.CounterNames() {
		ct.AddRow(name, report.I(int(r.Counters[name])))
	}
	ct.AddRow("elapsed", r.ElapsedNS.Round(time.Millisecond).String())
	fmt.Fprintln(w)
	return ct.Render(w)
}

func name(r *census.Record) string {
	return r.FirstName + " " + r.Surname
}

func printMembers(d *census.Dataset, h *census.Household) {
	for _, m := range d.Members(h) {
		fmt.Printf("  %-10s %-24s age=%-3d %s  %s\n", m.Role, name(m), m.Age, m.Occupation, m.Address)
	}
}

func mustHousehold(d *census.Dataset, id string) *census.Household {
	h := d.Household(id)
	if h == nil {
		log.Fatalf("no household %q in the %d census", id, d.Year)
	}
	return h
}

func load(path string) *census.Dataset {
	m := regexp.MustCompile(`(1[89]\d\d)`).FindString(filepath.Base(path))
	if m == "" {
		log.Fatalf("%s: cannot infer census year from the file name", path)
	}
	year, _ := strconv.Atoi(m)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := census.ReadCSV(f, year)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return d
}
