package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/paperexample"
)

// writeExample writes the paper's running example as census CSVs.
func writeExample(t *testing.T) (oldPath, newPath string) {
	t.Helper()
	dir := t.TempDir()
	for _, d := range []*census.Dataset{paperexample.Old(), paperexample.New()} {
		path := filepath.Join(dir, census.SeriesFileName(d.Year))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := census.WriteCSV(f, d); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, census.SeriesFileName(1871)), filepath.Join(dir, census.SeriesFileName(1881))
}

// TestRunExplainsLinkedPair: the Ashworth household survives 1871→1881, so
// explaining the pair must show candidates and a matched subgraph.
func TestRunExplainsLinkedPair(t *testing.T) {
	oldPath, newPath := writeExample(t)
	var out strings.Builder
	err := run([]string{
		"-old", oldPath, "-new", newPath,
		"-old-household", "1871_a", "-new-household", "1881_a",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"=== 1871_a (1871) ===",
		"candidate vertex pairs",
		"matched subgraph",
		"g_sim=",
		"candidate LINK",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunExplainsNoLink: two unrelated households must get a NO LINK
// verdict, not a subgraph.
func TestRunExplainsNoLink(t *testing.T) {
	oldPath, newPath := writeExample(t)
	var out strings.Builder
	err := run([]string{
		"-old", oldPath, "-new", newPath,
		"-old-household", "1871_a", "-new-household", "1881_c",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "NO LINK") {
		t.Errorf("output missing NO LINK verdict:\n%s", out.String())
	}
}

// TestRunRendersStats: -stats renders a pipeline run report as tables.
func TestRunRendersStats(t *testing.T) {
	stats := obs.NewStats(nil)
	cfg := linkage.DefaultConfig()
	cfg.Obs = stats
	if _, err := linkage.LinkContext(context.Background(), paperexample.Old(), paperexample.New(), cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteReport(f, stats.Done()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-stats", path}, &out); err != nil {
		t.Fatalf("run -stats: %v", err)
	}
	// The example converges after δ=0.65 (StopOnEmpty), so exactly those
	// two iteration rows render.
	for _, want := range []string{"Iterations", "Stages", "Run totals", "0.70", "0.65"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats rendering missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunFlagErrors: bad invocations return errors.
func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	oldPath, newPath := writeExample(t)
	if err := run([]string{
		"-old", oldPath, "-new", newPath,
		"-old-household", "nope", "-new-household", "1881_a",
	}, &out); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown household: err = %v", err)
	}
	if err := run([]string{"-stats", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing stats file accepted")
	}
}
