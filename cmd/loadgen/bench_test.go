package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"censuslink/internal/linkage"
	"censuslink/internal/server"
	"censuslink/internal/synth"
)

func serverBenchScale() float64 {
	if s := os.Getenv("CENSUSLINK_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.02
}

// TestServerBenchTrajectory measures the serving layer under the loadgen
// harness — sustained QPS, latency percentiles and the conditional-GET
// revalidation ratio against a precomputed synthetic series — and writes
// the report named by CENSUSLINK_SERVER_BENCH_JSON (BENCH_server.json).
//
// With CENSUSLINK_SERVER_BENCH_BASELINE set to a previously committed
// report, it also acts as the serving-layer performance regression gate:
// it fails when the unconditional p50 is more than 5x the baseline (the
// wide limit absorbs CI machine variance) or when the pair-link 304 ratio
// falls below 0.9. Skipped when neither variable is set.
func TestServerBenchTrajectory(t *testing.T) {
	path := os.Getenv("CENSUSLINK_SERVER_BENCH_JSON")
	basePath := os.Getenv("CENSUSLINK_SERVER_BENCH_BASELINE")
	if path == "" && basePath == "" {
		t.Skip("set CENSUSLINK_SERVER_BENCH_JSON to write the serving benchmark report, " +
			"or CENSUSLINK_SERVER_BENCH_BASELINE to compare against a committed one")
	}

	series, err := synth.Generate(synth.TestConfig(serverBenchScale(), 1871))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Series:  series,
		Linkage: linkage.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	if err := srv.Precompute(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	load := func(conditional bool) *Summary {
		h, err := NewHarness(context.Background(), Options{
			BaseURL:     ts.URL,
			Concurrency: 8,
			Duration:    2 * time.Second,
			Conditional: conditional,
			Seed:        1871,
			Client:      ts.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := h.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := load(false)
	conditional := load(true)

	t.Logf("plain: %.1f req/s, p50 %.2fms p95 %.2fms p99 %.2fms (%d requests)",
		plain.QPS, plain.P50Ms, plain.P95Ms, plain.P99Ms, plain.Requests)
	t.Logf("conditional: %.1f req/s, p50 %.2fms, pair-link 304 ratio %.3f",
		conditional.QPS, conditional.P50Ms, conditional.PairLinkNotModifiedRatio)

	if plain.TransportErrors != 0 || plain.ServerErrors != 0 ||
		conditional.TransportErrors != 0 || conditional.ServerErrors != 0 {
		t.Errorf("errors under load: plain %d/%d, conditional %d/%d (transport/5xx)",
			plain.TransportErrors, plain.ServerErrors,
			conditional.TransportErrors, conditional.ServerErrors)
	}
	if conditional.PairLinkNotModifiedRatio < 0.9 {
		t.Errorf("pair-link 304 ratio %.3f below the 0.9 acceptance bar",
			conditional.PairLinkNotModifiedRatio)
	}

	report := map[string]any{
		"benchmark":            "LinkserverLoad",
		"scale":                serverBenchScale(),
		"concurrency":          8,
		"duration_seconds":     plain.DurationSeconds,
		"qps":                  plain.QPS,
		"p50_ms":               plain.P50Ms,
		"p95_ms":               plain.P95Ms,
		"p99_ms":               plain.P99Ms,
		"requests":             plain.Requests,
		"transport_errors":     plain.TransportErrors,
		"server_errors":        plain.ServerErrors,
		"conditional_qps":      conditional.QPS,
		"conditional_p50_ms":   conditional.P50Ms,
		"not_modified_ratio":   conditional.PairLinkNotModifiedRatio,
		"conditional_requests": conditional.Requests,
	}
	if path != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if basePath != "" {
		base, err := readServerBenchBaseline(basePath)
		if err != nil {
			t.Fatal(err)
		}
		if base.Scale != serverBenchScale() {
			t.Skipf("baseline scale %.3f != current scale %.3f: not comparable",
				base.Scale, serverBenchScale())
		}
		ratio := plain.P50Ms / base.P50Ms
		t.Logf("p50 vs baseline %s: %.2fms now, %.2fms then (%.2fx)",
			basePath, plain.P50Ms, base.P50Ms, ratio)
		if ratio > 5 {
			t.Errorf("serving p50 regressed %.2fx vs the committed baseline (limit 5x): %.2fms vs %.2fms",
				ratio, plain.P50Ms, base.P50Ms)
		}
	}
}

// serverBenchBaseline is the subset of BENCH_server.json the regression
// gate compares against.
type serverBenchBaseline struct {
	Scale float64 `json:"scale"`
	P50Ms float64 `json:"p50_ms"`
}

func readServerBenchBaseline(path string) (*serverBenchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b serverBenchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.P50Ms <= 0 {
		return nil, fmt.Errorf("%s: missing or non-positive p50_ms", path)
	}
	return &b, nil
}
