// Command loadgen drives a running linkserver with a configurable request
// load and reports latency percentiles, sustained QPS, error rates and —
// in conditional mode — how much of the traffic revalidated to 304s. It is
// the in-repo harness behind BENCH_server.json: the serving-layer analogue
// of the pipeline benchmarks, so "did the server get slower under load" is
// a question `make bench-regress` can answer.
//
// Usage:
//
//	loadgen -url http://localhost:8199 [-c 8] [-duration 10s] \
//	        [-mix records=4,groups=2,patterns=2,timelines=1,household_timeline=2,record_lifecycle=2,years=1] \
//	        [-conditional] [-timeout 30s] [-seed 1] [-retries 3] \
//	        [-out BENCH_server.json]
//
// A request the server sheds with 503 is retried up to -retries times,
// honoring the Retry-After hint with a capped, jittered backoff; retries
// appear in the summary's retries counter while the shed 503s stay visible
// in the status counts.
//
// The endpoint mix weights the /v1 query surface; discovery reads the route
// templates from GET /v1/openapi.json, then fills their path parameters
// from /v1/years plus two sampled link pages. The watch_poll endpoint
// (weight 0 by default) folds the change feed's long-poll fallback into the
// mix. With -conditional every target is fetched once up front and the
// measured window replays the URLs with If-None-Match, exercising the
// server's conditional-GET path the way a caching client would.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the whole harness lifecycle, split from main so tests can drive it
// against an httptest server and capture stdout.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "base URL of the linkserver (required)")
	concurrency := fs.Int("c", 8, "concurrent workers")
	duration := fs.Duration("duration", 10*time.Second, "measured load window")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	mixFlag := fs.String("mix", "", "endpoint mix as name=weight pairs, comma separated (default: the built-in read-heavy mix)")
	conditional := fs.Bool("conditional", false, "prime ETags, then replay with If-None-Match")
	seed := fs.Int64("seed", 1, "seed for the per-worker request schedules")
	out := fs.String("out", "", "write the JSON summary to this file")
	sampleIDs := fs.Int("sample-ids", 8, "record/household IDs sampled per pair for drill-down endpoints")
	retries := fs.Int("retries", 3, "retries per shed (503) request, honoring the server's Retry-After (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		fs.Usage()
		return fmt.Errorf("-url is required")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	h, err := NewHarness(ctx, Options{
		BaseURL:     *url,
		Concurrency: *concurrency,
		Duration:    *duration,
		Timeout:     *timeout,
		Mix:         mix,
		Conditional: *conditional,
		SampleIDs:   *sampleIDs,
		Retries:     *retries,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loadgen: %d workers for %s against %s (conditional=%v)\n",
		*concurrency, *duration, *url, *conditional)
	summary, err := h.Run(ctx)
	if err != nil {
		return err
	}
	printSummary(stdout, summary)
	if *out != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if summary.TransportErrors > 0 || summary.ServerErrors > 0 {
		return fmt.Errorf("%d transport errors, %d server errors",
			summary.TransportErrors, summary.ServerErrors)
	}
	return nil
}

// parseMix turns "records=4,groups=2" into endpoint weights; empty input
// selects the built-in mix.
func parseMix(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q: want name=weight", part)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		mix[name] = w
	}
	return mix, nil
}

func printSummary(w io.Writer, s *Summary) {
	fmt.Fprintf(w, "%d requests in %.2fs: %.1f req/s\n", s.Requests, s.DurationSeconds, s.QPS)
	fmt.Fprintf(w, "latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
	fmt.Fprintf(w, "errors: transport %d, 5xx %d; shed (429/503): %d; retries: %d\n",
		s.TransportErrors, s.ServerErrors, s.Shed, s.Retries)
	if s.Conditional {
		fmt.Fprintf(w, "conditional: %d × 304 overall, pair-link revalidation ratio %.3f\n",
			s.NotModified, s.PairLinkNotModifiedRatio)
	}
	names := make([]string, 0, len(s.Endpoints))
	for name := range s.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.Endpoints[name]
		fmt.Fprintf(w, "  %-20s %7d reqs  p50 %8.2fms  p99 %8.2fms  304s %d\n",
			name, e.Requests, e.P50Ms, e.P99Ms, e.NotModified)
	}
}
