package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// pairLinkEndpoints are the immutable pair-scoped resources whose
// conditional revalidation ratio the summary reports: once their ETag is
// known, a well-behaved server answers nothing but 304s for them.
var pairLinkEndpoints = map[string]bool{
	"records": true, "groups": true, "patterns": true,
}

// defaultMix approximates a read-heavy analytical client: mostly link and
// evolution queries, a sprinkle of per-entity drill-downs and index hits.
// watch_poll (the change feed's long-poll read) is known but off by
// default; give it a weight to fold feed readers into the load.
var defaultMix = map[string]int{
	"records":            4,
	"groups":             2,
	"patterns":           2,
	"timelines":          1,
	"household_timeline": 2,
	"record_lifecycle":   2,
	"years":              1,
	"watch_poll":         0,
}

// mixToOperation maps loadgen's endpoint names to the operationIds of the
// server's OpenAPI document, which discovery reads the path templates from.
var mixToOperation = map[string]string{
	"records":            "record_links",
	"groups":             "group_links",
	"patterns":           "patterns",
	"timelines":          "timelines",
	"household_timeline": "household_timeline",
	"record_lifecycle":   "record_lifecycle",
	"years":              "years",
	"watch_poll":         "evolution_watch",
}

// Options configures one load run against a live linkserver.
type Options struct {
	// BaseURL is the server root, e.g. http://localhost:8199.
	BaseURL string
	// Concurrency is the number of worker goroutines issuing requests;
	// <= 0 means 8.
	Concurrency int
	// Duration is the measured window; <= 0 means 10s.
	Duration time.Duration
	// Timeout caps one request; <= 0 means 30s.
	Timeout time.Duration
	// Mix weights the endpoints (keys of defaultMix); nil means defaultMix.
	// Endpoints with weight <= 0 are not exercised.
	Mix map[string]int
	// Conditional sends If-None-Match revalidations: the discovery pass
	// primes an ETag cache with one full response per target URL, and the
	// measured window replays them conditionally.
	Conditional bool
	// SampleIDs bounds how many record/household IDs discovery samples per
	// pair for the drill-down endpoints; <= 0 means 8.
	SampleIDs int
	// Retries is how many times one shed request (503 with the server's
	// Retry-After hint) is retried before the response is final; each retry
	// sleeps the hinted delay, jittered and capped at maxRetryDelay. <= 0
	// disables retrying. Retries are counted in the summary, never hidden:
	// the 503s still appear in the status counts and the Shed total.
	Retries int
	// Seed makes the per-worker request schedules reproducible.
	Seed int64
	// Client overrides the HTTP client (tests inject an httptest client);
	// nil builds one sized for Concurrency.
	Client *http.Client
}

// EndpointSummary aggregates one endpoint's results.
type EndpointSummary struct {
	Requests        int64            `json:"requests"`
	Status          map[string]int64 `json:"status"`
	TransportErrors int64            `json:"transport_errors"`
	Retries         int64            `json:"retries"`
	NotModified     int64            `json:"not_modified"`
	P50Ms           float64          `json:"p50_ms"`
	P95Ms           float64          `json:"p95_ms"`
	P99Ms           float64          `json:"p99_ms"`
}

// Summary is the machine-readable result of one load run; it is what
// BENCH_server.json holds.
type Summary struct {
	BaseURL         string  `json:"base_url"`
	Concurrency     int     `json:"concurrency"`
	DurationSeconds float64 `json:"duration_seconds"`
	Conditional     bool    `json:"conditional"`

	Requests int64   `json:"requests"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`

	// TransportErrors are requests that never produced a status line;
	// ServerErrors are 5xx responses; Shed counts 429 + 503 rejections;
	// Retries counts Retry-After-honoring re-issues of shed requests (each
	// retry is also its own entry in Requests and the status counts).
	TransportErrors int64 `json:"transport_errors"`
	ServerErrors    int64 `json:"server_errors"`
	Shed            int64 `json:"shed"`
	Retries         int64 `json:"retries"`

	// NotModified counts 304 responses across all endpoints;
	// PairLinkNotModifiedRatio is 304s over all requests to the immutable
	// pair-link endpoints (records, groups, patterns) — the conditional-GET
	// effectiveness measure.
	NotModified              int64   `json:"not_modified"`
	PairLinkNotModifiedRatio float64 `json:"pair_link_not_modified_ratio"`

	Endpoints map[string]EndpointSummary `json:"endpoints"`
}

// target is one concrete URL a worker may hit, tagged with its endpoint
// name for the per-endpoint stats.
type target struct {
	endpoint string
	url      string
}

// endpointStats is one worker's tally for one endpoint; workers own their
// stats exclusively and the run merges them afterwards, so the request loop
// takes no locks.
type endpointStats struct {
	requests        int64
	status          map[int]int64
	transportErrors int64
	retries         int64
	latenciesMs     []float64
}

// Harness drives a fixed target set against a server. Build with
// NewHarness (which discovers the series shape), then Run.
type Harness struct {
	opts    Options
	client  *http.Client
	targets map[string][]target // endpoint -> candidate URLs
	names   []string            // weighted endpoints, stable order
	weights []int               // aligned with names
	total   int                 // sum of weights
	etags   sync.Map            // url -> ETag from the last full response
}

// NewHarness validates the options and discovers the target URLs from the
// live server: the route templates from /v1/openapi.json, the year pairs
// from /v1/years, and sampled record and household IDs from the first
// pair's links for the drill-down endpoints.
func NewHarness(ctx context.Context, opts Options) (*Harness, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	opts.BaseURL = strings.TrimRight(opts.BaseURL, "/")
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.SampleIDs <= 0 {
		opts.SampleIDs = 8
	}
	if opts.Mix == nil {
		opts.Mix = defaultMix
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        opts.Concurrency * 2,
				MaxIdleConnsPerHost: opts.Concurrency * 2,
			},
		}
	}
	h := &Harness{opts: opts, client: client}
	if err := h.discover(ctx); err != nil {
		return nil, err
	}
	for _, name := range sortedMixKeys(opts.Mix) {
		if _, known := defaultMix[name]; !known {
			return nil, fmt.Errorf("loadgen: unknown endpoint %q in mix (have %s)",
				name, strings.Join(sortedMixKeys(defaultMix), ", "))
		}
		w := opts.Mix[name]
		if w <= 0 {
			continue
		}
		if len(h.targets[name]) == 0 {
			return nil, fmt.Errorf("loadgen: no targets discovered for endpoint %q", name)
		}
		h.names = append(h.names, name)
		h.weights = append(h.weights, w)
		h.total += w
	}
	if h.total == 0 {
		return nil, errors.New("loadgen: the endpoint mix has no positive weights")
	}
	return h, nil
}

func sortedMixKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// routeInfo is one operation of the server's OpenAPI document: the method,
// the path template with {param} placeholders, and whether the route is a
// stream (SSE) rather than a bounded request/response.
type routeInfo struct {
	method    string
	path      string
	streaming bool
}

// discoverRoutes fetches /v1/openapi.json and indexes its operations by
// operationId. Discovery derives every URL template from this document, so
// the harness follows the server's published surface instead of hard-coding
// paths that could drift from it.
func (h *Harness) discoverRoutes(ctx context.Context) (map[string]routeInfo, error) {
	var doc struct {
		Paths map[string]map[string]struct {
			OperationID string `json:"operationId"`
			XStreaming  bool   `json:"x-streaming"`
		} `json:"paths"`
	}
	if err := h.getJSON(ctx, "/v1/openapi.json", &doc); err != nil {
		return nil, fmt.Errorf("loadgen: openapi discovery: %w", err)
	}
	routes := make(map[string]routeInfo, len(doc.Paths))
	for p, ops := range doc.Paths {
		for m, op := range ops {
			if op.OperationID == "" {
				continue
			}
			routes[op.OperationID] = routeInfo{
				method: strings.ToUpper(m), path: p, streaming: op.XStreaming,
			}
		}
	}
	if len(routes) == 0 {
		return nil, errors.New("loadgen: the OpenAPI document lists no operations")
	}
	return routes, nil
}

// fillPath substitutes {name} template parameters with concrete values.
func fillPath(tmpl string, vals map[string]string) string {
	for k, v := range vals {
		tmpl = strings.Replace(tmpl, "{"+k+"}", v, 1)
	}
	return tmpl
}

// route resolves one mix endpoint to its OpenAPI operation, refusing to
// target a GET-only load at an operation the document does not describe as
// a plain GET (streams are only exercised through their poll fallback).
func (h *Harness) route(routes map[string]routeInfo, endpoint string) (routeInfo, error) {
	op := mixToOperation[endpoint]
	rt, ok := routes[op]
	if !ok {
		return routeInfo{}, fmt.Errorf("loadgen: the OpenAPI document has no operation %q (endpoint %q)", op, endpoint)
	}
	if rt.method != "GET" {
		return routeInfo{}, fmt.Errorf("loadgen: operation %q is %s, not GET", op, rt.method)
	}
	if rt.streaming && endpoint != "watch_poll" {
		return routeInfo{}, fmt.Errorf("loadgen: operation %q is a stream; not a load target", op)
	}
	return rt, nil
}

// discover maps the server: the route templates from its OpenAPI document,
// then the series shape (years and pairs) plus sampled record and household
// IDs to fill the templates' path parameters.
func (h *Harness) discover(ctx context.Context) error {
	routes, err := h.discoverRoutes(ctx)
	if err != nil {
		return err
	}
	tmpl := make(map[string]routeInfo, len(mixToOperation))
	for endpoint := range mixToOperation {
		rt, err := h.route(routes, endpoint)
		if err != nil {
			return err
		}
		tmpl[endpoint] = rt
	}

	var years struct {
		Years []int `json:"years"`
		Pairs []struct {
			Old int `json:"old"`
			New int `json:"new"`
		} `json:"pairs"`
	}
	if err := h.getJSON(ctx, tmpl["years"].path, &years); err != nil {
		return fmt.Errorf("loadgen: discovery: %w", err)
	}
	if len(years.Pairs) == 0 {
		return errors.New("loadgen: server reports no year pairs")
	}

	h.targets = map[string][]target{
		"years": {{"years", h.opts.BaseURL + tmpl["years"].path}},
		"timelines": {
			{"timelines", h.opts.BaseURL + tmpl["timelines"].path},
			{"timelines", h.opts.BaseURL + tmpl["timelines"].path + "?min_span=2"},
		},
		// The change feed's long-poll fallback: an empty immediate poll is
		// the cheapest "anything new?" a feed reader issues.
		"watch_poll": {{"watch_poll", h.opts.BaseURL + tmpl["watch_poll"].path + "?mode=poll"}},
	}
	for _, p := range years.Pairs {
		vals := map[string]string{
			"old": strconv.Itoa(p.Old), "new": strconv.Itoa(p.New),
		}
		records := h.opts.BaseURL + fillPath(tmpl["records"].path, vals)
		h.targets["records"] = append(h.targets["records"],
			target{"records", records},
			target{"records", records + "?limit=50"},
			target{"records", records + "?limit=50&offset=50"})
		h.targets["groups"] = append(h.targets["groups"],
			target{"groups", h.opts.BaseURL + fillPath(tmpl["groups"].path, vals)})
		h.targets["patterns"] = append(h.targets["patterns"],
			target{"patterns", h.opts.BaseURL + fillPath(tmpl["patterns"].path, vals)})
	}

	// Sample concrete IDs from the first pair so the drill-down endpoints
	// have live entities to query.
	first := years.Pairs[0]
	firstVals := map[string]string{
		"old": strconv.Itoa(first.Old), "new": strconv.Itoa(first.New),
	}
	var links struct {
		Links []struct {
			Old string `json:"old"`
		} `json:"record_links"`
	}
	if err := h.getJSON(ctx, fmt.Sprintf("%s?limit=%d",
		fillPath(tmpl["records"].path, firstVals), h.opts.SampleIDs), &links); err != nil {
		return fmt.Errorf("loadgen: discovery: %w", err)
	}
	for _, l := range links.Links {
		h.targets["record_lifecycle"] = append(h.targets["record_lifecycle"],
			target{"record_lifecycle", h.opts.BaseURL + fillPath(tmpl["record_lifecycle"].path,
				map[string]string{"year": strconv.Itoa(first.Old), "id": l.Old})})
	}
	var groups struct {
		Links []struct {
			Old string `json:"old"`
		} `json:"group_links"`
	}
	if err := h.getJSON(ctx, fmt.Sprintf("%s?limit=%d",
		fillPath(tmpl["groups"].path, firstVals), h.opts.SampleIDs), &groups); err != nil {
		return fmt.Errorf("loadgen: discovery: %w", err)
	}
	for _, g := range groups.Links {
		h.targets["household_timeline"] = append(h.targets["household_timeline"],
			target{"household_timeline", h.opts.BaseURL + fillPath(tmpl["household_timeline"].path,
				map[string]string{"year": strconv.Itoa(first.Old), "id": g.Old})})
	}
	return nil
}

func (h *Harness) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, "GET", h.opts.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

// Run primes the ETag cache (in conditional mode), then hammers the target
// set with Concurrency workers for Duration and aggregates the results.
func (h *Harness) Run(ctx context.Context) (*Summary, error) {
	if h.opts.Conditional {
		if err := h.prime(ctx); err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, h.opts.Duration)
	defer cancel()
	perWorker := make([]map[string]*endpointStats, h.opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < h.opts.Concurrency; i++ {
		stats := make(map[string]*endpointStats)
		perWorker[i] = stats
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.opts.Seed + int64(worker)))
			for runCtx.Err() == nil {
				tg := h.pick(rng)
				h.do(runCtx, rng, h.stats(stats, tg.endpoint), tg)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h.summarize(perWorker, elapsed), nil
}

// prime fetches every target once, unconditionally and unmeasured, so the
// measured window replays a warmed ETag cache — the "repeat run" a
// revalidating client performs.
func (h *Harness) prime(ctx context.Context) error {
	var all []target
	for _, name := range h.names {
		all = append(all, h.targets[name]...)
	}
	sem := make(chan struct{}, h.opts.Concurrency)
	errc := make(chan error, len(all))
	for _, tg := range all {
		sem <- struct{}{}
		go func(tg target) {
			defer func() { <-sem }()
			req, err := http.NewRequestWithContext(ctx, "GET", tg.url, nil)
			if err != nil {
				errc <- err
				return
			}
			resp, err := h.client.Do(req)
			if err != nil {
				errc <- fmt.Errorf("prime %s: %w", tg.url, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if et := resp.Header.Get("ETag"); et != "" {
				h.etags.Store(tg.url, et)
			}
			errc <- nil
		}(tg)
	}
	for range all {
		if err := <-errc; err != nil {
			return err
		}
	}
	return nil
}

func (h *Harness) stats(m map[string]*endpointStats, endpoint string) *endpointStats {
	es := m[endpoint]
	if es == nil {
		es = &endpointStats{status: make(map[int]int64)}
		m[endpoint] = es
	}
	return es
}

// pick draws one target: a weighted endpoint, then a uniform URL within it.
func (h *Harness) pick(rng *rand.Rand) target {
	n := rng.Intn(h.total)
	for i, w := range h.weights {
		if n < w {
			urls := h.targets[h.names[i]]
			return urls[rng.Intn(len(urls))]
		}
		n -= w
	}
	panic("unreachable")
}

// maxRetryDelay caps one Retry-After-hinted backoff sleep, so a misbehaving
// server cannot park a worker for the whole run window.
const maxRetryDelay = 2 * time.Second

// do issues one request and records it; a 503 shed response is retried up
// to Options.Retries times, honoring the server's Retry-After hint with a
// capped, jittered sleep. Every attempt (including retried ones) is its own
// entry in the request and status counts — retries are counted, not hidden.
func (h *Harness) do(ctx context.Context, rng *rand.Rand, es *endpointStats, tg target) {
	for attempt := 0; ; attempt++ {
		status, retryAfter := h.doOnce(ctx, es, tg)
		if status != http.StatusServiceUnavailable || attempt >= h.opts.Retries {
			return
		}
		es.retries++
		t := time.NewTimer(retryDelay(retryAfter, attempt, rng))
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// retryDelay turns a 503's Retry-After hint into the backoff sleep: the
// server's whole-second hint (or 100ms × 2^attempt when the header is
// absent or unparsable) capped at maxRetryDelay, then jittered uniformly
// over (delay/2, delay] so shed workers do not return in lockstep and
// re-shed each other.
func retryDelay(retryAfter string, attempt int, rng *rand.Rand) time.Duration {
	var d time.Duration
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	} else {
		d = (100 * time.Millisecond) << uint(attempt)
	}
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// doOnce issues one attempt and records it. Requests cut off by the end of
// the run window are not counted at all — they are an artifact of the
// harness stopping, not of the server. It returns the response status (0
// when no response arrived) and the Retry-After header for do's retry
// decision.
func (h *Harness) doOnce(ctx context.Context, es *endpointStats, tg target) (status int, retryAfter string) {
	req, err := http.NewRequestWithContext(ctx, "GET", tg.url, nil)
	if err != nil {
		es.requests++
		es.transportErrors++
		return 0, ""
	}
	if h.opts.Conditional {
		if et, ok := h.etags.Load(tg.url); ok {
			req.Header.Set("If-None-Match", et.(string))
		}
	}
	start := time.Now()
	resp, err := h.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, "" // run window closed mid-flight
		}
		es.requests++
		es.transportErrors++
		return 0, ""
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if copyErr != nil && ctx.Err() != nil {
		return 0, ""
	}
	es.requests++
	if copyErr != nil {
		// A status line arrived but the body died (e.g. the server aborted a
		// broken stream): a transport-level failure from the client's view.
		es.transportErrors++
		return 0, ""
	}
	es.latenciesMs = append(es.latenciesMs, float64(time.Since(start))/float64(time.Millisecond))
	es.status[resp.StatusCode]++
	if resp.StatusCode == http.StatusOK {
		if et := resp.Header.Get("ETag"); et != "" {
			h.etags.Store(tg.url, et)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// summarize merges the worker tallies into the run Summary.
func (h *Harness) summarize(perWorker []map[string]*endpointStats, elapsed time.Duration) *Summary {
	s := &Summary{
		BaseURL:         h.opts.BaseURL,
		Concurrency:     h.opts.Concurrency,
		DurationSeconds: elapsed.Seconds(),
		Conditional:     h.opts.Conditional,
		Endpoints:       make(map[string]EndpointSummary),
	}
	merged := make(map[string]*endpointStats)
	for _, m := range perWorker {
		for name, es := range m {
			t := h.stats(merged, name)
			t.requests += es.requests
			t.transportErrors += es.transportErrors
			t.retries += es.retries
			t.latenciesMs = append(t.latenciesMs, es.latenciesMs...)
			for code, n := range es.status {
				t.status[code] += n
			}
		}
	}
	var allLat []float64
	var pairLinkRequests, pairLink304 int64
	for name, es := range merged {
		sort.Float64s(es.latenciesMs)
		eps := EndpointSummary{
			Requests:        es.requests,
			TransportErrors: es.transportErrors,
			Retries:         es.retries,
			Status:          make(map[string]int64, len(es.status)),
			NotModified:     es.status[http.StatusNotModified],
			P50Ms:           percentile(es.latenciesMs, 0.50),
			P95Ms:           percentile(es.latenciesMs, 0.95),
			P99Ms:           percentile(es.latenciesMs, 0.99),
		}
		for code, n := range es.status {
			eps.Status[fmt.Sprintf("%d", code)] = n
			if code >= 500 {
				s.ServerErrors += n
			}
			if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
				s.Shed += n
			}
		}
		s.Endpoints[name] = eps
		s.Requests += es.requests
		s.TransportErrors += es.transportErrors
		s.Retries += es.retries
		s.NotModified += eps.NotModified
		if pairLinkEndpoints[name] {
			pairLinkRequests += es.requests
			pairLink304 += eps.NotModified
		}
		allLat = append(allLat, es.latenciesMs...)
	}
	sort.Float64s(allLat)
	s.P50Ms = percentile(allLat, 0.50)
	s.P95Ms = percentile(allLat, 0.95)
	s.P99Ms = percentile(allLat, 0.99)
	if len(allLat) > 0 {
		s.MaxMs = allLat[len(allLat)-1]
	}
	if elapsed > 0 {
		s.QPS = float64(s.Requests) / elapsed.Seconds()
	}
	if pairLinkRequests > 0 {
		s.PairLinkNotModifiedRatio = float64(pairLink304) / float64(pairLinkRequests)
	}
	return s
}

// percentile reads the q-quantile from sorted samples (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
