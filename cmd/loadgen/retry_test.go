package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
	"censuslink/internal/server"
)

// TestRetryAfterHonored puts a shedding gate in front of a real server —
// once armed it rejects every other /v1 request with 503 + Retry-After —
// and runs the harness with retries on: the retries must be counted in the
// summary, the shed 503s must stay visible, and retried requests must
// eventually land 200s.
func TestRetryAfterHonored(t *testing.T) {
	cfg := linkage.DefaultConfig()
	cfg.Workers = 1
	srv, err := server.New(server.Config{
		Series:  census.NewSeries(paperexample.Old(), paperexample.New()),
		Linkage: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Abort)
	var armed atomic.Bool
	var nth atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if armed.Load() && strings.HasPrefix(r.URL.Path, "/v1/") && nth.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":{"code":"overloaded","message":"shed by test gate"}}`)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	h, err := NewHarness(context.Background(), Options{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Duration:    600 * time.Millisecond,
		Mix:         map[string]int{"records": 1},
		Retries:     2,
		Seed:        3,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	s, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.Retries == 0 {
		t.Error("no retries counted despite 503s with Retry-After")
	}
	if s.Shed == 0 {
		t.Error("shed 503s hidden from the summary by retrying")
	}
	rec := s.Endpoints["records"]
	if rec.Status["503"] == 0 || rec.Status["200"] == 0 {
		t.Errorf("records status counts = %v, want both 503s and eventual 200s", rec.Status)
	}
	if rec.Retries != s.Retries {
		t.Errorf("endpoint retries %d != summary retries %d with a one-endpoint mix", rec.Retries, s.Retries)
	}
}

// TestRetryDelay pins the backoff arithmetic: the server's hint is obeyed
// and jittered within (hint/2, hint], capped at maxRetryDelay, and a
// missing hint falls back to the exponential schedule.
func TestRetryDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if d := retryDelay("1", 0, rng); d <= 500*time.Millisecond || d > time.Second {
			t.Fatalf("retryDelay(\"1\") = %v, want in (500ms, 1s]", d)
		}
		if d := retryDelay("60", 0, rng); d <= maxRetryDelay/2 || d > maxRetryDelay {
			t.Fatalf("retryDelay(\"60\") = %v, want capped into (%v, %v]", d, maxRetryDelay/2, maxRetryDelay)
		}
		if d := retryDelay("", 0, rng); d <= 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("retryDelay(no hint, attempt 0) = %v, want in (50ms, 100ms]", d)
		}
		if d := retryDelay("garbage", 2, rng); d <= 200*time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("retryDelay(bad hint, attempt 2) = %v, want in (200ms, 400ms]", d)
		}
	}
}
