package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
	"censuslink/internal/server"
)

// testServer boots the query service over the paper's running example and
// mounts it on httptest.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := linkage.DefaultConfig()
	cfg.Workers = 1
	srv, err := server.New(server.Config{
		Series:  census.NewSeries(paperexample.Old(), paperexample.New()),
		Linkage: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Abort)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestHarnessConditionalSmoke runs the full harness concurrently against a
// live handler: discovery, ETag priming, a measured conditional window. The
// acceptance bar is the conditional-GET criterion — once primed, at least
// 90% of pair-link requests must revalidate to 304.
func TestHarnessConditionalSmoke(t *testing.T) {
	ts := testServer(t)
	h, err := NewHarness(context.Background(), Options{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		Conditional: true,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if s.TransportErrors != 0 || s.ServerErrors != 0 {
		t.Errorf("errors under smoke load: transport %d, 5xx %d", s.TransportErrors, s.ServerErrors)
	}
	if s.PairLinkNotModifiedRatio < 0.9 {
		t.Errorf("pair-link 304 ratio = %.3f, want >= 0.9 after priming", s.PairLinkNotModifiedRatio)
	}
	if s.QPS <= 0 || s.P50Ms <= 0 {
		t.Errorf("degenerate summary: qps %.1f p50 %.3fms", s.QPS, s.P50Ms)
	}
	for _, name := range []string{"records", "groups", "patterns", "household_timeline", "record_lifecycle"} {
		if s.Endpoints[name].Requests == 0 {
			t.Errorf("endpoint %s never exercised", name)
		}
	}
}

// TestHarnessUnconditional: without -conditional nothing revalidates; the
// run still completes cleanly with all responses full 200s.
func TestHarnessUnconditional(t *testing.T) {
	ts := testServer(t)
	h, err := NewHarness(context.Background(), Options{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Mix:         map[string]int{"records": 1, "years": 1},
		Seed:        7,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.NotModified != 0 {
		t.Errorf("unconditional run saw %d 304s", s.NotModified)
	}
	if s.TransportErrors != 0 || s.ServerErrors != 0 {
		t.Errorf("errors: transport %d, 5xx %d", s.TransportErrors, s.ServerErrors)
	}
	if n := s.Endpoints["groups"].Requests; n != 0 {
		t.Errorf("endpoint outside the mix exercised %d times", n)
	}
}

// TestHarnessWatchPollMix folds the change feed's long-poll fallback into
// the mix: discovery resolves it from the OpenAPI document and the empty
// immediate poll answers 200 without parking workers.
func TestHarnessWatchPollMix(t *testing.T) {
	ts := testServer(t)
	h, err := NewHarness(context.Background(), Options{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Mix:         map[string]int{"watch_poll": 1},
		Seed:        3,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wp := s.Endpoints["watch_poll"]
	if wp.Requests == 0 {
		t.Fatal("watch_poll never exercised")
	}
	if wp.Status["200"] != wp.Requests {
		t.Errorf("watch_poll statuses = %v, want all 200", wp.Status)
	}
}

// TestRunCLI drives the command end to end: flags, harness, stdout report
// and the JSON summary file.
func TestRunCLI(t *testing.T) {
	ts := testServer(t)
	out := filepath.Join(t.TempDir(), "BENCH_server.json")
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-url", ts.URL, "-c", "2", "-duration", "250ms", "-conditional", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "req/s") {
		t.Errorf("summary line missing:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("bad summary JSON: %v\n%s", err, data)
	}
	if s.Requests == 0 || !s.Conditional {
		t.Errorf("summary = %+v, want a conditional run with requests", s)
	}
}

// TestRunFlagErrors: bad invocations fail fast.
func TestRunFlagErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Error("missing -url accepted")
	}
	if err := run(context.Background(), []string{"-url", "http://x", "-mix", "records"}, &buf); err == nil {
		t.Error("mix entry without weight accepted")
	}
	ts := testServer(t)
	if err := run(context.Background(), []string{"-url", ts.URL, "-mix", "bogus=1"}, &buf); err == nil {
		t.Error("unknown mix endpoint accepted")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("records=4, groups=2,years=0")
	if err != nil {
		t.Fatal(err)
	}
	if mix["records"] != 4 || mix["groups"] != 2 || mix["years"] != 0 {
		t.Errorf("mix = %v", mix)
	}
	for _, bad := range []string{"records", "records=x", "records=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	if mix, err := parseMix(""); err != nil || mix != nil {
		t.Errorf("empty mix = %v, %v; want nil, nil", mix, err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 0.5); p != 6 {
		t.Errorf("p50 = %g", p)
	}
	if p := percentile(sorted, 0.99); p != 10 {
		t.Errorf("p99 = %g", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %g", p)
	}
}
