package evolution

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

func runningExampleGraph(t *testing.T) *Graph {
	t.Helper()
	series := census.NewSeries(paperexample.Old(), paperexample.New())
	g, err := BuildGraph(series, []*linkage.Result{exampleResult()})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildGraphRunningExample(t *testing.T) {
	g := runningExampleGraph(t)
	if len(g.Analyses) != 1 || len(g.RecordEdges) != 1 {
		t.Fatalf("graph shape wrong: %d analyses", len(g.Analyses))
	}
	if len(g.RecordEdges[0]) != 7 {
		t.Errorf("record edges = %d, want 7", len(g.RecordEdges[0]))
	}
	// 2 preserve + 2 move edges.
	counts := map[GroupPattern]int{}
	for _, e := range g.GroupEdges {
		counts[e.Pattern]++
	}
	if counts[PatternPreserve] != 2 || counts[PatternMove] != 2 {
		t.Errorf("edges = %v", counts)
	}
}

func TestBuildGraphSizeMismatch(t *testing.T) {
	series := census.NewSeries(paperexample.Old(), paperexample.New())
	if _, err := BuildGraph(series, nil); err == nil {
		t.Error("mismatched results length accepted")
	}
}

// TestBuildGraphContextCancelled: a cancelled context aborts the assembly
// with an error naming the census pair and wrapping context.Canceled.
func TestBuildGraphContextCancelled(t *testing.T) {
	series := census.NewSeries(paperexample.Old(), paperexample.New())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := BuildGraphContext(ctx, series, []*linkage.Result{exampleResult()}, nil)
	if g != nil {
		t.Error("cancelled build returned a graph")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if want := "pair 1871-1881"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want it to name %q", err, want)
	}
}

// TestConnectedComponents: the running example's evolution graph has one
// component of five households (a, b of 1871; a, b, c of 1881) and one
// isolated household (d), mirroring Fig. 5(b)'s component computation.
func TestConnectedComponents(t *testing.T) {
	g := runningExampleGraph(t)
	sizes := g.ConnectedComponents()
	if len(sizes) != 2 || sizes[0] != 5 || sizes[1] != 1 {
		t.Fatalf("component sizes = %v, want [5 1]", sizes)
	}
	size, share := g.LargestComponentShare()
	if size != 5 {
		t.Errorf("largest = %d", size)
	}
	if share < 0.83 || share > 0.84 { // 5/6
		t.Errorf("share = %v, want 5/6", share)
	}
}

func TestPatternCounts(t *testing.T) {
	g := runningExampleGraph(t)
	counts := g.PatternCounts()
	if len(counts) != 1 {
		t.Fatalf("counts = %v", counts)
	}
	c := counts[0]
	if c[PatternPreserve] != 2 || c[PatternMove] != 2 || c[PatternAdd] != 1 ||
		c[PatternRemove] != 0 || c[PatternSplit] != 0 || c[PatternMerge] != 0 {
		t.Errorf("pattern counts = %v", c)
	}
}

// chainSeries builds three tiny censuses where household h1 is preserved
// across both intervals, h2 only across the first, and h3 appears late.
func chainSeries(t *testing.T) (*census.Series, []*linkage.Result) {
	t.Helper()
	mk := func(year int, households ...string) *census.Dataset {
		d := census.NewDataset(year)
		for _, hh := range households {
			for i := 0; i < 2; i++ {
				if err := d.AddRecord(&census.Record{
					ID:          fmt.Sprintf("%d_%s_%d", year, hh, i),
					HouseholdID: fmt.Sprintf("%d_%s", year, hh),
					FirstName:   "x", Surname: "y",
					Role: census.RoleHead,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return d
	}
	d1 := mk(1851, "h1", "h2")
	d2 := mk(1861, "h1", "h2", "h3")
	d3 := mk(1871, "h1", "h3")

	link := func(oldYear, newYear int, hhs ...string) *linkage.Result {
		res := &linkage.Result{}
		for _, hh := range hhs {
			for i := 0; i < 2; i++ {
				res.RecordLinks = append(res.RecordLinks, linkage.RecordLink{
					Old: fmt.Sprintf("%d_%s_%d", oldYear, hh, i),
					New: fmt.Sprintf("%d_%s_%d", newYear, hh, i),
				})
			}
			res.GroupLinks = append(res.GroupLinks, linkage.GroupLink{
				Old: fmt.Sprintf("%d_%s", oldYear, hh),
				New: fmt.Sprintf("%d_%s", newYear, hh),
			})
		}
		return res
	}
	return census.NewSeries(d1, d2, d3), []*linkage.Result{
		link(1851, 1861, "h1", "h2"),
		link(1861, 1871, "h1", "h3"),
	}
}

// TestPreserveChains reproduces the Table 8 query semantics: the one-
// interval count equals the total number of preserve_G patterns, and longer
// chains require consecutive preserve edges.
func TestPreserveChains(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	// preserve_G per pair: (h1, h2) then (h1, h3) -> total 4.
	if got := g.PreserveChains(1); got != 4 {
		t.Errorf("PreserveChains(1) = %d, want 4", got)
	}
	// Only h1 is preserved over both intervals.
	if got := g.PreserveChains(2); got != 1 {
		t.Errorf("PreserveChains(2) = %d, want 1", got)
	}
	if got := g.PreserveChains(3); got != 0 {
		t.Errorf("PreserveChains(3) = %d, want 0", got)
	}
	if got := g.PreserveChains(0); got != 0 {
		t.Errorf("PreserveChains(0) = %d, want 0", got)
	}
}
