package evolution

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the evolution graph in Graphviz DOT format: one cluster
// per census year with the household vertices, and typed, colour-coded
// group-pattern edges between successive years. The output is deterministic
// and can be rendered with `dot -Tsvg`.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "evolution"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	years := append([]int(nil), g.Years...)
	sort.Ints(years)
	for _, year := range years {
		fmt.Fprintf(&b, "  subgraph \"cluster_%d\" {\n    label=\"%d\";\n", year, year)
		ids := append([]string(nil), g.households[year]...)
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "    %q;\n", vertexID(year, id))
		}
		b.WriteString("  }\n")
	}

	edges := append([]GroupEdge(nil), g.GroupEdges...)
	sort.Slice(edges, func(i, j int) bool {
		a, e := edges[i], edges[j]
		if a.From.Year != e.From.Year {
			return a.From.Year < e.From.Year
		}
		if a.From.Household != e.From.Household {
			return a.From.Household < e.From.Household
		}
		return a.To.Household < e.To.Household
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q, color=%q];\n",
			vertexID(e.From.Year, e.From.Household),
			vertexID(e.To.Year, e.To.Household),
			e.Pattern.String(), patternColor(e.Pattern))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func vertexID(year int, household string) string {
	return fmt.Sprintf("%d/%s", year, household)
}

// patternColor assigns a stable Graphviz colour per pattern type.
func patternColor(p GroupPattern) string {
	switch p {
	case PatternPreserve:
		return "black"
	case PatternMove:
		return "blue"
	case PatternSplit:
		return "red"
	case PatternMerge:
		return "darkgreen"
	default:
		return "gray"
	}
}
