// Package evolution implements the change analysis of Section 4 of
// Christen et al. (EDBT 2017): record evolution patterns (preserve, add,
// remove), group evolution patterns (preserve, add, remove, move, split,
// merge) derived from the record and group mappings of two successive
// censuses, and the multi-census evolution graph with its longitudinal
// queries (connected components, preserve chains).
package evolution

import (
	"sort"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
)

// GroupPattern is the type of a group evolution pattern.
type GroupPattern int

// Group evolution patterns of Section 4.1.
const (
	PatternPreserve GroupPattern = iota
	PatternAdd
	PatternRemove
	PatternMove
	PatternSplit
	PatternMerge
)

// String returns the paper's pattern name.
func (p GroupPattern) String() string {
	switch p {
	case PatternPreserve:
		return "preserve_G"
	case PatternAdd:
		return "add_G"
	case PatternRemove:
		return "remove_G"
	case PatternMove:
		return "move"
	case PatternSplit:
		return "split"
	case PatternMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// Split describes one old household splitting into several new households,
// each receiving at least two of its members.
type Split struct {
	Old  string
	News []string
}

// Merge describes several old households merging into one new household,
// each contributing at least two members.
type Merge struct {
	Olds []string
	New  string
}

// PairAnalysis holds all evolution patterns between two successive censuses.
type PairAnalysis struct {
	OldYear, NewYear int

	// Record patterns.
	PreservedRecords []linkage.Pair // preserve_R
	AddedRecords     []string       // add_R: new record IDs
	RemovedRecords   []string       // remove_R: old record IDs

	// Group patterns.
	PreservedGroups [][2]string // preserve_G: (old household, new household)
	AddedGroups     []string    // add_G: new household IDs
	RemovedGroups   []string    // remove_G: old household IDs
	Moves           [][2]string // move: linked pairs sharing exactly one member
	Splits          []Split
	Merges          []Merge
	// UnclassifiedLinks holds group links whose households share no linked
	// record members, so none of the pattern definitions applies. The
	// iterative linkage never produces such links (every selected group pair
	// is backed by at least one record link), but ground-truth mappings
	// packed into a linkage.Result can carry them; surfacing them here keeps
	// the pattern classes a partition of the group mapping instead of
	// silently dropping links.
	UnclassifiedLinks [][2]string
}

// Count returns the number of occurrences of a group pattern.
func (a *PairAnalysis) Count(p GroupPattern) int {
	switch p {
	case PatternPreserve:
		return len(a.PreservedGroups)
	case PatternAdd:
		return len(a.AddedGroups)
	case PatternRemove:
		return len(a.RemovedGroups)
	case PatternMove:
		return len(a.Moves)
	case PatternSplit:
		return len(a.Splits)
	case PatternMerge:
		return len(a.Merges)
	default:
		return 0
	}
}

// Analyze derives the evolution patterns for one census pair from its
// linkage result (or ground-truth mappings packed into a linkage.Result).
func Analyze(old, new *census.Dataset, res *linkage.Result) *PairAnalysis {
	a := &PairAnalysis{OldYear: old.Year, NewYear: new.Year}

	// Record patterns.
	linkedOld := make(map[string]bool, len(res.RecordLinks))
	linkedNew := make(map[string]bool, len(res.RecordLinks))
	for _, l := range res.RecordLinks {
		a.PreservedRecords = append(a.PreservedRecords, linkage.Pair{Old: l.Old, New: l.New})
		linkedOld[l.Old] = true
		linkedNew[l.New] = true
	}
	for _, r := range old.Records() {
		if !linkedOld[r.ID] {
			a.RemovedRecords = append(a.RemovedRecords, r.ID)
		}
	}
	for _, r := range new.Records() {
		if !linkedNew[r.ID] {
			a.AddedRecords = append(a.AddedRecords, r.ID)
		}
	}

	// Shared-member counts per linked group pair.
	shared := make(map[linkage.GroupPair]int)
	for _, l := range res.RecordLinks {
		o, n := old.Record(l.Old), new.Record(l.New)
		if o == nil || n == nil {
			continue
		}
		shared[linkage.GroupPair{Old: o.HouseholdID, New: n.HouseholdID}]++
	}

	// Degree of each group in the group mapping, and membership.
	linkedGroupOld := make(map[string][]string) // old household -> linked new households
	linkedGroupNew := make(map[string][]string)
	for _, g := range res.GroupLinks {
		linkedGroupOld[g.Old] = append(linkedGroupOld[g.Old], g.New)
		linkedGroupNew[g.New] = append(linkedGroupNew[g.New], g.Old)
	}

	// add_G / remove_G.
	for _, h := range old.Households() {
		if len(linkedGroupOld[h.ID]) == 0 {
			a.RemovedGroups = append(a.RemovedGroups, h.ID)
		}
	}
	for _, h := range new.Households() {
		if len(linkedGroupNew[h.ID]) == 0 {
			a.AddedGroups = append(a.AddedGroups, h.ID)
		}
	}

	// preserve_G and move over linked pairs. The 1:1 requirement of
	// preserve_G is evaluated over "strong" links only (pairs sharing at
	// least two members): in the paper's own example household a is
	// preserved while additionally connected to household c by a move, so a
	// single-member move link must not break the preserve pattern.
	strongOld := make(map[string]int)
	strongNew := make(map[string]int)
	for gp, common := range shared {
		if common >= 2 {
			strongOld[gp.Old]++
			strongNew[gp.New]++
		}
	}
	for _, g := range res.GroupLinks {
		gp := linkage.GroupPair(g)
		common := shared[gp]
		switch {
		case common == 0:
			a.UnclassifiedLinks = append(a.UnclassifiedLinks, [2]string{g.Old, g.New})
		case common == 1:
			a.Moves = append(a.Moves, [2]string{g.Old, g.New})
		case common >= 2 && strongOld[g.Old] == 1 && strongNew[g.New] == 1:
			a.PreservedGroups = append(a.PreservedGroups, [2]string{g.Old, g.New})
		}
	}

	// split: an old group linked to >= 2 new groups, each sharing >= 2
	// members.
	oldIDs := make([]string, 0, len(linkedGroupOld))
	for id := range linkedGroupOld {
		oldIDs = append(oldIDs, id)
	}
	sort.Strings(oldIDs)
	for _, oldID := range oldIDs {
		var parts []string
		for _, newID := range linkedGroupOld[oldID] {
			if shared[linkage.GroupPair{Old: oldID, New: newID}] >= 2 {
				parts = append(parts, newID)
			}
		}
		if len(parts) >= 2 {
			sort.Strings(parts)
			a.Splits = append(a.Splits, Split{Old: oldID, News: parts})
		}
	}

	// merge: symmetric.
	newIDs := make([]string, 0, len(linkedGroupNew))
	for id := range linkedGroupNew {
		newIDs = append(newIDs, id)
	}
	sort.Strings(newIDs)
	for _, newID := range newIDs {
		var parts []string
		for _, oldID := range linkedGroupNew[newID] {
			if shared[linkage.GroupPair{Old: oldID, New: newID}] >= 2 {
				parts = append(parts, oldID)
			}
		}
		if len(parts) >= 2 {
			sort.Strings(parts)
			a.Merges = append(a.Merges, Merge{Olds: parts, New: newID})
		}
	}

	sort.Strings(a.AddedRecords)
	sort.Strings(a.RemovedRecords)
	sort.Strings(a.AddedGroups)
	sort.Strings(a.RemovedGroups)
	return a
}
