package evolution_test

import (
	"fmt"

	"censuslink/internal/census"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// exampleMappings packs the running example's true mappings into a result.
func exampleMappings() *linkage.Result {
	res := &linkage.Result{}
	for o, n := range paperexample.TrueRecordMapping() {
		res.RecordLinks = append(res.RecordLinks, linkage.RecordLink{Old: o, New: n})
	}
	for _, g := range paperexample.TrueGroupMapping() {
		res.GroupLinks = append(res.GroupLinks, linkage.GroupLink{Old: g[0], New: g[1]})
	}
	return res
}

// ExampleAnalyze derives the Fig. 5(a) evolution patterns of the running
// example.
func ExampleAnalyze() {
	old, new := paperexample.Old(), paperexample.New()
	a := evolution.Analyze(old, new, exampleMappings())
	fmt.Printf("preserve_R=%d add_R=%d remove_R=%d\n",
		len(a.PreservedRecords), len(a.AddedRecords), len(a.RemovedRecords))
	fmt.Printf("preserve_G=%d move=%d add_G=%d\n",
		len(a.PreservedGroups), len(a.Moves), len(a.AddedGroups))
	// Output:
	// preserve_R=7 add_R=4 remove_R=1
	// preserve_G=2 move=2 add_G=1
}

// ExampleGraph_PreserveChains runs the Table 8 query on a two-census graph.
func ExampleGraph_PreserveChains() {
	series := census.NewSeries(paperexample.Old(), paperexample.New())
	g, err := evolution.BuildGraph(series, []*linkage.Result{exampleMappings()})
	if err != nil {
		panic(err)
	}
	fmt.Println(g.PreserveChains(1))
	size, share := g.LargestComponentShare()
	fmt.Printf("largest component: %d households (%.0f%%)\n", size, share*100)
	// Output:
	// 2
	// largest component: 5 households (83%)
}
