package evolution

import (
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
)

func TestPersonTimelines(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	// h1's two members persist over both pairs; h2's over the first pair
	// only; h3's over the second pair only.
	all := g.PersonTimelines(1)
	if len(all) != 6 {
		t.Fatalf("timelines = %d, want 6", len(all))
	}
	long := g.PersonTimelines(3)
	if len(long) != 2 {
		t.Fatalf("3-census timelines = %d, want 2 (household h1)", len(long))
	}
	tl := long[0]
	if tl.Span() != 3 {
		t.Errorf("span = %d", tl.Span())
	}
	if tl.Entries[0].Year != 1851 || tl.Entries[2].Year != 1871 {
		t.Errorf("years = %+v", tl.Entries)
	}
	if tl.Entries[0].RecordID != "1851_h1_0" || tl.Entries[2].RecordID != "1871_h1_0" {
		t.Errorf("records = %+v", tl.Entries)
	}
	// A timeline that starts mid-series (h3 appears in 1861).
	found := false
	for _, tl := range all {
		if tl.Entries[0].RecordID == "1861_h3_0" && tl.Span() == 2 {
			found = true
		}
	}
	if !found {
		t.Error("mid-series timeline for h3 missing")
	}
}

func TestPersonTimelinesNoDuplicates(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	// Every record may appear in exactly one timeline.
	seen := map[string]bool{}
	for _, tl := range g.PersonTimelines(1) {
		for _, e := range tl.Entries {
			if seen[e.RecordID] {
				t.Fatalf("record %s in two timelines", e.RecordID)
			}
			seen[e.RecordID] = true
		}
	}
}

func TestSequenceCount(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	// preserve_G once: h1 and h2 in pair 1; h1 and h3 in pair 2 -> 4.
	if got := g.SequenceCount(PatternPreserve); got != 4 {
		t.Errorf("SequenceCount(preserve) = %d, want 4", got)
	}
	// preserve twice in a row: only h1.
	if got := g.SequenceCount(PatternPreserve, PatternPreserve); got != 1 {
		t.Errorf("SequenceCount(preserve, preserve) = %d, want 1", got)
	}
	if got := g.SequenceCount(PatternPreserve, PatternSplit); got != 0 {
		t.Errorf("SequenceCount(preserve, split) = %d, want 0", got)
	}
	if got := g.SequenceCount(); got != 0 {
		t.Errorf("empty sequence = %d, want 0", got)
	}
}

// TestSequenceCountBranching: a preserve followed by a split into two new
// households counts each realised path.
func TestSequenceCountBranching(t *testing.T) {
	mk := func(year int, households ...string) *census.Dataset {
		d := census.NewDataset(year)
		for _, hh := range households {
			for i := 0; i < 4; i++ {
				if err := d.AddRecord(&census.Record{
					ID:          recID(year, hh, i),
					HouseholdID: hhID(year, hh),
					FirstName:   "x", Surname: "y", Role: census.RoleHead,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return d
	}
	d1 := mk(1851, "a")
	d2 := mk(1861, "a")
	d3 := mk(1871, "b", "c")

	// Pair 1: preserve a.
	res1 := &linkage.Result{}
	for i := 0; i < 4; i++ {
		res1.RecordLinks = append(res1.RecordLinks,
			linkage.RecordLink{Old: recID(1851, "a", i), New: recID(1861, "a", i)})
	}
	res1.GroupLinks = []linkage.GroupLink{{Old: hhID(1851, "a"), New: hhID(1861, "a")}}
	// Pair 2: a splits into b and c, two members each.
	res2 := &linkage.Result{
		RecordLinks: []linkage.RecordLink{
			{Old: recID(1861, "a", 0), New: recID(1871, "b", 0)},
			{Old: recID(1861, "a", 1), New: recID(1871, "b", 1)},
			{Old: recID(1861, "a", 2), New: recID(1871, "c", 0)},
			{Old: recID(1861, "a", 3), New: recID(1871, "c", 1)},
		},
		GroupLinks: []linkage.GroupLink{
			{Old: hhID(1861, "a"), New: hhID(1871, "b")},
			{Old: hhID(1861, "a"), New: hhID(1871, "c")},
		},
	}
	g, err := BuildGraph(census.NewSeries(d1, d2, d3), []*linkage.Result{res1, res2})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.SequenceCount(PatternSplit); got != 2 {
		t.Errorf("SequenceCount(split) = %d, want 2 (two split edges)", got)
	}
	// preserve then split: two realised paths (a -> b and a -> c).
	if got := g.SequenceCount(PatternPreserve, PatternSplit); got != 2 {
		t.Errorf("SequenceCount(preserve, split) = %d, want 2", got)
	}
}

func recID(year int, hh string, i int) string {
	return hhID(year, hh) + "_" + string(rune('0'+i))
}

func hhID(year int, hh string) string {
	return map[int]string{1851: "1851", 1861: "1861", 1871: "1871"}[year] + "_" + hh
}
