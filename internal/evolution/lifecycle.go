package evolution

// SurvivalCurve returns, for every interval count k = 1..len(Years)-1, the
// fraction of households that, given at least k census intervals ahead of
// them, were preserved through all k: a household survival function over
// time-in-place. The denominator for k excludes households first observed
// too late in the series to have k intervals ahead.
func (g *Graph) SurvivalCurve() []float64 {
	n := len(g.Years) - 1
	if n < 1 {
		return nil
	}
	out := make([]float64, n)
	for k := 1; k <= n; k++ {
		atRisk := 0
		for yi := 0; yi+k < len(g.Years); yi++ {
			atRisk += len(g.households[g.Years[yi]])
		}
		if atRisk == 0 {
			continue
		}
		out[k-1] = float64(g.PreserveChains(k)) / float64(atRisk)
	}
	return out
}

// LifespanHistogram returns, for every maximal preserve chain, its length
// in census intervals, aggregated into a histogram: result[k] is the number
// of household lineages that were preserved for exactly k consecutive
// intervals (k = 0 means the household was never preserved into the next
// census). Lineages still alive at the last census are counted by their
// observed length (right-censored).
func (g *Graph) LifespanHistogram() map[int]int {
	// A chain starts at a household vertex with no preserve predecessor.
	hasPred := make(map[GroupVertex]bool, len(g.preserveNext))
	for _, to := range g.preserveNext {
		hasPred[to] = true
	}
	hist := make(map[int]int)
	for _, year := range g.Years {
		for _, id := range g.households[year] {
			v := GroupVertex{Year: year, Household: id}
			if hasPred[v] {
				continue
			}
			length := 0
			cur := v
			for {
				next, ok := g.preserveNext[cur]
				if !ok {
					break
				}
				length++
				cur = next
			}
			hist[length]++
		}
	}
	return hist
}

// MeanLifespan returns the average preserve-chain length in census
// intervals over all household lineages.
func (g *Graph) MeanLifespan() float64 {
	hist := g.LifespanHistogram()
	total, weighted := 0, 0
	for length, count := range hist {
		total += count
		weighted += length * count
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}
