package evolution

import (
	"sort"

	"censuslink/internal/linkage"
)

// TimelineEntry is one stop of a person's history: the record that
// represents them at one census.
type TimelineEntry struct {
	Year     int
	RecordID string
}

// Timeline is the reconstructed history of one individual across the
// series: a maximal chain of record links through successive censuses
// (the paper's Section 4.2 "individual person histories").
type Timeline struct {
	Entries []TimelineEntry
}

// Span returns the number of censuses the person was traced through.
func (t Timeline) Span() int { return len(t.Entries) }

// PersonTimelines chains the record links of all census pairs into maximal
// per-person timelines. Only persons traced through at least minSpan
// censuses are returned; timelines are ordered by descending span, then by
// their first record ID.
func (g *Graph) PersonTimelines(minSpan int) []Timeline {
	if minSpan < 1 {
		minSpan = 1
	}
	// successor[pairIdx][oldRecord] = newRecord.
	successors := make([]map[string]string, len(g.RecordEdges))
	hasPred := make([]map[string]bool, len(g.RecordEdges))
	for i, links := range g.RecordEdges {
		successors[i] = make(map[string]string, len(links))
		hasPred[i] = make(map[string]bool, len(links))
		for _, l := range links {
			successors[i][l.Old] = l.New
			hasPred[i][l.New] = true
		}
	}
	var timelines []Timeline
	// A timeline starts at pair i with a record that has no predecessor in
	// pair i-1.
	for i := range g.RecordEdges {
		starts := make([]string, 0, len(successors[i]))
		for old := range successors[i] {
			if i > 0 && hasPred[i-1][old] {
				continue
			}
			starts = append(starts, old)
		}
		sort.Strings(starts)
		for _, start := range starts {
			tl := Timeline{Entries: []TimelineEntry{{Year: g.Years[i], RecordID: start}}}
			cur := start
			for j := i; j < len(successors); j++ {
				next, ok := successors[j][cur]
				if !ok {
					break
				}
				tl.Entries = append(tl.Entries, TimelineEntry{Year: g.Years[j+1], RecordID: next})
				cur = next
			}
			if tl.Span() >= minSpan {
				timelines = append(timelines, tl)
			}
		}
	}
	sortTimelines(timelines)
	return timelines
}

// sortTimelines orders timelines by descending span, then first record ID,
// then first year. Two distinct timelines cannot share all three (a chain is
// determined by its starting record), so the order is total — an incremental
// extension and a from-scratch rebuild that produce the same chain set
// produce the same slice.
func sortTimelines(timelines []Timeline) {
	sort.SliceStable(timelines, func(i, j int) bool {
		if timelines[i].Span() != timelines[j].Span() {
			return timelines[i].Span() > timelines[j].Span()
		}
		a, b := timelines[i].Entries[0], timelines[j].Entries[0]
		if a.RecordID != b.RecordID {
			return a.RecordID < b.RecordID
		}
		return a.Year < b.Year
	})
}

// ExtendTimelines returns the person timelines of the graph after an
// AppendYear, given the complete timeline set of the graph before it
// (PersonTimelines(1) — every linked record must be present, so chains that
// gain an entry can be found). Only the newest pair's links are walked:
// an old record that ends an existing timeline at the previous final year
// extends that timeline; any other linked old record starts a new two-entry
// one. The result is deep-equal to PersonTimelines(1) on the extended graph.
//
// prev is not mutated: extended timelines get fresh entry slices, untouched
// ones are shared — safe for servers still handing out the previous slice.
func (g *Graph) ExtendTimelines(prev []Timeline) []Timeline {
	if len(g.RecordEdges) == 0 {
		return nil
	}
	links := g.RecordEdges[len(g.RecordEdges)-1]
	lastYear := g.Years[len(g.Years)-2]
	newYear := g.Years[len(g.Years)-1]

	// Tail record ID at the previous final year -> timeline index. Record
	// links are 1:1 per pair, so chains are disjoint and each tail record
	// ends exactly one timeline.
	tails := make(map[string]int)
	for i, tl := range prev {
		if last := tl.Entries[len(tl.Entries)-1]; last.Year == lastYear {
			tails[last.RecordID] = i
		}
	}

	out := make([]Timeline, len(prev), len(prev)+len(links))
	copy(out, prev)
	for _, l := range links {
		if ti, ok := tails[l.Old]; ok {
			entries := make([]TimelineEntry, len(prev[ti].Entries), len(prev[ti].Entries)+1)
			copy(entries, prev[ti].Entries)
			out[ti] = Timeline{Entries: append(entries, TimelineEntry{Year: newYear, RecordID: l.New})}
		} else {
			out = append(out, Timeline{Entries: []TimelineEntry{
				{Year: lastYear, RecordID: l.Old},
				{Year: newYear, RecordID: l.New},
			}})
		}
	}
	sortTimelines(out)
	return out
}

// SequenceCount counts occurrences of a consecutive group-pattern sequence
// along household paths of the evolution graph — a simple instance of the
// frequent-change-scenario mining the paper proposes on the evolution
// graph. For example, SequenceCount(PatternPreserve, PatternSplit) counts
// households that survived one decade intact and split in the next.
//
// Because non-preserve patterns can branch (a split has several successor
// households), every distinct path realising the sequence is counted.
func (g *Graph) SequenceCount(patterns ...GroupPattern) int {
	if len(patterns) == 0 {
		return 0
	}
	// Edges by (fromVertex, pattern).
	type key struct {
		v GroupVertex
		p GroupPattern
	}
	out := make(map[key][]GroupVertex)
	for _, e := range g.GroupEdges {
		k := key{v: e.From, p: e.Pattern}
		out[k] = append(out[k], e.To)
	}
	// Count paths: start from every vertex, follow patterns in order.
	count := 0
	var walk func(v GroupVertex, idx int)
	walk = func(v GroupVertex, idx int) {
		if idx == len(patterns) {
			count++
			return
		}
		for _, next := range out[key{v: v, p: patterns[idx]}] {
			walk(next, idx+1)
		}
	}
	for year, ids := range g.households {
		for _, id := range ids {
			walk(GroupVertex{Year: year, Household: id}, 0)
		}
	}
	return count
}

// RecordPair re-exports the record link type for callers that only import
// the evolution package.
type RecordPair = linkage.Pair
