package evolution

import (
	"math"
	"testing"
)

func TestSurvivalCurve(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	curve := g.SurvivalCurve()
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	// k=1: households at risk = 2 (1851) + 3 (1861) = 5; preserved chains
	// of length 1 = 4 -> 0.8.
	if math.Abs(curve[0]-0.8) > 1e-9 {
		t.Errorf("survival(1) = %v, want 0.8", curve[0])
	}
	// k=2: at risk = 2 (1851 only); only h1 preserved twice -> 0.5.
	if math.Abs(curve[1]-0.5) > 1e-9 {
		t.Errorf("survival(2) = %v, want 0.5", curve[1])
	}
	// The curve must be non-increasing.
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Errorf("survival curve increases at %d: %v", i, curve)
		}
	}
}

func TestLifespanHistogram(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	hist := g.LifespanHistogram()
	// Lineages: h1 (1851->1871, length 2), h2 (1851->1861, length 1; its
	// 1861 vertex ends a chain of length 0? No: 1861_h2 has a predecessor),
	// h3 (1861->1871, length 1), plus the chain-final vertices that start
	// no chain: 1871_h1 and 1871_h3 have predecessors, 1861_h3 starts the
	// h3 chain. Unpreserved singletons count as length 0.
	if hist[2] != 1 {
		t.Errorf("lineages of length 2 = %d, want 1 (h1)", hist[2])
	}
	if hist[1] != 2 {
		t.Errorf("lineages of length 1 = %d, want 2 (h2, h3)", hist[1])
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	// Every household vertex without a preserve predecessor starts exactly
	// one lineage: 1851: h1, h2; 1861: h3; 1871: none (both have preds)...
	// plus terminal vertices of other years without predecessors.
	if total != 3 {
		t.Errorf("total lineages = %d, want 3 (%v)", total, hist)
	}
}

func TestMeanLifespan(t *testing.T) {
	series, results := chainSeries(t)
	g, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	// Lineages: lengths 2 (h1), 1 (h2), 1 (h3) -> mean 4/3.
	if got := g.MeanLifespan(); math.Abs(got-4.0/3.0) > 1e-9 {
		t.Errorf("mean lifespan = %v, want 4/3", got)
	}
}

func TestLifecycleEmptyGraph(t *testing.T) {
	g := &Graph{Years: []int{1851}, households: map[int][]string{1851: {"h"}}}
	if c := g.SurvivalCurve(); c != nil {
		t.Errorf("single-census survival curve = %v", c)
	}
	if m := g.MeanLifespan(); m != 0 {
		t.Errorf("mean lifespan = %v", m)
	}
}
