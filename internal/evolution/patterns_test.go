package evolution

import (
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// exampleResult packs the running example's true mappings into a linkage
// result (the paper's Section 2: seven record links, four group links).
func exampleResult() *linkage.Result {
	res := &linkage.Result{}
	for o, n := range paperexample.TrueRecordMapping() {
		res.RecordLinks = append(res.RecordLinks, linkage.RecordLink{Old: o, New: n, Sim: 1})
	}
	for _, g := range paperexample.TrueGroupMapping() {
		res.GroupLinks = append(res.GroupLinks, linkage.GroupLink{Old: g[0], New: g[1]})
	}
	return res
}

// TestAnalyzeRunningExample reproduces Fig. 5(a): 7 preserved records, 4
// additions, 1 removal; 2 preserved households, 2 moves. Following the
// formal definitions of Section 4.1 (rather than the figure's informal
// caption), household d is the only add_G: household c is linked by the two
// move links, so the group mapping contains links with it.
func TestAnalyzeRunningExample(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	a := Analyze(old, new, exampleResult())

	if len(a.PreservedRecords) != 7 {
		t.Errorf("preserve_R = %d, want 7", len(a.PreservedRecords))
	}
	if len(a.AddedRecords) != 4 {
		t.Errorf("add_R = %v, want 4 (Mary and household d)", a.AddedRecords)
	}
	if len(a.RemovedRecords) != 1 || a.RemovedRecords[0] != "1871_5" {
		t.Errorf("remove_R = %v, want [1871_5] (John Riley)", a.RemovedRecords)
	}

	if len(a.PreservedGroups) != 2 {
		t.Errorf("preserve_G = %v, want 2", a.PreservedGroups)
	}
	wantPreserve := map[[2]string]bool{
		{"1871_a", "1881_a"}: true,
		{"1871_b", "1881_b"}: true,
	}
	for _, p := range a.PreservedGroups {
		if !wantPreserve[p] {
			t.Errorf("unexpected preserve_G %v", p)
		}
	}
	if len(a.Moves) != 2 {
		t.Errorf("move = %v, want 2 (Alice and Steve into household c)", a.Moves)
	}
	if len(a.AddedGroups) != 1 || a.AddedGroups[0] != "1881_d" {
		t.Errorf("add_G = %v, want [1881_d]", a.AddedGroups)
	}
	if len(a.RemovedGroups) != 0 {
		t.Errorf("remove_G = %v, want none", a.RemovedGroups)
	}
	if len(a.Splits) != 0 || len(a.Merges) != 0 {
		t.Errorf("splits=%v merges=%v, want none", a.Splits, a.Merges)
	}
}

// TestAnalyzeUnclassifiedLinks: a group link whose households share no
// linked record members (possible for ground-truth mappings packed into a
// linkage.Result) fits no pattern definition; it must surface on
// UnclassifiedLinks rather than vanish from every class.
func TestAnalyzeUnclassifiedLinks(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res := exampleResult()
	// A memberless claim: no record link connects household b to d.
	res.GroupLinks = append(res.GroupLinks, linkage.GroupLink{Old: "1871_b", New: "1881_d"})
	a := Analyze(old, new, res)

	if len(a.UnclassifiedLinks) != 1 || a.UnclassifiedLinks[0] != [2]string{"1871_b", "1881_d"} {
		t.Fatalf("unclassified = %v, want [[1871_b 1881_d]]", a.UnclassifiedLinks)
	}
	// The link must not leak into any other pattern class...
	for _, m := range a.Moves {
		if m == [2]string{"1871_b", "1881_d"} {
			t.Error("memberless link classified as move")
		}
	}
	// ...and the linked households must not count as added/removed.
	for _, id := range a.AddedGroups {
		if id == "1881_d" {
			t.Error("1881_d is linked, must not be add_G")
		}
	}
	// The running example's own patterns are unchanged.
	if len(a.PreservedGroups) != 2 || len(a.Moves) != 2 {
		t.Errorf("preserve_G=%v move=%v, want 2 and 2", a.PreservedGroups, a.Moves)
	}
	// The iterative pipeline itself never produces memberless links.
	realRes, err := linkage.Link(old, new, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := Analyze(old, new, realRes); len(got.UnclassifiedLinks) != 0 {
		t.Errorf("pipeline result has unclassified links: %v", got.UnclassifiedLinks)
	}
}

// TestAnalyzeSplit: one household splitting into two, each part keeping two
// or more members.
func TestAnalyzeSplit(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res := &linkage.Result{
		RecordLinks: []linkage.RecordLink{
			// Household a of 1871 splits: parents into a, two children into c.
			{Old: "1871_1", New: "1881_1"},
			{Old: "1871_2", New: "1881_2"},
			{Old: "1871_3", New: "1881_7"},
			{Old: "1871_4", New: "1881_8"},
		},
		GroupLinks: []linkage.GroupLink{
			{Old: "1871_a", New: "1881_a"},
			{Old: "1871_a", New: "1881_c"},
		},
	}
	a := Analyze(old, new, res)
	if len(a.Splits) != 1 {
		t.Fatalf("splits = %v, want 1", a.Splits)
	}
	sp := a.Splits[0]
	if sp.Old != "1871_a" || len(sp.News) != 2 {
		t.Errorf("split = %+v", sp)
	}
	// Neither pair is preserve_G (the old group is linked twice) nor move
	// (both pairs share two members).
	if len(a.PreservedGroups) != 0 || len(a.Moves) != 0 {
		t.Errorf("preserve=%v moves=%v, want none", a.PreservedGroups, a.Moves)
	}
}

// TestAnalyzeMerge: two old households merging into one new household,
// each contributing at least two members.
func TestAnalyzeMerge(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	// Add a fourth member to household c so that both old households can
	// contribute two members each.
	if err := new.AddRecord(&census.Record{
		ID: "1881_12", HouseholdID: "1881_c", FirstName: "ann", Surname: "smith",
		Sex: census.SexFemale, Age: 3, Role: census.RoleDaughter,
	}); err != nil {
		t.Fatal(err)
	}

	// One member from household b only: no merge.
	res := &linkage.Result{
		RecordLinks: []linkage.RecordLink{
			{Old: "1871_1", New: "1881_6"}, // a -> c
			{Old: "1871_2", New: "1881_7"}, // a -> c
			{Old: "1871_6", New: "1881_8"}, // b -> c
		},
		GroupLinks: []linkage.GroupLink{
			{Old: "1871_a", New: "1881_c"},
			{Old: "1871_b", New: "1881_c"},
		},
	}
	a := Analyze(old, new, res)
	if len(a.Merges) != 0 {
		t.Fatalf("merge with single-member contribution accepted: %v", a.Merges)
	}

	// Two members from each: a merge.
	res.RecordLinks = append(res.RecordLinks,
		linkage.RecordLink{Old: "1871_7", New: "1881_12"}) // b -> c
	a = Analyze(old, new, res)
	if len(a.Merges) != 1 {
		t.Fatalf("merges = %v, want 1", a.Merges)
	}
	mg := a.Merges[0]
	if mg.New != "1881_c" || len(mg.Olds) != 2 {
		t.Errorf("merge = %+v", mg)
	}
	// The merge pairs are not preserve_G: household c is linked twice.
	if len(a.PreservedGroups) != 0 {
		t.Errorf("preserve_G = %v, want none", a.PreservedGroups)
	}
}

// TestAnalyzeEmptyMappings: with no links everything is added/removed.
func TestAnalyzeEmptyMappings(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	a := Analyze(old, new, &linkage.Result{})
	if len(a.RemovedRecords) != old.NumRecords() || len(a.AddedRecords) != new.NumRecords() {
		t.Errorf("record patterns wrong: %d removed, %d added", len(a.RemovedRecords), len(a.AddedRecords))
	}
	if len(a.RemovedGroups) != old.NumHouseholds() || len(a.AddedGroups) != new.NumHouseholds() {
		t.Errorf("group patterns wrong")
	}
}

func TestGroupPatternString(t *testing.T) {
	want := map[GroupPattern]string{
		PatternPreserve: "preserve_G", PatternAdd: "add_G", PatternRemove: "remove_G",
		PatternMove: "move", PatternSplit: "split", PatternMerge: "merge",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if GroupPattern(99).String() != "unknown" {
		t.Error("unknown pattern string")
	}
}
