package evolution

import (
	"fmt"
	"reflect"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/synth"
)

// linkedSeries generates a synthetic multi-year series and links every pair.
func linkedSeries(t *testing.T, scale float64, seed int64) (*census.Series, []*linkage.Result) {
	t.Helper()
	series, err := synth.Generate(synth.TestConfig(scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Datasets) < 4 {
		t.Fatalf("need >= 4 census years for a multi-append differential, got %d", len(series.Datasets))
	}
	results, err := linkage.LinkSeries(series, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return series, results
}

// assertGraphsEqual compares every piece of graph state, exported and not,
// plus the derived analyses the API serves.
func assertGraphsEqual(t *testing.T, inc, full *Graph, label string) {
	t.Helper()
	if !reflect.DeepEqual(inc.Years, full.Years) {
		t.Fatalf("%s: Years = %v, want %v", label, inc.Years, full.Years)
	}
	if !reflect.DeepEqual(inc.Analyses, full.Analyses) {
		t.Errorf("%s: pair analyses differ", label)
	}
	if !reflect.DeepEqual(inc.GroupEdges, full.GroupEdges) {
		t.Errorf("%s: group edges differ", label)
	}
	if !reflect.DeepEqual(inc.RecordEdges, full.RecordEdges) {
		t.Errorf("%s: record edges differ", label)
	}
	if !reflect.DeepEqual(inc.preserveNext, full.preserveNext) {
		t.Errorf("%s: preserve chains differ", label)
	}
	if !reflect.DeepEqual(inc.households, full.households) {
		t.Errorf("%s: household index differs", label)
	}
	if !reflect.DeepEqual(inc.PatternCounts(), full.PatternCounts()) {
		t.Errorf("%s: pattern counts differ", label)
	}
	if !reflect.DeepEqual(inc.ConnectedComponents(), full.ConnectedComponents()) {
		t.Errorf("%s: connected components differ", label)
	}
	if !reflect.DeepEqual(inc.SurvivalCurve(), full.SurvivalCurve()) {
		t.Errorf("%s: survival curves differ", label)
	}
}

// TestAppendYearDifferential is the tentpole acceptance gate: a graph grown
// by successive single-year appends — with timelines extended incrementally
// at each step — must be deep-equal (analyses, edges, chains, pattern
// counts, lifecycles, timelines) to a from-scratch rebuild at every length.
// make check runs this under -race.
func TestAppendYearDifferential(t *testing.T) {
	series, results := linkedSeries(t, 0.02, 17)

	// Seed the incremental graph with the first pair only.
	inc, err := BuildGraph(census.NewSeries(series.Datasets[:2]...), results[:1])
	if err != nil {
		t.Fatal(err)
	}
	timelines := inc.PersonTimelines(1)

	for n := 3; n <= len(series.Datasets); n++ {
		last, next := series.Datasets[n-2], series.Datasets[n-1]
		if err := inc.AppendYear(last, next, results[n-2]); err != nil {
			t.Fatalf("append %d: %v", next.Year, err)
		}
		timelines = inc.ExtendTimelines(timelines)

		full, err := BuildGraph(census.NewSeries(series.Datasets[:n]...), results[:n-1])
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("through %d", next.Year)
		assertGraphsEqual(t, inc, full, label)
		if want := full.PersonTimelines(1); !reflect.DeepEqual(timelines, want) {
			t.Errorf("%s: incremental timelines differ from rebuild (%d vs %d)",
				label, len(timelines), len(want))
		}
	}
}

// TestAppendYearValidation: out-of-order or mismatched appends must be
// rejected without mutating the graph.
func TestAppendYearValidation(t *testing.T) {
	series, results := linkedSeries(t, 0.01, 5)
	g, err := BuildGraph(census.NewSeries(series.Datasets[:2]...), results[:1])
	if err != nil {
		t.Fatal(err)
	}
	yearsBefore := append([]int(nil), g.Years...)

	// Wrong last dataset (not the graph's final year).
	if err := g.AppendYear(series.Datasets[0], series.Datasets[2], results[1]); err == nil {
		t.Error("append with mismatched last dataset should fail")
	}
	// New year not after the end.
	if err := g.AppendYear(series.Datasets[1], series.Datasets[0], results[0]); err == nil {
		t.Error("append of an earlier year should fail")
	}
	if !reflect.DeepEqual(g.Years, yearsBefore) {
		t.Errorf("failed appends mutated Years: %v", g.Years)
	}
}

// TestCloneIsolation: appending to a clone must leave the original graph
// (and timelines derived from it) untouched — the server swaps graphs under
// concurrent readers.
func TestCloneIsolation(t *testing.T) {
	series, results := linkedSeries(t, 0.01, 9)
	n := len(series.Datasets)
	orig, err := BuildGraph(census.NewSeries(series.Datasets[:n-1]...), results[:n-2])
	if err != nil {
		t.Fatal(err)
	}
	origTimelines := orig.PersonTimelines(1)
	yearsBefore := append([]int(nil), orig.Years...)
	edgesBefore := len(orig.GroupEdges)
	chainsBefore := orig.PreserveChains(1)
	tlCopy := make([]Timeline, len(origTimelines))
	copy(tlCopy, origTimelines)

	c := orig.Clone()
	if err := c.AppendYear(series.Datasets[n-2], series.Datasets[n-1], results[n-2]); err != nil {
		t.Fatal(err)
	}
	extended := c.ExtendTimelines(origTimelines)

	if !reflect.DeepEqual(orig.Years, yearsBefore) {
		t.Errorf("clone append mutated original Years: %v", orig.Years)
	}
	if len(orig.GroupEdges) != edgesBefore {
		t.Errorf("clone append grew original GroupEdges: %d -> %d", edgesBefore, len(orig.GroupEdges))
	}
	if got := orig.PreserveChains(1); got != chainsBefore {
		t.Errorf("clone append changed original preserve chains: %d -> %d", chainsBefore, got)
	}
	if !reflect.DeepEqual(origTimelines, tlCopy) {
		t.Error("ExtendTimelines mutated the input timelines")
	}
	if want := c.PersonTimelines(1); !reflect.DeepEqual(extended, want) {
		t.Error("clone's extended timelines differ from a recompute")
	}
	full, err := BuildGraph(series, results)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, c, full, "clone+append")
}
