package evolution

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := runningExampleGraph(t)
	var b strings.Builder
	if err := g.WriteDOT(&b, "example"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "example" {`,
		`subgraph "cluster_1871"`,
		`subgraph "cluster_1881"`,
		`"1871/1871_a"`,
		`"1881/1881_d"`,
		`"1871/1871_a" -> "1881/1881_a" [label="preserve_G", color="black"];`,
		`"1871/1871_a" -> "1881/1881_c" [label="move", color="blue"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT output not closed")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := runningExampleGraph(t)
	var a, b strings.Builder
	if err := g.WriteDOT(&a, ""); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b, ""); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("DOT output varies between calls")
	}
	if !strings.Contains(a.String(), `digraph "evolution"`) {
		t.Error("default name not applied")
	}
}
