package evolution

import (
	"context"
	"fmt"
	"sort"

	"censuslink/internal/census"
	"censuslink/internal/cluster"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
)

// GroupVertex identifies a household at one census year.
type GroupVertex struct {
	Year      int
	Household string
}

// GroupEdge is a typed group-evolution edge between two successive censuses.
type GroupEdge struct {
	From, To GroupVertex
	Pattern  GroupPattern // PatternPreserve, PatternMove, PatternSplit or PatternMerge
}

// Graph is the evolution graph of Section 4.2: households (and records) of
// every census are vertices, connected across successive censuses by typed
// evolution-pattern edges.
type Graph struct {
	Years []int
	// Analyses holds the per-pair pattern analysis, in year order.
	Analyses []*PairAnalysis
	// GroupEdges holds the typed household edges of all pairs.
	GroupEdges []GroupEdge
	// RecordEdges holds the record links of all pairs (gray dotted lines in
	// Fig. 5), keyed by the index of the census pair.
	RecordEdges [][]linkage.Pair

	// preserveNext maps a household vertex to its preserve_G successor
	// (unique because preserve_G links are 1:1).
	preserveNext map[GroupVertex]GroupVertex
	// households per year, for chain queries.
	households map[int][]string
}

// BuildGraph assembles the evolution graph for a series of censuses from
// the per-pair linkage results (results[i] links Datasets[i] to
// Datasets[i+1]).
func BuildGraph(series *census.Series, results []*linkage.Result) (*Graph, error) {
	return BuildGraphContext(context.Background(), series, results, nil)
}

// BuildGraphObs is BuildGraph with observability: the assembly is timed as
// the "evolution_build" stage and the graph size lands on the collector's
// run totals. A nil collector reports nothing.
func BuildGraphObs(series *census.Series, results []*linkage.Result, st *obs.Stats) (*Graph, error) {
	return BuildGraphContext(context.Background(), series, results, st)
}

// BuildGraphContext is BuildGraphObs with cooperative cancellation: the
// context is observed between census pairs, so a deadline or SIGINT aborts
// the assembly of a long series promptly with an error wrapping ctx.Err().
func BuildGraphContext(ctx context.Context, series *census.Series, results []*linkage.Result, st *obs.Stats) (*Graph, error) {
	defer st.Stage("evolution_build")()
	g, err := buildGraph(ctx, series, results)
	if err == nil {
		vertices := 0
		for _, ids := range g.households {
			vertices += len(ids)
		}
		st.Add(obs.EvolutionVertices, vertices)
		st.Add(obs.EvolutionEdges, len(g.GroupEdges))
	}
	return g, err
}

func buildGraph(ctx context.Context, series *census.Series, results []*linkage.Result) (*Graph, error) {
	if len(results) != len(series.Datasets)-1 {
		return nil, fmt.Errorf("evolution: %d results for %d datasets", len(results), len(series.Datasets))
	}
	g := &Graph{
		Years:        series.Years(),
		preserveNext: make(map[GroupVertex]GroupVertex),
		households:   make(map[int][]string),
	}
	for _, d := range series.Datasets {
		ids := make([]string, 0, d.NumHouseholds())
		for _, h := range d.Households() {
			ids = append(ids, h.ID)
		}
		g.households[d.Year] = ids
	}
	for i, res := range results {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("evolution: pair %d-%d: %w",
				series.Datasets[i].Year, series.Datasets[i+1].Year, err)
		}
		g.appendPair(series.Datasets[i], series.Datasets[i+1], res)
	}
	return g, nil
}

// appendPair analyzes one census pair and appends its analysis, record edges
// and typed group edges to the graph. It is shared by the from-scratch build
// and AppendYear, so the incremental path is equal to a rebuild by
// construction.
func (g *Graph) appendPair(old, new *census.Dataset, res *linkage.Result) {
	a := Analyze(old, new, res)
	g.Analyses = append(g.Analyses, a)
	g.RecordEdges = append(g.RecordEdges, a.PreservedRecords)

	addEdge := func(oldID, newID string, p GroupPattern) {
		g.GroupEdges = append(g.GroupEdges, GroupEdge{
			From:    GroupVertex{Year: old.Year, Household: oldID},
			To:      GroupVertex{Year: new.Year, Household: newID},
			Pattern: p,
		})
	}
	for _, pr := range a.PreservedGroups {
		addEdge(pr[0], pr[1], PatternPreserve)
		g.preserveNext[GroupVertex{Year: old.Year, Household: pr[0]}] =
			GroupVertex{Year: new.Year, Household: pr[1]}
	}
	for _, mv := range a.Moves {
		addEdge(mv[0], mv[1], PatternMove)
	}
	for _, sp := range a.Splits {
		for _, part := range sp.News {
			addEdge(sp.Old, part, PatternSplit)
		}
	}
	for _, mg := range a.Merges {
		for _, part := range mg.Olds {
			addEdge(part, mg.New, PatternMerge)
		}
	}
}

// AppendYear extends the graph in place with one newly arrived census:
// last must be the dataset of the graph's current final year, next the new
// dataset, and res their pair linkage (for example from linkage.LinkAppend).
// Only the new pair is analyzed — the work is O(new pair), independent of
// how many decades the graph already covers — and the resulting graph is
// deep-equal to a from-scratch BuildGraph over the extended series (the
// differential test in incremental_test.go holds this equality across
// multiple appended years).
//
// AppendYear mutates g; callers serving concurrent readers should extend a
// Clone and swap it in.
func (g *Graph) AppendYear(last, next *census.Dataset, res *linkage.Result) error {
	if len(g.Years) == 0 {
		return fmt.Errorf("evolution: append to empty graph")
	}
	if lastYear := g.Years[len(g.Years)-1]; last.Year != lastYear {
		return fmt.Errorf("evolution: append pair starts at %d, graph ends at %d", last.Year, lastYear)
	}
	if next.Year <= last.Year {
		return fmt.Errorf("evolution: appended year %d not after %d", next.Year, last.Year)
	}
	ids := make([]string, 0, next.NumHouseholds())
	for _, h := range next.Households() {
		ids = append(ids, h.ID)
	}
	g.Years = append(g.Years, next.Year)
	g.households[next.Year] = ids
	g.appendPair(last, next, res)
	return nil
}

// Clone returns a copy of the graph that can be extended with AppendYear
// without mutating g: the slices and maps AppendYear grows are copied, while
// the immutable leaves (per-pair analyses, record-link slices, household ID
// lists) are shared. Readers of g are unaffected by any operation on the
// clone, so a server can keep serving one graph while building its
// successor.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Years:        append([]int(nil), g.Years...),
		Analyses:     append([]*PairAnalysis(nil), g.Analyses...),
		GroupEdges:   append([]GroupEdge(nil), g.GroupEdges...),
		RecordEdges:  append([][]linkage.Pair(nil), g.RecordEdges...),
		preserveNext: make(map[GroupVertex]GroupVertex, len(g.preserveNext)),
		households:   make(map[int][]string, len(g.households)),
	}
	for k, v := range g.preserveNext {
		c.preserveNext[k] = v
	}
	for k, v := range g.households {
		c.households[k] = v
	}
	return c
}

// key renders a group vertex as a string for the union-find structure.
func (v GroupVertex) key() string { return fmt.Sprintf("%d|%s", v.Year, v.Household) }

// ConnectedComponents returns the sizes of the connected components over
// all household vertices (connected by any group-pattern edge), sorted
// descending. Isolated households count as components of size 1.
func (g *Graph) ConnectedComponents() []int {
	uf := cluster.NewUnionFind()
	for year, ids := range g.households {
		for _, id := range ids {
			uf.Add(GroupVertex{Year: year, Household: id}.key())
		}
	}
	for _, e := range g.GroupEdges {
		uf.Union(e.From.key(), e.To.key())
	}
	comps := uf.Components()
	sizes := make([]int, len(comps))
	for i, c := range comps {
		sizes[i] = len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// LargestComponentShare returns the size of the largest connected component
// and its share of all household vertices (the paper reports 17,150
// households, about 52%, for 1851-1901).
func (g *Graph) LargestComponentShare() (size int, share float64) {
	sizes := g.ConnectedComponents()
	if len(sizes) == 0 {
		return 0, 0
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	return sizes[0], float64(sizes[0]) / float64(total)
}

// PreserveChains counts households preserved over the given number of
// consecutive census intervals: the Table 8 query. intervals=1 counts all
// preserve_G patterns; intervals=5 counts households preserved from the
// first to the last census.
func (g *Graph) PreserveChains(intervals int) int {
	if intervals < 1 {
		return 0
	}
	count := 0
	for yi := 0; yi+intervals < len(g.Years); yi++ {
		year := g.Years[yi]
		for _, id := range g.households[year] {
			v := GroupVertex{Year: year, Household: id}
			ok := true
			for step := 0; step < intervals; step++ {
				next, exists := g.preserveNext[v]
				if !exists {
					ok = false
					break
				}
				v = next
			}
			if ok {
				count++
			}
		}
	}
	return count
}

// PatternCounts returns, for each census pair, the count of every group
// pattern (the data behind Fig. 6 of the paper).
func (g *Graph) PatternCounts() []map[GroupPattern]int {
	out := make([]map[GroupPattern]int, len(g.Analyses))
	for i, a := range g.Analyses {
		out[i] = map[GroupPattern]int{
			PatternPreserve: a.Count(PatternPreserve),
			PatternAdd:      a.Count(PatternAdd),
			PatternRemove:   a.Count(PatternRemove),
			PatternMove:     a.Count(PatternMove),
			PatternSplit:    a.Count(PatternSplit),
			PatternMerge:    a.Count(PatternMerge),
		}
	}
	return out
}
