package hgraph

import (
	"fmt"
	"testing"
	"testing/quick"

	"censuslink/internal/census"
)

// paperHousehold builds the running example's household g^b_1871:
// John Smith (head, 44), Elizabeth Smith (wife, 41), Steve Smith (son, 17).
func paperHousehold(t *testing.T) (*census.Dataset, *census.Household) {
	t.Helper()
	d := census.NewDataset(1871)
	recs := []*census.Record{
		{ID: "1871_6", HouseholdID: "b", FirstName: "john", Surname: "smith", Sex: census.SexMale, Age: 44, Role: census.RoleHead},
		{ID: "1871_7", HouseholdID: "b", FirstName: "elizabeth", Surname: "smith", Sex: census.SexFemale, Age: 41, Role: census.RoleWife},
		{ID: "1871_8", HouseholdID: "b", FirstName: "steve", Surname: "smith", Sex: census.SexMale, Age: 17, Role: census.RoleSon},
	}
	for _, r := range recs {
		if err := d.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return d, d.Household("b")
}

// TestEnrichmentPaperExample reproduces Fig. 2: enrichment of g^b_1871 adds
// the implicit wife-son edge and annotates all edges with age differences.
func TestEnrichmentPaperExample(t *testing.T) {
	d, h := paperHousehold(t)
	g := Build(d, h)
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Complete graph over 3 members.
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	// head-wife: spouse, age diff 3.
	typ, diff, ok := g.EdgeBetween("1871_6", "1871_7")
	if !ok || typ != RelSpouse || diff != 3 {
		t.Errorf("head-wife edge = %v/%d/%v", typ, diff, ok)
	}
	// head-son: parent-child, age diff 27.
	typ, diff, ok = g.EdgeBetween("1871_6", "1871_8")
	if !ok || typ != RelParentChild || diff != 27 {
		t.Errorf("head-son edge = %v/%d/%v", typ, diff, ok)
	}
	// Implicit wife-son edge (added by enrichment): parent-child, diff 24.
	typ, diff, ok = g.EdgeBetween("1871_7", "1871_8")
	if !ok || typ != RelParentChild || diff != 24 {
		t.Errorf("wife-son edge = %v/%d/%v", typ, diff, ok)
	}
}

func TestEdgeBetweenOrientation(t *testing.T) {
	d, h := paperHousehold(t)
	g := Build(d, h)
	_, fwd, _ := g.EdgeBetween("1871_6", "1871_8")
	_, rev, _ := g.EdgeBetween("1871_8", "1871_6")
	if fwd != -rev {
		t.Errorf("age diff not antisymmetric: %d vs %d", fwd, rev)
	}
	if _, _, ok := g.EdgeBetween("1871_6", "1871_6"); ok {
		t.Error("self edge should not exist")
	}
	if _, _, ok := g.EdgeBetween("1871_6", "ghost"); ok {
		t.Error("edge to non-member should not exist")
	}
}

func TestMissingAgeYieldsMissingDiff(t *testing.T) {
	d := census.NewDataset(1871)
	if err := d.AddRecord(&census.Record{ID: "r1", HouseholdID: "h", FirstName: "a", Surname: "x", Age: 40, Role: census.RoleHead}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRecord(&census.Record{ID: "r2", HouseholdID: "h", FirstName: "b", Surname: "x", Age: census.AgeMissing, Role: census.RoleWife}); err != nil {
		t.Fatal(err)
	}
	g := Build(d, d.Household("h"))
	_, diff, ok := g.EdgeBetween("r1", "r2")
	if !ok || diff != AgeDiffMissing {
		t.Errorf("missing age edge = %d/%v", diff, ok)
	}
}

func TestUnifyRoles(t *testing.T) {
	cases := []struct {
		a, b census.Role
		want RelType
	}{
		{census.RoleHead, census.RoleWife, RelSpouse},
		{census.RoleWife, census.RoleHead, RelSpouse}, // symmetric
		{census.RoleHead, census.RoleHusband, RelSpouse},
		{census.RoleHead, census.RoleSon, RelParentChild},
		{census.RoleDaughter, census.RoleHead, RelParentChild},
		{census.RoleHead, census.RoleFather, RelParentChild},
		{census.RoleMother, census.RoleHead, RelParentChild},
		{census.RoleSon, census.RoleDaughter, RelSibling},
		{census.RoleSon, census.RoleSon, RelSibling},
		{census.RoleHead, census.RoleBrother, RelSibling},
		{census.RoleHead, census.RoleGrandson, RelGrand},
		{census.RoleWife, census.RoleSon, RelParentChild},
		{census.RoleWife, census.RoleGranddaughter, RelGrand},
		{census.RoleFather, census.RoleMother, RelSpouse},
		{census.RoleFather, census.RoleSon, RelGrand},
		{census.RoleGrandson, census.RoleGranddaughter, RelSibling},
		{census.RoleHead, census.RoleServant, RelOther},
		{census.RoleServant, census.RoleServant, RelOther},
		{census.RoleBoarder, census.RoleWife, RelOther},
		{census.RoleNephew, census.RoleNiece, RelOther},
		{census.RoleHead, census.RoleVisitor, RelOther},
	}
	for _, c := range cases {
		if got := UnifyRoles(c.a, c.b); got != c.want {
			t.Errorf("UnifyRoles(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestUnifyRolesSymmetric: the unified type must not depend on argument
// order for any role pair.
func TestUnifyRolesSymmetric(t *testing.T) {
	roles := []census.Role{
		census.RoleHead, census.RoleWife, census.RoleHusband, census.RoleSon,
		census.RoleDaughter, census.RoleFather, census.RoleMother,
		census.RoleBrother, census.RoleSister, census.RoleGrandson,
		census.RoleGranddaughter, census.RoleNephew, census.RoleNiece,
		census.RoleServant, census.RoleBoarder, census.RoleLodger,
		census.RoleVisitor, census.RoleOther,
	}
	for _, a := range roles {
		for _, b := range roles {
			if UnifyRoles(a, b) != UnifyRoles(b, a) {
				t.Errorf("UnifyRoles(%v,%v) not symmetric", a, b)
			}
		}
	}
}

func TestBuildAll(t *testing.T) {
	d, _ := paperHousehold(t)
	if err := d.AddRecord(&census.Record{ID: "x1", HouseholdID: "c", FirstName: "q", Surname: "z", Age: 20, Role: census.RoleHead}); err != nil {
		t.Fatal(err)
	}
	graphs := BuildAll(d)
	if len(graphs) != 2 {
		t.Fatalf("BuildAll = %d graphs", len(graphs))
	}
	if graphs["b"].NumEdges() != 3 || graphs["c"].NumEdges() != 0 {
		t.Errorf("edge counts: b=%d c=%d", graphs["b"].NumEdges(), graphs["c"].NumEdges())
	}
	if !graphs["b"].Contains("1871_8") || graphs["b"].Contains("x1") {
		t.Error("Contains wrong")
	}
}

// TestCompleteGraphProperty: for any household of n members, enrichment
// produces exactly n(n-1)/2 edges and every member pair has an edge.
func TestCompleteGraphProperty(t *testing.T) {
	prop := func(size uint8) bool {
		n := int(size%12) + 1
		d := census.NewDataset(1871)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = fmt.Sprintf("r%d", i)
			role := census.RoleSon
			if i == 0 {
				role = census.RoleHead
			}
			if err := d.AddRecord(&census.Record{
				ID: ids[i], HouseholdID: "h", FirstName: "f", Surname: "s",
				Age: 20 + i, Role: role,
			}); err != nil {
				return false
			}
		}
		g := Build(d, d.Household("h"))
		if g.NumEdges() != n*(n-1)/2 {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				_, _, ok := g.EdgeBetween(ids[i], ids[j])
				if (i == j) == ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRelTypeString(t *testing.T) {
	want := map[RelType]string{
		RelSpouse: "spouse", RelParentChild: "parent-child",
		RelSibling: "sibling", RelGrand: "grandparent-grandchild",
		RelOther: "other",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	d := census.NewDataset(1871)
	for i := 0; i < 8; i++ {
		role := census.RoleSon
		if i == 0 {
			role = census.RoleHead
		} else if i == 1 {
			role = census.RoleWife
		}
		if err := d.AddRecord(&census.Record{
			ID: fmt.Sprintf("r%d", i), HouseholdID: "h",
			FirstName: "f", Surname: "s", Age: 40 - i*4, Role: role,
		}); err != nil {
			b.Fatal(err)
		}
	}
	h := d.Household("h")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(d, h)
	}
}
