package hgraph

import (
	"sync"

	"censuslink/internal/census"
)

// Cache memoizes BuildAll per dataset content hash so a long-lived process
// (the linkserver, an append-only evolution build) enriches each census year
// once, no matter how many year pairs it participates in. Entries are keyed
// by census.Dataset.ContentHash, so two Dataset values holding the same
// records share one enrichment and a re-read dataset with edits misses
// cleanly.
//
// The cached graphs are treated as immutable by every consumer (the linkage
// pipeline only reads them), so handing the same map to concurrent callers
// is safe. A Cache is safe for concurrent use; the zero value is NOT ready —
// use NewCache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    uint64
	misses  uint64
}

// cacheEntry is a single-flight slot: the first caller for a hash builds the
// graphs while later callers wait on done.
type cacheEntry struct {
	done   chan struct{}
	graphs map[string]*Graph
}

// NewCache returns an empty enrichment cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// BuildAll returns the enriched household graphs for d, building them on the
// first call for d's content hash and reusing them afterwards. Concurrent
// callers for the same dataset coalesce onto one build.
func (c *Cache) BuildAll(d *census.Dataset) map[string]*Graph {
	key := d.ContentHash()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.graphs
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.graphs = BuildAll(d)
	close(e.done)
	return e.graphs
}

// Stats reports cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached datasets.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
