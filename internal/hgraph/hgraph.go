// Package hgraph represents households as graphs and implements the group
// enrichment step of Christen et al. (EDBT 2017), Section 3.1: the
// head-relative roles of the census schedule are unified into
// time-independent pairwise relationship types, an implicit edge is added
// for every pair of household members, and the (signed) age difference is
// attached to each edge as a stable relationship property.
package hgraph

import (
	"censuslink/internal/census"
)

// RelType is a unified, time-independent pairwise relationship type.
type RelType byte

// Unified relationship types derived from head-relative roles.
const (
	// RelOther is any pair for which no family relation can be derived
	// (including servants, boarders and visitors).
	RelOther RelType = iota
	// RelSpouse joins married partners.
	RelSpouse
	// RelParentChild joins a parent and their child.
	RelParentChild
	// RelSibling joins two siblings.
	RelSibling
	// RelGrand joins a grandparent and a grandchild.
	RelGrand
)

// String returns the type name.
func (t RelType) String() string {
	switch t {
	case RelSpouse:
		return "spouse"
	case RelParentChild:
		return "parent-child"
	case RelSibling:
		return "sibling"
	case RelGrand:
		return "grandparent-grandchild"
	default:
		return "other"
	}
}

// AgeDiffMissing is the sentinel for an edge whose age difference could not
// be computed because one of the ages is missing.
const AgeDiffMissing = -1000

// Edge is an enriched relationship between two household members. A and B
// are record IDs in member order; AgeDiff is age(A) - age(B) (signed), or
// AgeDiffMissing.
type Edge struct {
	A, B    string
	Type    RelType
	AgeDiff int
}

// Graph is the enriched graph of one household: a complete graph over the
// members with typed, age-difference annotated edges.
type Graph struct {
	HouseholdID string
	Year        int

	members []*census.Record
	index   map[string]int // record ID -> member position
	edges   []Edge
	// edgeAt[i*len(members)+j] for i<j indexes into edges; -1 otherwise.
	edgeAt []int
}

// Build constructs the enriched graph for household h of dataset d
// (the completeGroups step for one group).
func Build(d *census.Dataset, h *census.Household) *Graph {
	members := d.Members(h)
	g := &Graph{
		HouseholdID: h.ID,
		Year:        d.Year,
		members:     members,
		index:       make(map[string]int, len(members)),
		edgeAt:      make([]int, len(members)*len(members)),
	}
	for i, m := range members {
		g.index[m.ID] = i
	}
	for i := range g.edgeAt {
		g.edgeAt[i] = -1
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			a, b := members[i], members[j]
			e := Edge{
				A:       a.ID,
				B:       b.ID,
				Type:    UnifyRoles(a.Role, b.Role),
				AgeDiff: ageDiff(a, b),
			}
			g.edgeAt[i*len(members)+j] = len(g.edges)
			g.edges = append(g.edges, e)
		}
	}
	return g
}

// BuildAll enriches every household of a dataset, keyed by household ID.
func BuildAll(d *census.Dataset) map[string]*Graph {
	out := make(map[string]*Graph, d.NumHouseholds())
	for _, h := range d.Households() {
		out[h.ID] = Build(d, h)
	}
	return out
}

// Members returns the member records in schedule order. The slice is shared.
func (g *Graph) Members() []*census.Record { return g.members }

// NumVertices returns the number of members.
func (g *Graph) NumVertices() int { return len(g.members) }

// NumEdges returns the number of enriched edges, n(n-1)/2 for n members.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns all enriched edges. The slice is shared.
func (g *Graph) Edges() []Edge { return g.edges }

// Contains reports whether the record ID is a member of the household.
func (g *Graph) Contains(id string) bool {
	_, ok := g.index[id]
	return ok
}

// EdgeBetween returns the unified relationship type and the signed age
// difference age(x) - age(y) for two member record IDs. ok is false when
// either ID is not a member (or x == y).
func (g *Graph) EdgeBetween(x, y string) (t RelType, ageDiff int, ok bool) {
	i, okX := g.index[x]
	j, okY := g.index[y]
	if !okX || !okY || i == j {
		return RelOther, AgeDiffMissing, false
	}
	flip := false
	if i > j {
		i, j = j, i
		flip = true
	}
	ei := g.edgeAt[i*len(g.members)+j]
	if ei < 0 {
		return RelOther, AgeDiffMissing, false
	}
	e := g.edges[ei]
	d := e.AgeDiff
	if flip && d != AgeDiffMissing {
		d = -d
	}
	return e.Type, d, true
}

// ageDiff returns age(a) - age(b), or AgeDiffMissing.
func ageDiff(a, b *census.Record) int {
	if a.Age == census.AgeMissing || b.Age == census.AgeMissing {
		return AgeDiffMissing
	}
	return a.Age - b.Age
}

// UnifyRoles derives the time-independent pairwise relationship type for two
// household members from their head-relative roles. The mapping encodes the
// usual reading of 19th-century census schedules: children listed in a
// household are children of the head (and of the head's spouse), the head's
// parents are grandparents of the head's children, and so on. Pairs
// involving non-family roles, and pairs whose relation cannot be derived
// reliably, map to RelOther.
func UnifyRoles(a, b census.Role) RelType {
	// Non-family roles never yield a derivable family relation.
	if !a.IsFamily() || !b.IsFamily() {
		return RelOther
	}
	// Normalise so the lookup is symmetric.
	if roleOrder(a) > roleOrder(b) {
		a, b = b, a
	}
	type pair struct{ x, y census.Role }
	key := pair{a, b}
	switch key {
	// Relations involving the head.
	case pair{census.RoleHead, census.RoleWife}, pair{census.RoleHead, census.RoleHusband}:
		return RelSpouse
	case pair{census.RoleHead, census.RoleSon}, pair{census.RoleHead, census.RoleDaughter},
		pair{census.RoleHead, census.RoleFather}, pair{census.RoleHead, census.RoleMother}:
		return RelParentChild
	case pair{census.RoleHead, census.RoleBrother}, pair{census.RoleHead, census.RoleSister}:
		return RelSibling
	case pair{census.RoleHead, census.RoleGrandson}, pair{census.RoleHead, census.RoleGranddaughter}:
		return RelGrand

	// Relations involving the head's spouse.
	case pair{census.RoleWife, census.RoleSon}, pair{census.RoleWife, census.RoleDaughter},
		pair{census.RoleHusband, census.RoleSon}, pair{census.RoleHusband, census.RoleDaughter}:
		return RelParentChild
	case pair{census.RoleWife, census.RoleGrandson}, pair{census.RoleWife, census.RoleGranddaughter},
		pair{census.RoleHusband, census.RoleGrandson}, pair{census.RoleHusband, census.RoleGranddaughter}:
		return RelGrand

	// Relations among the head's children.
	case pair{census.RoleSon, census.RoleSon}, pair{census.RoleDaughter, census.RoleDaughter},
		pair{census.RoleSon, census.RoleDaughter}:
		return RelSibling

	// The head's parents vs. the head's children.
	case pair{census.RoleFather, census.RoleSon}, pair{census.RoleFather, census.RoleDaughter},
		pair{census.RoleMother, census.RoleSon}, pair{census.RoleMother, census.RoleDaughter}:
		return RelGrand
	case pair{census.RoleFather, census.RoleMother}:
		return RelSpouse

	// The head's siblings vs. the head's parents.
	case pair{census.RoleFather, census.RoleBrother}, pair{census.RoleFather, census.RoleSister},
		pair{census.RoleMother, census.RoleBrother}, pair{census.RoleMother, census.RoleSister}:
		return RelParentChild

	// The head's siblings among themselves.
	case pair{census.RoleBrother, census.RoleBrother}, pair{census.RoleSister, census.RoleSister},
		pair{census.RoleBrother, census.RoleSister}:
		return RelSibling

	// Grandchildren among themselves are siblings or cousins; treat the
	// common case (children of the same absent parent) as sibling.
	case pair{census.RoleGrandson, census.RoleGrandson},
		pair{census.RoleGranddaughter, census.RoleGranddaughter},
		pair{census.RoleGrandson, census.RoleGranddaughter}:
		return RelSibling

	default:
		return RelOther
	}
}

// roleOrder gives a total order over roles so UnifyRoles can canonicalise
// its argument pair.
func roleOrder(r census.Role) int {
	switch r {
	case census.RoleHead:
		return 0
	case census.RoleWife:
		return 1
	case census.RoleHusband:
		return 2
	case census.RoleFather:
		return 3
	case census.RoleMother:
		return 4
	case census.RoleBrother:
		return 5
	case census.RoleSister:
		return 6
	case census.RoleSon:
		return 7
	case census.RoleDaughter:
		return 8
	case census.RoleGrandson:
		return 9
	case census.RoleGranddaughter:
		return 10
	case census.RoleNephew:
		return 11
	case census.RoleNiece:
		return 12
	default:
		return 13
	}
}
