package hgraph

import (
	"reflect"
	"sync"
	"testing"

	"censuslink/internal/synth"
)

// TestCacheReusesEnrichment checks that the cache returns the same graph map
// for repeated BuildAll calls on datasets with equal content, and that the
// cached result matches an uncached build.
func TestCacheReusesEnrichment(t *testing.T) {
	series, err := synth.Generate(synth.TestConfig(0.01, 42))
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	d := series.Datasets[0]

	c := NewCache()
	first := c.BuildAll(d)
	second := c.BuildAll(d)
	if !reflect.DeepEqual(firstKeys(first), firstKeys(second)) {
		t.Fatalf("cache returned different household sets")
	}
	// Same map value, not just equal content: the point is reuse.
	if reflect.ValueOf(first).Pointer() != reflect.ValueOf(second).Pointer() {
		t.Fatalf("second BuildAll did not reuse the cached map")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}

	plain := BuildAll(d)
	if len(plain) != len(first) {
		t.Fatalf("cached build has %d households, plain build %d", len(first), len(plain))
	}
	for id, g := range plain {
		cg, ok := first[id]
		if !ok {
			t.Fatalf("household %s missing from cached build", id)
		}
		if !reflect.DeepEqual(g.Edges(), cg.Edges()) {
			t.Fatalf("household %s: cached edges differ from plain build", id)
		}
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over several
// datasets; every caller for a dataset must observe the same map (single
// build), with no races (run under -race in make check).
func TestCacheConcurrent(t *testing.T) {
	series, err := synth.Generate(synth.TestConfig(0.01, 7))
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	c := NewCache()
	var wg sync.WaitGroup
	results := make([]map[string]*Graph, 4*len(series.Datasets))
	for i := 0; i < 4; i++ {
		for j := range series.Datasets {
			wg.Add(1)
			go func(slot int, d2 int) {
				defer wg.Done()
				results[slot] = c.BuildAll(series.Datasets[d2])
			}(i*len(series.Datasets)+j, j)
		}
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		for j := range series.Datasets {
			a := results[j]
			b := results[i*len(series.Datasets)+j]
			if reflect.ValueOf(a).Pointer() != reflect.ValueOf(b).Pointer() {
				t.Fatalf("dataset %d: concurrent callers got different maps", j)
			}
		}
	}
	if c.Len() != len(series.Datasets) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(series.Datasets))
	}
}

func firstKeys(m map[string]*Graph) int { return len(m) }
