// Package collective implements the collective record linkage baseline (CL)
// that the paper compares against in Table 6: a SiGMa-style greedy matcher
// (Lacoste-Julien et al., KDD 2013, specialising Bhattacharya & Getoor's
// collective entity resolution).
//
// The algorithm seeds the matching with record pairs of very high attribute
// similarity, then repeatedly pops the highest-scoring candidate pair from a
// priority queue, where a pair's score combines attribute similarity with a
// relational similarity over the already-matched household neighbours. Each
// accepted match raises the relational score of its neighbour pairs, which
// are (re-)pushed into the queue. Following the paper's setup, candidate
// pairs whose normalised age difference exceeds three years are filtered
// out, and the seed threshold is 0.9.
package collective

import (
	"container/heap"
	"sort"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/compare"
	"censuslink/internal/linkage"
)

// Config parameterises the CL baseline.
type Config struct {
	// Sim is the attribute similarity function (the paper uses the same
	// configuration as for the main approach, Table 2).
	Sim linkage.SimFunc
	// SeedThreshold is the minimum attribute similarity for seed links
	// (0.9 in the paper).
	SeedThreshold float64
	// AcceptThreshold is the minimum combined score for accepting a
	// non-seed pair.
	AcceptThreshold float64
	// RelWeight weights the relational score against the attribute
	// similarity: score = (1-RelWeight)*attr + RelWeight*rel.
	RelWeight float64
	// AgeTolerance filters pairs whose normalised age difference (the age
	// gap minus the census interval) exceeds this many years.
	AgeTolerance int
	// Strategies is the blocking configuration.
	Strategies []block.Strategy
	// Engine selects the comparison path for the candidate scan (zero
	// value: compiled). The accepted candidates and their similarities are
	// identical either way.
	Engine linkage.EngineKind
}

// DefaultConfig mirrors the paper's CL setup.
func DefaultConfig() Config {
	return Config{
		Sim:             linkage.OmegaTwo(0),
		SeedThreshold:   0.9,
		AcceptThreshold: 0.5,
		RelWeight:       0.4,
		AgeTolerance:    3,
		Strategies:      block.DefaultStrategies(),
	}
}

// candidate is one record pair with its static attribute similarity.
type candidate struct {
	oldIdx, newIdx int
	attrSim        float64
}

// entry is a heap element; score is the combined score at push time (lazy
// deletion: stale entries are skipped when popped).
type entry struct {
	cand  int // index into candidates
	score float64
}

type entryHeap struct {
	items []entry
	cands []candidate
	oldID []string
	newID []string
}

func (h *entryHeap) Len() int { return len(h.items) }
func (h *entryHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.score != b.score {
		return a.score > b.score
	}
	ca, cb := h.cands[a.cand], h.cands[b.cand]
	if h.oldID[ca.oldIdx] != h.oldID[cb.oldIdx] {
		return h.oldID[ca.oldIdx] < h.oldID[cb.oldIdx]
	}
	return h.newID[ca.newIdx] < h.newID[cb.newIdx]
}
func (h *entryHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *entryHeap) Push(x any)    { h.items = append(h.items, x.(entry)) }
func (h *entryHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// Link runs the collective baseline and returns the 1:1 record mapping.
func Link(oldDS, newDS *census.Dataset, cfg Config) []linkage.RecordLink {
	oldRecs := oldDS.Records()
	newRecs := newDS.Records()
	oldIdx := make(map[string]int, len(oldRecs))
	newIdx := make(map[string]int, len(newRecs))
	oldIDs := make([]string, len(oldRecs))
	newIDs := make([]string, len(newRecs))
	for i, r := range oldRecs {
		oldIdx[r.ID] = i
		oldIDs[i] = r.ID
	}
	for i, r := range newRecs {
		newIdx[r.ID] = i
		newIDs[i] = r.ID
	}
	gap := newDS.Year - oldDS.Year

	ageOK := func(o, n *census.Record) bool {
		if o.Age == census.AgeMissing || n.Age == census.AgeMissing {
			return true
		}
		dev := (n.Age - o.Age) - gap
		if dev < 0 {
			dev = -dev
		}
		return dev <= cfg.AgeTolerance
	}

	// Candidate generation via blocking, with the age filter. Under the
	// compiled engine the scan scores through interned value pairs with an
	// early exit at the floor threshold; accepted candidates carry the
	// exact similarity either way.
	var eng *compare.Engine
	if cfg.Engine == linkage.EngineCompiled {
		eng = cfg.Sim.Compile(oldRecs, newRecs)
	}
	var cands []candidate
	candIdx := make(map[[2]int]int) // (oldIdx, newIdx) -> candidate index
	byOld := make([][]int, len(oldRecs))
	byNew := make([][]int, len(newRecs))
	block.Candidates(oldRecs, oldDS.Year, newRecs, newDS.Year, cfg.Strategies,
		func(o, n *census.Record) {
			if !ageOK(o, n) {
				return
			}
			oi, ni := oldIdx[o.ID], newIdx[n.ID]
			var sim float64
			if eng != nil {
				var keep bool
				// Hopeless pairs never become competitive.
				if sim, keep = eng.AggSimAtLeast(oi, ni, cfg.AcceptThreshold/2); !keep {
					return
				}
			} else {
				if sim = cfg.Sim.AggSim(o, n); sim < cfg.AcceptThreshold/2 {
					return
				}
			}
			ci := len(cands)
			cands = append(cands, candidate{oldIdx: oi, newIdx: ni, attrSim: sim})
			candIdx[[2]int{oi, ni}] = ci
			byOld[oi] = append(byOld[oi], ci)
			byNew[ni] = append(byNew[ni], ci)
		})

	// Household neighbour lists (indices into the record slices).
	oldNbrs := neighbours(oldDS, oldIdx)
	newNbrs := neighbours(newDS, newIdx)

	matchedOld := make([]int, len(oldRecs)) // newIdx+1, 0 = unmatched
	matchedNew := make([]int, len(newRecs))

	// relScore: fraction of neighbour pairs already matched to each other
	// (Dice over the two neighbourhoods).
	relScore := func(c candidate) float64 {
		on := oldNbrs[c.oldIdx]
		nn := newNbrs[c.newIdx]
		if len(on)+len(nn) == 0 {
			return 0
		}
		matched := 0
		for _, o := range on {
			if m := matchedOld[o]; m != 0 {
				// Is the matched partner a neighbour of the new record?
				for _, n := range nn {
					if n == m-1 {
						matched++
						break
					}
				}
			}
		}
		return 2 * float64(matched) / float64(len(on)+len(nn))
	}
	score := func(c candidate) float64 {
		return (1-cfg.RelWeight)*c.attrSim + cfg.RelWeight*relScore(c)
	}

	h := &entryHeap{cands: cands, oldID: oldIDs, newID: newIDs}
	// Seeds enter the queue with their attribute similarity; all other
	// candidates start at their initial combined score.
	for ci, c := range cands {
		if c.attrSim >= cfg.SeedThreshold {
			h.items = append(h.items, entry{cand: ci, score: score(c)})
		}
	}
	heap.Init(h)

	var links []linkage.RecordLink
	accept := func(ci int) {
		c := cands[ci]
		matchedOld[c.oldIdx] = c.newIdx + 1
		matchedNew[c.newIdx] = c.oldIdx + 1
		links = append(links, linkage.RecordLink{
			Old: oldIDs[c.oldIdx], New: newIDs[c.newIdx], Sim: c.attrSim,
		})
		// Matching this pair can raise the relational score of candidate
		// pairs between the two neighbourhoods: (re-)push them.
		for _, on := range oldNbrs[c.oldIdx] {
			if matchedOld[on] != 0 {
				continue
			}
			for _, nn := range newNbrs[c.newIdx] {
				if matchedNew[nn] != 0 {
					continue
				}
				if nci, ok := candIdx[[2]int{on, nn}]; ok {
					heap.Push(h, entry{cand: nci, score: score(cands[nci])})
				}
			}
		}
	}

	for h.Len() > 0 {
		e := heap.Pop(h).(entry)
		c := cands[e.cand]
		if matchedOld[c.oldIdx] != 0 || matchedNew[c.newIdx] != 0 {
			continue // stale
		}
		// Lazy re-evaluation: the true current score may differ from the
		// pushed one; accept only if it still clears the threshold.
		cur := score(c)
		if cur < cfg.AcceptThreshold && c.attrSim < cfg.SeedThreshold {
			continue
		}
		accept(e.cand)
	}

	sort.Slice(links, func(i, j int) bool {
		if links[i].Old != links[j].Old {
			return links[i].Old < links[j].Old
		}
		return links[i].New < links[j].New
	})
	return links
}

// neighbours returns, per record index, the indices of the other members of
// its household.
func neighbours(d *census.Dataset, idx map[string]int) [][]int {
	out := make([][]int, d.NumRecords())
	for _, h := range d.Households() {
		members := h.MemberIDs
		for _, a := range members {
			ai, ok := idx[a]
			if !ok {
				continue
			}
			for _, b := range members {
				if a == b {
					continue
				}
				if bi, ok := idx[b]; ok {
					out[ai] = append(out[ai], bi)
				}
			}
		}
	}
	return out
}
