package collective

import (
	"reflect"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

// TestCLRunningExample: on the paper's running example CL finds the five
// stable in-place links but, unlike the subgraph approach, misses the two
// moved persons (Alice and Steve) whose attributes changed — the behaviour
// behind its lower recall in Table 6.
func TestCLRunningExample(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	links := Link(old, new, DefaultConfig())
	got := map[string]string{}
	for _, l := range links {
		got[l.Old] = l.New
	}
	want := map[string]string{
		"1871_1": "1881_1",
		"1871_2": "1881_2",
		"1871_4": "1881_3",
		"1871_6": "1881_4",
		"1871_7": "1881_5",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CL mapping:\n got %v\nwant %v", got, want)
	}
}

// TestCLExpandsFromSeeds: a household member below the seed threshold is
// still linked when their matched neighbours raise the relational score.
func TestCLExpandsFromSeeds(t *testing.T) {
	old := census.NewDataset(1871)
	new := census.NewDataset(1881)
	add := func(d *census.Dataset, id, hh, fn, sn, occ string, sex census.Sex, age int, role census.Role) {
		t.Helper()
		if err := d.AddRecord(&census.Record{ID: id, HouseholdID: hh, FirstName: fn,
			Surname: sn, Occupation: occ, Sex: sex, Age: age, Role: role, Address: "1 dale street"}); err != nil {
			t.Fatal(err)
		}
	}
	// Parents identical (seeds); child's name was recorded with a heavy
	// typo, below any seed threshold.
	add(old, "o1", "h", "john", "barnes", "weaver", census.SexMale, 40, census.RoleHead)
	add(old, "o2", "h", "mary", "barnes", "winder", census.SexFemale, 38, census.RoleWife)
	add(old, "o3", "h", "william", "barnes", "", census.SexMale, 9, census.RoleSon)
	add(new, "n1", "h", "john", "barnes", "weaver", census.SexMale, 50, census.RoleHead)
	add(new, "n2", "h", "mary", "barnes", "winder", census.SexFemale, 48, census.RoleWife)
	add(new, "n3", "h", "wilm", "barnes", "piecer", census.SexMale, 19, census.RoleSon)

	cfg := DefaultConfig()
	links := Link(old, new, cfg)
	got := map[string]string{}
	for _, l := range links {
		got[l.Old] = l.New
	}
	if got["o1"] != "n1" || got["o2"] != "n2" {
		t.Fatalf("seeds not linked: %v", got)
	}
	if got["o3"] != "n3" {
		t.Errorf("child with typo not linked via relational expansion: %v", got)
	}
}

// TestCLAgeFilter: a pair whose age did not advance by the census interval
// is rejected even with identical attributes (the paper's footnote 2 setup).
func TestCLAgeFilter(t *testing.T) {
	old := census.NewDataset(1871)
	new := census.NewDataset(1881)
	if err := old.AddRecord(&census.Record{ID: "o1", HouseholdID: "h", FirstName: "john",
		Surname: "pickup", Sex: census.SexMale, Age: 30, Role: census.RoleHead}); err != nil {
		t.Fatal(err)
	}
	if err := new.AddRecord(&census.Record{ID: "n1", HouseholdID: "h", FirstName: "john",
		Surname: "pickup", Sex: census.SexMale, Age: 30, Role: census.RoleHead}); err != nil {
		t.Fatal(err)
	}
	if links := Link(old, new, DefaultConfig()); len(links) != 0 {
		t.Errorf("age-inconsistent pair linked: %v", links)
	}
}

// TestCLOneToOne: the produced mapping must be 1:1.
func TestCLOneToOne(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	links := Link(old, new, DefaultConfig())
	seenOld, seenNew := map[string]bool{}, map[string]bool{}
	for _, l := range links {
		if seenOld[l.Old] || seenNew[l.New] {
			t.Fatalf("duplicate in mapping: %v", l)
		}
		seenOld[l.Old] = true
		seenNew[l.New] = true
	}
}

// TestCLDeterminism: repeated runs agree exactly.
func TestCLDeterminism(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	base := Link(old, new, DefaultConfig())
	for i := 0; i < 3; i++ {
		if got := Link(old, new, DefaultConfig()); !reflect.DeepEqual(got, base) {
			t.Fatal("CL output varies between runs")
		}
	}
}

// TestCLWorseThanIterative: the headline Table 6 comparison on the running
// example — CL links strictly fewer correct pairs.
func TestCLWorseThanIterative(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	cl := Link(old, new, DefaultConfig())
	truth := paperexample.TrueRecordMapping()
	clCorrect := 0
	for _, l := range cl {
		if truth[l.Old] == l.New {
			clCorrect++
		}
	}
	if clCorrect >= len(truth) {
		t.Errorf("CL found %d of %d true links; expected strictly fewer (moved persons)", clCorrect, len(truth))
	}
}
