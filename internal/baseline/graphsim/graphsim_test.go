package graphsim

import (
	"reflect"
	"testing"

	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// TestGraphSimRunningExample: the baseline links the two stable household
// pairs but — because of the strict 1:1 constraint on households and the
// pre-computed record mapping — misses the two move links into household c,
// the recall limitation behind Table 7.
func TestGraphSimRunningExample(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res := Link(old, new, DefaultConfig())

	gotGroups := map[linkage.GroupPair]bool{}
	for _, g := range res.GroupLinks {
		gotGroups[linkage.GroupPair(g)] = true
	}
	if !gotGroups[linkage.GroupPair{Old: "1871_a", New: "1881_a"}] ||
		!gotGroups[linkage.GroupPair{Old: "1871_b", New: "1881_b"}] {
		t.Errorf("stable household pairs missing: %v", res.GroupLinks)
	}
	if gotGroups[linkage.GroupPair{Old: "1871_a", New: "1881_c"}] ||
		gotGroups[linkage.GroupPair{Old: "1871_b", New: "1881_c"}] {
		t.Errorf("1:1 household constraint should exclude the move links: %v", res.GroupLinks)
	}
	// Strictly fewer than the four true group links: the paper's recall gap.
	if len(res.GroupLinks) >= len(paperexample.TrueGroupMapping()) {
		t.Errorf("GraphSim found %d group links, expected fewer than %d",
			len(res.GroupLinks), len(paperexample.TrueGroupMapping()))
	}
}

// TestGraphSimRecordMappingSelective: the initial record mapping only
// contains high-similarity pairs; Alice (changed surname) is excluded.
func TestGraphSimRecordMappingSelective(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res := Link(old, new, DefaultConfig())
	for _, l := range res.RecordLinks {
		if l.Old == "1871_3" {
			t.Errorf("Alice should not be in the selective record mapping: %v", l)
		}
		if l.Sim < DefaultConfig().RecordThreshold {
			t.Errorf("record link below threshold: %v", l)
		}
	}
}

// TestGraphSimGroupsOneToOne: household links are 1:1.
func TestGraphSimGroupsOneToOne(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res := Link(old, new, DefaultConfig())
	seenOld, seenNew := map[string]bool{}, map[string]bool{}
	for _, g := range res.GroupLinks {
		if seenOld[g.Old] || seenNew[g.New] {
			t.Fatalf("household linked twice: %v", g)
		}
		seenOld[g.Old] = true
		seenNew[g.New] = true
	}
}

func TestGraphSimDeterminism(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	base := Link(old, new, DefaultConfig())
	for i := 0; i < 3; i++ {
		if got := Link(old, new, DefaultConfig()); !reflect.DeepEqual(got, base) {
			t.Fatal("GraphSim output varies between runs")
		}
	}
}

// TestGraphSimGroupThreshold: raising the group threshold filters weak
// household links.
func TestGraphSimGroupThreshold(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	cfg := DefaultConfig()
	cfg.GroupThreshold = 0.99
	res := Link(old, new, cfg)
	if len(res.GroupLinks) != 0 {
		t.Errorf("threshold 0.99 should reject all households: %v", res.GroupLinks)
	}
}
