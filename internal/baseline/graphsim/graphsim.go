// Package graphsim implements the household linkage baseline of Fu,
// Christen and Zhou (PAKDD 2014) that the paper compares against in
// Table 7 (called GraphSim there).
//
// The method first builds a highly selective one-shot 1:1 record mapping
// from attribute similarities alone. On top of that fixed mapping it scores
// each household pair connected by at least one record link with a
// combination of average record similarity and edge (structure) similarity,
// and greedily selects the best household links with a 1:1 constraint on
// households. Because record pairs filtered out by the strict initial 1:1
// mapping can never contribute, the method misses group links when the
// pre-computed record mapping is wrong or incomplete — the recall
// limitation discussed in Section 5.3 of the paper.
package graphsim

import (
	"context"
	"sort"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/hgraph"
	"censuslink/internal/linkage"
)

// Config parameterises the GraphSim baseline.
type Config struct {
	// Sim is the attribute similarity function for the initial record
	// mapping.
	Sim linkage.SimFunc
	// RecordThreshold is the minimum similarity of the initial 1:1 record
	// links (highly selective in the original method).
	RecordThreshold float64
	// GroupThreshold is the minimum combined household similarity.
	GroupThreshold float64
	// RecordWeight weights average record similarity against edge
	// similarity in the household score.
	RecordWeight float64
	// AgeTolerance bounds the edge age-difference deviation.
	AgeTolerance int
	// Strategies is the blocking configuration.
	Strategies []block.Strategy
}

// DefaultConfig mirrors the setup of the original method.
func DefaultConfig() Config {
	return Config{
		Sim:             linkage.OmegaTwo(0),
		RecordThreshold: 0.8,
		GroupThreshold:  0.3,
		RecordWeight:    0.5,
		AgeTolerance:    3,
		Strategies:      block.DefaultStrategies(),
	}
}

// Result holds the baseline's mappings.
type Result struct {
	RecordLinks []linkage.RecordLink
	GroupLinks  []linkage.GroupLink
}

// Link runs the GraphSim baseline.
func Link(oldDS, newDS *census.Dataset, cfg Config) *Result {
	gap := newDS.Year - oldDS.Year
	matchCfg := linkage.MatchConfig{AgeTolerance: cfg.AgeTolerance, YearGap: gap}

	// Step 1: one-shot, highly selective 1:1 record mapping. With a
	// background context the pass cannot fail.
	records, _ := linkage.MatchRemaining(context.Background(),
		oldDS.Records(), newDS.Records(), linkage.RemainderOptions{
			Sim:        cfg.Sim.WithDelta(cfg.RecordThreshold),
			OldYear:    oldDS.Year,
			NewYear:    newDS.Year,
			Match:      matchCfg,
			Strategies: cfg.Strategies,
		})

	// Step 2: household similarities over the fixed record mapping.
	oldGraphs := hgraph.BuildAll(oldDS)
	newGraphs := hgraph.BuildAll(newDS)

	type groupCand struct {
		pair  linkage.GroupPair
		links []linkage.RecordLink
		score float64
	}
	byPair := make(map[linkage.GroupPair]*groupCand)
	var order []linkage.GroupPair
	for _, l := range records {
		o, n := oldDS.Record(l.Old), newDS.Record(l.New)
		if o == nil || n == nil {
			continue
		}
		gp := linkage.GroupPair{Old: o.HouseholdID, New: n.HouseholdID}
		gc, ok := byPair[gp]
		if !ok {
			gc = &groupCand{pair: gp}
			byPair[gp] = gc
			order = append(order, gp)
		}
		gc.links = append(gc.links, l)
	}

	for _, gp := range order {
		gc := byPair[gp]
		gOld, gNew := oldGraphs[gp.Old], newGraphs[gp.New]
		// Average record similarity over the shared links.
		simSum := 0.0
		for _, l := range gc.links {
			simSum += l.Sim
		}
		avg := simSum / float64(len(gc.links))
		// Edge similarity: Dice over compatible edges between linked pairs.
		rpSum := 0.0
		for i := 0; i < len(gc.links); i++ {
			for j := i + 1; j < len(gc.links); j++ {
				tOld, dOld, okOld := gOld.EdgeBetween(gc.links[i].Old, gc.links[j].Old)
				tNew, dNew, okNew := gNew.EdgeBetween(gc.links[i].New, gc.links[j].New)
				if !okOld || !okNew || tOld != tNew ||
					dOld == hgraph.AgeDiffMissing || dNew == hgraph.AgeDiffMissing {
					continue
				}
				dev := dOld - dNew
				if dev < 0 {
					dev = -dev
				}
				if dev > cfg.AgeTolerance {
					continue
				}
				rpSum += 1 - float64(dev)/float64(cfg.AgeTolerance+1)
			}
		}
		eSim := 0.0
		if total := gOld.NumEdges() + gNew.NumEdges(); total > 0 {
			eSim = 2 * rpSum / float64(total)
		}
		gc.score = cfg.RecordWeight*avg + (1-cfg.RecordWeight)*eSim
	}

	// Greedy 1:1 selection over households by score.
	sort.Slice(order, func(i, j int) bool {
		a, b := byPair[order[i]], byPair[order[j]]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.pair.Old != b.pair.Old {
			return a.pair.Old < b.pair.Old
		}
		return a.pair.New < b.pair.New
	})
	usedOld := make(map[string]bool)
	usedNew := make(map[string]bool)
	res := &Result{RecordLinks: records}
	for _, gp := range order {
		gc := byPair[gp]
		if gc.score < cfg.GroupThreshold || usedOld[gp.Old] || usedNew[gp.New] {
			continue
		}
		usedOld[gp.Old] = true
		usedNew[gp.New] = true
		res.GroupLinks = append(res.GroupLinks, linkage.GroupLink(gp))
	}
	sort.Slice(res.GroupLinks, func(i, j int) bool {
		if res.GroupLinks[i].Old != res.GroupLinks[j].Old {
			return res.GroupLinks[i].Old < res.GroupLinks[j].Old
		}
		return res.GroupLinks[i].New < res.GroupLinks[j].New
	})
	return res
}
