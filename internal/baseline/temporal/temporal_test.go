package temporal

import (
	"math"
	"reflect"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

func TestPersistProb(t *testing.T) {
	if got := persistProb(10, 10); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("persistProb at half-life = %v, want 0.5", got)
	}
	if got := persistProb(10, 0); got != 1 {
		t.Errorf("persistProb at gap 0 = %v, want 1", got)
	}
	if got := persistProb(10, 20); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("persistProb at two half-lives = %v, want 0.25", got)
	}
	if persistProb(0, 5) != 0 {
		t.Error("zero half-life should never persist")
	}
}

func TestScoreForgivesVolatileAttributes(t *testing.T) {
	cfg := DefaultConfig()
	base := &census.Record{FirstName: "alice", Surname: "ashworth",
		Sex: census.SexFemale, Address: "3 mill lane", Occupation: "winder"}
	sameAll := &census.Record{FirstName: "alice", Surname: "ashworth",
		Sex: census.SexFemale, Address: "3 mill lane", Occupation: "winder"}
	changedVolatile := &census.Record{FirstName: "alice", Surname: "ashworth",
		Sex: census.SexFemale, Address: "9 york street", Occupation: "dressmaker"}
	changedStable := &census.Record{FirstName: "martha", Surname: "ashworth",
		Sex: census.SexFemale, Address: "3 mill lane", Occupation: "winder"}

	gap := 10.0
	full := Score(cfg, base, sameAll, gap)
	volatile := Score(cfg, base, changedVolatile, gap)
	stable := Score(cfg, base, changedStable, gap)
	if full <= volatile {
		t.Errorf("full agreement (%v) should beat volatile change (%v)", full, volatile)
	}
	// Changing a stable attribute (first name) must hurt much more than
	// changing the volatile ones.
	if volatile-stable < 0.05 {
		t.Errorf("stable-attribute change should be punished harder: volatile=%v stable=%v",
			volatile, stable)
	}
	// The decay model forgives: with a larger gap the volatile change
	// matters less relative to full agreement.
	fullLong := Score(cfg, base, sameAll, 40)
	volatileLong := Score(cfg, base, changedVolatile, 40)
	if (fullLong - volatileLong) >= (full - volatile) {
		t.Errorf("volatile-change penalty should shrink with the gap: %v vs %v",
			fullLong-volatileLong, full-volatile)
	}
}

func TestTemporalLinkRunningExample(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	links := Link(old, new, DefaultConfig())
	got := map[string]string{}
	for _, l := range links {
		got[l.Old] = l.New
	}
	// The stable in-place links must be found.
	for _, pair := range [][2]string{
		{"1871_1", "1881_1"}, {"1871_2", "1881_2"}, {"1871_4", "1881_3"},
		{"1871_6", "1881_4"}, {"1871_7", "1881_5"},
	} {
		if got[pair[0]] != pair[1] {
			t.Errorf("stable link %s -> %s missing (got %q)", pair[0], pair[1], got[pair[0]])
		}
	}
	// Steve moved with unchanged name: the decay model can forgive the
	// address change.
	if got["1871_8"] != "1881_6" {
		t.Errorf("Steve -> %q, want 1881_6", got["1871_8"])
	}
	// John Riley died; he must not be linked to either John Ashworth.
	if n, ok := got["1871_5"]; ok {
		t.Errorf("dead John Riley linked to %s", n)
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, l := range links {
		if seen[l.New] {
			t.Fatalf("record %s linked twice", l.New)
		}
		seen[l.New] = true
	}
}

func TestTemporalLinkDeterminism(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	base := Link(old, new, DefaultConfig())
	for i := 0; i < 3; i++ {
		if got := Link(old, new, DefaultConfig()); !reflect.DeepEqual(got, base) {
			t.Fatal("temporal baseline not deterministic")
		}
	}
}
