// Package temporal implements a decay-based temporal record linkage
// baseline in the spirit of Li, Dong, Maurino and Srivastava ("Linking
// temporal records", VLDB 2011), the related-work family the paper
// contrasts itself against: attribute disagreement is forgiven in
// proportion to how likely that attribute is to have changed over the
// elapsed time, and agreement on a volatile attribute counts for less.
//
// Unlike the paper's approach it considers records in isolation — no
// household structure — which is exactly the gap the group-linkage method
// fills; the baseline exists to quantify that gap.
package temporal

import (
	"math"
	"sort"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/strsim"
)

// Decay describes one attribute's change behaviour over time: HalfLife is
// the number of years after which the probability that the value is still
// the same has dropped to 0.5. Stable attributes have a very large
// half-life.
type Decay struct {
	Attr     census.Attribute
	Sim      strsim.Func
	Weight   float64
	HalfLife float64 // years
}

// Config parameterises the baseline.
type Config struct {
	Decays []Decay
	// Threshold is the minimum adjusted score for a link.
	Threshold float64
	// AgeTolerance bounds the deviation of the age gap from the census
	// interval.
	AgeTolerance int
	// Strategies is the blocking configuration.
	Strategies []block.Strategy
}

// DefaultConfig mirrors the census setting: names and sex are stable,
// surname changes for women at marriage (moderate half-life), address and
// occupation are volatile.
func DefaultConfig() Config {
	return Config{
		Decays: []Decay{
			{Attr: census.AttrFirstName, Sim: strsim.Bigram, Weight: 0.35, HalfLife: 1000},
			{Attr: census.AttrSex, Sim: strsim.Exact, Weight: 0.15, HalfLife: 1000},
			{Attr: census.AttrSurname, Sim: strsim.Bigram, Weight: 0.25, HalfLife: 60},
			{Attr: census.AttrAddress, Sim: strsim.Bigram, Weight: 0.15, HalfLife: 12},
			{Attr: census.AttrOccupation, Sim: strsim.Bigram, Weight: 0.10, HalfLife: 15},
		},
		Threshold:    0.62,
		AgeTolerance: 3,
		Strategies:   block.DefaultStrategies(),
	}
}

// persistProb returns the probability that an attribute value persisted
// over gap years, given its half-life.
func persistProb(halfLife, gap float64) float64 {
	if halfLife <= 0 {
		return 0
	}
	return math.Pow(0.5, gap/halfLife)
}

// Score computes the decay-adjusted similarity of a record pair over a
// time gap: for each attribute, the evidence is
//
//	p·sim + (1-p)·baseline
//
// where p is the persistence probability. A volatile attribute thus pulls
// the score towards a neutral baseline instead of punishing disagreement,
// and contributes less on agreement.
func Score(cfg Config, o, n *census.Record, gapYears float64) float64 {
	const neutral = 0.5
	total := 0.0
	for _, d := range cfg.Decays {
		s := d.Sim(o.Value(d.Attr), n.Value(d.Attr))
		p := persistProb(d.HalfLife, gapYears)
		total += d.Weight * (p*s + (1-p)*neutral)
	}
	return total
}

// Link runs the temporal baseline: blocked candidates are scored with the
// decay model, filtered by the age window, and matched greedily into a 1:1
// record mapping.
func Link(oldDS, newDS *census.Dataset, cfg Config) []linkage.RecordLink {
	gap := newDS.Year - oldDS.Year
	ageOK := func(o, n *census.Record) bool {
		if o.Age == census.AgeMissing || n.Age == census.AgeMissing {
			return true
		}
		dev := (n.Age - o.Age) - gap
		if dev < 0 {
			dev = -dev
		}
		return dev <= cfg.AgeTolerance
	}

	var cands []linkage.RecordLink
	block.Candidates(oldDS.Records(), oldDS.Year, newDS.Records(), newDS.Year,
		cfg.Strategies, func(o, n *census.Record) {
			if !ageOK(o, n) {
				return
			}
			if s := Score(cfg, o, n, float64(gap)); s >= cfg.Threshold {
				cands = append(cands, linkage.RecordLink{Old: o.ID, New: n.ID, Sim: s})
			}
		})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Sim != cands[j].Sim {
			return cands[i].Sim > cands[j].Sim
		}
		if cands[i].Old != cands[j].Old {
			return cands[i].Old < cands[j].Old
		}
		return cands[i].New < cands[j].New
	})
	usedOld := make(map[string]bool)
	usedNew := make(map[string]bool)
	var out []linkage.RecordLink
	for _, c := range cands {
		if usedOld[c.Old] || usedNew[c.New] {
			continue
		}
		usedOld[c.Old] = true
		usedNew[c.New] = true
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Old != out[j].Old {
			return out[i].Old < out[j].Old
		}
		return out[i].New < out[j].New
	})
	return out
}
