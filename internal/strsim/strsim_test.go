package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestExact(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"m", "m", 1}, {"m", "f", 0}, {"M", " m ", 1},
		{"", "", 0}, {"a", "", 0}, {"", "a", 0},
	}
	for _, c := range cases {
		if got := Exact(c.a, c.b); got != c.want {
			t.Errorf("Exact(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQGramKnownValues(t *testing.T) {
	sim := QGram(2)
	if got := sim("peter", "peter"); got != 1 {
		t.Errorf("identical strings: %v", got)
	}
	if got := sim("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings: %v", got)
	}
	// "smith" vs "smyth": padded bigrams of smith: _s sm mi it th h_;
	// smyth: _s sm my yt th h_; common = _s, sm, th, h_ = 4; 2*4/12 = 2/3.
	if got := sim("smith", "smyth"); !almostEqual(got, 2.0/3.0) {
		t.Errorf("smith/smyth = %v, want 2/3", got)
	}
}

func TestQGramEmptyAndCase(t *testing.T) {
	sim := QGram(2)
	if sim("", "abc") != 0 || sim("abc", "") != 0 {
		t.Error("empty input should score 0")
	}
	if sim("Ashworth", "ashworth") != 1 {
		t.Error("comparison should be case-insensitive")
	}
}

func TestQGramDefaultsQ(t *testing.T) {
	sim := QGram(0) // invalid -> defaults to 2
	if got, want := sim("smith", "smyth"), 2.0/3.0; !almostEqual(got, want) {
		t.Errorf("QGram(0) should behave as QGram(2): got %v", got)
	}
}

func TestQGramUnigrams(t *testing.T) {
	sim := QGram(1)
	// "ab" vs "ba": unigrams {a,b} both; common 2; 2*2/4 = 1.
	if got := sim("ab", "ba"); got != 1 {
		t.Errorf("QGram(1)(ab, ba) = %v, want 1", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2},
		{"ashworth", "ashworth", 0}, {"smith", "smyth", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSim(t *testing.T) {
	if got := EditSim("smith", "smyth"); !almostEqual(got, 0.8) {
		t.Errorf("EditSim(smith, smyth) = %v, want 0.8", got)
	}
	if EditSim("", "abc") != 0 {
		t.Error("EditSim with empty input should be 0")
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic values from the literature.
	if got := Jaro("martha", "marhta"); !almostEqual(got, 0.944444444444444) {
		t.Errorf("Jaro(martha, marhta) = %v", got)
	}
	if got := Jaro("dixon", "dicksonx"); !almostEqual(got, 0.766666666666667) {
		t.Errorf("Jaro(dixon, dicksonx) = %v", got)
	}
	if Jaro("abc", "abc") != 1 || Jaro("", "abc") != 0 || Jaro("abc", "xyz") != 0 {
		t.Error("Jaro edge cases wrong")
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); !almostEqual(got, 0.961111111111111) {
		t.Errorf("JaroWinkler(martha, marhta) = %v", got)
	}
	if got := JaroWinkler("dwayne", "duane"); !almostEqual(got, 0.84) {
		t.Errorf("JaroWinkler(dwayne, duane) = %v", got)
	}
	if JaroWinkler("abc", "xyz") != 0 {
		t.Error("JaroWinkler of disjoint strings should be 0")
	}
}

func TestNumericSim(t *testing.T) {
	sim := NumericSim(4)
	cases := []struct {
		a, b int
		want float64
	}{
		{10, 10, 1}, {10, 12, 0.5}, {12, 10, 0.5}, {10, 14, 0}, {10, 20, 0},
	}
	for _, c := range cases {
		if got := sim(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("NumericSim(4)(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if NumericSim(0)(1, 1) != 1 {
		t.Error("NumericSim with invalid maxDiff should still work")
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"}, {"Rupert", "R163"}, {"Ashcraft", "A261"},
		{"Ashcroft", "A261"}, {"Tymczak", "T522"}, {"Pfister", "P236"},
		{"Honeyman", "H555"}, {"Smith", "S530"}, {"Smyth", "S530"},
		{"Ashworth", "A263"}, {"", ""}, {"123", ""}, {"a", "A000"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property tests.

func TestSimilarityProperties(t *testing.T) {
	funcs := map[string]Func{
		"qgram2":      QGram(2),
		"qgram3":      QGram(3),
		"jaro":        Jaro,
		"jarowinkler": JaroWinkler,
		"editsim":     EditSim,
		"exact":       Exact,
	}
	for name, f := range funcs {
		f := f
		// Range [0,1] and symmetry.
		prop := func(a, b string) bool {
			s1, s2 := f(a, b), f(b, a)
			return s1 >= 0 && s1 <= 1 && almostEqual(s1, s2)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s range/symmetry: %v", name, err)
		}
		// Identity: non-empty string compared to itself scores 1.
		ident := func(a string) bool {
			if len(a) == 0 {
				return true
			}
			return almostEqual(f(a+"x", a+"x"), 1)
		}
		if err := quick.Check(ident, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s identity: %v", name, err)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	// Triangle inequality and symmetry.
	prop := func(a, b, c string) bool {
		ab, ba := Levenshtein(a, b), Levenshtein(b, a)
		if ab != ba {
			return false
		}
		return Levenshtein(a, c) <= ab+Levenshtein(b, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("levenshtein properties: %v", err)
	}
}

func TestSoundexProperties(t *testing.T) {
	prop := func(s string) bool {
		code := Soundex(s)
		if code == "" {
			return true
		}
		if len(code) != 4 {
			return false
		}
		if code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for _, c := range code[1:] {
			if c < '0' || c > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("soundex shape: %v", err)
	}
}

func BenchmarkQGram(b *testing.B) {
	sim := QGram(2)
	for i := 0; i < b.N; i++ {
		sim("elizabeth", "elisabeth")
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("elizabeth", "elisabeth")
	}
}

func BenchmarkSoundex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Soundex("ashworth")
	}
}
