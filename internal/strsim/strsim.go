// Package strsim provides the approximate string comparison functions used
// for census record matching: q-gram (Dice) similarity, Jaro and
// Jaro-Winkler, normalised Levenshtein similarity, exact matching, numeric
// distance similarity and the Soundex phonetic encoding.
//
// All similarity functions return values in [0, 1] where 1 means identical.
// Comparisons are case-insensitive; callers should not need to normalise.
package strsim

import (
	"strings"
	"unicode"
)

// Func is a string similarity function returning a value in [0, 1].
type Func func(a, b string) float64

// normalize lower-cases and trims a value for comparison.
func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Exact returns 1 if the normalised strings are equal and both non-empty,
// otherwise 0.
func Exact(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	return 0
}

// QGram returns the Dice coefficient over padded q-grams of length q.
// Padding with q-1 sentinel runes gives extra weight to matching prefixes
// and suffixes, the standard setup in record linkage (Christen 2012).
func QGram(q int) Func {
	if q < 1 {
		q = 2
	}
	return func(a, b string) float64 {
		na, nb := normalize(a), normalize(b)
		if na == "" || nb == "" {
			return 0
		}
		if na == nb {
			return 1
		}
		ga := qgrams(na, q)
		gb := qgrams(nb, q)
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		common := 0
		counts := make(map[string]int, len(ga))
		for _, g := range ga {
			counts[g]++
		}
		for _, g := range gb {
			if counts[g] > 0 {
				counts[g]--
				common++
			}
		}
		return 2 * float64(common) / float64(len(ga)+len(gb))
	}
}

// Bigram is QGram(2), the default matcher for name attributes.
var Bigram = QGram(2)

// qgrams returns the padded q-grams of s.
func qgrams(s string, q int) []string {
	if q == 1 {
		out := make([]string, 0, len(s))
		for _, r := range s {
			out = append(out, string(r))
		}
		return out
	}
	pad := strings.Repeat("\x00", q-1)
	padded := []rune(pad + s + pad)
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// Levenshtein returns the edit distance between a and b (unicode-aware).
func Levenshtein(a, b string) int {
	return levenshteinRunes([]rune(a), []rune(b))
}

// levenshteinRunes is the edit-distance core shared by the string function
// and the profile comparator; both must go through it so that precompiled
// profiles score bit-for-bit identically to the string path.
func levenshteinRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSim is the normalised Levenshtein similarity:
// 1 - dist/max(len(a), len(b)).
func EditSim(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	return editSimRunes([]rune(na), []rune(nb))
}

// editSimRunes is the normalised-Levenshtein core over pre-normalised runes.
func editSimRunes(ra, rb []rune) float64 {
	m := len(ra)
	if len(rb) > m {
		m = len(rb)
	}
	if m == 0 {
		return 0
	}
	return 1 - float64(levenshteinRunes(ra, rb))/float64(m)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	return jaroRunes([]rune(na), []rune(nb))
}

// jaroRunes is the Jaro core over pre-normalised, non-empty, non-equal rune
// slices, shared by the string function and the profile comparator.
func jaroRunes(ra, rb []rune) float64 {
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 over at most 4 common prefix characters.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	if j == 0 {
		return 0
	}
	na, nb := normalize(a), normalize(b)
	return winklerBoost(j, []rune(na), []rune(nb))
}

// winklerBoost applies the Winkler common-prefix boost to a Jaro similarity.
func winklerBoost(j float64, ra, rb []rune) float64 {
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NumericSim returns a similarity for two integers that decays linearly
// with their absolute difference: 1 - |a-b|/maxDiff, floored at 0.
func NumericSim(maxDiff int) func(a, b int) float64 {
	if maxDiff < 1 {
		maxDiff = 1
	}
	return func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		if d >= maxDiff {
			return 0
		}
		return 1 - float64(d)/float64(maxDiff)
	}
}

// Soundex returns the 4-character American Soundex code of s, or "" for an
// input without any letter. Used as a phonetic blocking key.
func Soundex(s string) string {
	n := normalize(s)
	var first rune
	var code strings.Builder
	var lastDigit byte
	started := false
	for _, r := range n {
		if !unicode.IsLetter(r) || r > unicode.MaxASCII {
			continue
		}
		d := soundexDigit(byte(r))
		if !started {
			first = unicode.ToUpper(r)
			started = true
			lastDigit = d
			continue
		}
		if d == 0 {
			// Vowels (and y) reset the run so repeated consonants separated
			// by a vowel encode twice; h and w do not reset.
			if r != 'h' && r != 'w' {
				lastDigit = 0
			}
			continue
		}
		if d != lastDigit {
			code.WriteByte('0' + d)
			lastDigit = d
			if code.Len() == 3 {
				break
			}
		}
	}
	if !started {
		return ""
	}
	out := string(first) + code.String()
	for len(out) < 4 {
		out += "0"
	}
	return out
}

// soundexDigit maps a lower-case ASCII letter to its Soundex digit
// (0 for vowels and the ignored letters h, w, y).
func soundexDigit(c byte) byte {
	switch c {
	case 'b', 'f', 'p', 'v':
		return 1
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return 2
	case 'd', 't':
		return 3
	case 'l':
		return 4
	case 'm', 'n':
		return 5
	case 'r':
		return 6
	default:
		return 0
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
