// Package strsim provides the approximate string comparison functions used
// for census record matching: q-gram (Dice) similarity, Jaro and
// Jaro-Winkler, normalised Levenshtein similarity, exact matching, numeric
// distance similarity and the Soundex phonetic encoding.
//
// All similarity functions return values in [0, 1] where 1 means identical.
// Comparisons are case-insensitive; callers should not need to normalise.
package strsim

import (
	"strings"
	"unicode"
)

// Func is a string similarity function returning a value in [0, 1].
type Func func(a, b string) float64

// normalize lower-cases, trims and diacritic-folds a value for comparison.
// Folding maps common Latin diacritics to their ASCII base letters (see
// foldLatin), so accented spellings — "Þórður", "Müller" — compare and block
// the same way as their transliterations instead of silently falling out of
// byte-oriented encoders like Soundex.
func normalize(s string) string {
	return foldLatin(strings.ToLower(strings.TrimSpace(s)))
}

// Normalize is the exported form of the normalization every comparator in
// this package applies (lower-case, trim, Latin-diacritic fold). Blocking
// key functions use it so candidate generation and comparison agree on what
// a value looks like.
func Normalize(s string) string { return normalize(s) }

// latinFold maps lower-case accented Latin runes to their ASCII folding.
// The table covers Latin-1 Supplement and the Latin Extended-A letters that
// occur in European census name data (Icelandic, Nordic, German, French,
// Iberian, Slavic and Hungarian orthographies). Multi-rune expansions follow
// the conventional transliterations: þ→th, ð→d, ß→ss, æ→ae, œ→oe, ø→o.
var latinFold = map[rune]string{
	'à': "a", 'á': "a", 'â': "a", 'ã': "a", 'ä': "a", 'å': "a", 'ā': "a", 'ă': "a", 'ą': "a",
	'ç': "c", 'ć': "c", 'ĉ': "c", 'ċ': "c", 'č': "c",
	'ď': "d", 'đ': "d", 'ð': "d",
	'è': "e", 'é': "e", 'ê': "e", 'ë': "e", 'ē': "e", 'ĕ': "e", 'ė': "e", 'ę': "e", 'ě': "e",
	'ĝ': "g", 'ğ': "g", 'ġ': "g", 'ģ': "g",
	'ĥ': "h", 'ħ': "h",
	'ì': "i", 'í': "i", 'î': "i", 'ï': "i", 'ĩ': "i", 'ī': "i", 'ĭ': "i", 'į': "i", 'ı': "i",
	'ĵ': "j",
	'ķ': "k",
	'ĺ': "l", 'ļ': "l", 'ľ': "l", 'ŀ': "l", 'ł': "l",
	'ñ': "n", 'ń': "n", 'ņ': "n", 'ň': "n",
	'ò': "o", 'ó': "o", 'ô': "o", 'õ': "o", 'ö': "o", 'ø': "o", 'ō': "o", 'ŏ': "o", 'ő': "o",
	'ŕ': "r", 'ŗ': "r", 'ř': "r",
	'ś': "s", 'ŝ': "s", 'ş': "s", 'š': "s",
	'ţ': "t", 'ť': "t", 'ŧ': "t",
	'ù': "u", 'ú': "u", 'û': "u", 'ü': "u", 'ũ': "u", 'ū': "u", 'ŭ': "u", 'ů': "u", 'ű': "u", 'ų': "u",
	'ŵ': "w",
	'ý': "y", 'ÿ': "y", 'ŷ': "y",
	'ź': "z", 'ż': "z", 'ž': "z",
	'æ': "ae", 'œ': "oe",
	'þ': "th", 'ß': "ss",
}

// foldLatin replaces accented Latin letters in an already lower-cased string
// with their ASCII foldings. Pure-ASCII input — the overwhelmingly common
// case on the comparison hot path — is detected with a byte scan and
// returned unchanged without allocating.
func foldLatin(s string) string {
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if f, ok := latinFold[r]; ok {
			b.WriteString(f)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Exact returns 1 if the normalised strings are equal and both non-empty,
// otherwise 0.
func Exact(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	return 0
}

// QGram returns the Dice coefficient over padded q-grams of length q.
// Padding with q-1 sentinel runes gives extra weight to matching prefixes
// and suffixes, the standard setup in record linkage (Christen 2012).
func QGram(q int) Func {
	if q < 1 {
		q = 2
	}
	return func(a, b string) float64 {
		na, nb := normalize(a), normalize(b)
		if na == "" || nb == "" {
			return 0
		}
		if na == nb {
			return 1
		}
		ga := qgrams(na, q)
		gb := qgrams(nb, q)
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		common := 0
		counts := make(map[string]int, len(ga))
		for _, g := range ga {
			counts[g]++
		}
		for _, g := range gb {
			if counts[g] > 0 {
				counts[g]--
				common++
			}
		}
		return 2 * float64(common) / float64(len(ga)+len(gb))
	}
}

// Bigram is QGram(2), the default matcher for name attributes.
var Bigram = QGram(2)

// qgrams returns the padded q-grams of s.
func qgrams(s string, q int) []string {
	if q == 1 {
		out := make([]string, 0, len(s))
		for _, r := range s {
			out = append(out, string(r))
		}
		return out
	}
	pad := strings.Repeat("\x00", q-1)
	padded := []rune(pad + s + pad)
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// Levenshtein returns the edit distance between a and b (unicode-aware).
func Levenshtein(a, b string) int {
	return levenshteinRunes([]rune(a), []rune(b))
}

// levenshteinRunes is the edit-distance core shared by the string function
// and the profile comparator; both must go through it so that precompiled
// profiles score bit-for-bit identically to the string path. It dispatches
// to the bit-parallel Myers kernels (myers.go), which are fuzz-proven equal
// to the two-row DP oracle levenshteinRunesDP on arbitrary unicode input.
func levenshteinRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	return myersRunes(ra, rb)
}

// EditSim is the normalised Levenshtein similarity:
// 1 - dist/max(len(a), len(b)).
func EditSim(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	return editSimRunes([]rune(na), []rune(nb))
}

// editSimRunes is the normalised-Levenshtein core over pre-normalised runes.
func editSimRunes(ra, rb []rune) float64 {
	m := len(ra)
	if len(rb) > m {
		m = len(rb)
	}
	if m == 0 {
		return 0
	}
	return 1 - float64(levenshteinRunes(ra, rb))/float64(m)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	return jaroRunes([]rune(na), []rune(nb))
}

// jaroRunes is the Jaro core over pre-normalised, non-empty, non-equal rune
// slices, shared by the string function and the profile comparator. Match
// flags live in uint64 bitmasks when both inputs fit in 64 runes (the
// overwhelmingly common case for name attributes), so the hot path performs
// no allocation; longer inputs fall back to bool slices with identical
// results.
func jaroRunes(ra, rb []rune) float64 {
	if len(ra) <= 64 && len(rb) <= 64 {
		return jaroRunesSmall(ra, rb)
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// jaroRunesSmall is jaroRunes for inputs of at most 64 runes each: the match
// flags are two uint64 words on the stack instead of two heap-allocated bool
// slices. The scan order, match assignment and transposition count are
// identical to the general path bit for bit.
func jaroRunesSmall(ra, rb []rune) float64 {
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	var matchA, matchB uint64
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB&(1<<uint(j)) == 0 && ra[i] == rb[j] {
				matchA |= 1 << uint(i)
				matchB |= 1 << uint(j)
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if matchA&(1<<uint(i)) == 0 {
			continue
		}
		for matchB&(1<<uint(j)) == 0 {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 over at most 4 common prefix characters. Both strings are
// normalised and rune-expanded exactly once; the Jaro score and the Winkler
// prefix boost share that work (the naive composition Jaro(a,b) +
// re-normalise used to do all of it twice per call).
func JaroWinkler(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	ra, rb := []rune(na), []rune(nb)
	j := jaroRunes(ra, rb)
	if j == 0 {
		return 0
	}
	return winklerBoost(j, ra, rb)
}

// winklerBoost applies the Winkler common-prefix boost to a Jaro similarity.
func winklerBoost(j float64, ra, rb []rune) float64 {
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NumericSim returns a similarity for two integers that decays linearly
// with their absolute difference: 1 - |a-b|/maxDiff, floored at 0.
func NumericSim(maxDiff int) func(a, b int) float64 {
	if maxDiff < 1 {
		maxDiff = 1
	}
	return func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		if d >= maxDiff {
			return 0
		}
		return 1 - float64(d)/float64(maxDiff)
	}
}

// Soundex returns the 4-character American Soundex code of s, or "" for an
// input without any letter. Used as a phonetic blocking key.
//
// normalize folds common Latin diacritics to ASCII first, so "Þórður" and
// "Müller" encode as their transliterations ("Thordur" → T636, "Muller" →
// M460) instead of losing letters. A letter that survives folding as
// non-ASCII (Greek, Cyrillic, CJK, …) no longer vanishes either: as the
// first letter it maps deterministically into 'A'..'Z' (rune value mod 26,
// preserving the 4-character ASCII code shape), and in later positions it
// encodes as digit 0, behaving like a vowel — so the record keeps a usable
// blocking key rather than falling out of candidate generation.
func Soundex(s string) string {
	n := normalize(s)
	var first rune
	var code strings.Builder
	var lastDigit byte
	started := false
	for _, r := range n {
		if !unicode.IsLetter(r) {
			continue
		}
		var d byte
		if r <= unicode.MaxASCII {
			d = soundexDigit(byte(r))
		}
		if !started {
			if r <= unicode.MaxASCII {
				first = unicode.ToUpper(r)
			} else {
				first = 'A' + r%26
			}
			started = true
			lastDigit = d
			continue
		}
		if d == 0 {
			// Vowels (and y) reset the run so repeated consonants separated
			// by a vowel encode twice; h and w do not reset. Non-ASCII
			// letters reset like vowels.
			if r != 'h' && r != 'w' {
				lastDigit = 0
			}
			continue
		}
		if d != lastDigit {
			code.WriteByte('0' + d)
			lastDigit = d
			if code.Len() == 3 {
				break
			}
		}
	}
	if !started {
		return ""
	}
	out := string(first) + code.String()
	for len(out) < 4 {
		out += "0"
	}
	return out
}

// soundexDigit maps a lower-case ASCII letter to its Soundex digit
// (0 for vowels and the ignored letters h, w, y).
func soundexDigit(c byte) byte {
	switch c {
	case 'b', 'f', 'p', 'v':
		return 1
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return 2
	case 'd', 't':
		return 3
	case 'l':
		return 4
	case 'm', 'n':
		return 5
	case 'r':
		return 6
	default:
		return 0
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
