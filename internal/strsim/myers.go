package strsim

// Bit-parallel edit distance (Myers 1999, in Hyyrö's formulation): the
// dynamic-programming matrix is encoded as vertical delta bit-vectors and
// one text character advances a whole 64-row column block in a handful of
// word operations. For the short name strings of census data the entire
// pattern fits in one word and the distance costs O(|text|) word ops with
// zero heap allocation; longer inputs fall back to the multi-block variant.
//
// Both paths compute the exact unit-cost Levenshtein distance, so
// levenshteinRunes can dispatch here while staying bit-for-bit identical to
// the classic two-row DP (kept below as levenshteinRunesDP, the differential
// oracle for the fuzz tests). The compiled engine's similarity memo depends
// on that identity.

// myersRunes returns the Levenshtein distance between two rune slices using
// the bit-parallel recurrence. The shorter slice becomes the pattern so the
// block count is minimal. Both inputs must be non-empty (callers dispatch
// the empty cases directly).
func myersRunes(ra, rb []rune) int {
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(ra) <= 64 {
		return myersSmall(ra, rb)
	}
	return myersBlocked(ra, rb)
}

// myersSmall is the single-word kernel for patterns of at most 64 runes.
// The pattern's character-position bitmasks live in a stack array for ASCII
// runes (the common case after normalization folds diacritics) with a map
// spilled only when the pattern actually contains non-ASCII runes.
func myersSmall(pattern, text []rune) int {
	m := len(pattern)
	var peq [128]uint64
	var peqOther map[rune]uint64
	for i, r := range pattern {
		if r < 128 {
			peq[r] |= 1 << uint(i)
		} else {
			if peqOther == nil {
				peqOther = make(map[rune]uint64, 4)
			}
			peqOther[r] |= 1 << uint(i)
		}
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := m
	last := uint64(1) << uint(m-1)
	for _, c := range text {
		var eq uint64
		if c < 128 {
			eq = peq[c]
		} else if peqOther != nil {
			eq = peqOther[c]
		}
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		}
		if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// myersBlocked is the multi-word kernel for patterns longer than 64 runes:
// the pattern rows are split into ceil(m/64) vertical blocks and the
// horizontal delta at each block boundary is carried into the next block
// (Hyyrö's blocked algorithm). The score is tracked at the pattern's true
// last row — bit (m-1) mod 64 of the top block; the garbage bits above it
// never feed back into lower rows because information only moves upward
// through shifts and addition carries.
func myersBlocked(pattern, text []rune) int {
	m := len(pattern)
	blocks := (m + 63) / 64
	peq := make(map[rune][]uint64, len(pattern))
	for i, r := range pattern {
		row, ok := peq[r]
		if !ok {
			row = make([]uint64, blocks)
			peq[r] = row
		}
		row[i/64] |= 1 << uint(i%64)
	}
	pv := make([]uint64, blocks)
	mv := make([]uint64, blocks)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	score := m
	lastMask := uint64(1) << uint((m-1)%64)
	zero := make([]uint64, blocks) // shared Eq row for text runes absent from the pattern
	for _, c := range text {
		eqRow := peq[c]
		if eqRow == nil {
			eqRow = zero
		}
		hin := 1 // D[0][j] - D[0][j-1] = +1 along the top boundary
		for b := 0; b < blocks; b++ {
			eq := eqRow[b]
			if hin < 0 {
				eq |= 1
			}
			xv := eq | mv[b]
			xh := (((eq & pv[b]) + pv[b]) ^ pv[b]) | eq
			ph := mv[b] | ^(xh | pv[b])
			mh := pv[b] & xh
			mask := uint64(1) << 63
			if b == blocks-1 {
				mask = lastMask
			}
			hout := 0
			if ph&mask != 0 {
				hout = 1
			} else if mh&mask != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			switch {
			case hin < 0:
				mh |= 1
			case hin > 0:
				ph |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
		score += hin
	}
	return score
}

// levenshteinRunesDP is the classic two-row dynamic-programming edit
// distance, kept as the differential oracle the Myers kernels are fuzz-
// tested against (see FuzzMyersDifferential).
func levenshteinRunesDP(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
