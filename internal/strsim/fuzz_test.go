package strsim

import "testing"

// FuzzEncoders: phonetic encoders and similarity functions must never panic
// and must respect their output contracts for arbitrary input.
func FuzzEncoders(f *testing.F) {
	f.Add("smith", "smyth")
	f.Add("", "x")
	f.Add("日本語", "nihongo")
	f.Add("a b c", "   ")
	f.Add("MacDonald", "McDonald")
	f.Fuzz(func(t *testing.T, a, b string) {
		if code := Soundex(a); code != "" && len(code) != 4 {
			t.Fatalf("Soundex(%q) = %q", a, code)
		}
		if code := NYSIIS(a); len(code) > 6 {
			t.Fatalf("NYSIIS(%q) = %q", a, code)
		}
		for _, fn := range []Func{Bigram, QGram(3), Jaro, JaroWinkler, EditSim, DamerauSim, TokenDice} {
			s := fn(a, b)
			if s < 0 || s > 1 {
				t.Fatalf("similarity out of range for (%q, %q): %v", a, b, s)
			}
		}
		if d := Levenshtein(a, b); d < 0 {
			t.Fatalf("negative distance for (%q, %q)", a, b)
		}
		// The bit-parallel core must agree with the DP oracle everywhere.
		if got, want := levenshteinRunes([]rune(a), []rune(b)), levenshteinRunesDP([]rune(a), []rune(b)); got != want {
			t.Fatalf("myers distance %d != dp %d for (%q, %q)", got, want, a, b)
		}
		if d := DamerauLevenshtein(a, b); d < 0 {
			t.Fatalf("negative damerau distance for (%q, %q)", a, b)
		}
		// Precompiled profiles must reproduce the string path bit-for-bit:
		// the compiled engine relies on this for differential identity.
		for _, eq := range profiledEquivalents() {
			pa := eq.p.Build(a)
			pb := eq.p.Build(b)
			if got, want := eq.p.Compare(&pa, &pb), eq.f(a, b); got != want {
				t.Fatalf("%s(%q, %q): profiled=%v string=%v", eq.name, a, b, got, want)
			}
		}
	})
}
