package strsim

import "testing"

// TestNormalizeFoldsDiacritics pins the shared normalization on ICE-ID-style
// accented names: every comparator and blocking key function sees the folded
// ASCII form.
func TestNormalizeFoldsDiacritics(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Þórður", "thordur"},
		{"Guðrún", "gudrun"},
		{"Müller", "muller"},
		{"Jürgen", "jurgen"},
		{"Ragnheiður", "ragnheidur"},
		{"Sæmundur", "saemundur"},
		{"Sigríður", "sigridur"},
		{"Jóhannsson", "johannsson"},
		{"Åström", "astrom"},
		{"Østergård", "ostergard"},
		{"Strauß", "strauss"},
		{"François", "francois"},
		{"Núñez", "nunez"},
		{"Łukasz", "lukasz"},
		{"Dvořák", "dvorak"},
		{"  Smith  ", "smith"},
		{"plain", "plain"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestSoundexAccentedNames pins the codes of names the byte-oriented encoder
// used to truncate or empty out: they must match their transliterations so
// accented records share blocking keys with their plain-ASCII spellings.
func TestSoundexAccentedNames(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Þórður", "T636"},
		{"Thordur", "T636"},
		{"Müller", "M460"},
		{"Muller", "M460"},
		{"Guðrún", "G365"},
		{"Gudrun", "G365"},
		{"Jürgen", "J625"},
		{"Sæmundur", "S553"},
		{"Strauß", "S362"},
		{"Åkesson", "A225"},
		{"Akesson", "A225"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// A fully non-Latin name must still produce a deterministic, non-empty,
	// well-formed code instead of falling out of blocking.
	got := Soundex("Żhivago")
	if len(got) != 4 {
		t.Errorf("Soundex(Żhivago) = %q, want a 4-character code", got)
	}
	if a, b := Soundex("Иванов"), Soundex("Иванов"); a == "" || a != b {
		t.Errorf("non-Latin Soundex not deterministic or empty: %q vs %q", a, b)
	}
}

// TestFoldLatinASCIIFastPath asserts the pure-ASCII fast path returns the
// input without copying.
func TestFoldLatinASCIIFastPath(t *testing.T) {
	in := "already plain ascii"
	if got := foldLatin(in); got != in {
		t.Fatalf("foldLatin(%q) = %q", in, got)
	}
	if n := testing.AllocsPerRun(100, func() { foldLatin(in) }); n != 0 {
		t.Errorf("foldLatin allocates %.1f times on ASCII input, want 0", n)
	}
}

// TestJaroWinklerAllocs asserts the restructured JaroWinkler normalizes and
// rune-expands each input exactly once per call. The budget is 4
// allocations for mixed-case ASCII input — two ToLower copies and two rune
// expansions; jaroRunes itself runs allocation-free on ≤64-rune inputs. The
// old shape (Jaro + a second normalize pass + fresh rune slices for the
// prefix boost, plus two heap-allocated match-flag slices) needed 10.
func TestJaroWinklerAllocs(t *testing.T) {
	a, b := "Elizabeth", "Elisabeth"
	if got := JaroWinkler(a, b); got <= 0.9 || got > 1 {
		t.Fatalf("JaroWinkler(%q, %q) = %v, want ~0.95", a, b, got)
	}
	if n := testing.AllocsPerRun(200, func() { JaroWinkler(a, b) }); n > 4 {
		t.Errorf("JaroWinkler allocates %.1f times per call, want <= 4", n)
	}
	// Pre-normalized input should not pay the ToLower copies either.
	if n := testing.AllocsPerRun(200, func() { JaroWinkler("elizabeth", "elisabeth") }); n > 2 {
		t.Errorf("JaroWinkler on normalized input allocates %.1f times per call, want <= 2", n)
	}
}

// TestJaroAllocsSmall asserts the bitmask match-flag path keeps Jaro itself
// allocation-free beyond normalization and rune expansion.
func TestJaroAllocsSmall(t *testing.T) {
	ra, rb := []rune("margaret"), []rune("margret")
	if n := testing.AllocsPerRun(200, func() { jaroRunes(ra, rb) }); n != 0 {
		t.Errorf("jaroRunes allocates %.1f times on short input, want 0", n)
	}
}

// TestJaroBitmaskMatchesSlices differentially checks the ≤64-rune bitmask
// kernel against the general bool-slice kernel on boundary lengths.
func TestJaroBitmaskMatchesSlices(t *testing.T) {
	mk := func(n int, shift bool) []rune {
		out := make([]rune, n)
		for i := range out {
			c := 'a' + rune(i%7)
			if shift && i%5 == 0 {
				c = 'a' + rune((i+3)%7)
			}
			out[i] = c
		}
		return out
	}
	for _, n := range []int{1, 2, 8, 63, 64} {
		ra, rb := mk(n, false), mk(n, true)
		got := jaroRunesSmall(ra, rb)
		// Force the general path by widening one side beyond 64 runes, then
		// compare against the same-length prefix computation: instead, call
		// the slice path directly via a copy of the general implementation
		// boundary — here we just recompute through jaroRunes with a >64
		// sibling to ensure both kernels coexist, and check the small kernel
		// against a known-good recomputation.
		want := jaroRunesBoolOracle(ra, rb)
		if got != want {
			t.Errorf("n=%d: bitmask=%v slices=%v", n, got, want)
		}
	}
	// And one >64 case through the public entry to cover the slice path.
	ra, rb := mk(80, false), mk(80, true)
	if got, want := jaroRunes(ra, rb), jaroRunesBoolOracle(ra, rb); got != want {
		t.Errorf("n=80: jaroRunes=%v oracle=%v", got, want)
	}
}

// jaroRunesBoolOracle re-implements the bool-slice Jaro kernel for the
// differential test above.
func jaroRunesBoolOracle(ra, rb []rune) float64 {
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	tr := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-tr)/m) / 3
}
