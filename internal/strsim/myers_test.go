package strsim

import (
	"math/rand"
	"strings"
	"testing"
)

// TestMyersKnownDistances pins the bit-parallel kernels to hand-checked
// distances, including the block-boundary lengths 63..66 and a >64 pattern
// with unicode runes.
func TestMyersKnownDistances(t *testing.T) {
	long64 := strings.Repeat("a", 64)
	long65 := strings.Repeat("a", 65)
	long130 := strings.Repeat("ab", 65)
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"smith", "smyth", 1},
		{"thordur", "thordur", 0},
		{long64, long64, 0},
		{long64, long64 + "b", 1},
		{long65, long65, 0},
		{long65, strings.Repeat("a", 64) + "b", 1},
		{long130, long130, 0},
		{long130, strings.Repeat("ba", 65), 2},
		{long130 + "ж", long130, 1},
		{strings.Repeat("ж", 70), strings.Repeat("ж", 69) + "x", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got, want := Levenshtein(c.a, c.b), Levenshtein(c.b, c.a); got != want {
			t.Errorf("Levenshtein not symmetric for (%q, %q): %d vs %d", c.a, c.b, got, want)
		}
	}
}

// TestMyersDifferentialRandom cross-checks the Myers kernels against the DP
// oracle over random inputs spanning both kernels (single-word and blocked),
// mixed ASCII/unicode alphabets and skewed length pairs.
func TestMyersDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabets := [][]rune{
		[]rune("ab"),
		[]rune("abcdefgh"),
		[]rune("aáàâbßcðđeéfþжю語"),
	}
	randRunes := func(n int, alpha []rune) []rune {
		out := make([]rune, n)
		for i := range out {
			out[i] = alpha[rng.Intn(len(alpha))]
		}
		return out
	}
	for trial := 0; trial < 2000; trial++ {
		alpha := alphabets[rng.Intn(len(alphabets))]
		la := rng.Intn(150)
		lb := rng.Intn(150)
		ra := randRunes(la, alpha)
		rb := randRunes(lb, alpha)
		want := levenshteinRunesDP(ra, rb)
		got := levenshteinRunes(ra, rb)
		if got != want {
			t.Fatalf("trial %d: myers=%d dp=%d for %q vs %q", trial, got, want, string(ra), string(rb))
		}
	}
}

// FuzzMyersDifferential asserts the bit-parallel distance is bit-for-bit
// identical to the DP oracle for arbitrary unicode inputs — the property the
// compiled engine's similarity memo depends on. The seed corpus crosses the
// 64-rune block boundary in both operands.
func FuzzMyersDifferential(f *testing.F) {
	f.Add("smith", "smyth")
	f.Add("", "x")
	f.Add("Þórður", "Thordur")
	f.Add(strings.Repeat("a", 64), strings.Repeat("a", 63)+"b")
	f.Add(strings.Repeat("ab", 40), strings.Repeat("ba", 40))
	f.Add(strings.Repeat("ж", 70), strings.Repeat("ж", 69)+"x")
	f.Add(strings.Repeat("xyz", 50), strings.Repeat("zyx", 44))
	f.Fuzz(func(t *testing.T, a, b string) {
		ra, rb := []rune(a), []rune(b)
		want := levenshteinRunesDP(ra, rb)
		got := levenshteinRunes(ra, rb)
		if got != want {
			t.Fatalf("myers=%d dp=%d for (%q, %q)", got, want, a, b)
		}
	})
}

// BenchmarkLevenshteinCore contrasts the bit-parallel path with the DP
// oracle on name-length strings.
func BenchmarkLevenshteinCore(b *testing.B) {
	ra, rb := []rune("margaret"), []rune("margret")
	b.Run("myers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			levenshteinRunes(ra, rb)
		}
	})
	b.Run("dp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			levenshteinRunesDP(ra, rb)
		}
	})
}
