package strsim

import (
	"strings"
	"unicode"
)

// DamerauLevenshtein returns the edit distance counting transpositions of
// adjacent characters as a single operation (restricted Damerau variant),
// the standard model for typing errors in name data.
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < m {
					m = t
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// DamerauSim is the normalised Damerau-Levenshtein similarity.
func DamerauSim(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	la, lb := len([]rune(na)), len([]rune(nb))
	m := max2(la, lb)
	if m == 0 {
		return 0
	}
	return 1 - float64(DamerauLevenshtein(na, nb))/float64(m)
}

// TokenDice splits both strings into whitespace tokens and returns the Dice
// coefficient over the token multisets. Useful for multi-word values such
// as addresses ("3 mill lane" vs "mill lane") and occupations.
func TokenDice(a, b string) float64 {
	ta := strings.Fields(normalize(a))
	tb := strings.Fields(normalize(b))
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ta))
	for _, t := range ta {
		counts[t]++
	}
	common := 0
	for _, t := range tb {
		if counts[t] > 0 {
			counts[t]--
			common++
		}
	}
	return 2 * float64(common) / float64(len(ta)+len(tb))
}

// MongeElkan returns the Monge-Elkan similarity: every token of a is
// matched to its most similar token of b under the inner function, and the
// maxima are averaged. The result is asymmetric; SymmetricMongeElkan
// averages both directions.
func MongeElkan(inner Func) Func {
	if inner == nil {
		inner = JaroWinkler
	}
	return func(a, b string) float64 {
		ta := strings.Fields(normalize(a))
		tb := strings.Fields(normalize(b))
		if len(ta) == 0 || len(tb) == 0 {
			return 0
		}
		sum := 0.0
		for _, x := range ta {
			best := 0.0
			for _, y := range tb {
				if s := inner(x, y); s > best {
					best = s
				}
			}
			sum += best
		}
		return sum / float64(len(ta))
	}
}

// SymmetricMongeElkan averages MongeElkan in both directions so the result
// is a symmetric similarity.
func SymmetricMongeElkan(inner Func) Func {
	me := MongeElkan(inner)
	return func(a, b string) float64 {
		return (me(a, b) + me(b, a)) / 2
	}
}

// NYSIIS returns the NYSIIS phonetic code of s (New York State
// Identification and Intelligence System), a census-domain standard that
// retains more distinctions than Soundex. Returns "" for input without
// letters. The code is truncated to 6 characters as in the original system.
func NYSIIS(s string) string {
	// Keep ASCII letters only, upper-cased.
	var b []byte
	for _, r := range strings.ToUpper(strings.TrimSpace(s)) {
		if r >= 'A' && r <= 'Z' {
			b = append(b, byte(r))
		} else if r > unicode.MaxASCII && unicode.IsLetter(r) {
			continue // non-ASCII letters are dropped
		}
	}
	if len(b) == 0 {
		return ""
	}
	w := string(b)

	// First-character transcoding.
	switch {
	case strings.HasPrefix(w, "MAC"):
		w = "MCC" + w[3:]
	case strings.HasPrefix(w, "KN"):
		w = "NN" + w[2:]
	case strings.HasPrefix(w, "K"):
		w = "C" + w[1:]
	case strings.HasPrefix(w, "PH"), strings.HasPrefix(w, "PF"):
		w = "FF" + w[2:]
	case strings.HasPrefix(w, "SCH"):
		w = "SSS" + w[3:]
	}
	// Last-character transcoding.
	switch {
	case strings.HasSuffix(w, "EE"), strings.HasSuffix(w, "IE"):
		w = w[:len(w)-2] + "Y"
	case strings.HasSuffix(w, "DT"), strings.HasSuffix(w, "RT"),
		strings.HasSuffix(w, "RD"), strings.HasSuffix(w, "NT"),
		strings.HasSuffix(w, "ND"):
		w = w[:len(w)-2] + "D"
	}

	isVowel := func(c byte) bool {
		return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U'
	}
	key := []byte{w[0]}
	prev := w[0]
	for i := 1; i < len(w); i++ {
		c := w[i]
		var repl string
		switch {
		case isVowel(c):
			if c == 'E' && i+1 < len(w) && w[i+1] == 'V' {
				repl = "AF"
			} else {
				repl = "A"
			}
		case c == 'Q':
			repl = "G"
		case c == 'Z':
			repl = "S"
		case c == 'M':
			repl = "N"
		case c == 'K':
			if i+1 < len(w) && w[i+1] == 'N' {
				repl = "N"
			} else {
				repl = "C"
			}
		case c == 'S' && strings.HasPrefix(w[i:], "SCH"):
			repl = "SSS"
		case c == 'P' && i+1 < len(w) && w[i+1] == 'H':
			repl = "FF"
		case c == 'H' && (!isVowel(prev) || (i+1 < len(w) && !isVowel(w[i+1])) || i+1 == len(w)):
			repl = string(prev)
		case c == 'W' && isVowel(prev):
			repl = string(prev)
		default:
			repl = string(c)
		}
		for k := 0; k < len(repl); k++ {
			rc := repl[k]
			if key[len(key)-1] != rc {
				key = append(key, rc)
			}
		}
		prev = c
	}
	// Suffix cleanup: trailing S, trailing AY -> Y, trailing A dropped.
	out := string(key)
	if len(out) > 1 && strings.HasSuffix(out, "S") {
		out = out[:len(out)-1]
	}
	if strings.HasSuffix(out, "AY") {
		out = out[:len(out)-2] + "Y"
	}
	if len(out) > 1 && strings.HasSuffix(out, "A") {
		out = out[:len(out)-1]
	}
	if len(out) > 6 {
		out = out[:6]
	}
	return out
}

// LCSSim is the repeated longest-common-substring similarity used in record
// linkage toolkits (Christen 2012): common substrings of at least minLen
// characters are repeatedly removed from both strings and their total
// length is related to the mean string length. Robust to token swaps
// ("john peter" vs "peter john").
func LCSSim(minLen int) Func {
	if minLen < 2 {
		minLen = 2
	}
	return func(a, b string) float64 {
		na, nb := normalize(a), normalize(b)
		if na == "" || nb == "" {
			return 0
		}
		origLen := float64(len([]rune(na))+len([]rune(nb))) / 2
		ra, rb := []rune(na), []rune(nb)
		total := 0
		for {
			s, ai, bi := longestCommonSubstring(ra, rb)
			if s < minLen {
				break
			}
			total += s
			ra = append(append([]rune{}, ra[:ai]...), ra[ai+s:]...)
			rb = append(append([]rune{}, rb[:bi]...), rb[bi+s:]...)
		}
		if origLen == 0 {
			return 0
		}
		sim := float64(total) / origLen
		if sim > 1 {
			sim = 1
		}
		return sim
	}
}

// longestCommonSubstring returns the length and start offsets of the
// longest common substring of a and b.
func longestCommonSubstring(a, b []rune) (length, ai, bi int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > length {
					length = cur[j]
					ai = i - length
					bi = j - length
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return length, ai, bi
}
