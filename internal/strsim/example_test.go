package strsim_test

import (
	"fmt"

	"censuslink/internal/strsim"
)

// ExampleQGram shows bigram (Dice) similarity on name variants.
func ExampleQGram() {
	sim := strsim.QGram(2)
	fmt.Printf("%.2f\n", sim("smith", "smith"))
	fmt.Printf("%.2f\n", sim("smith", "smyth"))
	fmt.Printf("%.2f\n", sim("smith", "ashworth"))
	// Output:
	// 1.00
	// 0.67
	// 0.27
}

// ExampleSoundex shows phonetic codes used as blocking keys.
func ExampleSoundex() {
	fmt.Println(strsim.Soundex("Ashworth"))
	fmt.Println(strsim.Soundex("Smith"), strsim.Soundex("Smyth"))
	// Output:
	// A263
	// S530 S530
}

// ExampleJaroWinkler shows the prefix-boosted Jaro similarity.
func ExampleJaroWinkler() {
	fmt.Printf("%.3f\n", strsim.JaroWinkler("martha", "marhta"))
	fmt.Printf("%.3f\n", strsim.JaroWinkler("elizabeth", "eliza"))
	// Output:
	// 0.961
	// 0.911
}

// ExampleTokenDice shows token-level matching for multi-word values.
func ExampleTokenDice() {
	fmt.Printf("%.2f\n", strsim.TokenDice("3 mill lane", "mill lane"))
	fmt.Printf("%.2f\n", strsim.TokenDice("cotton weaver", "weaver of cotton"))
	// Output:
	// 0.80
	// 0.80
}
