package strsim

import (
	"testing"
	"testing/quick"
)

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"abc", "acb", 1}, // adjacent transposition: 1 (Levenshtein: 2)
		{"ca", "abc", 3},  // restricted variant
		{"smith", "smiht", 1},
		{"kitten", "sitting", 3},
		{"jonh", "john", 1},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	prop := func(a, b string) bool {
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDamerauSim(t *testing.T) {
	// "jonh" vs "john": one transposition over 4 chars -> 0.75.
	if got := DamerauSim("jonh", "john"); got != 0.75 {
		t.Errorf("DamerauSim = %v, want 0.75", got)
	}
	if DamerauSim("", "x") != 0 {
		t.Error("empty input should be 0")
	}
	if DamerauSim("Ann", "ann") != 1 {
		t.Error("case-insensitive identity failed")
	}
}

func TestTokenDice(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"3 mill lane", "mill lane", 4.0 / 5.0},
		{"mill lane", "mill lane", 1},
		{"cotton weaver", "weaver", 2.0 / 3.0},
		{"", "x", 0},
		{"a b", "c d", 0},
		{"a a", "a", 2.0 / 3.0}, // multiset semantics
	}
	for _, c := range cases {
		if got := TokenDice(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("TokenDice(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMongeElkan(t *testing.T) {
	me := MongeElkan(Exact)
	// Each token of "john smith" matched exactly: ("john smith", "smith john") -> 1.
	if got := me("john smith", "smith john"); got != 1 {
		t.Errorf("MongeElkan word order = %v, want 1", got)
	}
	// One of two tokens matches -> 0.5.
	if got := me("john smith", "john taylor"); got != 0.5 {
		t.Errorf("MongeElkan half match = %v, want 0.5", got)
	}
	// Asymmetry: every token of the shorter string may match well while the
	// longer string has unmatched tokens.
	long, short := "john william smith", "john smith"
	if me(short, long) <= me(long, short)-1e-9 {
		t.Errorf("expected me(short,long) >= me(long,short): %v vs %v",
			me(short, long), me(long, short))
	}
	if me("", "x") != 0 || me("x", "") != 0 {
		t.Error("empty input should be 0")
	}
	// nil inner defaults to Jaro-Winkler.
	if MongeElkan(nil)("smith", "smith") != 1 {
		t.Error("default inner function broken")
	}
}

func TestSymmetricMongeElkan(t *testing.T) {
	sym := SymmetricMongeElkan(Exact)
	prop := func(a, b string) bool {
		return almostEqual(sym(a, b), sym(b, a))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNYSIIS(t *testing.T) {
	// Groups of names that must share a code, and pairs that must differ.
	same := [][2]string{
		{"smith", "smithe"},
		{"brown", "browne"},
		{"knight", "night"},
		{"phillips", "filips"},
		{"schofield", "shofield"},
	}
	for _, pair := range same {
		a, b := NYSIIS(pair[0]), NYSIIS(pair[1])
		if a == "" || a != b {
			t.Errorf("NYSIIS(%q)=%q != NYSIIS(%q)=%q", pair[0], a, pair[1], b)
		}
	}
	diff := [][2]string{
		{"smith", "taylor"},
		{"ashworth", "walker"},
	}
	for _, pair := range diff {
		if NYSIIS(pair[0]) == NYSIIS(pair[1]) {
			t.Errorf("NYSIIS(%q) == NYSIIS(%q) = %q", pair[0], pair[1], NYSIIS(pair[0]))
		}
	}
	if NYSIIS("") != "" || NYSIIS("123") != "" {
		t.Error("letterless input should give empty code")
	}
	// Prefix rules.
	if NYSIIS("macdonald") == "" || NYSIIS("macdonald")[:2] != "MC" {
		t.Errorf("MAC prefix rule: %q", NYSIIS("macdonald"))
	}
	if NYSIIS("knowles")[0] != 'N' {
		t.Errorf("KN prefix rule: %q", NYSIIS("knowles"))
	}
	// Unlike Soundex, NYSIIS keeps the y distinction of smyth.
	if NYSIIS("smith") == NYSIIS("smyth") {
		t.Errorf("NYSIIS should distinguish smith/smyth, both %q", NYSIIS("smith"))
	}
}

func TestNYSIISShape(t *testing.T) {
	prop := func(s string) bool {
		code := NYSIIS(s)
		if code == "" {
			return true
		}
		if len(code) > 6 {
			return false
		}
		for i := 0; i < len(code); i++ {
			if code[i] < 'A' || code[i] > 'Z' {
				return false
			}
		}
		// No immediate repeats after the first position.
		for i := 2; i < len(code); i++ {
			if code[i] == code[i-1] && i > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDamerauLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DamerauLevenshtein("elizabeth", "elisabeht")
	}
}

func BenchmarkNYSIIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NYSIIS("ashworth")
	}
}

func TestLCSSim(t *testing.T) {
	sim := LCSSim(2)
	if got := sim("john peter", "peter john"); got < 0.85 {
		t.Errorf("token swap should score high: %v", got)
	}
	if sim("smith", "smith") != 1 {
		t.Error("identity should be 1")
	}
	if sim("", "abc") != 0 {
		t.Error("empty input should be 0")
	}
	if got := sim("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings = %v", got)
	}
	// "gail west" vs "vest abigail": common substrings "gail"(4), "est"(3)
	// of mean length 10 -> 0.7.
	if got := sim("gail west", "vest abigail"); got < 0.5 || got > 0.8 {
		t.Errorf("partial overlap = %v", got)
	}
}

func TestLCSSimProperties(t *testing.T) {
	sim := LCSSim(2)
	prop := func(a, b string) bool {
		s1, s2 := sim(a, b), sim(b, a)
		return s1 >= 0 && s1 <= 1 && almostEqual(s1, s2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	length, ai, bi := longestCommonSubstring([]rune("xashworthy"), []rune("ashworth"))
	if length != 8 || ai != 1 || bi != 0 {
		t.Errorf("lcs = %d at %d/%d", length, ai, bi)
	}
	if l, _, _ := longestCommonSubstring(nil, []rune("a")); l != 0 {
		t.Error("empty input lcs should be 0")
	}
}
