package strsim

import "testing"

// profilePairs is a corpus of census-like value pairs covering empties,
// whitespace, case folding, unicode, short strings and typo variants.
var profilePairs = [][2]string{
	{"", ""},
	{"", "smith"},
	{"smith", ""},
	{"smith", "smith"},
	{"Smith", " smith "},
	{"smith", "smyth"},
	{"smith", "smithson"},
	{"johnson", "jonson"},
	{"a", "a"},
	{"a", "b"},
	{"ab", "ba"},
	{"martha", "marhta"},
	{"dwayne", "duane"},
	{"dixon", "dicksonx"},
	{"o'brien", "obrien"},
	{"müller", "mueller"},
	{"Ætheling", "atheling"},
	{"12 high st", "12 high street"},
	{"m", "f"},
	{"weaver", "weaver "},
	{"\x00odd", "odd"},
	{"ab", "abc"},
	{"x", "xyzzy"},
}

// profiledEquivalents maps each Profiled comparator to the string Func it
// must reproduce bit-for-bit.
func profiledEquivalents() []struct {
	name string
	p    *Profiled
	f    Func
} {
	return []struct {
		name string
		p    *Profiled
		f    Func
	}{
		{"bigram", BigramProfiled, Bigram},
		{"qgram3", QGramProfiled(3), QGram(3)},
		{"qgram1", QGramProfiled(1), QGram(1)},
		{"exact", ExactProfiled, Exact},
		{"jaro", JaroProfiled, Jaro},
		{"jarowinkler", JaroWinklerProfiled, JaroWinkler},
		{"editsim", EditSimProfiled, EditSim},
	}
}

func TestProfiledMatchesStringFuncs(t *testing.T) {
	for _, eq := range profiledEquivalents() {
		for _, pair := range profilePairs {
			a, b := pair[0], pair[1]
			pa := eq.p.Build(a)
			pb := eq.p.Build(b)
			got := eq.p.Compare(&pa, &pb)
			want := eq.f(a, b)
			if got != want {
				t.Errorf("%s(%q, %q): profiled=%v string=%v", eq.name, a, b, got, want)
			}
			// Profiles are reusable: a second compare must be identical.
			if again := eq.p.Compare(&pa, &pb); again != got {
				t.Errorf("%s(%q, %q): compare not deterministic: %v then %v", eq.name, a, b, got, again)
			}
		}
	}
}

func TestProfiledSymmetricRange(t *testing.T) {
	for _, eq := range profiledEquivalents() {
		for _, pair := range profilePairs {
			pa := eq.p.Build(pair[0])
			pb := eq.p.Build(pair[1])
			ab := eq.p.Compare(&pa, &pb)
			if ab < 0 || ab > 1 {
				t.Errorf("%s(%q, %q) = %v out of [0,1]", eq.name, pair[0], pair[1], ab)
			}
		}
	}
}

func TestMemoizedProfiled(t *testing.T) {
	m := Memoized("damerau", DamerauSim)
	for _, pair := range profilePairs {
		pa := m.Build(pair[0])
		pb := m.Build(pair[1])
		if got, want := m.Compare(&pa, &pb), DamerauSim(pair[0], pair[1]); got != want {
			t.Errorf("memoized damerau(%q, %q): %v != %v", pair[0], pair[1], got, want)
		}
	}
}

func TestSortedCommonMatchesCountMap(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"ab"}, nil, 0},
		{[]string{"ab", "ab", "bc"}, []string{"ab", "bc", "bc"}, 2},
		{[]string{"aa", "aa", "aa"}, []string{"aa", "aa"}, 2},
		{[]string{"aa", "bb"}, []string{"cc", "dd"}, 0},
	}
	for _, c := range cases {
		if got := sortedCommon(c.a, c.b); got != c.want {
			t.Errorf("sortedCommon(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
