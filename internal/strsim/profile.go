package strsim

import "sort"

// Profile is a precompiled comparison form of one string value: the
// normalised text, its rune expansion, and (for q-gram comparators) the
// sorted padded q-gram multiset. Building a Profile once per distinct
// dictionary value lets the iterative linkage loop compare value IDs without
// re-normalising or re-tokenising strings on every candidate pair.
type Profile struct {
	// Norm is the normalised (lower-cased, trimmed) value.
	Norm string
	// Runes is Norm expanded to runes, shared by the edit-distance and
	// Jaro comparators.
	Runes []rune
	// Grams is the sorted padded q-gram multiset of Norm; empty for
	// comparators that do not use q-grams.
	Grams []string
}

// Profiled pairs a profile builder with a profile-vs-profile comparator.
// Compare(Build(a), Build(b)) is bit-for-bit identical to the corresponding
// string Func(a, b): both paths share the same rune-level cores
// (levenshteinRunes, jaroRunes, winklerBoost) and the q-gram Dice count is
// computed by a sorted-merge that is provably equal to the count-map
// intersection used by QGram.
type Profiled struct {
	// Name identifies the comparator (for diagnostics and spec round-trips).
	Name string
	// Build compiles one string into its comparison profile.
	Build func(s string) Profile
	// Compare scores two profiles; result is in [0, 1].
	Compare func(a, b *Profile) float64
}

// buildBase compiles the normalisation-and-runes part shared by all
// profile builders.
func buildBase(s string) Profile {
	n := normalize(s)
	return Profile{Norm: n, Runes: []rune(n)}
}

// QGramProfiled returns the profile form of QGram(q): Build produces the
// sorted padded q-gram multiset once, Compare runs a sorted-merge Dice.
func QGramProfiled(q int) *Profiled {
	if q < 1 {
		q = 2
	}
	return &Profiled{
		Name: "qgram",
		Build: func(s string) Profile {
			p := buildBase(s)
			p.Grams = qgrams(p.Norm, q)
			sort.Strings(p.Grams)
			return p
		},
		Compare: func(a, b *Profile) float64 {
			if a.Norm == "" || b.Norm == "" {
				return 0
			}
			if a.Norm == b.Norm {
				return 1
			}
			if len(a.Grams) == 0 || len(b.Grams) == 0 {
				return 0
			}
			common := sortedCommon(a.Grams, b.Grams)
			return 2 * float64(common) / float64(len(a.Grams)+len(b.Grams))
		},
	}
}

// BigramProfiled is the profile form of Bigram (QGram(2)).
var BigramProfiled = QGramProfiled(2)

// sortedCommon counts the multiset intersection of two sorted slices. For
// sorted inputs this equals the count-map intersection computed by QGram,
// so the Dice numerators of the two paths are identical.
func sortedCommon(a, b []string) int {
	common := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return common
}

// ExactProfiled is the profile form of Exact.
var ExactProfiled = &Profiled{
	Name:  "exact",
	Build: buildBase,
	Compare: func(a, b *Profile) float64 {
		if a.Norm == "" || b.Norm == "" {
			return 0
		}
		if a.Norm == b.Norm {
			return 1
		}
		return 0
	},
}

// JaroProfiled is the profile form of Jaro, reusing each value's cached
// rune expansion.
var JaroProfiled = &Profiled{
	Name:  "jaro",
	Build: buildBase,
	Compare: func(a, b *Profile) float64 {
		if a.Norm == "" || b.Norm == "" {
			return 0
		}
		if a.Norm == b.Norm {
			return 1
		}
		return jaroRunes(a.Runes, b.Runes)
	},
}

// JaroWinklerProfiled is the profile form of JaroWinkler.
var JaroWinklerProfiled = &Profiled{
	Name:  "jarowinkler",
	Build: buildBase,
	Compare: func(a, b *Profile) float64 {
		j := JaroProfiled.Compare(a, b)
		if j == 0 {
			return 0
		}
		return winklerBoost(j, a.Runes, b.Runes)
	},
}

// EditSimProfiled is the profile form of EditSim.
var EditSimProfiled = &Profiled{
	Name:  "editsim",
	Build: buildBase,
	Compare: func(a, b *Profile) float64 {
		if a.Norm == "" || b.Norm == "" {
			return 0
		}
		return editSimRunes(a.Runes, b.Runes)
	},
}

// Memoized wraps an arbitrary string Func as a Profiled whose profile is
// just the original string: comparators without a native profile form
// (Damerau, Monge-Elkan, token Dice) still benefit from the engine's
// distinct-pair memo table while scoring through the string path.
func Memoized(name string, f Func) *Profiled {
	return &Profiled{
		Name:  name,
		Build: func(s string) Profile { return Profile{Norm: s} },
		Compare: func(a, b *Profile) float64 {
			return f(a.Norm, b.Norm)
		},
	}
}
