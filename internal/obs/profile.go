package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
)

// ServePprof starts an HTTP server exposing the net/http/pprof handlers on
// the given address (e.g. "localhost:6060") in a background goroutine. It
// returns once the listener is bound, so a caller error means the address
// is genuinely unusable rather than a silent late failure.
func ServePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// StartCPUProfile begins writing a CPU profile to the given path and
// returns the stop function that finishes and closes it.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		runtimepprof.StopCPUProfile()
		f.Close()
	}, nil
}
