package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// DefaultLatencyBuckets are the upper bounds (in seconds) of the HTTP
// request-latency histograms: a log-ish ladder from half a millisecond to
// ten seconds, matching the range between a cache hit on loopback and a
// cold pair computation.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations. Like the
// rest of the package it is goroutine-safe and all methods are no-ops on a
// nil receiver. Construct with NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram creates a histogram over the given ascending upper bounds
// (DefaultLatencyBuckets when nil or empty). The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent copy of a histogram's state. Cumulative
// holds, for each bound, the number of observations less than or equal to
// it; the final total (the +Inf bucket) is Count.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
}

// Snapshot returns a copy of the current state with per-bucket counts
// already accumulated into the Prometheus-style cumulative form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.bounds)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i]
		s.Cumulative[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation within the containing bucket, the same estimate
// Prometheus's histogram_quantile computes. It returns 0 on an empty
// histogram; a quantile landing in the +Inf bucket reports the largest
// finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Cumulative {
		if float64(cum) >= rank {
			lo, loCum := 0.0, uint64(0)
			if i > 0 {
				lo, loCum = s.Bounds[i-1], s.Cumulative[i-1]
			}
			in := float64(cum - loCum)
			if in == 0 {
				return s.Bounds[i]
			}
			return lo + (s.Bounds[i]-lo)*(rank-float64(loCum))/in
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WriteHistogram renders one snapshot as a Prometheus histogram sample set:
// name_bucket lines for every bound plus +Inf, then name_sum and
// name_count. labels is the pre-rendered label pairs without braces (for
// example `endpoint="record_links"`), empty for an unlabelled family; the
// caller writes the family's HELP/TYPE header once before the first call.
func WriteHistogram(w io.Writer, name, labels string, s HistogramSnapshot) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range s.Bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatBound(b), s.Cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count); err != nil {
		return err
	}
	var lb string
	if labels != "" {
		lb = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, lb, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lb, s.Count)
	return err
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
