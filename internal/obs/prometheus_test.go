package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheus: counters, stage calls and stage seconds must render
// as sorted, well-formed exposition-format samples.
func TestWritePrometheus(t *testing.T) {
	s := NewStats(nil)
	s.Add(RecordLinks, 7)
	s.Add(GroupLinks, 3)
	stop := s.Stage("prematch")
	time.Sleep(time.Millisecond)
	stop()
	s.BeginIteration(0.7)
	s.EndIteration()

	var b strings.Builder
	if err := WritePrometheus(&b, s.Report()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE censuslink_pipeline_total counter",
		`censuslink_pipeline_total{name="record_links"} 7`,
		`censuslink_pipeline_total{name="group_links"} 3`,
		`censuslink_stage_calls_total{stage="prematch"} 1`,
		`censuslink_stage_seconds_total{stage="prematch"} `,
		"censuslink_iterations_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// group_links sorts before record_links: deterministic scrape order.
	if strings.Index(out, `name="group_links"`) > strings.Index(out, `name="record_links"`) {
		t.Error("counter samples not sorted by name")
	}
}

// TestWritePrometheusEmpty: a nil/empty report renders without error and
// without malformed families.
func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil report rendered %q", b.String())
	}
	b.Reset()
	if err := WritePrometheus(&b, (*Stats)(nil).Report()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "censuslink_iterations_total 0") {
		t.Errorf("empty report missing iteration sample:\n%s", b.String())
	}
}
