package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink receives observability events from a Stats collector. Implementations
// must be safe for concurrent use; the pipeline may report from worker
// goroutines. Library code talks only to this interface — never to log or
// stdout — so binaries decide where (and whether) progress goes.
type Sink interface {
	// StageDone reports that one named stage call finished.
	StageDone(stage string, d time.Duration)
	// IterationDone reports the closed snapshot of one δ round.
	IterationDone(it Iteration)
	// RunDone reports the final run report, exactly once.
	RunDone(r *Report)
}

// NopSink discards all events. It is the default of NewStats(nil).
type NopSink struct{}

func (NopSink) StageDone(string, time.Duration) {}
func (NopSink) IterationDone(Iteration)         {}
func (NopSink) RunDone(*Report)                 {}

// TextSink writes human-readable progress lines, one per iteration and a
// closing summary. Stage completions are not echoed (too chatty for a
// progress log); they remain visible in the final report.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink wraps a writer into a progress-line sink.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

func (s *TextSink) StageDone(string, time.Duration) {}

func (s *TextSink) IterationDone(it Iteration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "iteration δ=%.2f: compared=%d links=%d groups=%d records=%d (%s)\n",
		it.Delta, it.Count(PairsCompared), it.Count(CandidateLinks),
		it.Count(GroupLinks), it.Count(RecordLinks),
		it.ElapsedNS.Round(time.Millisecond))
}

func (s *TextSink) RunDone(r *Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "run done: %d iterations, %d record links (+%d remainder), %d group links in %s\n",
		len(r.Iterations), r.Counters[RecordLinks], r.Counters[RemainderLinks],
		r.Counters[GroupLinks], r.ElapsedNS.Round(time.Millisecond))
}

// JSONSink streams events as one JSON object per line (NDJSON): stage and
// iteration events as they happen, the full report on RunDone. Suitable for
// machine-consumed progress feeds.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink wraps a writer into an NDJSON event sink.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

func (s *JSONSink) emit(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(v) // a progress feed must never fail the pipeline
}

func (s *JSONSink) StageDone(stage string, d time.Duration) {
	s.emit(struct {
		Event   string        `json:"event"`
		Stage   string        `json:"stage"`
		TotalNS time.Duration `json:"total_ns"`
	}{"stage", stage, d})
}

func (s *JSONSink) IterationDone(it Iteration) {
	s.emit(struct {
		Event string `json:"event"`
		Iteration
	}{"iteration", it})
}

func (s *JSONSink) RunDone(r *Report) {
	s.emit(struct {
		Event string `json:"event"`
		*Report
	}{"run", r})
}

// MultiSink fans events out to several sinks.
type MultiSink []Sink

func (m MultiSink) StageDone(stage string, d time.Duration) {
	for _, s := range m {
		s.StageDone(stage, d)
	}
}
func (m MultiSink) IterationDone(it Iteration) {
	for _, s := range m {
		s.IterationDone(it)
	}
}
func (m MultiSink) RunDone(r *Report) {
	for _, s := range m {
		s.RunDone(r)
	}
}

// WriteReport serializes a run report as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a run report written by WriteReport.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: parsing report: %w", err)
	}
	if r.Stages == nil {
		r.Stages = map[string]StageStats{}
	}
	if r.Counters == nil {
		r.Counters = map[string]int64{}
	}
	return &r, nil
}
