package obs

import (
	"fmt"
	"io"
)

// WritePrometheus renders a run report in the Prometheus text exposition
// format (version 0.0.4): every pipeline counter becomes a sample of the
// censuslink_pipeline_total family keyed by a name label, and every stage
// timer contributes its call count and cumulative wall-clock seconds. The
// output is sorted, so identical reports scrape identically.
func WritePrometheus(w io.Writer, r *Report) error {
	if r == nil {
		return nil
	}
	if len(r.Counters) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP censuslink_pipeline_total Pipeline counter totals across all runs.\n# TYPE censuslink_pipeline_total counter\n"); err != nil {
			return err
		}
		for _, name := range r.CounterNames() {
			if _, err := fmt.Fprintf(w, "censuslink_pipeline_total{name=%q} %d\n",
				name, r.Counters[name]); err != nil {
				return err
			}
		}
	}
	if len(r.Stages) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP censuslink_stage_calls_total Completed timer intervals per pipeline stage.\n# TYPE censuslink_stage_calls_total counter\n"); err != nil {
			return err
		}
		for _, name := range r.StageNames() {
			if _, err := fmt.Fprintf(w, "censuslink_stage_calls_total{stage=%q} %d\n",
				name, r.Stages[name].Calls); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP censuslink_stage_seconds_total Cumulative wall-clock seconds per pipeline stage.\n# TYPE censuslink_stage_seconds_total counter\n"); err != nil {
			return err
		}
		for _, name := range r.StageNames() {
			if _, err := fmt.Fprintf(w, "censuslink_stage_seconds_total{stage=%q} %g\n",
				name, r.Stages[name].TotalNS.Seconds()); err != nil {
				return err
			}
		}
	}
	if len(r.Gauges) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP censuslink_gauge High-water gauges sampled at stage boundaries (peak memory, etc.).\n# TYPE censuslink_gauge gauge\n"); err != nil {
			return err
		}
		for _, name := range r.GaugeNames() {
			if _, err := fmt.Fprintf(w, "censuslink_gauge{name=%q} %d\n",
				name, r.Gauges[name]); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "# HELP censuslink_iterations_total Closed per-delta iteration snapshots.\n# TYPE censuslink_iterations_total counter\ncensuslink_iterations_total %d\n", len(r.Iterations))
	return err
}
