package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStageTimerMonotonicity: stage durations come from the monotonic
// clock, are never negative, and only grow as calls accumulate.
func TestStageTimerMonotonicity(t *testing.T) {
	s := NewStats(nil)
	var last time.Duration
	for i := 0; i < 5; i++ {
		stop := s.Stage("work")
		time.Sleep(time.Millisecond)
		stop()
		r := s.Report()
		st := r.Stages["work"]
		if st.Calls != i+1 {
			t.Fatalf("after %d calls: Calls = %d", i+1, st.Calls)
		}
		if st.TotalNS < last {
			t.Fatalf("stage total went backwards: %v -> %v", last, st.TotalNS)
		}
		if st.TotalNS <= 0 {
			t.Fatalf("non-positive stage total %v", st.TotalNS)
		}
		last = st.TotalNS
	}
	if e := s.Report().ElapsedNS; e < last {
		t.Fatalf("run elapsed %v below stage total %v", e, last)
	}
}

// TestCounterAggregationAcrossIterations: counters land on the open
// iteration snapshot and on the run totals; totals span all iterations
// plus counts added outside any iteration (the remainder pass).
func TestCounterAggregationAcrossIterations(t *testing.T) {
	s := NewStats(nil)
	deltas := []float64{0.7, 0.65, 0.6}
	for i, d := range deltas {
		s.BeginIteration(d)
		s.Add(PairsCompared, 100*(i+1))
		s.Add(CandidateLinks, 10*(i+1))
		s.Add(CandidateLinks, 1) // accumulation within one iteration
		s.EndIteration()
	}
	s.Add(RemainderLinks, 7) // outside any iteration: totals only

	r := s.Report()
	if len(r.Iterations) != len(deltas) {
		t.Fatalf("%d iterations, want %d", len(r.Iterations), len(deltas))
	}
	for i, it := range r.Iterations {
		if it.Delta != deltas[i] {
			t.Errorf("iteration %d delta = %v, want %v", i, it.Delta, deltas[i])
		}
		if got, want := it.Count(PairsCompared), int64(100*(i+1)); got != want {
			t.Errorf("iteration %d compared = %d, want %d", i, got, want)
		}
		if got, want := it.Count(CandidateLinks), int64(10*(i+1)+1); got != want {
			t.Errorf("iteration %d links = %d, want %d", i, got, want)
		}
	}
	if got := r.Counters[PairsCompared]; got != 600 {
		t.Errorf("total compared = %d, want 600", got)
	}
	if got := r.Counters[CandidateLinks]; got != 63 {
		t.Errorf("total links = %d, want 63", got)
	}
	if got := r.Counters[RemainderLinks]; got != 7 {
		t.Errorf("total remainder = %d, want 7", got)
	}
	for _, it := range r.Iterations {
		if _, ok := it.Counters[RemainderLinks]; ok {
			t.Error("remainder count leaked into an iteration snapshot")
		}
	}
}

// TestReportJSONRoundTrip: WriteReport/ReadReport preserve the report.
func TestReportJSONRoundTrip(t *testing.T) {
	s := NewStats(nil)
	s.BeginIteration(0.7)
	s.Add(PairsCompared, 42)
	s.Add(GroupLinks, 3)
	s.EndIteration()
	stop := s.Stage("prematch")
	stop()
	s.Add(RemainderLinks, 5)
	want := s.Report()

	var buf bytes.Buffer
	if err := WriteReport(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ReadReport(strings.NewReader("{broken")); err == nil {
		t.Fatal("no error for malformed report")
	}
}

// TestNilStatsIsSafe: every method must be a no-op on a nil collector, so
// pipeline call sites need no nil guards.
func TestNilStatsIsSafe(t *testing.T) {
	var s *Stats
	s.Stage("x")()
	s.Add(PairsCompared, 1)
	s.BeginIteration(0.5)
	s.EndIteration()
	if n := s.Total(PairsCompared); n != 0 {
		t.Fatalf("nil Total = %d", n)
	}
	if got := s.Iterations(); got != nil {
		t.Fatalf("nil Iterations = %v", got)
	}
	r := s.Done()
	if r == nil || len(r.Iterations) != 0 {
		t.Fatalf("nil Done report = %+v", r)
	}
}

// TestConcurrentCollection exercises the collector from many goroutines;
// meaningful under -race (the documented tier-1 gate runs with it).
func TestConcurrentCollection(t *testing.T) {
	s := NewStats(NewJSONSink(&safeBuffer{}))
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				stop := s.Stage("hot")
				s.Add(PairsCompared, 1)
				stop()
			}
		}()
	}
	wg.Wait()
	r := s.Done()
	if got := r.Counters[PairsCompared]; got != workers*perWorker {
		t.Fatalf("compared = %d, want %d", got, workers*perWorker)
	}
	if got := r.Stages["hot"].Calls; got != workers*perWorker {
		t.Fatalf("stage calls = %d, want %d", got, workers*perWorker)
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer for concurrent sink writes.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// TestSinks: the text sink emits one line per iteration plus a summary;
// the JSON sink emits parseable NDJSON with the expected event kinds.
func TestSinks(t *testing.T) {
	var text, ndjson bytes.Buffer
	s := NewStats(MultiSink{NewTextSink(&text), NewJSONSink(&ndjson)})
	s.BeginIteration(0.7)
	s.Add(PairsCompared, 10)
	s.EndIteration()
	s.Stage("prematch")()
	s.Done()

	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("text sink wrote %d lines, want 2: %q", len(lines), text.String())
	}
	if !strings.Contains(lines[0], "δ=0.70") || !strings.Contains(lines[0], "compared=10") {
		t.Errorf("unexpected iteration line %q", lines[0])
	}
	kinds := map[string]int{}
	for _, l := range strings.Split(strings.TrimSpace(ndjson.String()), "\n") {
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", l, err)
		}
		kinds[ev.Event]++
	}
	if kinds["iteration"] != 1 || kinds["stage"] != 1 || kinds["run"] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
}

// TestBeginIterationClosesOpenOne: a dangling open iteration is closed
// implicitly, so no snapshot is ever lost.
func TestBeginIterationClosesOpenOne(t *testing.T) {
	s := NewStats(nil)
	s.BeginIteration(0.7)
	s.Add(PairsCompared, 1)
	s.BeginIteration(0.65) // implicit close of the 0.7 round
	s.Add(PairsCompared, 2)
	r := s.Report() // implicit close of the 0.65 round
	if len(r.Iterations) != 2 {
		t.Fatalf("%d iterations, want 2", len(r.Iterations))
	}
	if r.Iterations[0].Count(PairsCompared) != 1 || r.Iterations[1].Count(PairsCompared) != 2 {
		t.Fatalf("snapshots mixed up: %+v", r.Iterations)
	}
}
