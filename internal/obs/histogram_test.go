package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCum := []uint64{2, 3, 4}
	for i, c := range s.Cumulative {
		if c != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, wantCum[i])
		}
	}
	if got := s.Sum; math.Abs(got-5.56) > 1e-9 {
		t.Errorf("sum = %g, want 5.56", got)
	}
	// The median rank (2.5 of 5) lands in the second bucket (0.01, 0.1].
	if q := s.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Errorf("p50 = %g, want within (0.01, 0.1]", q)
	}
	// A quantile in the +Inf bucket reports the largest finite bound.
	if q := s.Quantile(0.999); q != 1 {
		t.Errorf("p99.9 = %g, want 1 (largest finite bound)", q)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("nil histogram snapshot = %+v", s)
	}
	if q := (HistogramSnapshot{}).Quantile(0.9); q != 0 {
		t.Errorf("empty snapshot quantile = %g, want 0", q)
	}
	NewHistogram(nil).Observe(math.NaN()) // dropped, not counted
	if n := NewHistogram(nil).Snapshot().Count; n != 0 {
		t.Errorf("NaN observation counted: %d", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestWriteHistogramPrometheus(t *testing.T) {
	h := NewHistogram([]float64{0.05, 0.5})
	h.ObserveDuration(10 * time.Millisecond)
	h.ObserveDuration(100 * time.Millisecond)
	h.ObserveDuration(2 * time.Second)
	var b strings.Builder
	if err := WriteHistogram(&b, "x_seconds", `endpoint="records"`, h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{endpoint="records",le="0.05"} 1`,
		`x_seconds_bucket{endpoint="records",le="0.5"} 2`,
		`x_seconds_bucket{endpoint="records",le="+Inf"} 3`,
		`x_seconds_sum{endpoint="records"} 2.11`,
		`x_seconds_count{endpoint="records"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Unlabelled families get bare sum/count names.
	b.Reset()
	if err := WriteHistogram(&b, "y_seconds", "", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `y_seconds_bucket{le="0.05"} 1`) ||
		!strings.Contains(b.String(), "y_seconds_count 3") {
		t.Errorf("unlabelled output wrong:\n%s", b.String())
	}
}
