package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Gauge names reported by SampleMem. Gauges are max-tracked: every sample
// keeps the high-water value, so a run report documents peak memory rather
// than whatever the final GC cycle left behind.
const (
	// PeakHeapInuse is the high-water runtime.MemStats.HeapInuse observed
	// at stage boundaries: bytes in in-use heap spans.
	PeakHeapInuse = "peak_heap_inuse_bytes"
	// PeakHeapAlloc is the high-water HeapAlloc: bytes of live (reachable
	// plus not-yet-swept) heap objects.
	PeakHeapAlloc = "peak_heap_alloc_bytes"
	// PeakSys is the high-water MemStats.Sys: total bytes obtained from the
	// OS by the Go runtime.
	PeakSys = "peak_sys_bytes"
	// PeakRSS is the process's high-water resident set size (VmHWM from
	// /proc/self/status). Unlike the heap gauges it is monotone over the
	// whole process lifetime, so on a process that ran several pipelines it
	// reflects the largest of them.
	PeakRSS = "peak_rss_bytes"
)

// SampleMem records the current memory gauges (max-tracked) on the
// collector: heap-in-use, live heap, runtime sys and — where the platform
// exposes it — the process peak RSS. The Stage stop function calls it
// automatically, so every observed run documents its peak memory; callers
// may also sample at points of interest. Safe on a nil receiver.
func (s *Stats) SampleMem() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.SetMax(PeakHeapInuse, int64(ms.HeapInuse))
	s.SetMax(PeakHeapAlloc, int64(ms.HeapAlloc))
	s.SetMax(PeakSys, int64(ms.Sys))
	if rss := ReadPeakRSS(); rss > 0 {
		s.SetMax(PeakRSS, rss)
	}
}

// ReadPeakRSS returns the process high-water resident set size in bytes
// (Linux: VmHWM of /proc/self/status), or 0 when the platform does not
// expose it.
func ReadPeakRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "VmHWM:"))
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
