package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxSimpleCases(t *testing.T) {
	// Greedy would take (0,0)=0.9 then leave row 1 with 0.1; the optimum is
	// (0,1)=0.8 + (1,0)=0.8.
	edges := []Edge{
		{0, 0, 0.9}, {0, 1, 0.8}, {1, 0, 0.8}, {1, 1, 0.1},
	}
	match := Max(2, 2, edges)
	if match[0] != 1 || match[1] != 0 {
		t.Errorf("match = %v, want [1 0]", match)
	}
	if got := TotalWeight(match, edges); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("total = %v, want 1.6", got)
	}
}

func TestMaxLeavesUnmatched(t *testing.T) {
	// Only one right element; one left must stay unmatched, and it must be
	// the lower-weight one.
	edges := []Edge{{0, 0, 0.3}, {1, 0, 0.9}}
	match := Max(2, 1, edges)
	if match[0] != -1 || match[1] != 0 {
		t.Errorf("match = %v, want [-1 0]", match)
	}
}

func TestMaxEmptyAndInvalid(t *testing.T) {
	if m := Max(0, 5, nil); len(m) != 0 {
		t.Errorf("empty left: %v", m)
	}
	m := Max(3, 3, []Edge{
		{-1, 0, 1}, {0, 9, 1}, {0, 0, 0}, // all invalid or zero weight
	})
	for _, r := range m {
		if r != -1 {
			t.Errorf("invalid edges produced a match: %v", m)
		}
	}
}

func TestMaxDisconnectedComponents(t *testing.T) {
	edges := []Edge{
		{0, 0, 0.5}, {1, 1, 0.6}, // component A
		{2, 2, 0.7}, {3, 2, 0.9}, // component B: 3 wins
	}
	match := Max(4, 3, edges)
	if match[0] != 0 || match[1] != 1 || match[2] != -1 || match[3] != 2 {
		t.Errorf("match = %v", match)
	}
}

// bruteForce finds the true optimum by enumeration (small inputs only).
func bruteForce(nLeft, nRight int, edges []Edge) float64 {
	weight := make(map[[2]int]float64)
	for _, e := range edges {
		if e.Weight > 0 {
			k := [2]int{e.Left, e.Right}
			if e.Weight > weight[k] {
				weight[k] = e.Weight
			}
		}
	}
	usedRight := make([]bool, nRight)
	var rec func(l int) float64
	rec = func(l int) float64 {
		if l == nLeft {
			return 0
		}
		best := rec(l + 1) // leave l unmatched
		for r := 0; r < nRight; r++ {
			if usedRight[r] {
				continue
			}
			w, ok := weight[[2]int{l, r}]
			if !ok {
				continue
			}
			usedRight[r] = true
			if s := w + rec(l+1); s > best {
				best = s
			}
			usedRight[r] = false
		}
		return best
	}
	return rec(0)
}

// TestMaxOptimalProperty: on random small instances, the solver matches the
// brute-force optimum.
func TestMaxOptimalProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLeft := 1 + rng.Intn(5)
		nRight := 1 + rng.Intn(5)
		var edges []Edge
		for l := 0; l < nLeft; l++ {
			for r := 0; r < nRight; r++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, Edge{l, r, 0.05 + rng.Float64()})
				}
			}
		}
		match := Max(nLeft, nRight, edges)
		// Validity: 1:1.
		seen := map[int]bool{}
		for _, r := range match {
			if r < 0 {
				continue
			}
			if seen[r] {
				return false
			}
			seen[r] = true
		}
		got := TotalWeight(match, edges)
		want := bruteForce(nLeft, nRight, edges)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMaxBeatsGreedyOrEqual: the optimal matching never totals less than a
// greedy one.
func TestMaxBeatsGreedyOrEqual(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLeft := 1 + rng.Intn(8)
		nRight := 1 + rng.Intn(8)
		var edges []Edge
		for l := 0; l < nLeft; l++ {
			for r := 0; r < nRight; r++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, Edge{l, r, rng.Float64()})
				}
			}
		}
		// Greedy by weight.
		sorted := append([]Edge(nil), edges...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j].Weight > sorted[i].Weight {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		usedL := map[int]bool{}
		usedR := map[int]bool{}
		greedy := 0.0
		for _, e := range sorted {
			if e.Weight <= 0 || usedL[e.Left] || usedR[e.Right] {
				continue
			}
			usedL[e.Left] = true
			usedR[e.Right] = true
			greedy += e.Weight
		}
		optimal := TotalWeight(Max(nLeft, nRight, edges), edges)
		return optimal >= greedy-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaxSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	// 50 components of ~20x20.
	for c := 0; c < 50; c++ {
		base := c * 20
		for l := 0; l < 20; l++ {
			for r := 0; r < 20; r++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, Edge{base + l, base + r, rng.Float64()})
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Max(1000, 1000, edges)
	}
}
