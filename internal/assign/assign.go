// Package assign solves maximum-weight bipartite assignment (the problem
// behind 1:1 record matching): given candidate pairs with similarity
// weights, choose a matching that maximises the total weight, leaving
// elements unmatched where that is better.
//
// The solver decomposes the candidate graph into connected components and
// runs an O(n³) Hungarian algorithm (Jonker-Volgenant style potentials) per
// component, so sparse real-world instances — where candidate pairs cluster
// by name blocks — stay fast even for large inputs.
package assign

import "math"

// Edge is one candidate pair between left element l and right element r
// with a positive weight. Non-candidate pairs are implicitly forbidden.
type Edge struct {
	Left, Right int
	Weight      float64
}

// Max returns, for each left element 0..nLeft-1, the index of the matched
// right element or -1, maximising the total weight over all 1:1 matchings.
// Only listed edges with positive weight can be matched.
func Max(nLeft, nRight int, edges []Edge) []int {
	match := make([]int, nLeft)
	for i := range match {
		match[i] = -1
	}
	if nLeft == 0 || nRight == 0 || len(edges) == 0 {
		return match
	}

	// Connected components over the candidate graph. Left nodes are
	// 0..nLeft-1, right nodes are nLeft..nLeft+nRight-1.
	parent := make([]int, nLeft+nRight)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, e := range edges {
		if e.Weight > 0 && e.Left >= 0 && e.Left < nLeft && e.Right >= 0 && e.Right < nRight {
			union(e.Left, nLeft+e.Right)
		}
	}

	// Group edges and member lists per component root.
	compEdges := make(map[int][]Edge)
	for _, e := range edges {
		if e.Weight <= 0 || e.Left < 0 || e.Left >= nLeft || e.Right < 0 || e.Right >= nRight {
			continue
		}
		root := find(e.Left)
		compEdges[root] = append(compEdges[root], e)
	}

	for _, ce := range compEdges {
		solveComponent(ce, match)
	}
	return match
}

// solveComponent runs the Hungarian algorithm on one component's edges and
// writes the chosen matches into match.
func solveComponent(edges []Edge, match []int) {
	// Compact the left/right indices of this component.
	leftIdx := make(map[int]int)
	rightIdx := make(map[int]int)
	var lefts, rights []int
	maxW := 0.0
	for _, e := range edges {
		if _, ok := leftIdx[e.Left]; !ok {
			leftIdx[e.Left] = len(lefts)
			lefts = append(lefts, e.Left)
		}
		if _, ok := rightIdx[e.Right]; !ok {
			rightIdx[e.Right] = len(rights)
			rights = append(rights, e.Right)
		}
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	n := len(lefts)
	// Columns: the real right elements plus one dummy "unmatched" column
	// per left element. Staying unmatched costs maxW (weight 0); matching a
	// pair of weight w costs maxW - w; forbidden pairs cost big.
	m := len(rights) + n
	big := maxW*float64(n+1) + 1

	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := 0; j < len(rights); j++ {
			cost[i][j] = big
		}
		for j := len(rights); j < m; j++ {
			cost[i][j] = maxW // unmatched
		}
	}
	for _, e := range edges {
		i, j := leftIdx[e.Left], rightIdx[e.Right]
		c := maxW - e.Weight
		if c < cost[i][j] {
			cost[i][j] = c
		}
	}

	assignment := hungarian(cost)
	for i, j := range assignment {
		if j >= 0 && j < len(rights) && cost[i][j] < big {
			match[lefts[i]] = rights[j]
		}
	}
}

// hungarian solves the min-cost assignment for an n×m cost matrix with
// n <= m, returning for each row its assigned column. Classic potentials
// formulation, O(n²·m).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	const inf = math.MaxFloat64

	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row (1-based) assigned to column j
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	out := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}

// TotalWeight sums the weights of a matching given the original edges
// (useful for tests and reporting). Unlisted matches contribute nothing.
func TotalWeight(match []int, edges []Edge) float64 {
	best := make(map[[2]int]float64, len(edges))
	for _, e := range edges {
		k := [2]int{e.Left, e.Right}
		if e.Weight > best[k] {
			best[k] = e.Weight
		}
	}
	total := 0.0
	for l, r := range match {
		if r >= 0 {
			total += best[[2]int{l, r}]
		}
	}
	return total
}
