// Package compare implements the compiled comparison engine: census records
// are compiled once per dataset — every attribute value interned into a
// per-attribute dictionary of value IDs with one precomputed strsim.Profile
// per distinct value — and record pairs are then scored through a
// distinct-pair memo table with a remaining-weight upper-bound early exit.
//
// Census data is dominated by small dictionaries of distinct surnames,
// addresses and occupations, so after the first δ-iteration of the linkage
// loop almost every attribute comparison is a table lookup. The engine is
// constructed so its results are bit-for-bit identical to the interpreted
// string path (linkage.SimFunc): profiles share the same rune-level cores
// as the string functions, and aggregation follows the same matcher order
// with the same skip-zero-weight rule.
package compare

import (
	"fmt"
	"sync"
	"sync/atomic"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// Matcher is the compiled form of one weighted attribute comparator. It
// mirrors linkage.AttributeMatcher without importing the linkage package
// (linkage imports compare, not the reverse).
type Matcher struct {
	Attr   census.Attribute
	Weight float64
	// Prof is the profile comparator. When nil, Sim is wrapped with
	// strsim.Memoized so the matcher still benefits from the distinct-pair
	// memo table while scoring through the string path.
	Prof *strsim.Profiled
	// Sim is the interpreted fallback used when Prof is nil.
	Sim strsim.Func
}

// CompiledDataset holds one record list compiled against a matcher set:
// per-matcher value-ID vectors plus one profile per distinct value.
type CompiledDataset struct {
	Recs     []*census.Record
	matchers []Matcher
	// ids[mi][ri] is the dictionary ID of record ri's value for matcher mi.
	ids [][]int32
	// profiles[mi][vid] is the precompiled profile of distinct value vid.
	profiles [][]strsim.Profile
	pos      map[string]int
}

// Compile interns recs against the matcher set. Matchers sharing an
// attribute share one dictionary pass; profiles are built per matcher
// because different comparators compile values differently.
func Compile(recs []*census.Record, matchers []Matcher) *CompiledDataset {
	cd := &CompiledDataset{
		Recs:     recs,
		matchers: make([]Matcher, len(matchers)),
		ids:      make([][]int32, len(matchers)),
		profiles: make([][]strsim.Profile, len(matchers)),
		pos:      make(map[string]int, len(recs)),
	}
	copy(cd.matchers, matchers)
	for mi := range cd.matchers {
		if cd.matchers[mi].Prof == nil {
			if cd.matchers[mi].Sim == nil {
				panic(fmt.Sprintf("compare: matcher %d (%v) has neither Prof nor Sim", mi, cd.matchers[mi].Attr))
			}
			cd.matchers[mi].Prof = strsim.Memoized("func", cd.matchers[mi].Sim)
		}
	}
	for i, r := range recs {
		cd.pos[r.ID] = i
	}
	// One dictionary pass per distinct attribute.
	var attrIDs [census.NumAttributes][]int32
	var attrVals [census.NumAttributes][]string
	for _, m := range cd.matchers {
		if attrIDs[m.Attr] != nil {
			continue
		}
		ids := make([]int32, len(recs))
		seen := make(map[string]int32, 64)
		vals := make([]string, 0, 64)
		for i, r := range recs {
			v := r.Value(m.Attr)
			id, ok := seen[v]
			if !ok {
				id = int32(len(vals))
				seen[v] = id
				vals = append(vals, v)
			}
			ids[i] = id
		}
		attrIDs[m.Attr] = ids
		attrVals[m.Attr] = vals
	}
	for mi, m := range cd.matchers {
		cd.ids[mi] = attrIDs[m.Attr]
		vals := attrVals[m.Attr]
		profs := make([]strsim.Profile, len(vals))
		for vi, v := range vals {
			profs[vi] = m.Prof.Build(v)
		}
		cd.profiles[mi] = profs
	}
	return cd
}

// Pos returns the index of the record with the given ID.
func (cd *CompiledDataset) Pos(id string) (int, bool) {
	i, ok := cd.pos[id]
	return i, ok
}

// DistinctValues returns the dictionary size for matcher mi, for
// diagnostics and tests.
func (cd *CompiledDataset) DistinctValues(mi int) int {
	return len(cd.profiles[mi])
}

// pruneEps guards the remaining-weight early exit against float rounding:
// a pair is pruned only when even a maximal remaining contribution leaves
// it more than pruneEps below δ, so no pair that the full sum would accept
// can ever be cut short. Attribute similarities are in [0, 1] and the
// aggregation involves at most a handful of multiply-adds, so accumulated
// error is orders of magnitude below 1e-9.
const pruneEps = 1e-9

// memoShards is the number of lock shards per matcher memo; the shard is
// picked by Fibonacci-hashing the pair key.
const memoShards = 64

type memoShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

// pairMemo memoizes distinct (old value ID, new value ID) similarities for
// one matcher. Concurrent double-computation is benign: comparators are
// pure, so racing writers store the same value.
type pairMemo struct {
	shards [memoShards]memoShard
}

func (pm *pairMemo) shard(key uint64) *memoShard {
	return &pm.shards[(key*0x9E3779B97F4A7C15)>>(64-6)]
}

// Engine scores (old record index, new record index) pairs between two
// compiled datasets. It is safe for concurrent use and is designed to live
// across all δ-iterations of a Link call so that similarities computed at a
// higher threshold are reused verbatim at relaxed ones.
type Engine struct {
	Old *CompiledDataset
	New *CompiledDataset
	// suffixW[i] is the total weight of matchers after i: the maximum
	// possible remaining contribution once matcher i has been added.
	suffixW []float64
	memos   []pairMemo

	hits   atomic.Int64
	misses atomic.Int64
	pruned atomic.Int64
}

// NewEngine pairs two datasets compiled against the same matcher set.
func NewEngine(old, new *CompiledDataset) *Engine {
	if len(old.matchers) != len(new.matchers) {
		panic(fmt.Sprintf("compare: matcher count mismatch: %d vs %d", len(old.matchers), len(new.matchers)))
	}
	for mi := range old.matchers {
		if old.matchers[mi].Attr != new.matchers[mi].Attr {
			panic(fmt.Sprintf("compare: matcher %d attribute mismatch: %v vs %v", mi, old.matchers[mi].Attr, new.matchers[mi].Attr))
		}
	}
	e := &Engine{
		Old:     old,
		New:     new,
		suffixW: make([]float64, len(old.matchers)),
		memos:   make([]pairMemo, len(old.matchers)),
	}
	for i := len(old.matchers) - 1; i >= 0; i-- {
		if i+1 < len(old.matchers) {
			e.suffixW[i] = e.suffixW[i+1] + old.matchers[i+1].Weight
		}
	}
	for mi := range e.memos {
		for si := range e.memos[mi].shards {
			e.memos[mi].shards[si].m = make(map[uint64]float64)
		}
	}
	return e
}

// attrSim returns the matcher-mi similarity of the pair through the memo
// table, computing and storing it on first sight of the value-ID pair.
func (e *Engine) attrSim(mi, oi, ni int) float64 {
	ia := e.Old.ids[mi][oi]
	ib := e.New.ids[mi][ni]
	key := uint64(uint32(ia))<<32 | uint64(uint32(ib))
	sh := e.memos[mi].shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		e.hits.Add(1)
		return v
	}
	e.misses.Add(1)
	v = e.Old.matchers[mi].Prof.Compare(&e.Old.profiles[mi][ia], &e.New.profiles[mi][ib])
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// AggSim returns the weighted aggregated similarity of old record oi and
// new record ni, bit-for-bit equal to linkage.SimFunc.AggSim on the same
// records: identical per-attribute values, identical accumulation order.
func (e *Engine) AggSim(oi, ni int) float64 {
	s := 0.0
	for mi := range e.suffixW {
		w := e.Old.matchers[mi].Weight
		if w == 0 {
			continue
		}
		s += w * e.attrSim(mi, oi, ni)
	}
	return s
}

// AggSimAtLeast returns (AggSim(oi, ni), true) when the aggregated
// similarity reaches delta. When the remaining-weight upper bound proves
// the pair cannot reach delta it stops early and returns the partial sum
// with false; the partial value must not be used as an exact similarity.
// The epsilon guard guarantees no pair whose full similarity is ≥ delta is
// ever pruned, so accepted pairs are exactly the naive path's.
func (e *Engine) AggSimAtLeast(oi, ni int, delta float64) (float64, bool) {
	s := 0.0
	for mi := range e.suffixW {
		w := e.Old.matchers[mi].Weight
		if w == 0 {
			continue
		}
		s += w * e.attrSim(mi, oi, ni)
		if s+e.suffixW[mi] < delta-pruneEps {
			e.pruned.Add(1)
			return s, false
		}
	}
	return s, s >= delta
}

// SimVector returns the per-matcher similarity vector, bit-for-bit equal
// to linkage.SimFunc.SimVector (zero-weight matchers included).
func (e *Engine) SimVector(oi, ni int) []float64 {
	out := make([]float64, len(e.suffixW))
	for mi := range out {
		out[mi] = e.attrSim(mi, oi, ni)
	}
	return out
}

// Counters returns the cumulative memo hit, miss and pruned-pair counts.
func (e *Engine) Counters() (hits, misses, pruned int64) {
	return e.hits.Load(), e.misses.Load(), e.pruned.Load()
}
