package compare

import (
	"fmt"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

func testRecords(prefix string, n int) []*census.Record {
	first := []string{"john", "mary", "William", "ann", "", "JOHN"}
	sur := []string{"smith", "smyth", "jones", "taylor", "smith"}
	addr := []string{"12 high st", "mill lane", "", "12 high street"}
	occ := []string{"weaver", "labourer", "servant", ""}
	out := make([]*census.Record, n)
	for i := range out {
		sex := census.SexMale
		if i%2 == 1 {
			sex = census.SexFemale
		}
		out[i] = &census.Record{
			ID:         fmt.Sprintf("%s-%03d", prefix, i),
			FirstName:  first[i%len(first)],
			Surname:    sur[i%len(sur)],
			Sex:        sex,
			Age:        20 + i%40,
			Address:    addr[i%len(addr)],
			Occupation: occ[i%len(occ)],
		}
	}
	return out
}

func testMatchers() []Matcher {
	return []Matcher{
		{Attr: census.AttrFirstName, Weight: 0.4, Prof: strsim.BigramProfiled, Sim: strsim.Bigram},
		{Attr: census.AttrSex, Weight: 0.2, Prof: strsim.ExactProfiled, Sim: strsim.Exact},
		{Attr: census.AttrSurname, Weight: 0.2, Prof: strsim.BigramProfiled, Sim: strsim.Bigram},
		{Attr: census.AttrAddress, Weight: 0.1, Prof: strsim.BigramProfiled, Sim: strsim.Bigram},
		{Attr: census.AttrOccupation, Weight: 0.1, Prof: strsim.BigramProfiled, Sim: strsim.Bigram},
	}
}

// naiveAggSim mirrors linkage.SimFunc.AggSim for the test matcher set.
func naiveAggSim(ms []Matcher, a, b *census.Record) float64 {
	s := 0.0
	for _, m := range ms {
		if m.Weight == 0 {
			continue
		}
		s += m.Weight * m.Sim(a.Value(m.Attr), b.Value(m.Attr))
	}
	return s
}

func TestEngineAggSimMatchesNaive(t *testing.T) {
	old := testRecords("o", 40)
	new := testRecords("n", 37)
	ms := testMatchers()
	eng := NewEngine(Compile(old, ms), Compile(new, ms))
	for oi, o := range old {
		for ni, n := range new {
			got := eng.AggSim(oi, ni)
			want := naiveAggSim(ms, o, n)
			if got != want {
				t.Fatalf("AggSim(%s, %s): compiled=%v naive=%v", o.ID, n.ID, got, want)
			}
		}
	}
	hits, misses, _ := eng.Counters()
	if misses == 0 || hits == 0 {
		t.Fatalf("expected both hits and misses over a repetitive corpus, got hits=%d misses=%d", hits, misses)
	}
	// 40×37 pairs × 5 matchers, but only a handful of distinct value pairs:
	// the memo must absorb the bulk of the lookups.
	total := hits + misses
	if float64(hits)/float64(total) < 0.9 {
		t.Fatalf("hit rate %.3f too low (hits=%d misses=%d)", float64(hits)/float64(total), hits, misses)
	}
}

func TestEngineSimVectorMatchesNaive(t *testing.T) {
	old := testRecords("o", 15)
	new := testRecords("n", 15)
	ms := testMatchers()
	ms[1].Weight = 0 // zero-weight matcher must still appear in the vector
	eng := NewEngine(Compile(old, ms), Compile(new, ms))
	for oi, o := range old {
		for ni, n := range new {
			got := eng.SimVector(oi, ni)
			for mi, m := range ms {
				want := m.Sim(o.Value(m.Attr), n.Value(m.Attr))
				if got[mi] != want {
					t.Fatalf("SimVector(%s, %s)[%d]: compiled=%v naive=%v", o.ID, n.ID, mi, got[mi], want)
				}
			}
		}
	}
}

func TestAggSimAtLeastNeverPrunesMatches(t *testing.T) {
	old := testRecords("o", 40)
	new := testRecords("n", 40)
	ms := testMatchers()
	for _, delta := range []float64{0.3, 0.5, 0.7, 0.9} {
		eng := NewEngine(Compile(old, ms), Compile(new, ms))
		for oi, o := range old {
			for ni, n := range new {
				want := naiveAggSim(ms, o, n)
				got, ok := eng.AggSimAtLeast(oi, ni, delta)
				if (want >= delta) != ok {
					t.Fatalf("AggSimAtLeast(%s, %s, %v): ok=%v but naive sim %v", o.ID, n.ID, delta, ok, want)
				}
				if ok && got != want {
					t.Fatalf("AggSimAtLeast(%s, %s, %v): accepted sim %v != naive %v", o.ID, n.ID, delta, got, want)
				}
			}
		}
		if _, _, pruned := eng.Counters(); delta >= 0.7 && pruned == 0 {
			t.Errorf("delta=%v: expected pruned comparisons on a dissimilar corpus", delta)
		}
	}
}

func TestCompileSharedDictionaries(t *testing.T) {
	recs := testRecords("r", 30)
	ms := []Matcher{
		{Attr: census.AttrSurname, Weight: 0.5, Prof: strsim.BigramProfiled, Sim: strsim.Bigram},
		{Attr: census.AttrSurname, Weight: 0.5, Prof: strsim.JaroProfiled, Sim: strsim.Jaro},
	}
	cd := Compile(recs, ms)
	if cd.DistinctValues(0) != cd.DistinctValues(1) {
		t.Fatalf("matchers over the same attribute must share a dictionary: %d vs %d",
			cd.DistinctValues(0), cd.DistinctValues(1))
	}
	if cd.DistinctValues(0) >= len(recs) {
		t.Fatalf("expected interning to dedup %d records to fewer distinct surnames, got %d",
			len(recs), cd.DistinctValues(0))
	}
	for i, r := range recs {
		if got, ok := cd.Pos(r.ID); !ok || got != i {
			t.Fatalf("Pos(%s) = %d, %v; want %d", r.ID, got, ok, i)
		}
	}
}

func TestCompileNilProfFallsBackToMemoized(t *testing.T) {
	recs := testRecords("r", 10)
	ms := []Matcher{{Attr: census.AttrSurname, Weight: 1, Sim: strsim.DamerauSim}}
	eng := NewEngine(Compile(recs, ms), Compile(recs, ms))
	for oi, o := range recs {
		for ni, n := range recs {
			if got, want := eng.AggSim(oi, ni), strsim.DamerauSim(o.Surname, n.Surname); got != want {
				t.Fatalf("fallback AggSim(%s, %s): %v != %v", o.ID, n.ID, got, want)
			}
		}
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	old := testRecords("o", 25)
	new := testRecords("n", 25)
	ms := testMatchers()
	eng := NewEngine(Compile(old, ms), Compile(new, ms))
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for oi := range old {
				for ni := range new {
					eng.AggSim(oi, ni)
					eng.AggSimAtLeast(oi, ni, 0.7)
				}
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	for oi, o := range old {
		for ni, n := range new {
			if got, want := eng.AggSim(oi, ni), naiveAggSim(ms, o, n); got != want {
				t.Fatalf("post-concurrency AggSim(%s, %s): %v != %v", o.ID, n.ID, got, want)
			}
		}
	}
}
