package census

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// contentHashVersion is bumped whenever the canonical serialization below
// changes, so hashes from different schemes can never collide silently.
const contentHashVersion = "censuslink/dataset-v1"

// contentHashCache memoizes ContentHash per *Dataset. Datasets are treated
// as immutable once loaded (the server and series pipelines already rely on
// that), so hashing each dataset once per process is sound and keeps
// repeated store lookups cheap.
var contentHashCache sync.Map // *Dataset -> string

// ContentHash returns a stable hex-encoded SHA-256 digest of the dataset's
// linkage-visible content: the census year, every record in insertion order
// with all comparable attributes plus role and household, and every
// household in insertion order with its member list. TruthID is excluded —
// linkage code never reads it, so two datasets differing only in ground
// truth produce identical linkage results and share one hash.
//
// The hash is the dataset half of the store's content address: a snapshot
// keyed by (config fingerprint, old hash, new hash) is valid exactly as
// long as both hashes still describe the loaded data.
func (d *Dataset) ContentHash() string {
	if h, ok := contentHashCache.Load(d); ok {
		return h.(string)
	}
	h := sha256.New()
	// Every field is written with %q (length-unambiguous quoting) and a
	// field-kind prefix, so no two distinct datasets serialize identically.
	fmt.Fprintf(h, "%s\nyear %d\n", contentHashVersion, d.Year)
	for _, r := range d.records {
		fmt.Fprintf(h, "r %q %q %q %q %d %q %q %q %q %q\n",
			r.ID, r.FirstName, r.Surname, r.Sex.String(), r.Age,
			r.Address, r.Occupation, r.Birthplace, string(r.Role), r.HouseholdID)
	}
	for _, hh := range d.households {
		fmt.Fprintf(h, "h %q %q", hh.ID, hh.Address)
		for _, id := range hh.MemberIDs {
			fmt.Fprintf(h, " %q", id)
		}
		fmt.Fprintf(h, "\n")
	}
	sum := hex.EncodeToString(h.Sum(nil))
	contentHashCache.Store(d, sum)
	return sum
}
