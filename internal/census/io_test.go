package census

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := buildSmallDataset(t)
	d.Record("1871_2").Age = AgeMissing
	d.Record("1871_2").TruthID = "p42"

	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, 1871)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRecords() != d.NumRecords() || got.NumHouseholds() != d.NumHouseholds() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			got.NumRecords(), got.NumHouseholds(), d.NumRecords(), d.NumHouseholds())
	}
	for _, orig := range d.Records() {
		rt := got.Record(orig.ID)
		if rt == nil {
			t.Fatalf("record %s lost", orig.ID)
		}
		if *rt != *orig {
			t.Errorf("record %s changed:\n got %+v\nwant %+v", orig.ID, rt, orig)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped dataset invalid: %v", err)
	}
}

func TestReadCSVHeaderFlexibility(t *testing.T) {
	// Reordered columns with an extra one must still parse.
	in := "surname,first_name,record_id,household_id,extra,age,sex,role\n" +
		"ashworth,john,r1,h1,x,39,m,head\n"
	d, err := ReadCSV(strings.NewReader(in), 1871)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	r := d.Record("r1")
	if r == nil || r.Surname != "ashworth" || r.FirstName != "john" || r.Age != 39 ||
		r.Sex != SexMale || r.Role != RoleHead {
		t.Errorf("parsed record wrong: %+v", r)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing required column", "record_id,first_name,surname\nr1,john,ashworth\n"},
		{"bad age", "record_id,household_id,first_name,surname,age\nr1,h1,john,ashworth,old\n"},
		{"duplicate record id", "record_id,household_id,first_name,surname\nr1,h1,a,b\nr1,h1,c,d\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), 1871); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadCSVMissingValues(t *testing.T) {
	in := "record_id,household_id,first_name,surname,sex,age,address,occupation,role,truth_id\n" +
		"r1,h1,john,ashworth,,,,,head,\n"
	d, err := ReadCSV(strings.NewReader(in), 1871)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	r := d.Record("r1")
	if r.Age != AgeMissing || r.Sex != SexUnknown || r.Address != "" || r.TruthID != "" {
		t.Errorf("missing values mishandled: %+v", r)
	}
}
