package census

import "testing"

func hashFixture(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset(1871)
	if err := d.AddHousehold(&Household{ID: "h1"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Record{
		{ID: "r1", FirstName: "john", Surname: "ashworth", Sex: SexMale, Age: 30, HouseholdID: "h1"},
		{ID: "r2", FirstName: "mary", Surname: "ashworth", Sex: SexFemale, Age: 28, HouseholdID: "h1"},
	} {
		if err := d.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestContentHashStableAndMemoized(t *testing.T) {
	d := hashFixture(t)
	h1 := d.ContentHash()
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", h1)
	}
	if h2 := d.ContentHash(); h2 != h1 {
		t.Errorf("repeated hash drifted: %s != %s", h2, h1)
	}
	// An identically built dataset hashes identically.
	if h3 := hashFixture(t).ContentHash(); h3 != h1 {
		t.Errorf("equal datasets hash differently: %s != %s", h3, h1)
	}
}

func TestContentHashSeesEveryLinkageField(t *testing.T) {
	base := hashFixture(t).ContentHash()
	mutations := map[string]func(*Dataset){
		"age":       func(d *Dataset) { d.Records()[0].Age++ },
		"name":      func(d *Dataset) { d.Records()[0].FirstName = "jon" },
		"surname":   func(d *Dataset) { d.Records()[1].Surname = "ashword" },
		"sex":       func(d *Dataset) { d.Records()[1].Sex = SexMale },
		"household": func(d *Dataset) { d.Records()[0].HouseholdID = "h2" },
	}
	for name, mutate := range mutations {
		d := hashFixture(t)
		mutate(d)
		if d.ContentHash() == base {
			t.Errorf("mutating %s did not change the content hash", name)
		}
	}
}

func TestContentHashIgnoresTruthID(t *testing.T) {
	d := hashFixture(t)
	base := d.ContentHash()
	d2 := hashFixture(t)
	d2.Records()[0].TruthID = "t42"
	// TruthID is evaluation-only; linkage never reads it, so it must not
	// invalidate snapshots.
	if d2.ContentHash() != base {
		t.Error("TruthID changed the content hash; it must not")
	}
}

func TestContentHashSeesYear(t *testing.T) {
	a, b := NewDataset(1871), NewDataset(1881)
	if a.ContentHash() == b.ContentHash() {
		t.Error("datasets of different years hash identically")
	}
}
