package census

import (
	"errors"
	"strings"
	"testing"

	"censuslink/internal/faultinject"
)

// corruptCSV carries one instance of every recoverable row issue plus four
// good rows, so tests can assert exact per-category counts.
const corruptCSV = `record_id,household_id,first_name,surname,sex,age
r1,h1,john,ashworth,m,34
,h1,noid,row,f,30
r2,h1,mary,ashworth,f,31
r2,h1,dup,id,m,8
r3,h2,peter,law,m,xx
r4,,no,household,f,20
r5,h2,anne,law,f
r9,h3,bad"quote,x,m,1
r6,h2,ok,law,m,4
`

func TestLenientLoadCountsCorruption(t *testing.T) {
	d, rep, err := ReadCSVOptions(strings.NewReader(corruptCSV), 1871, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Loaded rows: r1, r2, r5 (short row is a warning only) and r6; the
	// other five rows each carry one fatal issue.
	want := map[RowIssue]int{
		IssueEmptyRecordID:     1,
		IssueDuplicateRecordID: 1,
		IssueBadAge:            1,
		IssueEmptyHouseholdID:  1,
		IssueShortRow:          1,
		IssueMalformedRow:      1,
	}
	for issue, n := range want {
		if got := rep.Count(issue); got != n {
			t.Errorf("%s count = %d, want %d", issue, got, n)
		}
	}
	if rep.RowsSkipped != 5 {
		t.Errorf("RowsSkipped = %d, want 5", rep.RowsSkipped)
	}
	if d.NumRecords() != 4 {
		t.Errorf("records loaded = %d, want 4 (r1, r2, r5, r6)", d.NumRecords())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("lenient dataset fails Validate: %v", err)
	}
	if rep.Clean() {
		t.Error("report with issues reports Clean")
	}
	sum := rep.Summary()
	for _, frag := range []string{"bad age", "duplicate record_id", "line "} {
		if !strings.Contains(sum, frag) {
			t.Errorf("Summary missing %q:\n%s", frag, sum)
		}
	}
	if !strings.HasSuffix(sum, "\n") {
		t.Error("Summary not newline-terminated")
	}
}

func TestStrictLoadAbortsOnFirstBadRow(t *testing.T) {
	_, rep, err := ReadCSVOptions(strings.NewReader(corruptCSV), 1871, LoadOptions{Strict: true})
	if err == nil {
		t.Fatal("strict load accepted corrupt input")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "empty record_id") {
		t.Errorf("error = %v, want the first bad row (line 3, empty record_id)", err)
	}
	if rep == nil {
		t.Error("report missing alongside the strict error")
	}
}

func TestReadCSVRejectsEmptyRecordID(t *testing.T) {
	in := "record_id,household_id,first_name,surname\n,h1,a,b\n"
	if _, err := ReadCSV(strings.NewReader(in), 1871); err == nil {
		t.Fatal("ReadCSV accepted an empty record_id")
	}
}

func TestReadCSVRejectsDuplicateHeader(t *testing.T) {
	in := "record_id,household_id,first_name,surname,record_id\nr1,h1,a,b,r9\n"
	for _, opts := range []LoadOptions{{Strict: true}, {}} {
		_, _, err := ReadCSVOptions(strings.NewReader(in), 1871, opts)
		if err == nil || !strings.Contains(err.Error(), "duplicate header column") {
			t.Errorf("opts %+v: err = %v, want duplicate-header error", opts, err)
		}
	}
}

func TestMaxBadRowsCap(t *testing.T) {
	_, rep, err := ReadCSVOptions(strings.NewReader(corruptCSV), 1871, LoadOptions{MaxBadRows: 2})
	if err == nil || !strings.Contains(err.Error(), "more than 2 bad rows") {
		t.Fatalf("err = %v, want the bad-row cap to trip", err)
	}
	if rep.RowsSkipped != 3 {
		t.Errorf("RowsSkipped at abort = %d, want 3 (the row that crossed the cap)", rep.RowsSkipped)
	}
	// A cap the corruption stays under does not trip.
	if _, _, err := ReadCSVOptions(strings.NewReader(corruptCSV), 1871, LoadOptions{MaxBadRows: 5}); err != nil {
		t.Errorf("cap 5 tripped on 5 skipped rows: %v", err)
	}
}

// TestInjectedReadFailureIsFatal: a non-CSV I/O failure aborts the load in
// both modes — leniency covers data corruption, not a failing medium.
func TestInjectedReadFailureIsFatal(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("built with nofaultinject: registry compiled out")
	}
	errIO := errors.New("injected I/O failure")
	for _, opts := range []LoadOptions{{Strict: true}, {}} {
		faultinject.Set("census.read_row", faultinject.FailOnCall(1, errIO))
		_, _, err := ReadCSVOptions(strings.NewReader(corruptCSV), 1871, opts)
		faultinject.Reset()
		if !errors.Is(err, errIO) {
			t.Errorf("opts %+v: err = %v, want the injected I/O failure", opts, err)
		}
	}
}

func TestQualityReportClean(t *testing.T) {
	in := "record_id,household_id,first_name,surname\nr1,h1,a,b\n"
	_, rep, err := ReadCSVOptions(strings.NewReader(in), 1871, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("clean input produced issues: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "no data quality issues") {
		t.Errorf("clean summary = %q", rep.Summary())
	}
	if rep.RowsRead != 1 || rep.RowsLoaded != 1 || rep.RowsSkipped != 0 {
		t.Errorf("counts = %d/%d/%d, want 1/1/0", rep.RowsRead, rep.RowsLoaded, rep.RowsSkipped)
	}
}

func TestExamplesCapped(t *testing.T) {
	var b strings.Builder
	b.WriteString("record_id,household_id,first_name,surname,age\n")
	for i := 0; i < 10; i++ {
		b.WriteString("r")
		b.WriteByte(byte('0' + i))
		b.WriteString(",h1,a,b,notanumber\n")
	}
	_, rep, err := ReadCSVOptions(strings.NewReader(b.String()), 1871, LoadOptions{MaxExamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(IssueBadAge) != 10 {
		t.Errorf("bad age count = %d, want 10", rep.Count(IssueBadAge))
	}
	if got := len(rep.Examples[IssueBadAge]); got != 3 {
		t.Errorf("examples kept = %d, want 3", got)
	}
	if !strings.Contains(rep.Summary(), "...") {
		t.Error("Summary does not mark truncated examples")
	}
}
