package census

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"censuslink/internal/faultinject"
)

// csvHeader is the canonical column order for census CSV files.
var csvHeader = []string{
	"record_id", "household_id", "first_name", "surname", "sex", "age",
	"address", "occupation", "birthplace", "role", "truth_id",
}

// WriteCSV serialises a dataset to CSV with the canonical header. Records
// are written in insertion order so that round-tripping is lossless.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("census: write header: %w", err)
	}
	for _, r := range d.Records() {
		age := ""
		if r.Age != AgeMissing {
			age = strconv.Itoa(r.Age)
		}
		row := []string{
			r.ID, r.HouseholdID, r.FirstName, r.Surname, r.Sex.String(), age,
			r.Address, r.Occupation, r.Birthplace, string(r.Role), r.TruthID,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("census: write record %q: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from CSV. The year identifies the census; the
// header must match the canonical column set (order-insensitive, extra
// columns are ignored, duplicate column names are rejected). The load is
// strict: the first bad row aborts it. Use ReadCSVOptions for the lenient
// variant that skips bad rows and reports them instead.
func ReadCSV(r io.Reader, year int) (*Dataset, error) {
	d, _, err := ReadCSVOptions(r, year, LoadOptions{Strict: true})
	return d, err
}

// ReadCSVOptions parses a dataset from CSV under the given load policy.
//
// In strict mode the first bad data row aborts the load, exactly like
// ReadCSV. In lenient mode bad rows (malformed CSV, empty or duplicate
// record_id, unparsable age, empty household_id) are skipped and tallied on
// the returned DataQualityReport, so one transcription error does not sink
// the load of a million-row historical file; LoadOptions.MaxBadRows bounds
// how much corruption is tolerated. Rows shorter than the header are loaded
// but counted as warnings in both modes.
//
// The report is returned in both modes and is non-nil whenever the header
// was readable, including alongside an error; a lenient load additionally
// guarantees that the returned dataset passes Validate().
func ReadCSVOptions(r io.Reader, year int, opts LoadOptions) (*Dataset, *DataQualityReport, error) {
	maxExamples := opts.MaxExamples
	if maxExamples <= 0 {
		maxExamples = 5
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("census: read header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		key := strings.TrimSpace(strings.ToLower(name))
		if prev, dup := col[key]; dup {
			return nil, nil, fmt.Errorf("census: duplicate header column %q (columns %d and %d)", key, prev+1, i+1)
		}
		col[key] = i
	}
	for _, required := range []string{"record_id", "household_id", "first_name", "surname"} {
		if _, ok := col[required]; !ok {
			return nil, nil, fmt.Errorf("census: missing required column %q", required)
		}
	}
	field := func(row []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(row) {
			return ""
		}
		return strings.TrimSpace(row[i])
	}

	d := NewDataset(year)
	rep := newDataQualityReport(year)
	// skip tallies a fatal row issue: in strict mode it aborts the load, in
	// lenient mode it drops the row unless the bad-row cap is crossed.
	skip := func(line int, issue RowIssue, value string) error {
		if opts.Strict {
			return fmt.Errorf("census: line %d: %s (%s)", line, issue, value)
		}
		rep.note(line, issue, value, maxExamples)
		rep.RowsSkipped++
		if opts.MaxBadRows > 0 && rep.RowsSkipped > opts.MaxBadRows {
			return fmt.Errorf("census: line %d: %s: more than %d bad rows, giving up", line, issue, opts.MaxBadRows)
		}
		return nil
	}
	for line := 2; ; line++ {
		if err := faultinject.Hit("census.read_row"); err != nil {
			return nil, rep, fmt.Errorf("census: line %d: %w", line, err)
		}
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// CSV-level corruption (bad quoting) is recoverable row by row;
			// anything else is an I/O failure and always fatal.
			var pe *csv.ParseError
			if !errors.As(err, &pe) || opts.Strict {
				return nil, rep, fmt.Errorf("census: line %d: %w", line, err)
			}
			if err := skip(line, IssueMalformedRow, pe.Err.Error()); err != nil {
				return nil, rep, err
			}
			continue
		}
		rep.RowsRead++
		if len(row) < len(header) {
			// Warning only: missing trailing fields read as empty values.
			rep.note(line, IssueShortRow, fmt.Sprintf("%d of %d fields", len(row), len(header)), maxExamples)
		}
		id := field(row, "record_id")
		if id == "" {
			if err := skip(line, IssueEmptyRecordID, strings.Join(row, ",")); err != nil {
				return nil, rep, err
			}
			continue
		}
		if d.Record(id) != nil {
			if err := skip(line, IssueDuplicateRecordID, id); err != nil {
				return nil, rep, err
			}
			continue
		}
		rec := &Record{
			ID:          id,
			HouseholdID: field(row, "household_id"),
			FirstName:   field(row, "first_name"),
			Surname:     field(row, "surname"),
			Sex:         ParseSex(field(row, "sex")),
			Age:         AgeMissing,
			Address:     field(row, "address"),
			Occupation:  field(row, "occupation"),
			Birthplace:  field(row, "birthplace"),
			Role:        ParseRole(field(row, "role")),
			TruthID:     field(row, "truth_id"),
		}
		if rec.HouseholdID == "" {
			if err := skip(line, IssueEmptyHouseholdID, id); err != nil {
				return nil, rep, err
			}
			continue
		}
		if ageStr := field(row, "age"); ageStr != "" {
			age, err := strconv.Atoi(ageStr)
			if err != nil {
				if err := skip(line, IssueBadAge, ageStr); err != nil {
					return nil, rep, err
				}
				continue
			}
			rec.Age = age
		}
		if err := d.AddRecord(rec); err != nil {
			return nil, rep, fmt.Errorf("census: line %d: %w", line, err)
		}
		rep.RowsLoaded++
	}
	if !opts.Strict {
		if err := d.Validate(); err != nil {
			return nil, rep, fmt.Errorf("census: lenient load produced an invalid dataset: %w", err)
		}
	}
	return d, rep, nil
}
