package census

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csvHeader is the canonical column order for census CSV files.
var csvHeader = []string{
	"record_id", "household_id", "first_name", "surname", "sex", "age",
	"address", "occupation", "birthplace", "role", "truth_id",
}

// WriteCSV serialises a dataset to CSV with the canonical header. Records
// are written in insertion order so that round-tripping is lossless.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("census: write header: %w", err)
	}
	for _, r := range d.Records() {
		age := ""
		if r.Age != AgeMissing {
			age = strconv.Itoa(r.Age)
		}
		row := []string{
			r.ID, r.HouseholdID, r.FirstName, r.Surname, r.Sex.String(), age,
			r.Address, r.Occupation, r.Birthplace, string(r.Role), r.TruthID,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("census: write record %q: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from CSV. The year identifies the census; the
// header must match the canonical column set (order-insensitive, extra
// columns are ignored).
func ReadCSV(r io.Reader, year int) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("census: read header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[strings.TrimSpace(strings.ToLower(name))] = i
	}
	for _, required := range []string{"record_id", "household_id", "first_name", "surname"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("census: missing required column %q", required)
		}
	}
	field := func(row []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(row) {
			return ""
		}
		return strings.TrimSpace(row[i])
	}

	d := NewDataset(year)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("census: line %d: %w", line, err)
		}
		rec := &Record{
			ID:          field(row, "record_id"),
			HouseholdID: field(row, "household_id"),
			FirstName:   field(row, "first_name"),
			Surname:     field(row, "surname"),
			Sex:         ParseSex(field(row, "sex")),
			Age:         AgeMissing,
			Address:     field(row, "address"),
			Occupation:  field(row, "occupation"),
			Birthplace:  field(row, "birthplace"),
			Role:        ParseRole(field(row, "role")),
			TruthID:     field(row, "truth_id"),
		}
		if ageStr := field(row, "age"); ageStr != "" {
			age, err := strconv.Atoi(ageStr)
			if err != nil {
				return nil, fmt.Errorf("census: line %d: bad age %q: %w", line, ageStr, err)
			}
			rec.Age = age
		}
		if err := d.AddRecord(rec); err != nil {
			return nil, fmt.Errorf("census: line %d: %w", line, err)
		}
	}
	return d, nil
}
