package census

import (
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic; either a dataset or an
// error comes back, and a returned dataset must satisfy its own invariants.
func FuzzReadCSV(f *testing.F) {
	f.Add("record_id,household_id,first_name,surname\nr1,h1,john,ashworth\n")
	f.Add("record_id,household_id,first_name,surname,age\nr1,h1,a,b,12\n")
	f.Add("record_id,household_id,first_name,surname,age\nr1,h1,a,b,xx\n")
	f.Add("")
	f.Add("a,b\n1")
	f.Add("record_id,household_id,first_name,surname\n\"unclosed")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), 1871)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parsed dataset violates invariants: %v", err)
		}
	})
}
