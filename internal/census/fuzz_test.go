package census

import (
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic in either load mode; a
// returned dataset must satisfy its own invariants, and a lenient load must
// never fail on input the strict load accepted.
func FuzzReadCSV(f *testing.F) {
	f.Add("record_id,household_id,first_name,surname\nr1,h1,john,ashworth\n")
	f.Add("record_id,household_id,first_name,surname,age\nr1,h1,a,b,12\n")
	f.Add("record_id,household_id,first_name,surname,age\nr1,h1,a,b,xx\n")
	f.Add("")
	f.Add("a,b\n1")
	f.Add("record_id,household_id,first_name,surname\n\"unclosed")
	// Lenient-path seeds: duplicate header, empty and duplicate record_id,
	// short row, bad age, empty household_id.
	f.Add("record_id,record_id,household_id,first_name,surname\nr1,r1,h1,a,b\n")
	f.Add("record_id,household_id,first_name,surname\n,h1,a,b\nr1,h1,a,b\nr1,h1,c,d\n")
	f.Add("record_id,household_id,first_name,surname,age\nr1,h1\nr2,,a,b,9\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), 1871)
		if err == nil {
			if err := d.Validate(); err != nil {
				t.Fatalf("parsed dataset violates invariants: %v", err)
			}
		}
		ld, rep, lerr := ReadCSVOptions(strings.NewReader(input), 1871, LoadOptions{})
		if lerr != nil {
			if err == nil {
				t.Fatalf("lenient load failed on strict-clean input: %v", lerr)
			}
			return
		}
		if err := ld.Validate(); err != nil {
			t.Fatalf("lenient dataset violates invariants: %v", err)
		}
		// Every parsed row is either loaded or skipped; malformed rows are
		// skipped without counting as read, so skipped can exceed the gap.
		if rep.RowsLoaded > rep.RowsRead || rep.RowsLoaded+rep.RowsSkipped < rep.RowsRead {
			t.Fatalf("report inconsistent: read=%d loaded=%d skipped=%d",
				rep.RowsRead, rep.RowsLoaded, rep.RowsSkipped)
		}
	})
}
