// Package census defines the data model for historical census datasets:
// person records, households (groups of records), datasets for a single
// census year, and series of successive datasets.
//
// The model follows the problem definition of Christen et al. (EDBT 2017):
// each dataset D_i consists of a record set R_i and a group set G_i where
// every record belongs to exactly one group (household) and carries a role
// relative to the head of its household.
package census

import (
	"fmt"
	"sort"
	"strings"
)

// Sex is the recorded sex of a person.
type Sex byte

// Recognised sex values. SexUnknown models a missing value.
const (
	SexUnknown Sex = 0
	SexMale    Sex = 'm'
	SexFemale  Sex = 'f'
)

// String returns "m", "f" or "" for unknown.
func (s Sex) String() string {
	switch s {
	case SexMale:
		return "m"
	case SexFemale:
		return "f"
	default:
		return ""
	}
}

// ParseSex converts a string into a Sex. Unrecognised input maps to
// SexUnknown; parsing is case-insensitive and accepts common long forms.
func ParseSex(s string) Sex {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "m", "male":
		return SexMale
	case "f", "female":
		return SexFemale
	default:
		return SexUnknown
	}
}

// Role is the household-specific relationship of a person to the head of
// their household, as recorded on the census form.
type Role string

// Head-relative roles found in 19th-century UK census schedules.
const (
	RoleHead          Role = "head"
	RoleWife          Role = "wife"
	RoleHusband       Role = "husband"
	RoleSon           Role = "son"
	RoleDaughter      Role = "daughter"
	RoleFather        Role = "father"
	RoleMother        Role = "mother"
	RoleBrother       Role = "brother"
	RoleSister        Role = "sister"
	RoleGrandson      Role = "grandson"
	RoleGranddaughter Role = "granddaughter"
	RoleNephew        Role = "nephew"
	RoleNiece         Role = "niece"
	RoleServant       Role = "servant"
	RoleBoarder       Role = "boarder"
	RoleLodger        Role = "lodger"
	RoleVisitor       Role = "visitor"
	RoleOther         Role = "other"
)

// ParseRole normalises a role string. Unknown strings map to RoleOther.
func ParseRole(s string) Role {
	switch Role(strings.ToLower(strings.TrimSpace(s))) {
	case RoleHead, RoleWife, RoleHusband, RoleSon, RoleDaughter, RoleFather,
		RoleMother, RoleBrother, RoleSister, RoleGrandson, RoleGranddaughter,
		RoleNephew, RoleNiece, RoleServant, RoleBoarder, RoleLodger, RoleVisitor:
		return Role(strings.ToLower(strings.TrimSpace(s)))
	default:
		return RoleOther
	}
}

// IsFamily reports whether the role denotes a family relation to the head
// (as opposed to servants, boarders, lodgers and visitors).
func (r Role) IsFamily() bool {
	switch r {
	case RoleServant, RoleBoarder, RoleLodger, RoleVisitor, RoleOther:
		return false
	default:
		return true
	}
}

// AgeMissing is the sentinel value of Record.Age for a missing age.
const AgeMissing = -1

// Record is a single person entry of one census dataset.
//
// TruthID is the persistent person identifier carried through a synthetic
// series; it is the ground truth used for evaluation and is empty on real
// data. Linkage code must never read it.
type Record struct {
	ID         string
	FirstName  string
	Surname    string
	Sex        Sex
	Age        int // AgeMissing if not recorded
	Address    string
	Occupation string
	// Birthplace is the recorded place of birth — a stable attribute that
	// UK censuses carried from 1851 onwards. The paper's Table 2 does not
	// use it; this implementation offers it as an extension (see
	// linkage.OmegaTwoBirthplace).
	Birthplace  string
	Role        Role
	HouseholdID string
	TruthID     string
}

// Attribute identifies one comparable record attribute.
type Attribute int

// Comparable attributes of a Record.
const (
	AttrFirstName Attribute = iota
	AttrSurname
	AttrSex
	AttrAge
	AttrAddress
	AttrOccupation
	AttrBirthplace
	numAttributes
)

// NumAttributes is the number of defined attributes.
const NumAttributes = int(numAttributes)

// String returns the lower-case attribute name.
func (a Attribute) String() string {
	switch a {
	case AttrFirstName:
		return "first name"
	case AttrSurname:
		return "surname"
	case AttrSex:
		return "sex"
	case AttrAge:
		return "age"
	case AttrAddress:
		return "address"
	case AttrOccupation:
		return "occupation"
	case AttrBirthplace:
		return "birthplace"
	default:
		return fmt.Sprintf("attribute(%d)", int(a))
	}
}

// Value returns the string form of attribute a of record r, or "" when the
// value is missing.
func (r *Record) Value(a Attribute) string {
	switch a {
	case AttrFirstName:
		return r.FirstName
	case AttrSurname:
		return r.Surname
	case AttrSex:
		return r.Sex.String()
	case AttrAge:
		if r.Age == AgeMissing {
			return ""
		}
		return fmt.Sprintf("%d", r.Age)
	case AttrAddress:
		return r.Address
	case AttrOccupation:
		return r.Occupation
	case AttrBirthplace:
		return r.Birthplace
	default:
		return ""
	}
}

// FullName returns "first surname" in lower case, for ambiguity statistics.
func (r *Record) FullName() string {
	return strings.ToLower(r.FirstName) + " " + strings.ToLower(r.Surname)
}

// Household is a group of records living together at one census.
type Household struct {
	ID      string
	Address string
	// MemberIDs lists the record IDs of the household members in schedule
	// order (head first when known).
	MemberIDs []string
}

// Size returns the number of members.
func (h *Household) Size() int { return len(h.MemberIDs) }

// Dataset is one census: a record set R and a group (household) set G.
type Dataset struct {
	Year int

	records    []*Record
	byID       map[string]*Record
	households []*Household
	hhByID     map[string]*Household
}

// NewDataset returns an empty dataset for the given census year.
func NewDataset(year int) *Dataset {
	return &Dataset{
		Year:   year,
		byID:   make(map[string]*Record),
		hhByID: make(map[string]*Household),
	}
}

// AddHousehold registers a household. It returns an error on a duplicate ID.
func (d *Dataset) AddHousehold(h *Household) error {
	if h.ID == "" {
		return fmt.Errorf("census: household with empty ID")
	}
	if _, dup := d.hhByID[h.ID]; dup {
		return fmt.Errorf("census: duplicate household ID %q", h.ID)
	}
	d.hhByID[h.ID] = h
	d.households = append(d.households, h)
	return nil
}

// AddRecord registers a record and appends it to its household's member
// list, creating the household if it does not exist yet.
func (d *Dataset) AddRecord(r *Record) error {
	if r.ID == "" {
		return fmt.Errorf("census: record with empty ID")
	}
	if _, dup := d.byID[r.ID]; dup {
		return fmt.Errorf("census: duplicate record ID %q", r.ID)
	}
	if r.HouseholdID == "" {
		return fmt.Errorf("census: record %q has no household", r.ID)
	}
	h, ok := d.hhByID[r.HouseholdID]
	if !ok {
		h = &Household{ID: r.HouseholdID, Address: r.Address}
		if err := d.AddHousehold(h); err != nil {
			return err
		}
	}
	h.MemberIDs = append(h.MemberIDs, r.ID)
	d.byID[r.ID] = r
	d.records = append(d.records, r)
	return nil
}

// Records returns the records in insertion order. The returned slice is
// shared; callers must not modify it.
func (d *Dataset) Records() []*Record { return d.records }

// Households returns the households in insertion order. The returned slice
// is shared; callers must not modify it.
func (d *Dataset) Households() []*Household { return d.households }

// Record returns the record with the given ID, or nil.
func (d *Dataset) Record(id string) *Record { return d.byID[id] }

// Household returns the household with the given ID, or nil.
func (d *Dataset) Household(id string) *Household { return d.hhByID[id] }

// NumRecords returns |R|.
func (d *Dataset) NumRecords() int { return len(d.records) }

// NumHouseholds returns |G|.
func (d *Dataset) NumHouseholds() int { return len(d.households) }

// Members returns the member records of household h in schedule order.
func (d *Dataset) Members(h *Household) []*Record {
	out := make([]*Record, 0, len(h.MemberIDs))
	for _, id := range h.MemberIDs {
		if r := d.byID[id]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Head returns the member with RoleHead, or the first member if no head is
// recorded, or nil for an empty household.
func (d *Dataset) Head(h *Household) *Record {
	members := d.Members(h)
	for _, m := range members {
		if m.Role == RoleHead {
			return m
		}
	}
	if len(members) > 0 {
		return members[0]
	}
	return nil
}

// Validate checks structural invariants: every record belongs to exactly one
// existing household, every member ID resolves, and households partition the
// record set.
func (d *Dataset) Validate() error {
	seen := make(map[string]string, len(d.records)) // record ID -> household ID
	for _, h := range d.households {
		for _, id := range h.MemberIDs {
			r := d.byID[id]
			if r == nil {
				return fmt.Errorf("census: household %q lists unknown record %q", h.ID, id)
			}
			if r.HouseholdID != h.ID {
				return fmt.Errorf("census: record %q is listed in household %q but claims %q", id, h.ID, r.HouseholdID)
			}
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("census: record %q is a member of both %q and %q", id, prev, h.ID)
			}
			seen[id] = h.ID
		}
	}
	if len(seen) != len(d.records) {
		return fmt.Errorf("census: %d records but %d household memberships", len(d.records), len(seen))
	}
	return nil
}

// Stats are the per-dataset statistics reported in Table 1 of the paper.
type Stats struct {
	Year           int
	NumRecords     int
	NumHouseholds  int
	UniqueNames    int     // unique (first name, surname) combinations
	MissingRatio   float64 // fraction of missing attribute values
	MeanMembers    float64 // mean household size
	NameFrequency  float64 // mean records per unique name combination
	MaxHousehold   int
	MissingByAttr  map[Attribute]float64
	totalValueSlot int
}

// ComputeStats derives the Table 1 statistics for a dataset. Missing values
// are counted over the five linkage attributes plus age.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		Year:          d.Year,
		NumRecords:    len(d.records),
		NumHouseholds: len(d.households),
		MissingByAttr: make(map[Attribute]float64),
	}
	names := make(map[string]struct{}, len(d.records))
	// The missing-value ratio is computed over the six attributes of the
	// paper's setting (birthplace is an extension and excluded for Table 1
	// parity).
	attrs := []Attribute{AttrFirstName, AttrSurname, AttrSex, AttrAge, AttrAddress, AttrOccupation}
	missingTotal := 0
	missingBy := make(map[Attribute]int)
	for _, r := range d.records {
		names[r.FullName()] = struct{}{}
		for _, a := range attrs {
			if r.Value(a) == "" {
				missingTotal++
				missingBy[a]++
			}
		}
	}
	s.UniqueNames = len(names)
	total := len(d.records) * len(attrs)
	if total > 0 {
		s.MissingRatio = float64(missingTotal) / float64(total)
	}
	for _, a := range attrs {
		if len(d.records) > 0 {
			s.MissingByAttr[a] = float64(missingBy[a]) / float64(len(d.records))
		}
	}
	if len(d.households) > 0 {
		s.MeanMembers = float64(len(d.records)) / float64(len(d.households))
	}
	if s.UniqueNames > 0 {
		s.NameFrequency = float64(len(d.records)) / float64(s.UniqueNames)
	}
	for _, h := range d.households {
		if h.Size() > s.MaxHousehold {
			s.MaxHousehold = h.Size()
		}
	}
	return s
}

// Series is an ordered list of successive census datasets.
type Series struct {
	Datasets []*Dataset
}

// NewSeries builds a series, sorting the datasets by year.
func NewSeries(ds ...*Dataset) *Series {
	s := &Series{Datasets: append([]*Dataset(nil), ds...)}
	sort.Slice(s.Datasets, func(i, j int) bool { return s.Datasets[i].Year < s.Datasets[j].Year })
	return s
}

// Years lists the census years in order.
func (s *Series) Years() []int {
	ys := make([]int, len(s.Datasets))
	for i, d := range s.Datasets {
		ys[i] = d.Year
	}
	return ys
}

// Pairs returns the successive dataset pairs (D_i, D_{i+1}).
func (s *Series) Pairs() [][2]*Dataset {
	if len(s.Datasets) < 2 {
		return nil
	}
	out := make([][2]*Dataset, 0, len(s.Datasets)-1)
	for i := 0; i+1 < len(s.Datasets); i++ {
		out = append(out, [2]*Dataset{s.Datasets[i], s.Datasets[i+1]})
	}
	return out
}

// Dataset returns the dataset for the given year, or nil.
func (s *Series) Dataset(year int) *Dataset {
	for _, d := range s.Datasets {
		if d.Year == year {
			return d
		}
	}
	return nil
}
