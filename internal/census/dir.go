package census

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// seriesFile matches the canonical census CSV file name census_<year>.csv.
var seriesFile = regexp.MustCompile(`^census_(\d{4})\.csv$`)

// SeriesFileName returns the canonical file name for a census year.
func SeriesFileName(year int) string {
	return fmt.Sprintf("census_%d.csv", year)
}

// WriteSeriesDir writes every dataset of a series into dir (creating it) as
// census_<year>.csv files.
func WriteSeriesDir(dir string, s *Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("census: %w", err)
	}
	for _, d := range s.Datasets {
		path := filepath.Join(dir, SeriesFileName(d.Year))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("census: %w", err)
		}
		if err := WriteCSV(f, d); err != nil {
			f.Close()
			return fmt.Errorf("census: %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("census: %s: %w", path, err)
		}
	}
	return nil
}

// ReadSeriesDir loads every census_<year>.csv in dir into a series, sorted
// by year. Files not matching the pattern are ignored.
func ReadSeriesDir(dir string) (*Series, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var datasets []*Dataset
	for _, name := range names {
		m := seriesFile.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		year, _ := strconv.Atoi(m[1])
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("census: %w", err)
		}
		d, err := ReadCSV(f, year)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("census: %s: %w", name, err)
		}
		datasets = append(datasets, d)
	}
	if len(datasets) == 0 {
		return nil, fmt.Errorf("census: no census_<year>.csv files in %s", dir)
	}
	return NewSeries(datasets...), nil
}
