package census

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// seriesFile matches the canonical census CSV file name census_<year>.csv.
var seriesFile = regexp.MustCompile(`^census_(\d{4})\.csv$`)

// SeriesFileName returns the canonical file name for a census year.
func SeriesFileName(year int) string {
	return fmt.Sprintf("census_%d.csv", year)
}

// WriteSeriesDir writes every dataset of a series into dir (creating it) as
// census_<year>.csv files.
func WriteSeriesDir(dir string, s *Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("census: %w", err)
	}
	for _, d := range s.Datasets {
		path := filepath.Join(dir, SeriesFileName(d.Year))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("census: %w", err)
		}
		if err := WriteCSV(f, d); err != nil {
			f.Close()
			return fmt.Errorf("census: %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("census: %s: %w", path, err)
		}
	}
	return nil
}

// ReadSeriesDir loads every census_<year>.csv in dir into a series, sorted
// by year. Files not matching the pattern are ignored; two files resolving
// to the same census year are an error (a series must have one dataset per
// year). The load is strict, like ReadCSV.
func ReadSeriesDir(dir string) (*Series, error) {
	s, _, err := ReadSeriesDirOptions(dir, LoadOptions{Strict: true})
	return s, err
}

// ReadSeriesDirOptions is ReadSeriesDir under an explicit load policy (see
// ReadCSVOptions). It additionally returns one DataQualityReport per loaded
// file, in year order.
func ReadSeriesDirOptions(dir string, opts LoadOptions) (*Series, []*DataQualityReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("census: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return readSeriesFiles(dir, names, opts)
}

// readSeriesFiles loads the named series files from dir, rejecting
// duplicate years instead of silently stacking two datasets of the same
// census into the series.
func readSeriesFiles(dir string, names []string, opts LoadOptions) (*Series, []*DataQualityReport, error) {
	var datasets []*Dataset
	var reports []*DataQualityReport
	fileByYear := make(map[int]string)
	for _, name := range names {
		m := seriesFile.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		year, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, nil, fmt.Errorf("census: %s: bad year: %w", name, err)
		}
		if prev, dup := fileByYear[year]; dup {
			return nil, nil, fmt.Errorf("census: duplicate census year %d (%s and %s)", year, prev, name)
		}
		fileByYear[year] = name
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("census: %w", err)
		}
		d, rep, err := ReadCSVOptions(f, year, opts)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("census: %s: %w", name, err)
		}
		datasets = append(datasets, d)
		reports = append(reports, rep)
	}
	if len(datasets) == 0 {
		return nil, nil, fmt.Errorf("census: no census_<year>.csv files in %s", dir)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Year < reports[j].Year })
	return NewSeries(datasets...), reports, nil
}
