package census

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSeriesDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1 := buildSmallDataset(t)
	d2 := NewDataset(1881)
	if err := d2.AddRecord(&Record{ID: "r", HouseholdID: "h", FirstName: "x", Surname: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesDir(dir, NewSeries(d1, d2)); err != nil {
		t.Fatal(err)
	}
	// An unrelated file must be ignored on read.
	if err := os.WriteFile(filepath.Join(dir, "truth.csv"), []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Datasets) != 2 {
		t.Fatalf("datasets = %d", len(got.Datasets))
	}
	if got.Dataset(1871).NumRecords() != d1.NumRecords() {
		t.Error("1871 record count changed")
	}
	if got.Dataset(1881).NumRecords() != 1 {
		t.Error("1881 record count changed")
	}
}

func TestReadSeriesDirErrors(t *testing.T) {
	if _, err := ReadSeriesDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing directory accepted")
	}
	empty := t.TempDir()
	if _, err := ReadSeriesDir(empty); err == nil {
		t.Error("directory without census files accepted")
	}
	// A malformed census file must fail loudly.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "census_1871.csv"), []byte("nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSeriesDir(bad); err == nil {
		t.Error("malformed census file accepted")
	}
}

func TestSeriesFileName(t *testing.T) {
	if got := SeriesFileName(1871); got != "census_1871.csv" {
		t.Errorf("SeriesFileName = %q", got)
	}
}
