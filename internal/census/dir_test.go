package census

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSeriesDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1 := buildSmallDataset(t)
	d2 := NewDataset(1881)
	if err := d2.AddRecord(&Record{ID: "r", HouseholdID: "h", FirstName: "x", Surname: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesDir(dir, NewSeries(d1, d2)); err != nil {
		t.Fatal(err)
	}
	// An unrelated file must be ignored on read.
	if err := os.WriteFile(filepath.Join(dir, "truth.csv"), []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Datasets) != 2 {
		t.Fatalf("datasets = %d", len(got.Datasets))
	}
	if got.Dataset(1871).NumRecords() != d1.NumRecords() {
		t.Error("1871 record count changed")
	}
	if got.Dataset(1881).NumRecords() != 1 {
		t.Error("1881 record count changed")
	}
}

func TestReadSeriesDirErrors(t *testing.T) {
	if _, err := ReadSeriesDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing directory accepted")
	}
	empty := t.TempDir()
	if _, err := ReadSeriesDir(empty); err == nil {
		t.Error("directory without census files accepted")
	}
	// A malformed census file must fail loudly.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "census_1871.csv"), []byte("nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSeriesDir(bad); err == nil {
		t.Error("malformed census file accepted")
	}
}

func TestSeriesFileName(t *testing.T) {
	if got := SeriesFileName(1871); got != "census_1871.csv" {
		t.Errorf("SeriesFileName = %q", got)
	}
}

// TestReadSeriesFilesDuplicateYear drives the loader with an explicit name
// list (os.ReadDir cannot produce two identical names) and checks that two
// files resolving to the same census year are rejected instead of silently
// stacking two datasets of one census.
func TestReadSeriesFilesDuplicateYear(t *testing.T) {
	dir := t.TempDir()
	d := NewDataset(1871)
	if err := d.AddRecord(&Record{ID: "r", HouseholdID: "h", FirstName: "x", Surname: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesDir(dir, NewSeries(d)); err != nil {
		t.Fatal(err)
	}
	names := []string{"census_1871.csv", "census_1871.csv"}
	_, _, err := readSeriesFiles(dir, names, LoadOptions{Strict: true})
	if err == nil || !strings.Contains(err.Error(), "duplicate census year 1871") {
		t.Errorf("err = %v, want a duplicate-year error", err)
	}
}

// TestReadSeriesDirLenient: the per-file quality reports come back in year
// order and reflect the corruption of each file.
func TestReadSeriesDirLenient(t *testing.T) {
	dir := t.TempDir()
	good := "record_id,household_id,first_name,surname\nr1,h1,a,b\n"
	bad := "record_id,household_id,first_name,surname,age\nr1,h1,a,b,xx\nr2,h1,c,d,9\n"
	if err := os.WriteFile(filepath.Join(dir, "census_1881.csv"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "census_1871.csv"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	s, reps, err := ReadSeriesDirOptions(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Datasets) != 2 || len(reps) != 2 {
		t.Fatalf("datasets = %d, reports = %d", len(s.Datasets), len(reps))
	}
	if reps[0].Year != 1871 || reps[1].Year != 1881 {
		t.Errorf("report years = %d, %d, want 1871, 1881", reps[0].Year, reps[1].Year)
	}
	if !reps[0].Clean() {
		t.Errorf("1871 report not clean: %s", reps[0].Summary())
	}
	if reps[1].Count(IssueBadAge) != 1 {
		t.Errorf("1881 bad-age count = %d, want 1", reps[1].Count(IssueBadAge))
	}
	if s.Dataset(1881).NumRecords() != 1 {
		t.Errorf("1881 records = %d, want 1", s.Dataset(1881).NumRecords())
	}
	// Strict mode still fails on the corrupt file.
	if _, err := ReadSeriesDir(dir); err == nil {
		t.Error("strict series load accepted a corrupt file")
	}
}
