package census

import (
	"strings"
	"testing"
)

func TestParseSex(t *testing.T) {
	cases := []struct {
		in   string
		want Sex
	}{
		{"m", SexMale}, {"M", SexMale}, {"male", SexMale}, {" Male ", SexMale},
		{"f", SexFemale}, {"F", SexFemale}, {"female", SexFemale},
		{"", SexUnknown}, {"x", SexUnknown}, {"unknown", SexUnknown},
	}
	for _, c := range cases {
		if got := ParseSex(c.in); got != c.want {
			t.Errorf("ParseSex(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSexString(t *testing.T) {
	if SexMale.String() != "m" || SexFemale.String() != "f" || SexUnknown.String() != "" {
		t.Errorf("Sex.String mismatch: %q %q %q", SexMale, SexFemale, SexUnknown)
	}
}

func TestParseRole(t *testing.T) {
	if ParseRole("Head") != RoleHead {
		t.Errorf("ParseRole(Head) = %v", ParseRole("Head"))
	}
	if ParseRole(" daughter ") != RoleDaughter {
		t.Errorf("ParseRole(daughter) = %v", ParseRole(" daughter "))
	}
	if ParseRole("stranger") != RoleOther {
		t.Errorf("ParseRole(stranger) = %v", ParseRole("stranger"))
	}
	if ParseRole("") != RoleOther {
		t.Errorf("ParseRole(empty) = %v", ParseRole(""))
	}
}

func TestRoleIsFamily(t *testing.T) {
	family := []Role{RoleHead, RoleWife, RoleSon, RoleDaughter, RoleMother, RoleGrandson, RoleNiece}
	for _, r := range family {
		if !r.IsFamily() {
			t.Errorf("%v.IsFamily() = false, want true", r)
		}
	}
	nonFamily := []Role{RoleServant, RoleBoarder, RoleLodger, RoleVisitor, RoleOther}
	for _, r := range nonFamily {
		if r.IsFamily() {
			t.Errorf("%v.IsFamily() = true, want false", r)
		}
	}
}

func TestRecordValue(t *testing.T) {
	r := &Record{
		FirstName: "John", Surname: "Ashworth", Sex: SexMale, Age: 39,
		Address: "1 Mill Lane", Occupation: "weaver",
	}
	cases := []struct {
		attr Attribute
		want string
	}{
		{AttrFirstName, "John"},
		{AttrSurname, "Ashworth"},
		{AttrSex, "m"},
		{AttrAge, "39"},
		{AttrAddress, "1 Mill Lane"},
		{AttrOccupation, "weaver"},
	}
	for _, c := range cases {
		if got := r.Value(c.attr); got != c.want {
			t.Errorf("Value(%v) = %q, want %q", c.attr, got, c.want)
		}
	}
	r.Age = AgeMissing
	if got := r.Value(AttrAge); got != "" {
		t.Errorf("Value(age missing) = %q, want empty", got)
	}
}

func TestAttributeString(t *testing.T) {
	if AttrFirstName.String() != "first name" || AttrOccupation.String() != "occupation" {
		t.Error("attribute names changed")
	}
	if !strings.Contains(Attribute(99).String(), "99") {
		t.Error("unknown attribute should include its number")
	}
}

func TestFullName(t *testing.T) {
	r := &Record{FirstName: "John", Surname: "ASHWORTH"}
	if got := r.FullName(); got != "john ashworth" {
		t.Errorf("FullName = %q", got)
	}
}

// buildSmallDataset creates a two-household dataset used by several tests.
func buildSmallDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset(1871)
	recs := []*Record{
		{ID: "1871_1", HouseholdID: "a", FirstName: "john", Surname: "ashworth", Sex: SexMale, Age: 39, Role: RoleHead, Address: "mill lane"},
		{ID: "1871_2", HouseholdID: "a", FirstName: "elizabeth", Surname: "ashworth", Sex: SexFemale, Age: 37, Role: RoleWife, Address: "mill lane"},
		{ID: "1871_3", HouseholdID: "a", FirstName: "alice", Surname: "ashworth", Sex: SexFemale, Age: 8, Role: RoleDaughter, Address: "mill lane"},
		{ID: "1871_6", HouseholdID: "b", FirstName: "john", Surname: "smith", Sex: SexMale, Age: 44, Role: RoleHead, Address: "bury rd"},
		{ID: "1871_7", HouseholdID: "b", FirstName: "elizabeth", Surname: "smith", Sex: SexFemale, Age: 41, Role: RoleWife, Address: "bury rd"},
	}
	for _, r := range recs {
		if err := d.AddRecord(r); err != nil {
			t.Fatalf("AddRecord(%s): %v", r.ID, err)
		}
	}
	return d
}

func TestDatasetAccessors(t *testing.T) {
	d := buildSmallDataset(t)
	if d.NumRecords() != 5 {
		t.Fatalf("NumRecords = %d, want 5", d.NumRecords())
	}
	if d.NumHouseholds() != 2 {
		t.Fatalf("NumHouseholds = %d, want 2", d.NumHouseholds())
	}
	if d.Record("1871_3") == nil || d.Record("1871_3").FirstName != "alice" {
		t.Error("Record lookup failed")
	}
	if d.Record("nope") != nil {
		t.Error("Record of unknown ID should be nil")
	}
	h := d.Household("a")
	if h == nil || h.Size() != 3 {
		t.Fatalf("Household(a) size = %v", h)
	}
	members := d.Members(h)
	if len(members) != 3 || members[0].ID != "1871_1" {
		t.Errorf("Members order wrong: %v", members)
	}
	head := d.Head(h)
	if head == nil || head.ID != "1871_1" {
		t.Errorf("Head = %v", head)
	}
}

func TestHeadFallsBackToFirstMember(t *testing.T) {
	d := NewDataset(1871)
	if err := d.AddRecord(&Record{ID: "r1", HouseholdID: "h", FirstName: "a", Surname: "b", Role: RoleWife}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRecord(&Record{ID: "r2", HouseholdID: "h", FirstName: "c", Surname: "d", Role: RoleSon}); err != nil {
		t.Fatal(err)
	}
	if head := d.Head(d.Household("h")); head == nil || head.ID != "r1" {
		t.Errorf("Head fallback = %v", head)
	}
}

func TestAddRecordErrors(t *testing.T) {
	d := NewDataset(1871)
	if err := d.AddRecord(&Record{ID: "", HouseholdID: "h"}); err == nil {
		t.Error("empty record ID accepted")
	}
	if err := d.AddRecord(&Record{ID: "r1", HouseholdID: ""}); err == nil {
		t.Error("empty household ID accepted")
	}
	if err := d.AddRecord(&Record{ID: "r1", HouseholdID: "h"}); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if err := d.AddRecord(&Record{ID: "r1", HouseholdID: "h"}); err == nil {
		t.Error("duplicate record ID accepted")
	}
}

func TestAddHouseholdErrors(t *testing.T) {
	d := NewDataset(1871)
	if err := d.AddHousehold(&Household{ID: ""}); err == nil {
		t.Error("empty household ID accepted")
	}
	if err := d.AddHousehold(&Household{ID: "h"}); err != nil {
		t.Fatalf("valid household rejected: %v", err)
	}
	if err := d.AddHousehold(&Household{ID: "h"}); err == nil {
		t.Error("duplicate household ID accepted")
	}
}

func TestValidate(t *testing.T) {
	d := buildSmallDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate on good dataset: %v", err)
	}
	// Corrupt: member of two households.
	d.Household("b").MemberIDs = append(d.Household("b").MemberIDs, "1871_1")
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted record in two households")
	}
}

func TestValidateUnknownMember(t *testing.T) {
	d := NewDataset(1871)
	if err := d.AddHousehold(&Household{ID: "h", MemberIDs: []string{"ghost"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted unknown member ID")
	}
}

func TestComputeStats(t *testing.T) {
	d := buildSmallDataset(t)
	// Introduce one missing value (occupation is already empty on all 5
	// records; clear one age too).
	d.Record("1871_7").Age = AgeMissing
	s := d.ComputeStats()
	if s.NumRecords != 5 || s.NumHouseholds != 2 {
		t.Fatalf("stats counts: %+v", s)
	}
	// john ashworth, elizabeth ashworth, alice ashworth, john smith,
	// elizabeth smith -> 5 unique combos.
	if s.UniqueNames != 5 {
		t.Errorf("UniqueNames = %d, want 5", s.UniqueNames)
	}
	if s.MeanMembers != 2.5 {
		t.Errorf("MeanMembers = %v, want 2.5", s.MeanMembers)
	}
	// Missing: 5 occupations + 1 age = 6 of 30 slots.
	if got, want := s.MissingRatio, 6.0/30.0; got != want {
		t.Errorf("MissingRatio = %v, want %v", got, want)
	}
	if s.MaxHousehold != 3 {
		t.Errorf("MaxHousehold = %d, want 3", s.MaxHousehold)
	}
	if s.NameFrequency != 1.0 {
		t.Errorf("NameFrequency = %v, want 1", s.NameFrequency)
	}
}

func TestSeries(t *testing.T) {
	d1 := NewDataset(1881)
	d2 := NewDataset(1871)
	d3 := NewDataset(1891)
	s := NewSeries(d1, d2, d3)
	years := s.Years()
	if len(years) != 3 || years[0] != 1871 || years[1] != 1881 || years[2] != 1891 {
		t.Fatalf("Years = %v", years)
	}
	pairs := s.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("Pairs = %d", len(pairs))
	}
	if pairs[0][0].Year != 1871 || pairs[0][1].Year != 1881 || pairs[1][1].Year != 1891 {
		t.Errorf("pair order wrong")
	}
	if s.Dataset(1881) != d1 || s.Dataset(1900) != nil {
		t.Error("Series.Dataset lookup wrong")
	}
	if NewSeries(d1).Pairs() != nil {
		t.Error("single-dataset series should have no pairs")
	}
}
