package census

import (
	"fmt"
	"strings"
)

// RowIssue categorises one way a census CSV data row can be bad. The
// categories drive the DataQualityReport of a lenient load (LoadOptions)
// and mirror the corruption found in transcribed historical census data:
// unparsable ages, missing or repeated identifiers, truncated rows.
type RowIssue int

const (
	// IssueMalformedRow is a CSV-level parse error (bad quoting). The row
	// cannot be recovered and is skipped in lenient mode.
	IssueMalformedRow RowIssue = iota
	// IssueShortRow is a row with fewer fields than the header. It is
	// counted as a warning but still loaded when its required fields are
	// present (missing trailing fields read as empty values).
	IssueShortRow
	// IssueEmptyRecordID is a row without a record_id.
	IssueEmptyRecordID
	// IssueDuplicateRecordID is a row whose record_id was already loaded.
	IssueDuplicateRecordID
	// IssueBadAge is a row whose age field is not an integer.
	IssueBadAge
	// IssueEmptyHouseholdID is a row without a household_id.
	IssueEmptyHouseholdID
	numIssues
)

// String names the issue category.
func (i RowIssue) String() string {
	switch i {
	case IssueMalformedRow:
		return "malformed row"
	case IssueShortRow:
		return "short row"
	case IssueEmptyRecordID:
		return "empty record_id"
	case IssueDuplicateRecordID:
		return "duplicate record_id"
	case IssueBadAge:
		return "bad age"
	case IssueEmptyHouseholdID:
		return "empty household_id"
	default:
		return fmt.Sprintf("issue(%d)", int(i))
	}
}

// Issues lists every category in rendering order.
func Issues() []RowIssue {
	out := make([]RowIssue, numIssues)
	for i := range out {
		out[i] = RowIssue(i)
	}
	return out
}

// RowExample locates one instance of an issue for the report.
type RowExample struct {
	// Line is the 1-based CSV row ordinal in the input (the header is
	// line 1).
	Line int
	// Value is the offending value or a short snippet of the row.
	Value string
}

// LoadOptions configures how ReadCSVOptions treats bad data rows.
// The zero value is the lenient default; ReadCSV uses Strict.
type LoadOptions struct {
	// Strict aborts the load on the first bad row (the ReadCSV default).
	// When false, bad rows are skipped and tallied on the returned
	// DataQualityReport instead.
	Strict bool
	// MaxBadRows caps how many rows a lenient load may skip before it
	// gives up; crossing the cap aborts with an error so a wholly corrupt
	// file is not silently reduced to a sliver. <= 0 means no cap.
	MaxBadRows int
	// MaxExamples bounds the per-category examples kept on the report
	// (default 5).
	MaxExamples int
}

// DataQualityReport tallies, per issue category, the bad rows a load
// encountered, with the first few examples of each. Strict loads fill it
// too (for the warning-only IssueShortRow category) up to the point of the
// first fatal row.
type DataQualityReport struct {
	Year int
	// RowsRead counts the data rows the reader could parse at CSV level
	// (excluding the header); RowsLoaded of them became records and
	// RowsSkipped were dropped by the lenient policy.
	RowsRead    int
	RowsLoaded  int
	RowsSkipped int
	Counts      map[RowIssue]int
	Examples    map[RowIssue][]RowExample
}

func newDataQualityReport(year int) *DataQualityReport {
	return &DataQualityReport{
		Year:     year,
		Counts:   make(map[RowIssue]int),
		Examples: make(map[RowIssue][]RowExample),
	}
}

// note tallies one issue instance, keeping at most maxExamples examples.
func (r *DataQualityReport) note(line int, issue RowIssue, value string, maxExamples int) {
	r.Counts[issue]++
	if len(r.Examples[issue]) < maxExamples {
		r.Examples[issue] = append(r.Examples[issue], RowExample{Line: line, Value: value})
	}
}

// Count returns the tally of one issue category.
func (r *DataQualityReport) Count(issue RowIssue) int { return r.Counts[issue] }

// Clean reports whether the load saw no issues at all (not even warnings).
func (r *DataQualityReport) Clean() bool {
	for _, n := range r.Counts {
		if n > 0 {
			return false
		}
	}
	return true
}

// Summary renders the report as one human-readable line per non-empty
// category, terminated by a newline, or "no data quality issues" when clean.
func (r *DataQualityReport) Summary() string {
	if r.Clean() {
		return fmt.Sprintf("census %d: no data quality issues (%d rows)\n", r.Year, r.RowsLoaded)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "census %d: %d rows read, %d loaded, %d skipped", r.Year, r.RowsRead, r.RowsLoaded, r.RowsSkipped)
	for _, issue := range Issues() {
		n := r.Counts[issue]
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  %s: %d", issue, n)
		for i, ex := range r.Examples[issue] {
			if i > 0 {
				b.WriteString(";")
			}
			fmt.Fprintf(&b, " line %d (%s)", ex.Line, ex.Value)
		}
		if n > len(r.Examples[issue]) {
			fmt.Fprintf(&b, "; ...")
		}
	}
	b.WriteString("\n")
	return b.String()
}
