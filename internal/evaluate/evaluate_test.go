package evaluate

import (
	"fmt"
	"math"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

func TestComputeMetrics(t *testing.T) {
	m := Compute(8, 2, 4)
	if math.Abs(m.Precision-0.8) > 1e-9 {
		t.Errorf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-8.0/12.0) > 1e-9 {
		t.Errorf("recall = %v", m.Recall)
	}
	wantF := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if math.Abs(m.F1-wantF) > 1e-9 {
		t.Errorf("f1 = %v, want %v", m.F1, wantF)
	}
	zero := Compute(0, 0, 0)
	if zero.Precision != 0 || zero.Recall != 0 || zero.F1 != 0 {
		t.Errorf("zero counts must yield zero metrics: %+v", zero)
	}
}

// truthFixture returns the running-example datasets with TruthIDs assigned
// according to the paper's true mapping.
func truthFixture(t *testing.T) (*census.Dataset, *census.Dataset) {
	t.Helper()
	old, new := paperexample.Old(), paperexample.New()
	i := 0
	for oldID, newID := range paperexample.TrueRecordMapping() {
		i++
		id := fmt.Sprintf("t%d", i)
		old.Record(oldID).TruthID = id
		new.Record(newID).TruthID = id
	}
	n := 0
	for _, r := range old.Records() {
		if r.TruthID == "" {
			n++
			r.TruthID = fmt.Sprintf("u%d", n)
		}
	}
	for _, r := range new.Records() {
		if r.TruthID == "" {
			n++
			r.TruthID = fmt.Sprintf("u%d", n)
		}
	}
	return old, new
}

func TestTrueRecordMapping(t *testing.T) {
	old, new := truthFixture(t)
	truth := TrueRecordMapping(old, new)
	if len(truth) != 7 {
		t.Fatalf("truth pairs = %d, want 7", len(truth))
	}
	for oldID, newID := range paperexample.TrueRecordMapping() {
		if !truth[linkage.Pair{Old: oldID, New: newID}] {
			t.Errorf("missing truth pair %s -> %s", oldID, newID)
		}
	}
}

func TestTrueGroupMapping(t *testing.T) {
	old, new := truthFixture(t)
	truth := TrueGroupMapping(old, new)
	if len(truth) != 4 {
		t.Fatalf("group truth = %v, want 4 pairs", truth)
	}
	for _, g := range paperexample.TrueGroupMapping() {
		if !truth[linkage.GroupPair{Old: g[0], New: g[1]}] {
			t.Errorf("missing group truth %v", g)
		}
	}
}

func TestRecordMetricsPerfect(t *testing.T) {
	old, new := truthFixture(t)
	truth := TrueRecordMapping(old, new)
	var pred []linkage.RecordLink
	for p := range truth {
		pred = append(pred, linkage.RecordLink{Old: p.Old, New: p.New, Sim: 1})
	}
	m := RecordMetrics(pred, truth)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect prediction scored %+v", m)
	}
}

func TestRecordMetricsMixed(t *testing.T) {
	old, new := truthFixture(t)
	truth := TrueRecordMapping(old, new)
	pred := []linkage.RecordLink{
		{Old: "1871_1", New: "1881_1"}, // TP
		{Old: "1871_2", New: "1881_2"}, // TP
		{Old: "1871_1", New: "1881_1"}, // duplicate: counted once
		{Old: "1871_5", New: "1881_9"}, // FP (Riley died)
	}
	m := RecordMetrics(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.FN != 5 {
		t.Errorf("counts = %+v", m)
	}
}

func TestGroupMetricsMixed(t *testing.T) {
	old, new := truthFixture(t)
	truth := TrueGroupMapping(old, new)
	pred := []linkage.GroupLink{
		{Old: "1871_a", New: "1881_a"}, // TP
		{Old: "1871_a", New: "1881_d"}, // FP
	}
	m := GroupMetrics(pred, truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 3 {
		t.Errorf("counts = %+v", m)
	}
}

func TestEvaluateResult(t *testing.T) {
	old, new := truthFixture(t)
	res := &linkage.Result{
		RecordLinks: []linkage.RecordLink{{Old: "1871_1", New: "1881_1"}},
		GroupLinks:  []linkage.GroupLink{{Old: "1871_a", New: "1881_a"}},
	}
	rm, gm := EvaluateResult(res, old, new)
	if rm.TP != 1 || rm.FP != 0 || gm.TP != 1 || gm.FP != 0 {
		t.Errorf("rm=%+v gm=%+v", rm, gm)
	}
}

func TestSampleReferenceHouseholds(t *testing.T) {
	old, _ := truthFixture(t)
	all := SampleReferenceHouseholds(old, 1.0, 1)
	if len(all) != old.NumHouseholds() {
		t.Errorf("fraction 1.0 sampled %d of %d", len(all), old.NumHouseholds())
	}
	half := SampleReferenceHouseholds(old, 0.5, 1)
	if len(half) != 1 {
		t.Errorf("fraction 0.5 of 2 households sampled %d", len(half))
	}
	again := SampleReferenceHouseholds(old, 0.5, 1)
	for id := range half {
		if !again[id] {
			t.Error("sampling not deterministic for equal seeds")
		}
	}
	if len(SampleReferenceHouseholds(old, 0, 1)) != 0 {
		t.Error("fraction 0 should sample nothing")
	}
	if len(SampleReferenceHouseholds(old, 0.0001, 1)) != 1 {
		t.Error("tiny positive fraction should sample at least one household")
	}
}

func TestRestriction(t *testing.T) {
	old, new := truthFixture(t)
	sample := map[string]bool{"1871_a": true}
	truth := RestrictRecordTruth(TrueRecordMapping(old, new), old, sample)
	// Household a of 1871 has 4 surviving members (John, Elizabeth, Alice,
	// William); Riley died.
	if len(truth) != 4 {
		t.Errorf("restricted record truth = %d, want 4", len(truth))
	}
	groupTruth := RestrictGroupTruth(TrueGroupMapping(old, new), sample)
	if len(groupTruth) != 2 { // (a,a) and (a,c)
		t.Errorf("restricted group truth = %d, want 2", len(groupTruth))
	}
	links := []linkage.RecordLink{
		{Old: "1871_1", New: "1881_1"},
		{Old: "1871_6", New: "1881_4"}, // household b: filtered out
	}
	if got := RestrictRecordLinks(links, old, sample); len(got) != 1 {
		t.Errorf("restricted links = %v", got)
	}
	glinks := []linkage.GroupLink{
		{Old: "1871_a", New: "1881_a"},
		{Old: "1871_b", New: "1881_b"},
	}
	if got := RestrictGroupLinks(glinks, sample); len(got) != 1 || got[0].Old != "1871_a" {
		t.Errorf("restricted group links = %v", got)
	}
}

func TestMatchedHouseholds(t *testing.T) {
	old, new := truthFixture(t)
	matched := MatchedHouseholds(old, new)
	// Both 1871 households contain at least one person found in 1881.
	if len(matched) != 2 || !matched["1871_a"] || !matched["1871_b"] {
		t.Errorf("matched households = %v", matched)
	}
	// Remove household b's links: only a remains matched.
	for _, id := range []string{"1871_6", "1871_7", "1871_8"} {
		old.Record(id).TruthID = "gone_" + id
	}
	matched = MatchedHouseholds(old, new)
	if len(matched) != 1 || !matched["1871_a"] {
		t.Errorf("matched households after unlinking b = %v", matched)
	}
}
