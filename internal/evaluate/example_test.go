package evaluate_test

import (
	"fmt"

	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// ExampleRecordMetrics scores a predicted record mapping against ground
// truth derived from persistent person identifiers.
func ExampleRecordMetrics() {
	old, new := paperexample.Old(), paperexample.New()
	// Assign truth IDs for the running example's seven true links.
	i := 0
	for oldID, newID := range paperexample.TrueRecordMapping() {
		i++
		old.Record(oldID).TruthID = fmt.Sprintf("p%d", i)
		new.Record(newID).TruthID = fmt.Sprintf("p%d", i)
	}
	truth := evaluate.TrueRecordMapping(old, new)

	pred := []linkage.RecordLink{
		{Old: "1871_1", New: "1881_1"}, // correct
		{Old: "1871_2", New: "1881_2"}, // correct
		{Old: "1871_5", New: "1881_9"}, // wrong: John Riley died
	}
	m := evaluate.RecordMetrics(pred, truth)
	fmt.Printf("P=%.2f R=%.2f F=%.2f\n", m.Precision, m.Recall, m.F1)
	// Output:
	// P=0.67 R=0.29 F=0.40
}
