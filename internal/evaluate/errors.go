package evaluate

import (
	"strings"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
)

// ErrorCause classifies why a true link was missed (false negative).
type ErrorCause int

// Causes, tested in order; the first that applies wins.
const (
	// CauseMissingName: the first name or surname is blank on either side.
	CauseMissingName ErrorCause = iota
	// CauseSurnameChanged: the surnames differ outright (e.g. marriage).
	CauseSurnameChanged
	// CauseFirstNameVariant: the first names differ outright (nickname or
	// heavy typo).
	CauseFirstNameVariant
	// CauseNameTypo: names agree only approximately (small typos).
	CauseNameTypo
	// CauseMovedHousehold: names agree but the person changed household
	// context (address differs), defeating context-based matching.
	CauseMovedHousehold
	// CauseOther: none of the above.
	CauseOther
	numCauses
)

// String names the cause.
func (c ErrorCause) String() string {
	switch c {
	case CauseMissingName:
		return "missing name"
	case CauseSurnameChanged:
		return "surname changed"
	case CauseFirstNameVariant:
		return "first-name variant"
	case CauseNameTypo:
		return "name typo"
	case CauseMovedHousehold:
		return "moved household"
	default:
		return "other"
	}
}

// Breakdown counts false negatives by cause and false positives in total —
// an error analysis of a record mapping against the truth, showing *why*
// links were missed (the failure surfaces the paper attributes to changed
// and erroneous attribute values).
type Breakdown struct {
	FalseNegatives map[ErrorCause]int
	FalsePositives int
	TruePositives  int
}

// classify determines the first applicable cause for a missed pair.
func classify(o, n *census.Record) ErrorCause {
	ofn := strings.ToLower(strings.TrimSpace(o.FirstName))
	nfn := strings.ToLower(strings.TrimSpace(n.FirstName))
	osn := strings.ToLower(strings.TrimSpace(o.Surname))
	nsn := strings.ToLower(strings.TrimSpace(n.Surname))
	switch {
	case ofn == "" || nfn == "" || osn == "" || nsn == "":
		return CauseMissingName
	case osn != nsn && !approxEqual(osn, nsn):
		return CauseSurnameChanged
	case ofn != nfn && !approxEqual(ofn, nfn):
		return CauseFirstNameVariant
	case ofn != nfn || osn != nsn:
		return CauseNameTypo
	case o.Address != n.Address:
		return CauseMovedHousehold
	default:
		return CauseOther
	}
}

// approxEqual reports whether two values differ by at most ~one edit (a
// cheap length-insensitive check: long common prefix+suffix).
func approxEqual(a, b string) bool {
	if a == b {
		return true
	}
	la, lb := len(a), len(b)
	if la-lb > 1 || lb-la > 1 {
		return false
	}
	// Strip the common prefix and suffix; at most 2 chars may remain.
	i := 0
	for i < la && i < lb && a[i] == b[i] {
		i++
	}
	j := 0
	for j < la-i && j < lb-i && a[la-1-j] == b[lb-1-j] {
		j++
	}
	return (la-i-j) <= 1 && (lb-i-j) <= 1
}

// AnalyzeErrors computes the error breakdown of a record mapping.
func AnalyzeErrors(links []linkage.RecordLink, old, new *census.Dataset) Breakdown {
	truth := TrueRecordMapping(old, new)
	pred := make(map[linkage.Pair]bool, len(links))
	for _, l := range links {
		pred[linkage.Pair{Old: l.Old, New: l.New}] = true
	}
	b := Breakdown{FalseNegatives: make(map[ErrorCause]int)}
	for p := range pred {
		if truth[p] {
			b.TruePositives++
		} else {
			b.FalsePositives++
		}
	}
	for p := range truth {
		if pred[p] {
			continue
		}
		o, n := old.Record(p.Old), new.Record(p.New)
		if o == nil || n == nil {
			continue
		}
		b.FalseNegatives[classify(o, n)]++
	}
	return b
}
