package evaluate

import (
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"smith", "smith", true},
		{"smith", "smyth", true},  // one substitution
		{"smith", "smiths", true}, // one insertion
		{"smith", "mith", true},   // one deletion
		{"smith", "taylor", false},
		{"ashworth", "smith", false},
		{"john", "jack", false},
		{"", "", true},
		{"a", "", true},
	}
	for _, c := range cases {
		if got := approxEqual(c.a, c.b); got != c.want {
			t.Errorf("approxEqual(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	mk := func(fn, sn, addr string) *census.Record {
		return &census.Record{FirstName: fn, Surname: sn, Address: addr}
	}
	cases := []struct {
		o, n *census.Record
		want ErrorCause
	}{
		{mk("", "smith", "a"), mk("john", "smith", "a"), CauseMissingName},
		{mk("alice", "ashworth", "a"), mk("alice", "smith", "b"), CauseSurnameChanged},
		{mk("william", "smith", "a"), mk("bill", "smith", "a"), CauseFirstNameVariant},
		{mk("john", "smith", "a"), mk("john", "smyth", "a"), CauseNameTypo},
		{mk("john", "smith", "a"), mk("john", "smith", "b"), CauseMovedHousehold},
		{mk("john", "smith", "a"), mk("john", "smith", "a"), CauseOther},
	}
	for i, c := range cases {
		if got := classify(c.o, c.n); got != c.want {
			t.Errorf("case %d: classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	old, new := truthFixture(t)
	// Predict two true links (John + Elizabeth Ashworth) and one false one.
	links := []linkage.RecordLink{
		{Old: "1871_1", New: "1881_1"},
		{Old: "1871_2", New: "1881_2"},
		{Old: "1871_5", New: "1881_9"}, // Riley -> wrong John: FP
	}
	b := AnalyzeErrors(links, old, new)
	if b.TruePositives != 2 || b.FalsePositives != 1 {
		t.Fatalf("tp=%d fp=%d", b.TruePositives, b.FalsePositives)
	}
	totalFN := 0
	for _, n := range b.FalseNegatives {
		totalFN += n
	}
	if totalFN != 5 {
		t.Fatalf("fn total = %d, want 5", totalFN)
	}
	// Alice married: her miss must classify as surname change.
	if b.FalseNegatives[CauseSurnameChanged] < 1 {
		t.Errorf("Alice's miss not classified as surname change: %v", b.FalseNegatives)
	}
	// Steve moved with his name intact: moved household.
	if b.FalseNegatives[CauseMovedHousehold] < 1 {
		t.Errorf("Steve's miss not classified as move: %v", b.FalseNegatives)
	}
}

func TestErrorCauseString(t *testing.T) {
	want := map[ErrorCause]string{
		CauseMissingName:      "missing name",
		CauseSurnameChanged:   "surname changed",
		CauseFirstNameVariant: "first-name variant",
		CauseNameTypo:         "name typo",
		CauseMovedHousehold:   "moved household",
		CauseOther:            "other",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
