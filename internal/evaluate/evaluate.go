// Package evaluate computes linkage quality (precision, recall, F-measure)
// for record and group mappings against ground truth. For synthetic data the
// truth is derived from the persistent person identifiers the generator
// stores in census.Record.TruthID; for the paper's setting this plays the
// role of the manually linked reference mapping.
package evaluate

import (
	"math/rand"
	"sort"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
)

// Metrics holds counts and derived quality measures of one mapping.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// Compute derives precision, recall and F-measure from match counts.
func Compute(tp, fp, fn int) Metrics {
	m := Metrics{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// TrueRecordMapping returns the ground-truth record mapping between two
// datasets: all pairs of records carrying the same non-empty TruthID. The
// mapping is 1:1 because a person appears at most once per census.
func TrueRecordMapping(old, new *census.Dataset) map[linkage.Pair]bool {
	byTruth := make(map[string]string, new.NumRecords())
	for _, r := range new.Records() {
		if r.TruthID != "" {
			byTruth[r.TruthID] = r.ID
		}
	}
	truth := make(map[linkage.Pair]bool)
	for _, r := range old.Records() {
		if r.TruthID == "" {
			continue
		}
		if newID, ok := byTruth[r.TruthID]; ok {
			truth[linkage.Pair{Old: r.ID, New: newID}] = true
		}
	}
	return truth
}

// TrueGroupMapping returns the ground-truth group mapping: household pairs
// sharing at least one common person (Eq. 2 of the paper: complete or
// partial correspondence according to common records).
func TrueGroupMapping(old, new *census.Dataset) map[linkage.GroupPair]bool {
	records := TrueRecordMapping(old, new)
	truth := make(map[linkage.GroupPair]bool)
	for p := range records {
		o, n := old.Record(p.Old), new.Record(p.New)
		if o == nil || n == nil {
			continue
		}
		truth[linkage.GroupPair{Old: o.HouseholdID, New: n.HouseholdID}] = true
	}
	return truth
}

// RecordMetrics scores a predicted record mapping against the truth.
func RecordMetrics(pred []linkage.RecordLink, truth map[linkage.Pair]bool) Metrics {
	tp, fp := 0, 0
	seen := make(map[linkage.Pair]bool, len(pred))
	for _, l := range pred {
		p := linkage.Pair{Old: l.Old, New: l.New}
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			tp++
		} else {
			fp++
		}
	}
	return Compute(tp, fp, len(truth)-tp)
}

// GroupMetrics scores a predicted group mapping against the truth.
func GroupMetrics(pred []linkage.GroupLink, truth map[linkage.GroupPair]bool) Metrics {
	tp, fp := 0, 0
	seen := make(map[linkage.GroupPair]bool, len(pred))
	for _, l := range pred {
		p := linkage.GroupPair(l)
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			tp++
		} else {
			fp++
		}
	}
	return Compute(tp, fp, len(truth)-tp)
}

// EvaluateResult scores both mappings of a linkage result at once.
func EvaluateResult(res *linkage.Result, old, new *census.Dataset) (record, group Metrics) {
	record = RecordMetrics(res.RecordLinks, TrueRecordMapping(old, new))
	group = GroupMetrics(res.GroupLinks, TrueGroupMapping(old, new))
	return record, group
}

// MatchedHouseholds returns the old-dataset households that have at least
// one member with a true match in the new dataset. This mirrors the
// construction of the paper's reference mapping, which covers manually
// linked (i.e. matched) households only: links and truth restricted to this
// set reproduce the paper's evaluation protocol, under which false links
// attached to vanished or newly arrived households are invisible.
func MatchedHouseholds(old, new *census.Dataset) map[string]bool {
	out := make(map[string]bool)
	for p := range TrueRecordMapping(old, new) {
		if r := old.Record(p.Old); r != nil {
			out[r.HouseholdID] = true
		}
	}
	return out
}

// SampleReferenceHouseholds mimics the paper's partial reference mapping: it
// samples a fraction of the old dataset's households (deterministically by
// seed) and returns the set of sampled household IDs.
func SampleReferenceHouseholds(old *census.Dataset, fraction float64, seed int64) map[string]bool {
	if fraction <= 0 {
		return map[string]bool{}
	}
	ids := make([]string, 0, old.NumHouseholds())
	for _, h := range old.Households() {
		ids = append(ids, h.ID)
	}
	sort.Strings(ids)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	n := int(float64(len(ids)) * fraction)
	if fraction > 0 && n == 0 {
		n = 1
	}
	out := make(map[string]bool, n)
	for _, id := range ids[:n] {
		out[id] = true
	}
	return out
}

// RestrictRecordTruth keeps only truth pairs whose old record belongs to a
// sampled household.
func RestrictRecordTruth(truth map[linkage.Pair]bool, old *census.Dataset, sample map[string]bool) map[linkage.Pair]bool {
	out := make(map[linkage.Pair]bool)
	for p := range truth {
		if r := old.Record(p.Old); r != nil && sample[r.HouseholdID] {
			out[p] = true
		}
	}
	return out
}

// RestrictRecordLinks keeps only predicted links whose old record belongs to
// a sampled household, for evaluation against a restricted truth.
func RestrictRecordLinks(links []linkage.RecordLink, old *census.Dataset, sample map[string]bool) []linkage.RecordLink {
	var out []linkage.RecordLink
	for _, l := range links {
		if r := old.Record(l.Old); r != nil && sample[r.HouseholdID] {
			out = append(out, l)
		}
	}
	return out
}

// RestrictGroupTruth keeps only truth pairs whose old household is sampled.
func RestrictGroupTruth(truth map[linkage.GroupPair]bool, sample map[string]bool) map[linkage.GroupPair]bool {
	out := make(map[linkage.GroupPair]bool)
	for p := range truth {
		if sample[p.Old] {
			out[p] = true
		}
	}
	return out
}

// RestrictGroupLinks keeps only predicted group links with a sampled old
// household.
func RestrictGroupLinks(links []linkage.GroupLink, sample map[string]bool) []linkage.GroupLink {
	var out []linkage.GroupLink
	for _, l := range links {
		if sample[l.Old] {
			out = append(out, l)
		}
	}
	return out
}
