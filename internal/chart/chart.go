// Package chart renders minimal, dependency-free SVG charts for the
// experiment harness — enough to regenerate the paper's Figure 6 (a grouped
// bar chart of evolution pattern counts per census pair) as an image.
package chart

import (
	"fmt"
	"io"
	"strings"
)

// BarGroup is one cluster of bars sharing an x-axis label.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart is a grouped bar chart.
type BarChart struct {
	Title  string
	Series []string // one name per bar within a group, in order
	Groups []BarGroup
	// Width and Height of the SVG canvas; defaults 860x420.
	Width, Height int
}

// seriesColors is a color-blind-safe palette.
var seriesColors = []string{
	"#0072b2", "#e69f00", "#009e73", "#d55e00", "#cc79a7", "#56b4e9",
	"#f0e442", "#999999",
}

// RenderSVG writes the chart as a standalone SVG document.
func (c *BarChart) RenderSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 860
	}
	if height <= 0 {
		height = 420
	}
	const (
		marginLeft   = 60
		marginRight  = 20
		marginTop    = 40
		marginBottom = 60
	)
	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom

	maxV := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n",
			width/2, escape(c.Title))
	}

	// Horizontal grid lines and y-axis labels at 5 ticks.
	for t := 0; t <= 5; t++ {
		v := maxV * float64(t) / 5
		y := float64(marginTop+plotH) - float64(plotH)*float64(t)/5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			marginLeft-6, y+4, v)
	}

	// Bars.
	nGroups := len(c.Groups)
	nSeries := len(c.Series)
	if nGroups > 0 && nSeries > 0 {
		groupW := float64(plotW) / float64(nGroups)
		barW := groupW * 0.8 / float64(nSeries)
		for gi, g := range c.Groups {
			x0 := float64(marginLeft) + groupW*float64(gi) + groupW*0.1
			for si, v := range g.Values {
				if si >= nSeries {
					break
				}
				h := float64(plotH) * v / maxV
				x := x0 + barW*float64(si)
				y := float64(marginTop+plotH) - h
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.0f</title></rect>`+"\n",
					x, y, barW, h, seriesColors[si%len(seriesColors)],
					escape(g.Label), escape(c.Series[si]), v)
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
				x0+groupW*0.4, marginTop+plotH+18, escape(g.Label))
		}
	}

	// Legend.
	lx := marginLeft
	ly := height - 18
	for si, name := range c.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			lx, ly-10, seriesColors[si%len(seriesColors)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+16, ly, escape(name))
		lx += 16 + 8*len(name) + 24
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
