package chart

import (
	"strings"
	"testing"
)

func demoChart() *BarChart {
	return &BarChart{
		Title:  "Demo <chart>",
		Series: []string{"preserve_G", "add_G"},
		Groups: []BarGroup{
			{Label: "1851-1861", Values: []float64{171, 112}},
			{Label: "1861-1871", Values: []float64{236, 87}},
		},
	}
}

func TestRenderSVG(t *testing.T) {
	var b strings.Builder
	if err := demoChart().RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`,
		"Demo &lt;chart&gt;", // escaped title
		"preserve_G",
		"1851-1861",
		"</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two groups x two series = four bars plus legend swatches.
	if n := strings.Count(out, "<rect"); n < 6 {
		t.Errorf("too few rects: %d", n)
	}
	// Tallest bar belongs to the max value and uses the full plot height.
	if !strings.Contains(out, `height="320.0"`) {
		t.Errorf("expected a full-height bar for the max value:\n%s", out)
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	var b strings.Builder
	c := &BarChart{Title: "empty"}
	if err := c.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "</svg>") {
		t.Error("empty chart should still be valid SVG")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != `a&lt;b&gt;&amp;&quot;c` {
		t.Errorf("escape = %q", got)
	}
}
