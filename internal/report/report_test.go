package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
		Note:   "a note",
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	if lines[5] != "a note" {
		t.Errorf("note missing: %q", out)
	}
	// Columns align: "value" of row 1 starts at the same offset as row 2's.
	idx1 := strings.Index(lines[3], "1")
	if idx1 < len("a-much-longer-name") {
		t.Errorf("column not aligned: %q", lines[3])
	}
}

func TestTableRenderEmpty(t *testing.T) {
	tab := &Table{Header: []string{"h"}}
	if out := tab.String(); !strings.Contains(out, "h") {
		t.Errorf("empty table render: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.9603); got != "96.0" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1.0); got != "100.0" {
		t.Errorf("Pct(1) = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := I(-42); got != "-42" {
		t.Errorf("I = %q", got)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
		Note:   "a note",
	}
	tab.AddRow("x|y", "1")
	var b strings.Builder
	if err := tab.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"### Demo",
		"| name | value |",
		"|---|---|",
		`| x\|y | 1 |`,
		"a note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
