// Package report renders aligned plain-text tables for the experiment
// harness and command-line tools.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled table with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note is an optional footnote printed under the table.
	Note string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Pct formats a ratio as a percentage with one decimal, e.g. 0.9603 -> "96.0".
func Pct(f float64) string { return fmt.Sprintf("%.1f", f*100) }

// F formats a float with the given number of decimals.
func F(f float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, f)
}

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// RenderMarkdown writes the table as GitHub-flavoured markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### ")
		b.WriteString(t.Title)
		b.WriteString("\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		b.WriteString("\n")
		b.WriteString(t.Note)
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
