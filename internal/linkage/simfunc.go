// Package linkage implements the iterative temporal record and group
// linkage algorithm of Christen et al. (EDBT 2017): attribute-level
// pre-matching and clustering (Section 3.2), household subgraph matching
// (Section 3.3), greedy selection of group links (Section 3.4, Algorithm 2)
// and the iterative driver with threshold relaxation (Algorithm 1).
package linkage

import (
	"fmt"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// AttributeMatcher compares one record attribute with a dedicated similarity
// function and weight. Prof, when set, is the precompilable profile form of
// Sim used by the compiled comparison engine (internal/compare); it must
// score bit-for-bit identically to Sim. When Prof is nil the engine falls
// back to memoizing Sim itself.
type AttributeMatcher struct {
	Attr   census.Attribute
	Sim    strsim.Func
	Prof   *strsim.Profiled
	Weight float64
	// Name identifies the similarity function for serialization and for the
	// store's config fingerprint (see Config.Fingerprint). The built-in
	// constructors and ConfigSpec.Build always set it; hand-built matchers
	// with an empty Name fingerprint as "?", so callers sharing a snapshot
	// store across custom matcher functions should name them distinctly.
	Name string
}

// SimFunc is the paper's Sim_func: a set of weighted attribute matchers
// (the weighting vector ω) together with a minimum similarity threshold δ.
type SimFunc struct {
	Name     string
	Matchers []AttributeMatcher
	// Delta is the threshold δ: record pairs with aggregated similarity
	// below Delta are not considered matches.
	Delta float64
}

// Validate checks that the weights are positive and sum to 1 (within a
// small tolerance) so that aggregated similarities stay in [0, 1].
func (f SimFunc) Validate() error {
	if len(f.Matchers) == 0 {
		return fmt.Errorf("linkage: SimFunc %q has no matchers", f.Name)
	}
	sum := 0.0
	for _, m := range f.Matchers {
		if m.Weight < 0 {
			return fmt.Errorf("linkage: SimFunc %q: negative weight for %v", f.Name, m.Attr)
		}
		if m.Sim == nil {
			return fmt.Errorf("linkage: SimFunc %q: nil similarity for %v", f.Name, m.Attr)
		}
		sum += m.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("linkage: SimFunc %q: weights sum to %.4f, want 1", f.Name, sum)
	}
	if f.Delta < 0 || f.Delta > 1 {
		return fmt.Errorf("linkage: SimFunc %q: delta %.3f outside [0,1]", f.Name, f.Delta)
	}
	return nil
}

// SimVector returns the per-attribute similarity vector sim(r_i, r_{i+1})
// in matcher order. Missing values score 0.
func (f SimFunc) SimVector(a, b *census.Record) []float64 {
	out := make([]float64, len(f.Matchers))
	for i, m := range f.Matchers {
		out[i] = m.Sim(a.Value(m.Attr), b.Value(m.Attr))
	}
	return out
}

// AggSim returns the weighted aggregated similarity agg_sim(r_i, r_{i+1})
// = ω · sim(r_i, r_{i+1}) (Eq. 3 of the paper).
func (f SimFunc) AggSim(a, b *census.Record) float64 {
	s := 0.0
	for _, m := range f.Matchers {
		if m.Weight == 0 {
			continue
		}
		s += m.Weight * m.Sim(a.Value(m.Attr), b.Value(m.Attr))
	}
	return s
}

// Matches reports whether the aggregated similarity reaches the threshold δ.
func (f SimFunc) Matches(a, b *census.Record) bool {
	return f.AggSim(a, b) >= f.Delta
}

// WithDelta returns a copy of the SimFunc with the threshold replaced.
func (f SimFunc) WithDelta(delta float64) SimFunc {
	f.Delta = delta
	return f
}

// OmegaOne returns the paper's ω1 configuration (Table 2): equal weight 0.2
// on first name, sex, surname, address and occupation, with q-gram matching
// on the string attributes and exact matching on sex.
func OmegaOne(delta float64) SimFunc {
	return SimFunc{
		Name:  "omega1",
		Delta: delta,
		Matchers: []AttributeMatcher{
			{Attr: census.AttrFirstName, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.2},
			{Attr: census.AttrSex, Sim: strsim.Exact, Prof: strsim.ExactProfiled, Name: "exact", Weight: 0.2},
			{Attr: census.AttrSurname, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.2},
			{Attr: census.AttrAddress, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.2},
			{Attr: census.AttrOccupation, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.2},
		},
	}
}

// OmegaTwo returns the paper's ω2 configuration (Table 2): first name 0.4,
// sex 0.2, surname 0.2, and the less stable address and occupation at 0.1.
func OmegaTwo(delta float64) SimFunc {
	return SimFunc{
		Name:  "omega2",
		Delta: delta,
		Matchers: []AttributeMatcher{
			{Attr: census.AttrFirstName, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.4},
			{Attr: census.AttrSex, Sim: strsim.Exact, Prof: strsim.ExactProfiled, Name: "exact", Weight: 0.2},
			{Attr: census.AttrSurname, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.2},
			{Attr: census.AttrAddress, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.1},
			{Attr: census.AttrOccupation, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.1},
		},
	}
}

// NameOnly returns a similarity function over first name and surname only,
// used by the running-example tests and as a simple Sim_func_rem choice.
func NameOnly(delta float64) SimFunc {
	return SimFunc{
		Name:  "name-only",
		Delta: delta,
		Matchers: []AttributeMatcher{
			{Attr: census.AttrFirstName, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.5},
			{Attr: census.AttrSurname, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.5},
		},
	}
}

// OmegaTwoBirthplace extends ω2 with the stable birthplace attribute, an
// extension beyond the paper's Table 2 (the 1851+ UK censuses recorded the
// place of birth, which never changes for a person and therefore
// disambiguates same-name candidates strongly).
func OmegaTwoBirthplace(delta float64) SimFunc {
	return SimFunc{
		Name:  "omega2+birthplace",
		Delta: delta,
		Matchers: []AttributeMatcher{
			{Attr: census.AttrFirstName, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.35},
			{Attr: census.AttrSex, Sim: strsim.Exact, Prof: strsim.ExactProfiled, Name: "exact", Weight: 0.15},
			{Attr: census.AttrSurname, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.2},
			{Attr: census.AttrBirthplace, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.15},
			{Attr: census.AttrAddress, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.075},
			{Attr: census.AttrOccupation, Sim: strsim.Bigram, Prof: strsim.BigramProfiled, Name: "qgram2", Weight: 0.075},
		},
	}
}
