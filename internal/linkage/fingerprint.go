package linkage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// fingerprintVersion is bumped whenever the canonical serialization below
// changes, so fingerprints from different schemes never collide.
const fingerprintVersion = "censuslink/config-v1"

// Fingerprint returns a stable hex-encoded SHA-256 digest of every
// configuration parameter that can change the linkage result: the two
// similarity functions (matcher names, attributes, weights, δ), the
// threshold schedule, the group-selection weights, the age tolerance, the
// blocking strategies and the behavioural switches.
//
// Parameters that provably do NOT affect the output are excluded so
// equivalent runs share snapshots: Workers and Panics only schedule work,
// Obs only observes, and Engine is differential-tested to produce identical
// results on both paths. The fingerprint is the config third of the store's
// content address (see internal/store).
func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", fingerprintVersion)
	writeSimFunc(h, "sim", c.Sim)
	writeSimFunc(h, "rem", c.Remainder)
	fmt.Fprintf(h, "delta %.9f %.9f %.9f\n", c.DeltaHigh, c.DeltaLow, c.DeltaStep)
	fmt.Fprintf(h, "weights %.9f %.9f\n", c.Alpha, c.Beta)
	fmt.Fprintf(h, "agetol %d\n", c.AgeTolerance)
	fmt.Fprintf(h, "flags %t %t %t %t\n",
		c.StopOnEmpty, c.DirectVerticesOnly, c.VertexGuards, c.OptimalRemainder)
	for _, s := range c.Strategies {
		fmt.Fprintf(h, "block %q\n", s.Name)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeSimFunc serializes one SimFunc canonically into the fingerprint.
// Matchers without a Name (hand-built functions outside the registry) hash
// as "?": two such configs collide, which the AttributeMatcher.Name docs
// call out as the caller's responsibility.
func writeSimFunc(w io.Writer, label string, f SimFunc) {
	fmt.Fprintf(w, "%s %q %.9f\n", label, f.Name, f.Delta)
	for _, m := range f.Matchers {
		name := m.Name
		if name == "" {
			name = "?"
		}
		fmt.Fprintf(w, "m %q %q %.9f\n", m.Attr.String(), name, m.Weight)
	}
}
