package linkage_test

import (
	"fmt"

	"censuslink/internal/block"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// ExampleLink runs the paper's running example: the Ashworth and Smith
// families between the 1871 and 1881 censuses.
func ExampleLink() {
	old, new := paperexample.Old(), paperexample.New()
	cfg := linkage.Config{
		Sim:          linkage.NameOnly(1.0), // Fig. 3 pre-matching
		DeltaHigh:    1.0,
		DeltaLow:     1.0,
		Alpha:        0.2,
		Beta:         0.7,
		AgeTolerance: 3,
		Remainder:    linkage.NameOnly(0.6),
		Strategies:   block.DefaultStrategies(),
		StopOnEmpty:  true,
	}
	res, err := linkage.Link(old, new, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d person links, %d household links\n",
		len(res.RecordLinks), len(res.GroupLinks))
	for _, g := range res.GroupLinks {
		fmt.Printf("%s -> %s\n", g.Old, g.New)
	}
	// Output:
	// 7 person links, 4 household links
	// 1871_a -> 1881_a
	// 1871_a -> 1881_c
	// 1871_b -> 1881_b
	// 1871_b -> 1881_c
}

// ExampleSimFunc_AggSim shows the weighted attribute similarity of Eq. 3.
func ExampleSimFunc_AggSim() {
	old := paperexample.Old()
	f := linkage.NameOnly(0)
	alice := old.Record("1871_3")
	steve := old.Record("1871_8")
	fmt.Printf("%.2f\n", f.AggSim(alice, alice))
	fmt.Printf("%.2f\n", f.AggSim(alice, steve))
	// Output:
	// 1.00
	// 0.22
}
