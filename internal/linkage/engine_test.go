package linkage_test

// Differential tests of the compiled comparison engine against the
// interpreted oracle: the two paths must agree bit-for-bit on every
// similarity and produce identical linkage results.

import (
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
	"censuslink/internal/synth"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want linkage.EngineKind
		err  bool
	}{
		{"", linkage.EngineCompiled, false},
		{"compiled", linkage.EngineCompiled, false},
		{"Compiled", linkage.EngineCompiled, false},
		{"naive", linkage.EngineNaive, false},
		{" interpreted ", linkage.EngineNaive, false},
		{"turbo", 0, true},
	}
	for _, c := range cases {
		got, err := linkage.ParseEngine(c.in)
		if (err != nil) != c.err || (err == nil && got != c.want) {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v (err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if linkage.EngineCompiled.String() != "compiled" || linkage.EngineNaive.String() != "naive" {
		t.Errorf("EngineKind.String: %q / %q", linkage.EngineCompiled, linkage.EngineNaive)
	}
}

// TestCompiledAggSimBitIdentical: over every blocked candidate pair of a
// synthetic year-pair and every shipped SimFunc configuration, the compiled
// engine's AggSim and SimVector must equal the interpreted values exactly —
// not approximately.
func TestCompiledAggSimBitIdentical(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.03, 11), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	funcs := []linkage.SimFunc{
		linkage.OmegaOne(0.7),
		linkage.OmegaTwo(0.7),
		linkage.OmegaTwoBirthplace(0.7),
		linkage.NameOnly(0.5),
	}
	for _, f := range funcs {
		eng := f.Compile(old.Records(), new.Records())
		checked := 0
		block.Candidates(old.Records(), old.Year, new.Records(), new.Year, block.DefaultStrategies(),
			func(o, n *census.Record) {
				oi, ok := eng.Old.Pos(o.ID)
				if !ok {
					t.Fatalf("%s: old record %s not compiled", f.Name, o.ID)
				}
				ni, ok := eng.New.Pos(n.ID)
				if !ok {
					t.Fatalf("%s: new record %s not compiled", f.Name, n.ID)
				}
				if got, want := eng.AggSim(oi, ni), f.AggSim(o, n); got != want {
					t.Fatalf("%s: AggSim(%s, %s): compiled=%v naive=%v", f.Name, o.ID, n.ID, got, want)
				}
				gotVec, wantVec := eng.SimVector(oi, ni), f.SimVector(o, n)
				for i := range wantVec {
					if gotVec[i] != wantVec[i] {
						t.Fatalf("%s: SimVector(%s, %s)[%d]: compiled=%v naive=%v",
							f.Name, o.ID, n.ID, i, gotVec[i], wantVec[i])
					}
				}
				checked++
			})
		if checked == 0 {
			t.Fatalf("%s: no candidate pairs checked", f.Name)
		}
	}
}

// TestCompiledAggSimAtLeastAgreesWithThreshold: the early-exit variant must
// accept exactly the pairs the interpreted path accepts at every δ of the
// default relaxation schedule, with exact similarities for accepted pairs.
func TestCompiledAggSimAtLeastAgreesWithThreshold(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.02, 13), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	f := linkage.OmegaTwo(0.7)
	for _, delta := range []float64{0.7, 0.65, 0.6, 0.55, 0.5} {
		eng := f.Compile(old.Records(), new.Records())
		block.Candidates(old.Records(), old.Year, new.Records(), new.Year, block.DefaultStrategies(),
			func(o, n *census.Record) {
				oi, _ := eng.Old.Pos(o.ID)
				ni, _ := eng.New.Pos(n.ID)
				want := f.AggSim(o, n)
				got, ok := eng.AggSimAtLeast(oi, ni, delta)
				if (want >= delta) != ok {
					t.Fatalf("delta=%v: AggSimAtLeast(%s, %s) ok=%v, naive sim=%v", delta, o.ID, n.ID, ok, want)
				}
				if ok && got != want {
					t.Fatalf("delta=%v: accepted sim %v != naive %v for (%s, %s)", delta, got, want, o.ID, n.ID)
				}
			})
	}
}

// linkBoth runs Link with both engines on the same inputs.
func linkBoth(t *testing.T, old, new *census.Dataset, cfg linkage.Config) (compiled, naive *linkage.Result) {
	t.Helper()
	cfg.Engine = linkage.EngineCompiled
	compiled, err := linkage.Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = linkage.EngineNaive
	naive, err = linkage.Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return compiled, naive
}

// requireIdenticalResults asserts the full observable output of two Link
// runs is identical: record links (with similarities), group links,
// provenance, per-iteration statistics and quality metrics.
func requireIdenticalResults(t *testing.T, compiled, naive *linkage.Result, old, new *census.Dataset) {
	t.Helper()
	if len(compiled.RecordLinks) != len(naive.RecordLinks) {
		t.Fatalf("record links: compiled %d != naive %d", len(compiled.RecordLinks), len(naive.RecordLinks))
	}
	for i := range naive.RecordLinks {
		if compiled.RecordLinks[i] != naive.RecordLinks[i] {
			t.Fatalf("record link %d differs: compiled %+v naive %+v", i, compiled.RecordLinks[i], naive.RecordLinks[i])
		}
	}
	if len(compiled.GroupLinks) != len(naive.GroupLinks) {
		t.Fatalf("group links: compiled %d != naive %d", len(compiled.GroupLinks), len(naive.GroupLinks))
	}
	for i := range naive.GroupLinks {
		if compiled.GroupLinks[i] != naive.GroupLinks[i] {
			t.Fatalf("group link %d differs: compiled %+v naive %+v", i, compiled.GroupLinks[i], naive.GroupLinks[i])
		}
	}
	if len(compiled.Sources) != len(naive.Sources) {
		t.Fatalf("sources: compiled %d != naive %d", len(compiled.Sources), len(naive.Sources))
	}
	for p, ns := range naive.Sources {
		if cs, ok := compiled.Sources[p]; !ok || cs != ns {
			t.Fatalf("source for %v differs: compiled %+v naive %+v", p, compiled.Sources[p], ns)
		}
	}
	if len(compiled.Iterations) != len(naive.Iterations) {
		t.Fatalf("iterations: compiled %d != naive %d", len(compiled.Iterations), len(naive.Iterations))
	}
	for i := range naive.Iterations {
		if compiled.Iterations[i] != naive.Iterations[i] {
			t.Fatalf("iteration %d differs: compiled %+v naive %+v", i, compiled.Iterations[i], naive.Iterations[i])
		}
	}
	if compiled.RemainderRecordLinks != naive.RemainderRecordLinks ||
		compiled.RemainderGroupLinks != naive.RemainderGroupLinks {
		t.Fatalf("remainder counts differ: compiled %d/%d naive %d/%d",
			compiled.RemainderRecordLinks, compiled.RemainderGroupLinks,
			naive.RemainderRecordLinks, naive.RemainderGroupLinks)
	}
	cRec, cGrp := evaluate.EvaluateResult(compiled, old, new)
	nRec, nGrp := evaluate.EvaluateResult(naive, old, new)
	if cRec != nRec || cGrp != nGrp {
		t.Fatalf("quality metrics differ: compiled %+v/%+v naive %+v/%+v", cRec, cGrp, nRec, nGrp)
	}
}

// TestLinkEngineDifferential: the compiled and naive engines must produce
// identical record links, group links and quality metrics on the synthetic
// series (the acceptance criterion of the compiled-engine refactor).
func TestLinkEngineDifferential(t *testing.T) {
	for _, seed := range []int64{7, 23} {
		old, new, err := synth.GeneratePair(synth.TestConfig(0.03, seed), 1861, 1871)
		if err != nil {
			t.Fatal(err)
		}
		compiled, naive := linkBoth(t, old, new, linkage.DefaultConfig())
		requireIdenticalResults(t, compiled, naive, old, new)
	}
}

// TestLinkEngineDifferentialVariants: identity must also hold under the
// optimal remainder assignment, the one-shot schedule and ω1 matching.
func TestLinkEngineDifferentialVariants(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.02, 41), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*linkage.Config){
		"optimal-remainder": func(c *linkage.Config) { c.OptimalRemainder = true },
		"one-shot":          func(c *linkage.Config) { c.DeltaHigh, c.DeltaLow, c.DeltaStep = 0.5, 0.5, 0 },
		"omega1":            func(c *linkage.Config) { c.Sim = linkage.OmegaOne(0.7) },
		"single-worker":     func(c *linkage.Config) { c.Workers = 1 },
		// Non-multiple DeltaHigh-DeltaLow: the schedule clamps its last
		// step to δ_low; both engines must see the identical thresholds.
		"clamped-schedule": func(c *linkage.Config) { c.DeltaLow = 0.52 },
	}
	for name, mutate := range variants {
		cfg := linkage.DefaultConfig()
		mutate(&cfg)
		compiled, naive := linkBoth(t, old, new, cfg)
		requireIdenticalResults(t, compiled, naive, old, new)
		_ = name
	}
}

// TestLinkSeriesEngineDifferential: identity across a whole multi-decade
// series run.
func TestLinkSeriesEngineDifferential(t *testing.T) {
	series, err := synth.Generate(synth.TestConfig(0.02, 17))
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	cfg.Engine = linkage.EngineCompiled
	compiled, err := linkage.LinkSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = linkage.EngineNaive
	naive, err := linkage.LinkSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != len(naive) {
		t.Fatalf("series results: compiled %d != naive %d", len(compiled), len(naive))
	}
	pairs := series.Pairs()
	for i := range naive {
		requireIdenticalResults(t, compiled[i], naive[i], pairs[i][0], pairs[i][1])
	}
}
