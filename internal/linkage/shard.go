// Block-sharded execution of the pre-matching and remainder stages
// (DESIGN.md §14). The record space is partitioned by blocking key: every
// key hashes to one of K shards and a record is replicated into each shard
// one of its keys maps to, so any candidate pair — which by construction
// shares at least one key — materializes in at least one shard, and the
// union of per-shard candidate pairs equals the global candidate pair set.
// Each shard compiles its own transient engine, blocking index and memo
// state per pass, bounding peak memory by the shard size (times the worker
// pool width) instead of the dataset size; the merged links are
// deduplicated and re-sorted into the exact unsharded scan order, so every
// downstream stage — clustering, subgraph matching, selection, the 1:1
// remainder assignment — sees bit-for-bit the input it would have seen
// unsharded, for any K.
package linkage

import (
	"context"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/cluster"
	"censuslink/internal/faultinject"
	"censuslink/internal/obs"
)

// shardOfKey hashes a blocking key into one of k shards (FNV-1a).
func shardOfKey(key string, k int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(k))
}

// partitionRecords lays the two record lists out into k shards by blocking
// key. Records keep their dataset order within each shard; a record whose
// keys hash to several shards appears in each of them, and a record with no
// keys (all blocking attributes missing) appears in none — it can never be
// blocked into a candidate pair anyway.
func partitionRecords(old []*census.Record, oldYear int, new []*census.Record, newYear int,
	strategies []block.Strategy, k int) []*Partition {
	parts := make([]*Partition, k)
	for i := range parts {
		parts[i] = &Partition{Index: i}
	}
	assign := func(r *census.Record, year int, add func(p *Partition)) {
		var seen [8]bool // k is small; fall back to a map beyond that
		var seenMap map[int]bool
		if k > len(seen) {
			seenMap = make(map[int]bool, 4)
		}
		for _, s := range strategies {
			for _, key := range s.Keys(r, year) {
				sh := shardOfKey(key, k)
				if seenMap != nil {
					if seenMap[sh] {
						continue
					}
					seenMap[sh] = true
				} else {
					if seen[sh] {
						continue
					}
					seen[sh] = true
				}
				add(parts[sh])
			}
		}
	}
	for _, r := range old {
		r := r
		assign(r, oldYear, func(p *Partition) { p.Old = append(p.Old, r) })
	}
	for _, r := range new {
		r := r
		assign(r, newYear, func(p *Partition) { p.New = append(p.New, r) })
	}
	return parts
}

// positionsOf maps record IDs to their position in the given (remaining)
// list; membership doubles as the "still unlinked" filter and the position
// defines the canonical unsharded scan order.
func positionsOf(recs []*census.Record) map[string]int32 {
	m := make(map[string]int32, len(recs))
	for i, r := range recs {
		m[r.ID] = int32(i)
	}
	return m
}

// filterByPos keeps the records present in pos, preserving order.
func filterByPos(recs []*census.Record, pos map[string]int32) []*census.Record {
	out := make([]*census.Record, 0, len(recs))
	for _, r := range recs {
		if _, ok := pos[r.ID]; ok {
			out = append(out, r)
		}
	}
	return out
}

// runShardPool runs fn(0..n-1) on a bounded worker pool. fn is responsible
// for its own panic isolation and error slotting; the pool only schedules.
// Feeding stops when ctx is cancelled (in-flight shards still finish, and
// their own cancellation checkpoints abort them promptly).
func runShardPool(ctx context.Context, n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
}

// shardedPreMatchRun is one δ pre-matching pass over the shard layout: each
// shard scans its remaining records with transient per-shard engine/index
// state, the per-shard links are merged, deduplicated and sorted into the
// canonical unsharded scan order, and the transitive closure is clustered
// globally over all remaining records — so the result is deep-equal to the
// unsharded pass (counters excepted: Compared and Blocked include the
// cross-shard replication overlap).
func shardedPreMatchRun(ctx context.Context, parts []*Partition, oldYear, newYear int,
	remOld, remNew []*census.Record, f SimFunc, engine EngineKind, strategies []block.Strategy,
	workers int, policy PanicPolicy, st *obs.Stats) (*PreMatchResult, error) {
	oldPos := positionsOf(remOld)
	newPos := positionsOf(remNew)

	type shardOut struct {
		pre *PreMatchResult
		err error
	}
	outs := make([]shardOut, len(parts))
	runShard := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				pe := panicErr("prematch", f.Delta, r, debug.Stack())
				pe.Chunk = i
				outs[i].err = pe
			}
		}()
		p := parts[i]
		shOld := filterByPos(p.Old, oldPos)
		shNew := filterByPos(p.New, newPos)
		if len(shOld) == 0 || len(shNew) == 0 {
			outs[i].pre = &PreMatchResult{Sims: map[Pair]float64{}, LabelSize: map[int]int{}}
			return
		}
		// Per-shard transient state: interning, index and memo live only
		// for this pass, so peak memory is bounded by the widest shard
		// window rather than the dataset.
		var cp *compiledPair
		if engine == EngineCompiled {
			active := make([]bool, len(shNew))
			for j := range active {
				active[j] = true
			}
			cp = &compiledPair{
				eng:    f.Compile(shOld, shNew),
				ix:     block.NewIndex(shNew, newYear, strategies),
				active: active,
			}
		}
		pre, err := preMatch(ctx, shOld, oldYear, shNew, newYear, f, strategies, 1, policy, st, cp)
		if cp != nil {
			cp.flushCounters(st)
		}
		outs[i] = shardOut{pre: pre, err: err}
	}
	runShardPool(ctx, len(parts), workers, runShard)

	// Cancellation wins over shard failures, matching the unsharded path.
	if err := ctx.Err(); err != nil {
		return nil, cancelErr("prematch", f.Delta, err)
	}
	merged := &PreMatchResult{
		Sims:      make(map[Pair]float64),
		LabelSize: make(map[int]int),
	}
	for i := range outs {
		if outs[i].err != nil {
			if policy == PanicFailFast {
				return nil, outs[i].err
			}
			st.Add(obs.PanicsRecovered, 1)
			continue
		}
		pre := outs[i].pre
		merged.Compared += pre.Compared
		merged.Blocked += pre.Blocked
		for _, p := range pre.Links {
			if _, dup := merged.Sims[p]; dup {
				continue
			}
			merged.Sims[p] = pre.Sims[p]
			merged.Links = append(merged.Links, p)
		}
	}
	// Canonical order: old records in remaining order, candidates ascending
	// by new position — exactly the order the unsharded chunk scan emits.
	sort.Slice(merged.Links, func(i, j int) bool {
		a, b := merged.Links[i], merged.Links[j]
		if oldPos[a.Old] != oldPos[b.Old] {
			return oldPos[a.Old] < oldPos[b.Old]
		}
		return newPos[a.New] < newPos[b.New]
	})
	// The transitive closure is inherently global: cluster labels span
	// shards, so the union-find runs over all remaining records of both
	// datasets, fed by the merged links.
	uf := cluster.NewUnionFind()
	for _, r := range remOld {
		uf.Add(r.ID)
	}
	for _, r := range remNew {
		uf.Add(r.ID)
	}
	for _, p := range merged.Links {
		uf.Union(p.Old, p.New)
	}
	merged.Labels = uf.Labels()
	for _, l := range merged.Labels {
		merged.LabelSize[l]++
	}
	return merged, nil
}

// shardedPreMatcher is the PreMatch stage of the sharded executor.
type shardedPreMatcher struct{ cfg Config }

func (m *shardedPreMatcher) PreMatch(ctx context.Context, parts *Partitions, delta float64, remOld, remNew []*census.Record) (*PreMatchResult, error) {
	f := m.cfg.Sim.WithDelta(delta)
	stop := m.cfg.Obs.Stage("prematch")
	defer stop()
	return shardedPreMatchRun(ctx, parts.Parts, parts.OldYear, parts.NewYear,
		remOld, remNew, f, m.cfg.Engine, m.cfg.Strategies, m.cfg.Workers, m.cfg.Panics, m.cfg.Obs)
}

// shardedRemainderCands collects the remainder candidate links across all
// shards — per-shard transient engine/index state, merged, deduplicated and
// sorted into the canonical unsharded scan order.
func shardedRemainderCands(ctx context.Context, parts []*Partition, oldYear, newYear int,
	remOld, remNew []*census.Record, f SimFunc, matchCfg MatchConfig, engine EngineKind,
	strategies []block.Strategy, workers int, st *obs.Stats) ([]RecordLink, error) {
	if err := faultinject.Hit("linkage.remainder"); err != nil {
		return nil, &PipelineError{Stage: "remainder", Delta: f.Delta, Chunk: -1, Err: err}
	}
	oldPos := positionsOf(remOld)
	newPos := positionsOf(remNew)
	cands := make([][]RecordLink, len(parts))
	errs := make([]error, len(parts))
	runShardPool(ctx, len(parts), workers, func(i int) {
		p := parts[i]
		shOld := filterByPos(p.Old, oldPos)
		shNew := filterByPos(p.New, newPos)
		if len(shOld) == 0 || len(shNew) == 0 {
			return
		}
		var cp *compiledPair
		if engine == EngineCompiled {
			active := make([]bool, len(shNew))
			for j := range active {
				active[j] = true
			}
			cp = &compiledPair{
				eng:    f.Compile(shOld, shNew),
				ix:     block.NewIndex(shNew, newYear, strategies),
				active: active,
			}
		}
		cands[i], errs[i] = remainderScan(ctx, shOld, oldYear, shNew, newYear, f, matchCfg, strategies, cp)
		if cp != nil {
			cp.flushCounters(st)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, cancelErr("remainder", f.Delta, err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	seen := make(map[Pair]bool)
	var merged []RecordLink
	for _, cs := range cands {
		for _, c := range cs {
			p := Pair{Old: c.Old, New: c.New}
			if seen[p] {
				continue
			}
			seen[p] = true
			merged = append(merged, c)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if oldPos[a.Old] != oldPos[b.Old] {
			return oldPos[a.Old] < oldPos[b.Old]
		}
		return newPos[a.New] < newPos[b.New]
	})
	return merged, nil
}

// shardedRemainderMatcher is the Remainder stage of the sharded executor:
// the cross-shard remainder pass. Candidates are collected per shard, then
// the 1:1 selection (greedy or optimal) runs globally over the merged
// candidate list, so recall matches the unsharded pass exactly.
type shardedRemainderMatcher struct{ cfg Config }

func (m *shardedRemainderMatcher) MatchRemainder(ctx context.Context, enr *Enriched, parts *Partitions, remOld, remNew []*census.Record) ([]RecordLink, error) {
	stop := m.cfg.Obs.Stage("remainder")
	defer stop()
	cands, err := shardedRemainderCands(ctx, parts.Parts, parts.OldYear, parts.NewYear,
		remOld, remNew, m.cfg.Remainder, enr.Match, m.cfg.Engine, m.cfg.Strategies,
		m.cfg.Workers, m.cfg.Obs)
	if err != nil {
		return nil, err
	}
	if m.cfg.OptimalRemainder {
		return optimalRemainder(cands, remOld, remNew), nil
	}
	return greedyRemainder(cands), nil
}
