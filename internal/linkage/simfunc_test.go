package linkage

import (
	"math"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

func TestSimFuncValidate(t *testing.T) {
	if err := OmegaOne(0.5).Validate(); err != nil {
		t.Errorf("OmegaOne invalid: %v", err)
	}
	if err := OmegaTwo(0.5).Validate(); err != nil {
		t.Errorf("OmegaTwo invalid: %v", err)
	}
	if err := NameOnly(0.5).Validate(); err != nil {
		t.Errorf("NameOnly invalid: %v", err)
	}

	bad := SimFunc{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Error("empty SimFunc accepted")
	}
	bad = SimFunc{Name: "sum", Matchers: []AttributeMatcher{
		{Attr: census.AttrFirstName, Sim: strsim.Bigram, Weight: 0.7},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("weights not summing to 1 accepted")
	}
	bad = SimFunc{Name: "neg", Matchers: []AttributeMatcher{
		{Attr: census.AttrFirstName, Sim: strsim.Bigram, Weight: 1.5},
		{Attr: census.AttrSurname, Sim: strsim.Bigram, Weight: -0.5},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	bad = SimFunc{Name: "nilsim", Matchers: []AttributeMatcher{
		{Attr: census.AttrFirstName, Sim: nil, Weight: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("nil similarity accepted")
	}
	bad = OmegaOne(1.5)
	if err := bad.Validate(); err == nil {
		t.Error("delta > 1 accepted")
	}
}

func TestAggSimIdenticalRecords(t *testing.T) {
	r := &census.Record{FirstName: "john", Surname: "ashworth", Sex: census.SexMale,
		Address: "3 mill lane", Occupation: "weaver"}
	for _, f := range []SimFunc{OmegaOne(0), OmegaTwo(0), NameOnly(0)} {
		if got := f.AggSim(r, r); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s.AggSim(r, r) = %v, want 1", f.Name, got)
		}
	}
}

func TestAggSimWeighting(t *testing.T) {
	a := &census.Record{FirstName: "john", Surname: "ashworth", Sex: census.SexMale,
		Address: "3 mill lane", Occupation: "weaver"}
	// Same name and sex, different address and occupation.
	b := &census.Record{FirstName: "john", Surname: "ashworth", Sex: census.SexMale,
		Address: "99 york terrace", Occupation: "grocer"}
	// ω2 weights address+occupation less, so it must score the pair higher.
	s1 := OmegaOne(0).AggSim(a, b)
	s2 := OmegaTwo(0).AggSim(a, b)
	if s2 <= s1 {
		t.Errorf("omega2 (%v) should exceed omega1 (%v) for stable-attribute agreement", s2, s1)
	}
}

func TestAggSimMissingValues(t *testing.T) {
	a := &census.Record{FirstName: "john", Surname: "ashworth", Sex: census.SexMale}
	b := &census.Record{FirstName: "john", Surname: "ashworth"}
	// Sex missing on b (and address/occupation empty on both): only first
	// name (0.4) and surname (0.2) contribute, so ω2 yields 0.6.
	if got := OmegaTwo(0).AggSim(a, b); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("AggSim with missing sex = %v, want 0.6", got)
	}
}

func TestSimVector(t *testing.T) {
	f := NameOnly(0)
	a := &census.Record{FirstName: "john", Surname: "smith"}
	b := &census.Record{FirstName: "john", Surname: "smyth"}
	v := f.SimVector(a, b)
	if len(v) != 2 || v[0] != 1 || v[1] <= 0 || v[1] >= 1 {
		t.Errorf("SimVector = %v", v)
	}
}

func TestMatchesAndWithDelta(t *testing.T) {
	a := &census.Record{FirstName: "john", Surname: "smith"}
	b := &census.Record{FirstName: "john", Surname: "smyth"}
	f := NameOnly(0.99)
	if f.Matches(a, b) {
		t.Error("should not match at delta 0.99")
	}
	if !f.WithDelta(0.5).Matches(a, b) {
		t.Error("should match at delta 0.5")
	}
	if f.Delta != 0.99 {
		t.Error("WithDelta must not mutate the receiver")
	}
}

func TestTable2Weights(t *testing.T) {
	// The ω vectors must match Table 2 of the paper exactly.
	w1 := map[census.Attribute]float64{}
	for _, m := range OmegaOne(0).Matchers {
		w1[m.Attr] = m.Weight
	}
	for _, attr := range []census.Attribute{census.AttrFirstName, census.AttrSex,
		census.AttrSurname, census.AttrAddress, census.AttrOccupation} {
		if w1[attr] != 0.2 {
			t.Errorf("omega1 weight for %v = %v, want 0.2", attr, w1[attr])
		}
	}
	w2 := map[census.Attribute]float64{}
	for _, m := range OmegaTwo(0).Matchers {
		w2[m.Attr] = m.Weight
	}
	want := map[census.Attribute]float64{
		census.AttrFirstName:  0.4,
		census.AttrSex:        0.2,
		census.AttrSurname:    0.2,
		census.AttrAddress:    0.1,
		census.AttrOccupation: 0.1,
	}
	for attr, w := range want {
		if w2[attr] != w {
			t.Errorf("omega2 weight for %v = %v, want %v", attr, w2[attr], w)
		}
	}
}
