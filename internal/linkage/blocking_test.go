package linkage

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseBlocking(t *testing.T) {
	for _, name := range append(BlockingNames(), "") {
		strategies, err := ParseBlocking(name)
		if err != nil {
			t.Errorf("ParseBlocking(%q): %v", name, err)
			continue
		}
		if len(strategies) < 2 {
			t.Errorf("ParseBlocking(%q) returned %d strategies, want >= 2", name, len(strategies))
		}
	}
	// Case-insensitive, like the matcher registry.
	if _, err := ParseBlocking("LSH"); err != nil {
		t.Errorf("ParseBlocking is case-sensitive: %v", err)
	}
	if _, err := ParseBlocking("quantum"); err == nil || !strings.Contains(err.Error(), "unknown blocking scheme") {
		t.Errorf("unknown scheme accepted: %v", err)
	}
}

// TestBlockingSchemesFingerprintDistinct: the config fingerprint keys the
// snapshot store, so every registered scheme must hash differently (the LSH
// strategy names bake their parameters in for the same reason).
func TestBlockingSchemesFingerprintDistinct(t *testing.T) {
	prints := map[string]string{}
	for _, name := range BlockingNames() {
		spec := DefaultConfigSpec()
		spec.Blocking = name
		cfg, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fp := cfg.Fingerprint()
		if prev, dup := prints[fp]; dup {
			t.Errorf("schemes %q and %q share fingerprint %s", prev, name, fp)
		}
		prints[fp] = name
	}
}

// TestConfigSpecBlockingRoundTrip: the blocking choice survives JSON and an
// explicit "default" builds the same strategy set as an absent field.
func TestConfigSpecBlockingRoundTrip(t *testing.T) {
	spec := DefaultConfigSpec()
	spec.Blocking = "lsh"
	var buf bytes.Buffer
	if err := WriteConfigSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"blocking": "lsh"`) {
		t.Errorf("blocking field not serialized: %s", buf.String())
	}
	got, err := ReadConfigSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cfg.Strategies {
		if !strings.Contains(s.Name, "minhash") {
			t.Errorf("lsh spec built non-LSH strategy %q", s.Name)
		}
	}

	spec.Blocking = "nope"
	if _, err := spec.Build(); err == nil {
		t.Error("unknown blocking scheme accepted by Build")
	}

	names := func(spec ConfigSpec) []string {
		cfg, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range cfg.Strategies {
			out = append(out, s.Name)
		}
		return out
	}
	spec.Blocking = ""
	absent := names(spec)
	spec.Blocking = "default"
	explicit := names(spec)
	if strings.Join(absent, ",") != strings.Join(explicit, ",") {
		t.Errorf("empty blocking %v != explicit default %v", absent, explicit)
	}
}
