package linkage_test

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/store"
	"censuslink/internal/synth"
)

func synthSeries(t *testing.T) *census.Series {
	t.Helper()
	series, err := synth.Generate(synth.TestConfig(0.02, 17))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Pairs()) < 2 {
		t.Fatalf("synthetic series has %d pairs, want >= 2", len(series.Pairs()))
	}
	return series
}

// dirDigest fingerprints every file in a directory, to prove a warm
// incremental run leaves the snapshots byte-identical.
func dirDigest(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		out[e.Name()] = fmt.Sprintf("%x", sum)
	}
	return out
}

// TestLinkSeriesIncrementalDifferential is the acceptance gate of the
// snapshot store: a cold run populates the store, and an incremental re-run
// over unchanged inputs must (a) serve every pair from snapshots, (b)
// perform ZERO pre-match comparisons — the whole pipeline is skipped, as
// the obs counters prove — and (c) return results deep-equal to the cold
// run's while leaving the snapshot files byte-identical.
func TestLinkSeriesIncrementalDifferential(t *testing.T) {
	series := synthSeries(t)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pairs := len(series.Pairs())

	cfg := linkage.DefaultConfig()
	coldStats := obs.NewStats(nil)
	cfg.Obs = coldStats
	cold, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
		linkage.SeriesOptions{Store: st, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := coldStats.Total(obs.StoreMisses); got != int64(pairs) {
		t.Errorf("cold run store misses = %d, want %d", got, pairs)
	}
	if got := coldStats.Total(obs.StoreHits); got != 0 {
		t.Errorf("cold run store hits = %d, want 0", got)
	}
	if coldStats.Total(obs.PairsCompared) == 0 {
		t.Fatal("cold run compared no pairs; the differential below would be vacuous")
	}
	before := dirDigest(t, dir)
	if len(before) != pairs {
		t.Fatalf("store holds %d snapshots after the cold run, want %d", len(before), pairs)
	}

	warmStats := obs.NewStats(nil)
	cfg.Obs = warmStats
	warm, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
		linkage.SeriesOptions{Store: st, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := warmStats.Total(obs.StoreHits); got != int64(pairs) {
		t.Errorf("warm run store hits = %d, want %d", got, pairs)
	}
	for _, name := range []string{obs.PairsCompared, obs.BlockingPairs, obs.CandidateLinks, obs.StoreMisses, obs.StoreCorrupt} {
		if got := warmStats.Total(name); got != 0 {
			t.Errorf("warm run %s = %d, want 0 (pipeline must not run)", name, got)
		}
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Error("incremental results differ from the cold run")
	}
	if after := dirDigest(t, dir); !reflect.DeepEqual(after, before) {
		t.Error("warm run modified the snapshot files")
	}
}

// TestLinkSeriesParallelMatchesSequential: the bounded pair pool must
// change nothing observable — same results in the same order, and the
// merged obs report carries every pair's iterations without interleaving.
func TestLinkSeriesParallelMatchesSequential(t *testing.T) {
	series := synthSeries(t)
	cfg := linkage.DefaultConfig()
	seqStats := obs.NewStats(nil)
	cfg.Obs = seqStats
	seq, err := linkage.LinkSeriesOpts(context.Background(), series, cfg, linkage.SeriesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parStats := obs.NewStats(nil)
	cfg.Obs = parStats
	par, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
		linkage.SeriesOptions{PairWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Error("parallel pair results differ from sequential")
	}
	seqIters, parIters := seqStats.Iterations(), parStats.Iterations()
	if len(parIters) != len(seqIters) {
		t.Fatalf("parallel run reported %d iterations, sequential %d", len(parIters), len(seqIters))
	}
	// Iterations are merged in pair order; per-pair they descend by delta,
	// so the whole sequence must match the sequential one exactly.
	for i := range seqIters {
		if parIters[i].Delta != seqIters[i].Delta {
			t.Fatalf("iteration %d: parallel delta %.2f, sequential %.2f — interleaved merge",
				i, parIters[i].Delta, seqIters[i].Delta)
		}
	}
	if parStats.Total(obs.PairsCompared) != seqStats.Total(obs.PairsCompared) {
		t.Errorf("parallel compared %d pairs, sequential %d",
			parStats.Total(obs.PairsCompared), seqStats.Total(obs.PairsCompared))
	}
}

// failingStore passes through to a real store but fails SaveResult for one
// configured old-census year, simulating a full disk mid-series.
type failingStore struct {
	inner    linkage.ResultStore
	failYear int
}

func (f *failingStore) LoadResult(cfgHash string, oldDS, newDS *census.Dataset) (*linkage.Result, error) {
	return f.inner.LoadResult(cfgHash, oldDS, newDS)
}

func (f *failingStore) SaveResult(cfgHash string, oldDS, newDS *census.Dataset, res *linkage.Result) error {
	if oldDS.Year == f.failYear {
		return errors.New("disk full")
	}
	return f.inner.SaveResult(cfgHash, oldDS, newDS, res)
}

// TestLinkSeriesPartialResultsOnFailure: a mid-series failure must return
// the completed pair results alongside a typed *SeriesError naming the
// failing pair — not discard hours of finished work.
func TestLinkSeriesPartialResultsOnFailure(t *testing.T) {
	series := synthSeries(t)
	pairs := series.Pairs()
	failIdx := len(pairs) - 1
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &failingStore{inner: st, failYear: pairs[failIdx][0].Year}

	cfg := linkage.DefaultConfig()
	for _, workers := range []int{1, 4} {
		out, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
			linkage.SeriesOptions{Store: fs, PairWorkers: workers})
		if err == nil {
			t.Fatalf("workers=%d: no error despite failing store", workers)
		}
		var se *linkage.SeriesError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: err = %T %v, want *SeriesError", workers, err, err)
		}
		if se.OldYear != pairs[failIdx][0].Year || se.NewYear != pairs[failIdx][1].Year {
			t.Errorf("workers=%d: SeriesError names pair %d-%d, want %d-%d",
				workers, se.OldYear, se.NewYear, pairs[failIdx][0].Year, pairs[failIdx][1].Year)
		}
		if se.Pairs != len(pairs) {
			t.Errorf("workers=%d: SeriesError.Pairs = %d, want %d", workers, se.Pairs, len(pairs))
		}
		completed := 0
		for i, r := range out {
			if r != nil {
				completed++
			} else if i != failIdx {
				t.Errorf("workers=%d: pair %d has no result but did not fail", workers, i)
			}
		}
		if completed != se.Completed {
			t.Errorf("workers=%d: %d non-nil results, SeriesError.Completed = %d", workers, completed, se.Completed)
		}
		if se.Completed != len(pairs)-1 {
			t.Errorf("workers=%d: Completed = %d, want %d", workers, se.Completed, len(pairs)-1)
		}
	}
}

// corruptOnce rejects the first load of one pair as corrupt, then behaves
// normally; loads and saves are otherwise passed through.
type corruptOnce struct {
	inner    linkage.ResultStore
	failYear int
	tripped  bool
	resaved  bool
}

func (c *corruptOnce) LoadResult(cfgHash string, oldDS, newDS *census.Dataset) (*linkage.Result, error) {
	if oldDS.Year == c.failYear && !c.tripped {
		c.tripped = true
		return nil, errors.New("payload checksum mismatch")
	}
	return c.inner.LoadResult(cfgHash, oldDS, newDS)
}

func (c *corruptOnce) SaveResult(cfgHash string, oldDS, newDS *census.Dataset, res *linkage.Result) error {
	if oldDS.Year == c.failYear {
		c.resaved = true
	}
	return c.inner.SaveResult(cfgHash, oldDS, newDS, res)
}

// TestLinkSeriesIncrementalCorruptRecompute: a rejected snapshot is counted,
// recomputed and overwritten; the run still returns the full correct series.
func TestLinkSeriesIncrementalCorruptRecompute(t *testing.T) {
	series := synthSeries(t)
	pairs := series.Pairs()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	cold, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
		linkage.SeriesOptions{Store: st, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}

	co := &corruptOnce{inner: st, failYear: pairs[0][0].Year}
	stats := obs.NewStats(nil)
	cfg.Obs = stats
	got, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
		linkage.SeriesOptions{Store: co, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := stats.Total(obs.StoreCorrupt); n != 1 {
		t.Errorf("store corrupt counter = %d, want 1", n)
	}
	if n := stats.Total(obs.StoreHits); n != int64(len(pairs)-1) {
		t.Errorf("store hits = %d, want %d", n, len(pairs)-1)
	}
	if !co.resaved {
		t.Error("corrupt pair was not overwritten with a fresh snapshot")
	}
	if !reflect.DeepEqual(got, cold) {
		t.Error("recomputed series differs from the cold run")
	}
}

// TestLinkAppend: linking only the (last, next) pair when a year arrives
// must equal the last pair of a full-series run, hit the store when warm,
// and reject out-of-order years.
func TestLinkAppend(t *testing.T) {
	series := synthSeries(t)
	n := len(series.Datasets)
	head := census.NewSeries(series.Datasets[:n-1]...)
	next := series.Datasets[n-1]
	cfg := linkage.DefaultConfig()

	full, err := linkage.LinkSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := linkage.SeriesOptions{Store: st, Incremental: true}
	coldStats := obs.NewStats(nil)
	cfg.Obs = coldStats
	cold, err := linkage.LinkAppend(context.Background(), head, next, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, full[len(full)-1]) {
		t.Error("LinkAppend result differs from the last pair of a full-series run")
	}
	if got := coldStats.Total(obs.StoreMisses); got != 1 {
		t.Errorf("cold append store misses = %d, want 1", got)
	}

	warmStats := obs.NewStats(nil)
	cfg.Obs = warmStats
	warm, err := linkage.LinkAppend(context.Background(), head, next, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := warmStats.Total(obs.StoreHits); got != 1 {
		t.Errorf("warm append store hits = %d, want 1", got)
	}
	if got := warmStats.Total(obs.PairsCompared); got != 0 {
		t.Errorf("warm append compared %d pairs, want 0 (pipeline must not run)", got)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Error("warm append differs from cold append")
	}

	if _, err := linkage.LinkAppend(context.Background(), series, next, cfg, opts); err == nil {
		t.Error("appending a year not after the series end should fail")
	}
}

// TestLinkSeriesOrderingInvariants: results stay sorted by (Old, New) on
// both scheduling paths — the documented Result contract.
func TestLinkSeriesOrderingInvariants(t *testing.T) {
	series := synthSeries(t)
	cfg := linkage.DefaultConfig()
	out, err := linkage.LinkSeriesOpts(context.Background(), series, cfg,
		linkage.SeriesOptions{PairWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if !sort.SliceIsSorted(res.RecordLinks, func(a, b int) bool {
			x, y := res.RecordLinks[a], res.RecordLinks[b]
			return x.Old < y.Old || (x.Old == y.Old && x.New < y.New)
		}) {
			t.Errorf("pair %d: record links not sorted", i)
		}
	}
}
