package linkage

import (
	"fmt"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/paperexample"
	"censuslink/internal/strsim"
)

// freqDataset builds a dataset with a skewed surname distribution: many
// Smiths, one Thistlethwaite.
func freqDataset(t *testing.T, year int) *census.Dataset {
	t.Helper()
	d := census.NewDataset(year)
	for i := 0; i < 9; i++ {
		if err := d.AddRecord(&census.Record{
			ID: fmt.Sprintf("%d_s%d", year, i), HouseholdID: fmt.Sprintf("%d_h%d", year, i),
			FirstName: "john", Surname: "smith", Role: census.RoleHead,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRecord(&census.Record{
		ID: fmt.Sprintf("%d_t", year), HouseholdID: fmt.Sprintf("%d_ht", year),
		FirstName: "amos", Surname: "thistlethwaite", Role: census.RoleHead,
	}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFrequencyTableDamp(t *testing.T) {
	d := freqDataset(t, 1871)
	table := NewFrequencyTable(census.AttrSurname, 0.4, d)
	if got := table.damp("thistlethwaite"); got != 1 {
		t.Errorf("unique value damp = %v, want 1", got)
	}
	if got := table.damp("unseen"); got != 1 {
		t.Errorf("unseen value damp = %v, want 1", got)
	}
	// The most frequent value receives the full dampening: 1 - 0.4.
	if got := table.damp("smith"); got != 0.6 {
		t.Errorf("most frequent damp = %v, want 0.6", got)
	}
	// Case-insensitive.
	if table.damp("SMITH") != table.damp("smith") {
		t.Error("damp not case-insensitive")
	}
}

func TestFrequencyScaleOrdersEvidence(t *testing.T) {
	d := freqDataset(t, 1871)
	table := NewFrequencyTable(census.AttrSurname, 0.4, d)
	scaled := table.Scale(strsim.Bigram)
	smith := scaled("smith", "smith")
	rare := scaled("thistlethwaite", "thistlethwaite")
	if smith >= rare {
		t.Errorf("frequent agreement (%v) should score below rare agreement (%v)", smith, rare)
	}
	if rare != 1 {
		t.Errorf("rare agreement = %v, want 1", rare)
	}
	if scaled("smith", "walker") != 0 {
		t.Error("zero similarity must stay zero")
	}
}

func TestFrequencyScaledSim(t *testing.T) {
	old, new := freqDataset(t, 1871), freqDataset(t, 1881)
	base := NameOnly(0.5)
	scaled := FrequencyScaledSim(base, 0.4, []census.Attribute{census.AttrSurname}, old, new)
	if scaled.Name != "name-only+freq" {
		t.Errorf("name = %q", scaled.Name)
	}
	smithPair := [2]*census.Record{
		{FirstName: "john", Surname: "smith"},
		{FirstName: "john", Surname: "smith"},
	}
	rarePair := [2]*census.Record{
		{FirstName: "john", Surname: "thistlethwaite"},
		{FirstName: "john", Surname: "thistlethwaite"},
	}
	if base.AggSim(smithPair[0], smithPair[1]) != base.AggSim(rarePair[0], rarePair[1]) {
		t.Fatal("base function should not distinguish the pairs")
	}
	if scaled.AggSim(smithPair[0], smithPair[1]) >= scaled.AggSim(rarePair[0], rarePair[1]) {
		t.Error("scaled function should favour the rare-name pair")
	}
	// The original SimFunc is not mutated.
	if base.AggSim(smithPair[0], smithPair[1]) != 1 {
		t.Error("base SimFunc mutated by FrequencyScaledSim")
	}
}

func TestFrequencyScaledLinkStillWorks(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	cfg := runningExampleConfig()
	cfg.Sim = FrequencyScaledSim(cfg.Sim, 0.2,
		[]census.Attribute{census.AttrSurname}, old, new)
	// The pre-matching threshold must drop slightly: exact matches on
	// frequent names no longer reach 1.0.
	cfg.Sim.Delta = 0.85
	cfg.DeltaHigh, cfg.DeltaLow = 0.85, 0.85
	res, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, l := range res.RecordLinks {
		got[l.Old] = l.New
	}
	for o, n := range paperexample.TrueRecordMapping() {
		if got[o] != n {
			t.Errorf("link %s -> %s missing under frequency scaling (got %q)", o, n, got[o])
		}
	}
}
