package linkage

import (
	"fmt"
	"sort"
	"strings"

	"censuslink/internal/block"
)

// blockingRegistry maps registered blocking-scheme names to strategy
// constructors, parallel to matcherRegistry for comparators. Constructors
// (not values) so every Config gets fresh Strategy closures.
var blockingRegistry = map[string]func() []block.Strategy{
	// The paper's multi-pass phonetic configuration: Soundex on surname plus
	// Soundex on first name + sex for surname changes.
	"default": block.DefaultStrategies,
	// Default passes plus a surname q-gram pass for heavily corrupted names.
	"high-recall": block.HighRecallStrategies,
	// MinHash/LSH banded q-gram signatures (birth-year-guarded name passes
	// plus a full-name recovery pass): several times fewer candidate pairs
	// than the phonetic passes at ≥ 0.98 of their true-match coverage.
	"lsh": func() []block.Strategy { return block.LSHStrategies(block.DefaultLSHConfig()) },
	// Union of the phonetic and LSH passes, for recall-critical runs where
	// the extra candidates are affordable.
	"lsh+default": func() []block.Strategy {
		return append(block.DefaultStrategies(), block.LSHStrategies(block.DefaultLSHConfig())...)
	},
}

// BlockingNames lists the registered blocking-scheme names, sorted, for
// error messages and tool help.
func BlockingNames() []string {
	names := make([]string, 0, len(blockingRegistry))
	for n := range blockingRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseBlocking resolves a blocking-scheme name ("" means "default") into
// its strategy set.
func ParseBlocking(name string) ([]block.Strategy, error) {
	if name == "" {
		name = "default"
	}
	ctor, ok := blockingRegistry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("linkage: unknown blocking scheme %q (known: %s)",
			name, strings.Join(BlockingNames(), ", "))
	}
	return ctor(), nil
}
