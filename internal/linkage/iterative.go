package linkage

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"censuslink/internal/assign"
	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/faultinject"
	"censuslink/internal/hgraph"
	"censuslink/internal/obs"
)

// Config holds all parameters of the iterative record and group linkage
// (the input list of Algorithm 1).
type Config struct {
	// Sim is the record similarity function Sim_func; its Delta field is
	// overridden by the iteration thresholds below.
	Sim SimFunc
	// DeltaHigh, DeltaLow and DeltaStep control the threshold relaxation:
	// iterations run at δ = DeltaHigh, DeltaHigh-Δ, ... down to DeltaLow.
	// Setting DeltaHigh == DeltaLow yields the non-iterative one-shot
	// variant evaluated in Table 5.
	DeltaHigh, DeltaLow, DeltaStep float64
	// Alpha and Beta weight avg_sim and e_sim in the aggregated group
	// similarity (uniqueness gets 1-Alpha-Beta).
	Alpha, Beta float64
	// AgeTolerance is τ: the acceptable deviation of edge age differences
	// and of record age gaps from the census interval.
	AgeTolerance int
	// Remainder is Sim_func_rem used to match records left over after the
	// subgraph-based iterations; its own Delta applies.
	Remainder SimFunc
	// Strategies is the blocking configuration for candidate generation.
	Strategies []block.Strategy
	// Workers bounds pre-matching parallelism; <= 0 means GOMAXPROCS.
	// Under sharded execution it bounds the shard worker pool instead.
	Workers int
	// Shards partitions the pre-matching and remainder record space by
	// blocking key into this many independent shards, each scanned with its
	// own transient engine/index/memo state on a worker pool bounded by
	// Workers — bounding peak memory by the shard size instead of the
	// dataset size, at the cost of the resident path's cross-iteration memo
	// reuse. Results are identical for every K (differential-tested);
	// <= 1 selects the resident single-shard path. Like Workers, this is
	// an execution knob: Fingerprint ignores it, so store snapshots are
	// shared across shard counts.
	Shards int
	// StopOnEmpty terminates the loop as soon as an iteration yields no new
	// group links (the M_G^p = ∅ condition of Algorithm 1). Enabled in the
	// default configuration.
	StopOnEmpty bool
	// DirectVerticesOnly restricts subgraph vertices to directly compared
	// pairs (ablation; the paper uses cluster labels, see MatchConfig).
	DirectVerticesOnly bool
	// VertexGuards enables extra vertex-level sanity guards beyond the
	// paper (see MatchConfig.VertexGuards).
	VertexGuards bool
	// OptimalRemainder solves the leftover 1:1 matching optimally (maximum
	// total similarity via the Hungarian algorithm) instead of greedily.
	OptimalRemainder bool
	// Panics selects what a pool-worker panic does to the run: abort with a
	// typed *PipelineError naming the offending work item (PanicFailFast,
	// the default), or skip the poisoned item, count it on the
	// obs.PanicsRecovered counter and complete on the remaining work
	// (PanicSkip).
	Panics PanicPolicy
	// Obs, when non-nil, collects stage timings and per-iteration counters
	// for the run (see internal/obs). Nil disables observability; the
	// pipeline never logs on its own.
	Obs *obs.Stats
	// Engine selects the comparison path. The zero value is EngineCompiled:
	// records are interned once per year-pair, the blocking index is built
	// once and filtered per δ-iteration, and pair similarities are memoized
	// across iterations. EngineNaive keeps the interpreted per-iteration
	// path as a differential-testing oracle; both produce identical results.
	Engine EngineKind
	// GraphCache, when non-nil, memoizes household-graph enrichment per
	// dataset content hash, so a process linking many year pairs over a
	// shared series (LinkSeries, the linkserver, an append-only evolution
	// build) enriches each census year once instead of once per pair. Like
	// Workers and Shards this is an execution knob: results are identical
	// with or without it and Fingerprint ignores it.
	GraphCache *hgraph.Cache
}

// DefaultConfig returns the paper's best configuration: ω2 pre-matching with
// δ_high=0.7, Δ=0.05, δ_low=0.5, group-selection weights (α, β)=(0.2, 0.7)
// and an age tolerance of 3 years.
func DefaultConfig() Config {
	return Config{
		Sim:          OmegaTwo(0.7),
		DeltaHigh:    0.7,
		DeltaLow:     0.5,
		DeltaStep:    0.05,
		Alpha:        0.2,
		Beta:         0.7,
		AgeTolerance: 3,
		Remainder:    OmegaTwo(0.75),
		Strategies:   block.DefaultStrategies(),
		StopOnEmpty:  true,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if err := c.Sim.Validate(); err != nil {
		return err
	}
	if err := c.Remainder.Validate(); err != nil {
		return fmt.Errorf("linkage: remainder: %w", err)
	}
	if c.DeltaHigh < c.DeltaLow {
		return fmt.Errorf("linkage: delta_high %.3f below delta_low %.3f", c.DeltaHigh, c.DeltaLow)
	}
	if c.DeltaHigh > c.DeltaLow && c.DeltaStep <= 0 {
		return fmt.Errorf("linkage: delta_step must be positive, got %.4f", c.DeltaStep)
	}
	if c.Alpha < 0 || c.Beta < 0 || c.Alpha+c.Beta > 1.0001 {
		return fmt.Errorf("linkage: invalid group weights alpha=%.2f beta=%.2f", c.Alpha, c.Beta)
	}
	if c.AgeTolerance < 0 {
		return fmt.Errorf("linkage: negative age tolerance %d", c.AgeTolerance)
	}
	if c.Shards < 0 {
		return fmt.Errorf("linkage: negative shard count %d", c.Shards)
	}
	if len(c.Strategies) == 0 {
		return fmt.Errorf("linkage: no blocking strategies configured")
	}
	return nil
}

// deltaSchedule returns the pre-matching thresholds of Algorithm 1 in
// descending order. Each δ is computed from the iteration index
// (DeltaHigh - i*DeltaStep, snapped to the decimal grid) rather than by
// repeated subtraction, so binary floating-point drift cannot leak values
// like 0.6000000000000001 into IterationStats, LinkSource provenance, obs
// snapshots or JSON reports. The final threshold is clamped to exactly
// DeltaLow, so the paper-mandated δ_low iteration runs even when
// DeltaHigh-DeltaLow is not an integer multiple of DeltaStep.
func (c Config) deltaSchedule() []float64 {
	if c.DeltaHigh <= c.DeltaLow || c.DeltaStep <= 0 {
		return []float64{c.DeltaLow} // one-shot configuration
	}
	var out []float64
	for i := 0; ; i++ {
		d := roundDelta(c.DeltaHigh - float64(i)*c.DeltaStep)
		if d <= c.DeltaLow {
			return append(out, c.DeltaLow)
		}
		out = append(out, d)
	}
}

// roundDelta snaps a computed threshold to nine decimal places, more than
// enough for any configured step while absorbing one multiply's rounding
// error.
func roundDelta(x float64) float64 { return math.Round(x*1e9) / 1e9 }

// IterationStats reports what one relaxation round contributed.
type IterationStats struct {
	Delta          float64
	ComparedPairs  int
	CandidateLinks int // pre-matching links above δ
	GroupPairs     int // candidate group pairs examined
	NewGroupLinks  int
	NewRecordLinks int
	RemainingOld   int // unlinked old records after the round
	RemainingNew   int
}

// SourceKind distinguishes how a record link was found.
type SourceKind int

// Record-link sources.
const (
	// SourceSubgraph marks links extracted from an accepted subgraph.
	SourceSubgraph SourceKind = iota
	// SourceRemainder marks links from the final Sim_func_rem pass.
	SourceRemainder
)

// String names the source kind.
func (k SourceKind) String() string {
	if k == SourceRemainder {
		return "remainder"
	}
	return "subgraph"
}

// LinkSource is the provenance of one record link: the pipeline stage that
// produced it, the threshold in effect, and (for subgraph links) the
// supporting group pair and its aggregated similarity.
type LinkSource struct {
	Kind  SourceKind
	Delta float64   // pre-matching δ of the iteration, or Sim_func_rem's δ
	Group GroupPair // supporting group pair (subgraph links only)
	GSim  float64   // the supporting subgraph's g_sim (subgraph links only)
}

// Result is the output of Algorithm 1: the 1:1 record mapping M_R, the N:M
// group mapping M_G, per-iteration statistics and per-link provenance.
type Result struct {
	RecordLinks []RecordLink
	GroupLinks  []GroupLink
	Iterations  []IterationStats
	// Sources records, for every record link, which stage produced it.
	Sources map[Pair]LinkSource
	// RemainderRecordLinks counts how many record links came from the final
	// Sim_func_rem pass rather than from subgraph matching.
	RemainderRecordLinks int
	// RemainderGroupLinks counts group links derived from those leftovers.
	RemainderGroupLinks int
}

// RecordPairs returns the record mapping as a set of ID pairs.
func (r *Result) RecordPairs() map[Pair]bool {
	out := make(map[Pair]bool, len(r.RecordLinks))
	for _, l := range r.RecordLinks {
		out[Pair{Old: l.Old, New: l.New}] = true
	}
	return out
}

// GroupPairsSet returns the group mapping as a set of household ID pairs.
func (r *Result) GroupPairsSet() map[GroupPair]bool {
	out := make(map[GroupPair]bool, len(r.GroupLinks))
	for _, l := range r.GroupLinks {
		out[GroupPair{Old: l.Old, New: l.New}] = true
	}
	return out
}

// Link runs the full iterative record and group linkage (Algorithm 1)
// between two successive census datasets.
func Link(oldDS, newDS *census.Dataset, cfg Config) (*Result, error) {
	return LinkContext(context.Background(), oldDS, newDS, cfg)
}

// LinkContext is Link with cooperative cancellation: the iteration loop,
// the pre-matching chunk workers, the subgraph-match worker pool and the
// remainder matchers all observe ctx at checkpoints, so a deadline or
// SIGINT aborts the run promptly with a *PipelineError wrapping ctx.Err()
// (errors.Is sees context.Canceled / context.DeadlineExceeded) instead of
// wedging the process. Worker panics are isolated per Config.Panics.
//
// LinkContext itself is a thin composition: it validates the configuration,
// wires the default stage set (stages.go; the sharded variants when
// cfg.Shards > 1) and hands control to the stage executor below.
func LinkContext(ctx context.Context, oldDS, newDS *census.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return runStages(ctx, oldDS, newDS, cfg, newStageSet(cfg))
}

// runStages is the stage executor of Algorithm 1: Enrich and Block once,
// then per δ-iteration PreMatch → candidate group pairs → SubgraphMatch →
// Select with the global remaining-record bookkeeping, and finally the
// Remainder pass plus extractGroupLinks. All cross-stage state — the
// remaining record lists, the seen-group dedup, provenance, iteration
// statistics — lives here; the stages only transform their typed artifacts.
func runStages(ctx context.Context, oldDS, newDS *census.Dataset, cfg Config, stages *stageSet) (*Result, error) {
	// completeGroups: enrich every household graph once.
	enr, err := stages.enrich.Enrich(ctx, oldDS, newDS)
	if err != nil {
		return nil, err
	}
	parts, err := stages.block.Block(ctx, enr)
	if err != nil {
		return nil, err
	}

	res := &Result{Sources: make(map[Pair]LinkSource)}
	remainingOld := append([]*census.Record(nil), oldDS.Records()...)
	remainingNew := append([]*census.Record(nil), newDS.Records()...)
	groupSeen := make(map[GroupPair]bool)

	for _, delta := range cfg.deltaSchedule() {
		if err := ctx.Err(); err != nil {
			return nil, cancelErr("iterate", delta, err)
		}
		cfg.Obs.BeginIteration(delta)
		pre, err := stages.prematch.PreMatch(ctx, parts, delta, remainingOld, remainingNew)
		if err != nil {
			cfg.Obs.EndIteration()
			return nil, err
		}
		cfg.Obs.Add(obs.BlockingPairs, pre.Blocked)
		cfg.Obs.Add(obs.PairsCompared, pre.Compared)
		cfg.Obs.Add(obs.CandidateLinks, len(pre.Links))
		cfg.Obs.Add(obs.ClusterLabels, len(pre.LabelSize))
		stop := cfg.Obs.Stage("candidate_groups")
		pairs := CandidateGroupPairs(pre, oldDS, newDS)
		stop()
		cfg.Obs.Add(obs.GroupPairs, len(pairs))
		subs, err := stages.subgraphs.MatchSubgraphs(ctx, enr, delta, pairs, pre)
		if err != nil {
			cfg.Obs.EndIteration()
			return nil, err
		}
		cfg.Obs.Add(obs.Subgraphs, len(subs))
		accepted := stages.selector.Select(subs)
		var groups []GroupLink
		var records []RecordLink
		for _, acc := range accepted {
			groups = append(groups, acc.Group)
			records = append(records, acc.Records...)
			for _, l := range acc.Records {
				res.Sources[Pair{Old: l.Old, New: l.New}] = LinkSource{
					Kind:  SourceSubgraph,
					Delta: delta,
					Group: GroupPair(acc.Group),
					GSim:  acc.GSim,
				}
			}
		}

		newGroups := 0
		for _, g := range groups {
			gp := GroupPair(g)
			if !groupSeen[gp] {
				groupSeen[gp] = true
				res.GroupLinks = append(res.GroupLinks, g)
				newGroups++
			}
		}
		res.RecordLinks = append(res.RecordLinks, records...)
		remainingOld = withoutLinked(remainingOld, records, true)
		remainingNew = withoutLinked(remainingNew, records, false)

		res.Iterations = append(res.Iterations, IterationStats{
			Delta:          delta,
			ComparedPairs:  pre.Compared,
			CandidateLinks: len(pre.Links),
			GroupPairs:     len(pairs),
			NewGroupLinks:  newGroups,
			NewRecordLinks: len(records),
			RemainingOld:   len(remainingOld),
			RemainingNew:   len(remainingNew),
		})
		cfg.Obs.Add(obs.GroupLinks, newGroups)
		cfg.Obs.Add(obs.RecordLinks, len(records))
		cfg.Obs.EndIteration()
		if cfg.StopOnEmpty && len(groups) == 0 {
			break
		}
	}

	// Match the remaining records attribute-only (line 17 of Algorithm 1).
	remLinks, remErr := stages.remainder.MatchRemainder(ctx, enr, parts, remainingOld, remainingNew)
	if remErr != nil {
		return nil, remErr
	}
	cfg.Obs.Add(obs.RemainderLinks, len(remLinks))
	res.RecordLinks = append(res.RecordLinks, remLinks...)
	res.RemainderRecordLinks = len(remLinks)
	for _, l := range remLinks {
		res.Sources[Pair{Old: l.Old, New: l.New}] = LinkSource{
			Kind:  SourceRemainder,
			Delta: cfg.Remainder.Delta,
		}
	}

	// extractGroupLinks: group pairs newly connected by the leftover links.
	for _, l := range remLinks {
		o, n := oldDS.Record(l.Old), newDS.Record(l.New)
		if o == nil || n == nil {
			continue
		}
		gp := GroupPair{Old: o.HouseholdID, New: n.HouseholdID}
		if !groupSeen[gp] {
			groupSeen[gp] = true
			res.GroupLinks = append(res.GroupLinks, GroupLink(gp))
			res.RemainderGroupLinks++
		}
	}
	cfg.Obs.Add(obs.RemainderGroupLinks, res.RemainderGroupLinks)

	sort.Slice(res.RecordLinks, func(i, j int) bool {
		if res.RecordLinks[i].Old != res.RecordLinks[j].Old {
			return res.RecordLinks[i].Old < res.RecordLinks[j].Old
		}
		return res.RecordLinks[i].New < res.RecordLinks[j].New
	})
	sort.Slice(res.GroupLinks, func(i, j int) bool {
		if res.GroupLinks[i].Old != res.GroupLinks[j].Old {
			return res.GroupLinks[i].Old < res.GroupLinks[j].Old
		}
		return res.GroupLinks[i].New < res.GroupLinks[j].New
	})
	return res, nil
}

// RemainderOptions configures one standalone leftover-matching pass (see
// MatchRemaining). The zero value of every field is usable: year 0, the
// naive engine, an unsharded greedy pass with no observability.
type RemainderOptions struct {
	// Sim is the attribute-only similarity function Sim_func_rem; its own
	// Delta applies.
	Sim SimFunc
	// OldYear and NewYear are the census years of the two record lists.
	OldYear, NewYear int
	// Match supplies the age-consistency guard (year gap and tolerance).
	Match MatchConfig
	// Strategies is the blocking configuration; it must not be empty.
	Strategies []block.Strategy
	// Engine selects the comparison path (EngineNaive is the zero value,
	// matching the historical behaviour; results are identical either way).
	Engine EngineKind
	// Shards splits the candidate scan into K block-key shards with
	// per-shard engine/index state (see Config.Shards); <= 1 runs
	// unsharded. The 1:1 selection always runs globally.
	Shards int
	// Workers bounds the shard worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Optimal solves the 1:1 matching optimally (Hungarian) instead of
	// greedily by descending similarity.
	Optimal bool
	// Obs, when non-nil, receives the compiled engine's cache counters.
	Obs *obs.Stats
}

// MatchRemaining links leftover records with the attribute-only similarity
// function Sim_func_rem: blocked candidates above the threshold that are
// age-consistent with the census interval, selected into a 1:1 mapping —
// greedily by descending similarity, or optimally (maximum total similarity
// via the Hungarian algorithm) with opts.Optimal. It is the single
// standalone entry point of the remainder pass; it replaces the former
// MatchRemaining/MatchRemainingOptimal pair.
func MatchRemaining(ctx context.Context, old, new []*census.Record, opts RemainderOptions) ([]RecordLink, error) {
	if opts.Shards > 1 {
		parts := partitionRecords(old, opts.OldYear, new, opts.NewYear, opts.Strategies, opts.Shards)
		cands, err := shardedRemainderCands(ctx, parts, opts.OldYear, opts.NewYear,
			old, new, opts.Sim, opts.Match, opts.Engine, opts.Strategies, opts.Workers, opts.Obs)
		if err != nil {
			return nil, err
		}
		if opts.Optimal {
			return optimalRemainder(cands, old, new), nil
		}
		return greedyRemainder(cands), nil
	}
	var cp *compiledPair
	if opts.Engine == EngineCompiled {
		active := make([]bool, len(new))
		for i := range active {
			active[i] = true
		}
		cp = &compiledPair{
			eng:    opts.Sim.Compile(old, new),
			ix:     block.NewIndex(new, opts.NewYear, opts.Strategies),
			active: active,
		}
		defer cp.flushCounters(opts.Obs)
	}
	if opts.Optimal {
		return matchRemainingOptimal(ctx, old, opts.OldYear, new, opts.NewYear, opts.Sim, opts.Match, opts.Strategies, cp)
	}
	return matchRemaining(ctx, old, opts.OldYear, new, opts.NewYear, opts.Sim, opts.Match, opts.Strategies, cp)
}

// remainderCands collects the blocked, age-consistent candidate links with
// similarity at or above Sim_func_rem's δ, in deterministic scan order,
// after the remainder fault-injection checkpoint. It is the shared front
// half of the greedy and optimal remainder matchers.
func remainderCands(ctx context.Context, old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, cfg MatchConfig, strategies []block.Strategy, cp *compiledPair) ([]RecordLink, error) {
	if err := faultinject.Hit("linkage.remainder"); err != nil {
		return nil, &PipelineError{Stage: "remainder", Delta: f.Delta, Chunk: -1, Err: err}
	}
	return remainderScan(ctx, old, oldYear, new, newYear, f, cfg, strategies, cp)
}

// remainderScan is the remainder candidate scan proper (no fault-injection
// checkpoint — the sharded path hits it once per pass, not per shard). With
// a compiled pair the candidates come from the prebuilt index filtered by
// the active mask and are scored through the memoizing engine; the accepted
// links and similarities are identical to the naive scan's.
func remainderScan(ctx context.Context, old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, cfg MatchConfig, strategies []block.Strategy, cp *compiledPair) ([]RecordLink, error) {
	var ix *block.Index
	if cp == nil {
		ix = block.NewIndex(new, newYear, strategies)
	}
	var cands []RecordLink
	var scratch block.Scratch
	for i, o := range old {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, cancelErr("remainder", f.Delta, err)
			}
		}
		if cp != nil {
			oi, ok := cp.eng.Old.Pos(o.ID)
			if !ok {
				continue
			}
			for _, ni := range cp.ix.CandidateIndices(o, oldYear, &scratch) {
				if !cp.active[ni] {
					continue
				}
				n := cp.ix.Record(ni)
				if !cfg.ageConsistent(o, n) {
					continue
				}
				if s, hit := cp.eng.AggSimAtLeast(oi, int(ni), f.Delta); hit {
					cands = append(cands, RecordLink{Old: o.ID, New: n.ID, Sim: s})
				}
			}
			continue
		}
		for _, n := range ix.Candidates(o, oldYear, &scratch) {
			if !cfg.ageConsistent(o, n) {
				continue
			}
			if s := f.AggSim(o, n); s >= f.Delta {
				cands = append(cands, RecordLink{Old: o.ID, New: n.ID, Sim: s})
			}
		}
	}
	return cands, nil
}

// greedyRemainder selects a 1:1 mapping from the candidate links greedily by
// descending similarity (ties broken by record IDs, so the result is
// deterministic regardless of candidate order).
func greedyRemainder(cands []RecordLink) []RecordLink {
	cands = append([]RecordLink(nil), cands...)
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Sim != b.Sim {
			return a.Sim > b.Sim
		}
		if a.Old != b.Old {
			return a.Old < b.Old
		}
		return a.New < b.New
	})
	usedOld := make(map[string]bool)
	usedNew := make(map[string]bool)
	var out []RecordLink
	for _, c := range cands {
		if usedOld[c.Old] || usedNew[c.New] {
			continue
		}
		usedOld[c.Old] = true
		usedNew[c.New] = true
		out = append(out, c)
	}
	return out
}

// optimalRemainder selects the 1:1 mapping of maximum total similarity over
// the candidate links with the Hungarian algorithm (per connected candidate
// component), sorted by record IDs.
func optimalRemainder(cands []RecordLink, old, new []*census.Record) []RecordLink {
	oldIdx := make(map[string]int, len(old))
	for i, r := range old {
		oldIdx[r.ID] = i
	}
	newIdx := make(map[string]int, len(new))
	for i, r := range new {
		newIdx[r.ID] = i
	}
	edges := make([]assign.Edge, 0, len(cands))
	for _, c := range cands {
		edges = append(edges, assign.Edge{Left: oldIdx[c.Old], Right: newIdx[c.New], Weight: c.Sim})
	}
	match := assign.Max(len(old), len(new), edges)
	sims := make(map[[2]int]float64, len(edges))
	for _, e := range edges {
		k := [2]int{e.Left, e.Right}
		if e.Weight > sims[k] {
			sims[k] = e.Weight
		}
	}
	var out []RecordLink
	for l, r := range match {
		if r >= 0 {
			out = append(out, RecordLink{Old: old[l].ID, New: new[r].ID, Sim: sims[[2]int{l, r}]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Old != out[j].Old {
			return out[i].Old < out[j].Old
		}
		return out[i].New < out[j].New
	})
	return out
}

// matchRemaining is the unsharded greedy remainder pass with cooperative
// cancellation: the candidate scan observes ctx every few records and
// aborts with a typed error, so the final pass of Algorithm 1 cannot wedge
// a cancelled run. With a background context it never fails.
func matchRemaining(ctx context.Context, old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, cfg MatchConfig, strategies []block.Strategy, cp *compiledPair) ([]RecordLink, error) {
	cands, err := remainderCands(ctx, old, oldYear, new, newYear, f, cfg, strategies, cp)
	if err != nil {
		return nil, err
	}
	return greedyRemainder(cands), nil
}

// matchGroupsParallel runs MatchGroups over all candidate group pairs with
// a bounded worker pool; the output order matches the input pair order, so
// the result is deterministic. Every worker isolates panics: under
// PanicFailFast the pool drains promptly and the first failure (in pair
// order) surfaces as a *PipelineError naming the group pair; under
// PanicSkip the poisoned pairs contribute no subgraph and are counted on
// obs.PanicsRecovered. Cancellation stops the pool between pairs.
func matchGroupsParallel(ctx context.Context, delta float64, pairs []GroupPair, oldGraphs, newGraphs map[string]*hgraph.Graph,
	pre *PreMatchResult, f SimFunc, matchCfg MatchConfig, workers int, policy PanicPolicy, st *obs.Stats) ([]*Subgraph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	slots := make([]*Subgraph, len(pairs))
	errs := make([]error, len(pairs))
	matchOne := func(i int) (err error) {
		gp := pairs[i]
		defer func() {
			if r := recover(); r != nil {
				pe := panicErr("subgraph_match", delta, r, debug.Stack())
				pe.Group = gp
				err = pe
			}
		}()
		if e := faultinject.Hit("linkage.match_groups"); e != nil {
			return &PipelineError{Stage: "subgraph_match", Delta: delta, Group: gp, Chunk: -1, Err: e}
		}
		slots[i] = MatchGroups(oldGraphs[gp.Old], newGraphs[gp.New], pre, f, matchCfg)
		return nil
	}
	if workers <= 1 {
		for i := range pairs {
			if i%cancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, cancelErr("subgraph_match", delta, err)
				}
			}
			if errs[i] = matchOne(i); errs[i] != nil && policy == PanicFailFast {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		abort := make(chan struct{})
		var abortOnce sync.Once
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if errs[i] = matchOne(i); errs[i] != nil && policy == PanicFailFast {
						abortOnce.Do(func() { close(abort) })
					}
				}
			}()
		}
	feed:
		for i := range pairs {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			case <-abort:
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	// Cancellation wins over worker failures: the caller asked the whole
	// run to stop, so report that rather than a coincidental pair error.
	if err := ctx.Err(); err != nil {
		return nil, cancelErr("subgraph_match", delta, err)
	}
	recovered := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		if policy == PanicFailFast {
			return nil, err
		}
		recovered++
	}
	st.Add(obs.PanicsRecovered, recovered)
	subs := slots[:0]
	for _, s := range slots {
		if s != nil {
			subs = append(subs, s)
		}
	}
	return subs, nil
}

// matchRemainingOptimal is the unsharded optimal remainder pass with
// cooperative cancellation during the candidate scan (the assignment solve
// itself runs to completion; it is in-memory and brief relative to the
// scan). With a background context it never fails.
func matchRemainingOptimal(ctx context.Context, old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, cfg MatchConfig, strategies []block.Strategy, cp *compiledPair) ([]RecordLink, error) {
	cands, err := remainderCands(ctx, old, oldYear, new, newYear, f, cfg, strategies, cp)
	if err != nil {
		return nil, err
	}
	return optimalRemainder(cands, old, new), nil
}

// withoutLinked filters out the records that appear on the given side of any
// link, preserving order (nonMatchedRecords of Algorithm 1).
func withoutLinked(recs []*census.Record, links []RecordLink, oldSide bool) []*census.Record {
	if len(links) == 0 {
		return recs
	}
	linked := make(map[string]bool, len(links))
	for _, l := range links {
		if oldSide {
			linked[l.Old] = true
		} else {
			linked[l.New] = true
		}
	}
	out := recs[:0]
	for _, r := range recs {
		if !linked[r.ID] {
			out = append(out, r)
		}
	}
	return out
}
