package linkage_test

// Fault-injection tests for the pipeline's robustness guarantees: worker
// panics become typed errors naming the offending work item (fail-fast) or
// are absorbed and counted (skip), and cancellation aborts promptly from
// any stage. All tests arm the process-global faultinject registry, so none
// of them may call t.Parallel().

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"censuslink/internal/faultinject"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/paperexample"
)

func faultConfig(workers int) linkage.Config {
	cfg := linkage.DefaultConfig()
	cfg.Workers = workers
	return cfg
}

func skipWithoutInjection(t *testing.T) {
	t.Helper()
	if !faultinject.Enabled {
		t.Skip("built with nofaultinject: registry compiled out")
	}
}

func TestWorkerPanicFailFast(t *testing.T) {
	skipWithoutInjection(t)
	defer faultinject.Reset()
	faultinject.Set("linkage.match_groups", faultinject.PanicOnCall(1, "poisoned household"))

	old, new := paperexample.Old(), paperexample.New()
	_, err := linkage.LinkContext(context.Background(), old, new, faultConfig(2))
	if err == nil {
		t.Fatal("injected worker panic did not fail the run")
	}
	var pe *linkage.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error type = %T, want *PipelineError (%v)", err, err)
	}
	if pe.Panic == nil {
		t.Errorf("PipelineError.Panic = nil, want the recovered value")
	}
	if len(pe.Stack) == 0 {
		t.Errorf("PipelineError.Stack empty, want the worker stack trace")
	}
	if pe.Group.Old == "" || pe.Group.New == "" {
		t.Errorf("PipelineError.Group = %+v, want the offending group pair", pe.Group)
	}
	if pe.Canceled() {
		t.Errorf("panic reported as cancellation: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "group pair") || !strings.Contains(msg, "poisoned household") {
		t.Errorf("error message %q does not name the group pair and panic value", msg)
	}
}

func TestWorkerPanicSkipCompletes(t *testing.T) {
	skipWithoutInjection(t)
	defer faultinject.Reset()
	faultinject.Set("linkage.match_groups", faultinject.PanicOnCall(1, "poisoned household"))

	stats := obs.NewStats(nil)
	cfg := faultConfig(2)
	cfg.Panics = linkage.PanicSkip
	cfg.Obs = stats
	old, new := paperexample.Old(), paperexample.New()
	res, err := linkage.LinkContext(context.Background(), old, new, cfg)
	if err != nil {
		t.Fatalf("skip policy did not absorb the panic: %v", err)
	}
	if res == nil || len(res.RecordLinks) == 0 {
		t.Fatal("skip policy produced no result")
	}
	if got := stats.Total(obs.PanicsRecovered); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
}

func TestPreMatchChunkPanic(t *testing.T) {
	skipWithoutInjection(t)
	old, new := paperexample.Old(), paperexample.New()

	t.Run("fail-fast", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Set("linkage.prematch.chunk", faultinject.PanicOnCall(1, "chunk crash"))
		_, err := linkage.LinkContext(context.Background(), old, new, faultConfig(2))
		var pe *linkage.PipelineError
		if !errors.As(err, &pe) {
			t.Fatalf("error = %v, want *PipelineError", err)
		}
		if pe.Stage != "prematch" || pe.Chunk < 0 {
			t.Errorf("stage=%q chunk=%d, want a prematch chunk failure", pe.Stage, pe.Chunk)
		}
	})
	t.Run("skip", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Set("linkage.prematch.chunk", faultinject.PanicOnCall(1, "chunk crash"))
		stats := obs.NewStats(nil)
		cfg := faultConfig(2)
		cfg.Panics = linkage.PanicSkip
		cfg.Obs = stats
		if _, err := linkage.LinkContext(context.Background(), old, new, cfg); err != nil {
			t.Fatalf("skip policy did not absorb the chunk panic: %v", err)
		}
		if got := stats.Total(obs.PanicsRecovered); got < 1 {
			t.Errorf("panics_recovered = %d, want >= 1", got)
		}
	})
}

// TestCancellationMidIteration cancels the context from inside a pre-matching
// chunk worker (the hook fires after the run has started) and checks that the
// pipeline aborts with the cancellation, not with a partial result.
func TestCancellationMidIteration(t *testing.T) {
	skipWithoutInjection(t)
	defer faultinject.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Set("linkage.prematch.chunk", func() error {
		cancel()
		return nil
	})

	old, new := paperexample.Old(), paperexample.New()
	res, err := linkage.LinkContext(ctx, old, new, faultConfig(2))
	if res != nil {
		t.Error("cancelled run returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	var pe *linkage.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error type = %T, want *PipelineError", err)
	}
	if !pe.Canceled() {
		t.Errorf("Canceled() = false for %v", err)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	old, new := paperexample.Old(), paperexample.New()
	_, err := linkage.LinkContext(ctx, old, new, faultConfig(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
}

func TestRemainderInjectedFailure(t *testing.T) {
	skipWithoutInjection(t)
	defer faultinject.Reset()
	errInjected := errors.New("injected remainder failure")
	faultinject.Set("linkage.remainder", faultinject.FailOnCall(1, errInjected))

	old, new := paperexample.Old(), paperexample.New()
	_, err := linkage.LinkContext(context.Background(), old, new, faultConfig(1))
	if !errors.Is(err, errInjected) {
		t.Fatalf("error = %v, want the injected failure", err)
	}
	var pe *linkage.PipelineError
	if !errors.As(err, &pe) || pe.Stage != "remainder" {
		t.Fatalf("error = %#v, want a remainder-stage PipelineError", err)
	}
}

// TestInjectionLayerTransparent proves the registry does not perturb the
// linkage: output is identical with the registry idle and with a hook armed
// on a point the pipeline never hits. (CI additionally builds and tests with
// -tags nofaultinject, covering the compiled-out variant.)
func TestInjectionLayerTransparent(t *testing.T) {
	skipWithoutInjection(t)
	defer faultinject.Reset()
	old, new := paperexample.Old(), paperexample.New()

	base, err := linkage.LinkContext(context.Background(), old, new, faultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("unused.point", faultinject.FailOnCall(1, errors.New("never hit")))
	armed, err := linkage.LinkContext(context.Background(), old, new, faultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.RecordLinks, armed.RecordLinks) {
		t.Error("record links differ with an unrelated hook armed")
	}
	if !reflect.DeepEqual(base.GroupLinks, armed.GroupLinks) {
		t.Error("group links differ with an unrelated hook armed")
	}
}
