package linkage

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// MatcherSpec is the serialisable form of one attribute matcher: the
// attribute name, a registered matcher name and a weight.
type MatcherSpec struct {
	Attribute string  `json:"attribute"`
	Matcher   string  `json:"matcher"`
	Weight    float64 `json:"weight"`
}

// SimFuncSpec is the serialisable form of a SimFunc.
type SimFuncSpec struct {
	Name     string        `json:"name,omitempty"`
	Delta    float64       `json:"delta"`
	Matchers []MatcherSpec `json:"matchers"`
}

// ConfigSpec is the serialisable form of a linkage Config, used by the
// command-line tools to load reproducible configurations from JSON.
type ConfigSpec struct {
	Sim                SimFuncSpec `json:"sim"`
	DeltaHigh          float64     `json:"delta_high"`
	DeltaLow           float64     `json:"delta_low"`
	DeltaStep          float64     `json:"delta_step"`
	Alpha              float64     `json:"alpha"`
	Beta               float64     `json:"beta"`
	AgeTolerance       int         `json:"age_tolerance"`
	Remainder          SimFuncSpec `json:"remainder"`
	Workers            int         `json:"workers,omitempty"`
	Shards             int         `json:"shards,omitempty"`
	StopOnEmpty        bool        `json:"stop_on_empty"`
	DirectVerticesOnly bool        `json:"direct_vertices_only,omitempty"`
	VertexGuards       bool        `json:"vertex_guards,omitempty"`
	OptimalRemainder   bool        `json:"optimal_remainder,omitempty"`
	// Engine selects the comparison path: "compiled" (default when empty)
	// or "naive" (see ParseEngine).
	Engine string `json:"engine,omitempty"`
	// Blocking selects the candidate-generation scheme: "default" (when
	// empty), "high-recall", "lsh" or "lsh+default" (see ParseBlocking).
	Blocking string `json:"blocking,omitempty"`
}

// matcherRegistry maps registered matcher names to similarity functions.
var matcherRegistry = map[string]strsim.Func{
	"qgram2":      strsim.QGram(2),
	"qgram3":      strsim.QGram(3),
	"jaro":        strsim.Jaro,
	"jarowinkler": strsim.JaroWinkler,
	"editsim":     strsim.EditSim,
	"damerau":     strsim.DamerauSim,
	"exact":       strsim.Exact,
	"tokendice":   strsim.TokenDice,
	"lcs":         strsim.LCSSim(2),
	"mongeelkan":  strsim.SymmetricMongeElkan(strsim.JaroWinkler),
}

// profiledRegistry maps matcher names to their precompilable profile forms
// for the compiled engine. Names absent here (damerau, tokendice, lcs,
// mongeelkan) have no native profile and fall back to memoizing the string
// function, which is still correct — just without precomputation.
var profiledRegistry = map[string]*strsim.Profiled{
	"qgram2":      strsim.BigramProfiled,
	"qgram3":      strsim.QGramProfiled(3),
	"jaro":        strsim.JaroProfiled,
	"jarowinkler": strsim.JaroWinklerProfiled,
	"editsim":     strsim.EditSimProfiled,
	"exact":       strsim.ExactProfiled,
}

// MatcherNames lists the registered matcher names, for error messages and
// tool help.
func MatcherNames() []string {
	names := make([]string, 0, len(matcherRegistry))
	for n := range matcherRegistry {
		names = append(names, n)
	}
	return names
}

// attrByName resolves a lower-case attribute name.
func attrByName(name string) (census.Attribute, error) {
	for a := census.Attribute(0); int(a) < census.NumAttributes; a++ {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("linkage: unknown attribute %q", name)
}

// Build resolves a SimFuncSpec into a SimFunc, validating it.
func (s SimFuncSpec) Build() (SimFunc, error) {
	f := SimFunc{Name: s.Name, Delta: s.Delta}
	for _, m := range s.Matchers {
		attr, err := attrByName(m.Attribute)
		if err != nil {
			return SimFunc{}, err
		}
		name := strings.ToLower(m.Matcher)
		sim, ok := matcherRegistry[name]
		if !ok {
			return SimFunc{}, fmt.Errorf("linkage: unknown matcher %q (known: %s)",
				m.Matcher, strings.Join(MatcherNames(), ", "))
		}
		f.Matchers = append(f.Matchers, AttributeMatcher{Attr: attr, Sim: sim, Prof: profiledRegistry[name], Name: name, Weight: m.Weight})
	}
	if err := f.Validate(); err != nil {
		return SimFunc{}, err
	}
	return f, nil
}

// Build resolves a ConfigSpec into a runnable Config.
func (s ConfigSpec) Build() (Config, error) {
	sim, err := s.Sim.Build()
	if err != nil {
		return Config{}, fmt.Errorf("linkage: sim: %w", err)
	}
	rem, err := s.Remainder.Build()
	if err != nil {
		return Config{}, fmt.Errorf("linkage: remainder: %w", err)
	}
	engine, err := ParseEngine(s.Engine)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Sim:                sim,
		DeltaHigh:          s.DeltaHigh,
		DeltaLow:           s.DeltaLow,
		DeltaStep:          s.DeltaStep,
		Alpha:              s.Alpha,
		Beta:               s.Beta,
		AgeTolerance:       s.AgeTolerance,
		Remainder:          rem,
		Workers:            s.Workers,
		Shards:             s.Shards,
		StopOnEmpty:        s.StopOnEmpty,
		DirectVerticesOnly: s.DirectVerticesOnly,
		VertexGuards:       s.VertexGuards,
		OptimalRemainder:   s.OptimalRemainder,
		Engine:             engine,
	}
	cfg.Strategies, err = ParseBlocking(s.Blocking)
	if err != nil {
		return Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// DefaultConfigSpec returns the serialisable form of the paper's default
// configuration (ω2, δ 0.7→0.5, (α, β) = (0.2, 0.7)).
func DefaultConfigSpec() ConfigSpec {
	omega2 := SimFuncSpec{
		Name: "omega2",
		Matchers: []MatcherSpec{
			{Attribute: "first name", Matcher: "qgram2", Weight: 0.4},
			{Attribute: "sex", Matcher: "exact", Weight: 0.2},
			{Attribute: "surname", Matcher: "qgram2", Weight: 0.2},
			{Attribute: "address", Matcher: "qgram2", Weight: 0.1},
			{Attribute: "occupation", Matcher: "qgram2", Weight: 0.1},
		},
	}
	sim := omega2
	sim.Delta = 0.7
	rem := omega2
	rem.Delta = 0.75
	return ConfigSpec{
		Sim:          sim,
		DeltaHigh:    0.7,
		DeltaLow:     0.5,
		DeltaStep:    0.05,
		Alpha:        0.2,
		Beta:         0.7,
		AgeTolerance: 3,
		Remainder:    rem,
		StopOnEmpty:  true,
	}
}

// ReadConfigSpec parses a ConfigSpec from JSON.
func ReadConfigSpec(r io.Reader) (ConfigSpec, error) {
	var s ConfigSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return ConfigSpec{}, fmt.Errorf("linkage: parse config: %w", err)
	}
	return s, nil
}

// WriteConfigSpec writes a ConfigSpec as indented JSON.
func WriteConfigSpec(w io.Writer, s ConfigSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
