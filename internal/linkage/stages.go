// Stage layer of the linkage pipeline (DESIGN.md §14): Algorithm 1 is
// decomposed into explicit stages — Enrich, Block, PreMatch, SubgraphMatch,
// Select and the final Remainder pass — each behind a small interface that
// consumes and produces typed artifacts and carries the existing
// ctx/obs/faultinject plumbing. Link/LinkContext compose the stages through
// the executor in iterative.go; the sharded stage variants live in shard.go.
//
// The stage interfaces live inside package linkage rather than a separate
// pipeline package because the artifacts they exchange (PreMatchResult,
// Subgraph, compiled engine state) are the package's own types — a child
// package would need them all exported and would import-cycle back.
package linkage

import (
	"context"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/hgraph"
)

// Enriched is the artifact of the Enrich stage: the two datasets with every
// household graph materialized (completeGroups of Algorithm 1) and the
// group-match configuration derived from the census interval.
type Enriched struct {
	Old, New *census.Dataset
	// Match is the subgraph-matching configuration (τ, year gap, α, β and
	// the ablation toggles) shared by the SubgraphMatch and Remainder
	// stages.
	Match MatchConfig
	// OldGraphs and NewGraphs hold one household graph per household ID.
	OldGraphs, NewGraphs map[string]*hgraph.Graph
}

// Partition is one shard of the record space: the old- and new-dataset
// records whose blocking keys hash to this shard, in dataset order. A
// record carrying keys that hash to several shards is replicated into each,
// so the union of per-shard candidate pairs is exactly the global candidate
// pair set (duplicates are deduplicated at merge time).
type Partition struct {
	Index    int
	Old, New []*census.Record
}

// Partitions is the artifact of the Block stage: the shard layout of the
// record space, plus — on the resident single-shard path — the compiled
// engine state that lives for the whole run.
type Partitions struct {
	// K is the shard count (1 = unsharded).
	K                int
	OldYear, NewYear int
	Parts            []*Partition
	// resident holds the compiled engines and shared blocking index of the
	// K==1 compiled path; nil under the naive engine or when sharded (the
	// sharded stages build transient per-shard state instead).
	resident *residentState
}

// residentState is the per-run compiled state of the unsharded path: one
// memoizing engine per similarity function, sharing the full-dataset
// blocking index and active mask across δ-iterations.
type residentState struct {
	sim, rem *compiledPair
}

// Enricher prepares the household graphs and match configuration of a year
// pair.
type Enricher interface {
	Enrich(ctx context.Context, oldDS, newDS *census.Dataset) (*Enriched, error)
}

// Blocker lays out the record space into partitions (and, on the resident
// path, compiles the engines).
type Blocker interface {
	Block(ctx context.Context, enr *Enriched) (*Partitions, error)
}

// PreMatcher runs one δ pre-matching pass (Section 3.2) over the remaining
// unlinked records and returns the candidate record links with their
// transitive-closure cluster labels.
type PreMatcher interface {
	PreMatch(ctx context.Context, parts *Partitions, delta float64, remOld, remNew []*census.Record) (*PreMatchResult, error)
}

// SubgraphMatcher matches the candidate group pairs' household graphs
// (Section 3.3) into scored subgraphs.
type SubgraphMatcher interface {
	MatchSubgraphs(ctx context.Context, enr *Enriched, delta float64, pairs []GroupPair, pre *PreMatchResult) ([]*Subgraph, error)
}

// Selector is Algorithm 2: the record-disjoint greedy selection of group
// links by descending aggregated similarity.
type Selector interface {
	Select(subs []*Subgraph) []Accepted
}

// RemainderMatcher is the final attribute-only pass (line 17 of
// Algorithm 1) over the records no iteration linked.
type RemainderMatcher interface {
	MatchRemainder(ctx context.Context, enr *Enriched, parts *Partitions, remOld, remNew []*census.Record) ([]RecordLink, error)
}

// graphEnricher is the default Enrich stage: hgraph.BuildAll over both
// datasets under the build_graphs timer.
type graphEnricher struct{ cfg Config }

func (g *graphEnricher) Enrich(ctx context.Context, oldDS, newDS *census.Dataset) (*Enriched, error) {
	if err := ctx.Err(); err != nil {
		return nil, cancelErr("build_graphs", 0, err)
	}
	stop := g.cfg.Obs.Stage("build_graphs")
	defer stop()
	buildAll := hgraph.BuildAll
	if g.cfg.GraphCache != nil {
		buildAll = g.cfg.GraphCache.BuildAll
	}
	return &Enriched{
		Old: oldDS,
		New: newDS,
		Match: MatchConfig{
			AgeTolerance:       g.cfg.AgeTolerance,
			YearGap:            newDS.Year - oldDS.Year,
			Alpha:              g.cfg.Alpha,
			Beta:               g.cfg.Beta,
			DirectVerticesOnly: g.cfg.DirectVerticesOnly,
			VertexGuards:       g.cfg.VertexGuards,
		},
		OldGraphs: buildAll(oldDS),
		NewGraphs: buildAll(newDS),
	}, nil
}

// keyBlocker is the default Block stage. Unsharded it exposes the full
// record lists as one partition and compiles the resident engines; sharded
// it hashes every blocking key into one of K shards and replicates each
// record into the shards its keys map to (shard.go).
type keyBlocker struct{ cfg Config }

func (b *keyBlocker) Block(ctx context.Context, enr *Enriched) (*Partitions, error) {
	if err := ctx.Err(); err != nil {
		return nil, cancelErr("block", 0, err)
	}
	parts := &Partitions{K: 1, OldYear: enr.Old.Year, NewYear: enr.New.Year}
	if b.cfg.Shards > 1 {
		stop := b.cfg.Obs.Stage("block_partition")
		parts.K = b.cfg.Shards
		parts.Parts = partitionRecords(enr.Old.Records(), enr.Old.Year,
			enr.New.Records(), enr.New.Year, b.cfg.Strategies, b.cfg.Shards)
		stop()
		return parts, nil
	}
	parts.Parts = []*Partition{{Old: enr.Old.Records(), New: enr.New.Records()}}
	if b.cfg.Engine == EngineCompiled {
		// Compiled resident path: intern both datasets and build the
		// blocking index once per year-pair. The engines (and their
		// distinct-pair memo tables) live for the whole call, so
		// similarities computed at a higher δ are reused verbatim at
		// relaxed thresholds, and the iteration loop only narrows the
		// shared active mask instead of rebuilding the index.
		stop := b.cfg.Obs.Stage("compile")
		oldRecs, newRecs := enr.Old.Records(), enr.New.Records()
		fullIx := block.NewIndex(newRecs, enr.New.Year, b.cfg.Strategies)
		active := make([]bool, len(newRecs))
		parts.resident = &residentState{
			sim: &compiledPair{eng: b.cfg.Sim.Compile(oldRecs, newRecs), ix: fullIx, active: active},
			rem: &compiledPair{eng: b.cfg.Remainder.Compile(oldRecs, newRecs), ix: fullIx, active: active},
		}
		stop()
	}
	return parts, nil
}

// residentPreMatcher is the unsharded PreMatch stage: one preMatch pass over
// the remaining records, through the resident compiled pair when present.
type residentPreMatcher struct{ cfg Config }

func (m *residentPreMatcher) PreMatch(ctx context.Context, parts *Partitions, delta float64, remOld, remNew []*census.Record) (*PreMatchResult, error) {
	f := m.cfg.Sim.WithDelta(delta)
	var cp *compiledPair
	if parts.resident != nil {
		cp = parts.resident.sim
	}
	stop := m.cfg.Obs.Stage("prematch")
	if cp != nil {
		cp.setActive(remNew)
	}
	pre, err := preMatch(ctx, remOld, parts.OldYear, remNew, parts.NewYear, f,
		m.cfg.Strategies, m.cfg.Workers, m.cfg.Panics, m.cfg.Obs, cp)
	stop()
	if cp != nil {
		cp.flushCounters(m.cfg.Obs)
	}
	return pre, err
}

// poolSubgraphMatcher is the default SubgraphMatch stage: MatchGroups over
// every candidate group pair on a bounded worker pool (group pairs are the
// natural subgraph partition — the stage holds no per-shard index or memo
// state, so it needs no sharded variant).
type poolSubgraphMatcher struct{ cfg Config }

func (m *poolSubgraphMatcher) MatchSubgraphs(ctx context.Context, enr *Enriched, delta float64, pairs []GroupPair, pre *PreMatchResult) ([]*Subgraph, error) {
	f := m.cfg.Sim.WithDelta(delta)
	stop := m.cfg.Obs.Stage("subgraph_match")
	defer stop()
	return matchGroupsParallel(ctx, delta, pairs, enr.OldGraphs, enr.NewGraphs,
		pre, f, enr.Match, m.cfg.Workers, m.cfg.Panics, m.cfg.Obs)
}

// heapSelector is the default Select stage: Algorithm 2's record-disjoint
// greedy selection.
type heapSelector struct{ cfg Config }

func (s *heapSelector) Select(subs []*Subgraph) []Accepted {
	stop := s.cfg.Obs.Stage("selection")
	defer stop()
	return SelectGroupLinksDetailed(subs)
}

// residentRemainderMatcher is the unsharded Remainder stage, scoring through
// the resident compiled pair when present.
type residentRemainderMatcher struct{ cfg Config }

func (m *residentRemainderMatcher) MatchRemainder(ctx context.Context, enr *Enriched, parts *Partitions, remOld, remNew []*census.Record) ([]RecordLink, error) {
	var cp *compiledPair
	if parts.resident != nil {
		cp = parts.resident.rem
	}
	stop := m.cfg.Obs.Stage("remainder")
	if cp != nil {
		cp.setActive(remNew)
	}
	var links []RecordLink
	var err error
	if m.cfg.OptimalRemainder {
		links, err = matchRemainingOptimal(ctx, remOld, parts.OldYear, remNew, parts.NewYear,
			m.cfg.Remainder, enr.Match, m.cfg.Strategies, cp)
	} else {
		links, err = matchRemaining(ctx, remOld, parts.OldYear, remNew, parts.NewYear,
			m.cfg.Remainder, enr.Match, m.cfg.Strategies, cp)
	}
	stop()
	if cp != nil {
		cp.flushCounters(m.cfg.Obs)
	}
	return links, err
}

// stageSet bundles one implementation per pipeline stage; the executor in
// iterative.go drives them through the δ-relaxation loop.
type stageSet struct {
	enrich    Enricher
	block     Blocker
	prematch  PreMatcher
	subgraphs SubgraphMatcher
	selector  Selector
	remainder RemainderMatcher
}

// newStageSet wires the default stage implementations for a validated
// configuration: resident single-shard stages, or the sharded variants when
// cfg.Shards > 1.
func newStageSet(cfg Config) *stageSet {
	s := &stageSet{
		enrich:    &graphEnricher{cfg: cfg},
		block:     &keyBlocker{cfg: cfg},
		subgraphs: &poolSubgraphMatcher{cfg: cfg},
		selector:  &heapSelector{cfg: cfg},
	}
	if cfg.Shards > 1 {
		s.prematch = &shardedPreMatcher{cfg: cfg}
		s.remainder = &shardedRemainderMatcher{cfg: cfg}
	} else {
		s.prematch = &residentPreMatcher{cfg: cfg}
		s.remainder = &residentRemainderMatcher{cfg: cfg}
	}
	return s
}
