package linkage

import (
	"bytes"
	"strings"
	"testing"

	"censuslink/internal/paperexample"
)

func TestDefaultConfigSpecBuilds(t *testing.T) {
	cfg, err := DefaultConfigSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := DefaultConfig()
	if cfg.DeltaHigh != ref.DeltaHigh || cfg.DeltaLow != ref.DeltaLow ||
		cfg.Alpha != ref.Alpha || cfg.Beta != ref.Beta ||
		cfg.AgeTolerance != ref.AgeTolerance {
		t.Errorf("spec-built config diverges from DefaultConfig: %+v", cfg)
	}
	// The built config must behave like the default on real data.
	old, new := paperexample.Old(), paperexample.New()
	a, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Link(old, new, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.RecordLinks) != len(b.RecordLinks) || len(a.GroupLinks) != len(b.GroupLinks) {
		t.Errorf("spec config links (%d/%d) differ from default (%d/%d)",
			len(a.RecordLinks), len(a.GroupLinks), len(b.RecordLinks), len(b.GroupLinks))
	}
}

func TestConfigSpecRoundTrip(t *testing.T) {
	spec := DefaultConfigSpec()
	spec.OptimalRemainder = true
	spec.VertexGuards = true
	var buf bytes.Buffer
	if err := WriteConfigSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfigSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeltaHigh != spec.DeltaHigh || !got.OptimalRemainder || !got.VertexGuards {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Sim.Matchers) != 5 || got.Sim.Matchers[0].Attribute != "first name" {
		t.Errorf("matchers lost: %+v", got.Sim.Matchers)
	}
	if _, err := got.Build(); err != nil {
		t.Errorf("round-tripped spec does not build: %v", err)
	}
}

func TestConfigSpecErrors(t *testing.T) {
	bad := DefaultConfigSpec()
	bad.Sim.Matchers[0].Matcher = "quantum"
	if _, err := bad.Build(); err == nil || !strings.Contains(err.Error(), "unknown matcher") {
		t.Errorf("unknown matcher accepted: %v", err)
	}
	bad = DefaultConfigSpec()
	bad.Sim.Matchers[0].Attribute = "shoe size"
	if _, err := bad.Build(); err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Errorf("unknown attribute accepted: %v", err)
	}
	bad = DefaultConfigSpec()
	bad.Sim.Matchers[0].Weight = 0.9 // weights no longer sum to 1
	if _, err := bad.Build(); err == nil {
		t.Error("invalid weights accepted")
	}
	if _, err := ReadConfigSpec(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := ReadConfigSpec(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestMatcherNamesComplete(t *testing.T) {
	names := MatcherNames()
	if len(names) < 8 {
		t.Errorf("registry too small: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"qgram2", "exact", "jarowinkler", "tokendice"} {
		if !seen[want] {
			t.Errorf("matcher %q missing from registry", want)
		}
	}
}
