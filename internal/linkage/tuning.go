package linkage

import (
	"fmt"
	"math/rand"
	"sort"

	"censuslink/internal/block"
	"censuslink/internal/census"
)

// TrainingPair is one labelled record pair for weight learning.
type TrainingPair struct {
	Old, New *census.Record
	Match    bool
}

// BuildTrainingSet assembles a labelled sample of blocked candidate pairs
// between two datasets, using a known truth mapping (e.g. from synthetic
// data or a manually linked reference). Matches are kept in full; the far
// more numerous non-matches are down-sampled to negativeRatio times the
// match count (deterministically, by seed).
func BuildTrainingSet(old, new *census.Dataset, truth map[Pair]bool,
	strategies []block.Strategy, negativeRatio float64, seed int64) []TrainingPair {
	var matches, nonMatches []TrainingPair
	block.Candidates(old.Records(), old.Year, new.Records(), new.Year, strategies,
		func(o, n *census.Record) {
			p := TrainingPair{Old: o, New: n, Match: truth[Pair{Old: o.ID, New: n.ID}]}
			if p.Match {
				matches = append(matches, p)
			} else {
				nonMatches = append(nonMatches, p)
			}
		})
	want := int(float64(len(matches)) * negativeRatio)
	if want > len(nonMatches) || negativeRatio <= 0 {
		want = len(nonMatches)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(nonMatches), func(i, j int) {
		nonMatches[i], nonMatches[j] = nonMatches[j], nonMatches[i]
	})
	return append(matches, nonMatches[:want]...)
}

// TuneResult reports the outcome of weight learning.
type TuneResult struct {
	Sim    SimFunc
	F1     float64 // training F-measure of the tuned function
	Rounds int     // coordinate-ascent rounds actually used
}

// TuneWeights learns a weighting vector ω for the given attribute matchers
// by coordinate ascent on the training F-measure of thresholded matching:
// starting from uniform weights, each round perturbs one weight up and down
// by a decaying step (re-normalising the vector) and keeps the best
// improvement. This is the simple supervised alternative to hand-chosen ω
// vectors that the paper points to (Richards et al., ICDM-W 2014).
//
// The threshold delta is fixed during tuning; matchers supplies the
// attribute/similarity pairs (their Weight fields are ignored).
func TuneWeights(sample []TrainingPair, matchers []AttributeMatcher, delta float64, maxRounds int) (TuneResult, error) {
	if len(sample) == 0 {
		return TuneResult{}, fmt.Errorf("linkage: empty training sample")
	}
	if len(matchers) == 0 {
		return TuneResult{}, fmt.Errorf("linkage: no matchers to tune")
	}
	if maxRounds <= 0 {
		maxRounds = 30
	}
	// Precompute the per-attribute similarity vectors once.
	vectors := make([][]float64, len(sample))
	for i, p := range sample {
		v := make([]float64, len(matchers))
		for a, m := range matchers {
			v[a] = m.Sim(p.Old.Value(m.Attr), p.New.Value(m.Attr))
		}
		vectors[i] = v
	}
	// evaluate returns the training F-measure plus the score separation
	// between matches and non-matches. F-measure is a step function of the
	// weights, so the separation acts as a tie-breaker that lets the
	// coordinate ascent cross plateaus.
	evaluate := func(w []float64) (f1, separation float64) {
		tp, fp, fn := 0, 0, 0
		matchSum, matchN := 0.0, 0
		nonSum, nonN := 0.0, 0
		for i, p := range sample {
			s := 0.0
			for a, wa := range w {
				s += wa * vectors[i][a]
			}
			if p.Match {
				matchSum += s
				matchN++
			} else {
				nonSum += s
				nonN++
			}
			predicted := s >= delta
			switch {
			case predicted && p.Match:
				tp++
			case predicted && !p.Match:
				fp++
			case !predicted && p.Match:
				fn++
			}
		}
		if matchN > 0 && nonN > 0 {
			separation = matchSum/float64(matchN) - nonSum/float64(nonN)
		}
		if tp == 0 {
			return 0, separation
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		return 2 * prec * rec / (prec + rec), separation
	}
	better := func(f1, sep, bestF1, bestSep float64) bool {
		if f1 > bestF1+1e-9 {
			return true
		}
		return f1 > bestF1-1e-9 && sep > bestSep+1e-9
	}
	normalize := func(w []float64) {
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		if sum <= 0 {
			for i := range w {
				w[i] = 1 / float64(len(w))
			}
			return
		}
		for i := range w {
			w[i] /= sum
		}
	}

	weights := make([]float64, len(matchers))
	for i := range weights {
		weights[i] = 1 / float64(len(weights))
	}
	best, bestSep := evaluate(weights)
	step := 0.20
	rounds := 0
	for r := 0; r < maxRounds && step > 0.01; r++ {
		rounds = r + 1
		improved := false
		for a := range weights {
			for _, dir := range []float64{+1, -1} {
				trial := append([]float64(nil), weights...)
				trial[a] += dir * step
				if trial[a] < 0 {
					trial[a] = 0
				}
				normalize(trial)
				if f1, sep := evaluate(trial); better(f1, sep, best, bestSep) {
					best, bestSep = f1, sep
					weights = trial
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}

	tuned := SimFunc{Name: "tuned", Delta: delta, Matchers: make([]AttributeMatcher, len(matchers))}
	copy(tuned.Matchers, matchers)
	for i := range tuned.Matchers {
		tuned.Matchers[i].Weight = weights[i]
	}
	// Guard against degenerate all-zero outcomes.
	if err := tuned.Validate(); err != nil {
		return TuneResult{}, err
	}
	return TuneResult{Sim: tuned, F1: best, Rounds: rounds}, nil
}

// WeightsByAttribute renders a SimFunc's weights for reporting, ordered by
// attribute.
func WeightsByAttribute(f SimFunc) []string {
	out := make([]string, 0, len(f.Matchers))
	ms := append([]AttributeMatcher(nil), f.Matchers...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Attr < ms[j].Attr })
	for _, m := range ms {
		out = append(out, fmt.Sprintf("%s=%.2f", m.Attr, m.Weight))
	}
	return out
}

// EvaluateWeights scores an existing similarity function's F-measure on a
// labelled sample (thresholded at the function's own Delta), for comparing
// hand-chosen vectors against tuned ones.
func EvaluateWeights(sample []TrainingPair, f SimFunc) float64 {
	tp, fp, fn := 0, 0, 0
	for _, p := range sample {
		predicted := f.AggSim(p.Old, p.New) >= f.Delta
		switch {
		case predicted && p.Match:
			tp++
		case predicted && !p.Match:
			fp++
		case !predicted && p.Match:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}
