package linkage_test

// Integration tests: the full iterative linkage pipeline on synthetic
// census pairs, checked against ground truth and its own invariants.

import (
	"context"
	"sync"
	"testing"
	"testing/quick"

	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
	"censuslink/internal/synth"
)

var (
	pairOnce   sync.Once
	pairOld    *census.Dataset
	pairNew    *census.Dataset
	pairResult *linkage.Result
	pairErr    error
)

func linkedPair(t *testing.T) (*census.Dataset, *census.Dataset, *linkage.Result) {
	t.Helper()
	pairOnce.Do(func() {
		pairOld, pairNew, pairErr = synth.GeneratePair(synth.TestConfig(0.04, 11), 1861, 1871)
		if pairErr != nil {
			return
		}
		pairResult, pairErr = linkage.Link(pairOld, pairNew, linkage.DefaultConfig())
	})
	if pairErr != nil {
		t.Fatal(pairErr)
	}
	return pairOld, pairNew, pairResult
}

// TestPipelineQualityFloor: the default configuration must reach a solid
// quality level on a standard synthetic pair (well below the measured
// values, to stay robust across calibration changes).
func TestPipelineQualityFloor(t *testing.T) {
	old, new, res := linkedPair(t)
	rm, gm := evaluate.EvaluateResult(res, old, new)
	if rm.F1 < 0.70 {
		t.Errorf("record F = %.3f below floor 0.70 (P=%.3f R=%.3f)", rm.F1, rm.Precision, rm.Recall)
	}
	if gm.F1 < 0.60 {
		t.Errorf("group F = %.3f below floor 0.60 (P=%.3f R=%.3f)", gm.F1, gm.Precision, gm.Recall)
	}
}

// TestPipelineRecallBeatsStrictMatcher: the pipeline's relaxed iterations
// and structural matching must recover clearly more true links than a
// strict high-threshold attribute matcher (the mechanism behind the
// paper's Table 6 recall gap).
func TestPipelineRecallBeatsStrictMatcher(t *testing.T) {
	old, new, res := linkedPair(t)
	cfg := linkage.DefaultConfig()
	strict, err := linkage.MatchRemaining(context.Background(), old.Records(), new.Records(),
		linkage.RemainderOptions{
			Sim: cfg.Sim.WithDelta(0.9), OldYear: old.Year, NewYear: new.Year,
			Match: linkage.MatchConfig{AgeTolerance: 3, YearGap: 10}, Strategies: cfg.Strategies,
		})
	if err != nil {
		t.Fatal(err)
	}
	truth := evaluate.TrueRecordMapping(old, new)
	full := evaluate.RecordMetrics(res.RecordLinks, truth)
	flat := evaluate.RecordMetrics(strict, truth)
	if full.Recall <= flat.Recall {
		t.Errorf("full pipeline recall %.3f should beat strict matcher recall %.3f",
			full.Recall, flat.Recall)
	}
}

// TestPipelineInvariants: 1:1 record mapping, group links backed by at
// least one record link, and every linked record existing.
func TestPipelineInvariants(t *testing.T) {
	old, new, res := linkedPair(t)
	seenOld := map[string]bool{}
	seenNew := map[string]bool{}
	groupsWithLink := map[linkage.GroupPair]bool{}
	for _, l := range res.RecordLinks {
		o, n := old.Record(l.Old), new.Record(l.New)
		if o == nil || n == nil {
			t.Fatalf("link to unknown record: %+v", l)
		}
		if seenOld[l.Old] || seenNew[l.New] {
			t.Fatalf("record mapping not 1:1 at %+v", l)
		}
		seenOld[l.Old] = true
		seenNew[l.New] = true
		if l.Sim < 0 || l.Sim > 1 {
			t.Errorf("similarity out of range: %+v", l)
		}
		groupsWithLink[linkage.GroupPair{Old: o.HouseholdID, New: n.HouseholdID}] = true
	}
	for _, g := range res.GroupLinks {
		if old.Household(g.Old) == nil || new.Household(g.New) == nil {
			t.Fatalf("group link to unknown household: %+v", g)
		}
		if !groupsWithLink[linkage.GroupPair(g)] {
			t.Errorf("group link %v has no supporting record link", g)
		}
	}
}

// TestPipelineIterationsMonotonic: remaining records shrink monotonically
// over iterations.
func TestPipelineIterationsMonotonic(t *testing.T) {
	_, _, res := linkedPair(t)
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	prevOld, prevNew := int(^uint(0)>>1), int(^uint(0)>>1)
	prevDelta := 1.1
	for i, it := range res.Iterations {
		if it.Delta >= prevDelta {
			t.Errorf("iteration %d: delta %.3f did not decrease", i, it.Delta)
		}
		if it.RemainingOld > prevOld || it.RemainingNew > prevNew {
			t.Errorf("iteration %d: remaining records grew", i)
		}
		prevDelta, prevOld, prevNew = it.Delta, it.RemainingOld, it.RemainingNew
	}
}

// TestPipelineSeedStability: quality holds across generator seeds (a
// property-style test over the randomised workload).
func TestPipelineSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: several full pipeline runs")
	}
	prop := func(seed uint8) bool {
		old, new, err := synth.GeneratePair(synth.TestConfig(0.02, int64(seed)+100), 1861, 1871)
		if err != nil {
			return false
		}
		res, err := linkage.Link(old, new, linkage.DefaultConfig())
		if err != nil {
			return false
		}
		rm, _ := evaluate.EvaluateResult(res, old, new)
		// Loose floor: tiny populations are noisy, but the pipeline should
		// never collapse.
		return rm.F1 > 0.55
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// TestVertexGuardsImprovePrecision: the opt-in guards must not lower record
// precision.
func TestVertexGuardsImprovePrecision(t *testing.T) {
	old, new, res := linkedPair(t)
	cfg := linkage.DefaultConfig()
	cfg.VertexGuards = true
	guarded, err := linkage.Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := evaluate.TrueRecordMapping(old, new)
	base := evaluate.RecordMetrics(res.RecordLinks, truth)
	strict := evaluate.RecordMetrics(guarded.RecordLinks, truth)
	if strict.Precision+0.02 < base.Precision {
		t.Errorf("guards lowered precision: %.3f -> %.3f", base.Precision, strict.Precision)
	}
}
