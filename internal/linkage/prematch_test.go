package linkage

import (
	"context"
	"reflect"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

// preMatchT is the test shorthand for a standalone pre-matching pass with
// the naive engine and a background context; errors are impossible there.
func preMatchT(old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, strategies []block.Strategy, workers int) *PreMatchResult {
	pre, err := PreMatchOpts(context.Background(), old, new, PreMatchOptions{
		Sim: f, OldYear: oldYear, NewYear: newYear,
		Strategies: strategies, Workers: workers,
	})
	if err != nil {
		panic(err)
	}
	return pre
}

// figure3PreMatch runs pre-matching exactly as in Fig. 3 of the paper:
// first name and surname with equal weights and similarity threshold 1.
func figure3PreMatch(workers int) *PreMatchResult {
	old, new := paperexample.Old(), paperexample.New()
	return preMatchT(old.Records(), old.Year, new.Records(), new.Year,
		NameOnly(1.0), block.DefaultStrategies(), workers)
}

// TestPreMatchFigure3 checks the clustering of the running example against
// Fig. 3: ten clusters, with the two John Ashworths of 1881 sharing the
// label of the 1871 John Ashworth, and Alice Ashworth/Alice Smith apart.
func TestPreMatchFigure3(t *testing.T) {
	pre := figure3PreMatch(1)

	// Every record must carry a label.
	if len(pre.Labels) != 8+11 {
		t.Fatalf("labelled records = %d, want 19", len(pre.Labels))
	}
	distinct := map[int]bool{}
	for _, l := range pre.Labels {
		distinct[l] = true
	}
	if len(distinct) != 10 {
		t.Errorf("clusters = %d, want 10 (Fig. 3)", len(distinct))
	}

	same := func(a, b string) bool { return pre.Labels[a] == pre.Labels[b] }
	// Cluster A: all three John Ashworths.
	if !same("1871_1", "1881_1") || !same("1871_1", "1881_9") {
		t.Error("John Ashworth cluster broken")
	}
	// Clusters I and K: the two Alices stay apart at threshold 1.
	if same("1871_3", "1881_7") {
		t.Error("Alice Ashworth and Alice Smith should not share a label at delta 1")
	}
	// Singletons.
	for _, id := range []string{"1871_5", "1881_8"} {
		l := pre.Labels[id]
		if pre.LabelSize[l] != 1 {
			t.Errorf("%s should be a singleton, label size %d", id, pre.LabelSize[l])
		}
	}
	// Label sizes used by the uniqueness score: |A| = 3 (Eq. 8).
	if got := pre.LabelSize[pre.Labels["1871_1"]]; got != 3 {
		t.Errorf("label size of John Ashworth cluster = %d, want 3", got)
	}
	// Direct links store their aggregated similarity.
	if s, ok := pre.Sims[Pair{Old: "1871_1", New: "1881_1"}]; !ok || s != 1 {
		t.Errorf("sim(1871_1, 1881_1) = %v/%v", s, ok)
	}
}

// TestPreMatchParallelDeterminism: the result must be identical for any
// worker count.
func TestPreMatchParallelDeterminism(t *testing.T) {
	base := figure3PreMatch(1)
	for _, workers := range []int{2, 3, 8, 0} {
		got := figure3PreMatch(workers)
		if !reflect.DeepEqual(got.Links, base.Links) {
			t.Errorf("workers=%d: links differ", workers)
		}
		if !reflect.DeepEqual(got.Labels, base.Labels) {
			t.Errorf("workers=%d: labels differ", workers)
		}
		if got.Compared != base.Compared {
			t.Errorf("workers=%d: compared %d vs %d", workers, got.Compared, base.Compared)
		}
	}
}

// TestPreMatchThresholdMonotonic: lowering δ can only add links.
func TestPreMatchThresholdMonotonic(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	strict := preMatchT(old.Records(), old.Year, new.Records(), new.Year,
		OmegaTwo(0.9), block.DefaultStrategies(), 1)
	loose := preMatchT(old.Records(), old.Year, new.Records(), new.Year,
		OmegaTwo(0.5), block.DefaultStrategies(), 1)
	if len(loose.Links) < len(strict.Links) {
		t.Fatalf("relaxing delta removed links: %d -> %d", len(strict.Links), len(loose.Links))
	}
	for p := range strict.Sims {
		if _, ok := loose.Sims[p]; !ok {
			t.Errorf("pair %v lost when relaxing delta", p)
		}
	}
}

// TestPreMatchRelaxationFindsAlice: at δ=1 the married Alice is unlinked;
// relaxing the threshold (the core idea of Algorithm 1) links her.
func TestPreMatchRelaxationFindsAlice(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	f := SimFunc{Name: "fn-sex", Delta: 0.6, Matchers: OmegaTwo(0.6).Matchers}
	pre := preMatchT(old.Records(), old.Year, new.Records(), new.Year, f,
		block.DefaultStrategies(), 1)
	if _, ok := pre.Sims[Pair{Old: "1871_3", New: "1881_7"}]; !ok {
		t.Error("relaxed pre-matching should propose Alice Ashworth -> Alice Smith")
	}
}

func TestPreMatchEmptyInput(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	pre := preMatchT(nil, old.Year, new.Records(), new.Year, NameOnly(1),
		block.DefaultStrategies(), 4)
	if len(pre.Links) != 0 || pre.Compared != 0 {
		t.Errorf("empty old side produced links: %+v", pre)
	}
	// New records still get singleton labels.
	if len(pre.Labels) != new.NumRecords() {
		t.Errorf("labels = %d, want %d", len(pre.Labels), new.NumRecords())
	}
}
