package linkage

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/paperexample"
	"censuslink/internal/synth"
)

var (
	shardPairOnce sync.Once
	shardPairOld  *census.Dataset
	shardPairNew  *census.Dataset
	shardPairErr  error
)

// shardPair returns a shared synthetic census pair for the sharding tests.
func shardPair(t testing.TB) (*census.Dataset, *census.Dataset) {
	shardPairOnce.Do(func() {
		shardPairOld, shardPairNew, shardPairErr =
			synth.GeneratePair(synth.TestConfig(0.04, 23), 1871, 1881)
	})
	if shardPairErr != nil {
		t.Fatal(shardPairErr)
	}
	return shardPairOld, shardPairNew
}

// TestShardDeterminism: the full pipeline must produce deep-equal record
// links, group links and provenance for every shard count, on both engines,
// with concurrent shard workers (run under -race in CI).
func TestShardDeterminism(t *testing.T) {
	old, new := shardPair(t)
	for _, engine := range []EngineKind{EngineCompiled, EngineNaive} {
		t.Run(engine.String(), func(t *testing.T) {
			var base *Result
			for _, k := range []int{1, 4, 16} {
				cfg := DefaultConfig()
				cfg.Engine = engine
				cfg.Workers = 4
				cfg.Shards = k
				res, err := Link(old, new, cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if base == nil {
					base = res
					if len(res.RecordLinks) == 0 || len(res.GroupLinks) == 0 {
						t.Fatal("empty result; the differential check would be vacuous")
					}
					continue
				}
				if !reflect.DeepEqual(res.RecordLinks, base.RecordLinks) {
					t.Errorf("shards=%d: record links differ from shards=1", k)
				}
				if !reflect.DeepEqual(res.GroupLinks, base.GroupLinks) {
					t.Errorf("shards=%d: group links differ from shards=1", k)
				}
				if !reflect.DeepEqual(res.Sources, base.Sources) {
					t.Errorf("shards=%d: link provenance differs from shards=1", k)
				}
			}
		})
	}
}

// TestPreMatchShardedDifferential: a standalone sharded pre-matching pass
// must be deep-equal to the unsharded one — links in the same canonical
// order, identical similarities, identical cluster labels.
func TestPreMatchShardedDifferential(t *testing.T) {
	old, new := shardPair(t)
	cfg := DefaultConfig()
	f := cfg.Sim.WithDelta(cfg.DeltaHigh)
	for _, engine := range []EngineKind{EngineCompiled, EngineNaive} {
		t.Run(engine.String(), func(t *testing.T) {
			run := func(shards int) *PreMatchResult {
				pre, err := PreMatchOpts(context.Background(), old.Records(), new.Records(),
					PreMatchOptions{
						Sim: f, OldYear: old.Year, NewYear: new.Year,
						Strategies: cfg.Strategies, Workers: 4, Engine: engine, Shards: shards,
					})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return pre
			}
			base := run(0)
			if len(base.Links) == 0 {
				t.Fatal("no candidate links; the differential check would be vacuous")
			}
			for _, k := range []int{2, 4, 16} {
				got := run(k)
				if !reflect.DeepEqual(got.Links, base.Links) {
					t.Errorf("shards=%d: links differ (%d vs %d)", k, len(got.Links), len(base.Links))
				}
				if !reflect.DeepEqual(got.Sims, base.Sims) {
					t.Errorf("shards=%d: similarities differ", k)
				}
				if !reflect.DeepEqual(got.Labels, base.Labels) {
					t.Errorf("shards=%d: cluster labels differ", k)
				}
				if !reflect.DeepEqual(got.LabelSize, base.LabelSize) {
					t.Errorf("shards=%d: label sizes differ", k)
				}
				// Replicating records across shards may compare a pair more
				// than once, never fewer times.
				if got.Compared < base.Compared {
					t.Errorf("shards=%d: compared %d below unsharded %d", k, got.Compared, base.Compared)
				}
			}
		})
	}
}

// TestMatchRemainingSharded: the sharded remainder pass must select exactly
// the unsharded 1:1 mapping, for both the greedy and the Hungarian variant.
func TestMatchRemainingSharded(t *testing.T) {
	old, new := shardPair(t)
	cfg := DefaultConfig()
	match := MatchConfig{AgeTolerance: cfg.AgeTolerance, YearGap: new.Year - old.Year}
	for _, optimal := range []bool{false, true} {
		name := "greedy"
		if optimal {
			name = "optimal"
		}
		t.Run(name, func(t *testing.T) {
			run := func(shards int) []RecordLink {
				links, err := MatchRemaining(context.Background(), old.Records(), new.Records(),
					RemainderOptions{
						Sim: cfg.Remainder, OldYear: old.Year, NewYear: new.Year,
						Match: match, Strategies: cfg.Strategies,
						Engine: EngineCompiled, Workers: 4, Shards: shards, Optimal: optimal,
					})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return links
			}
			base := run(0)
			if len(base) == 0 {
				t.Fatal("no remainder links; the differential check would be vacuous")
			}
			for _, k := range []int{4, 16} {
				if got := run(k); !reflect.DeepEqual(got, base) {
					t.Errorf("shards=%d: remainder links differ (%d vs %d)", k, len(got), len(base))
				}
			}
		})
	}
}

// TestPartitionCoversKeyedPairs: any record pair sharing a blocking key
// must land together in at least one shard — the invariant behind the
// per-shard union equalling the global candidate pair set.
func TestPartitionCoversKeyedPairs(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	strategies := block.DefaultStrategies()
	for _, k := range []int{1, 2, 3, 8, 16} {
		parts := partitionRecords(old.Records(), old.Year, new.Records(), new.Year, strategies, k)
		if len(parts) != k {
			t.Fatalf("k=%d: %d partitions", k, len(parts))
		}
		together := map[Pair]bool{}
		for _, p := range parts {
			for _, o := range p.Old {
				for _, n := range p.New {
					together[Pair{Old: o.ID, New: n.ID}] = true
				}
			}
		}
		keysOf := func(r *census.Record, year int) map[string]bool {
			ks := map[string]bool{}
			for _, s := range strategies {
				for _, key := range s.Keys(r, year) {
					ks[key] = true
				}
			}
			return ks
		}
		for _, o := range old.Records() {
			oKeys := keysOf(o, old.Year)
			for _, n := range new.Records() {
				shared := false
				for key := range keysOf(n, new.Year) {
					if oKeys[key] {
						shared = true
						break
					}
				}
				if shared && !together[Pair{Old: o.ID, New: n.ID}] {
					t.Errorf("k=%d: pair %s/%s shares a key but no shard", k, o.ID, n.ID)
				}
			}
		}
	}
}

// TestShardOfKeyRange: the hash must stay within [0, k) and be stable.
func TestShardOfKeyRange(t *testing.T) {
	keys := []string{"", "sn:smth", "fn:jhn", "by:1871:184", "sn:ashwrth"}
	for _, k := range []int{1, 2, 7, 16} {
		for _, key := range keys {
			s := shardOfKey(key, k)
			if s < 0 || s >= k {
				t.Fatalf("shardOfKey(%q, %d) = %d out of range", key, k, s)
			}
			if s != shardOfKey(key, k) {
				t.Fatalf("shardOfKey(%q, %d) not stable", key, k)
			}
		}
	}
}

// TestValidateRejectsNegativeShards: a negative shard count is a
// configuration error, not a silent fallback.
func TestValidateRejectsNegativeShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative shard count accepted")
	}
}
