package linkage

import (
	"context"
	"errors"
	"fmt"
)

// PanicPolicy decides what a pool worker panic does to the run.
type PanicPolicy int

const (
	// PanicFailFast aborts the run on the first worker panic, surfacing it
	// as a *PipelineError that names the offending work item. The default.
	PanicFailFast PanicPolicy = iota
	// PanicSkip absorbs worker panics: the offending group pair (or record
	// chunk) contributes nothing, the panic is counted on the
	// obs.PanicsRecovered counter, and the run completes on the remaining
	// work. Use for dirty data where one poisoned household must not sink a
	// multi-hour run.
	PanicSkip
)

// String names the policy.
func (p PanicPolicy) String() string {
	if p == PanicSkip {
		return "skip"
	}
	return "fail-fast"
}

// PipelineError is the typed failure of a linkage pipeline run: a
// cooperative cancellation observed at a checkpoint, or a panic recovered
// in a pool worker. It records where the pipeline stopped (stage, δ) and
// which work item was at fault, so an aborted multi-hour run is
// attributable without re-running it under a debugger.
type PipelineError struct {
	// Stage is the pipeline stage that failed ("prematch",
	// "subgraph_match", "remainder", "iterate", ...), matching the obs
	// stage-timer names.
	Stage string
	// Delta is the pre-matching threshold in effect, or 0 outside the
	// iteration loop.
	Delta float64
	// Group is the offending candidate group pair for failures inside
	// subgraph matching; both fields are empty otherwise.
	Group GroupPair
	// Chunk is the offending pre-matching record chunk index, or -1 when
	// the failure is not chunk-scoped.
	Chunk int
	// Panic is the recovered panic value for worker crashes, nil for
	// cancellations.
	Panic any
	// Stack is the stack trace of the panicking worker goroutine, nil for
	// cancellations.
	Stack []byte
	// Err is the underlying cause: context.Canceled, context.DeadlineExceeded,
	// or an injected/worker failure. errors.Is/As see through it.
	Err error
}

// Error renders the failure with its pipeline location and work item.
func (e *PipelineError) Error() string {
	loc := e.Stage
	if e.Delta > 0 {
		loc = fmt.Sprintf("%s (delta=%.2f)", e.Stage, e.Delta)
	}
	item := ""
	switch {
	case e.Group != (GroupPair{}):
		item = fmt.Sprintf(" on group pair %s->%s", e.Group.Old, e.Group.New)
	case e.Chunk >= 0:
		item = fmt.Sprintf(" on record chunk %d", e.Chunk)
	}
	if e.Panic != nil {
		return fmt.Sprintf("linkage: panic in %s worker%s: %v", loc, item, e.Panic)
	}
	return fmt.Sprintf("linkage: %s%s: %v", loc, item, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *PipelineError) Unwrap() error { return e.Err }

// Canceled reports whether the error is a cooperative cancellation rather
// than a worker failure.
func (e *PipelineError) Canceled() bool {
	return errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded)
}

// SeriesError is the typed failure of a series linkage run (LinkSeriesOpts
// and friends): it names the year pair that failed and how many of the
// series' pairs completed before the run stopped. The completed results are
// returned alongside this error — in incremental mode they have already
// been checkpointed to the store, so a re-run resumes from them instead of
// recomputing the whole series.
type SeriesError struct {
	// OldYear and NewYear identify the failing pair.
	OldYear, NewYear int
	// Completed is how many pair results are available despite the failure.
	Completed int
	// Pairs is the total number of successive pairs in the series.
	Pairs int
	// Err is the underlying per-pair failure (usually a *PipelineError);
	// errors.Is/As see through it.
	Err error
}

// Error renders the failing pair and the checkpoint progress.
func (e *SeriesError) Error() string {
	return fmt.Sprintf("linkage: pair %d-%d: %v (%d of %d pairs completed)",
		e.OldYear, e.NewYear, e.Err, e.Completed, e.Pairs)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *SeriesError) Unwrap() error { return e.Err }

// cancelErr wraps a context error observed at a pipeline checkpoint.
func cancelErr(stage string, delta float64, err error) *PipelineError {
	return &PipelineError{Stage: stage, Delta: delta, Chunk: -1, Err: err}
}

// panicErr wraps a panic value recovered in a pool worker.
func panicErr(stage string, delta float64, v any, stack []byte) *PipelineError {
	return &PipelineError{
		Stage: stage,
		Delta: delta,
		Chunk: -1,
		Panic: v,
		Stack: stack,
		Err:   fmt.Errorf("worker panic: %v", v),
	}
}
