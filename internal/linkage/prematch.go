package linkage

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/cluster"
	"censuslink/internal/faultinject"
	"censuslink/internal/obs"
)

// Pair identifies a record pair across the two datasets by record ID.
type Pair struct {
	Old, New string
}

// PreMatchResult is the outcome of the pre-matching step (Section 3.2):
// the candidate record links above δ with their aggregated similarities, the
// cluster labels of the transitive closure, and the per-label record counts
// used by the uniqueness score.
type PreMatchResult struct {
	// Sims holds agg_sim for every candidate pair with agg_sim >= δ.
	Sims map[Pair]float64
	// Links lists the candidate pairs in deterministic order.
	Links []Pair
	// Labels assigns a cluster label to every record (of either dataset)
	// that appeared in the pre-matching input. Records without any link get
	// a singleton label.
	Labels map[string]int
	// LabelSize counts the records carrying each label across both
	// datasets (|label(r)| in Eq. 7).
	LabelSize map[int]int
	// Compared is the number of candidate pairs compared (for reporting).
	Compared int
	// Blocked is the raw number of candidate pairs the blocking index
	// generated across all strategies before deduplication; Blocked -
	// Compared measures the overlap of the multi-pass strategies. Under the
	// compiled engine the index covers the full new dataset, so hits on
	// records already linked in earlier iterations are included too.
	Blocked int
}

// Label returns the cluster label of a record ID and whether it has one.
func (p *PreMatchResult) Label(id string) (int, bool) {
	l, ok := p.Labels[id]
	return l, ok
}

// PreMatchOptions configures one standalone pre-matching pass (see
// PreMatchOpts). The zero value of every field is usable: year 0, the
// naive engine, GOMAXPROCS workers, fail-fast panics, no observability.
type PreMatchOptions struct {
	// Sim is the record similarity function; pairs below its Delta are
	// dropped.
	Sim SimFunc
	// OldYear and NewYear are the census years of the two record lists;
	// blocking keys may depend on them (e.g. birth-year bands).
	OldYear, NewYear int
	// Strategies is the blocking configuration; it must not be empty.
	Strategies []block.Strategy
	// Workers bounds the chunk parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Engine selects the comparison path. EngineNaive (the zero value here,
	// matching the historical PreMatch behaviour) compares strings directly;
	// EngineCompiled interns the record lists, builds the blocking index and
	// scores through the memoizing engine — compile cost included. The
	// result is identical either way.
	Engine EngineKind
	// Shards splits the pass into K block-key shards, each scanned with its
	// own transient engine/index state on a worker pool bounded by Workers
	// (see Config.Shards); <= 1 runs unsharded. The transitive closure is
	// always clustered globally, so the result is identical for every K.
	Shards int
	// Panics selects the worker panic policy (fail-fast by default).
	Panics PanicPolicy
	// Obs, when non-nil, receives the PanicsRecovered counter under
	// PanicSkip.
	Obs *obs.Stats
}

// PreMatchOpts is the single pre-matching entry point: it applies the
// similarity function to every blocked candidate pair between the old and
// new records, keeps pairs reaching f's δ, and clusters records via the
// transitive closure of those links (Section 3.2). Cancellation is
// cooperative — chunk workers observe ctx between records and the call
// returns a *PipelineError wrapping ctx.Err(). Worker panics surface as
// typed errors naming the offending chunk (or are skipped and counted,
// per opts.Panics).
func PreMatchOpts(ctx context.Context, old, new []*census.Record, opts PreMatchOptions) (*PreMatchResult, error) {
	if opts.Shards > 1 {
		parts := partitionRecords(old, opts.OldYear, new, opts.NewYear, opts.Strategies, opts.Shards)
		return shardedPreMatchRun(ctx, parts, opts.OldYear, opts.NewYear, old, new,
			opts.Sim, opts.Engine, opts.Strategies, opts.Workers, opts.Panics, opts.Obs)
	}
	var cp *compiledPair
	if opts.Engine == EngineCompiled {
		cp = &compiledPair{
			eng:    opts.Sim.Compile(old, new),
			ix:     block.NewIndex(new, opts.NewYear, opts.Strategies),
			active: make([]bool, len(new)),
		}
		cp.setActive(new)
	}
	return preMatch(ctx, old, opts.OldYear, new, opts.NewYear, opts.Sim, opts.Strategies,
		opts.Workers, opts.Panics, opts.Obs, cp)
}

// cancelCheckEvery is the number of records a pipeline loop processes
// between cancellation checkpoints — frequent enough for prompt aborts,
// rare enough to stay invisible in profiles.
const cancelCheckEvery = 64

// preMatch is the full pre-matching implementation: bounded chunk workers
// with panic isolation, cooperative cancellation and the configured panic
// policy. Under PanicSkip a failed chunk contributes no comparisons and is
// counted on obs.PanicsRecovered; the surviving chunks still merge
// deterministically because results are slotted by chunk index.
//
// With cp == nil the interpreted path runs: a fresh blocking index over the
// new records and string-level AggSim per candidate pair. With a compiled
// pair, candidates come from cp's prebuilt full-dataset index filtered by
// the active mask (cp.setActive must have been called for this new slice)
// and pairs are scored through the memoizing engine with early exit — the
// accepted pairs and their similarities are identical on both paths.
func preMatch(ctx context.Context, old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, strategies []block.Strategy, workers int, policy PanicPolicy, st *obs.Stats, cp *compiledPair) (*PreMatchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var ix *block.Index
	var gen0 int64
	if cp == nil {
		ix = block.NewIndex(new, newYear, strategies)
	} else {
		gen0 = cp.ix.Generated()
	}

	type chunkResult struct {
		pairs []Pair
		sims  []float64
		n     int
	}
	// Split the old records into contiguous chunks, one result slot per
	// chunk, so the merged output is deterministic regardless of scheduling.
	chunkSize := (len(old) + workers - 1) / workers
	if chunkSize < 1 {
		chunkSize = 1
	}
	var chunks [][]*census.Record
	for i := 0; i < len(old); i += chunkSize {
		end := i + chunkSize
		if end > len(old) {
			end = len(old)
		}
		chunks = append(chunks, old[i:end])
	}
	results := make([]chunkResult, len(chunks))
	errs := make([]error, len(chunks))
	runChunk := func(ci int, chunk []*census.Record) (res chunkResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				pe := panicErr("prematch", f.Delta, r, debug.Stack())
				pe.Chunk = ci
				err = pe
			}
		}()
		if e := faultinject.Hit("linkage.prematch.chunk"); e != nil {
			return res, &PipelineError{Stage: "prematch", Delta: f.Delta, Chunk: ci, Err: e}
		}
		// The scratch's epoch-stamp dedup state is allocated once per chunk
		// and reused across every candidate query of the chunk.
		var scratch block.Scratch
		for j, o := range chunk {
			if j%cancelCheckEvery == 0 {
				if e := ctx.Err(); e != nil {
					return res, cancelErr("prematch", f.Delta, e)
				}
			}
			if cp != nil {
				oi, ok := cp.eng.Old.Pos(o.ID)
				if !ok {
					continue
				}
				for _, ni := range cp.ix.CandidateIndices(o, oldYear, &scratch) {
					if !cp.active[ni] {
						continue
					}
					res.n++
					if s, hit := cp.eng.AggSimAtLeast(oi, int(ni), f.Delta); hit {
						res.pairs = append(res.pairs, Pair{Old: o.ID, New: cp.ix.Record(ni).ID})
						res.sims = append(res.sims, s)
					}
				}
				continue
			}
			for _, n := range ix.Candidates(o, oldYear, &scratch) {
				res.n++
				if s := f.AggSim(o, n); s >= f.Delta {
					res.pairs = append(res.pairs, Pair{Old: o.ID, New: n.ID})
					res.sims = append(res.sims, s)
				}
			}
		}
		return res, nil
	}
	var wg sync.WaitGroup
	for ci, chunk := range chunks {
		wg.Add(1)
		go func(ci int, chunk []*census.Record) {
			defer wg.Done()
			results[ci], errs[ci] = runChunk(ci, chunk)
		}(ci, chunk)
	}
	wg.Wait()

	// Cancellation wins over worker failures: the caller asked the whole
	// run to stop, so report that rather than a coincidental chunk error.
	if err := ctx.Err(); err != nil {
		return nil, cancelErr("prematch", f.Delta, err)
	}
	skipped := make([]bool, len(chunks))
	for ci, err := range errs {
		if err == nil {
			continue
		}
		if policy == PanicFailFast {
			return nil, err
		}
		skipped[ci] = true
		st.Add(obs.PanicsRecovered, 1)
	}

	// Labels is filled by uf.Labels() below; allocating it here too would
	// just produce garbage.
	out := &PreMatchResult{
		Sims:      make(map[Pair]float64),
		LabelSize: make(map[int]int),
	}
	uf := cluster.NewUnionFind()
	for _, r := range old {
		uf.Add(r.ID)
	}
	for _, r := range new {
		uf.Add(r.ID)
	}
	for ci, res := range results {
		if skipped[ci] {
			continue
		}
		out.Compared += res.n
		for i, p := range res.pairs {
			out.Links = append(out.Links, p)
			out.Sims[p] = res.sims[i]
			uf.Union(p.Old, p.New)
		}
	}
	out.Labels = uf.Labels()
	for _, l := range out.Labels {
		out.LabelSize[l]++
	}
	if cp == nil {
		out.Blocked = int(ix.Generated())
	} else {
		// The shared full-dataset index counts raw hits cumulatively across
		// iterations (and including currently inactive records), so report
		// this call's delta. On the first iteration, when every record is
		// active, this equals the naive figure exactly.
		out.Blocked = int(cp.ix.Generated() - gen0)
	}
	return out, nil
}
