package linkage

import (
	"fmt"
	"strings"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/compare"
	"censuslink/internal/obs"
)

// EngineKind selects the comparison path of the linkage pipeline.
type EngineKind int

const (
	// EngineCompiled scores candidate pairs through the compiled comparison
	// engine (internal/compare): interned attribute values, precomputed
	// profiles, a distinct-pair memo table reused across δ-iterations and a
	// remaining-weight early exit. This is the default; its results are
	// bit-for-bit identical to the naive path.
	EngineCompiled EngineKind = iota
	// EngineNaive scores every candidate pair through the interpreted
	// string path, rebuilding the blocking index per iteration. Retained as
	// the differential-testing oracle.
	EngineNaive
)

// String names the engine kind as accepted by ParseEngine.
func (k EngineKind) String() string {
	if k == EngineNaive {
		return "naive"
	}
	return "compiled"
}

// ParseEngine resolves an -engine flag value ("compiled" or "naive"; the
// empty string selects the compiled default).
func ParseEngine(s string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "compiled":
		return EngineCompiled, nil
	case "naive", "interpreted":
		return EngineNaive, nil
	default:
		return 0, fmt.Errorf("linkage: unknown engine %q (want compiled or naive)", s)
	}
}

// CompareMatchers converts the SimFunc's matchers into their compiled form
// for internal/compare. Matchers without a profile comparator fall back to
// memoizing their string function.
func (f SimFunc) CompareMatchers() []compare.Matcher {
	out := make([]compare.Matcher, len(f.Matchers))
	for i, m := range f.Matchers {
		out[i] = compare.Matcher{Attr: m.Attr, Weight: m.Weight, Prof: m.Prof, Sim: m.Sim}
	}
	return out
}

// Compile interns the two record lists against this SimFunc and returns a
// scoring engine whose AggSim/SimVector are bit-for-bit equal to the
// interpreted AggSim/SimVector on the same records.
func (f SimFunc) Compile(old, new []*census.Record) *compare.Engine {
	ms := f.CompareMatchers()
	return compare.NewEngine(compare.Compile(old, ms), compare.Compile(new, ms))
}

// compiledPair is the per-year-pair state of the compiled path: one scoring
// engine, the blocking index built once over the full new dataset, and the
// active-record mask the δ-iteration loop narrows instead of rebuilding the
// index per iteration.
type compiledPair struct {
	eng *compare.Engine
	ix  *block.Index
	// active[i] reports whether new record i is still unlinked; shared by
	// the pre-matching and remainder passes of one Link call.
	active []bool
	// Last engine counter values flushed to obs, so each stage reports
	// deltas rather than cumulative totals.
	prevHits, prevMisses, prevPruned int64
}

// setActive recomputes the active mask from the remaining (unlinked) new
// records.
func (cp *compiledPair) setActive(remaining []*census.Record) {
	for i := range cp.active {
		cp.active[i] = false
	}
	for _, r := range remaining {
		if i, ok := cp.eng.New.Pos(r.ID); ok {
			cp.active[i] = true
		}
	}
}

// flushCounters adds the engine counter deltas since the previous flush to
// the run's observability stats.
func (cp *compiledPair) flushCounters(st *obs.Stats) {
	h, m, p := cp.eng.Counters()
	st.Add(obs.SimCacheHits, int(h-cp.prevHits))
	st.Add(obs.SimCacheMisses, int(m-cp.prevMisses))
	st.Add(obs.PrunedComparisons, int(p-cp.prevPruned))
	cp.prevHits, cp.prevMisses, cp.prevPruned = h, m, p
}
