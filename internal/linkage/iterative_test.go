package linkage

import (
	"context"
	"reflect"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/paperexample"
)

// matchRemainingT is the test shorthand for one remainder pass: background
// context (errors impossible), greedy or Hungarian selection per optimal.
func matchRemainingT(old []*census.Record, oldYear int, new []*census.Record, newYear int,
	f SimFunc, cfg MatchConfig, strategies []block.Strategy, optimal bool) []RecordLink {
	links, err := MatchRemaining(context.Background(), old, new, RemainderOptions{
		Sim: f, OldYear: oldYear, NewYear: newYear,
		Match: cfg, Strategies: strategies, Optimal: optimal,
	})
	if err != nil {
		panic(err)
	}
	return links
}

// runningExampleConfig reproduces the paper's walk-through: Fig. 3
// pre-matching (name-only, threshold 1) with a single subgraph iteration,
// then a relaxed name-only pass for the leftover records.
func runningExampleConfig() Config {
	return Config{
		Sim:          NameOnly(1.0),
		DeltaHigh:    1.0,
		DeltaLow:     1.0,
		Alpha:        0.2,
		Beta:         0.7,
		AgeTolerance: 3,
		Remainder:    NameOnly(0.6),
		Strategies:   block.DefaultStrategies(),
		Workers:      1,
		StopOnEmpty:  true,
	}
}

// TestLinkRunningExample runs the full Algorithm 1 on the paper's running
// example and checks the exact record mapping (seven person links) and
// group mapping (four household links) described in Section 2.
func TestLinkRunningExample(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res, err := Link(old, new, runningExampleConfig())
	if err != nil {
		t.Fatal(err)
	}

	wantRecords := paperexample.TrueRecordMapping()
	got := map[string]string{}
	for _, l := range res.RecordLinks {
		got[l.Old] = l.New
	}
	if !reflect.DeepEqual(got, wantRecords) {
		t.Errorf("record mapping:\n got %v\nwant %v", got, wantRecords)
	}

	wantGroups := map[GroupPair]bool{}
	for _, g := range paperexample.TrueGroupMapping() {
		wantGroups[GroupPair{Old: g[0], New: g[1]}] = true
	}
	gotGroups := res.GroupPairsSet()
	if len(gotGroups) != len(wantGroups) {
		t.Fatalf("group mapping = %v, want %v", res.GroupLinks, wantGroups)
	}
	for gp := range wantGroups {
		if !gotGroups[gp] {
			t.Errorf("missing group link %v", gp)
		}
	}

	// Steve's and Alice's links must come from the remainder pass: their
	// moves cannot be caught by subgraph matching.
	if res.RemainderRecordLinks != 2 {
		t.Errorf("remainder record links = %d, want 2 (Alice, Steve)", res.RemainderRecordLinks)
	}
	if res.RemainderGroupLinks != 2 {
		t.Errorf("remainder group links = %d, want 2 (a->c, b->c)", res.RemainderGroupLinks)
	}
}

// TestLinkRecordMappingIsOneToOne verifies the cardinality constraint of
// Eq. 1 on the running example under a relaxed, multi-iteration config.
func TestLinkRecordMappingIsOneToOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	old, new := paperexample.Old(), paperexample.New()
	res, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seenOld, seenNew := map[string]bool{}, map[string]bool{}
	for _, l := range res.RecordLinks {
		if seenOld[l.Old] {
			t.Errorf("old record %s linked twice", l.Old)
		}
		if seenNew[l.New] {
			t.Errorf("new record %s linked twice", l.New)
		}
		seenOld[l.Old] = true
		seenNew[l.New] = true
	}
	// Group links must be unique pairs.
	seenGroup := map[GroupPair]bool{}
	for _, g := range res.GroupLinks {
		gp := GroupPair(g)
		if seenGroup[gp] {
			t.Errorf("group link %v duplicated", gp)
		}
		seenGroup[gp] = true
	}
}

// TestLinkIterationSchedule: thresholds must descend from DeltaHigh to
// DeltaLow in steps of DeltaStep, and the reported deltas must be exact:
// repeated subtraction would leak drifted values like 0.6000000000000001
// into IterationStats, LinkSource provenance and JSON reports.
func TestLinkIterationSchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StopOnEmpty = false
	cfg.Workers = 1
	old, new := paperexample.Old(), paperexample.New()
	res, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.7, 0.65, 0.6, 0.55, 0.5}
	if len(res.Iterations) != len(want) {
		t.Fatalf("iterations = %d, want %d", len(res.Iterations), len(want))
	}
	for i, it := range res.Iterations {
		if it.Delta != want[i] {
			t.Errorf("iteration %d delta = %v, want exactly %v", i, it.Delta, want[i])
		}
	}
	// Subgraph-link provenance must carry the same exact thresholds.
	for p, src := range res.Sources {
		if src.Kind != SourceSubgraph {
			continue
		}
		ok := false
		for _, w := range want {
			if src.Delta == w {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("link %v provenance delta = %v, not on the schedule %v", p, src.Delta, want)
		}
	}
}

// TestDeltaScheduleExact pins the index-based threshold computation: every
// δ of the default 0.7→0.5/0.05 configuration is the exact decimal literal,
// with no floating-point drift, and drift-prone steps like 0.1 stay exact
// over many iterations.
func TestDeltaScheduleExact(t *testing.T) {
	cases := []struct {
		high, low, step float64
		want            []float64
	}{
		{0.7, 0.5, 0.05, []float64{0.7, 0.65, 0.6, 0.55, 0.5}},
		{0.9, 0.3, 0.1, []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}},
		{1.0, 0.85, 0.03, []float64{1.0, 0.97, 0.94, 0.91, 0.88, 0.85}},
		{0.5, 0.5, 0, []float64{0.5}},    // one-shot
		{0.5, 0.5, 0.05, []float64{0.5}}, // one-shot with a (unused) step
	}
	for _, c := range cases {
		cfg := Config{DeltaHigh: c.high, DeltaLow: c.low, DeltaStep: c.step}
		got := cfg.deltaSchedule()
		if len(got) != len(c.want) {
			t.Errorf("schedule(%v→%v/%v) = %v, want %v", c.high, c.low, c.step, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("schedule(%v→%v/%v)[%d] = %v, want exactly %v",
					c.high, c.low, c.step, i, got[i], c.want[i])
			}
		}
	}
}

// TestDeltaScheduleClampsToDeltaLow: when DeltaHigh-DeltaLow is not an
// integer multiple of DeltaStep, the last step must be clamped so the
// paper-mandated final iteration at δ_low still runs (the old loop stopped
// at 0.55 and never reached 0.52).
func TestDeltaScheduleClampsToDeltaLow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeltaLow = 0.52
	want := []float64{0.7, 0.65, 0.6, 0.55, 0.52}
	got := cfg.deltaSchedule()
	if len(got) != len(want) {
		t.Fatalf("schedule = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("schedule[%d] = %v, want exactly %v", i, got[i], want[i])
		}
	}

	cfg.StopOnEmpty = false
	cfg.Workers = 1
	res, err := Link(paperexample.Old(), paperexample.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations")
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.Delta != cfg.DeltaLow {
		t.Errorf("final iteration delta = %v, want exactly DeltaLow %v", last.Delta, cfg.DeltaLow)
	}
	if len(res.Iterations) != len(want) {
		t.Errorf("iterations = %d, want %d", len(res.Iterations), len(want))
	}
}

// TestLinkNonIterative: DeltaHigh == DeltaLow gives exactly one iteration.
func TestLinkNonIterative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeltaHigh, cfg.DeltaLow, cfg.DeltaStep = 0.5, 0.5, 0
	cfg.Workers = 1
	old, new := paperexample.Old(), paperexample.New()
	res, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Errorf("iterations = %d, want 1", len(res.Iterations))
	}
}

// TestLinkDeterminism: repeated runs with different worker counts agree.
func TestLinkDeterminism(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	cfg := DefaultConfig()
	cfg.Workers = 1
	base, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		cfg.Workers = workers
		got, err := Link(old, new, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.RecordLinks, base.RecordLinks) {
			t.Errorf("workers=%d: record links differ", workers)
		}
		if !reflect.DeepEqual(got.GroupLinks, base.GroupLinks) {
			t.Errorf("workers=%d: group links differ", workers)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.DeltaHigh, c.DeltaLow = 0.4, 0.6 },
		func(c *Config) { c.DeltaStep = 0 },
		func(c *Config) { c.Alpha, c.Beta = 0.8, 0.5 },
		func(c *Config) { c.Alpha = -0.1 },
		func(c *Config) { c.AgeTolerance = -1 },
		func(c *Config) { c.Strategies = nil },
		func(c *Config) { c.Sim.Matchers = nil },
		func(c *Config) { c.Remainder.Matchers = nil },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestMatchRemainingGreedy: the highest-similarity candidate wins and the
// mapping stays 1:1.
func TestMatchRemainingGreedy(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	cfg := MatchConfig{AgeTolerance: 3, YearGap: 10}
	links := matchRemainingT(old.Records(), old.Year, new.Records(), new.Year,
		NameOnly(0.9), cfg, block.DefaultStrategies(), false)
	got := map[string]string{}
	for _, l := range links {
		got[l.Old] = l.New
	}
	// Exact-name, age-consistent pairs: John Ashworth can match 1881_1 or
	// 1881_9 (both exact); greedy with ID tie-break picks 1881_1.
	if got["1871_1"] != "1881_1" {
		t.Errorf("John Ashworth -> %s", got["1871_1"])
	}
	if got["1871_8"] != "1881_6" {
		t.Errorf("Steve Smith -> %s", got["1871_8"])
	}
	seenNew := map[string]bool{}
	for _, l := range links {
		if seenNew[l.New] {
			t.Fatalf("new record %s linked twice", l.New)
		}
		seenNew[l.New] = true
	}
}

// TestMatchRemainingAgeWindow: an exact-name pair that did not age by the
// census interval is rejected.
func TestMatchRemainingAgeWindow(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	// William 1871 (age 2) vs William of household d (age 10): deviates by 2
	// -> accepted. Shrink the tolerance to 1 to force rejection.
	cfg := MatchConfig{AgeTolerance: 1, YearGap: 10}
	links := matchRemainingT(
		[]*census.Record{old.Record("1871_4")}, old.Year,
		[]*census.Record{new.Record("1881_11")}, new.Year,
		NameOnly(0.9), cfg, block.DefaultStrategies(), false)
	if len(links) != 0 {
		t.Errorf("age-inconsistent remainder link accepted: %v", links)
	}
}

// TestLinkProvenance: every record link carries a source; Alice and Steve
// come from the remainder pass, the rest from subgraphs with the supporting
// group pair recorded.
func TestLinkProvenance(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	res, err := Link(old, new, runningExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != len(res.RecordLinks) {
		t.Fatalf("sources = %d for %d links", len(res.Sources), len(res.RecordLinks))
	}
	src, ok := res.Sources[Pair{Old: "1871_1", New: "1881_1"}]
	if !ok || src.Kind != SourceSubgraph {
		t.Errorf("John Ashworth source = %+v", src)
	}
	if src.Group != (GroupPair{Old: "1871_a", New: "1881_a"}) {
		t.Errorf("John Ashworth supporting group = %+v", src.Group)
	}
	if src.GSim <= 0 || src.Delta != 1.0 {
		t.Errorf("subgraph source scores = %+v", src)
	}
	for _, id := range []string{"1871_3", "1871_8"} {
		found := false
		for p, s := range res.Sources {
			if p.Old == id {
				found = true
				if s.Kind != SourceRemainder {
					t.Errorf("%s source = %v, want remainder", id, s.Kind)
				}
				if s.Delta != 0.6 {
					t.Errorf("%s remainder delta = %v", id, s.Delta)
				}
			}
		}
		if !found {
			t.Errorf("no source for %s", id)
		}
	}
	if SourceSubgraph.String() != "subgraph" || SourceRemainder.String() != "remainder" {
		t.Error("source kind names wrong")
	}
}

// TestMatchRemainingOptimal: the Hungarian variant resolves the classic
// greedy trap — two olds competing for two news where the greedy top pick
// starves the other — and never totals less similarity than greedy.
func TestMatchRemainingOptimal(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	cfg := MatchConfig{AgeTolerance: 3, YearGap: 10}
	greedy := matchRemainingT(old.Records(), old.Year, new.Records(), new.Year,
		NameOnly(0.6), cfg, block.DefaultStrategies(), false)
	optimal := matchRemainingT(old.Records(), old.Year, new.Records(), new.Year,
		NameOnly(0.6), cfg, block.DefaultStrategies(), true)
	sum := func(links []RecordLink) float64 {
		s := 0.0
		for _, l := range links {
			s += l.Sim
		}
		return s
	}
	if sum(optimal) < sum(greedy)-1e-9 {
		t.Errorf("optimal total %.4f below greedy %.4f", sum(optimal), sum(greedy))
	}
	// Both stay 1:1.
	seen := map[string]bool{}
	for _, l := range optimal {
		if seen[l.Old] || seen["n"+l.New] {
			t.Fatalf("not 1:1: %v", l)
		}
		seen[l.Old] = true
		seen["n"+l.New] = true
	}
}

// TestLinkOptimalRemainderConfig: the pipeline accepts the option and still
// reproduces the running example.
func TestLinkOptimalRemainderConfig(t *testing.T) {
	cfg := runningExampleConfig()
	cfg.OptimalRemainder = true
	old, new := paperexample.Old(), paperexample.New()
	res, err := Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, l := range res.RecordLinks {
		got[l.Old] = l.New
	}
	for o, n := range paperexample.TrueRecordMapping() {
		if got[o] != n {
			t.Errorf("link %s -> %s missing under optimal remainder", o, n)
		}
	}
}
