package linkage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"censuslink/internal/census"
)

// mkSub builds a synthetic subgraph for selection tests.
func mkSub(oldHH, newHH string, gsim float64, pairs ...[2]string) *Subgraph {
	s := &Subgraph{OldGroup: oldHH, NewGroup: newHH, GSim: gsim}
	for _, p := range pairs {
		s.Vertices = append(s.Vertices, VertexPair{
			Old: &census.Record{ID: p[0], HouseholdID: oldHH},
			New: &census.Record{ID: p[1], HouseholdID: newHH},
			Sim: 1,
		})
	}
	return s
}

// TestSelectionPrefersHigherGSim: with two candidates for the same records,
// only the higher-scoring group pair survives (the paper's a vs. d case).
func TestSelectionPrefersHigherGSim(t *testing.T) {
	subA := mkSub("ga", "na", 0.59, [2]string{"o1", "n1"}, [2]string{"o2", "n2"})
	subD := mkSub("ga", "nd", 0.37, [2]string{"o1", "m1"}, [2]string{"o2", "m2"})
	groups, records := SelectGroupLinks([]*Subgraph{subD, subA})
	if len(groups) != 1 || groups[0] != (GroupLink{Old: "ga", New: "na"}) {
		t.Fatalf("groups = %v", groups)
	}
	if len(records) != 2 {
		t.Fatalf("records = %v", records)
	}
}

// TestSelectionAllowsDisjointNToM: one household splitting into two disjoint
// subgroups yields two group links (N:M mapping).
func TestSelectionAllowsDisjointNToM(t *testing.T) {
	s1 := mkSub("ga", "n1", 0.8, [2]string{"o1", "a1"}, [2]string{"o2", "a2"})
	s2 := mkSub("ga", "n2", 0.6, [2]string{"o3", "b1"}, [2]string{"o4", "b2"})
	groups, records := SelectGroupLinks([]*Subgraph{s1, s2})
	if len(groups) != 2 {
		t.Fatalf("disjoint split should produce 2 group links, got %v", groups)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4", len(records))
	}
}

// TestSelectionRejectsOverlapOnNewSide: two old households cannot claim the
// same new records.
func TestSelectionRejectsOverlapOnNewSide(t *testing.T) {
	s1 := mkSub("g1", "nh", 0.9, [2]string{"o1", "n1"}, [2]string{"o2", "n2"})
	s2 := mkSub("g2", "nh", 0.7, [2]string{"p1", "n1"}) // n1 already taken
	groups, _ := SelectGroupLinks([]*Subgraph{s1, s2})
	if len(groups) != 1 || groups[0].Old != "g1" {
		t.Fatalf("groups = %v", groups)
	}
}

// TestSelectionPartialOverlapMerge: a merge (two old households into one new
// household) is accepted when the subgroups are disjoint.
func TestSelectionPartialOverlapMerge(t *testing.T) {
	s1 := mkSub("g1", "nh", 0.9, [2]string{"o1", "n1"}, [2]string{"o2", "n2"})
	s2 := mkSub("g2", "nh", 0.7, [2]string{"p1", "n3"}, [2]string{"p2", "n4"})
	groups, records := SelectGroupLinks([]*Subgraph{s1, s2})
	if len(groups) != 2 {
		t.Fatalf("merge should produce 2 group links, got %v", groups)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4", len(records))
	}
}

// TestSelectionRecordMapping1To1: no record ID appears twice on either side
// of the extracted record links.
func TestSelectionRecordMapping1To1(t *testing.T) {
	subs := []*Subgraph{
		mkSub("g1", "n1", 0.9, [2]string{"o1", "a1"}, [2]string{"o2", "a2"}),
		mkSub("g1", "n2", 0.8, [2]string{"o1", "b1"}),                        // conflicts on o1
		mkSub("g1", "n3", 0.7, [2]string{"o3", "c1"}),                        // disjoint: fine
		mkSub("g2", "n1", 0.6, [2]string{"q1", "a1"}, [2]string{"q2", "a9"}), // conflicts on a1
	}
	groups, records := SelectGroupLinks(subs)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	seenOld, seenNew := map[string]bool{}, map[string]bool{}
	for _, r := range records {
		if seenOld[r.Old] || seenNew[r.New] {
			t.Fatalf("duplicate record in mapping: %v", r)
		}
		seenOld[r.Old] = true
		seenNew[r.New] = true
	}
}

// TestSelectionDeterministicTieBreak: equal scores resolve by household ID.
func TestSelectionDeterministicTieBreak(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		s1 := mkSub("g1", "nb", 0.5, [2]string{"o1", "n1"})
		s2 := mkSub("g1", "na", 0.5, [2]string{"o1", "n2"})
		groups, _ := SelectGroupLinks([]*Subgraph{s1, s2})
		if len(groups) != 1 || groups[0].New != "na" {
			t.Fatalf("tie break wrong: %v", groups)
		}
	}
}

func TestSelectionEmptyAndNil(t *testing.T) {
	groups, records := SelectGroupLinks(nil)
	if groups != nil || records != nil {
		t.Error("empty input should give empty output")
	}
	groups, records = SelectGroupLinks([]*Subgraph{nil, {OldGroup: "g", NewGroup: "n"}})
	if len(groups) != 0 || len(records) != 0 {
		t.Error("nil and vertex-less subgraphs should be skipped")
	}
}

// TestSelectionInvariantsProperty: under random subgraph inputs the
// selection must keep records 1:1 and never accept a conflicting subgraph.
func TestSelectionInvariantsProperty(t *testing.T) {
	prop := func(seed int64, nSubs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSubs%24) + 1
		subs := make([]*Subgraph, 0, n)
		for i := 0; i < n; i++ {
			oldHH := fmt.Sprintf("g%d", rng.Intn(6))
			newHH := fmt.Sprintf("n%d", rng.Intn(6))
			s := &Subgraph{OldGroup: oldHH, NewGroup: newHH, GSim: rng.Float64()}
			// Subgraphs are internally 1:1 (MatchGroups guarantees this),
			// so draw vertex pairs without replacement.
			usedOld := map[int]bool{}
			usedNew := map[int]bool{}
			for v := 0; v < 1+rng.Intn(4); v++ {
				oi, ni := rng.Intn(8), rng.Intn(8)
				if usedOld[oi] || usedNew[ni] {
					continue
				}
				usedOld[oi] = true
				usedNew[ni] = true
				s.Vertices = append(s.Vertices, VertexPair{
					Old: &census.Record{ID: fmt.Sprintf("%s_r%d", oldHH, oi), HouseholdID: oldHH},
					New: &census.Record{ID: fmt.Sprintf("%s_r%d", newHH, ni), HouseholdID: newHH},
					Sim: rng.Float64(),
				})
			}
			subs = append(subs, s)
		}
		groups, records := SelectGroupLinks(subs)
		seenOld := map[string]bool{}
		seenNew := map[string]bool{}
		for _, l := range records {
			if seenOld[l.Old] || seenNew[l.New] {
				return false
			}
			seenOld[l.Old] = true
			seenNew[l.New] = true
		}
		// Note: the same group pair may legitimately be accepted twice with
		// disjoint subgraphs (Link dedupes M_G); only record 1:1-ness and
		// the group/record consistency are invariants here.
		for _, g := range groups {
			if g.Old == "" || g.New == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
