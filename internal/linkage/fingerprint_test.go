package linkage

import (
	"testing"

	"censuslink/internal/obs"
)

// TestFingerprintSeesOutputAffectingKnobs: every configuration field that
// changes what the pipeline produces must change the fingerprint, so a
// stale snapshot can never be served for a different configuration.
func TestFingerprintSeesOutputAffectingKnobs(t *testing.T) {
	base := DefaultConfig().Fingerprint()
	if base != DefaultConfig().Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	mutations := map[string]func(*Config){
		"delta-high":       func(c *Config) { c.DeltaHigh = 0.9 },
		"delta-low":        func(c *Config) { c.DeltaLow = 0.4 },
		"delta-step":       func(c *Config) { c.DeltaStep = 0.1 },
		"alpha":            func(c *Config) { c.Alpha = 0.3 },
		"beta":             func(c *Config) { c.Beta = 0.5 },
		"age-tolerance":    func(c *Config) { c.AgeTolerance = 5 },
		"sim-delta":        func(c *Config) { c.Sim.Delta = 0.66 },
		"sim-weights":      func(c *Config) { c.Sim.Matchers[0].Weight *= 2 },
		"remainder":        func(c *Config) { c.Remainder.Delta = 0.9 },
		"stop-on-empty":    func(c *Config) { c.StopOnEmpty = !c.StopOnEmpty },
		"direct-vertices":  func(c *Config) { c.DirectVerticesOnly = !c.DirectVerticesOnly },
		"vertex-guards":    func(c *Config) { c.VertexGuards = !c.VertexGuards },
		"optimal-remaind":  func(c *Config) { c.OptimalRemainder = !c.OptimalRemainder },
		"blocking":         func(c *Config) { c.Strategies = c.Strategies[:1] },
		"matcher-identity": func(c *Config) { c.Sim.Matchers[0].Name = "levenshtein" },
	}
	seen := map[string]string{"": base}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		fp := cfg.Fingerprint()
		if fp == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutations %q and %q collide on the same fingerprint", name, prev)
		}
		seen[fp] = name
	}
}

// TestFingerprintIgnoresExecutionKnobs: fields proven not to affect the
// output — scheduling, observability, engine selection (differentially
// tested identical) — must NOT invalidate snapshots.
func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	base := DefaultConfig().Fingerprint()
	mutations := map[string]func(*Config){
		"workers": func(c *Config) { c.Workers = 7 },
		"shards":  func(c *Config) { c.Shards = 8 },
		"engine":  func(c *Config) { c.Engine = EngineNaive },
		"panics":  func(c *Config) { c.Panics = PanicSkip },
		"obs":     func(c *Config) { c.Obs = obs.NewStats(nil) },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Fingerprint() != base {
			t.Errorf("execution knob %s changed the fingerprint; it must not", name)
		}
	}
}
