package linkage

import (
	"strings"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/paperexample"
	"censuslink/internal/strsim"
)

// syntheticSample builds a training set where ONLY the first name is
// informative: matches agree on it, non-matches never do, while surname
// agreement is random noise.
func syntheticSample() []TrainingPair {
	mk := func(fn, sn string) *census.Record {
		return &census.Record{FirstName: fn, Surname: sn}
	}
	var out []TrainingPair
	firsts := []string{"john", "mary", "thomas", "sarah", "william", "ellen"}
	surnames := []string{"ashworth", "smith"}
	for i, fn := range firsts {
		sn := surnames[i%2]
		// Match: same first name, surname agreeing half the time.
		out = append(out, TrainingPair{
			Old: mk(fn, sn), New: mk(fn, surnames[(i/2)%2]), Match: true,
		})
		// Non-match: different first name, surname agreeing half the time.
		out = append(out, TrainingPair{
			Old: mk(fn, sn), New: mk(firsts[(i+1)%len(firsts)], surnames[(i+1)%2]), Match: false,
		})
	}
	return out
}

func tuningMatchers() []AttributeMatcher {
	return []AttributeMatcher{
		{Attr: census.AttrFirstName, Sim: strsim.Bigram},
		{Attr: census.AttrSurname, Sim: strsim.Bigram},
	}
}

func TestTuneWeightsShiftsToInformativeAttribute(t *testing.T) {
	// At threshold 0.75, uniform weights miss the matches whose surnames
	// disagree; only shifting weight to the first name separates the
	// sample perfectly.
	res, err := TuneWeights(syntheticSample(), tuningMatchers(), 0.75, 40)
	if err != nil {
		t.Fatal(err)
	}
	var fnWeight, snWeight float64
	for _, m := range res.Sim.Matchers {
		switch m.Attr {
		case census.AttrFirstName:
			fnWeight = m.Weight
		case census.AttrSurname:
			snWeight = m.Weight
		}
	}
	if fnWeight <= snWeight {
		t.Errorf("tuner should favour first name: fn=%.2f sn=%.2f", fnWeight, snWeight)
	}
	if res.F1 < 0.99 {
		t.Errorf("perfectly separable sample should reach F1 ~1, got %.3f", res.F1)
	}
	if err := res.Sim.Validate(); err != nil {
		t.Errorf("tuned SimFunc invalid: %v", err)
	}
}

func TestTuneWeightsErrors(t *testing.T) {
	if _, err := TuneWeights(nil, tuningMatchers(), 0.5, 10); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := TuneWeights(syntheticSample(), nil, 0.5, 10); err == nil {
		t.Error("no matchers accepted")
	}
}

func TestTuneWeightsBeatsUniformOnRunningExample(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	truth := map[Pair]bool{}
	for o, n := range paperexample.TrueRecordMapping() {
		truth[Pair{Old: o, New: n}] = true
	}
	sample := BuildTrainingSet(old, new, truth, block.DefaultStrategies(), 0, 1)
	matchers := OmegaOne(0).Matchers
	res, err := TuneWeights(sample, matchers, 0.6, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Score the uniform ω1 on the same sample for comparison.
	uniform, err := TuneWeights(sample, matchers, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1+1e-9 < uniform.F1 {
		t.Errorf("tuned F %.3f below starting point %.3f", res.F1, uniform.F1)
	}
}

func TestBuildTrainingSet(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	truth := map[Pair]bool{}
	for o, n := range paperexample.TrueRecordMapping() {
		truth[Pair{Old: o, New: n}] = true
	}
	all := BuildTrainingSet(old, new, truth, block.DefaultStrategies(), 0, 1)
	matches := 0
	for _, p := range all {
		if p.Match {
			matches++
		}
	}
	// All seven true pairs are blocked candidates in the running example.
	if matches != 7 {
		t.Errorf("matches in sample = %d, want 7", matches)
	}
	if len(all) <= matches {
		t.Error("sample should include non-matches")
	}
	// Down-sampling caps the negatives.
	capped := BuildTrainingSet(old, new, truth, block.DefaultStrategies(), 1.0, 1)
	negatives := len(capped) - matches
	if negatives > matches {
		t.Errorf("negativeRatio 1.0 kept %d negatives for %d matches", negatives, matches)
	}
	// Determinism.
	again := BuildTrainingSet(old, new, truth, block.DefaultStrategies(), 1.0, 1)
	if len(again) != len(capped) {
		t.Error("training set not deterministic")
	}
}

func TestWeightsByAttribute(t *testing.T) {
	out := WeightsByAttribute(OmegaTwo(0))
	if len(out) != 5 {
		t.Fatalf("entries = %d", len(out))
	}
	if !strings.Contains(out[0], "first name=0.40") {
		t.Errorf("first entry = %q", out[0])
	}
}

func TestEvaluateWeights(t *testing.T) {
	sample := syntheticSample()
	// A tuned function must score at least as well as the uniform start.
	res, err := TuneWeights(sample, tuningMatchers(), 0.75, 40)
	if err != nil {
		t.Fatal(err)
	}
	uniform := SimFunc{Delta: 0.75, Matchers: []AttributeMatcher{
		{Attr: census.AttrFirstName, Sim: strsim.Bigram, Weight: 0.5},
		{Attr: census.AttrSurname, Sim: strsim.Bigram, Weight: 0.5},
	}}
	if got := EvaluateWeights(sample, res.Sim); got < EvaluateWeights(sample, uniform) {
		t.Errorf("tuned F %.3f below uniform %.3f", got, EvaluateWeights(sample, uniform))
	}
	// Consistency: EvaluateWeights of the tuned function matches TuneResult.F1.
	if got := EvaluateWeights(sample, res.Sim); got != res.F1 {
		t.Errorf("EvaluateWeights %.4f != TuneResult.F1 %.4f", got, res.F1)
	}
	if EvaluateWeights(nil, uniform) != 0 {
		t.Error("empty sample should score 0")
	}
}
