package linkage

import (
	"context"
	"fmt"
	"sync"

	"censuslink/internal/census"
	"censuslink/internal/obs"
)

// ResultStore is the persistence surface LinkSeriesOpts talks to. It is
// satisfied by *store.Store (internal/store); the interface lives here so
// linkage does not depend on the store's serialization format.
//
// LoadResult returns the stored result for (configHash, oldDS, newDS), or
// (nil, nil) when no snapshot exists. A non-nil error means a snapshot was
// found but could not be trusted (corrupt, truncated, wrong version); the
// caller recomputes and overwrites it.
type ResultStore interface {
	LoadResult(configHash string, oldDS, newDS *census.Dataset) (*Result, error)
	SaveResult(configHash string, oldDS, newDS *census.Dataset, res *Result) error
}

// SeriesOptions controls persistence and scheduling of a series linkage run
// beyond the per-pair Config.
type SeriesOptions struct {
	// Store, when non-nil, receives every freshly computed pair result
	// (write-through). With Incremental it is also consulted first.
	Store ResultStore
	// Incremental skips any year pair whose (config fingerprint, old-dataset
	// hash, new-dataset hash) already has a snapshot in Store, loading the
	// stored result instead of recomputing. Store hits, misses and rejected
	// snapshots are counted on the obs.StoreHits/StoreMisses/StoreCorrupt
	// counters of Config.Obs.
	Incremental bool
	// PairWorkers bounds how many year pairs are linked concurrently. The
	// pairs of Algorithm 1 are data-independent, so they parallelize freely;
	// output order and per-pair iteration stats are preserved regardless.
	// <= 1 runs the pairs sequentially (the historical behaviour).
	PairWorkers int
}

// LinkSeries links every successive pair of a census series with the same
// configuration, returning one result per pair (results[i] links
// Datasets[i] to Datasets[i+1]).
func LinkSeries(series *census.Series, cfg Config) ([]*Result, error) {
	return LinkSeriesContext(context.Background(), series, cfg)
}

// LinkSeriesContext is LinkSeries with cooperative cancellation: the
// context is observed between pairs and inside every pair's pipeline (see
// LinkContext), so a deadline or SIGINT aborts a multi-decade run promptly.
func LinkSeriesContext(ctx context.Context, series *census.Series, cfg Config) ([]*Result, error) {
	return LinkSeriesOpts(ctx, series, cfg, SeriesOptions{})
}

// LinkSeriesOpts is the full series entry point: LinkSeriesContext plus
// snapshot persistence and bounded pair-level parallelism (see
// SeriesOptions).
//
// On failure the completed pair results are NOT discarded: the returned
// slice has one slot per pair with nil marking the failed and unstarted
// ones, and the error is a *SeriesError naming the failing pair and how
// many pairs completed — so an incremental caller with a Store has already
// checkpointed the finished pairs and a re-run resumes where it stopped.
func LinkSeriesOpts(ctx context.Context, series *census.Series, cfg Config, opts SeriesOptions) ([]*Result, error) {
	pairs := series.Pairs()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("linkage: series has %d datasets, need at least 2", len(series.Datasets))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var cfgHash string
	if opts.Store != nil {
		cfgHash = cfg.Fingerprint()
	}

	out := make([]*Result, len(pairs))
	var todo []int
	for i, pair := range pairs {
		if opts.Incremental && opts.Store != nil {
			res, err := opts.Store.LoadResult(cfgHash, pair[0], pair[1])
			switch {
			case res != nil:
				out[i] = res
				cfg.Obs.Add(obs.StoreHits, 1)
				continue
			case err != nil:
				// A snapshot existed but was rejected (corrupt, truncated,
				// version mismatch): recompute and overwrite it below.
				cfg.Obs.Add(obs.StoreCorrupt, 1)
			default:
				cfg.Obs.Add(obs.StoreMisses, 1)
			}
		}
		todo = append(todo, i)
	}

	var err error
	if opts.PairWorkers <= 1 || len(todo) <= 1 {
		err = linkPairsSequential(ctx, pairs, cfg, cfgHash, opts, todo, out)
	} else {
		err = linkPairsParallel(ctx, pairs, cfg, cfgHash, opts, todo, out)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// LinkAppend links the single new pair created when dataset next arrives at
// the end of an already-linked series: (series.Datasets[last], next). It is
// the linkage leg of the append-only evolution update — the earlier pairs
// are untouched, so arrival cost is one pair linkage (or one store load when
// a snapshot exists).
//
// With opts.Incremental and a Store, the store is consulted first exactly
// like LinkSeriesOpts; fresh results are written through. next.Year must be
// strictly greater than the last year of the series.
func LinkAppend(ctx context.Context, series *census.Series, next *census.Dataset, cfg Config, opts SeriesOptions) (*Result, error) {
	if len(series.Datasets) == 0 {
		return nil, fmt.Errorf("linkage: append to empty series")
	}
	last := series.Datasets[len(series.Datasets)-1]
	if next.Year <= last.Year {
		return nil, fmt.Errorf("linkage: appended year %d not after last series year %d", next.Year, last.Year)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var cfgHash string
	if opts.Store != nil {
		cfgHash = cfg.Fingerprint()
	}
	if opts.Incremental && opts.Store != nil {
		res, err := opts.Store.LoadResult(cfgHash, last, next)
		switch {
		case res != nil:
			cfg.Obs.Add(obs.StoreHits, 1)
			return res, nil
		case err != nil:
			cfg.Obs.Add(obs.StoreCorrupt, 1)
		default:
			cfg.Obs.Add(obs.StoreMisses, 1)
		}
	}
	res, err := LinkContext(ctx, last, next, cfg)
	if err != nil {
		return nil, err
	}
	if err := savePair(opts, cfgHash, [2]*census.Dataset{last, next}, res); err != nil {
		return nil, err
	}
	return res, nil
}

// savePair writes one freshly computed result through to the store.
func savePair(opts SeriesOptions, cfgHash string, pair [2]*census.Dataset, res *Result) error {
	if opts.Store == nil {
		return nil
	}
	if err := opts.Store.SaveResult(cfgHash, pair[0], pair[1], res); err != nil {
		return fmt.Errorf("linkage: store pair %d-%d: %w", pair[0].Year, pair[1].Year, err)
	}
	return nil
}

// completedCount counts the non-nil slots, i.e. the pairs whose results the
// caller gets back despite a failure elsewhere.
func completedCount(out []*Result) int {
	n := 0
	for _, r := range out {
		if r != nil {
			n++
		}
	}
	return n
}

// linkPairsSequential runs the remaining pairs one by one in index order,
// sharing cfg.Obs directly (iteration snapshots cannot interleave).
func linkPairsSequential(ctx context.Context, pairs [][2]*census.Dataset, cfg Config, cfgHash string,
	opts SeriesOptions, todo []int, out []*Result) error {
	for _, i := range todo {
		pair := pairs[i]
		res, err := LinkContext(ctx, pair[0], pair[1], cfg)
		if err == nil {
			err = savePair(opts, cfgHash, pair, res)
		}
		if err != nil {
			return &SeriesError{
				OldYear:   pair[0].Year,
				NewYear:   pair[1].Year,
				Completed: completedCount(out),
				Pairs:     len(pairs),
				Err:       err,
			}
		}
		out[i] = res
	}
	return nil
}

// linkPairsParallel runs the remaining pairs under a bounded worker pool.
// Results are slotted by pair index, so the output order is identical to
// the sequential path's. Each pair collects into its own obs.Stats child;
// the children are merged into cfg.Obs in pair order after the pool drains,
// so iteration snapshots never interleave across pairs. The first failure
// (in pair order) stops new pairs from being fed, but pairs already in
// flight run to completion and keep their slots — a failed save must not
// discard sibling work that is about to finish (and on a single-CPU box the
// scheduler could otherwise cancel an almost-done sibling nondeterministically).
// Only parent-context cancellation aborts in-flight pairs.
func linkPairsParallel(ctx context.Context, pairs [][2]*census.Dataset, cfg Config, cfgHash string,
	opts SeriesOptions, todo []int, out []*Result) error {
	workers := opts.PairWorkers
	if workers > len(todo) {
		workers = len(todo)
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	children := make([]*obs.Stats, len(todo))
	errs := make([]error, len(todo))
	next := make(chan int) // index into todo
	stopFeed := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range next {
				pair := pairs[todo[ti]]
				pcfg := cfg
				if cfg.Obs != nil {
					children[ti] = obs.NewStats(nil)
					pcfg.Obs = children[ti]
				}
				res, err := LinkContext(pctx, pair[0], pair[1], pcfg)
				if err == nil {
					err = savePair(opts, cfgHash, pair, res)
				}
				if err != nil {
					errs[ti] = err
					stopOnce.Do(func() { close(stopFeed) }) // fail fast: no new pairs
					continue
				}
				out[todo[ti]] = res
			}
		}()
	}
feed:
	for ti := range todo {
		select {
		case next <- ti:
		case <-stopFeed:
			break feed
		case <-pctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	for ti := range todo {
		if children[ti] != nil {
			cfg.Obs.Merge(children[ti].Report())
		}
	}
	// Report the first real failure in pair order. Cancellation errors may
	// only echo a sibling's fail-fast (or the parent context), so they rank
	// behind any genuine failure and are reported only when nothing else is.
	first := -1
	for ti, err := range errs {
		if err == nil {
			continue
		}
		if first == -1 {
			first = ti
		}
		if pe, ok := err.(*PipelineError); !ok || !pe.Canceled() {
			first = ti
			break
		}
	}
	if first >= 0 {
		pair := pairs[todo[first]]
		return &SeriesError{
			OldYear:   pair[0].Year,
			NewYear:   pair[1].Year,
			Completed: completedCount(out),
			Pairs:     len(pairs),
			Err:       errs[first],
		}
	}
	return nil
}
