package linkage

import (
	"sort"

	"censuslink/internal/census"
	"censuslink/internal/hgraph"
)

// VertexPair is one vertex of a matched subgraph: a pair of equally
// labelled (similar) records from the old and new group.
type VertexPair struct {
	Old, New *census.Record
	// Sim is agg_sim of the record pair (from pre-matching, or recomputed
	// for pairs linked only transitively).
	Sim float64
}

// SubEdge connects two vertex pairs of a subgraph whose underlying records
// are related by the same unified relationship type with similar age
// differences in both groups. I and J index Subgraph.Vertices.
type SubEdge struct {
	I, J  int
	RpSim float64 // relationship-property similarity in [0,1]
}

// Subgraph is the common subgraph of one candidate group pair together with
// its selection scores (Section 3.4).
type Subgraph struct {
	OldGroup, NewGroup string
	Vertices           []VertexPair
	Edges              []SubEdge

	AvgSim float64 // average record similarity (Eq. 5)
	ESim   float64 // Dice-style edge similarity (Eq. 6)
	Unique float64 // uniqueness of the involved cluster labels (Eq. 7)
	GSim   float64 // aggregated similarity (Eq. 4)
}

// OldRecordIDs returns the old-side record IDs of the subgraph vertices.
func (s *Subgraph) OldRecordIDs() []string {
	out := make([]string, len(s.Vertices))
	for i, v := range s.Vertices {
		out[i] = v.Old.ID
	}
	return out
}

// NewRecordIDs returns the new-side record IDs of the subgraph vertices.
func (s *Subgraph) NewRecordIDs() []string {
	out := make([]string, len(s.Vertices))
	for i, v := range s.Vertices {
		out[i] = v.New.ID
	}
	return out
}

// MatchConfig bundles the parameters of subgraph matching and group scoring.
type MatchConfig struct {
	// AgeTolerance τ is the maximum acceptable deviation, in years, both
	// between the age differences of corresponding edges and between a
	// record pair's age gap and the census interval (paper footnote 2).
	AgeTolerance int
	// YearGap is the interval between the two censuses (newYear - oldYear).
	YearGap int
	// Alpha and Beta weight avg_sim and e_sim in g_sim (Eq. 4); the
	// uniqueness weight is 1 - Alpha - Beta.
	Alpha, Beta float64
	// DirectVerticesOnly restricts subgraph vertices to directly compared
	// record pairs above δ. The paper's definition admits every equally
	// labelled pair (the transitive closure of the match relation), which
	// is the default; the restriction is a stricter ablation variant.
	DirectVerticesOnly bool
	// VertexGuards enables extra sanity guards on transitive vertex pairs
	// (sex agreement and a similarity floor of δ/2) that go beyond the
	// paper. The record-pair age window always applies: the paper's
	// footnote 2 states that subgraph matching rejects pairs whose
	// normalised age difference exceeds the tolerance.
	VertexGuards bool
}

// rpSim converts an age-difference deviation into the relationship-property
// similarity: 1 for exact agreement, decaying linearly, 0 beyond tolerance.
func (c MatchConfig) rpSim(dOld, dNew int) (float64, bool) {
	if dOld == hgraph.AgeDiffMissing || dNew == hgraph.AgeDiffMissing {
		return 0, false
	}
	dev := dOld - dNew
	if dev < 0 {
		dev = -dev
	}
	if dev > c.AgeTolerance {
		return 0, false
	}
	return 1 - float64(dev)/float64(c.AgeTolerance+1), true
}

// ageConsistent reports whether a record pair's ages are consistent with the
// census interval: the person must have aged by YearGap ± AgeTolerance
// years. Missing ages pass (no evidence against the pair).
func (c MatchConfig) ageConsistent(o, n *census.Record) bool {
	if o.Age == census.AgeMissing || n.Age == census.AgeMissing {
		return true
	}
	dev := (n.Age - o.Age) - c.YearGap
	if dev < 0 {
		dev = -dev
	}
	return dev <= c.AgeTolerance
}

// MatchGroups computes the common subgraph of one group pair (Section 3.3)
// and its selection scores. It returns nil when the groups share no
// structurally supported subgraph (fewer than two compatible vertices or no
// compatible edge).
//
// Vertex candidates are the record pairs with equal cluster labels that are
// age-consistent with the census interval. Because one label can admit
// conflicting pairs (duplicate names inside a household), a 1:1 assignment
// is chosen greedily by (edge support, record similarity). Vertices left
// without any compatible edge are dropped, following the reduction shown in
// Fig. 4 of the paper.
func MatchGroups(gOld, gNew *hgraph.Graph, pre *PreMatchResult, f SimFunc, cfg MatchConfig) *Subgraph {
	// Collect candidate vertex pairs: equally labelled (i.e. similar)
	// record pairs that are age-consistent with the census interval. For
	// pairs that were only linked transitively, the aggregated similarity
	// is computed on demand.
	var cands []VertexPair
	for _, o := range gOld.Members() {
		lo, okO := pre.Label(o.ID)
		if !okO {
			continue
		}
		for _, n := range gNew.Members() {
			sim, direct := pre.Sims[Pair{Old: o.ID, New: n.ID}]
			if !direct {
				if cfg.DirectVerticesOnly {
					continue
				}
				ln, okN := pre.Label(n.ID)
				if !okN || lo != ln {
					continue
				}
				// Transitively linked pair: the records sit in one cluster
				// but were never compared directly. With VertexGuards on,
				// chains of barely-similar records are cut: contradictory
				// sex values and pairs below half of the direct threshold
				// are rejected.
				if cfg.VertexGuards {
					if o.Sex != census.SexUnknown && n.Sex != census.SexUnknown && o.Sex != n.Sex {
						continue
					}
				}
				sim = f.AggSim(o, n)
				if cfg.VertexGuards && sim < f.Delta/2 {
					continue
				}
			}
			if !cfg.ageConsistent(o, n) {
				continue
			}
			cands = append(cands, VertexPair{Old: o, New: n, Sim: sim})
		}
	}
	if len(cands) < 2 {
		return nil
	}

	// Edge compatibility between candidate vertex pairs.
	compatible := func(a, b VertexPair) (float64, bool) {
		if a.Old.ID == b.Old.ID || a.New.ID == b.New.ID {
			return 0, false
		}
		tOld, dOld, okOld := gOld.EdgeBetween(a.Old.ID, b.Old.ID)
		tNew, dNew, okNew := gNew.EdgeBetween(a.New.ID, b.New.ID)
		if !okOld || !okNew || tOld != tNew {
			return 0, false
		}
		return cfg.rpSim(dOld, dNew)
	}
	support := make([]int, len(cands))
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if _, ok := compatible(cands[i], cands[j]); ok {
				support[i]++
				support[j]++
			}
		}
	}

	// Greedy 1:1 assignment: highest edge support first, then similarity,
	// then IDs for determinism.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if support[i] != support[j] {
			return support[i] > support[j]
		}
		if cands[i].Sim != cands[j].Sim {
			return cands[i].Sim > cands[j].Sim
		}
		if cands[i].Old.ID != cands[j].Old.ID {
			return cands[i].Old.ID < cands[j].Old.ID
		}
		return cands[i].New.ID < cands[j].New.ID
	})
	usedOld := make(map[string]bool, len(cands))
	usedNew := make(map[string]bool, len(cands))
	var chosen []VertexPair
	for _, i := range order {
		v := cands[i]
		if usedOld[v.Old.ID] || usedNew[v.New.ID] {
			continue
		}
		usedOld[v.Old.ID] = true
		usedNew[v.New.ID] = true
		chosen = append(chosen, v)
	}
	// Restore member order for deterministic output.
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Old.ID < chosen[j].Old.ID })

	// Final edges among the chosen vertices.
	var edges []SubEdge
	degree := make([]int, len(chosen))
	for i := 0; i < len(chosen); i++ {
		for j := i + 1; j < len(chosen); j++ {
			if rp, ok := compatible(chosen[i], chosen[j]); ok {
				edges = append(edges, SubEdge{I: i, J: j, RpSim: rp})
				degree[i]++
				degree[j]++
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}

	// Drop vertices without edge support (Fig. 4 reduction) and remap edges.
	remap := make([]int, len(chosen))
	var kept []VertexPair
	for i, v := range chosen {
		if degree[i] > 0 {
			remap[i] = len(kept)
			kept = append(kept, v)
		} else {
			remap[i] = -1
		}
	}
	for i := range edges {
		edges[i].I = remap[edges[i].I]
		edges[i].J = remap[edges[i].J]
	}

	sub := &Subgraph{
		OldGroup: gOld.HouseholdID,
		NewGroup: gNew.HouseholdID,
		Vertices: kept,
		Edges:    edges,
	}
	sub.score(gOld, gNew, pre, cfg)
	return sub
}

// score fills in avg_sim (Eq. 5), e_sim (Eq. 6), unique (Eq. 7) and the
// aggregated g_sim (Eq. 4).
func (s *Subgraph) score(gOld, gNew *hgraph.Graph, pre *PreMatchResult, cfg MatchConfig) {
	simSum := 0.0
	labelSum := 0
	for _, v := range s.Vertices {
		simSum += v.Sim
		if l, ok := pre.Label(v.Old.ID); ok {
			labelSum += pre.LabelSize[l]
		}
	}
	s.AvgSim = simSum / float64(len(s.Vertices))

	rpSum := 0.0
	for _, e := range s.Edges {
		rpSum += e.RpSim
	}
	if total := gOld.NumEdges() + gNew.NumEdges(); total > 0 {
		s.ESim = 2 * rpSum / float64(total)
	}

	if labelSum > 0 {
		s.Unique = 2 * float64(len(s.Vertices)) / float64(labelSum)
	}
	s.GSim = cfg.Alpha*s.AvgSim + cfg.Beta*s.ESim + (1-cfg.Alpha-cfg.Beta)*s.Unique
}

// GroupPair identifies a candidate household pair by household IDs.
type GroupPair struct {
	Old, New string
}

// CandidateGroupPairs derives the distinct group pairs connected by at least
// one pre-matching record link (Section 3.3: subgraph matching is only
// applied to pairs of groups sharing a similar record). Order follows the
// first occurrence in the deterministic link list.
func CandidateGroupPairs(pre *PreMatchResult, oldDS, newDS *census.Dataset) []GroupPair {
	seen := make(map[GroupPair]bool)
	var out []GroupPair
	for _, link := range pre.Links {
		o := oldDS.Record(link.Old)
		n := newDS.Record(link.New)
		if o == nil || n == nil {
			continue
		}
		gp := GroupPair{Old: o.HouseholdID, New: n.HouseholdID}
		if !seen[gp] {
			seen[gp] = true
			out = append(out, gp)
		}
	}
	return out
}

// AgeConsistent is the exported form of the record-pair age window check
// (paper footnote 2), for diagnostic tooling.
func (c MatchConfig) AgeConsistent(o, n *census.Record) bool {
	return c.ageConsistent(o, n)
}

// RelPropSim is the exported form of the edge age-difference similarity:
// it returns rp_sim and whether the two differences are compatible.
func (c MatchConfig) RelPropSim(dOld, dNew int) (float64, bool) {
	return c.rpSim(dOld, dNew)
}
