package linkage

import (
	"strings"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// FrequencyTable holds relative value frequencies of one attribute over a
// record population, used to scale similarity evidence: agreement on a rare
// value ("Thistlethwaite") is much stronger evidence for a match than
// agreement on a frequent one ("Smith"). This is the classical
// Fellegi-Sunter frequency adjustment, relevant here because the paper
// identifies frequent names as the core ambiguity problem.
type FrequencyTable struct {
	counts map[string]int
	total  int
	// maxDamp bounds how much a frequent value's similarity is dampened.
	maxDamp float64
}

// NewFrequencyTable counts attribute values over the given datasets.
// maxDamp in (0, 1] is the strongest dampening applied to the most frequent
// value (e.g. 0.3: agreement on the most common value is worth only 70% of
// full agreement).
func NewFrequencyTable(attr census.Attribute, maxDamp float64, datasets ...*census.Dataset) *FrequencyTable {
	if maxDamp < 0 {
		maxDamp = 0
	}
	if maxDamp > 1 {
		maxDamp = 1
	}
	t := &FrequencyTable{counts: make(map[string]int), maxDamp: maxDamp}
	for _, d := range datasets {
		for _, r := range d.Records() {
			v := strings.ToLower(strings.TrimSpace(r.Value(attr)))
			if v == "" {
				continue
			}
			t.counts[v]++
			t.total++
		}
	}
	return t
}

// damp returns the dampening factor in [1-maxDamp, 1] for a value: 1 for
// unseen or unique values, decreasing linearly with the value's share of
// the most frequent value's count.
func (t *FrequencyTable) damp(v string) float64 {
	if t.total == 0 {
		return 1
	}
	c := t.counts[strings.ToLower(strings.TrimSpace(v))]
	if c <= 1 {
		return 1
	}
	max := 0
	for _, n := range t.counts {
		if n > max {
			max = n
		}
	}
	if max <= 1 {
		return 1
	}
	return 1 - t.maxDamp*float64(c-1)/float64(max-1)
}

// Scale wraps a string similarity function so that the similarity of two
// values is dampened by the frequency of the (more frequent) value: exact
// agreement on "smith" scores below exact agreement on a rare surname. The
// relative ordering of non-agreeing pairs is preserved.
func (t *FrequencyTable) Scale(base strsim.Func) strsim.Func {
	return func(a, b string) float64 {
		s := base(a, b)
		if s == 0 {
			return 0
		}
		da, db := t.damp(a), t.damp(b)
		d := da
		if db < d {
			d = db
		}
		return s * d
	}
}

// FrequencyScaledSim derives a new SimFunc from f where the given
// attributes' matchers are frequency-scaled over the two datasets.
func FrequencyScaledSim(f SimFunc, maxDamp float64, attrs []census.Attribute,
	old, new *census.Dataset) SimFunc {
	want := make(map[census.Attribute]bool, len(attrs))
	for _, a := range attrs {
		want[a] = true
	}
	out := f
	out.Name = f.Name + "+freq"
	out.Matchers = make([]AttributeMatcher, len(f.Matchers))
	copy(out.Matchers, f.Matchers)
	for i, m := range out.Matchers {
		if want[m.Attr] {
			table := NewFrequencyTable(m.Attr, maxDamp, old, new)
			out.Matchers[i].Sim = table.Scale(m.Sim)
		}
	}
	return out
}
