package linkage_test

// Integration tests of the observability wiring: the per-iteration obs
// snapshots must agree with the pipeline's own IterationStats, and the
// blocking counters must agree with a direct PreMatch run.

import (
	"context"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/synth"
)

// TestObsReportMatchesResult: one obs snapshot per δ iteration, with
// Compared/link/group counts identical to Result.Iterations, and run totals
// covering the remainder pass.
func TestObsReportMatchesResult(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.03, 7), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	cfg.Obs = obs.NewStats(nil)
	res, err := linkage.Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.Obs.Report()

	if len(rep.Iterations) != len(res.Iterations) {
		t.Fatalf("report has %d iterations, result has %d", len(rep.Iterations), len(res.Iterations))
	}
	var wantRecords int64
	for i, want := range res.Iterations {
		got := rep.Iterations[i]
		if got.Delta != want.Delta {
			t.Errorf("iteration %d: delta %v != %v", i, got.Delta, want.Delta)
		}
		if got.Count(obs.PairsCompared) != int64(want.ComparedPairs) {
			t.Errorf("iteration %d: compared %d != %d", i, got.Count(obs.PairsCompared), want.ComparedPairs)
		}
		if got.Count(obs.CandidateLinks) != int64(want.CandidateLinks) {
			t.Errorf("iteration %d: links %d != %d", i, got.Count(obs.CandidateLinks), want.CandidateLinks)
		}
		if got.Count(obs.GroupPairs) != int64(want.GroupPairs) {
			t.Errorf("iteration %d: group pairs %d != %d", i, got.Count(obs.GroupPairs), want.GroupPairs)
		}
		if got.Count(obs.GroupLinks) != int64(want.NewGroupLinks) {
			t.Errorf("iteration %d: group links %d != %d", i, got.Count(obs.GroupLinks), want.NewGroupLinks)
		}
		if got.Count(obs.RecordLinks) != int64(want.NewRecordLinks) {
			t.Errorf("iteration %d: record links %d != %d", i, got.Count(obs.RecordLinks), want.NewRecordLinks)
		}
		if got.Count(obs.BlockingPairs) < got.Count(obs.PairsCompared) {
			t.Errorf("iteration %d: raw blocking pairs %d below compared %d",
				i, got.Count(obs.BlockingPairs), got.Count(obs.PairsCompared))
		}
		if got.Count(obs.ClusterLabels) <= 0 {
			t.Errorf("iteration %d: no cluster labels recorded", i)
		}
	}
	for _, it := range res.Iterations {
		wantRecords += int64(it.NewRecordLinks)
	}
	if got := rep.Counters[obs.RecordLinks]; got != wantRecords {
		t.Errorf("total subgraph record links %d != %d", got, wantRecords)
	}
	if got := rep.Counters[obs.RemainderLinks]; got != int64(res.RemainderRecordLinks) {
		t.Errorf("remainder links %d != %d", got, res.RemainderRecordLinks)
	}
	if got, want := got64(rep, obs.RecordLinks)+got64(rep, obs.RemainderLinks), int64(len(res.RecordLinks)); got != want {
		t.Errorf("total record links %d != len(RecordLinks) %d", got, want)
	}
	for _, stage := range []string{"build_graphs", "prematch", "candidate_groups", "subgraph_match", "selection", "remainder"} {
		st, ok := rep.Stages[stage]
		if !ok || st.Calls == 0 {
			t.Errorf("stage %q missing from report", stage)
		}
	}
}

func got64(r *obs.Report, name string) int64 { return r.Counters[name] }

// TestObsPreMatchAgreement: the report's first-iteration compared/blocked
// counts must equal an independent PreMatch run at δ_high over the same
// inputs (the report is an accounting of the real work, not an estimate).
func TestObsPreMatchAgreement(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.03, 7), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	cfg.Obs = obs.NewStats(nil)
	if _, err := linkage.Link(old, new, cfg); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Obs.Report()
	if len(rep.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}

	pre, err := linkage.PreMatchOpts(context.Background(), old.Records(), new.Records(),
		linkage.PreMatchOptions{
			Sim: cfg.Sim.WithDelta(cfg.DeltaHigh), OldYear: old.Year, NewYear: new.Year,
			Strategies: cfg.Strategies, Workers: cfg.Workers,
		})
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Iterations[0]
	if got, want := first.Count(obs.PairsCompared), int64(pre.Compared); got != want {
		t.Errorf("first-iteration compared %d != independent PreMatch %d", got, want)
	}
	if got, want := first.Count(obs.BlockingPairs), int64(pre.Blocked); got != want {
		t.Errorf("first-iteration blocking pairs %d != independent PreMatch %d", got, want)
	}
	if pre.Blocked < pre.Compared {
		t.Errorf("raw blocked %d below deduped compared %d", pre.Blocked, pre.Compared)
	}
}

// TestObsNilConfigUnchanged: linking with and without a collector must
// produce identical mappings — observability is strictly passive.
func TestObsNilConfigUnchanged(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.02, 3), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := linkage.Link(old, new, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	cfg.Obs = obs.NewStats(nil)
	observed, err := linkage.Link(old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.RecordLinks) != len(observed.RecordLinks) || len(plain.GroupLinks) != len(observed.GroupLinks) {
		t.Fatalf("observability changed the result: %d/%d links vs %d/%d",
			len(plain.RecordLinks), len(plain.GroupLinks),
			len(observed.RecordLinks), len(observed.GroupLinks))
	}
	for i := range plain.RecordLinks {
		if plain.RecordLinks[i] != observed.RecordLinks[i] {
			t.Fatalf("record link %d differs: %+v vs %+v", i, plain.RecordLinks[i], observed.RecordLinks[i])
		}
	}
}

// TestObsCompiledCacheCounters: under the compiled engine the report must
// carry the similarity-memo counters, and the interned dictionaries must pay
// off — most attribute comparisons hit the memo because distinct value pairs
// are far fewer than record pairs. The naive engine must report none.
func TestObsCompiledCacheCounters(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.03, 7), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	cfg := linkage.DefaultConfig()
	cfg.Engine = linkage.EngineCompiled
	cfg.Obs = obs.NewStats(nil)
	if _, err := linkage.Link(old, new, cfg); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Obs.Report()
	hits, misses := rep.Counters[obs.SimCacheHits], rep.Counters[obs.SimCacheMisses]
	if hits <= 0 || misses <= 0 {
		t.Fatalf("compiled run recorded hits=%d misses=%d; want both positive", hits, misses)
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.5 {
		t.Errorf("memo hit rate %.3f below 0.5 (hits=%d misses=%d)", rate, hits, misses)
	}
	if _, ok := rep.Stages["compile"]; !ok {
		t.Error("compile stage missing from report")
	}

	naiveCfg := linkage.DefaultConfig()
	naiveCfg.Engine = linkage.EngineNaive
	naiveCfg.Obs = obs.NewStats(nil)
	if _, err := linkage.Link(old, new, naiveCfg); err != nil {
		t.Fatal(err)
	}
	naiveRep := naiveCfg.Obs.Report()
	for _, c := range []string{obs.SimCacheHits, obs.SimCacheMisses, obs.PrunedComparisons} {
		if got := naiveRep.Counters[c]; got != 0 {
			t.Errorf("naive run recorded %s=%d; want 0", c, got)
		}
	}
}

// TestIndexGeneratedCounter: the blocking index counts raw hits across
// concurrent queries (exercised under -race by the tier-1 gate).
func TestIndexGeneratedCounter(t *testing.T) {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.02, 5), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	ix := block.NewIndex(new.Records(), new.Year, block.DefaultStrategies())
	if ix.Generated() != 0 {
		t.Fatalf("fresh index reports %d generated pairs", ix.Generated())
	}
	distinct := 0
	var scratch block.Scratch
	for _, o := range old.Records() {
		distinct += len(ix.Candidates(o, old.Year, &scratch))
	}
	if ix.Generated() < int64(distinct) {
		t.Fatalf("raw generated %d below distinct %d", ix.Generated(), distinct)
	}
}
