package linkage

import (
	"container/heap"
)

// GroupLink is one correspondence in the group mapping M_G (household IDs).
type GroupLink struct {
	Old, New string
}

// RecordLink is one correspondence in the record mapping M_R, with the
// aggregated attribute similarity of the pair.
type RecordLink struct {
	Old, New string
	Sim      float64
}

// subgraphHeap orders subgraphs by descending g_sim; ties break on the
// household IDs so selection is deterministic.
type subgraphHeap []*Subgraph

func (h subgraphHeap) Len() int { return len(h) }
func (h subgraphHeap) Less(i, j int) bool {
	if h[i].GSim != h[j].GSim {
		return h[i].GSim > h[j].GSim
	}
	if h[i].OldGroup != h[j].OldGroup {
		return h[i].OldGroup < h[j].OldGroup
	}
	return h[i].NewGroup < h[j].NewGroup
}
func (h subgraphHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *subgraphHeap) Push(x any)   { *h = append(*h, x.(*Subgraph)) }
func (h *subgraphHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Accepted is one group link chosen by Algorithm 2 together with the
// record links extracted from its subgraph and the subgraph's scores.
type Accepted struct {
	Group   GroupLink
	Records []RecordLink
	GSim    float64
}

// SelectGroupLinksDetailed implements Algorithm 2: subgraphs are consumed
// in order of their aggregated similarity; a group pair is accepted only if
// none of its subgraph's records were already linked through another pair
// involving the same household, which both keeps the derived record mapping
// 1:1 and still permits N:M group mappings over disjoint subgroups.
func SelectGroupLinksDetailed(subs []*Subgraph) []Accepted {
	pq := make(subgraphHeap, 0, len(subs))
	for _, s := range subs {
		if s != nil && len(s.Vertices) > 0 {
			pq = append(pq, s)
		}
	}
	heap.Init(&pq)

	linkedOld := make(map[string]map[string]bool) // old household -> linked record IDs
	linkedNew := make(map[string]map[string]bool) // new household -> linked record IDs
	var out []Accepted
	for pq.Len() > 0 {
		s := heap.Pop(&pq).(*Subgraph)
		lo := linkedOld[s.OldGroup]
		ln := linkedNew[s.NewGroup]
		conflict := false
		for _, v := range s.Vertices {
			if lo[v.Old.ID] || ln[v.New.ID] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		acc := Accepted{
			Group: GroupLink{Old: s.OldGroup, New: s.NewGroup},
			GSim:  s.GSim,
		}
		if lo == nil {
			lo = make(map[string]bool)
			linkedOld[s.OldGroup] = lo
		}
		if ln == nil {
			ln = make(map[string]bool)
			linkedNew[s.NewGroup] = ln
		}
		for _, v := range s.Vertices {
			lo[v.Old.ID] = true
			ln[v.New.ID] = true
			acc.Records = append(acc.Records, RecordLink{Old: v.Old.ID, New: v.New.ID, Sim: v.Sim})
		}
		out = append(out, acc)
	}
	return out
}

// SelectGroupLinks returns the accepted group links and the record links
// extracted from the accepted subgraphs (extractRecordMapping of
// Algorithm 1).
func SelectGroupLinks(subs []*Subgraph) ([]GroupLink, []RecordLink) {
	var groups []GroupLink
	var records []RecordLink
	for _, acc := range SelectGroupLinksDetailed(subs) {
		groups = append(groups, acc.Group)
		records = append(records, acc.Records...)
	}
	return groups, records
}
