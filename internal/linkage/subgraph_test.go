package linkage

import (
	"math"
	"testing"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/hgraph"
	"censuslink/internal/paperexample"
)

func paperMatchConfig() MatchConfig {
	return MatchConfig{AgeTolerance: 3, YearGap: 10, Alpha: 0.2, Beta: 0.7}
}

// paperSubgraphs builds the enriched graphs and pre-matching of the running
// example and returns a helper to match any group pair.
func paperSubgraphs(t *testing.T) (func(oldHH, newHH string) *Subgraph, *PreMatchResult) {
	t.Helper()
	old, new := paperexample.Old(), paperexample.New()
	oldGraphs := hgraph.BuildAll(old)
	newGraphs := hgraph.BuildAll(new)
	pre := figure3PreMatch(1)
	f := NameOnly(1.0)
	cfg := paperMatchConfig()
	return func(oldHH, newHH string) *Subgraph {
		return MatchGroups(oldGraphs[oldHH], newGraphs[newHH], pre, f, cfg)
	}, pre
}

// TestSubgraphPaperEq8A reproduces the paper's hand-computed scores for the
// group pair (g^a_1871, g^a_1881): avg_sim = 1, e_sim = 2*3/13 ≈ 0.46,
// unique = 2*3/9 ≈ 0.66.
func TestSubgraphPaperEq8A(t *testing.T) {
	match, _ := paperSubgraphs(t)
	s := match("1871_a", "1881_a")
	if s == nil {
		t.Fatal("subgraph (a, a) not found")
	}
	if len(s.Vertices) != 3 {
		t.Fatalf("vertices = %d, want 3 (labels A, B, C)", len(s.Vertices))
	}
	if len(s.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(s.Edges))
	}
	if math.Abs(s.AvgSim-1) > 1e-9 {
		t.Errorf("avg_sim = %v, want 1", s.AvgSim)
	}
	if math.Abs(s.ESim-2.0*3.0/13.0) > 1e-9 {
		t.Errorf("e_sim = %v, want %v", s.ESim, 2.0*3.0/13.0)
	}
	if math.Abs(s.Unique-2.0/3.0) > 1e-9 {
		t.Errorf("unique = %v, want 2/3", s.Unique)
	}
	wantG := 0.2*1 + 0.7*(6.0/13.0) + 0.1*(2.0/3.0)
	if math.Abs(s.GSim-wantG) > 1e-9 {
		t.Errorf("g_sim = %v, want %v", s.GSim, wantG)
	}
}

// TestSubgraphPaperEq8D reproduces the scores for the ambiguous pair
// (g^a_1871, g^d_1881): the William vertex loses both of its edges (Fig. 4)
// and is dropped, leaving avg_sim = 1, e_sim = 2*1/13 ≈ 0.15,
// unique = 2*2/6 ≈ 0.66.
func TestSubgraphPaperEq8D(t *testing.T) {
	match, _ := paperSubgraphs(t)
	s := match("1871_a", "1881_d")
	if s == nil {
		t.Fatal("subgraph (a, d) not found")
	}
	if len(s.Vertices) != 2 {
		t.Fatalf("vertices = %d, want 2 after Fig. 4 reduction", len(s.Vertices))
	}
	if len(s.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(s.Edges))
	}
	if math.Abs(s.AvgSim-1) > 1e-9 {
		t.Errorf("avg_sim = %v, want 1", s.AvgSim)
	}
	if math.Abs(s.ESim-2.0/13.0) > 1e-9 {
		t.Errorf("e_sim = %v, want %v", s.ESim, 2.0/13.0)
	}
	if math.Abs(s.Unique-2.0/3.0) > 1e-9 {
		t.Errorf("unique = %v, want 2/3", s.Unique)
	}
	// The paper concludes g_sim(a,a) > g_sim(a,d) because of edge similarity.
	a := match("1871_a", "1881_a")
	if a.GSim <= s.GSim {
		t.Errorf("g_sim(a,a)=%v should exceed g_sim(a,d)=%v", a.GSim, s.GSim)
	}
}

// TestSubgraphSmithPair: the Smith household pair shares two members with
// one fully matching spouse edge and unique labels.
func TestSubgraphSmithPair(t *testing.T) {
	match, _ := paperSubgraphs(t)
	s := match("1871_b", "1881_b")
	if s == nil {
		t.Fatal("subgraph (b, b) not found")
	}
	if len(s.Vertices) != 2 || len(s.Edges) != 1 {
		t.Fatalf("subgraph shape: %d vertices, %d edges", len(s.Vertices), len(s.Edges))
	}
	if math.Abs(s.Unique-1) > 1e-9 {
		t.Errorf("unique = %v, want 1 (labels D, E are unambiguous)", s.Unique)
	}
	// e_sim = 2*1/(3+1).
	if math.Abs(s.ESim-0.5) > 1e-9 {
		t.Errorf("e_sim = %v, want 0.5", s.ESim)
	}
}

// TestSubgraphSingleSharedMember: a single shared record (Steve moving to
// household c) yields no subgraph; such links are left to Sim_func_rem.
func TestSubgraphSingleSharedMember(t *testing.T) {
	match, _ := paperSubgraphs(t)
	if s := match("1871_b", "1881_c"); s != nil {
		t.Errorf("single-member overlap should give no subgraph, got %+v", s)
	}
}

// TestSubgraphAgeConsistencyFilter: a vertex pair whose ages do not fit the
// census interval is rejected even when the labels agree.
func TestSubgraphAgeConsistencyFilter(t *testing.T) {
	old := census.NewDataset(1871)
	new := census.NewDataset(1881)
	for _, r := range []*census.Record{
		{ID: "o1", HouseholdID: "oh", FirstName: "john", Surname: "lord", Sex: census.SexMale, Age: 30, Role: census.RoleHead},
		{ID: "o2", HouseholdID: "oh", FirstName: "ann", Surname: "lord", Sex: census.SexFemale, Age: 28, Role: census.RoleWife},
	} {
		if err := old.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []*census.Record{
		// Same names, but ages did not advance by ~10 years: a different
		// generation (e.g. son with the father's name).
		{ID: "n1", HouseholdID: "nh", FirstName: "john", Surname: "lord", Sex: census.SexMale, Age: 31, Role: census.RoleHead},
		{ID: "n2", HouseholdID: "nh", FirstName: "ann", Surname: "lord", Sex: census.SexFemale, Age: 29, Role: census.RoleWife},
	} {
		if err := new.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	pre := preMatchT(old.Records(), old.Year, new.Records(), new.Year,
		NameOnly(1.0), block.DefaultStrategies(), 1)
	s := MatchGroups(hgraph.Build(old, old.Household("oh")),
		hgraph.Build(new, new.Household("nh")), pre, NameOnly(1.0), paperMatchConfig())
	if s != nil {
		t.Errorf("age-inconsistent pair matched: %+v", s)
	}
}

// TestSubgraphDuplicateNamesOneToOne: two same-named children must map 1:1,
// guided by edge support.
func TestSubgraphDuplicateNamesOneToOne(t *testing.T) {
	old := census.NewDataset(1871)
	new := census.NewDataset(1881)
	for _, r := range []*census.Record{
		{ID: "o1", HouseholdID: "oh", FirstName: "john", Surname: "holt", Sex: census.SexMale, Age: 40, Role: census.RoleHead},
		{ID: "o2", HouseholdID: "oh", FirstName: "thomas", Surname: "holt", Sex: census.SexMale, Age: 15, Role: census.RoleSon},
		{ID: "o3", HouseholdID: "oh", FirstName: "thomas", Surname: "holt", Sex: census.SexMale, Age: 2, Role: census.RoleSon},
	} {
		if err := old.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []*census.Record{
		{ID: "n1", HouseholdID: "nh", FirstName: "john", Surname: "holt", Sex: census.SexMale, Age: 50, Role: census.RoleHead},
		{ID: "n2", HouseholdID: "nh", FirstName: "thomas", Surname: "holt", Sex: census.SexMale, Age: 25, Role: census.RoleSon},
		{ID: "n3", HouseholdID: "nh", FirstName: "thomas", Surname: "holt", Sex: census.SexMale, Age: 12, Role: census.RoleSon},
	} {
		if err := new.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	pre := preMatchT(old.Records(), old.Year, new.Records(), new.Year,
		NameOnly(1.0), block.DefaultStrategies(), 1)
	s := MatchGroups(hgraph.Build(old, old.Household("oh")),
		hgraph.Build(new, new.Household("nh")), pre, NameOnly(1.0), paperMatchConfig())
	if s == nil {
		t.Fatal("no subgraph for duplicate-name household")
	}
	if len(s.Vertices) != 3 {
		t.Fatalf("vertices = %d, want 3", len(s.Vertices))
	}
	got := map[string]string{}
	for _, v := range s.Vertices {
		got[v.Old.ID] = v.New.ID
	}
	want := map[string]string{"o1": "n1", "o2": "n2", "o3": "n3"}
	for o, n := range want {
		if got[o] != n {
			t.Errorf("vertex %s -> %s, want %s (age structure should disambiguate)", o, got[o], n)
		}
	}
}

func TestCandidateGroupPairs(t *testing.T) {
	old, new := paperexample.Old(), paperexample.New()
	pre := figure3PreMatch(1)
	pairs := CandidateGroupPairs(pre, old, new)
	want := map[GroupPair]bool{
		{Old: "1871_a", New: "1881_a"}: true,
		{Old: "1871_a", New: "1881_d"}: true,
		{Old: "1871_b", New: "1881_b"}: true,
		{Old: "1871_b", New: "1881_c"}: true, // via Steve
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected group pair %v", p)
		}
	}
}

func TestRpSim(t *testing.T) {
	cfg := paperMatchConfig()
	if rp, ok := cfg.rpSim(5, 5); !ok || rp != 1 {
		t.Errorf("exact agreement: %v/%v", rp, ok)
	}
	if rp, ok := cfg.rpSim(5, 7); !ok || math.Abs(rp-0.5) > 1e-9 {
		t.Errorf("deviation 2: %v/%v, want 0.5", rp, ok)
	}
	if _, ok := cfg.rpSim(5, 9); ok {
		t.Error("deviation beyond tolerance accepted")
	}
	if _, ok := cfg.rpSim(hgraph.AgeDiffMissing, 5); ok {
		t.Error("missing age difference accepted")
	}
	// Sign matters: a reversed difference is a different structure.
	if _, ok := cfg.rpSim(5, -5); ok {
		t.Error("sign-flipped difference accepted")
	}
}

func TestAgeConsistent(t *testing.T) {
	cfg := paperMatchConfig()
	mk := func(age int) *census.Record { return &census.Record{Age: age} }
	if !cfg.ageConsistent(mk(30), mk(40)) {
		t.Error("exact ten-year gap rejected")
	}
	if !cfg.ageConsistent(mk(30), mk(43)) {
		t.Error("gap within tolerance rejected")
	}
	if cfg.ageConsistent(mk(30), mk(44)) {
		t.Error("gap outside tolerance accepted")
	}
	if !cfg.ageConsistent(mk(census.AgeMissing), mk(44)) {
		t.Error("missing age should pass")
	}
}
