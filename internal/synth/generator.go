package synth

import (
	"fmt"

	"censuslink/internal/census"
)

// Generate simulates the district over all configured census years and
// returns the recorded series. The emitted datasets carry ground-truth
// person identifiers in Record.TruthID.
func Generate(cfg Config) (*census.Series, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Districts > 1 {
		return generateDistricts(cfg)
	}
	pop := newPopulation(&cfg, cfg.Years[0])
	datasets := make([]*census.Dataset, 0, len(cfg.Years))
	for i, year := range cfg.Years {
		if i > 0 {
			pop.advance(cfg.Years[i-1], year)
		}
		d, err := pop.record(year)
		if err != nil {
			return nil, fmt.Errorf("synth: recording %d: %w", year, err)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("synth: %d: %w", year, err)
		}
		datasets = append(datasets, d)
	}
	return census.NewSeries(datasets...), nil
}

// GeneratePair is a convenience wrapper generating only two successive
// censuses (by simulating from the first configured year up to the second).
func GeneratePair(cfg Config, oldYear, newYear int) (*census.Dataset, *census.Dataset, error) {
	cfg.Years = yearsUpTo(cfg.Years, newYear)
	series, err := Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	old := series.Dataset(oldYear)
	new := series.Dataset(newYear)
	if old == nil || new == nil {
		return nil, nil, fmt.Errorf("synth: years %d/%d not in configured series", oldYear, newYear)
	}
	return old, new, nil
}

// yearsUpTo truncates a year list after the given year (defaulting to
// PaperYears when empty).
func yearsUpTo(years []int, last int) []int {
	if len(years) == 0 {
		years = PaperYears
	}
	var out []int
	for _, y := range years {
		out = append(out, y)
		if y >= last {
			break
		}
	}
	return out
}
