package synth

import (
	"fmt"
	"strconv"
	"sync"

	"censuslink/internal/census"
)

// districtSeedMix spreads the per-district seeds across the RNG state space
// (the 64-bit golden ratio). District 0 keeps the configured seed, so the
// first district of a multi-district run is the single-district series.
const districtSeedMix = int64(-7046029254386353131) // 0x9e3779b97f4a7c15

// generateDistricts simulates cfg.Districts independent districts in
// parallel and merges them year by year. Identifiers are prefixed with the
// district ("d3_1871_17"), including the ground-truth person IDs, so
// records of different districts can never be confused — nor linked, which
// is faithful: nobody migrates between districts.
func generateDistricts(cfg Config) (*census.Series, error) {
	type out struct {
		series *census.Series
		err    error
	}
	outs := make([]out, cfg.Districts)
	var wg sync.WaitGroup
	for d := 0; d < cfg.Districts; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			dc := cfg
			dc.Districts = 0
			dc.Seed = cfg.Seed ^ (int64(d) * districtSeedMix)
			dc.Years = append([]int(nil), cfg.Years...)
			outs[d].series, outs[d].err = Generate(dc)
		}(d)
	}
	wg.Wait()
	for d := range outs {
		if outs[d].err != nil {
			return nil, fmt.Errorf("synth: district %d: %w", d, outs[d].err)
		}
	}

	merged := make([]*census.Dataset, 0, len(cfg.Years))
	for _, year := range cfg.Years {
		m := census.NewDataset(year)
		for d := range outs {
			prefix := "d" + strconv.Itoa(d) + "_"
			src := outs[d].series.Dataset(year)
			// Households first, so the merged dataset keeps the per-district
			// household order and addresses; AddRecord then fills the member
			// lists in schedule order.
			for _, h := range src.Households() {
				if err := m.AddHousehold(&census.Household{
					ID: prefix + h.ID, Address: h.Address,
				}); err != nil {
					return nil, fmt.Errorf("synth: merging %d: %w", year, err)
				}
			}
			for _, r := range src.Records() {
				c := *r
				c.ID = prefix + r.ID
				c.HouseholdID = prefix + r.HouseholdID
				if r.TruthID != "" {
					c.TruthID = prefix + r.TruthID
				}
				if err := m.AddRecord(&c); err != nil {
					return nil, fmt.Errorf("synth: merging %d: %w", year, err)
				}
			}
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("synth: merged %d: %w", year, err)
		}
		merged = append(merged, m)
	}
	return census.NewSeries(merged...), nil
}
