package synth

import (
	"testing"

	"censuslink/internal/census"
)

// buildTestPopulation wires a three-generation household by hand:
// grandmother, head, wife, son, daughter, grandson (son's child), the
// head's brother, a nephew (brother's son living in the household), and an
// unrelated servant and lodger.
func buildTestPopulation() (*population, *household, map[string]*person) {
	cfg := DefaultConfig()
	if err := cfg.normalize(); err != nil {
		panic(err)
	}
	p := &population{
		cfg:        &cfg,
		persons:    make(map[int]*person),
		households: make(map[int]*household),
		nextPerson: 1,
		nextHH:     1,
	}
	ppl := map[string]*person{}
	add := func(name string, per *person) *person {
		p.addPerson(per)
		ppl[name] = per
		return per
	}
	grandma := add("grandma", &person{sex: census.SexFemale, birthYear: 1800})
	head := add("head", &person{sex: census.SexMale, birthYear: 1825, mother: grandma.id})
	wife := add("wife", &person{sex: census.SexFemale, birthYear: 1827})
	head.spouse, wife.spouse = wife.id, head.id
	son := add("son", &person{sex: census.SexMale, birthYear: 1848, mother: wife.id, father: head.id})
	add("daughter", &person{sex: census.SexFemale, birthYear: 1850, mother: wife.id, father: head.id})
	add("grandson", &person{sex: census.SexMale, birthYear: 1869, father: son.id})
	brother := add("brother", &person{sex: census.SexMale, birthYear: 1828, mother: grandma.id})
	add("nephew", &person{sex: census.SexMale, birthYear: 1852, father: brother.id})
	add("servant", &person{sex: census.SexFemale, birthYear: 1851, occupation: "domestic servant"})
	add("lodger", &person{sex: census.SexMale, birthYear: 1840})

	hh := &household{id: p.nextHH, head: head.id, address: "1 test street"}
	p.nextHH++
	p.households[hh.id] = hh
	for _, name := range []string{"head", "wife", "son", "daughter", "grandson",
		"grandma", "brother", "nephew", "servant", "lodger"} {
		p.addToHousehold(ppl[name], hh)
	}
	return p, hh, ppl
}

func TestRoleDerivation(t *testing.T) {
	p, hh, ppl := buildTestPopulation()
	want := map[string]census.Role{
		"head":     census.RoleHead,
		"wife":     census.RoleWife,
		"son":      census.RoleSon,
		"daughter": census.RoleDaughter,
		"grandson": census.RoleGrandson,
		"grandma":  census.RoleMother,
		"brother":  census.RoleBrother,
		"nephew":   census.RoleNephew,
		"servant":  census.RoleServant,
	}
	for name, role := range want {
		if got := p.roleOf(ppl[name], hh); got != role {
			t.Errorf("roleOf(%s) = %v, want %v", name, got, role)
		}
	}
	// The unrelated lodger maps to boarder or lodger depending on ID parity.
	if got := p.roleOf(ppl["lodger"], hh); got != census.RoleBoarder && got != census.RoleLodger {
		t.Errorf("roleOf(lodger) = %v", got)
	}
}

func TestRoleDerivationFemaleHead(t *testing.T) {
	p, hh, ppl := buildTestPopulation()
	// The head dies; the wife takes over.
	p.kill(ppl["head"])
	hh.head = ppl["wife"].id
	if got := p.roleOf(ppl["wife"], hh); got != census.RoleHead {
		t.Errorf("widow should be head, got %v", got)
	}
	// Children remain children of the (new) head.
	if got := p.roleOf(ppl["son"], hh); got != census.RoleSon {
		t.Errorf("son of widow = %v", got)
	}
	// The grandson is the child of the head's child.
	if got := p.roleOf(ppl["grandson"], hh); got != census.RoleGrandson {
		t.Errorf("grandson of widow = %v", got)
	}
}

func TestRoleDerivationHusband(t *testing.T) {
	p, hh, ppl := buildTestPopulation()
	hh.head = ppl["wife"].id
	if got := p.roleOf(ppl["head"], hh); got != census.RoleHusband {
		t.Errorf("male spouse of female head = %v, want husband", got)
	}
}

func TestGeneratedRolesAreConsistent(t *testing.T) {
	s := sharedSeries(t)
	for _, d := range s.Datasets {
		for _, h := range d.Households() {
			members := d.Members(h)
			head := d.Head(h)
			for _, m := range members {
				switch m.Role {
				case census.RoleWife, census.RoleHusband:
					// A spouse's sex must differ from the head's when both
					// are recorded.
					if head.Sex != census.SexUnknown && m.Sex != census.SexUnknown && m.Sex == head.Sex {
						t.Errorf("%d/%s: spouse %s has same sex as head", d.Year, h.ID, m.ID)
					}
				case census.RoleSon, census.RoleGrandson, census.RoleBrother,
					census.RoleFather, census.RoleNephew:
					if m.Sex == census.SexFemale {
						t.Errorf("%d/%s: male role %s on female record %s", d.Year, h.ID, m.Role, m.ID)
					}
				case census.RoleDaughter, census.RoleGranddaughter, census.RoleSister,
					census.RoleMother, census.RoleNiece:
					if m.Sex == census.SexMale {
						t.Errorf("%d/%s: female role %s on male record %s", d.Year, h.ID, m.Role, m.ID)
					}
				}
			}
		}
	}
}
