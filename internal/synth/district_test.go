package synth

import (
	"strings"
	"testing"
)

// TestDistrictsLegacyIdentity: Districts 0 and 1 must generate exactly the
// single legacy district, and district 0 of a multi-district run must be
// that same district under the "d0_" prefix.
func TestDistrictsLegacyIdentity(t *testing.T) {
	base, err := Generate(TestConfig(0.02, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{0, 1} {
		cfg := TestConfig(0.02, 5)
		cfg.Districts = d
		got, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range got.Datasets {
			if ds.ContentHash() != base.Dataset(ds.Year).ContentHash() {
				t.Errorf("districts=%d: %d differs from the legacy series", d, ds.Year)
			}
		}
	}

	cfg := TestConfig(0.02, 5)
	cfg.Districts = 3
	multi, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range base.Datasets {
		m := multi.Dataset(ds.Year)
		for _, r := range ds.Records() {
			mr := m.Record("d0_" + r.ID)
			if mr == nil {
				t.Fatalf("%d: record d0_%s missing from the merged series", ds.Year, r.ID)
			}
			if mr.FirstName != r.FirstName || mr.Age != r.Age ||
				mr.HouseholdID != "d0_"+r.HouseholdID || mr.TruthID != "d0_"+r.TruthID {
				t.Fatalf("%d: record d0_%s diverged from the single-district run", ds.Year, r.ID)
			}
		}
	}
}

// TestDistrictsDisjointAndDeterministic: prefixed IDs keep districts
// disjoint, the merge is deterministic, and the population scales with the
// district count.
func TestDistrictsDisjointAndDeterministic(t *testing.T) {
	gen := func() map[int]string {
		cfg := TestConfig(0.02, 9)
		cfg.Districts = 4
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hashes := map[int]string{}
		for _, ds := range s.Datasets {
			hashes[ds.Year] = ds.ContentHash()
		}
		return hashes
	}
	if a, b := gen(), gen(); len(a) == 0 {
		t.Fatal("no datasets generated")
	} else {
		for y, h := range a {
			if b[y] != h {
				t.Errorf("%d: multi-district generation not deterministic", y)
			}
		}
	}

	cfg := TestConfig(0.02, 9)
	cfg.Districts = 4
	multi, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Generate(TestConfig(0.02, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range multi.Datasets {
		seen := map[int]int{}
		for _, r := range ds.Records() {
			if !strings.HasPrefix(r.ID, "d") {
				t.Fatalf("%d: record %s lacks a district prefix", ds.Year, r.ID)
			}
			d, ok := parseDistrict(r.ID)
			if !ok {
				t.Fatalf("%d: cannot parse district of %s", ds.Year, r.ID)
			}
			seen[d]++
		}
		if len(seen) != 4 {
			t.Errorf("%d: records from %d districts, want 4", ds.Year, len(seen))
		}
		// Linear scaling: 4 districts carry at least 3x the single district
		// (districts evolve independently, so sizes vary a little).
		if ds.NumRecords() < 3*single.Dataset(ds.Year).NumRecords() {
			t.Errorf("%d: %d records for 4 districts vs %d for one",
				ds.Year, ds.NumRecords(), single.Dataset(ds.Year).NumRecords())
		}
	}

	cfg.Districts = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative district count accepted")
	}
}

// parseDistrict extracts the district index from a "d<N>_..." identifier.
func parseDistrict(id string) (int, bool) {
	i := strings.IndexByte(id, '_')
	if i < 2 || id[0] != 'd' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:i] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
