package synth

import (
	"censuslink/internal/census"
)

// Demography summarises the population structure of one census dataset,
// used to sanity-check the generator against 19th-century expectations.
type Demography struct {
	Year int
	// AgePyramid counts records per 10-year age band (index 0 = ages 0-9);
	// records with missing age are excluded.
	AgePyramid []int
	// SexRatio is males per female (records with known sex).
	SexRatio float64
	// HouseholdSizes counts households by member count (index = size,
	// capped at the last bucket).
	HouseholdSizes []int
	// ChildShare is the fraction of records aged under 15.
	ChildShare float64
	// MarriedShare is the fraction of adults (15+) recorded as head with a
	// spouse present, wife or husband.
	MarriedShare float64
}

// Demographics computes the summary for a dataset.
func Demographics(d *census.Dataset) Demography {
	const maxBand = 9    // 0-9 ... 80-89, 90+
	const maxHHSize = 12 // 1..11, 12+
	dem := Demography{
		Year:           d.Year,
		AgePyramid:     make([]int, maxBand+1),
		HouseholdSizes: make([]int, maxHHSize+1),
	}
	males, females := 0, 0
	children, withAge := 0, 0
	adults, married := 0, 0
	spouses := make(map[string]bool) // household IDs with a spouse present
	for _, r := range d.Records() {
		if r.Role == census.RoleWife || r.Role == census.RoleHusband {
			spouses[r.HouseholdID] = true
		}
	}
	for _, r := range d.Records() {
		switch r.Sex {
		case census.SexMale:
			males++
		case census.SexFemale:
			females++
		}
		if r.Age != census.AgeMissing {
			withAge++
			band := r.Age / 10
			if band > maxBand {
				band = maxBand
			}
			if band >= 0 {
				dem.AgePyramid[band]++
			}
			if r.Age < 15 {
				children++
			} else {
				adults++
				if r.Role == census.RoleWife || r.Role == census.RoleHusband ||
					(r.Role == census.RoleHead && spouses[r.HouseholdID]) {
					married++
				}
			}
		}
	}
	if females > 0 {
		dem.SexRatio = float64(males) / float64(females)
	}
	if withAge > 0 {
		dem.ChildShare = float64(children) / float64(withAge)
	}
	if adults > 0 {
		dem.MarriedShare = float64(married) / float64(adults)
	}
	for _, h := range d.Households() {
		size := h.Size()
		if size > maxHHSize {
			size = maxHHSize
		}
		dem.HouseholdSizes[size]++
	}
	return dem
}
