package synth

import (
	"math/rand"
	"strings"

	"censuslink/internal/census"
)

// occupationSynonyms lists alternative recordings of the same occupation,
// used by the corruption model.
var occupationSynonyms = map[string][]string{
	"cotton weaver":     {"weaver", "weaver of cotton", "cotton weaver (power loom)"},
	"cotton spinner":    {"spinner", "spinner of cotton"},
	"power loom weaver": {"weaver", "loom weaver"},
	"labourer":          {"general labourer", "lab"},
	"domestic servant":  {"servant", "general servant"},
	"scholar":           {"at school"},
	"winder":            {"cotton winder"},
	"housekeeper":       {"house keeper"},
	"farmer":            {"farmer of 12 acres"},
	"coal miner":        {"collier"},
}

// roleOf derives the head-relative census role of a member from the family
// pointers of the simulated population.
func (p *population) roleOf(per *person, hh *household) census.Role {
	head := p.persons[hh.head]
	if head == nil || per.id == head.id {
		return census.RoleHead
	}
	if per.id == head.spouse {
		if per.sex == census.SexFemale {
			return census.RoleWife
		}
		return census.RoleHusband
	}
	spouse := p.persons[head.spouse]
	isChildOf := func(child *person, parent *person) bool {
		return parent != nil && (child.mother == parent.id || child.father == parent.id)
	}
	if isChildOf(per, head) || isChildOf(per, spouse) {
		if per.sex == census.SexFemale {
			return census.RoleDaughter
		}
		return census.RoleSon
	}
	if isChildOf(head, per) || (spouse != nil && isChildOf(spouse, per)) {
		if per.sex == census.SexFemale {
			return census.RoleMother
		}
		return census.RoleFather
	}
	// Sibling: shares a parent with the head.
	if (per.mother != 0 && per.mother == head.mother) || (per.father != 0 && per.father == head.father) {
		if per.sex == census.SexFemale {
			return census.RoleSister
		}
		return census.RoleBrother
	}
	// Grandchild: child of a child of the head (or of the head's spouse).
	if mom := p.persons[per.mother]; mom != nil && (isChildOf(mom, head) || isChildOf(mom, spouse)) {
		if per.sex == census.SexFemale {
			return census.RoleGranddaughter
		}
		return census.RoleGrandson
	}
	if dad := p.persons[per.father]; dad != nil && (isChildOf(dad, head) || isChildOf(dad, spouse)) {
		if per.sex == census.SexFemale {
			return census.RoleGranddaughter
		}
		return census.RoleGrandson
	}
	// Nephew/niece: child of a sibling of the head.
	for _, parentID := range []int{per.mother, per.father} {
		parent := p.persons[parentID]
		if parent == nil {
			continue
		}
		if (parent.mother != 0 && parent.mother == head.mother) ||
			(parent.father != 0 && parent.father == head.father) {
			if per.sex == census.SexFemale {
				return census.RoleNiece
			}
			return census.RoleNephew
		}
	}
	if per.occupation == "domestic servant" {
		return census.RoleServant
	}
	if per.id%2 == 0 {
		return census.RoleBoarder
	}
	return census.RoleLodger
}

// record emits the census dataset of one year, applying the corruption
// model. A dedicated RNG (derived from the config seed and the year) keeps
// recording noise independent of the demographic randomness.
func (p *population) record(year int) (*census.Dataset, error) {
	rng := rand.New(rand.NewSource(p.cfg.Seed*1_000_003 + int64(year)))
	c := p.cfg.Corruption
	d := census.NewDataset(year)
	recNo := 0
	for _, hid := range p.householdIDs() {
		hh := p.households[hid]
		if hh == nil || len(hh.members) == 0 {
			continue
		}
		hhID := itoa(year) + "_h" + itoa(hh.id)
		if err := d.AddHousehold(&census.Household{ID: hhID, Address: hh.address}); err != nil {
			return nil, err
		}
		// Head first, then remaining members in insertion order.
		members := append([]int(nil), hh.members...)
		for i, mid := range members {
			if mid == hh.head && i != 0 {
				members[0], members[i] = members[i], members[0]
				break
			}
		}
		for _, mid := range members {
			per := p.persons[mid]
			if per == nil {
				continue
			}
			recNo++
			rec := &census.Record{
				ID:          itoa(year) + "_" + itoa(recNo),
				HouseholdID: hhID,
				TruthID:     "p" + itoa(per.id),
				Role:        p.roleOf(per, hh),
			}
			p.fillCorrupted(rec, per, hh, year, rng, c)
			if err := d.AddRecord(rec); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// fillCorrupted writes the recorded (possibly corrupted) attribute values.
func (p *population) fillCorrupted(rec *census.Record, per *person, hh *household,
	year int, rng *rand.Rand, c Corruption) {
	roll := func(prob float64) bool { return rng.Float64() < prob }

	// First name: nickname, typo or missing.
	fn := per.firstName
	if vars, ok := nicknames[fn]; ok && roll(c.Nickname) {
		fn = vars[rng.Intn(len(vars))]
	}
	if roll(c.FirstNameTypo) {
		fn = typo(fn, rng)
	}
	if roll(c.MissingFirstName) {
		fn = ""
	}
	rec.FirstName = fn

	// Surname: typo or missing.
	sn := per.surname
	if roll(c.SurnameTypo) {
		sn = typo(sn, rng)
	}
	if roll(c.MissingSurname) {
		sn = ""
	}
	rec.Surname = sn

	// Sex.
	rec.Sex = per.sex
	if roll(c.MissingSex) {
		rec.Sex = census.SexUnknown
	}

	// Age: true age with occasional misstatement.
	age := year - per.birthYear
	switch {
	case roll(c.AgeOffByOne):
		if rng.Intn(2) == 0 {
			age++
		} else if age > 0 {
			age--
		}
	case roll(c.AgeOffByTwo):
		if rng.Intn(2) == 0 {
			age += 2
		} else if age > 1 {
			age -= 2
		}
	case age >= 25 && roll(c.RoundToFive):
		age = ((age + 2) / 5) * 5
	}
	if roll(c.MissingAge) {
		age = census.AgeMissing
	}
	rec.Age = age

	// Address: full, without house number, or missing.
	addr := hh.address
	if roll(c.AddressVariant) {
		if i := strings.IndexByte(addr, ' '); i > 0 {
			addr = addr[i+1:]
		}
	}
	if roll(c.MissingAddress) {
		addr = ""
	}
	rec.Address = addr

	// Birthplace: stable, but sometimes recorded only as the county or
	// left blank.
	bp := per.birthplace
	if roll(c.BirthplaceVariant) {
		bp = "lancashire"
	}
	if roll(c.MissingBirthplace) {
		bp = ""
	}
	rec.Birthplace = bp

	// Occupation: synonym or missing (children under 10 have none anyway).
	occ := per.occupation
	if vars, ok := occupationSynonyms[occ]; ok && roll(c.OccupationVariant) {
		occ = vars[rng.Intn(len(vars))]
	}
	if roll(c.MissingOccupation) {
		occ = ""
	}
	rec.Occupation = occ
}

// typo applies one random character edit: substitution, deletion, insertion
// or transposition of adjacent characters.
func typo(s string, rng *rand.Rand) string {
	if len(s) < 2 {
		return s
	}
	b := []byte(s)
	switch rng.Intn(4) {
	case 0: // substitution
		i := rng.Intn(len(b))
		b[i] = byte('a' + rng.Intn(26))
		return string(b)
	case 1: // deletion
		i := rng.Intn(len(b))
		return string(append(b[:i:i], b[i+1:]...))
	case 2: // insertion
		i := rng.Intn(len(b) + 1)
		out := make([]byte, 0, len(b)+1)
		out = append(out, b[:i]...)
		out = append(out, byte('a'+rng.Intn(26)))
		out = append(out, b[i:]...)
		return string(out)
	default: // transposition
		i := rng.Intn(len(b) - 1)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	}
}
