//go:build synthchecks

package synth

// Building with -tags synthchecks turns the per-step population consistency
// checks on in every binary, not just under go test.
func init() { debugChecks = true }
