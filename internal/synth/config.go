package synth

import "fmt"

// PaperHouseholdTargets are the household counts of the six Rawtenstall
// censuses (Table 1 of the paper); the generator calibrates its immigration
// volume to track them (scaled by Config.Scale).
var PaperHouseholdTargets = map[int]int{
	1851: 3298, 1861: 4570, 1871: 5576, 1881: 6025, 1891: 6378, 1901: 6842,
}

// PaperYears are the six census years of the paper's evaluation.
var PaperYears = []int{1851, 1861, 1871, 1881, 1891, 1901}

// Rates bundles the demographic probabilities of one simulated decade.
// All probabilities are per decade unless stated otherwise.
type Rates struct {
	// MortalityChild etc. are death probabilities per decade by age band
	// (0-9, 10-39, 40-59, 60-74, 75+ at the end of the decade).
	MortalityChild  float64
	MortalityAdult  float64
	MortalityMiddle float64
	MortalityOld    float64
	MortalityAged   float64

	// Marriage is the probability that an eligible unmarried adult marries
	// within the decade.
	Marriage float64
	// MarriageJoinParents is the probability a new couple moves into the
	// husband's parents' household instead of founding a new one.
	MarriageJoinParents float64

	// BirthsPerDecade is the expected number of children born to a married
	// fertile couple per decade.
	BirthsPerDecade float64
	// NamedAfterParent is the probability a child receives the first name
	// of the same-sex parent (the "John Smith junior" ambiguity).
	NamedAfterParent float64

	// HouseholdEmigration is the probability that an entire household
	// leaves the district during a decade.
	HouseholdEmigration float64
	// AddressMove is the probability a household changes address.
	AddressMove float64
	// Renumber is the probability that a household's house number is
	// re-drawn between censuses without a move (street re-enumeration was
	// pervasive in 19th-century districts).
	Renumber float64
	// OccupationChange is the probability an adult's occupation changes.
	OccupationChange float64

	// Split is the probability that a large household (6+ members) sheds a
	// subfamily of at least two members into a new household.
	Split float64
	// WidowMerge is the probability that a small widowed household merges
	// into another household.
	WidowMerge float64
	// LodgerTurnover is the probability that a lodger/servant leaves their
	// household for another one.
	LodgerTurnover float64
}

// DefaultRates returns rates calibrated to 19th-century Lancashire
// demographics and the household-dynamics volumes of the paper's Fig. 6.
func DefaultRates() Rates {
	return Rates{
		MortalityChild:      0.08,
		MortalityAdult:      0.08,
		MortalityMiddle:     0.20,
		MortalityOld:        0.45,
		MortalityAged:       0.80,
		Marriage:            0.45,
		MarriageJoinParents: 0.12,
		BirthsPerDecade:     3.0,
		NamedAfterParent:    0.28,
		HouseholdEmigration: 0.28,
		AddressMove:         0.25,
		Renumber:            0.50,
		OccupationChange:    0.30,
		Split:               0.015,
		WidowMerge:          0.08,
		LodgerTurnover:      0.18,
	}
}

// Corruption configures the census recording error model. All values are
// probabilities per recorded value.
type Corruption struct {
	// Typo probabilities introduce a single random edit (substitution,
	// deletion, insertion or transposition).
	FirstNameTypo float64
	SurnameTypo   float64
	// Nickname is the probability a first name is recorded as a variant.
	Nickname float64
	// Age errors: OffByOne / OffByTwo misstate the age, RoundToFive rounds
	// an adult age to the nearest multiple of five.
	AgeOffByOne float64
	AgeOffByTwo float64
	RoundToFive float64
	// AddressVariant records the address without the house number.
	AddressVariant float64
	// OccupationVariant swaps in a synonymous occupation description.
	OccupationVariant float64
	// BirthplaceVariant records only the county instead of the town.
	BirthplaceVariant float64
	// Missing-value probabilities per attribute.
	MissingFirstName  float64
	MissingSurname    float64
	MissingSex        float64
	MissingAge        float64
	MissingAddress    float64
	MissingOccupation float64
	MissingBirthplace float64
}

// DefaultCorruption returns the error model calibrated to the paper's
// Table 1: an overall missing-value ratio of roughly 3-6.5% and enough name
// noise to make exact matching insufficient.
func DefaultCorruption() Corruption {
	return Corruption{
		FirstNameTypo:     0.035,
		SurnameTypo:       0.035,
		Nickname:          0.035,
		AgeOffByOne:       0.12,
		AgeOffByTwo:       0.04,
		RoundToFive:       0.05,
		AddressVariant:    0.30,
		OccupationVariant: 0.08,
		BirthplaceVariant: 0.07,
		MissingFirstName:  0.004,
		MissingSurname:    0.004,
		MissingSex:        0.012,
		MissingAge:        0.02,
		MissingAddress:    0.04,
		MissingOccupation: 0.16,
		MissingBirthplace: 0.08,
	}
}

// Config controls series generation.
type Config struct {
	// Seed drives all randomness; equal configs generate equal series.
	Seed int64
	// Years lists the census years (ascending, equal intervals expected).
	// Defaults to PaperYears.
	Years []int
	// Scale multiplies the paper-sized population (3,298 initial
	// households). Scale 1.0 reproduces Table 1 magnitudes; tests use much
	// smaller values.
	Scale float64
	// TargetHouseholds optionally overrides the per-year household targets
	// (before scaling). Defaults to PaperHouseholdTargets.
	TargetHouseholds map[int]int
	// Districts splits the simulation into this many independently evolving
	// districts, generated in parallel and merged into one series with
	// district-prefixed identifiers ("d1_1871_5"). People never move between
	// districts, so each district is a faithful standalone population and
	// the merged series scales linearly — the knob behind million-record
	// runs. Districts <= 1 (the default) keeps the single legacy district
	// byte-for-byte.
	Districts int
	// Rates are the demographic rates; zero value means DefaultRates.
	Rates Rates
	// Corruption is the recording error model; zero value means
	// DefaultCorruption.
	Corruption Corruption
}

// DefaultConfig returns a full-scale paper-profile configuration.
func DefaultConfig() Config {
	return Config{
		Seed:             1871,
		Years:            append([]int(nil), PaperYears...),
		Scale:            1.0,
		TargetHouseholds: PaperHouseholdTargets,
		Rates:            DefaultRates(),
		Corruption:       DefaultCorruption(),
	}
}

// TestConfig returns a small, fast configuration (about scale% of the paper
// size) for tests and examples.
func TestConfig(scale float64, seed int64) Config {
	c := DefaultConfig()
	c.Scale = scale
	c.Seed = seed
	return c
}

// normalize fills zero values with defaults and validates the config.
func (c *Config) normalize() error {
	if len(c.Years) == 0 {
		c.Years = append([]int(nil), PaperYears...)
	}
	for i := 1; i < len(c.Years); i++ {
		if c.Years[i] <= c.Years[i-1] {
			return fmt.Errorf("synth: years must be strictly ascending, got %v", c.Years)
		}
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Districts < 0 {
		return fmt.Errorf("synth: negative district count %d", c.Districts)
	}
	if c.TargetHouseholds == nil {
		c.TargetHouseholds = PaperHouseholdTargets
	}
	if c.Rates == (Rates{}) {
		c.Rates = DefaultRates()
	}
	if c.Corruption == (Corruption{}) {
		c.Corruption = DefaultCorruption()
	}
	return nil
}

// target returns the scaled household target for a census year; if the year
// has no explicit target the last known target grows by 8% per decade.
func (c *Config) target(year int) int {
	if t, ok := c.TargetHouseholds[year]; ok {
		n := int(float64(t) * c.Scale)
		if n < 4 {
			n = 4
		}
		return n
	}
	// Fallback: nearest earlier target compounded by 8% per decade.
	best, bestYear := 0, -1
	for y, t := range c.TargetHouseholds {
		if y <= year && y > bestYear {
			bestYear, best = y, t
		}
	}
	if bestYear < 0 {
		best, bestYear = 3298, year
	}
	n := float64(best)
	for y := bestYear; y < year; y += 10 {
		n *= 1.08
	}
	t := int(n * c.Scale)
	if t < 4 {
		t = 4
	}
	return t
}
