package synth

import (
	"strings"
	"testing"
)

// TestZombieHouseholdRegression pins the exact scenario that used to break
// the head-membership invariant: with seed 4, a decade transition emptied a
// household entirely in applyMortality, the empty "zombie" (dead head still
// in its head field) survived until the final succeedHeads, whose orphan
// branch then moved children into it after it had already been visited —
// leaving a dead head with live members at recording time. The fix deletes
// a household the moment it empties. The surrounding seeds are swept too so
// the regression test does not depend on one RNG trajectory.
func TestZombieHouseholdRegression(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		cfg := TestConfig(0.02, seed)
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		pop := newPopulation(&cfg, 1851)
		prev := 1851
		for _, y := range []int{1861, 1871, 1881, 1891, 1901} {
			pop.advance(prev, y)
			if err := pop.checkConsistency(true); err != nil {
				t.Fatalf("seed %d year %d: %v", seed, y, err)
			}
			prev = y
		}
	}
}

// TestRemoveFromHouseholdDeletesEmptied: removing the last member must
// delete the household so no zombie can be picked as a relocation target.
func TestRemoveFromHouseholdDeletesEmptied(t *testing.T) {
	cfg := TestConfig(0.02, 1)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	pop := newPopulation(&cfg, 1851)
	hid := pop.householdIDs()[0]
	hh := pop.households[hid]
	for _, mid := range append([]int(nil), hh.members...) {
		pop.removeFromHousehold(pop.persons[mid])
	}
	if pop.households[hid] != nil {
		t.Fatalf("household %d still exists after losing all members", hid)
	}
	if err := pop.checkConsistency(false); err == nil {
		t.Fatal("expected inconsistency: removed persons belong to no household")
	} else if !strings.Contains(err.Error(), "memberships") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCheckConsistencyDetectsCorruption corrupts each side of the mutual
// bookkeeping by hand and verifies checkConsistency reports it.
func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	fresh := func() *population {
		cfg := TestConfig(0.02, 2)
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		return newPopulation(&cfg, 1851)
	}

	t.Run("clean", func(t *testing.T) {
		if err := fresh().checkConsistency(true); err != nil {
			t.Fatalf("founding population inconsistent: %v", err)
		}
	})
	t.Run("head not member", func(t *testing.T) {
		pop := fresh()
		hh := pop.households[pop.householdIDs()[0]]
		head := pop.persons[hh.head]
		// Simulate the old bug: drop the head from members while its
		// household field still points home.
		for i, mid := range hh.members {
			if mid == head.id {
				hh.members = append(hh.members[:i], hh.members[i+1:]...)
				break
			}
		}
		if err := pop.checkConsistency(true); err == nil {
			t.Fatal("poisoned head membership not detected")
		}
		// The lax variant must also catch it: the head now has a household
		// field with no matching membership.
		if err := pop.checkConsistency(false); err == nil {
			t.Fatal("membership/field desync not detected by lax check")
		}
	})
	t.Run("double membership", func(t *testing.T) {
		pop := fresh()
		ids := pop.householdIDs()
		a, b := pop.households[ids[0]], pop.households[ids[1]]
		b.members = append(b.members, a.members[0])
		if err := pop.checkConsistency(false); err == nil {
			t.Fatal("double membership not detected")
		}
	})
	t.Run("dead member", func(t *testing.T) {
		pop := fresh()
		hh := pop.households[pop.householdIDs()[0]]
		delete(pop.persons, hh.members[len(hh.members)-1])
		if err := pop.checkConsistency(false); err == nil {
			t.Fatal("dead member not detected")
		}
	})
	t.Run("dead head", func(t *testing.T) {
		pop := fresh()
		hh := pop.households[pop.householdIDs()[0]]
		head := pop.persons[hh.head]
		pop.kill(head)
		if err := pop.checkConsistency(true); err == nil {
			t.Fatal("dead head not detected in strict mode")
		}
		if err := pop.checkConsistency(false); err != nil {
			t.Fatalf("dead head is legal mid-advance, lax check errored: %v", err)
		}
	})
}
