package synth

import "fmt"

// debugChecks enables per-step consistency validation inside advance. It is
// off in normal runs (the checks cost O(population) per step); the package
// tests switch it on via TestMain, and building with -tags synthchecks
// forces it on everywhere (see checks_enabled.go).
var debugChecks = false

// step runs one mutation pass of advance and, with debugChecks enabled,
// validates the mutual bookkeeping afterwards. Head liveness/membership is
// deliberately NOT required here (strict=false): mid-advance a head may be
// dead or moved out until succeedHeads repairs it.
func (p *population) step(name string, fn func()) {
	fn()
	if debugChecks {
		if err := p.checkConsistency(false); err != nil {
			panic("synth: after " + name + ": " + err.Error())
		}
	}
}

// checkConsistency validates the structural conservation laws kept by
// addToHousehold/removeFromHousehold: households are non-empty, every
// member is alive and points back at its household, nobody is a member of
// two households (or of one household twice), and every person belongs to
// exactly one household. With strict set, every household head must
// additionally be a live member of its own household — true at decade
// boundaries, but legitimately violated between applyMortality and the
// final succeedHeads of a transition.
func (p *population) checkConsistency(strict bool) error {
	seen := make(map[int]int, len(p.persons)) // person ID -> household ID
	for hid, hh := range p.households {
		if hid != hh.id {
			return fmt.Errorf("household map key %d != id %d", hid, hh.id)
		}
		if len(hh.members) == 0 {
			return fmt.Errorf("household %d is empty", hid)
		}
		for _, mid := range hh.members {
			per := p.persons[mid]
			if per == nil {
				return fmt.Errorf("household %d lists dead person %d", hid, mid)
			}
			if per.household != hid {
				return fmt.Errorf("person %d in household %d claims household %d", mid, hid, per.household)
			}
			if prev, dup := seen[mid]; dup {
				return fmt.Errorf("person %d is a member of households %d and %d", mid, prev, hid)
			}
			seen[mid] = hid
		}
		if strict {
			if p.persons[hh.head] == nil {
				return fmt.Errorf("household %d head %d is dead", hid, hh.head)
			}
			if !hh.hasMember(hh.head) {
				return fmt.Errorf("household %d head %d is not a member", hid, hh.head)
			}
		}
	}
	if len(seen) != len(p.persons) {
		return fmt.Errorf("%d persons but %d household memberships", len(p.persons), len(seen))
	}
	return nil
}
