package synth

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"censuslink/internal/census"
)

// testSeries caches one generated series for the whole test package.
var (
	seriesOnce sync.Once
	testSer    *census.Series
	testSerErr error
)

func sharedSeries(t *testing.T) *census.Series {
	t.Helper()
	seriesOnce.Do(func() {
		testSer, testSerErr = Generate(TestConfig(0.04, 7))
	})
	if testSerErr != nil {
		t.Fatal(testSerErr)
	}
	return testSer
}

func TestGenerateSeriesShape(t *testing.T) {
	s := sharedSeries(t)
	if len(s.Datasets) != 6 {
		t.Fatalf("datasets = %d, want 6", len(s.Datasets))
	}
	years := s.Years()
	for i, want := range PaperYears {
		if years[i] != want {
			t.Errorf("year[%d] = %d, want %d", i, years[i], want)
		}
	}
}

func TestGenerateHitsHouseholdTargets(t *testing.T) {
	s := sharedSeries(t)
	cfg := TestConfig(0.04, 7)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Datasets {
		target := cfg.target(d.Year)
		got := d.NumHouseholds()
		// Immigration tops households up to the target; endogenous growth
		// may overshoot slightly.
		if got < target || got > target+target/4 {
			t.Errorf("%d: households = %d, want ~%d", d.Year, got, target)
		}
	}
}

func TestGenerateTable1Profile(t *testing.T) {
	s := sharedSeries(t)
	for _, d := range s.Datasets {
		st := d.ComputeStats()
		if st.MeanMembers < 3.5 || st.MeanMembers > 6.0 {
			t.Errorf("%d: mean household size %.2f outside [3.5, 6.0]", d.Year, st.MeanMembers)
		}
		if st.MissingRatio < 0.02 || st.MissingRatio > 0.10 {
			t.Errorf("%d: missing ratio %.3f outside [0.02, 0.10]", d.Year, st.MissingRatio)
		}
		// Names must be ambiguous (more records than unique combinations).
		if st.NameFrequency < 1.1 {
			t.Errorf("%d: name frequency %.2f too low, names not ambiguous", d.Year, st.NameFrequency)
		}
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	s := sharedSeries(t)
	for _, d := range s.Datasets {
		if err := d.Validate(); err != nil {
			t.Fatalf("%d: %v", d.Year, err)
		}
		// Truth IDs unique within one census (a person recorded once).
		seen := map[string]string{}
		for _, r := range d.Records() {
			if r.TruthID == "" {
				t.Fatalf("%d: record %s without truth ID", d.Year, r.ID)
			}
			if prev, dup := seen[r.TruthID]; dup {
				t.Fatalf("%d: truth ID %s on both %s and %s", d.Year, r.TruthID, prev, r.ID)
			}
			seen[r.TruthID] = r.ID
		}
		// Exactly one head per household, listed first.
		for _, h := range d.Households() {
			members := d.Members(h)
			if len(members) == 0 {
				t.Fatalf("%d: empty household %s", d.Year, h.ID)
			}
			heads := 0
			for _, m := range members {
				if m.Role == census.RoleHead {
					heads++
				}
			}
			if heads != 1 {
				t.Errorf("%d: household %s has %d heads", d.Year, h.ID, heads)
			}
			if members[0].Role != census.RoleHead {
				t.Errorf("%d: household %s head not listed first", d.Year, h.ID)
			}
		}
	}
}

func TestGenerateOverlapBetweenCensuses(t *testing.T) {
	s := sharedSeries(t)
	for _, pair := range s.Pairs() {
		old, new := pair[0], pair[1]
		oldTruth := map[string]bool{}
		for _, r := range old.Records() {
			oldTruth[r.TruthID] = true
		}
		common := 0
		for _, r := range new.Records() {
			if oldTruth[r.TruthID] {
				common++
			}
		}
		// A substantial share of the population must persist (the paper's
		// reference has ~6.8k of ~26k-29k records linked, but that is a
		// lower bound; demographically 50-80% survive and stay).
		frac := float64(common) / float64(old.NumRecords())
		if frac < 0.40 || frac > 0.95 {
			t.Errorf("%d->%d: %.2f of old records persist, outside [0.40, 0.95]",
				old.Year, new.Year, frac)
		}
	}
}

func TestGenerateAgesConsistent(t *testing.T) {
	s := sharedSeries(t)
	old, new := s.Dataset(1871), s.Dataset(1881)
	byTruth := map[string]*census.Record{}
	for _, r := range new.Records() {
		byTruth[r.TruthID] = r
	}
	checked := 0
	for _, o := range old.Records() {
		n := byTruth[o.TruthID]
		if n == nil || o.Age == census.AgeMissing || n.Age == census.AgeMissing {
			continue
		}
		checked++
		gap := n.Age - o.Age
		// True gap is 10; recording errors of up to ±2 on each side plus
		// rounding to fives allows at most ~±7 deviation.
		if gap < 3 || gap > 17 {
			t.Errorf("person %s aged %d -> %d between 1871 and 1881", o.TruthID, o.Age, n.Age)
		}
	}
	if checked == 0 {
		t.Fatal("no persisting persons with recorded ages")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(TestConfig(0.02, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TestConfig(0.02, 99))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Datasets {
		var bufA, bufB bytes.Buffer
		if err := census.WriteCSV(&bufA, a.Datasets[i]); err != nil {
			t.Fatal(err)
		}
		if err := census.WriteCSV(&bufB, b.Datasets[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Fatalf("year %d differs between runs with equal seeds", a.Datasets[i].Year)
		}
	}
	c, err := Generate(TestConfig(0.02, 100))
	if err != nil {
		t.Fatal(err)
	}
	if c.Datasets[0].NumRecords() == a.Datasets[0].NumRecords() &&
		c.Datasets[0].Records()[0].FirstName == a.Datasets[0].Records()[0].FirstName &&
		c.Datasets[0].Records()[1].FirstName == a.Datasets[0].Records()[1].FirstName &&
		c.Datasets[0].Records()[2].FirstName == a.Datasets[0].Records()[2].FirstName {
		t.Error("different seeds produced suspiciously identical data")
	}
}

func TestGeneratePair(t *testing.T) {
	old, new, err := GeneratePair(TestConfig(0.02, 5), 1861, 1871)
	if err != nil {
		t.Fatal(err)
	}
	if old.Year != 1861 || new.Year != 1871 {
		t.Fatalf("years = %d/%d", old.Year, new.Year)
	}
	if _, _, err := GeneratePair(TestConfig(0.02, 5), 1850, 1860); err == nil {
		t.Error("unknown years should fail")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(c.Years) != 6 || c.Scale != 1.0 || c.Rates == (Rates{}) || c.Corruption == (Corruption{}) {
		t.Errorf("defaults not applied: %+v", c)
	}
	bad := Config{Years: []int{1861, 1851}}
	if err := bad.normalize(); err == nil {
		t.Error("descending years accepted")
	}
}

func TestConfigTargetFallback(t *testing.T) {
	c := DefaultConfig()
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := c.target(1851); got != 3298 {
		t.Errorf("target(1851) = %d", got)
	}
	// 1911 has no explicit target: 8% growth on 1901.
	growth := 1.08
	if got, want := c.target(1911), int(float64(6842)*growth); got != want {
		t.Errorf("target(1911) = %d, want %d", got, want)
	}
	small := TestConfig(0.0001, 1)
	if err := small.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := small.target(1851); got < 4 {
		t.Errorf("tiny scale target = %d, want >= 4", got)
	}
}

func TestTypo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		in := "elizabeth"
		out := typo(in, rng)
		if d := len(out) - len(in); d < -1 || d > 1 {
			t.Fatalf("typo changed length by %d: %q", d, out)
		}
		for _, c := range out {
			if c < 'a' || c > 'z' {
				t.Fatalf("typo produced non-letter: %q", out)
			}
		}
	}
	if typo("a", rng) != "a" {
		t.Error("single-character strings must be left alone")
	}
}

func TestSampler(t *testing.T) {
	s := newSampler([]weightedName{{"a", 1}, {"b", 3}, {"c", 6}})
	counts := map[string]int{}
	for r := 0; r < s.total; r++ {
		counts[s.pick(r)]++
	}
	if counts["a"] != 1 || counts["b"] != 3 || counts["c"] != 6 {
		t.Errorf("sampler distribution wrong: %v", counts)
	}
}

func TestNicknamesAreKnownNames(t *testing.T) {
	known := map[string]bool{}
	for _, n := range maleNames {
		known[n.name] = true
	}
	for _, n := range femaleNames {
		known[n.name] = true
	}
	for formal := range nicknames {
		if !known[formal] && formal != "frederick" {
			t.Errorf("nickname key %q is not in the name corpora", formal)
		}
	}
}

func BenchmarkGenerateDecade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := GeneratePair(TestConfig(0.05, int64(i)), 1851, 1861); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDemographics: the simulated population must look like a 19th-century
// mill town — young, slightly female-skewed or balanced, with children
// making up a third or so of the population.
func TestDemographics(t *testing.T) {
	s := sharedSeries(t)
	for _, d := range s.Datasets {
		dem := Demographics(d)
		if dem.SexRatio < 0.7 || dem.SexRatio > 1.4 {
			t.Errorf("%d: sex ratio %.2f implausible", d.Year, dem.SexRatio)
		}
		if dem.ChildShare < 0.18 || dem.ChildShare > 0.55 {
			t.Errorf("%d: child share %.2f implausible", d.Year, dem.ChildShare)
		}
		// The pyramid must be bottom-heavy: under-10s outnumber the 60+.
		old := 0
		for _, n := range dem.AgePyramid[6:] {
			old += n
		}
		if dem.AgePyramid[0] <= old {
			t.Errorf("%d: age pyramid not bottom-heavy: %v", d.Year, dem.AgePyramid)
		}
		// Household sizes: no empty households; singles stay a minority and
		// family-sized households (2-7 members) dominate.
		if dem.HouseholdSizes[0] != 0 {
			t.Errorf("%d: empty households recorded", d.Year)
		}
		total, family := 0, 0
		for size, n := range dem.HouseholdSizes {
			total += n
			if size >= 2 && size <= 7 {
				family += n
			}
		}
		if frac := float64(dem.HouseholdSizes[1]) / float64(total); frac > 0.22 {
			t.Errorf("%d: single-person households %.2f too frequent", d.Year, frac)
		}
		if frac := float64(family) / float64(total); frac < 0.55 {
			t.Errorf("%d: family-sized households only %.2f", d.Year, frac)
		}
		// Most adults in a mill town were married.
		if dem.MarriedShare < 0.25 || dem.MarriedShare > 0.9 {
			t.Errorf("%d: married share %.2f implausible", d.Year, dem.MarriedShare)
		}
	}
}

// TestBirthplacesGenerated: every person carries a birthplace before
// corruption; the recorded data has mostly-local births with an in-migrant
// minority.
func TestBirthplacesGenerated(t *testing.T) {
	s := sharedSeries(t)
	d := s.Dataset(1851)
	local := map[string]bool{}
	for _, v := range villages {
		local[v.name] = true
	}
	haveBP, localN := 0, 0
	for _, r := range d.Records() {
		if r.Birthplace == "" {
			continue
		}
		haveBP++
		if local[r.Birthplace] {
			localN++
		}
	}
	if frac := float64(haveBP) / float64(d.NumRecords()); frac < 0.85 {
		t.Errorf("only %.2f of records carry a birthplace", frac)
	}
	if frac := float64(localN) / float64(haveBP); frac < 0.5 || frac > 0.95 {
		t.Errorf("local-born share %.2f outside [0.5, 0.95]", frac)
	}
}
