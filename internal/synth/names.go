// Package synth generates synthetic longitudinal census data modelled on
// the Rawtenstall (North-East Lancashire) district used in the evaluation
// of Christen et al. (EDBT 2017). A closed population of households evolves
// decade by decade — births, deaths, marriages, household formation, splits,
// merges, moves, emigration and immigration — and each census year is
// "recorded" through an error model that reproduces the data-quality issues
// the paper describes: highly frequent names, changed surnames at marriage,
// typos, age misstatements and missing values.
//
// Because every person carries a persistent identifier into the emitted
// records (census.Record.TruthID), the generator provides exact ground
// truth for both record and group mappings.
package synth

// weightedName is a name with a relative sampling weight. The weights are
// deliberately very skewed: the paper reports an average frequency of up to
// 2.23 records per (first name, surname) combination with frequent surnames
// such as Ashworth and Smith dominating.
type weightedName struct {
	name   string
	weight int
}

// surnames of the simulated district. Weights approximate the concentrated
// surname distribution of a Lancashire mill town.
var surnames = []weightedName{
	{"ashworth", 220}, {"smith", 190}, {"taylor", 140}, {"holt", 110},
	{"lord", 100}, {"barnes", 85}, {"hargreaves", 80}, {"pickup", 72},
	{"whittaker", 65}, {"riley", 60}, {"heys", 52}, {"nuttall", 50},
	{"howarth", 45}, {"ormerod", 40}, {"haworth", 38}, {"greenwood", 34},
	{"duckworth", 22}, {"brierley", 20}, {"schofield", 20}, {"walmsley", 18},
	{"entwistle", 18}, {"ratcliffe", 16}, {"cronshaw", 15}, {"barcroft", 14},
	{"tattersall", 14}, {"shepherd", 13}, {"hindle", 12}, {"aspden", 12},
	{"ingham", 12}, {"kershaw", 11}, {"clegg", 11}, {"butterworth", 10},
	{"crawshaw", 10}, {"grimshaw", 10}, {"rothwell", 9}, {"yates", 9},
	{"walker", 9}, {"parker", 8}, {"hoyle", 8}, {"dearden", 8},
	{"ogden", 7}, {"ramsbottom", 7}, {"warburton", 7}, {"chadwick", 6},
	{"fenton", 6}, {"mitchell", 6}, {"sutcliffe", 6}, {"stott", 5},
	{"hamer", 5}, {"turner", 5}, {"collinge", 5}, {"whitehead", 5},
	{"hudson", 4}, {"brown", 4}, {"wilson", 4}, {"jackson", 4},
	{"bridge", 4}, {"crabtree", 3}, {"driver", 3}, {"emmott", 3},
	{"farrar", 3}, {"gregson", 3}, {"hartley", 3}, {"kenyon", 3},
	{"leach", 2}, {"midgley", 2}, {"nowell", 2}, {"pilkington", 2},
	{"redman", 2}, {"slater", 2}, {"thorp", 2}, {"varley", 2},
	{"wadsworth", 2}, {"birtwistle", 2}, {"catlow", 1}, {"demaine", 1},
	{"eastwood", 1}, {"fielden", 1}, {"gorton", 1}, {"heap", 1},
	{"isherwood", 1}, {"jepson", 1}, {"kay", 1}, {"lonsdale", 1},
	{"marsden", 1}, {"norcross", 1}, {"oldham", 1}, {"proctor", 1},
	{"quarmby", 1}, {"rushton", 1}, {"seddon", 1}, {"thistlethwaite", 1},
	{"utley", 1}, {"veevers", 1}, {"womersley", 1}, {"ainsworth", 1},
	{"bleazard", 1}, {"cowpe", 1}, {"dugdale", 1}, {"eccles", 1},
}

// tailSurnames extends the surname pool with a long tail of rare names,
// generated from Lancashire toponymic syllables. Real census districts show
// exactly this shape: a few very frequent surnames plus thousands of rare
// ones (Table 1 of the paper: 13,198 distinct name combinations among
// 26,229 records in 1871). Without the tail, a fixed pool would saturate
// and make large-scale populations far more ambiguous than the real data.
func tailSurnames() []weightedName {
	prefixes := []string{
		"ash", "birch", "black", "booth", "brad", "brier", "clough", "crow",
		"dean", "edge", "fearn", "green", "hag", "halli", "hard", "heath",
		"high", "holl", "holm", "hor", "kirk", "lang", "law", "lock", "long",
		"marsh", "mead", "mill", "moor", "new", "oaken", "old", "pick", "ram",
		"read", "rish", "rock", "row", "shaw", "small", "snow", "spring",
		"stan", "stone", "sud", "thorn", "town", "under", "wal", "ward",
		"water", "weather", "well", "west", "whit", "wild", "wind", "wood",
		"wool", "yate",
	}
	suffixes := []string{
		"acre", "bank", "bottom", "bridge", "brook", "burn", "bury", "by",
		"cliffe", "cote", "croft", "dale", "den", "field", "fold", "ford",
		"gate", "greave", "ham", "head", "hey", "hill", "holme", "house",
		"hurst", "ing", "lands", "ley", "low", "man", "mere", "more", "royd",
		"side", "stall", "stead", "stock", "ton", "tree", "wall", "wick",
		"worth",
	}
	var out []weightedName
	// A deterministic subset of the syllable product, weight 2 each.
	for i, p := range prefixes {
		for j, s := range suffixes {
			if (i*31+j*17)%3 != 0 { // keep roughly one third
				continue
			}
			if p == s {
				continue
			}
			out = append(out, weightedName{name: p + s, weight: 2})
		}
	}
	return out
}

func init() {
	surnames = append(surnames, tailSurnames()...)
}

// maleNames with 19th-century frequencies: John, William and Thomas alone
// cover a large share of all men.
var maleNames = []weightedName{
	{"john", 240}, {"william", 200}, {"thomas", 150}, {"james", 130},
	{"george", 85}, {"joseph", 65}, {"robert", 52}, {"henry", 46},
	{"richard", 22}, {"edward", 18}, {"samuel", 14}, {"charles", 13},
	{"david", 10}, {"peter", 9}, {"daniel", 8}, {"edwin", 7},
	{"alfred", 7}, {"abraham", 6}, {"isaac", 5}, {"benjamin", 5},
	{"matthew", 4}, {"walter", 4}, {"fred", 4}, {"harry", 4},
	{"albert", 3}, {"arthur", 3}, {"ernest", 3}, {"frank", 3},
	{"herbert", 2}, {"lawrence", 2}, {"luke", 2}, {"mark", 2},
	{"moses", 1}, {"noah", 1}, {"percy", 1}, {"ralph", 1},
	{"simeon", 1}, {"stephen", 2}, {"steve", 1}, {"titus", 1},
}

// femaleNames with matching skew: Mary, Elizabeth and Sarah dominate.
var femaleNames = []weightedName{
	{"mary", 240}, {"elizabeth", 190}, {"sarah", 140}, {"alice", 100},
	{"ann", 92}, {"jane", 80}, {"ellen", 70}, {"margaret", 58},
	{"hannah", 28}, {"martha", 24}, {"emma", 20}, {"betty", 16},
	{"grace", 14}, {"esther", 12}, {"nancy", 11}, {"susannah", 10},
	{"harriet", 9}, {"agnes", 8}, {"catherine", 8}, {"charlotte", 7},
	{"emily", 7}, {"fanny", 6}, {"isabella", 5}, {"lucy", 5},
	{"rachel", 4}, {"rebecca", 4}, {"ruth", 4}, {"clara", 3},
	{"dorothy", 3}, {"edith", 3}, {"florence", 3}, {"frances", 2},
	{"helen", 2}, {"janet", 2}, {"lydia", 2}, {"matilda", 2},
	{"phoebe", 1}, {"priscilla", 1}, {"rosanna", 1}, {"winifred", 1},
}

// nicknames maps formal first names to common recorded variants; the
// corruption model substitutes them to model inconsistent enumeration.
var nicknames = map[string][]string{
	"william":   {"wm", "will", "bill"},
	"john":      {"jno", "jack"},
	"thomas":    {"thos", "tom"},
	"james":     {"jas", "jim"},
	"joseph":    {"jos", "joe"},
	"robert":    {"robt", "bob"},
	"george":    {"geo"},
	"richard":   {"richd", "dick"},
	"samuel":    {"saml", "sam"},
	"charles":   {"chas", "charlie"},
	"benjamin":  {"ben"},
	"edward":    {"ed", "ted"},
	"henry":     {"harry"},
	"frederick": {"fred"},
	"elizabeth": {"eliza", "betsy", "lizzie", "bess"},
	"mary":      {"polly", "molly"},
	"sarah":     {"sally"},
	"margaret":  {"maggie", "peggy"},
	"hannah":    {"anna"},
	"catherine": {"kate", "kitty"},
	"ann":       {"annie", "nanny"},
	"martha":    {"mattie", "patty"},
	"susannah":  {"susan", "sukey"},
	"isabella":  {"bella"},
	"harriet":   {"hatty"},
	"frances":   {"fanny"},
	"emily":     {"em"},
}

// maleOccupations of a cotton-milling district, weighted.
var maleOccupations = []weightedName{
	{"cotton weaver", 60}, {"cotton spinner", 40}, {"power loom weaver", 30},
	{"labourer", 28}, {"farmer", 20}, {"coal miner", 18}, {"woollen weaver", 16},
	{"stone mason", 12}, {"carter", 10}, {"joiner", 10}, {"shoemaker", 9},
	{"blacksmith", 8}, {"grocer", 8}, {"tailor", 7}, {"overlooker", 7},
	{"warehouseman", 6}, {"mechanic", 6}, {"butcher", 5}, {"clogger", 5},
	{"quarryman", 5}, {"engine tenter", 4}, {"book keeper", 3}, {"draper", 3},
	{"publican", 3}, {"plumber", 2}, {"printer", 2}, {"schoolmaster", 2},
	{"iron turner", 2}, {"baker", 2}, {"cabinet maker", 1}, {"clerk", 1},
	{"hatter", 1}, {"machine fitter", 1}, {"painter", 1}, {"wheelwright", 1},
}

// femaleOccupations; many women have no recorded occupation, which the
// corruption model handles through a high missing rate.
var femaleOccupations = []weightedName{
	{"cotton weaver", 60}, {"winder", 30}, {"power loom weaver", 25},
	{"housekeeper", 18}, {"dressmaker", 14}, {"cotton reeler", 10},
	{"domestic servant", 10}, {"milliner", 6}, {"washerwoman", 5},
	{"tailoress", 4}, {"charwoman", 3}, {"schoolmistress", 2},
	{"shopkeeper", 2}, {"nurse", 2}, {"sempstress", 1},
}

// childOccupations for working children (ages 10-15 in a mill town).
var childOccupations = []weightedName{
	{"scholar", 60}, {"cotton piecer", 25}, {"doffer", 10},
	{"half timer", 10}, {"errand boy", 4}, {"bobbin winder", 4},
}

// streets of the simulated district; household addresses combine a house
// number with one of these.
var streets = []string{
	"bury road", "bank street", "burnley road", "haslingden old road",
	"newchurch road", "mill lane", "hall street", "grane road",
	"bacup road", "church street", "market street", "dale street",
	"springside", "holly mount", "cloughfold", "waterfoot road",
	"peel street", "albert terrace", "victoria street", "queen street",
	"king street", "york street", "spring gardens", "hollin lane",
	"heightside", "oakenhead wood", "longholme road", "schofield road",
	"whitewell bottom", "lumb lane", "goodshaw lane", "crawshawbooth road",
	"sunnyside terrace", "rockliffe road", "fallbarn road", "hardman street",
	"unity street", "prospect terrace", "garden street", "chapel street",
	"bridge end", "tup bridge", "higher mill", "lower mill",
	"reedsholme", "balladen", "horncliffe", "townsendfold",
}

// villages are the hamlets and townships of the simulated district,
// recorded as birthplaces of the native-born.
var villages = []weightedName{
	{"rawtenstall", 40}, {"newchurch", 25}, {"waterfoot", 22},
	{"crawshawbooth", 16}, {"goodshaw", 12}, {"lumb", 10}, {"cowpe", 8},
	{"balladen", 6}, {"reedsholme", 5}, {"cloughfold", 10},
	{"whitewell bottom", 6}, {"townsendfold", 4},
}

// elsewherePlaces are birthplaces of in-migrants from outside the district.
var elsewherePlaces = []weightedName{
	{"haslingden", 20}, {"bacup", 18}, {"burnley", 15}, {"bury", 12},
	{"rochdale", 10}, {"accrington", 9}, {"blackburn", 8}, {"manchester", 7},
	{"todmorden", 5}, {"colne", 4}, {"preston", 4}, {"halifax", 3},
	{"yorkshire", 6}, {"cheshire", 3}, {"ireland", 8}, {"scotland", 3},
	{"wales", 2}, {"derbyshire", 2}, {"westmorland", 1}, {"london", 1},
}

// sampler draws names from a weighted list using a precomputed cumulative
// distribution.
type sampler struct {
	names []string
	cum   []int
	total int
}

func newSampler(list []weightedName) *sampler {
	s := &sampler{
		names: make([]string, len(list)),
		cum:   make([]int, len(list)),
	}
	for i, wn := range list {
		s.total += wn.weight
		s.names[i] = wn.name
		s.cum[i] = s.total
	}
	return s
}

// pick returns a name; r must be uniform in [0, total).
func (s *sampler) pick(r int) string {
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.names[lo]
}
