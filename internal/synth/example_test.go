package synth_test

import (
	"fmt"

	"censuslink/internal/synth"
)

// ExampleGenerate creates a small synthetic census series with the
// Rawtenstall profile and shows its shape.
func ExampleGenerate() {
	series, err := synth.Generate(synth.TestConfig(0.01, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("censuses:", len(series.Datasets))
	fmt.Println("years:", series.Years())
	first := series.Datasets[0]
	fmt.Printf("1851: %d households\n", first.NumHouseholds())
	// Every record carries ground truth for evaluation.
	fmt.Println("has truth:", first.Records()[0].TruthID != "")
	// Output:
	// censuses: 6
	// years: [1851 1861 1871 1881 1891 1901]
	// 1851: 32 households
	// has truth: true
}

// ExampleGeneratePair creates just one census pair for linkage experiments.
func ExampleGeneratePair() {
	old, new, err := synth.GeneratePair(synth.TestConfig(0.01, 1), 1871, 1881)
	if err != nil {
		panic(err)
	}
	fmt.Println(old.Year, new.Year)
	fmt.Println("grown:", new.NumHouseholds() >= old.NumHouseholds())
	// Output:
	// 1871 1881
	// grown: true
}
