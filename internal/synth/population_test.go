package synth

import (
	"os"
	"testing"
	"testing/quick"

	"censuslink/internal/census"
)

// TestMain switches the simulator's per-step consistency checks on for the
// whole package: every advance validates the bookkeeping after each apply*
// step (see consistency.go), so a regression panics at the step that
// introduced it instead of surfacing decades later.
func TestMain(m *testing.M) {
	debugChecks = true
	os.Exit(m.Run())
}

// checkPopulationInvariants verifies the structural conservation laws of
// the simulator: households partition the persons, every member pointer is
// consistent, spouse pointers are mutual, heads exist and live in their
// household, and parent pointers never reference younger persons.
func checkPopulationInvariants(t *testing.T, p *population, year int) {
	t.Helper()
	seen := map[int]int{} // person ID -> household ID
	for hid, hh := range p.households {
		if hid != hh.id {
			t.Fatalf("household map key %d != id %d", hid, hh.id)
		}
		if len(hh.members) == 0 {
			t.Fatalf("household %d is empty", hid)
		}
		headFound := false
		for _, mid := range hh.members {
			per := p.persons[mid]
			if per == nil {
				t.Fatalf("household %d lists dead person %d", hid, mid)
			}
			if per.household != hid {
				t.Fatalf("person %d in household %d claims %d", mid, hid, per.household)
			}
			if prev, dup := seen[mid]; dup {
				t.Fatalf("person %d in households %d and %d", mid, prev, hid)
			}
			seen[mid] = hid
			if mid == hh.head {
				headFound = true
			}
		}
		if !headFound {
			t.Fatalf("household %d head %d is not a member", hid, hh.head)
		}
	}
	if len(seen) != len(p.persons) {
		t.Fatalf("year %d: %d persons but %d household memberships", year, len(p.persons), len(seen))
	}
	for id, per := range p.persons {
		if per.id != id {
			t.Fatalf("person map key %d != id %d", id, per.id)
		}
		if per.spouse != 0 {
			sp := p.persons[per.spouse]
			if sp != nil && sp.spouse != per.id {
				t.Fatalf("person %d spouse %d does not point back", id, per.spouse)
			}
		}
		for _, parentID := range []int{per.mother, per.father} {
			if parent := p.persons[parentID]; parent != nil {
				if parent.birthYear >= per.birthYear {
					t.Fatalf("person %d (born %d) has parent %d born %d",
						id, per.birthYear, parentID, parent.birthYear)
				}
			}
		}
		if per.sex != census.SexMale && per.sex != census.SexFemale {
			t.Fatalf("person %d has no sex", id)
		}
	}
}

// TestPopulationInvariantsAcrossDecades: the conservation laws must hold
// after every simulated decade, across several seeds.
func TestPopulationInvariantsAcrossDecades(t *testing.T) {
	prop := func(seed uint8) bool {
		cfg := TestConfig(0.02, int64(seed))
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		pop := newPopulation(&cfg, 1851)
		checkPopulationInvariants(t, pop, 1851)
		years := []int{1861, 1871, 1881, 1891, 1901}
		prev := 1851
		for _, y := range years {
			pop.advance(prev, y)
			checkPopulationInvariants(t, pop, y)
			prev = y
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMarriageMutualityAfterAdvance: all married couples live together and
// the bride carries the groom's surname at formation time.
func TestMarriageMutualityAfterAdvance(t *testing.T) {
	cfg := TestConfig(0.03, 5)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	pop := newPopulation(&cfg, 1851)
	pop.advance(1851, 1861)
	couples := 0
	for _, per := range pop.persons {
		if per.spouse == 0 || per.sex != census.SexFemale {
			continue
		}
		husband := pop.persons[per.spouse]
		if husband == nil {
			continue
		}
		couples++
		if husband.household != per.household {
			// Spouses may be split only transiently; the simulator keeps
			// married couples together.
			t.Errorf("married couple %d/%d in different households", per.id, husband.id)
		}
		if per.surname != husband.surname {
			t.Errorf("wife %d surname %q != husband's %q", per.id, per.surname, husband.surname)
		}
	}
	if couples == 0 {
		t.Fatal("no married couples after a decade")
	}
}
