package synth

import (
	"math"
	"math/rand"
	"sort"

	"censuslink/internal/census"
)

// person is a simulated individual with persistent identity and family
// pointers. The pointers (spouse, mother, father) refer to person IDs and
// are the source of the household roles recorded at census time.
type person struct {
	id         int
	sex        census.Sex
	birthYear  int
	firstName  string
	surname    string
	occupation string
	birthplace string
	spouse     int // person ID, 0 if unmarried/widowed
	mother     int // person ID, 0 if unknown (e.g. immigrants)
	father     int
	household  int // household ID
}

// household is a simulated co-residing group.
type household struct {
	id      int
	address string
	head    int // person ID
	members []int
}

// hasMember reports whether the person ID is in the membership list.
func (hh *household) hasMember(id int) bool {
	for _, mid := range hh.members {
		if mid == id {
			return true
		}
	}
	return false
}

// population is the evolving closed population of the district.
type population struct {
	cfg *Config
	rng *rand.Rand

	persons    map[int]*person
	households map[int]*household
	nextPerson int
	nextHH     int

	surnameS, maleS, femaleS       *sampler
	maleOccS, femaleOccS, childOcc *sampler
	villageS, elsewhereS           *sampler
}

// newPopulation creates the founding population of the first census year.
func newPopulation(cfg *Config, year int) *population {
	p := &population{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		persons:    make(map[int]*person),
		households: make(map[int]*household),
		nextPerson: 1,
		nextHH:     1,
		surnameS:   newSampler(surnames),
		maleS:      newSampler(maleNames),
		femaleS:    newSampler(femaleNames),
		maleOccS:   newSampler(maleOccupations),
		femaleOccS: newSampler(femaleOccupations),
		childOcc:   newSampler(childOccupations),
		villageS:   newSampler(villages),
		elsewhereS: newSampler(elsewherePlaces),
	}
	for i := 0; i < cfg.target(year); i++ {
		p.foundHousehold(year, false)
	}
	return p
}

// --- deterministic iteration helpers ---

func (p *population) personIDs() []int {
	ids := make([]int, 0, len(p.persons))
	for id := range p.persons {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (p *population) householdIDs() []int {
	ids := make([]int, 0, len(p.households))
	for id := range p.households {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// --- sampling helpers ---

func (p *population) chance(prob float64) bool { return p.rng.Float64() < prob }

func (p *population) pickSurname() string { return p.surnameS.pick(p.rng.Intn(p.surnameS.total)) }

func (p *population) pickFirstName(sex census.Sex) string {
	if sex == census.SexFemale {
		return p.femaleS.pick(p.rng.Intn(p.femaleS.total))
	}
	return p.maleS.pick(p.rng.Intn(p.maleS.total))
}

func (p *population) pickAddress() string {
	street := streets[p.rng.Intn(len(streets))]
	return itoa(1+p.rng.Intn(120)) + " " + street
}

// pickBirthplace draws a birthplace: a district village for locals, an
// outside town for in-migrants.
func (p *population) pickBirthplace(local bool) string {
	if local {
		return p.villageS.pick(p.rng.Intn(p.villageS.total))
	}
	return p.elsewhereS.pick(p.rng.Intn(p.elsewhereS.total))
}

// poisson draws a Poisson(lambda) variate (Knuth's method; lambda is small).
func (p *population) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	prod := 1.0
	for {
		prod *= p.rng.Float64()
		if prod <= l {
			return k
		}
		k++
		if k > 20 {
			return k
		}
	}
}

// occupationFor assigns an occupation appropriate to sex and age.
func (p *population) occupationFor(sex census.Sex, age int) string {
	switch {
	case age < 5:
		return ""
	case age < 10:
		if p.chance(0.6) {
			return "scholar"
		}
		return ""
	case age < 15:
		return p.childOcc.pick(p.rng.Intn(p.childOcc.total))
	case sex == census.SexFemale:
		return p.femaleOccS.pick(p.rng.Intn(p.femaleOccS.total))
	default:
		return p.maleOccS.pick(p.rng.Intn(p.maleOccS.total))
	}
}

// --- structural mutations ---

func (p *population) addPerson(per *person) *person {
	per.id = p.nextPerson
	p.nextPerson++
	p.persons[per.id] = per
	return per
}

func (p *population) addToHousehold(per *person, hh *household) {
	per.household = hh.id
	hh.members = append(hh.members, per.id)
}

// removeFromHousehold detaches a person from their household. It is the
// only place membership is ever removed, mirroring addToHousehold as the
// only place it is added, so person.household and household.members cannot
// diverge. A household emptied by the removal is deleted on the spot:
// leaving an empty "zombie" household behind (with a dead head still in its
// head field) would let later relocation passes pick it as a move target
// and re-populate it after head repair has already run.
func (p *population) removeFromHousehold(per *person) {
	hh := p.households[per.household]
	per.household = 0
	if hh == nil {
		return
	}
	for i, id := range hh.members {
		if id == per.id {
			hh.members = append(hh.members[:i], hh.members[i+1:]...)
			break
		}
	}
	if len(hh.members) == 0 {
		delete(p.households, hh.id)
	}
}

// kill removes a person permanently, fixing spouse pointers.
func (p *population) kill(per *person) {
	if sp := p.persons[per.spouse]; sp != nil {
		sp.spouse = 0
	}
	p.removeFromHousehold(per)
	delete(p.persons, per.id)
}

// emigrateHousehold removes a household and all its members.
func (p *population) emigrateHousehold(hh *household) {
	for _, id := range append([]int(nil), hh.members...) {
		per := p.persons[id]
		if per == nil {
			continue
		}
		if sp := p.persons[per.spouse]; sp != nil && sp.household != hh.id {
			sp.spouse = 0
		}
		delete(p.persons, id)
	}
	delete(p.households, hh.id)
}

func (p *population) newHousehold(head *person) *household {
	hh := &household{id: p.nextHH, address: p.pickAddress(), head: head.id}
	p.nextHH++
	p.households[hh.id] = hh
	p.addToHousehold(head, hh)
	return hh
}

// movePerson relocates a person into another household.
func (p *population) movePerson(per *person, to *household) {
	p.removeFromHousehold(per)
	p.addToHousehold(per, to)
}

// foundHousehold creates a complete family household (used for the initial
// population and, with migrant=true, for immigration: migrant households
// were mostly born outside the district).
func (p *population) foundHousehold(year int, migrant bool) *household {
	surname := p.pickSurname()
	localProb := 0.75
	if migrant {
		localProb = 0.15
	}
	headAge := 23 + p.rng.Intn(34) // 23-56
	head := p.addPerson(&person{
		sex:        census.SexMale,
		birthYear:  year - headAge,
		firstName:  p.pickFirstName(census.SexMale),
		surname:    surname,
		birthplace: p.pickBirthplace(p.chance(localProb)),
	})
	head.occupation = p.occupationFor(head.sex, headAge)
	hh := p.newHousehold(head)

	var wife *person
	if p.chance(0.85) {
		wifeAge := headAge - p.rng.Intn(7)
		if wifeAge < 18 {
			wifeAge = 18
		}
		wife = p.addPerson(&person{
			sex:        census.SexFemale,
			birthYear:  year - wifeAge,
			firstName:  p.pickFirstName(census.SexFemale),
			surname:    surname,
			spouse:     head.id,
			birthplace: p.pickBirthplace(p.chance(localProb)),
		})
		head.spouse = wife.id
		wife.occupation = p.occupationFor(wife.sex, wifeAge)
		p.addToHousehold(wife, hh)

		// Children: 0-6, ages bounded by the mother's fertile window.
		maxChildAge := wifeAge - 19
		if maxChildAge > 24 {
			maxChildAge = 24
		}
		if maxChildAge >= 0 {
			n := p.poisson(3.2)
			if n > 8 {
				n = 8
			}
			for c := 0; c < n; c++ {
				childAge := p.rng.Intn(maxChildAge + 1)
				sex := census.SexMale
				if p.chance(0.5) {
					sex = census.SexFemale
				}
				child := p.addPerson(&person{
					sex:       sex,
					birthYear: year - childAge,
					surname:   surname,
					mother:    wife.id,
					father:    head.id,
					// Young children of migrants were often born before
					// the move.
					birthplace: p.pickBirthplace(p.chance(localProb + 0.15)),
				})
				child.firstName = p.childName(sex, head, wife)
				child.occupation = p.occupationFor(sex, childAge)
				p.addToHousehold(child, hh)
			}
		}
	}

	// Occasionally an extra member: widowed parent, lodger or servant.
	if p.chance(0.22) {
		switch p.rng.Intn(3) {
		case 0: // widowed mother of the head
			age := headAge + 24 + p.rng.Intn(8)
			par := p.addPerson(&person{
				sex:        census.SexFemale,
				birthYear:  year - age,
				firstName:  p.pickFirstName(census.SexFemale),
				surname:    surname,
				birthplace: p.pickBirthplace(p.chance(localProb)),
			})
			head.mother = par.id
			par.occupation = ""
			p.addToHousehold(par, hh)
		case 1: // lodger
			age := 18 + p.rng.Intn(40)
			sex := census.SexMale
			if p.chance(0.35) {
				sex = census.SexFemale
			}
			lod := p.addPerson(&person{
				sex:        sex,
				birthYear:  year - age,
				firstName:  p.pickFirstName(sex),
				surname:    p.pickSurname(),
				birthplace: p.pickBirthplace(p.chance(0.5)),
			})
			lod.occupation = p.occupationFor(sex, age)
			p.addToHousehold(lod, hh)
		default: // young domestic servant
			age := 14 + p.rng.Intn(12)
			srv := p.addPerson(&person{
				sex:        census.SexFemale,
				birthYear:  year - age,
				firstName:  p.pickFirstName(census.SexFemale),
				surname:    p.pickSurname(),
				occupation: "domestic servant",
				birthplace: p.pickBirthplace(p.chance(0.5)),
			})
			p.addToHousehold(srv, hh)
		}
	}
	return hh
}

// childName picks a newborn's first name, sometimes inheriting the
// same-sex parent's name (a major source of ambiguity in real census data).
func (p *population) childName(sex census.Sex, father, mother *person) string {
	if p.chance(p.cfg.Rates.NamedAfterParent) {
		if sex == census.SexMale && father != nil {
			return father.firstName
		}
		if sex == census.SexFemale && mother != nil {
			return mother.firstName
		}
	}
	return p.pickFirstName(sex)
}

// --- decade transition ---

// advance evolves the population from one census year to the next. Every
// step is run through step so that, with debugChecks enabled, the mutual
// person/household bookkeeping is validated after each mutation pass.
//
// Note the ordering contract: the second succeedHeads is the LAST head
// repair. The steps after it (pruneEmptyHouseholds, applyImmigration) must
// each preserve the head-membership invariant on their own — pruning only
// deletes (now-unreachable) empty households, and immigration only founds
// fresh households whose head is added through addToHousehold.
func (p *population) advance(fromYear, toYear int) {
	p.step("applyMortality", func() { p.applyMortality(toYear) })
	p.step("succeedHeads", func() { p.succeedHeads(toYear) })
	p.step("applyMarriages", func() { p.applyMarriages(toYear) })
	p.step("applyBirths", func() { p.applyBirths(fromYear, toYear) })
	p.step("applySplits", func() { p.applySplits(toYear) })
	p.step("applyWidowMerges", func() { p.applyWidowMerges(toYear) })
	p.step("applyLodgerTurnover", func() { p.applyLodgerTurnover(toYear) })
	p.step("applyEmigration", func() { p.applyEmigration() })
	p.step("applyMovesAndOccupations", func() { p.applyMovesAndOccupations(toYear) })
	// Marriages and splits can leave a household whose head moved away;
	// repair heads once more after all moves.
	p.step("succeedHeads#2", func() { p.succeedHeads(toYear) })
	p.step("pruneEmptyHouseholds", func() { p.pruneEmptyHouseholds() })
	p.step("applyImmigration", func() { p.applyImmigration(toYear) })
	if debugChecks {
		if err := p.checkConsistency(true); err != nil {
			panic("synth: after advance to " + itoa(toYear) + ": " + err.Error())
		}
	}
}

// mortality probability per decade by age at the end of the decade.
func (p *population) mortalityProb(age int) float64 {
	r := p.cfg.Rates
	switch {
	case age < 10:
		return r.MortalityChild
	case age < 40:
		return r.MortalityAdult
	case age < 60:
		return r.MortalityMiddle
	case age < 75:
		return r.MortalityOld
	default:
		return r.MortalityAged
	}
}

func (p *population) applyMortality(toYear int) {
	for _, id := range p.personIDs() {
		per := p.persons[id]
		if per == nil {
			continue
		}
		if p.chance(p.mortalityProb(toYear - per.birthYear)) {
			p.kill(per)
		}
	}
}

// succeedHeads repairs households whose head died: the widowed spouse, or
// the eldest adult, takes over. Households reduced to young children are
// dissolved into other households (the members become boarders).
func (p *population) succeedHeads(toYear int) {
	hhIDs := p.householdIDs()
	for _, hid := range hhIDs {
		hh := p.households[hid]
		if hh == nil {
			continue // merged away or emptied earlier in this pass
		}
		// The head must be alive and actually listed in members. Checking
		// membership (not person.household) means the guard tests exactly
		// the invariant the recorder relies on, so no bookkeeping state can
		// slip past it.
		if p.persons[hh.head] != nil && hh.hasMember(hh.head) {
			continue
		}
		// Pick a successor: eldest member of age >= 16, preferring the
		// late head's spouse implicitly through age.
		best := 0
		bestAge := -1
		for _, mid := range hh.members {
			m := p.persons[mid]
			if m == nil {
				continue
			}
			if age := toYear - m.birthYear; age >= 16 && age > bestAge {
				best, bestAge = mid, age
			}
		}
		if best != 0 {
			hh.head = best
			continue
		}
		// Orphan household: relocate the children elsewhere. Moving (or
		// killing) the last member deletes the household itself.
		target := p.anyOtherHousehold(hid)
		for _, mid := range append([]int(nil), hh.members...) {
			m := p.persons[mid]
			if m == nil {
				continue
			}
			if target != nil {
				p.movePerson(m, target)
			} else {
				p.kill(m)
			}
		}
	}
}

// anyOtherHousehold returns a pseudo-random household other than the given
// one, or nil if none exists.
func (p *population) anyOtherHousehold(exclude int) *household {
	ids := p.householdIDs()
	if len(ids) == 0 {
		return nil
	}
	start := p.rng.Intn(len(ids))
	for i := 0; i < len(ids); i++ {
		id := ids[(start+i)%len(ids)]
		if id != exclude {
			return p.households[id]
		}
	}
	return nil
}

func (p *population) applyMarriages(toYear int) {
	var grooms, brides []*person
	for _, id := range p.personIDs() {
		per := p.persons[id]
		if per == nil || per.spouse != 0 {
			continue
		}
		age := toYear - per.birthYear
		if age < 19 || age > 45 {
			continue
		}
		if !p.chance(p.cfg.Rates.Marriage) {
			continue
		}
		if per.sex == census.SexMale {
			grooms = append(grooms, per)
		} else {
			brides = append(brides, per)
		}
	}
	p.rng.Shuffle(len(grooms), func(i, j int) { grooms[i], grooms[j] = grooms[j], grooms[i] })
	p.rng.Shuffle(len(brides), func(i, j int) { brides[i], brides[j] = brides[j], brides[i] })
	n := len(grooms)
	if len(brides) < n {
		n = len(brides)
	}
	for i := 0; i < n; i++ {
		g, b := grooms[i], brides[i]
		if g.household == b.household { // avoid within-household marriages
			continue
		}
		ageDiff := (toYear - g.birthYear) - (toYear - b.birthYear)
		if ageDiff < -10 || ageDiff > 15 {
			continue
		}
		g.spouse, b.spouse = b.id, g.id
		b.surname = g.surname // the bride takes the groom's surname
		if p.chance(p.cfg.Rates.MarriageJoinParents) {
			// The couple stays in the groom's household.
			if hh := p.households[g.household]; hh != nil {
				p.movePerson(b, hh)
				continue
			}
		}
		// Found a new household.
		p.removeFromHousehold(g)
		hh := p.newHousehold(g)
		p.movePerson(b, hh)
		g.occupation = p.occupationFor(g.sex, toYear-g.birthYear)
	}
}

func (p *population) applyBirths(fromYear, toYear int) {
	for _, id := range p.personIDs() {
		mother := p.persons[id]
		if mother == nil || mother.sex != census.SexFemale || mother.spouse == 0 {
			continue
		}
		father := p.persons[mother.spouse]
		if father == nil || father.household != mother.household {
			continue
		}
		// Fertile share of the decade: mother aged 18-44.
		fertileYears := 0
		for y := fromYear + 1; y <= toYear; y++ {
			if age := y - mother.birthYear; age >= 18 && age <= 44 {
				fertileYears++
			}
		}
		if fertileYears == 0 {
			continue
		}
		n := p.poisson(p.cfg.Rates.BirthsPerDecade * float64(fertileYears) / 10.0)
		hh := p.households[mother.household]
		if hh == nil {
			continue
		}
		for c := 0; c < n; c++ {
			birthYear := fromYear + 1 + p.rng.Intn(toYear-fromYear)
			if age := birthYear - mother.birthYear; age < 17 || age > 45 {
				continue
			}
			sex := census.SexMale
			if p.chance(0.5) {
				sex = census.SexFemale
			}
			child := p.addPerson(&person{
				sex:        sex,
				birthYear:  birthYear,
				surname:    father.surname,
				mother:     mother.id,
				father:     father.id,
				birthplace: p.pickBirthplace(true), // born in the district
			})
			child.firstName = p.childName(sex, father, mother)
			child.occupation = p.occupationFor(sex, toYear-birthYear)
			p.addToHousehold(child, hh)
		}
	}
}

// applySplits lets large households shed a subfamily of at least two
// members into a new household (the paper's split pattern).
func (p *population) applySplits(toYear int) {
	for _, hid := range p.householdIDs() {
		hh := p.households[hid]
		if hh == nil || len(hh.members) < 6 || !p.chance(p.cfg.Rates.Split) {
			continue
		}
		// Move a subfamily of at least two members together: preferably a
		// married couple living in the household, otherwise the two eldest
		// non-head adults. Couples are never split apart.
		head := p.persons[hh.head]
		var adults []*person
		for _, mid := range hh.members {
			m := p.persons[mid]
			if m == nil || m.id == hh.head || (head != nil && m.id == head.spouse) {
				continue
			}
			if toYear-m.birthYear >= 17 {
				adults = append(adults, m)
			}
		}
		var movers []*person
		for _, a := range adults {
			if a.spouse == 0 {
				continue
			}
			if sp := p.persons[a.spouse]; sp != nil && sp.household == hh.id && sp.id != hh.head {
				movers = []*person{a, sp}
				break
			}
		}
		if movers == nil {
			var single []*person
			for _, a := range adults {
				if a.spouse == 0 {
					single = append(single, a)
				}
			}
			if len(single) < 2 {
				continue
			}
			sort.Slice(single, func(i, j int) bool { return single[i].birthYear < single[j].birthYear })
			movers = single[:2]
		}
		p.removeFromHousehold(movers[0])
		nh := p.newHousehold(movers[0])
		p.movePerson(movers[1], nh)
	}
}

// applyWidowMerges merges small widowed households into other households
// (the paper's merge pattern).
func (p *population) applyWidowMerges(toYear int) {
	for _, hid := range p.householdIDs() {
		hh := p.households[hid]
		if hh == nil || len(hh.members) == 0 || len(hh.members) > 2 {
			continue
		}
		head := p.persons[hh.head]
		if head == nil || head.spouse != 0 {
			continue
		}
		// Elderly widowed households merge most often; lone younger
		// households occasionally do too.
		prob := p.cfg.Rates.WidowMerge
		if toYear-head.birthYear < 55 {
			if len(hh.members) > 1 {
				continue
			}
			prob /= 2
		}
		if !p.chance(prob) {
			continue
		}
		// Prefer a household containing one of the widow's children.
		var target *household
		for _, id := range p.personIDs() {
			c := p.persons[id]
			if c == nil || (c.mother != head.id && c.father != head.id) {
				continue
			}
			if c.household != hid {
				target = p.households[c.household]
				break
			}
		}
		if target == nil {
			target = p.anyOtherHousehold(hid)
		}
		if target == nil {
			continue
		}
		// Moving the last member out deletes the household itself.
		for _, mid := range append([]int(nil), hh.members...) {
			if m := p.persons[mid]; m != nil {
				p.movePerson(m, target)
			}
		}
	}
}

// applyLodgerTurnover moves unrelated members (lodgers, servants) between
// households, a frequent source of the paper's move pattern.
func (p *population) applyLodgerTurnover(toYear int) {
	for _, id := range p.personIDs() {
		per := p.persons[id]
		if per == nil || per.spouse != 0 {
			continue
		}
		hh := p.households[per.household]
		if hh == nil || hh.head == per.id {
			continue
		}
		head := p.persons[hh.head]
		if head == nil || p.related(per, head) {
			continue
		}
		if toYear-per.birthYear < 15 || !p.chance(p.cfg.Rates.LodgerTurnover) {
			continue
		}
		if p.chance(0.3) {
			// The lodger founds their own household.
			p.removeFromHousehold(per)
			p.newHousehold(per)
		} else if target := p.anyOtherHousehold(per.household); target != nil {
			p.movePerson(per, target)
		}
	}
}

// related reports whether two persons share a direct family pointer.
func (p *population) related(a, b *person) bool {
	if a.spouse == b.id || b.spouse == a.id {
		return true
	}
	if a.mother == b.id || a.father == b.id || b.mother == a.id || b.father == a.id {
		return true
	}
	if a.mother != 0 && (a.mother == b.mother || a.mother == b.father) {
		return true
	}
	if a.father != 0 && (a.father == b.father || a.father == b.mother) {
		return true
	}
	return false
}

func (p *population) applyEmigration() {
	for _, hid := range p.householdIDs() {
		hh := p.households[hid]
		if hh == nil {
			continue
		}
		if p.chance(p.cfg.Rates.HouseholdEmigration) {
			p.emigrateHousehold(hh)
		}
	}
}

func (p *population) applyMovesAndOccupations(toYear int) {
	for _, hid := range p.householdIDs() {
		hh := p.households[hid]
		if hh == nil {
			continue
		}
		if p.chance(p.cfg.Rates.AddressMove) {
			hh.address = p.pickAddress()
		} else if p.chance(p.cfg.Rates.Renumber) {
			// Street re-enumeration: the number changes, the street stays.
			if i := indexByte(hh.address, ' '); i > 0 {
				hh.address = itoa(1+p.rng.Intn(120)) + hh.address[i:]
			}
		}
	}
	for _, id := range p.personIDs() {
		per := p.persons[id]
		if per == nil {
			continue
		}
		age := toYear - per.birthYear
		// Children grow into work; adults occasionally change occupation.
		if per.occupation == "" || per.occupation == "scholar" ||
			age < 18 || p.chance(p.cfg.Rates.OccupationChange) {
			per.occupation = p.occupationFor(per.sex, age)
		}
	}
}

// pruneEmptyHouseholds is a backstop: removeFromHousehold already deletes a
// household the moment it empties, so this should find nothing. It runs
// after the final head repair and must therefore never mutate a non-empty
// household.
func (p *population) pruneEmptyHouseholds() {
	for _, hid := range p.householdIDs() {
		if hh := p.households[hid]; hh != nil && len(hh.members) == 0 {
			delete(p.households, hid)
		}
	}
}

// applyImmigration founds new households until the scaled target for the
// census year is reached.
func (p *population) applyImmigration(toYear int) {
	target := p.cfg.target(toYear)
	for len(p.households) < target {
		p.foundHousehold(toYear, true)
	}
}

// indexByte returns the index of c in s, or -1.
func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// itoa converts a non-negative int to decimal without strconv.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
