// Package experiments regenerates every table and figure of the evaluation
// section of Christen et al. (EDBT 2017) on synthetic Rawtenstall-profile
// census data. It is shared by cmd/benchall and the repository's top-level
// benchmarks.
//
// Absolute numbers differ from the paper (the data is simulated and the
// ground truth is complete rather than a curated reference subset); the
// reproduced object is each table's shape: which configuration wins, by
// roughly what margin, and where the knees are.
package experiments

import (
	"context"
	"fmt"

	"censuslink/internal/baseline/collective"
	"censuslink/internal/baseline/graphsim"
	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/report"
	"censuslink/internal/synth"
)

// Options configures an experiment environment.
type Options struct {
	// Scale multiplies the paper-sized population (1.0 = Table 1
	// magnitudes, ~17k-31k records per census).
	Scale float64
	// Seed drives the synthetic data generation.
	Seed int64
	// Workers bounds linkage parallelism (<= 0: GOMAXPROCS).
	Workers int
	// FullTruth evaluates against the complete ground truth instead of the
	// paper's protocol. By default evaluation is restricted to matched
	// households, mirroring the paper's manually linked reference mapping
	// (1,250 matched households): links attached to households without any
	// true match are not counted.
	FullTruth bool
	// Obs, when non-nil, collects stage timings and per-iteration counters
	// across every linkage run the environment performs (the iterations of
	// all runs accumulate on one report, each tagged with its δ).
	Obs *obs.Stats
	// Ctx, when non-nil, bounds every linkage and evolution run the
	// environment performs: cancelling it aborts the experiment suite at
	// the next pipeline checkpoint (see linkage.LinkContext).
	Ctx context.Context
	// Engine selects the comparison path for every linkage run the
	// environment performs (zero value: compiled). Results are identical
	// either way; the naive engine exists for differential testing and
	// speedup measurements.
	Engine linkage.EngineKind
}

// DefaultOptions runs at 10% of the paper's scale — large enough for stable
// statistics, small enough for interactive runs.
func DefaultOptions() Options {
	return Options{Scale: 0.10, Seed: 1871}
}

// Quality pairs the record- and group-mapping metrics of one linkage run.
type Quality struct {
	Record, Group evaluate.Metrics
}

// Env is a lazily evaluated experiment environment: one generated census
// series plus cached linkage results for the default configuration.
type Env struct {
	Opts   Options
	Series *census.Series

	defaultResults map[int]*linkage.Result // keyed by the older census year
}

// NewEnv generates the synthetic series for the given options.
func NewEnv(opts Options) (*Env, error) {
	cfg := synth.DefaultConfig()
	cfg.Scale = opts.Scale
	cfg.Seed = opts.Seed
	series, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Env{Opts: opts, Series: series, defaultResults: make(map[int]*linkage.Result)}, nil
}

// evalPair returns the evaluation pair used throughout Section 5.2/5.3:
// the 1871 and 1881 censuses.
func (e *Env) evalPair() (*census.Dataset, *census.Dataset) {
	return e.Series.Dataset(1871), e.Series.Dataset(1881)
}

// baseConfig is the paper's best configuration with the environment's
// worker setting applied.
func (e *Env) baseConfig() linkage.Config {
	cfg := linkage.DefaultConfig()
	cfg.Workers = e.Opts.Workers
	cfg.Obs = e.Opts.Obs
	cfg.Engine = e.Opts.Engine
	return cfg
}

// linkCtx is the context bounding the environment's pipeline runs.
func (e *Env) linkCtx() context.Context {
	if e.Opts.Ctx != nil {
		return e.Opts.Ctx
	}
	return context.Background()
}

// defaultResult links one successive pair with the default configuration,
// caching the result.
func (e *Env) defaultResult(oldYear int) (*linkage.Result, error) {
	if res, ok := e.defaultResults[oldYear]; ok {
		return res, nil
	}
	old := e.Series.Dataset(oldYear)
	new := e.Series.Dataset(oldYear + 10)
	if old == nil || new == nil {
		return nil, fmt.Errorf("experiments: no census pair starting %d", oldYear)
	}
	res, err := linkage.LinkContext(e.linkCtx(), old, new, e.baseConfig())
	if err != nil {
		return nil, err
	}
	e.defaultResults[oldYear] = res
	return res, nil
}

// quality evaluates a result against the synthetic ground truth, either in
// full or restricted to matched households (the paper's protocol).
func (e *Env) quality(res *linkage.Result, old, new *census.Dataset) Quality {
	if e.Opts.FullTruth {
		rm, gm := evaluate.EvaluateResult(res, old, new)
		return Quality{Record: rm, Group: gm}
	}
	sample := evaluate.MatchedHouseholds(old, new)
	recTruth := evaluate.RestrictRecordTruth(evaluate.TrueRecordMapping(old, new), old, sample)
	grpTruth := evaluate.RestrictGroupTruth(evaluate.TrueGroupMapping(old, new), sample)
	return Quality{
		Record: evaluate.RecordMetrics(evaluate.RestrictRecordLinks(res.RecordLinks, old, sample), recTruth),
		Group:  evaluate.GroupMetrics(evaluate.RestrictGroupLinks(res.GroupLinks, sample), grpTruth),
	}
}

// --- Table 1 ---

// Table1 reports the dataset overview: records, households, unique
// first-name+surname combinations and missing-value ratio per census.
func (e *Env) Table1() *report.Table {
	t := &report.Table{
		Title:  "Table 1: overview of the (synthetic) census datasets",
		Header: []string{"t_i", "|R|", "|G|", "|fn+sn|", "ratio_mv", "mean |g|"},
	}
	for _, d := range e.Series.Datasets {
		s := d.ComputeStats()
		t.AddRow(report.I(s.Year), report.I(s.NumRecords), report.I(s.NumHouseholds),
			report.I(s.UniqueNames), report.Pct(s.MissingRatio)+"%", report.F(s.MeanMembers, 2))
	}
	return t
}

// --- Table 2 ---

// Table2 prints the attribute/matcher/weight configuration of ω1 and ω2.
func (e *Env) Table2() *report.Table {
	t := &report.Table{
		Title:  "Table 2: attribute matchers and weighting vectors",
		Header: []string{"Attribute", "Matching method", "w1", "w2"},
	}
	w1 := linkage.OmegaOne(0)
	w2 := linkage.OmegaTwo(0)
	for i, m := range w1.Matchers {
		method := "q-gram"
		if m.Attr == census.AttrSex {
			method = "exact"
		}
		t.AddRow(m.Attr.String(), method,
			report.F(m.Weight, 1), report.F(w2.Matchers[i].Weight, 1))
	}
	return t
}

// --- Table 3 ---

// Table3Data holds quality per weighting scheme and δ_low.
type Table3Data struct {
	DeltaLows []float64
	Omega1    map[float64]Quality
	Omega2    map[float64]Quality
}

// Table3 evaluates the pre-matching configuration: ω1 vs ω2 across four
// lower threshold bounds δ_low, with δ_high=0.7 and Δ=0.05.
func (e *Env) Table3() (*report.Table, *Table3Data, error) {
	old, new := e.evalPair()
	data := &Table3Data{
		DeltaLows: []float64{0.40, 0.45, 0.50, 0.55},
		Omega1:    make(map[float64]Quality),
		Omega2:    make(map[float64]Quality),
	}
	for _, scheme := range []struct {
		name string
		sim  linkage.SimFunc
		out  map[float64]Quality
	}{
		{"omega1", linkage.OmegaOne(0.7), data.Omega1},
		{"omega2", linkage.OmegaTwo(0.7), data.Omega2},
	} {
		for _, dl := range data.DeltaLows {
			cfg := e.baseConfig()
			cfg.Sim = scheme.sim
			cfg.DeltaLow = dl
			res, err := linkage.LinkContext(e.linkCtx(), old, new, cfg)
			if err != nil {
				return nil, nil, err
			}
			scheme.out[dl] = e.quality(res, old, new)
		}
	}

	t := &report.Table{
		Title: "Table 3: mapping quality for weighting vectors and delta_low",
		Header: []string{"mapping", "metric",
			"w1/0.40", "w1/0.45", "w1/0.50", "w1/0.55",
			"w2/0.40", "w2/0.45", "w2/0.50", "w2/0.55"},
	}
	addRows := func(mapping string, get func(Quality) evaluate.Metrics) {
		rows := [][2]string{{"Precision (%)", "p"}, {"Recall (%)", "r"}, {"F-measure (%)", "f"}}
		for _, row := range rows {
			cells := []string{mapping, row[0]}
			for _, m := range []map[float64]Quality{data.Omega1, data.Omega2} {
				for _, dl := range data.DeltaLows {
					q := get(m[dl])
					switch row[1] {
					case "p":
						cells = append(cells, report.Pct(q.Precision))
					case "r":
						cells = append(cells, report.Pct(q.Recall))
					default:
						cells = append(cells, report.Pct(q.F1))
					}
				}
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	addRows("group", func(q Quality) evaluate.Metrics { return q.Group })
	addRows("record", func(q Quality) evaluate.Metrics { return q.Record })
	return t, data, nil
}

// --- Table 4 ---

// Table4Data holds quality per (alpha, beta) group-selection weighting.
type Table4Data struct {
	Weights [][2]float64
	Results map[[2]float64]Quality
}

// Table4 evaluates the group-similarity weights (α, β) of Eq. 4.
func (e *Env) Table4() (*report.Table, *Table4Data, error) {
	old, new := e.evalPair()
	data := &Table4Data{
		Weights: [][2]float64{{1.0, 0.0}, {0.0, 1.0}, {0.5, 0.5}, {0.33, 0.33}, {0.2, 0.7}},
		Results: make(map[[2]float64]Quality),
	}
	for _, w := range data.Weights {
		cfg := e.baseConfig()
		cfg.Alpha, cfg.Beta = w[0], w[1]
		res, err := linkage.LinkContext(e.linkCtx(), old, new, cfg)
		if err != nil {
			return nil, nil, err
		}
		data.Results[w] = e.quality(res, old, new)
	}
	t := &report.Table{
		Title:  "Table 4: quality for group-selection weights (alpha, beta)",
		Header: []string{"mapping", "metric", "(1.0,0.0)", "(0.0,1.0)", "(0.5,0.5)", "(0.33,0.33)", "(0.2,0.7)"},
	}
	addRows := func(mapping string, get func(Quality) evaluate.Metrics) {
		metrics := []struct {
			label string
			pick  func(evaluate.Metrics) float64
		}{
			{"Precision (%)", func(m evaluate.Metrics) float64 { return m.Precision }},
			{"Recall (%)", func(m evaluate.Metrics) float64 { return m.Recall }},
			{"F-measure (%)", func(m evaluate.Metrics) float64 { return m.F1 }},
		}
		for _, mt := range metrics {
			cells := []string{mapping, mt.label}
			for _, w := range data.Weights {
				cells = append(cells, report.Pct(mt.pick(get(data.Results[w]))))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	addRows("group", func(q Quality) evaluate.Metrics { return q.Group })
	addRows("record", func(q Quality) evaluate.Metrics { return q.Record })
	return t, data, nil
}

// --- Table 5 ---

// Table5Data compares iterative and non-iterative linkage.
type Table5Data struct {
	Iterative, NonIterative Quality
}

// Table5 compares the iterative approach against a one-shot run with the
// fixed minimal threshold (δ_high = δ_low = 0.5).
func (e *Env) Table5() (*report.Table, *Table5Data, error) {
	old, new := e.evalPair()
	res, err := e.defaultResult(1871)
	if err != nil {
		return nil, nil, err
	}
	data := &Table5Data{Iterative: e.quality(res, old, new)}

	cfg := e.baseConfig()
	cfg.DeltaHigh, cfg.DeltaLow, cfg.DeltaStep = 0.5, 0.5, 0
	oneShot, err := linkage.LinkContext(e.linkCtx(), old, new, cfg)
	if err != nil {
		return nil, nil, err
	}
	data.NonIterative = e.quality(oneShot, old, new)

	t := &report.Table{
		Title:  "Table 5: iterative vs non-iterative linkage",
		Header: []string{"mapping", "metric", "non-iterative", "iterative"},
	}
	add := func(mapping string, a, b evaluate.Metrics) {
		t.AddRow(mapping, "Precision (%)", report.Pct(a.Precision), report.Pct(b.Precision))
		t.AddRow(mapping, "Recall (%)", report.Pct(a.Recall), report.Pct(b.Recall))
		t.AddRow(mapping, "F-measure (%)", report.Pct(a.F1), report.Pct(b.F1))
	}
	add("group", data.NonIterative.Group, data.Iterative.Group)
	add("record", data.NonIterative.Record, data.Iterative.Record)
	return t, data, nil
}

// --- Table 6 ---

// Table6Data compares the record mapping of the collective baseline (CL)
// against the iterative subgraph approach.
type Table6Data struct {
	CL, Ours evaluate.Metrics
}

// Table6 runs the collective linkage baseline.
func (e *Env) Table6() (*report.Table, *Table6Data, error) {
	old, new := e.evalPair()
	res, err := e.defaultResult(1871)
	if err != nil {
		return nil, nil, err
	}
	clCfg := collective.DefaultConfig()
	clCfg.Engine = e.Opts.Engine
	clLinks := collective.Link(old, new, clCfg)
	data := &Table6Data{
		CL:   e.quality(&linkage.Result{RecordLinks: clLinks}, old, new).Record,
		Ours: e.quality(res, old, new).Record,
	}
	t := &report.Table{
		Title:  "Table 6: record mapping vs collective linkage (CL)",
		Header: []string{"metric", "CL", "iter-sub"},
	}
	t.AddRow("Precision (%)", report.Pct(data.CL.Precision), report.Pct(data.Ours.Precision))
	t.AddRow("Recall (%)", report.Pct(data.CL.Recall), report.Pct(data.Ours.Recall))
	t.AddRow("F-measure (%)", report.Pct(data.CL.F1), report.Pct(data.Ours.F1))
	return t, data, nil
}

// --- Table 7 ---

// Table7Data compares the group mapping of GraphSim against ours.
type Table7Data struct {
	GraphSim, Ours evaluate.Metrics
}

// Table7 runs the GraphSim household-linkage baseline.
func (e *Env) Table7() (*report.Table, *Table7Data, error) {
	old, new := e.evalPair()
	res, err := e.defaultResult(1871)
	if err != nil {
		return nil, nil, err
	}
	gs := graphsim.Link(old, new, graphsim.DefaultConfig())
	data := &Table7Data{
		GraphSim: e.quality(&linkage.Result{RecordLinks: gs.RecordLinks, GroupLinks: gs.GroupLinks}, old, new).Group,
		Ours:     e.quality(res, old, new).Group,
	}
	t := &report.Table{
		Title:  "Table 7: group mapping vs GraphSim household linkage",
		Header: []string{"metric", "GraphSim", "iter-sub"},
	}
	t.AddRow("Precision (%)", report.Pct(data.GraphSim.Precision), report.Pct(data.Ours.Precision))
	t.AddRow("Recall (%)", report.Pct(data.GraphSim.Recall), report.Pct(data.Ours.Recall))
	t.AddRow("F-measure (%)", report.Pct(data.GraphSim.F1), report.Pct(data.Ours.F1))
	return t, data, nil
}

// --- Figure 6 and Table 8 ---

// PairPatterns holds the evolution pattern counts of one census pair.
type PairPatterns struct {
	OldYear, NewYear int
	Counts           map[evolution.GroupPattern]int
}

// evolutionGraph links every successive pair with the default configuration
// and assembles the evolution graph.
func (e *Env) evolutionGraph() (*evolution.Graph, error) {
	var results []*linkage.Result
	for _, pair := range e.Series.Pairs() {
		res, err := e.defaultResult(pair[0].Year)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return evolution.BuildGraphContext(e.linkCtx(), e.Series, results, e.Opts.Obs)
}

// Figure6 counts the group evolution patterns for each successive census
// pair (the paper's Fig. 6 bar chart, rendered as a table).
func (e *Env) Figure6() (*report.Table, []PairPatterns, error) {
	g, err := e.evolutionGraph()
	if err != nil {
		return nil, nil, err
	}
	var data []PairPatterns
	t := &report.Table{
		Title:  "Figure 6: group evolution pattern counts per census pair",
		Header: []string{"pair", "preserve_G", "add_G", "remove_G", "move", "split", "merge"},
	}
	for i, counts := range g.PatternCounts() {
		a := g.Analyses[i]
		data = append(data, PairPatterns{OldYear: a.OldYear, NewYear: a.NewYear, Counts: counts})
		t.AddRow(fmt.Sprintf("%d-%d", a.OldYear, a.NewYear),
			report.I(counts[evolution.PatternPreserve]),
			report.I(counts[evolution.PatternAdd]),
			report.I(counts[evolution.PatternRemove]),
			report.I(counts[evolution.PatternMove]),
			report.I(counts[evolution.PatternSplit]),
			report.I(counts[evolution.PatternMerge]))
	}
	return t, data, nil
}

// Table8Data holds the preserve-chain counts per interval length and the
// largest connected component of the evolution graph.
type Table8Data struct {
	Chains           map[int]int // interval length in years -> count
	LargestComponent int
	ComponentShare   float64
}

// Table8 counts households preserved over 10..50-year intervals and the
// largest connected component of the evolution graph (Section 5.4).
func (e *Env) Table8() (*report.Table, *Table8Data, error) {
	g, err := e.evolutionGraph()
	if err != nil {
		return nil, nil, err
	}
	data := &Table8Data{Chains: make(map[int]int)}
	t := &report.Table{
		Title:  "Table 8: preserved households per time interval",
		Header: []string{"interval (years)", "|preserve_G|"},
	}
	for k := 1; k <= len(e.Series.Datasets)-1; k++ {
		n := g.PreserveChains(k)
		data.Chains[10*k] = n
		t.AddRow(report.I(10*k), report.I(n))
	}
	size, share := g.LargestComponentShare()
	data.LargestComponent = size
	data.ComponentShare = share
	t.Note = fmt.Sprintf("largest connected component: %d household vertices (%.1f%% of all)",
		size, share*100)
	return t, data, nil
}
