package experiments

import "testing"

// TestBlockingComparisonLSHTradeoff is the acceptance gate of the MinHash/LSH
// blocking scheme: on the synthetic evaluation pair it must generate at
// least 5x fewer candidate pairs than the default phonetic passes while
// keeping at least 98% of their true-match coverage.
func TestBlockingComparisonLSHTradeoff(t *testing.T) {
	e := sharedEnv(t)
	tab, data, err := e.BlockingComparison()
	if err != nil {
		t.Fatal(err)
	}
	if data.TruePairs == 0 {
		t.Fatal("no ground truth in the synthetic series")
	}
	exact := data.Scheme("default")
	lsh := data.Scheme("lsh")
	if exact.Pairs == 0 || lsh.Pairs == 0 {
		t.Fatalf("missing scheme rows:\n%s", tab.String())
	}
	t.Logf("default: %d pairs, coverage %.4f; lsh: %d pairs, coverage %.4f (%.1fx reduction, %.4f relative recall)",
		exact.Pairs, exact.Coverage, lsh.Pairs, lsh.Coverage,
		float64(exact.Pairs)/float64(lsh.Pairs), lsh.Coverage/exact.Coverage)
	if ratio := float64(exact.Pairs) / float64(lsh.Pairs); ratio < 5 {
		t.Errorf("LSH pair reduction %.2fx, want >= 5x (default %d, lsh %d)", ratio, exact.Pairs, lsh.Pairs)
	}
	if rel := lsh.Coverage / exact.Coverage; rel < 0.98 {
		t.Errorf("LSH relative coverage %.4f, want >= 0.98 (default %.4f, lsh %.4f)",
			rel, exact.Coverage, lsh.Coverage)
	}
	// The union scheme can only add candidates and coverage on top of the
	// default passes.
	union := data.Scheme("lsh+default")
	if union.Pairs < exact.Pairs || union.Coverage < exact.Coverage {
		t.Errorf("lsh+default (%d pairs, %.4f coverage) below default (%d, %.4f)",
			union.Pairs, union.Coverage, exact.Pairs, exact.Coverage)
	}
}
