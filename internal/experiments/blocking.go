package experiments

import (
	"sort"

	"censuslink/internal/block"
	"censuslink/internal/census"
	"censuslink/internal/evaluate"
	"censuslink/internal/linkage"
	"censuslink/internal/report"
)

// BlockingSchemeStats measures one blocking scheme on the evaluation pair.
type BlockingSchemeStats struct {
	Name string
	// Pairs is the number of distinct candidate pairs the scheme generates.
	Pairs int
	// Coverage is the fraction of true record matches that survive blocking
	// (the ceiling on linkage recall under this scheme).
	Coverage float64
	// Reduction is 1 - Pairs/|R_i × R_{i+1}|, the paper's reduction ratio.
	Reduction float64
}

// BlockingComparisonData holds the recall-vs-candidate-count trade-off of
// every registered blocking scheme.
type BlockingComparisonData struct {
	CrossProduct float64
	TruePairs    int
	Schemes      []BlockingSchemeStats
}

// Scheme returns the stats of the named scheme, or a zero value.
func (d *BlockingComparisonData) Scheme(name string) BlockingSchemeStats {
	for _, s := range d.Schemes {
		if s.Name == name {
			return s
		}
	}
	return BlockingSchemeStats{}
}

// BlockingComparison measures every registered blocking scheme on the
// 1871/1881 evaluation pair: candidate pairs generated, reduction ratio
// against the cross product, and true-match coverage against the synthetic
// ground truth. This is the measured trade-off behind the LSH scheme: the
// banded MinHash passes must cut candidate pairs by several times while
// keeping ≥ 0.98 of the exact passes' true-match coverage (asserted by the
// experiments tests and tracked by the prematch_lsh_* bench-trajectory rows).
func (e *Env) BlockingComparison() (*report.Table, *BlockingComparisonData, error) {
	old, new := e.evalPair()
	truth := evaluate.TrueRecordMapping(old, new)
	data := &BlockingComparisonData{
		CrossProduct: float64(old.NumRecords()) * float64(new.NumRecords()),
		TruePairs:    len(truth),
	}
	names := linkage.BlockingNames()
	sort.Strings(names)
	for _, name := range names {
		strategies, err := linkage.ParseBlocking(name)
		if err != nil {
			return nil, nil, err
		}
		pairs, covered := 0, 0
		block.Candidates(old.Records(), old.Year, new.Records(), new.Year, strategies,
			func(o, n *census.Record) {
				pairs++
				if truth[linkage.Pair{Old: o.ID, New: n.ID}] {
					covered++
				}
			})
		coverage := 0.0
		if len(truth) > 0 {
			coverage = float64(covered) / float64(len(truth))
		}
		data.Schemes = append(data.Schemes, BlockingSchemeStats{
			Name:      name,
			Pairs:     pairs,
			Coverage:  coverage,
			Reduction: 1 - float64(pairs)/data.CrossProduct,
		})
	}

	t := &report.Table{
		Title:  "Blocking schemes: candidate pairs vs true-match coverage",
		Header: []string{"scheme", "pairs", "reduction", "coverage"},
	}
	for _, s := range data.Schemes {
		t.AddRow(s.Name, report.I(s.Pairs),
			report.Pct(s.Reduction)+"%", report.Pct(s.Coverage)+"%")
	}
	t.AddRow("cross product", report.I(int(data.CrossProduct)), "0.0%", "100.0%")
	t.Note = "coverage = true record matches surviving blocking (ceiling on linkage recall)"
	return t, data, nil
}
