package experiments

import (
	"context"
	"fmt"

	"censuslink/internal/baseline/collective"
	"censuslink/internal/baseline/temporal"
	"censuslink/internal/chart"
	"censuslink/internal/evolution"
	"censuslink/internal/linkage"
	"censuslink/internal/report"
)

// AblationData holds quality per algorithm variant.
type AblationData struct {
	Variants []string
	Results  map[string]Quality
}

// Ablation evaluates the design choices called out in DESIGN.md by
// switching each one off in isolation on the 1871/1881 pair:
//
//   - default          — the paper's full configuration
//   - one-shot         — no threshold relaxation (Table 5's baseline)
//   - direct-vertices  — subgraph vertices restricted to directly compared
//     pairs instead of the paper's cluster labels
//   - vertex-guards    — extra sex/similarity guards on transitive vertices
//   - no-remainder     — without the final Sim_func_rem pass
//   - no-structure     — group selection by record similarity alone
//     (α=1, β=0), ignoring edges and uniqueness
//   - optimal-remainder — Hungarian assignment instead of greedy matching
//     for the leftover records
//   - naive-engine     — interpreted comparison path instead of the
//     compiled engine (a no-op for quality: the rows must be identical to
//     "default" by construction)
func (e *Env) Ablation() (*report.Table, *AblationData, error) {
	old, new := e.evalPair()
	variants := []struct {
		name   string
		mutate func(*linkage.Config)
	}{
		{"default", func(*linkage.Config) {}},
		{"one-shot", func(c *linkage.Config) { c.DeltaHigh, c.DeltaLow, c.DeltaStep = 0.5, 0.5, 0 }},
		{"direct-vertices", func(c *linkage.Config) { c.DirectVerticesOnly = true }},
		{"vertex-guards", func(c *linkage.Config) { c.VertexGuards = true }},
		{"no-remainder", func(c *linkage.Config) { c.Remainder = c.Remainder.WithDelta(1.0) }},
		{"no-structure", func(c *linkage.Config) { c.Alpha, c.Beta = 1.0, 0.0 }},
		{"optimal-remainder", func(c *linkage.Config) { c.OptimalRemainder = true }},
		{"naive-engine", func(c *linkage.Config) { c.Engine = linkage.EngineNaive }},
	}
	data := &AblationData{Results: make(map[string]Quality)}
	t := &report.Table{
		Title:  "Ablation: design choices of the iterative subgraph linkage",
		Header: []string{"variant", "rec P", "rec R", "rec F", "grp P", "grp R", "grp F"},
	}
	for _, v := range variants {
		cfg := e.baseConfig()
		v.mutate(&cfg)
		res, err := linkage.LinkContext(e.linkCtx(), old, new, cfg)
		if err != nil {
			return nil, nil, err
		}
		q := e.quality(res, old, new)
		data.Variants = append(data.Variants, v.name)
		data.Results[v.name] = q
		t.AddRow(v.name,
			report.Pct(q.Record.Precision), report.Pct(q.Record.Recall), report.Pct(q.Record.F1),
			report.Pct(q.Group.Precision), report.Pct(q.Group.Recall), report.Pct(q.Group.F1))
	}
	return t, data, nil
}

// ReductionRatio reports the blocking effectiveness on the evaluation pair:
// candidate pairs versus the full cross product, per strategy set.
func (e *Env) ReductionRatio() *report.Table {
	old, new := e.evalPair()
	total := float64(old.NumRecords()) * float64(new.NumRecords())
	t := &report.Table{
		Title:  "Blocking: candidate pairs vs cross product",
		Header: []string{"strategy", "pairs", "reduction"},
	}
	cfg := e.baseConfig()
	pre, err := linkage.PreMatchOpts(context.Background(), old.Records(), new.Records(),
		linkage.PreMatchOptions{
			Sim: cfg.Sim.WithDelta(cfg.DeltaHigh), OldYear: old.Year, NewYear: new.Year,
			Strategies: cfg.Strategies, Workers: cfg.Workers,
		})
	if err != nil { // background context, no faults: cannot happen
		panic(err)
	}
	t.AddRow("default multi-pass", report.I(pre.Compared),
		report.Pct(1-float64(pre.Compared)/total)+"%")
	t.AddRow("cross product", report.I(int(total)), "0.0%")
	return t
}

// BaselinesData compares the record mappings of all implemented record
// linkage methods.
type BaselinesData struct {
	CL, Temporal, Ours Quality
}

// Baselines extends Table 6 with the temporal-decay record linkage family
// the paper's related work discusses (Li et al., VLDB 2011): per-attribute
// change probabilities forgive disagreement on volatile attributes, but the
// method still reasons about records in isolation.
func (e *Env) Baselines() (*report.Table, *BaselinesData, error) {
	old, new := e.evalPair()
	res, err := e.defaultResult(1871)
	if err != nil {
		return nil, nil, err
	}
	cl := collective.Link(old, new, collective.DefaultConfig())
	td := temporal.Link(old, new, temporal.DefaultConfig())
	data := &BaselinesData{
		CL:       e.quality(&linkage.Result{RecordLinks: cl}, old, new),
		Temporal: e.quality(&linkage.Result{RecordLinks: td}, old, new),
		Ours:     e.quality(res, old, new),
	}
	t := &report.Table{
		Title:  "Record-mapping baselines: CL, temporal decay, iterative subgraph",
		Header: []string{"metric", "CL", "temporal-decay", "iter-sub"},
	}
	t.AddRow("Precision (%)", report.Pct(data.CL.Record.Precision),
		report.Pct(data.Temporal.Record.Precision), report.Pct(data.Ours.Record.Precision))
	t.AddRow("Recall (%)", report.Pct(data.CL.Record.Recall),
		report.Pct(data.Temporal.Record.Recall), report.Pct(data.Ours.Record.Recall))
	t.AddRow("F-measure (%)", report.Pct(data.CL.Record.F1),
		report.Pct(data.Temporal.Record.F1), report.Pct(data.Ours.Record.F1))
	return t, data, nil
}

// BirthplaceData compares the paper's ω2 against the birthplace-extended
// similarity function.
type BirthplaceData struct {
	Omega2, WithBirthplace Quality
}

// BirthplaceExtension evaluates the extension of Table 2 with the stable
// birthplace attribute (recorded by UK censuses from 1851 but unused in the
// paper's configuration).
func (e *Env) BirthplaceExtension() (*report.Table, *BirthplaceData, error) {
	old, new := e.evalPair()
	res, err := e.defaultResult(1871)
	if err != nil {
		return nil, nil, err
	}
	cfg := e.baseConfig()
	cfg.Sim = linkage.OmegaTwoBirthplace(cfg.DeltaHigh)
	cfg.Remainder = linkage.OmegaTwoBirthplace(cfg.Remainder.Delta)
	bp, err := linkage.LinkContext(e.linkCtx(), old, new, cfg)
	if err != nil {
		return nil, nil, err
	}
	data := &BirthplaceData{
		Omega2:         e.quality(res, old, new),
		WithBirthplace: e.quality(bp, old, new),
	}
	t := &report.Table{
		Title:  "Extension: adding the stable birthplace attribute to omega2",
		Header: []string{"mapping", "metric", "omega2", "omega2+birthplace"},
	}
	for _, m := range []struct {
		name string
		get  func(Quality) [3]float64
	}{
		{"group", func(q Quality) [3]float64 {
			return [3]float64{q.Group.Precision, q.Group.Recall, q.Group.F1}
		}},
		{"record", func(q Quality) [3]float64 {
			return [3]float64{q.Record.Precision, q.Record.Recall, q.Record.F1}
		}},
	} {
		labels := []string{"Precision (%)", "Recall (%)", "F-measure (%)"}
		a, b := m.get(data.Omega2), m.get(data.WithBirthplace)
		for i, label := range labels {
			t.AddRow(m.name, label, report.Pct(a[i]), report.Pct(b[i]))
		}
	}
	return t, data, nil
}

// PairQuality is the linkage quality of one successive census pair.
type PairQuality struct {
	OldYear, NewYear int
	Quality          Quality
}

// QualityByPair links every successive pair with the default configuration
// and reports per-decade quality — the view behind the late-period
// remove_G inflation discussed in EXPERIMENTS.md (linkage recall drifts as
// the district grows and name ambiguity rises).
func (e *Env) QualityByPair() (*report.Table, []PairQuality, error) {
	t := &report.Table{
		Title:  "Linkage quality per census pair (default configuration)",
		Header: []string{"pair", "rec P", "rec R", "rec F", "grp P", "grp R", "grp F"},
	}
	var out []PairQuality
	for _, pair := range e.Series.Pairs() {
		res, err := e.defaultResult(pair[0].Year)
		if err != nil {
			return nil, nil, err
		}
		q := e.quality(res, pair[0], pair[1])
		out = append(out, PairQuality{OldYear: pair[0].Year, NewYear: pair[1].Year, Quality: q})
		t.AddRow(
			report.I(pair[0].Year)+"-"+report.I(pair[1].Year),
			report.Pct(q.Record.Precision), report.Pct(q.Record.Recall), report.Pct(q.Record.F1),
			report.Pct(q.Group.Precision), report.Pct(q.Group.Recall), report.Pct(q.Group.F1))
	}
	return t, out, nil
}

// Figure6Chart renders the Figure 6 pattern counts as a grouped SVG bar
// chart, reproducing the paper's figure as a figure.
func (e *Env) Figure6Chart() (*chart.BarChart, error) {
	_, data, err := e.Figure6()
	if err != nil {
		return nil, err
	}
	c := &chart.BarChart{
		Title:  "Group evolution patterns per census pair",
		Series: []string{"preserve_G", "add_G", "remove_G", "move", "split", "merge"},
	}
	for _, p := range data {
		c.Groups = append(c.Groups, chart.BarGroup{
			Label: fmt.Sprintf("%d-%d", p.OldYear, p.NewYear),
			Values: []float64{
				float64(p.Counts[evolution.PatternPreserve]),
				float64(p.Counts[evolution.PatternAdd]),
				float64(p.Counts[evolution.PatternRemove]),
				float64(p.Counts[evolution.PatternMove]),
				float64(p.Counts[evolution.PatternSplit]),
				float64(p.Counts[evolution.PatternMerge]),
			},
		})
	}
	return c, nil
}
