package experiments

import (
	"strings"
	"sync"
	"testing"
)

// One shared environment for the whole test package: experiments are
// read-only over it apart from the memoised default results.
var (
	envOnce sync.Once
	testEnv *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv, envErr = NewEnv(Options{Scale: 0.05, Seed: 17})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

func TestTable1Shape(t *testing.T) {
	e := sharedEnv(t)
	tab := e.Table1()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 census years", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1851" || tab.Rows[5][0] != "1901" {
		t.Errorf("year range wrong: %v", tab.Rows)
	}
	out := tab.String()
	if !strings.Contains(out, "ratio_mv") {
		t.Errorf("render missing header: %s", out)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	e := sharedEnv(t)
	tab := e.Table2()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 attributes", len(tab.Rows))
	}
	// First name: q-gram, 0.2 under ω1 and 0.4 under ω2.
	if tab.Rows[0][1] != "q-gram" || tab.Rows[0][2] != "0.2" || tab.Rows[0][3] != "0.4" {
		t.Errorf("first row = %v", tab.Rows[0])
	}
	// Sex must be exact-matched.
	if tab.Rows[1][0] != "sex" || tab.Rows[1][1] != "exact" {
		t.Errorf("sex row = %v", tab.Rows[1])
	}
}

func TestTable5IterativeShape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: the iterative approach improves the record
	// mapping mainly through precision.
	if data.Iterative.Record.Precision <= data.NonIterative.Record.Precision {
		t.Errorf("iterative record precision %.3f should exceed non-iterative %.3f",
			data.Iterative.Record.Precision, data.NonIterative.Record.Precision)
	}
	if data.Iterative.Record.F1 <= data.NonIterative.Record.F1 {
		t.Errorf("iterative record F %.3f should exceed non-iterative %.3f",
			data.Iterative.Record.F1, data.NonIterative.Record.F1)
	}
	if data.Iterative.Group.F1 <= data.NonIterative.Group.F1 {
		t.Errorf("iterative group F %.3f should exceed non-iterative %.3f",
			data.Iterative.Group.F1, data.NonIterative.Group.F1)
	}
}

func TestTable6CLShape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.Table6()
	if err != nil {
		t.Fatal(err)
	}
	// Table 6 shape: CL has clearly lower recall and F-measure.
	if data.CL.Recall >= data.Ours.Recall {
		t.Errorf("CL recall %.3f should trail ours %.3f", data.CL.Recall, data.Ours.Recall)
	}
	if data.CL.F1 >= data.Ours.F1 {
		t.Errorf("CL F %.3f should trail ours %.3f", data.CL.F1, data.Ours.F1)
	}
}

func TestTable7GraphSimShape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.Table7()
	if err != nil {
		t.Fatal(err)
	}
	// Table 7 shape: GraphSim keeps high precision but loses much recall.
	if data.GraphSim.Precision < 0.85 {
		t.Errorf("GraphSim precision %.3f unexpectedly low", data.GraphSim.Precision)
	}
	if data.GraphSim.Recall >= data.Ours.Recall {
		t.Errorf("GraphSim recall %.3f should trail ours %.3f", data.GraphSim.Recall, data.Ours.Recall)
	}
	// The F ordering is seed-dependent on this synthetic data (see the
	// Table 7 discussion in EXPERIMENTS.md); only assert it stays within a
	// narrow band of ours.
	if data.GraphSim.F1 > data.Ours.F1+0.05 {
		t.Errorf("GraphSim F %.3f should not clearly beat ours %.3f", data.GraphSim.F1, data.Ours.F1)
	}
}

func TestFigure6Shape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("pairs = %d, want 5", len(data))
	}
	first, last := data[0], data[len(data)-1]
	if first.OldYear != 1851 || last.NewYear != 1901 {
		t.Errorf("pair years wrong: %+v", data)
	}
	for _, p := range data {
		for pattern, n := range p.Counts {
			if n < 0 {
				t.Errorf("%d-%d: negative count for %v", p.OldYear, p.NewYear, pattern)
			}
		}
	}
}

func TestTable8Shape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.Table8()
	if err != nil {
		t.Fatal(err)
	}
	// Preserve chains decay monotonically with interval length.
	prev := int(^uint(0) >> 1)
	for _, years := range []int{10, 20, 30, 40, 50} {
		n, ok := data.Chains[years]
		if !ok {
			t.Fatalf("missing interval %d", years)
		}
		if n > prev {
			t.Errorf("chains(%d) = %d exceeds shorter interval count %d", years, n, prev)
		}
		prev = n
	}
	if data.Chains[10] == 0 {
		t.Error("no preserved households at all")
	}
	if data.LargestComponent <= 0 || data.ComponentShare <= 0 || data.ComponentShare > 1 {
		t.Errorf("component stats wrong: %d / %.3f", data.LargestComponent, data.ComponentShare)
	}
}

func TestEnvCachesDefaultResults(t *testing.T) {
	e := sharedEnv(t)
	a, err := e.defaultResult(1871)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.defaultResult(1871)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("default result not cached")
	}
	if _, err := e.defaultResult(1901); err == nil {
		t.Error("pair beyond the series accepted")
	}
}

func TestAblationShape(t *testing.T) {
	e := sharedEnv(t)
	tab, data, err := e.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Variants) != 8 || len(tab.Rows) != 8 {
		t.Fatalf("variants = %v", data.Variants)
	}
	def := data.Results["default"]
	// The interpreted engine is an oracle, not a design choice: its row must
	// equal the compiled default exactly.
	if ne := data.Results["naive-engine"]; ne != def {
		t.Errorf("naive-engine quality %+v differs from default %+v", ne, def)
	}
	// The vertex guards variant must not collapse quality.
	if g := data.Results["vertex-guards"]; g.Record.F1 < def.Record.F1-0.08 {
		t.Errorf("vertex guards degraded F: %.3f vs default %.3f", g.Record.F1, def.Record.F1)
	}
	// Dropping the remainder pass must cost recall.
	if nr := data.Results["no-remainder"]; nr.Record.Recall >= def.Record.Recall {
		t.Errorf("no-remainder recall %.3f should trail default %.3f",
			nr.Record.Recall, def.Record.Recall)
	}
	for name, q := range data.Results {
		for _, m := range []float64{q.Record.Precision, q.Record.Recall, q.Group.Precision, q.Group.Recall} {
			if m < 0 || m > 1 {
				t.Errorf("%s: metric out of range: %+v", name, q)
			}
		}
	}
}

func TestReductionRatio(t *testing.T) {
	e := sharedEnv(t)
	tab := e.ReductionRatio()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if tab.Rows[0][2] == "0.0%" {
		t.Error("blocking should reduce the comparison space")
	}
}

func TestBaselinesShape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	// CL must trail the group-aware approach on recall (Table 6's shape).
	if data.CL.Record.Recall >= data.Ours.Record.Recall {
		t.Errorf("CL recall %.3f should trail ours %.3f",
			data.CL.Record.Recall, data.Ours.Record.Recall)
	}
	// The temporal-decay matcher is a competitive record linker on this
	// data (see EXPERIMENTS.md), but must stay in the same band — and it
	// produces no group mapping at all, which is the paper's contribution.
	if data.Temporal.Record.F1 < data.Ours.Record.F1-0.05 ||
		data.Temporal.Record.F1 > data.Ours.Record.F1+0.05 {
		t.Errorf("temporal F %.3f diverged from ours %.3f",
			data.Temporal.Record.F1, data.Ours.Record.F1)
	}
	if data.Temporal.Group.TP != 0 || data.Temporal.Group.FP != 0 {
		t.Errorf("temporal baseline should have no group links: %+v", data.Temporal.Group)
	}
}

func TestBirthplaceExtensionShape(t *testing.T) {
	e := sharedEnv(t)
	_, data, err := e.BirthplaceExtension()
	if err != nil {
		t.Fatal(err)
	}
	// A stable attribute must improve the record mapping.
	if data.WithBirthplace.Record.F1 <= data.Omega2.Record.F1 {
		t.Errorf("birthplace F %.3f should beat omega2 %.3f",
			data.WithBirthplace.Record.F1, data.Omega2.Record.F1)
	}
	if data.WithBirthplace.Record.Precision <= data.Omega2.Record.Precision {
		t.Errorf("birthplace precision %.3f should beat omega2 %.3f",
			data.WithBirthplace.Record.Precision, data.Omega2.Record.Precision)
	}
}

func TestQualityByPair(t *testing.T) {
	e := sharedEnv(t)
	tab, data, err := e.QualityByPair()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 || len(tab.Rows) != 5 {
		t.Fatalf("pairs = %d", len(data))
	}
	for _, pq := range data {
		if pq.Quality.Record.F1 <= 0 || pq.Quality.Record.F1 > 1 {
			t.Errorf("%d-%d: record F out of range: %v", pq.OldYear, pq.NewYear, pq.Quality.Record.F1)
		}
	}
}
