package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind()
	u.Add("a")
	u.Add("b")
	u.Add("a") // idempotent
	if u.Len() != 2 || u.NumSets() != 2 {
		t.Fatalf("Len=%d NumSets=%d", u.Len(), u.NumSets())
	}
	if u.Connected("a", "b") {
		t.Error("a and b should start disconnected")
	}
	if !u.Union("a", "b") {
		t.Error("first union should merge")
	}
	if u.Union("a", "b") {
		t.Error("second union should be a no-op")
	}
	if !u.Connected("a", "b") {
		t.Error("a and b should be connected")
	}
	if u.NumSets() != 1 {
		t.Errorf("NumSets = %d, want 1", u.NumSets())
	}
}

func TestFindAddsUnknownKeys(t *testing.T) {
	u := NewUnionFind()
	if root := u.Find("x"); root != "x" {
		t.Errorf("Find(x) = %q", root)
	}
	if u.Len() != 1 {
		t.Errorf("Len = %d", u.Len())
	}
}

func TestComponentsDeterministic(t *testing.T) {
	u := NewUnionFind()
	u.Union("c", "a")
	u.Union("b", "d")
	u.Add("e")
	comps := u.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	// Ordered by smallest element: [a c], [b d], [e].
	if comps[0][0] != "a" || comps[0][1] != "c" ||
		comps[1][0] != "b" || comps[1][1] != "d" || comps[2][0] != "e" {
		t.Errorf("components = %v", comps)
	}
}

func TestLabels(t *testing.T) {
	u := NewUnionFind()
	u.Union("r1", "r2")
	u.Union("r2", "r3")
	u.Add("r4")
	labels := u.Labels()
	if labels["r1"] != labels["r2"] || labels["r2"] != labels["r3"] {
		t.Errorf("connected keys got different labels: %v", labels)
	}
	if labels["r4"] == labels["r1"] {
		t.Errorf("disconnected keys share a label: %v", labels)
	}
}

func TestTransitiveClosure(t *testing.T) {
	// Chain of unions must produce one component.
	u := NewUnionFind()
	for i := 0; i < 100; i++ {
		u.Union(fmt.Sprintf("k%d", i), fmt.Sprintf("k%d", i+1))
	}
	if u.NumSets() != 1 {
		t.Errorf("NumSets = %d, want 1", u.NumSets())
	}
	if !u.Connected("k0", "k100") {
		t.Error("chain endpoints not connected")
	}
}

// TestUnionFindInvariants checks, under random unions, that NumSets matches
// the number of components and that component membership is an equivalence
// relation consistent with Find.
func TestUnionFindInvariants(t *testing.T) {
	prop := func(seed int64, nKeys uint8, nUnions uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nKeys%30) + 2
		u := NewUnionFind()
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
			u.Add(keys[i])
		}
		for i := 0; i < int(nUnions); i++ {
			u.Union(keys[rng.Intn(n)], keys[rng.Intn(n)])
		}
		comps := u.Components()
		if len(comps) != u.NumSets() {
			return false
		}
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, k := range c {
				if u.Find(k) != u.Find(c[0]) {
					return false
				}
			}
		}
		return total == u.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("rec_%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewUnionFind()
		for j := 0; j+1 < len(keys); j += 2 {
			u.Union(keys[j], keys[j+1])
		}
		u.Labels()
	}
}
