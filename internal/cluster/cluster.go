// Package cluster provides union-find based connected-component clustering,
// used by the pre-matching step to turn pairwise record links into cluster
// labels (the transitive closure of the match relation).
package cluster

import "sort"

// UnionFind is a disjoint-set forest over string keys with path compression
// and union by rank.
type UnionFind struct {
	parent map[string]string
	rank   map[string]int
	count  int
}

// NewUnionFind returns an empty union-find structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[string]string),
		rank:   make(map[string]int),
	}
}

// Add registers key as a singleton set if it is not present yet.
func (u *UnionFind) Add(key string) {
	if _, ok := u.parent[key]; !ok {
		u.parent[key] = key
		u.rank[key] = 0
		u.count++
	}
}

// Find returns the representative of key's set, adding key if necessary.
func (u *UnionFind) Find(key string) string {
	u.Add(key)
	root := key
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[key] != root {
		u.parent[key], key = root, u.parent[key]
	}
	return root
}

// Union merges the sets of a and b and reports whether a merge happened
// (false when they were already in the same set).
func (u *UnionFind) Union(a, b string) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b string) bool {
	return u.Find(a) == u.Find(b)
}

// Len returns the number of registered keys.
func (u *UnionFind) Len() int { return len(u.parent) }

// NumSets returns the current number of disjoint sets.
func (u *UnionFind) NumSets() int { return u.count }

// Components returns the disjoint sets as sorted slices, ordered by their
// smallest element, so the output is deterministic.
func (u *UnionFind) Components() [][]string {
	groups := make(map[string][]string)
	for key := range u.parent {
		root := u.Find(key)
		groups[root] = append(groups[root], key)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Labels assigns a dense integer label to every component (ordered as in
// Components) and returns the key→label map.
func (u *UnionFind) Labels() map[string]int {
	labels := make(map[string]int, len(u.parent))
	for i, comp := range u.Components() {
		for _, key := range comp {
			labels[key] = i
		}
	}
	return labels
}
