// Package paperexample builds the running example of Christen et al.
// (EDBT 2017), Figs. 1-4: two Rawtenstall-style census snapshots from 1871
// and 1881 with the Ashworth, Smith and Riley families.
//
// Between the two censuses: Alice Ashworth married Steve Smith and both
// moved into the new household c; John Riley died; Mary Smith was born; and
// a second, unrelated Ashworth family (household d) with the same first
// names moved into the district. Ages in household d are chosen so that,
// as in Fig. 4 of the paper, exactly one of its enriched edges (the spouse
// edge) is compatible with household a of 1871.
package paperexample

import "censuslink/internal/census"

// Old returns the 1871 dataset: household a (five members, ten enriched
// edges) and household b (three members).
func Old() *census.Dataset {
	d := census.NewDataset(1871)
	recs := []*census.Record{
		// Household a: the Ashworth family plus the lodger John Riley.
		{ID: "1871_1", HouseholdID: "1871_a", FirstName: "john", Surname: "ashworth", Sex: census.SexMale, Age: 39, Role: census.RoleHead, Address: "3 mill lane", Occupation: "weaver"},
		{ID: "1871_2", HouseholdID: "1871_a", FirstName: "elizabeth", Surname: "ashworth", Sex: census.SexFemale, Age: 37, Role: census.RoleWife, Address: "3 mill lane", Occupation: "winder"},
		{ID: "1871_3", HouseholdID: "1871_a", FirstName: "alice", Surname: "ashworth", Sex: census.SexFemale, Age: 8, Role: census.RoleDaughter, Address: "3 mill lane", Occupation: "scholar"},
		{ID: "1871_4", HouseholdID: "1871_a", FirstName: "william", Surname: "ashworth", Sex: census.SexMale, Age: 2, Role: census.RoleSon, Address: "3 mill lane"},
		{ID: "1871_5", HouseholdID: "1871_a", FirstName: "john", Surname: "riley", Sex: census.SexMale, Age: 71, Role: census.RoleLodger, Address: "3 mill lane", Occupation: "retired"},
		// Household b: the Smith family.
		{ID: "1871_6", HouseholdID: "1871_b", FirstName: "john", Surname: "smith", Sex: census.SexMale, Age: 44, Role: census.RoleHead, Address: "7 bury road", Occupation: "spinner"},
		{ID: "1871_7", HouseholdID: "1871_b", FirstName: "elizabeth", Surname: "smith", Sex: census.SexFemale, Age: 41, Role: census.RoleWife, Address: "7 bury road"},
		{ID: "1871_8", HouseholdID: "1871_b", FirstName: "steve", Surname: "smith", Sex: census.SexMale, Age: 17, Role: census.RoleSon, Address: "7 bury road", Occupation: "piecer"},
	}
	for _, r := range recs {
		if err := d.AddRecord(r); err != nil {
			panic(err)
		}
	}
	return d
}

// New returns the 1881 dataset: the continued households a and b, the newly
// formed household c (Steve and Alice Smith with newborn Mary) and the
// newly arrived household d (the second Ashworth family).
func New() *census.Dataset {
	d := census.NewDataset(1881)
	recs := []*census.Record{
		// Household a, ten years on; Alice has left, John Riley has died.
		{ID: "1881_1", HouseholdID: "1881_a", FirstName: "john", Surname: "ashworth", Sex: census.SexMale, Age: 49, Role: census.RoleHead, Address: "3 mill lane", Occupation: "weaver"},
		{ID: "1881_2", HouseholdID: "1881_a", FirstName: "elizabeth", Surname: "ashworth", Sex: census.SexFemale, Age: 47, Role: census.RoleWife, Address: "3 mill lane", Occupation: "winder"},
		{ID: "1881_3", HouseholdID: "1881_a", FirstName: "william", Surname: "ashworth", Sex: census.SexMale, Age: 12, Role: census.RoleSon, Address: "3 mill lane", Occupation: "scholar"},
		// Household b: the Smith parents.
		{ID: "1881_4", HouseholdID: "1881_b", FirstName: "john", Surname: "smith", Sex: census.SexMale, Age: 54, Role: census.RoleHead, Address: "7 bury road", Occupation: "spinner"},
		{ID: "1881_5", HouseholdID: "1881_b", FirstName: "elizabeth", Surname: "smith", Sex: census.SexFemale, Age: 51, Role: census.RoleWife, Address: "7 bury road"},
		// Household c: Steve married Alice; daughter Mary was born.
		{ID: "1881_6", HouseholdID: "1881_c", FirstName: "steve", Surname: "smith", Sex: census.SexMale, Age: 27, Role: census.RoleHead, Address: "2 hall street", Occupation: "spinner"},
		{ID: "1881_7", HouseholdID: "1881_c", FirstName: "alice", Surname: "smith", Sex: census.SexFemale, Age: 18, Role: census.RoleWife, Address: "2 hall street"},
		{ID: "1881_8", HouseholdID: "1881_c", FirstName: "mary", Surname: "smith", Sex: census.SexFemale, Age: 0, Role: census.RoleDaughter, Address: "2 hall street"},
		// Household d: an unrelated Ashworth family with the same first
		// names. The spouse age difference (2) matches household a of 1871,
		// but the parent-child differences (42 and 40 vs. 37 and 35) do not.
		{ID: "1881_9", HouseholdID: "1881_d", FirstName: "john", Surname: "ashworth", Sex: census.SexMale, Age: 52, Role: census.RoleHead, Address: "9 hall street", Occupation: "grocer"},
		{ID: "1881_10", HouseholdID: "1881_d", FirstName: "elizabeth", Surname: "ashworth", Sex: census.SexFemale, Age: 50, Role: census.RoleWife, Address: "9 hall street"},
		{ID: "1881_11", HouseholdID: "1881_d", FirstName: "william", Surname: "ashworth", Sex: census.SexMale, Age: 10, Role: census.RoleSon, Address: "9 hall street", Occupation: "scholar"},
	}
	for _, r := range recs {
		if err := d.AddRecord(r); err != nil {
			panic(err)
		}
	}
	return d
}

// TrueRecordMapping returns the seven person links of the running example
// (old record ID -> new record ID).
func TrueRecordMapping() map[string]string {
	return map[string]string{
		"1871_1": "1881_1", // John Ashworth
		"1871_2": "1881_2", // Elizabeth Ashworth
		"1871_3": "1881_7", // Alice Ashworth -> Alice Smith
		"1871_4": "1881_3", // William Ashworth
		"1871_6": "1881_4", // John Smith
		"1871_7": "1881_5", // Elizabeth Smith
		"1871_8": "1881_6", // Steve Smith
	}
}

// TrueGroupMapping returns the four household links of the running example.
func TrueGroupMapping() [][2]string {
	return [][2]string{
		{"1871_a", "1881_a"},
		{"1871_a", "1881_c"}, // Alice moved
		{"1871_b", "1881_b"},
		{"1871_b", "1881_c"}, // Steve moved
	}
}
