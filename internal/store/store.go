// Package store is the persistent, content-addressed snapshot store for
// linkage results. The paper's pipeline (Alg. 1) links each decade pair
// independently, which makes every pair's output a pure function of
// (configuration, old dataset, new dataset) — so it can be stored once and
// served forever. A snapshot file holds one linkage.Result (record links
// with provenance, group links, per-iteration stats) together with the
// content address that produced it; LinkSeriesOpts and the query server
// skip any pair whose address already has a trusted snapshot.
//
// Format: each snapshot is a two-line JSON-lines file. Line 1 is a
// self-describing header carrying the format name, format version, the
// three address hashes, the census years and a SHA-256 checksum of the
// payload; line 2 is the payload — the serialized result. Corrupt,
// truncated or version-mismatched snapshots are detected by the header and
// checksum and rejected with a *CorruptError, never misread.
//
// Durability and self-healing: the directory is the replication medium for
// a fleet of stateless linkservers, so the store defends it in depth.
// Writes go to an O_EXCL-named temp file that is fsynced before an atomic
// rename, and the directory is fsynced after, so a crash at any instant
// leaves either the old snapshot or the new one — never a half file under
// the final name. Writers serialize through a lock file with stale-lock
// takeover (see lock.go). A snapshot that fails its checksum or decode is
// quarantined — renamed to <name>.corrupt with a reason sidecar — exactly
// once, so a bad file is never re-parsed and never re-counted on later
// warm starts; format- or version-mismatched files are rejected but left
// in place, because they may belong to a replica running a newer build.
// I/O failures are classified transient or permanent (*IOError) and
// transient ones are retried with jittered exponential backoff. Verify and
// Repair scan the whole directory and report a typed summary.
//
// Chaos testing: the CENSUSLINK_STORE_CHAOS_SLOW environment variable
// (a time.Duration) stretches the window between a snapshot's payload
// write and its rename, so a kill -9 harness can reliably land inside an
// in-flight Save. It is read once at Open and costs nothing when unset.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/faultinject"
	"censuslink/internal/linkage"
)

// FormatName and FormatVersion identify the snapshot file format. A reader
// refuses any file whose header does not carry exactly this name and
// version — an old or future format is rejected, not guessed at.
const (
	FormatName    = "censuslink/snapshot"
	FormatVersion = 1
)

// corruptSuffix and reasonSuffix name a quarantined snapshot and its
// reason sidecar; tmpPrefix names in-flight writes.
const (
	corruptSuffix = ".corrupt"
	reasonSuffix  = ".reason"
	tmpPrefix     = ".tmp-snap-"
)

// ErrNotFound reports that no snapshot exists for the requested key.
var ErrNotFound = errors.New("store: snapshot not found")

// CorruptError reports a snapshot that exists but cannot be trusted: a
// damaged or truncated file, a checksum mismatch, a header for a different
// format version, or a payload that does not decode. The caller should
// recompute the pair and overwrite the snapshot. Quarantined reports
// whether the store moved the bad file aside (to <name>.corrupt) as part
// of rejecting it — when true, the next Load of the key is a clean
// ErrNotFound, not a repeat rejection.
type CorruptError struct {
	Path        string
	Reason      string
	Err         error // underlying parse/IO error, may be nil
	Quarantined bool
}

// Error renders the file and the rejection reason.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("store: %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("store: %s: %s", e.Path, e.Reason)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorruptSnapshot marks the error as a bad snapshot rather than a failing
// medium, so callers holding only the linkage.ResultStore interface can
// split corruption from I/O trouble via errors.As on the marker interface
// without importing this package.
func (e *CorruptError) IsCorruptSnapshot() bool { return true }

// Key is the content address of one snapshot: the linkage configuration
// fingerprint (linkage.Config.Fingerprint) and the content hashes of the
// two input datasets (census.Dataset.ContentHash). Any change to any of
// the three produces a different key, which is the whole invalidation
// story — snapshots are never updated in place, only superseded.
type Key struct {
	ConfigHash string
	OldHash    string
	NewHash    string
}

// addr returns the hex digest the snapshot file is named after.
func (k Key) addr() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s", k.ConfigHash, k.OldHash, k.NewHash)
	return hex.EncodeToString(h.Sum(nil))[:40]
}

// Header is the self-describing first line of a snapshot file.
type Header struct {
	Format        string `json:"format"`
	Version       int    `json:"version"`
	ConfigHash    string `json:"config_hash"`
	OldHash       string `json:"old_hash"`
	NewHash       string `json:"new_hash"`
	OldYear       int    `json:"old_year"`
	NewYear       int    `json:"new_year"`
	PayloadSHA256 string `json:"payload_sha256"`
	CreatedUnix   int64  `json:"created_unix"`
}

// Options tunes a store beyond its directory.
type Options struct {
	// Retry bounds the retries of transient I/O failures; the zero value
	// means DefaultRetry.
	Retry RetryPolicy
}

// Store is a directory of snapshot files shared by any number of reader
// and writer processes. Create with Open; it is safe for concurrent use
// (writes serialize on the lock file and land via atomic renames, reads
// never see partial files).
type Store struct {
	dir  string
	opts Options

	// slowSave is the chaos-testing write-window stretch (package doc).
	slowSave time.Duration

	tmpSeq       atomic.Uint64 // per-process unique temp names
	retries      atomic.Int64  // transient-failure backoff sleeps taken
	nQuarantined atomic.Int64  // snapshots moved aside by this process
}

// Open creates the directory if needed and returns the store with default
// options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open with explicit options.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if v := os.Getenv("CENSUSLINK_STORE_CHAOS_SLOW"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			s.slowSave = d
		}
	}
	return s, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// Retries returns how many transient-I/O backoff sleeps this process has
// taken against the store.
func (s *Store) Retries() int64 { return s.retries.Load() }

// Quarantined returns how many corrupt snapshots this process has moved
// aside.
func (s *Store) Quarantined() int64 { return s.nQuarantined.Load() }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, "snap_"+k.addr()+".jsonl")
}

// Ping probes the directory's availability with one cheap read, retrying
// transient failures. It is the health probe degraded-mode serving polls:
// nil means the medium answers, an *IOError means it does not.
func (s *Store) Ping() error {
	return s.retry("scan", s.dir, func() error {
		d, err := os.Open(s.dir)
		if err != nil {
			return err
		}
		_, rerr := d.Readdirnames(1)
		cerr := d.Close()
		if rerr == io.EOF {
			rerr = nil
		}
		if rerr != nil {
			return rerr
		}
		return cerr
	})
}

// Save writes the result for the key durably: the encoded snapshot goes to
// a fresh O_EXCL temp file which is fsynced, atomically renamed over any
// previous snapshot at the same address, and sealed with a directory
// fsync. Writers serialize on the store's lock file; transient I/O
// failures are retried under the store's policy. Faultinject points:
// store.lock.acquire, store.save.partialwrite, store.save.fsync,
// store.save.rename, store.save.dirsync.
func (s *Store) Save(k Key, oldYear, newYear int, res *linkage.Result) error {
	payload, err := json.Marshal(encodePayload(res))
	if err != nil {
		return fmt.Errorf("store: encode payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(Header{
		Format:        FormatName,
		Version:       FormatVersion,
		ConfigHash:    k.ConfigHash,
		OldHash:       k.OldHash,
		NewHash:       k.NewHash,
		OldYear:       oldYear,
		NewYear:       newYear,
		PayloadSHA256: hex.EncodeToString(sum[:]),
		CreatedUnix:   time.Now().Unix(),
	})
	if err != nil {
		return fmt.Errorf("store: encode header: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(hdr) + len(payload) + 2)
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(payload)
	buf.WriteByte('\n')
	final := s.path(k)
	return s.retry("write", final, func() error { return s.saveOnce(final, buf.Bytes()) })
}

// saveOnce is one locked, durable write attempt.
func (s *Store) saveOnce(final string, data []byte) error {
	lk, err := s.lock()
	if err != nil {
		return err
	}
	defer lk.unlock()
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%d-%d", tmpPrefix, os.Getpid(), s.tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if err := faultinject.Hit("store.save.partialwrite"); err != nil {
		_, _ = f.Write(data[:len(data)/2])
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if s.slowSave > 0 {
		time.Sleep(s.slowSave) // chaos window: payload written, not yet durable
	}
	if err := faultinject.Hit("store.save.fsync"); err != nil {
		f.Close()
		return err
	}
	// fsync before the rename: without it the rename can become durable
	// before the data, and a crash resurfaces as an empty or torn file
	// under the final name.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := faultinject.Hit("store.save.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := faultinject.Hit("store.save.dirsync"); err != nil {
		return err
	}
	return s.syncDir()
}

// syncDir fsyncs the store directory, making completed renames durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads, verifies and decodes the snapshot for the key. It returns
// ErrNotFound when no file exists, an *IOError when the medium fails (after
// transient retries), and a *CorruptError when the file cannot be trusted.
// A file rejected for bad bytes — truncation, checksum mismatch, payload
// that does not decode, wrong address — is quarantined as it is rejected;
// a file for a different format or version is rejected but left alone.
func (s *Store) Load(k Key) (*linkage.Result, error) {
	path := s.path(k)
	var data []byte
	err := s.retry("read", path, func() error {
		if err := faultinject.Hit("store.load.read"); err != nil {
			return err
		}
		var rerr error
		data, rerr = os.ReadFile(path)
		return rerr
	})
	if err != nil {
		if isNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	hdr, payload, cerr := split(path, data)
	if cerr != nil {
		return nil, s.quarantine(path, data, cerr)
	}
	if hdr.Format != FormatName {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unknown format %q", hdr.Format)}
	}
	if hdr.Version != FormatVersion {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("format version %d, this build reads only %d", hdr.Version, FormatVersion)}
	}
	// The file name is a truncated digest of the key; the full hashes in the
	// header are authoritative and must match what the caller asked for.
	if hdr.ConfigHash != k.ConfigHash || hdr.OldHash != k.OldHash || hdr.NewHash != k.NewHash {
		return nil, s.quarantine(path, data,
			&CorruptError{Path: path, Reason: "header address does not match requested key"})
	}
	res, cerr := decodeChecked(path, hdr, payload)
	if cerr != nil {
		return nil, s.quarantine(path, data, cerr)
	}
	return res, nil
}

// decodeChecked verifies the payload checksum and decodes the result.
func decodeChecked(path string, hdr *Header, payload []byte) (*linkage.Result, *CorruptError) {
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.PayloadSHA256 {
		return nil, &CorruptError{Path: path, Reason: "payload checksum mismatch"}
	}
	var p resultPayload
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, &CorruptError{Path: path, Reason: "payload does not decode", Err: err}
	}
	res, err := decodePayload(&p)
	if err != nil {
		return nil, &CorruptError{Path: path, Reason: "invalid payload", Err: err}
	}
	return res, nil
}

// quarantine moves a snapshot judged corrupt out of the address space —
// path becomes path.corrupt with a path.corrupt.reason sidecar — so it is
// parsed, counted and rejected exactly once. The move happens under the
// writer lock and only if the file still holds the judged bytes: a
// concurrent writer may already have replaced it with a fresh snapshot,
// which must not be swept aside. Failures to quarantine are not fatal; the
// rejection stands either way.
func (s *Store) quarantine(path string, judged []byte, cerr *CorruptError) *CorruptError {
	lk, err := s.lock()
	if err != nil {
		return cerr
	}
	defer lk.unlock()
	current, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(current, judged) {
		return cerr // replaced or gone meanwhile: nothing to move
	}
	qpath := path + corruptSuffix
	if err := os.Rename(path, qpath); err != nil {
		return cerr
	}
	reason := fmt.Sprintf("reason: %s\nquarantined_unix: %d\n", cerr.Reason, time.Now().Unix())
	_ = os.WriteFile(qpath+reasonSuffix, []byte(reason), 0o644)
	_ = s.syncDir()
	s.nQuarantined.Add(1)
	cerr.Quarantined = true
	return cerr
}

// split separates the header line from the payload bytes and parses the
// header. The payload is everything after the first newline with the final
// newline stripped; a file without both parts is truncated.
func split(path string, data []byte) (*Header, []byte, *CorruptError) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, nil, &CorruptError{Path: path, Reason: "truncated: no header line"}
	}
	var hdr Header
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, nil, &CorruptError{Path: path, Reason: "header does not parse", Err: err}
	}
	payload := data[nl+1:]
	if len(payload) == 0 || payload[len(payload)-1] != '\n' {
		return nil, nil, &CorruptError{Path: path, Reason: "truncated: payload incomplete"}
	}
	return &hdr, payload[:len(payload)-1], nil
}

// LoadResult implements linkage.ResultStore: a missing snapshot is
// (nil, nil), a rejected one (nil, *CorruptError), an unreachable medium
// (nil, *IOError). The dataset hashes are computed (and cached) via
// census.Dataset.ContentHash.
func (s *Store) LoadResult(configHash string, oldDS, newDS *census.Dataset) (*linkage.Result, error) {
	res, err := s.Load(Key{ConfigHash: configHash, OldHash: oldDS.ContentHash(), NewHash: newDS.ContentHash()})
	if errors.Is(err, ErrNotFound) {
		return nil, nil
	}
	return res, err
}

// SaveResult implements linkage.ResultStore (write-through).
func (s *Store) SaveResult(configHash string, oldDS, newDS *census.Dataset, res *linkage.Result) error {
	k := Key{ConfigHash: configHash, OldHash: oldDS.ContentHash(), NewHash: newDS.ContentHash()}
	return s.Save(k, oldDS.Year, newDS.Year, res)
}

// SkippedFile is one directory entry List could not present as a snapshot.
type SkippedFile struct {
	Name   string
	Reason string
}

// Listing is the full diagnostic inventory of a store directory.
type Listing struct {
	// Headers are the parseable snapshot headers, sorted by (old year,
	// new year, config hash).
	Headers []Header
	// Skipped are snapshot-named files whose header line could not be
	// read or parsed (they would be quarantined on Load or Repair).
	Skipped []SkippedFile
	// Quarantined are the *.corrupt files already moved aside.
	Quarantined []string
	// TempFiles are in-flight or crash-orphaned .tmp-snap-* files.
	TempFiles []string
}

// List inventories the directory: every parseable snapshot header plus the
// files that are skipped — unreadable or unparsable snapshots, quarantined
// corpses and temp litter — so callers can see degradation instead of
// silently missing it.
func (s *Store) List() (*Listing, error) {
	var entries []os.DirEntry
	err := s.retry("scan", s.dir, func() error {
		var rerr error
		entries, rerr = os.ReadDir(s.dir)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	l := &Listing{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
			continue
		case strings.HasPrefix(name, tmpPrefix):
			l.TempFiles = append(l.TempFiles, name)
			continue
		case strings.HasSuffix(name, corruptSuffix):
			l.Quarantined = append(l.Quarantined, name)
			continue
		case !strings.HasPrefix(name, "snap_") || !strings.HasSuffix(name, ".jsonl"):
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			l.Skipped = append(l.Skipped, SkippedFile{Name: name, Reason: "unreadable: " + err.Error()})
			continue
		}
		hdr, _, cerr := split(filepath.Join(s.dir, name), data)
		if cerr != nil {
			l.Skipped = append(l.Skipped, SkippedFile{Name: name, Reason: cerr.Reason})
			continue
		}
		l.Headers = append(l.Headers, *hdr)
	}
	sort.Slice(l.Headers, func(i, j int) bool {
		a, b := l.Headers[i], l.Headers[j]
		if a.OldYear != b.OldYear {
			return a.OldYear < b.OldYear
		}
		if a.NewYear != b.NewYear {
			return a.NewYear < b.NewYear
		}
		return a.ConfigHash < b.ConfigHash
	})
	sort.Strings(l.Quarantined)
	sort.Strings(l.TempFiles)
	sort.Slice(l.Skipped, func(i, j int) bool { return l.Skipped[i].Name < l.Skipped[j].Name })
	return l, nil
}

// Snapshots lists the headers of every snapshot in the store, sorted by
// (old year, new year, config hash) for stable output. Files that do not
// parse are skipped here; List exposes them.
func (s *Store) Snapshots() ([]Header, error) {
	l, err := s.List()
	if err != nil {
		return nil, err
	}
	return l.Headers, nil
}
