// Package store is the persistent, content-addressed snapshot store for
// linkage results. The paper's pipeline (Alg. 1) links each decade pair
// independently, which makes every pair's output a pure function of
// (configuration, old dataset, new dataset) — so it can be stored once and
// served forever. A snapshot file holds one linkage.Result (record links
// with provenance, group links, per-iteration stats) together with the
// content address that produced it; LinkSeriesOpts and the query server
// skip any pair whose address already has a trusted snapshot.
//
// Format: each snapshot is a two-line JSON-lines file. Line 1 is a
// self-describing header carrying the format name, format version, the
// three address hashes, the census years and a SHA-256 checksum of the
// payload; line 2 is the payload — the serialized result. Corrupt,
// truncated or version-mismatched snapshots are detected by the header and
// checksum and rejected with a *CorruptError, never misread; callers count
// the rejection and recompute. Writes go through a temp file and rename,
// so a crashed writer leaves no half snapshot under the final name.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
)

// FormatName and FormatVersion identify the snapshot file format. A reader
// refuses any file whose header does not carry exactly this name and
// version — an old or future format is rejected, not guessed at.
const (
	FormatName    = "censuslink/snapshot"
	FormatVersion = 1
)

// ErrNotFound reports that no snapshot exists for the requested key.
var ErrNotFound = errors.New("store: snapshot not found")

// CorruptError reports a snapshot that exists but cannot be trusted: a
// damaged or truncated file, a checksum mismatch, a header for a different
// format version, or a payload that does not decode. The caller should
// recompute the pair and overwrite the snapshot.
type CorruptError struct {
	Path   string
	Reason string
	Err    error // underlying parse/IO error, may be nil
}

// Error renders the file and the rejection reason.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("store: %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("store: %s: %s", e.Path, e.Reason)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }

// Key is the content address of one snapshot: the linkage configuration
// fingerprint (linkage.Config.Fingerprint) and the content hashes of the
// two input datasets (census.Dataset.ContentHash). Any change to any of
// the three produces a different key, which is the whole invalidation
// story — snapshots are never updated in place, only superseded.
type Key struct {
	ConfigHash string
	OldHash    string
	NewHash    string
}

// addr returns the hex digest the snapshot file is named after.
func (k Key) addr() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s", k.ConfigHash, k.OldHash, k.NewHash)
	return hex.EncodeToString(h.Sum(nil))[:40]
}

// Header is the self-describing first line of a snapshot file.
type Header struct {
	Format        string `json:"format"`
	Version       int    `json:"version"`
	ConfigHash    string `json:"config_hash"`
	OldHash       string `json:"old_hash"`
	NewHash       string `json:"new_hash"`
	OldYear       int    `json:"old_year"`
	NewYear       int    `json:"new_year"`
	PayloadSHA256 string `json:"payload_sha256"`
	CreatedUnix   int64  `json:"created_unix"`
}

// Store is a directory of snapshot files. Create with Open; it is safe for
// concurrent use (writes are atomic renames, reads never see partial
// files).
type Store struct {
	dir string
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, "snap_"+k.addr()+".jsonl")
}

// Save writes the result for the key atomically (temp file + rename),
// overwriting any previous snapshot at the same address.
func (s *Store) Save(k Key, oldYear, newYear int, res *linkage.Result) error {
	payload, err := json.Marshal(encodePayload(res))
	if err != nil {
		return fmt.Errorf("store: encode payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(Header{
		Format:        FormatName,
		Version:       FormatVersion,
		ConfigHash:    k.ConfigHash,
		OldHash:       k.OldHash,
		NewHash:       k.NewHash,
		OldYear:       oldYear,
		NewYear:       newYear,
		PayloadSHA256: hex.EncodeToString(sum[:]),
		CreatedUnix:   time.Now().Unix(),
	})
	if err != nil {
		return fmt.Errorf("store: encode header: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-snap-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var buf bytes.Buffer
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(payload)
	buf.WriteByte('\n')
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Load reads, verifies and decodes the snapshot for the key. It returns
// ErrNotFound when no file exists and a *CorruptError when the file cannot
// be trusted (bad header, wrong format or version, checksum mismatch,
// address mismatch, undecodable payload).
func (s *Store) Load(k Key) (*linkage.Result, error) {
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, &CorruptError{Path: path, Reason: "unreadable", Err: err}
	}
	hdr, payload, cerr := split(path, data)
	if cerr != nil {
		return nil, cerr
	}
	if hdr.Format != FormatName {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unknown format %q", hdr.Format)}
	}
	if hdr.Version != FormatVersion {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("format version %d, this build reads only %d", hdr.Version, FormatVersion)}
	}
	// The file name is a truncated digest of the key; the full hashes in the
	// header are authoritative and must match what the caller asked for.
	if hdr.ConfigHash != k.ConfigHash || hdr.OldHash != k.OldHash || hdr.NewHash != k.NewHash {
		return nil, &CorruptError{Path: path, Reason: "header address does not match requested key"}
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.PayloadSHA256 {
		return nil, &CorruptError{Path: path, Reason: "payload checksum mismatch"}
	}
	var p resultPayload
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, &CorruptError{Path: path, Reason: "payload does not decode", Err: err}
	}
	res, err := decodePayload(&p)
	if err != nil {
		return nil, &CorruptError{Path: path, Reason: "invalid payload", Err: err}
	}
	return res, nil
}

// split separates the header line from the payload bytes and parses the
// header. The payload is everything after the first newline with the final
// newline stripped; a file without both parts is truncated.
func split(path string, data []byte) (*Header, []byte, *CorruptError) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, nil, &CorruptError{Path: path, Reason: "truncated: no header line"}
	}
	var hdr Header
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, nil, &CorruptError{Path: path, Reason: "header does not parse", Err: err}
	}
	payload := data[nl+1:]
	if len(payload) == 0 || payload[len(payload)-1] != '\n' {
		return nil, nil, &CorruptError{Path: path, Reason: "truncated: payload incomplete"}
	}
	return &hdr, payload[:len(payload)-1], nil
}

// LoadResult implements linkage.ResultStore: a missing snapshot is
// (nil, nil), a rejected one (nil, *CorruptError). The dataset hashes are
// computed (and cached) via census.Dataset.ContentHash.
func (s *Store) LoadResult(configHash string, oldDS, newDS *census.Dataset) (*linkage.Result, error) {
	res, err := s.Load(Key{ConfigHash: configHash, OldHash: oldDS.ContentHash(), NewHash: newDS.ContentHash()})
	if errors.Is(err, ErrNotFound) {
		return nil, nil
	}
	return res, err
}

// SaveResult implements linkage.ResultStore (write-through).
func (s *Store) SaveResult(configHash string, oldDS, newDS *census.Dataset, res *linkage.Result) error {
	k := Key{ConfigHash: configHash, OldHash: oldDS.ContentHash(), NewHash: newDS.ContentHash()}
	return s.Save(k, oldDS.Year, newDS.Year, res)
}

// Snapshots lists the headers of every snapshot in the store, sorted by
// (old year, new year, config hash) for stable output. Files that do not
// parse are skipped — listing is diagnostic, not load-bearing.
func (s *Store) Snapshots() ([]Header, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Header
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap_") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			continue
		}
		var hdr Header
		if err := json.Unmarshal(data[:nl], &hdr); err != nil {
			continue
		}
		out = append(out, hdr)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.OldYear != b.OldYear {
			return a.OldYear < b.OldYear
		}
		if a.NewYear != b.NewYear {
			return a.NewYear < b.NewYear
		}
		return a.ConfigHash < b.ConfigHash
	})
	return out, nil
}
