package store

import (
	"fmt"

	"censuslink/internal/linkage"
)

// resultPayload is the serialized form of a linkage.Result. It mirrors the
// Result field by field with stable lower-case JSON keys; the Sources map
// (struct-keyed, so not directly JSON-serializable) is flattened into an
// entry list. encoding/json emits float64 with the shortest representation
// that round-trips exactly, so a decoded payload is deep-equal to what was
// saved.
type resultPayload struct {
	RecordLinks          []recordLinkJSON  `json:"record_links"`
	GroupLinks           []groupLinkJSON   `json:"group_links"`
	Iterations           []iterationJSON   `json:"iterations"`
	Sources              []sourceEntryJSON `json:"sources"`
	RemainderRecordLinks int               `json:"remainder_record_links"`
	RemainderGroupLinks  int               `json:"remainder_group_links"`
}

type recordLinkJSON struct {
	Old string  `json:"old"`
	New string  `json:"new"`
	Sim float64 `json:"sim"`
}

type groupLinkJSON struct {
	Old string `json:"old"`
	New string `json:"new"`
}

type iterationJSON struct {
	Delta          float64 `json:"delta"`
	ComparedPairs  int     `json:"compared_pairs"`
	CandidateLinks int     `json:"candidate_links"`
	GroupPairs     int     `json:"group_pairs"`
	NewGroupLinks  int     `json:"new_group_links"`
	NewRecordLinks int     `json:"new_record_links"`
	RemainingOld   int     `json:"remaining_old"`
	RemainingNew   int     `json:"remaining_new"`
}

type sourceEntryJSON struct {
	Old      string  `json:"old"`
	New      string  `json:"new"`
	Kind     string  `json:"kind"`
	Delta    float64 `json:"delta"`
	GroupOld string  `json:"group_old,omitempty"`
	GroupNew string  `json:"group_new,omitempty"`
	GSim     float64 `json:"gsim,omitempty"`
}

func encodePayload(res *linkage.Result) *resultPayload {
	p := &resultPayload{
		RemainderRecordLinks: res.RemainderRecordLinks,
		RemainderGroupLinks:  res.RemainderGroupLinks,
	}
	for _, l := range res.RecordLinks {
		p.RecordLinks = append(p.RecordLinks, recordLinkJSON{Old: l.Old, New: l.New, Sim: l.Sim})
	}
	for _, g := range res.GroupLinks {
		p.GroupLinks = append(p.GroupLinks, groupLinkJSON{Old: g.Old, New: g.New})
	}
	for _, it := range res.Iterations {
		p.Iterations = append(p.Iterations, iterationJSON(it))
	}
	// Sources in the deterministic order of the sorted record-link list, so
	// identical results serialize byte-identically. Links the map does not
	// cover (none in practice) are simply absent.
	for _, l := range res.RecordLinks {
		pair := linkage.Pair{Old: l.Old, New: l.New}
		src, ok := res.Sources[pair]
		if !ok {
			continue
		}
		p.Sources = append(p.Sources, sourceEntryJSON{
			Old:      pair.Old,
			New:      pair.New,
			Kind:     src.Kind.String(),
			Delta:    src.Delta,
			GroupOld: src.Group.Old,
			GroupNew: src.Group.New,
			GSim:     src.GSim,
		})
	}
	return p
}

func decodePayload(p *resultPayload) (*linkage.Result, error) {
	// Empty collections decode to nil slices (matching a fresh pipeline
	// result); Sources is always a non-nil map, as LinkContext guarantees.
	res := &linkage.Result{
		Sources:              make(map[linkage.Pair]linkage.LinkSource, len(p.Sources)),
		RemainderRecordLinks: p.RemainderRecordLinks,
		RemainderGroupLinks:  p.RemainderGroupLinks,
	}
	for _, l := range p.RecordLinks {
		res.RecordLinks = append(res.RecordLinks, linkage.RecordLink{Old: l.Old, New: l.New, Sim: l.Sim})
	}
	for _, g := range p.GroupLinks {
		res.GroupLinks = append(res.GroupLinks, linkage.GroupLink{Old: g.Old, New: g.New})
	}
	for _, it := range p.Iterations {
		res.Iterations = append(res.Iterations, linkage.IterationStats(it))
	}
	for _, e := range p.Sources {
		var kind linkage.SourceKind
		switch e.Kind {
		case linkage.SourceSubgraph.String():
			kind = linkage.SourceSubgraph
		case linkage.SourceRemainder.String():
			kind = linkage.SourceRemainder
		default:
			return nil, fmt.Errorf("unknown link source kind %q", e.Kind)
		}
		res.Sources[linkage.Pair{Old: e.Old, New: e.New}] = linkage.LinkSource{
			Kind:  kind,
			Delta: e.Delta,
			Group: linkage.GroupPair{Old: e.GroupOld, New: e.GroupNew},
			GSim:  e.GSim,
		}
	}
	return res, nil
}
