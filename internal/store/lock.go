package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"censuslink/internal/faultinject"
)

// The store's single-writer protocol: every mutation (Save, Repair's
// quarantines) first takes the directory's lock file, created with
// O_CREATE|O_EXCL so exactly one process in a replica fleet holds it at a
// time. The lock carries its owner (pid, host, acquisition time) as JSON;
// a waiter finding the file present backs off and retries, and takes over
// a stale lock — owner dead on this host, or older than lockStaleAfter
// (covering a kill -9 mid-write on any host) — by removing it and racing
// for a fresh O_EXCL creation. The takeover race is benign: losing it
// means another live writer owns the lock, which is exactly the state the
// protocol wants, and even a misjudged removal never corrupts data because
// every write is still an O_EXCL temp file plus atomic rename —
// last-writer-wins with both versions complete.
const (
	lockFileName   = ".lock"
	lockStaleAfter = 10 * time.Second
)

// lockOwner is the JSON body of a lock file.
type lockOwner struct {
	PID      int    `json:"pid"`
	Host     string `json:"host"`
	Acquired int64  `json:"acquired_unix_nano"`
}

// dirLock is one held acquisition; release with unlock.
type dirLock struct {
	path string
}

// lockPath returns the store's lock file path.
func (s *Store) lockPath() string { return filepath.Join(s.dir, lockFileName) }

// lock acquires the store's writer lock, retrying with the store's backoff
// policy while a live writer holds it and taking over stale locks. The
// faultinject point "store.lock.acquire" injects acquisition failures.
func (s *Store) lock() (*dirLock, error) {
	path := s.lockPath()
	err := s.retryWith(lockRetry, "lock", path, func() error {
		if err := faultinject.Hit("store.lock.acquire"); err != nil {
			return err
		}
		return s.tryLock(path)
	})
	if err != nil {
		return nil, err
	}
	return &dirLock{path: path}, nil
}

// tryLock makes one acquisition attempt: O_EXCL creation, with stale-lock
// takeover when the current holder is provably gone.
func (s *Store) tryLock(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err == nil {
		host, _ := os.Hostname()
		body, _ := json.Marshal(lockOwner{PID: os.Getpid(), Host: host, Acquired: time.Now().UnixNano()})
		_, werr := f.Write(body)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			os.Remove(path)
			return werr
		}
		return nil
	}
	if !errors.Is(err, fs.ErrExist) {
		return err
	}
	if lockIsStale(path) {
		// Remove and loop back through retry for a fresh O_EXCL race.
		os.Remove(path)
	}
	return errLockBusy
}

// lockIsStale reports whether the lock file at path belongs to a writer
// that can no longer be holding it: its owner pid is dead on this host, or
// the file (readable or not) is older than lockStaleAfter.
func lockIsStale(path string) bool {
	fi, err := os.Stat(path)
	if err != nil {
		// Already gone (the holder released, or another waiter took over):
		// not ours to remove, just retry the creation.
		return false
	}
	age := time.Since(fi.ModTime())
	data, err := os.ReadFile(path)
	if err != nil {
		return age > lockStaleAfter
	}
	var owner lockOwner
	if json.Unmarshal(data, &owner) != nil || owner.PID <= 0 {
		// A half-written lock: its creator died between create and write
		// (or it is foreign garbage). Give it the grace period.
		return age > lockStaleAfter
	}
	host, _ := os.Hostname()
	if owner.Host == host && !pidAlive(owner.PID) {
		return true
	}
	return age > lockStaleAfter
}

// pidAlive reports whether a process with the pid exists on this host
// (signal 0 probes without delivering; EPERM still proves existence).
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// unlock releases the lock. Failing to remove is not fatal — the stale
// takeover reclaims an orphaned lock — but it is reported for counting.
func (l *dirLock) unlock() error {
	if err := os.Remove(l.path); err != nil && !isNotExist(err) {
		return fmt.Errorf("store: release lock: %w", err)
	}
	return nil
}
