package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"testing"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// linkedPair runs the real pipeline over the paper's running example once,
// giving the tests a result with every feature populated: subgraph and
// remainder provenance, multiple iterations, group links.
func linkedPair(t *testing.T) (old, new *census.Dataset, cfgHash string, res *linkage.Result) {
	t.Helper()
	old, new = paperexample.Old(), paperexample.New()
	cfg := linkage.DefaultConfig()
	cfg.Workers = 1
	res, err := linkage.LinkContext(context.Background(), old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecordLinks) == 0 || len(res.GroupLinks) == 0 || len(res.Iterations) == 0 {
		t.Fatalf("running example produced a degenerate result: %+v", res)
	}
	return old, new, cfg.Fingerprint(), res
}

// TestRoundTripGolden: write → reload → deep-equal, the golden guarantee
// the incremental mode rests on. The listing must show the snapshot too.
func TestRoundTripGolden(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult(cfgHash, old, new, res); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadResult(cfgHash, old, new)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("LoadResult found nothing after SaveResult")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, res)
	}
	headers, err := s.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 1 {
		t.Fatalf("Snapshots() = %d entries, want 1", len(headers))
	}
	h := headers[0]
	if h.OldYear != old.Year || h.NewYear != new.Year ||
		h.ConfigHash != cfgHash || h.OldHash != old.ContentHash() || h.NewHash != new.ContentHash() {
		t.Errorf("listed header = %+v", h)
	}
}

// TestDeterministicPayload: the same result serializes to byte-identical
// payloads, so re-linking unchanged inputs re-creates the identical
// snapshot body (the header differs only in created_unix).
func TestDeterministicPayload(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	payloadOf := func(dir string) []byte {
		t.Helper()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveResult(cfgHash, old, new, res); err != nil {
			t.Fatal(err)
		}
		k := Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()}
		data, err := os.ReadFile(s.path(k))
		if err != nil {
			t.Fatal(err)
		}
		nl := bytes.IndexByte(data, '\n')
		return data[nl+1:]
	}
	a, b := payloadOf(t.TempDir()), payloadOf(t.TempDir())
	if !bytes.Equal(a, b) {
		t.Errorf("payloads differ:\n%s\n%s", a, b)
	}
}

func TestLoadMissing(t *testing.T) {
	old, new, cfgHash, _ := linkedPair(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(Key{ConfigHash: "x", OldHash: "y", NewHash: "z"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Load on empty store: err = %v, want ErrNotFound", err)
	}
	res, err := s.LoadResult(cfgHash, old, new)
	if res != nil || err != nil {
		t.Errorf("LoadResult on empty store = (%v, %v), want (nil, nil)", res, err)
	}
}

// TestRejectsUntrustedSnapshots: every way a snapshot file can go bad —
// truncation, bit rot, format drift, address mismatch, malformed payload —
// must surface as a *CorruptError, never as a silently misread result, and
// a fresh Save must recover the slot. Snapshots with bad bytes are
// additionally quarantined on first rejection: the file moves to
// <name>.corrupt with a reason sidecar, and the next lookup is a clean
// miss rather than a repeat rejection. Foreign-format snapshots (another
// build's format name or version) are rejected but never quarantined.
func TestRejectsUntrustedSnapshots(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	key := Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()}

	// rewrite re-frames the snapshot with a mutated header and/or payload;
	// fixChecksum re-seals the header over the new payload so the test
	// reaches the layer behind the checksum. foreign marks the two
	// mutations that must NOT be quarantined.
	type mutation struct {
		name        string
		fixChecksum bool
		foreign     bool
		mutate      func(h *Header, payload []byte) (header *Header, newPayload []byte, raw []byte)
	}
	mutations := []mutation{
		{name: "empty file", mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			return nil, nil, []byte{}
		}},
		{name: "no header line", mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			return nil, nil, []byte("not json and no newline")
		}},
		{name: "unparsable header", mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			return nil, nil, append([]byte("{broken\n"), append(p, '\n')...)
		}},
		{name: "truncated payload", mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			hdr, _ := json.Marshal(h)
			return nil, nil, append(append(hdr, '\n'), p[:len(p)/2]...) // no trailing newline
		}},
		{name: "payload bit rot", mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			p = append([]byte(nil), p...)
			p[len(p)/2] ^= 0x40
			return h, p, nil
		}},
		{name: "future format version", fixChecksum: true, foreign: true, mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			h.Version = FormatVersion + 1
			return h, p, nil
		}},
		{name: "unknown format name", fixChecksum: true, foreign: true, mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			h.Format = "someone-elses/format"
			return h, p, nil
		}},
		{name: "address mismatch", fixChecksum: true, mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			h.OldHash = "0000"
			return h, p, nil
		}},
		{name: "unknown payload field", fixChecksum: true, mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			p = append(p[:len(p)-1], []byte(`,"surprise":1}`)...)
			return h, p, nil
		}},
		{name: "unknown source kind", fixChecksum: true, mutate: func(h *Header, p []byte) (*Header, []byte, []byte) {
			p = bytes.Replace(p, []byte(`"kind":"subgraph"`), []byte(`"kind":"psychic"`), 1)
			return h, p, nil
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save(key, old.Year, new.Year, res); err != nil {
				t.Fatal(err)
			}
			path := s.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			nl := bytes.IndexByte(data, '\n')
			var hdr Header
			if err := json.Unmarshal(data[:nl], &hdr); err != nil {
				t.Fatal(err)
			}
			payload := data[nl+1 : len(data)-1]

			h, p, raw := m.mutate(&hdr, payload)
			if raw == nil {
				if m.fixChecksum {
					sum := sha256sum(p)
					h.PayloadSHA256 = sum
				}
				hb, err := json.Marshal(h)
				if err != nil {
					t.Fatal(err)
				}
				raw = append(append(hb, '\n'), append(p, '\n')...)
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}

			_, err = s.Load(key)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Load after %q: err = %v, want *CorruptError", m.name, err)
			}
			if ce.Quarantined == m.foreign {
				t.Errorf("Load after %q: Quarantined = %v, want %v", m.name, ce.Quarantined, !m.foreign)
			}
			if m.foreign {
				// A foreign snapshot stays in place and keeps being rejected.
				if _, lerr := s.LoadResult(cfgHash, old, new); lerr == nil {
					t.Errorf("LoadResult after %q returned no error", m.name)
				}
			} else {
				// Quarantined: the bad file moved aside with its reason, and
				// the key now reads as a clean miss — no repeated rejection.
				if _, err := os.Stat(path + ".corrupt"); err != nil {
					t.Errorf("no quarantine file after %q: %v", m.name, err)
				}
				reason, err := os.ReadFile(path + ".corrupt.reason")
				if err != nil || len(reason) == 0 {
					t.Errorf("no quarantine reason sidecar after %q: %v", m.name, err)
				}
				if got, lerr := s.LoadResult(cfgHash, old, new); got != nil || lerr != nil {
					t.Errorf("LoadResult after quarantine of %q = (%v, %v), want (nil, nil)", m.name, got, lerr)
				}
				if n := s.Quarantined(); n != 1 {
					t.Errorf("Quarantined() = %d after %q, want 1", n, m.name)
				}
			}

			// Recompute-and-overwrite restores the slot either way.
			if err := s.Save(key, old.Year, new.Year, res); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load(key)
			if err != nil || !reflect.DeepEqual(got, res) {
				t.Errorf("recovery Save+Load after %q: err = %v", m.name, err)
			}
		})
	}
}

// sha256sum re-seals a tampered payload, mirroring Save's checksum.
func sha256sum(p []byte) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}

// TestWrongKeyDifferentAddress: a snapshot saved under one configuration is
// simply not found under another — content addressing, not invalidation
// logic.
func TestWrongKeyDifferentAddress(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult(cfgHash, old, new, res); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadResult("different-config-fingerprint", old, new)
	if got != nil || err != nil {
		t.Errorf("LoadResult under a different config = (%v, %v), want (nil, nil)", got, err)
	}
}

// TestOverwriteIsAtomicSingleFile: re-saving the same key leaves exactly
// one snapshot file and no temp litter.
func TestOverwriteIsAtomicSingleFile(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.SaveResult(cfgHash, old, new, res); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("store dir holds %v, want exactly one snapshot", names)
	}
}
