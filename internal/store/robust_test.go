package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"censuslink/internal/faultinject"
	"censuslink/internal/linkage"
	"censuslink/internal/paperexample"
)

// altResult returns a second, distinct-but-valid result for the same pair,
// so overwrite tests can tell which version a Load observed. Perturbing a
// similarity keeps RecordLinks and Sources aligned, so the mutation
// round-trips the codec losslessly.
func altResult(res *linkage.Result) *linkage.Result {
	alt := *res
	alt.RecordLinks = append([]linkage.RecordLink(nil), res.RecordLinks...)
	alt.RecordLinks[0].Sim /= 2
	return &alt
}

// TestSaveFsyncFailureNeverExposesHalfSnapshot is the durability regression
// test: a Save whose fsync fails must error out without making any partial
// state visible — a previous snapshot stays loadable bit for bit, and an
// empty slot stays a clean miss. (Regression: Save used to rename without
// any fsync, so a crash could publish a snapshot whose bytes never reached
// the disk.)
func TestSaveFsyncFailureNeverExposesHalfSnapshot(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("fault injection compiled out")
	}
	old, new, cfgHash, res := linkedPair(t)
	key := Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()}

	for _, hook := range []string{"store.save.partialwrite", "store.save.fsync", "store.save.rename"} {
		t.Run(hook, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}

			// Empty slot: the failed Save must leave a clean miss and no litter.
			injected := fmt.Errorf("injected %s failure", hook)
			faultinject.Set(hook, func() error { return injected })
			if err := s.Save(key, old.Year, new.Year, res); !errors.Is(err, injected) {
				t.Fatalf("Save with %s armed: err = %v, want wrapped injected error", hook, err)
			}
			if _, err := s.Load(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load after failed first Save: err = %v, want ErrNotFound", err)
			}

			// Occupied slot: the old snapshot must survive untouched.
			faultinject.Reset()
			if err := s.Save(key, old.Year, new.Year, res); err != nil {
				t.Fatal(err)
			}
			faultinject.Set(hook, func() error { return injected })
			if err := s.Save(key, old.Year, new.Year, altResult(res)); !errors.Is(err, injected) {
				t.Fatalf("overwrite Save with %s armed: err = %v", hook, err)
			}
			got, err := s.Load(key)
			if err != nil {
				t.Fatalf("Load after failed overwrite: %v", err)
			}
			if !reflect.DeepEqual(got, res) {
				t.Error("failed overwrite exposed new or torn bytes instead of the old snapshot")
			}
			entries, err := os.ReadDir(s.Dir())
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), tmpPrefix) {
					t.Errorf("temp litter %s left behind by failed Save", e.Name())
				}
				if e.Name() == lockFileName {
					t.Errorf("writer lock %s left held by failed Save", e.Name())
				}
			}
		})
	}
}

// TestTransientFaultsAreRetried: a transient failure on the read path and
// on lock acquisition must be absorbed by the backoff-retry layer, with the
// retry counted.
func TestTransientFaultsAreRetried(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("fault injection compiled out")
	}
	t.Cleanup(faultinject.Reset)
	old, new, cfgHash, res := linkedPair(t)
	key := Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Set("store.lock.acquire", faultinject.FailOnCall(1, syscall.EAGAIN))
	if err := s.Save(key, old.Year, new.Year, res); err != nil {
		t.Fatalf("Save with one transient lock failure: %v", err)
	}
	faultinject.Set("store.load.read", faultinject.FailOnCall(1, syscall.EINTR))
	got, err := s.Load(key)
	if err != nil || !reflect.DeepEqual(got, res) {
		t.Fatalf("Load with one transient read failure: %v", err)
	}
	if s.Retries() < 2 {
		t.Errorf("Retries() = %d, want >= 2 (one per absorbed transient fault)", s.Retries())
	}
}

// TestPermanentFaultFailsFast: a permanent I/O error is classified, not
// retried — the hook fires exactly once and the caller gets a typed
// *IOError.
func TestPermanentFaultFailsFast(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("fault injection compiled out")
	}
	t.Cleanup(faultinject.Reset)
	old, new, cfgHash, _ := linkedPair(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	faultinject.Set("store.load.read", func() error {
		calls++
		return syscall.EACCES
	})
	_, err = s.Load(Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()})
	var ie *IOError
	if !errors.As(err, &ie) {
		t.Fatalf("Load under EACCES: err = %v, want *IOError", err)
	}
	if ie.Transient {
		t.Error("EACCES classified transient")
	}
	if calls != 1 {
		t.Errorf("permanent failure retried: %d read attempts, want 1", calls)
	}
}

// TestConcurrentWritersSameKey: many goroutines racing Save on one address
// must serialize through the lock file, leave exactly one loadable snapshot
// (deep-equal to one of the written versions — last writer wins) and no
// temp or lock litter. Run under -race this also proves the in-process
// paths are data-race free.
func TestConcurrentWritersSameKey(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	key := Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()}
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	alt := altResult(res)
	versions := []*linkage.Result{res, alt}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := s.Save(key, old.Year, new.Year, versions[w]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	got, err := s.Load(key)
	if err != nil {
		t.Fatalf("Load after racing writers: %v", err)
	}
	if !reflect.DeepEqual(got, res) && !reflect.DeepEqual(got, alt) {
		t.Error("surviving snapshot matches neither written version")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("store dir holds %v, want exactly the one snapshot", names)
	}
}

// TestHelperProcessSave is not a test: it is the body of the second process
// of TestConcurrentWritersTwoProcesses, re-executed from the test binary.
func TestHelperProcessSave(t *testing.T) {
	if os.Getenv("CENSUSLINK_STORE_SAVE_HELPER") != "1" {
		t.Skip("helper process body")
	}
	dir := os.Getenv("CENSUSLINK_STORE_SAVE_DIR")
	old, new := paperexample.Old(), paperexample.New()
	cfg := linkage.DefaultConfig()
	cfg.Workers = 1
	res, err := linkage.LinkContext(context.Background(), old, new, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.SaveResult(cfg.Fingerprint(), old, new, res); err != nil {
			t.Fatalf("helper save %d: %v", i, err)
		}
	}
}

// TestConcurrentWritersTwoProcesses races Save against a second OS process
// (the re-executed test binary), so the lock file protocol — not Go mutex
// luck — is what keeps the writes from interleaving. Afterwards the
// snapshot must load deep-equal to the computed result.
func TestConcurrentWritersTwoProcesses(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperProcessSave$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CENSUSLINK_STORE_SAVE_HELPER=1",
		"CENSUSLINK_STORE_SAVE_DIR="+dir)
	out, errOut := &strings.Builder{}, &strings.Builder{}
	cmd.Stdout, cmd.Stderr = out, errOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.SaveResult(cfgHash, old, new, res); err != nil {
			t.Errorf("parent save %d: %v", i, err)
			break
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper process failed: %v\nstdout:\n%s\nstderr:\n%s", err, out, errOut)
	}
	got, err := s.LoadResult(cfgHash, old, new)
	if err != nil || got == nil {
		t.Fatalf("LoadResult after two-process race: (%v, %v)", got, err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Error("two-process race left a snapshot that matches neither writer")
	}
	l, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.TempFiles) != 0 || len(l.Skipped) != 0 || len(l.Quarantined) != 0 {
		t.Errorf("two-process race left litter: %+v", l)
	}
}

// TestLockStaleTakeover: locks orphaned by a dead writer — a dead pid on
// this host, or any lock older than the staleness window — must be taken
// over instead of deadlocking every future Save.
func TestLockStaleTakeover(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	key := Key{ConfigHash: cfgHash, OldHash: old.ContentHash(), NewHash: new.ContentHash()}

	t.Run("dead pid", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		host, _ := os.Hostname()
		// A pid from far beyond pid_max: guaranteed not alive.
		body, _ := json.Marshal(lockOwner{PID: 1 << 30, Host: host, Acquired: time.Now().UnixNano()})
		if err := os.WriteFile(s.lockPath(), body, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(key, old.Year, new.Year, res); err != nil {
			t.Fatalf("Save under a dead writer's lock: %v", err)
		}
	})

	t.Run("aged half-written lock", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.lockPath(), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		stale := time.Now().Add(-2 * lockStaleAfter)
		if err := os.Chtimes(s.lockPath(), stale, stale); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(key, old.Year, new.Year, res); err != nil {
			t.Fatalf("Save under an aged empty lock: %v", err)
		}
	})

	t.Run("live lock blocks", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		host, _ := os.Hostname()
		body, _ := json.Marshal(lockOwner{PID: os.Getpid(), Host: host, Acquired: time.Now().UnixNano()})
		if err := os.WriteFile(s.lockPath(), body, 0o644); err != nil {
			t.Fatal(err)
		}
		err = s.Save(key, old.Year, new.Year, res)
		var ie *IOError
		if !errors.As(err, &ie) || !ie.Transient {
			t.Fatalf("Save under a live writer's fresh lock: err = %v, want transient *IOError", err)
		}
	})
}

// TestVerifyAndRepair: Verify reports every class of damage without
// touching the directory; Repair quarantines the corrupt files, leaves
// foreign formats alone, removes aged temp litter, and a second Verify
// comes back clean apart from the quarantined corpses and the foreign
// file.
func TestVerifyAndRepair(t *testing.T) {
	old, new, cfgHash, res := linkedPair(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two good snapshots under different configuration fingerprints.
	if err := s.SaveResult(cfgHash, old, new, res); err != nil {
		t.Fatal(err)
	}
	otherKey := Key{ConfigHash: "other-config", OldHash: old.ContentHash(), NewHash: new.ContentHash()}
	if err := s.Save(otherKey, old.Year, new.Year, res); err != nil {
		t.Fatal(err)
	}
	// Bit-rot the second one.
	rotPath := s.path(otherKey)
	data, err := os.ReadFile(rotPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(rotPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant garbage under a snapshot name, a foreign-version snapshot and
	// an aged temp file.
	garbagePath := filepath.Join(dir, "snap_"+strings.Repeat("ab", 20)+".jsonl")
	if err := os.WriteFile(garbagePath, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreignKey := Key{ConfigHash: "foreign", OldHash: "x", NewHash: "y"}
	if err := s.Save(foreignKey, old.Year, new.Year, res); err != nil {
		t.Fatal(err)
	}
	foreignPath := s.path(foreignKey)
	fdata, err := os.ReadFile(foreignPath)
	if err != nil {
		t.Fatal(err)
	}
	fdata = []byte(strings.Replace(string(fdata), `"version":1`, `"version":999`, 1))
	if err := os.WriteFile(foreignPath, fdata, 0o644); err != nil {
		t.Fatal(err)
	}
	tmpPath := filepath.Join(dir, tmpPrefix+"dead-1")
	if err := os.WriteFile(tmpPath, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	aged := time.Now().Add(-2 * tempGraceAge)
	if err := os.Chtimes(tmpPath, aged, aged); err != nil {
		t.Fatal(err)
	}

	verify, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if verify.Checked != 4 || verify.OK != 1 || verify.Corrupt != 2 || verify.Foreign != 1 || verify.TempFiles != 1 {
		t.Errorf("Verify = %s, want checked 4 / ok 1 / corrupt 2 / foreign 1 / temps 1", verify.Summary())
	}
	if verify.StaleTempsRemoved != 0 {
		t.Error("Verify removed temp files; it must not modify anything")
	}
	if _, err := os.Stat(rotPath); err != nil {
		t.Errorf("Verify quarantined a file: %v", err)
	}

	repair, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if repair.Corrupt != 2 || repair.StaleTempsRemoved != 1 {
		t.Errorf("Repair = %s, want corrupt 2 with 1 stale temp removed", repair.Summary())
	}
	for _, p := range repair.Problems {
		if p.Reason == "" {
			t.Errorf("problem %q has no reason", p.File)
		}
	}
	if _, err := os.Stat(rotPath + corruptSuffix); err != nil {
		t.Errorf("bit-rotted snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(foreignPath); err != nil {
		t.Errorf("foreign snapshot was touched: %v", err)
	}
	if _, err := os.Stat(tmpPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("aged temp litter survived Repair")
	}

	again, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if again.Corrupt != 0 || again.OK != 1 || again.Foreign != 1 || again.AlreadyQuarantined != 2 || again.TempFiles != 0 {
		t.Errorf("Verify after Repair = %s, want corrupt 0 / ok 1 / foreign 1 / quarantined-before 2", again.Summary())
	}

	// The good snapshot is still served; the quarantined one is a miss.
	got, err := s.LoadResult(cfgHash, old, new)
	if err != nil || got == nil {
		t.Fatalf("good snapshot lost by Repair: (%v, %v)", got, err)
	}
	if _, err := s.Load(otherKey); !errors.Is(err, ErrNotFound) {
		t.Errorf("quarantined snapshot still resolves: %v", err)
	}

	// List surfaces the same degradation diagnostically.
	l, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Headers) != 2 || len(l.Quarantined) != 2 {
		t.Errorf("List = %d headers, %d quarantined (want 2 and 2): %+v", len(l.Headers), len(l.Quarantined), l)
	}
}
