package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Problem is one file the verification pass could not accept as a trusted
// snapshot.
type Problem struct {
	// File is the entry's name within the store directory.
	File string `json:"file"`
	// Reason is the human-readable rejection cause.
	Reason string `json:"reason"`
	// Quarantined reports whether a Repair pass moved the file aside.
	Quarantined bool `json:"quarantined"`
}

// VerifyReport is the typed summary of one Verify or Repair pass over a
// store directory.
type VerifyReport struct {
	// Checked counts the snapshot files examined.
	Checked int `json:"checked"`
	// OK counts snapshots whose header, checksum and payload all verified.
	OK int `json:"ok"`
	// Corrupt counts snapshots rejected for bad bytes; with Repair they
	// are also quarantined.
	Corrupt int `json:"corrupt"`
	// Foreign counts snapshots in a different format or version — not this
	// build's to judge, so never quarantined.
	Foreign int `json:"foreign"`
	// AlreadyQuarantined counts *.corrupt files found in the directory.
	AlreadyQuarantined int `json:"already_quarantined"`
	// TempFiles counts .tmp-snap-* litter; StaleTempsRemoved counts how
	// many a Repair pass deleted (only temps past the grace age, so an
	// in-flight writer is never raced).
	TempFiles         int `json:"temp_files"`
	StaleTempsRemoved int `json:"stale_temps_removed"`
	// Problems details every non-OK snapshot file.
	Problems []Problem `json:"problems,omitempty"`
}

// Clean reports whether the pass found nothing wrong.
func (r *VerifyReport) Clean() bool {
	return r.Corrupt == 0 && r.Foreign == 0 && r.AlreadyQuarantined == 0 && r.TempFiles == 0
}

// Summary renders the report as one human-readable line.
func (r *VerifyReport) Summary() string {
	return fmt.Sprintf("checked %d: ok %d, corrupt %d, foreign %d, quarantined-before %d, temps %d (removed %d)",
		r.Checked, r.OK, r.Corrupt, r.Foreign, r.AlreadyQuarantined, r.TempFiles, r.StaleTempsRemoved)
}

// tempGraceAge is how old a temp file must be before Repair treats it as a
// crashed writer's litter rather than an in-flight write.
const tempGraceAge = time.Minute

// Verify scans the directory and fully checks every snapshot — header
// parse, format, address consistency with the file name, payload checksum
// and decode — without modifying anything. The returned error is only a
// directory-level I/O failure; per-file findings are in the report.
func (s *Store) Verify() (*VerifyReport, error) { return s.scan(false) }

// Repair is Verify plus the healing: snapshots rejected for bad bytes are
// quarantined (renamed to <name>.corrupt with a reason sidecar) and stale
// temp litter older than a minute is removed. Foreign-format snapshots are
// reported but never touched. Repair takes the writer lock per quarantine,
// so it is safe to run against a live replica fleet.
func (s *Store) Repair() (*VerifyReport, error) { return s.scan(true) }

// scan is the shared walk behind Verify and Repair.
func (s *Store) scan(repair bool) (*VerifyReport, error) {
	var entries []os.DirEntry
	err := s.retry("scan", s.dir, func() error {
		var rerr error
		entries, rerr = os.ReadDir(s.dir)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case e.IsDir():
			continue
		case strings.HasSuffix(name, corruptSuffix) || strings.HasSuffix(name, corruptSuffix+reasonSuffix):
			if strings.HasSuffix(name, corruptSuffix) {
				rep.AlreadyQuarantined++
			}
			continue
		case strings.HasPrefix(name, tmpPrefix):
			rep.TempFiles++
			if repair {
				if fi, err := e.Info(); err == nil && time.Since(fi.ModTime()) > tempGraceAge {
					if os.Remove(path) == nil {
						rep.StaleTempsRemoved++
					}
				}
			}
			continue
		case name == lockFileName || !strings.HasPrefix(name, "snap_") || !strings.HasSuffix(name, ".jsonl"):
			continue
		}
		rep.Checked++
		s.checkSnapshot(rep, path, name, repair)
	}
	sort.Slice(rep.Problems, func(i, j int) bool { return rep.Problems[i].File < rep.Problems[j].File })
	return rep, nil
}

// checkSnapshot fully verifies one snapshot file and records the finding.
func (s *Store) checkSnapshot(rep *VerifyReport, path, name string, repair bool) {
	bad := func(cerr *CorruptError, data []byte, quarantinable bool) {
		if quarantinable {
			rep.Corrupt++
			if repair {
				cerr = s.quarantine(path, data, cerr)
			}
		} else {
			rep.Foreign++
		}
		rep.Problems = append(rep.Problems, Problem{File: name, Reason: cerr.Reason, Quarantined: cerr.Quarantined})
	}
	var data []byte
	err := s.retry("read", path, func() error {
		var rerr error
		data, rerr = os.ReadFile(path)
		return rerr
	})
	if err != nil {
		if isNotExist(err) {
			rep.Checked-- // raced with a concurrent quarantine or supersede
			return
		}
		rep.Problems = append(rep.Problems, Problem{File: name, Reason: "unreadable: " + err.Error()})
		rep.Corrupt++
		return
	}
	hdr, payload, cerr := split(path, data)
	if cerr != nil {
		bad(cerr, data, true)
		return
	}
	if hdr.Format != FormatName {
		bad(&CorruptError{Path: path, Reason: fmt.Sprintf("unknown format %q", hdr.Format)}, data, false)
		return
	}
	if hdr.Version != FormatVersion {
		bad(&CorruptError{Path: path,
			Reason: fmt.Sprintf("format version %d, this build reads only %d", hdr.Version, FormatVersion)}, data, false)
		return
	}
	// The file name must be the truncated digest of the header's own
	// address — a mismatch means the bytes were copied or bit-flipped into
	// the wrong slot and would answer the wrong key.
	wantName := "snap_" + (Key{ConfigHash: hdr.ConfigHash, OldHash: hdr.OldHash, NewHash: hdr.NewHash}).addr() + ".jsonl"
	if name != wantName {
		bad(&CorruptError{Path: path, Reason: "file name does not match header address"}, data, true)
		return
	}
	if _, cerr := decodeChecked(path, hdr, payload); cerr != nil {
		bad(cerr, data, true)
		return
	}
	rep.OK++
}
