package store

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"syscall"
	"time"
)

// IOError reports a snapshot-store operation that failed at the I/O layer —
// the directory or file could not be read, written, synced, renamed or
// locked. It is distinct from *CorruptError: a corrupt snapshot is a bad
// file the store can quarantine and route around, while an IOError means
// the medium itself misbehaved. Transient errors (interrupted syscalls,
// temporary resource exhaustion, lock contention) are retried with bounded
// exponential backoff before one is ever returned; what escapes is either
// permanent or outlasted the retry budget.
type IOError struct {
	Op        string // "read", "write", "sync", "rename", "lock", "scan"
	Path      string
	Err       error
	Transient bool
}

// Error renders the operation, path and cause.
func (e *IOError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("store: %s %s: %s i/o error: %v", e.Op, e.Path, kind, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *IOError) Unwrap() error { return e.Err }

// errLockBusy marks a lock held by a live writer: always worth retrying.
var errLockBusy = errors.New("store: lock held by another writer")

// transient reports whether an error is worth retrying: interrupted or
// would-block syscalls, temporary descriptor/table exhaustion, and lock
// contention. Permission errors, missing files, disk corruption (EIO) and
// a full disk are permanent — retrying cannot fix them on the retry
// budget's time scale.
func transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, errLockBusy) {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.EINTR, syscall.EAGAIN, syscall.EBUSY,
		syscall.ENFILE, syscall.EMFILE, syscall.ETIMEDOUT,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// ioErr classifies err into an *IOError unless it already is one (retry
// wrappers pass classified errors through unchanged).
func ioErr(op, path string, err error) *IOError {
	var ie *IOError
	if errors.As(err, &ie) {
		return ie
	}
	return &IOError{Op: op, Path: path, Err: err, Transient: transient(err)}
}

// RetryPolicy bounds the retries of transient I/O failures: up to Attempts
// tries with full-jitter exponential backoff from Base to Max between them.
type RetryPolicy struct {
	Attempts int           // total tries; <= 0 means DefaultRetry.Attempts
	Base     time.Duration // first backoff; <= 0 means DefaultRetry.Base
	Max      time.Duration // backoff cap; <= 0 means DefaultRetry.Max
}

// DefaultRetry is the policy Open installs: three tries, 5ms–250ms backoff.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond}

// normalized fills zero fields from DefaultRetry.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetry.Attempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetry.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultRetry.Max
	}
	return p
}

// backoff returns the jittered delay before retry attempt (0-based): a
// uniform draw from (0, Base*2^attempt] capped at Max. Full jitter
// decorrelates a fleet of replicas retrying against the same directory.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.Base << uint(attempt)
	if d <= 0 || d > p.Max {
		d = p.Max
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// lockRetry is the acquisition schedule for the writer lock: far more
// patient than the general I/O policy, because a busy lock is the normal
// state under write contention, not a fault — a waiter should outwait a
// healthy writer's few-millisecond hold, not give up on it.
var lockRetry = RetryPolicy{Attempts: 12, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}

// retry runs fn under the store's policy (see retryWith).
func (s *Store) retry(op, path string, fn func() error) error {
	return s.retryWith(s.opts.Retry.normalized(), op, path, fn)
}

// retryWith runs fn up to the policy's budget, sleeping a jittered backoff
// after each transient failure. Permanent failures and exhausted budgets
// return the classified error immediately; s.retries counts the sleeps.
func (s *Store) retryWith(policy RetryPolicy, op, path string, fn func() error) error {
	var err error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		ie := ioErr(op, path, err)
		if !ie.Transient || attempt == policy.Attempts-1 {
			return ie
		}
		s.retries.Add(1)
		time.Sleep(policy.backoff(attempt))
	}
	return ioErr(op, path, err)
}

// isNotExist matches the raw and classified flavors of a missing file.
func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist) || errors.Is(err, os.ErrNotExist)
}
