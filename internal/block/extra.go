package block

import (
	"strings"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// SurnameNYSIIS blocks on the NYSIIS phonetic code of the surname, a finer
// partition than Soundex (fewer false candidates, slightly lower recall).
func SurnameNYSIIS() Strategy {
	return Strategy{
		Name: "surname-nysiis",
		Keys: func(r *census.Record, _ int) []string {
			code := strsim.NYSIIS(r.Surname)
			if code == "" {
				return nil
			}
			return []string{"sny:" + code}
		},
	}
}

// SurnameQGrams blocks on the padded q-grams of the surname: two records
// become candidates if they share any q-gram. This is robust to arbitrary
// single typos (any one edit preserves most q-grams) at the cost of larger
// candidate sets; minLen skips very short surnames that would generate
// overly common keys.
func SurnameQGrams(q, minLen int) Strategy {
	if q < 2 {
		q = 3
	}
	if minLen < q {
		minLen = q
	}
	return Strategy{
		Name: "surname-qgrams",
		Keys: func(r *census.Record, _ int) []string {
			s := strings.ToLower(strings.TrimSpace(r.Surname))
			if len(s) < minLen {
				return nil
			}
			keys := make([]string, 0, len(s)-q+1)
			seen := make(map[string]bool, len(s))
			for i := 0; i+q <= len(s); i++ {
				g := s[i : i+q]
				if !seen[g] {
					seen[g] = true
					keys = append(keys, "sq:"+g)
				}
			}
			return keys
		},
	}
}

// Composite combines several strategies into one pass whose key is the
// concatenation of one key from each part (records match only if every part
// agrees). Parts that emit several keys multiply out; parts that emit none
// exclude the record.
func Composite(name string, parts ...Strategy) Strategy {
	return Strategy{
		Name: name,
		Keys: func(r *census.Record, year int) []string {
			combined := []string{""}
			for _, p := range parts {
				keys := p.Keys(r, year)
				if len(keys) == 0 {
					return nil
				}
				next := make([]string, 0, len(combined)*len(keys))
				for _, c := range combined {
					for _, k := range keys {
						next = append(next, c+"|"+k)
					}
				}
				combined = next
			}
			return combined
		},
	}
}

// SexKey is a building block for Composite: the record's sex as a key
// (records with unknown sex are excluded from the pass).
func SexKey() Strategy {
	return Strategy{
		Name: "sex",
		Keys: func(r *census.Record, _ int) []string {
			if r.Sex == census.SexUnknown {
				return nil
			}
			return []string{"sex:" + r.Sex.String()}
		},
	}
}

// HighRecallStrategies augments the default passes with a q-gram surname
// pass, for workloads with heavy name corruption.
func HighRecallStrategies() []Strategy {
	return append(DefaultStrategies(), SurnameQGrams(3, 4))
}
