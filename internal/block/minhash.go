package block

import (
	"fmt"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// MinHash/LSH q-gram blocking: the third index kind next to exact-key
// blocking and the sorted neighbourhood. Each record value is tokenized into
// padded q-grams, the gram set is summarized by a MinHash signature of
// Hashes independent permutations, and the signature is cut into Bands
// bands of Hashes/Bands rows each; one blocking key is emitted per band.
// Two records collide in a band exactly when all rows of that band agree,
// which happens with probability s^rows for gram-Jaccard similarity s —
// banding turns that into the classic S-curve 1-(1-s^r)^b, so near-duplicate
// names collide almost surely while unrelated names almost never do. That
// is a far tighter candidate set than a phonetic bucket (Soundex lumps every
// Smith/Smyth/Smed into one key) at near-identical recall on true matches.
//
// Because the scheme emits plain string keys through the same Strategy
// interface as the exact passes, it composes with everything downstream:
// multi-pass union, the prebuilt Index, per-δ filtering, and Config.Shards
// block-key sharding (a record is replicated into the shards its band keys
// hash to, so the sharded union still covers every LSH candidate pair).

// MinHashParams configures the q-gram MinHash/LSH scheme.
type MinHashParams struct {
	// Q is the gram length of the padded q-gram tokenization (2 by default —
	// the same granularity the qgram2 comparator scores with).
	Q int
	// Hashes is the signature length: the number of independent min-hash
	// permutations (16 by default). Must be a multiple of Bands.
	Hashes int
	// Bands is the number of LSH bands the signature is cut into (8 by
	// default, i.e. 2 rows per band ≈ collision threshold s ≈ 0.35).
	Bands int
}

// withDefaults fills zero fields with the default parameterization.
func (p MinHashParams) withDefaults() MinHashParams {
	if p.Q < 1 {
		p.Q = 2
	}
	if p.Hashes < 1 {
		p.Hashes = 16
	}
	if p.Bands < 1 || p.Bands > p.Hashes {
		p.Bands = 8
		if p.Bands > p.Hashes {
			p.Bands = p.Hashes
		}
	}
	for p.Hashes%p.Bands != 0 {
		p.Hashes++ // round the signature up to a whole number of bands
	}
	return p
}

// String renders the parameterization for strategy names, so differently
// parameterized LSH passes fingerprint differently (linkage.Fingerprint
// hashes strategies by name).
func (p MinHashParams) String() string {
	return fmt.Sprintf("q=%d,h=%d,b=%d", p.Q, p.Hashes, p.Bands)
}

// splitmix64 is the seed expander of the permutation constants: a fixed,
// platform-independent stream so signatures are stable across runs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// permConsts returns the 2k multiply/add constants of k min-hash
// permutations h_i(x) = a_i*x + b_i (odd multipliers so the maps are
// bijective on 64-bit words), derived deterministically from a fixed seed.
func permConsts(k int) []uint64 {
	out := make([]uint64, 2*k)
	seed := uint64(0xc3a5c85c97cb3127) // fixed: signatures must be reproducible
	for i := range out {
		seed = splitmix64(seed)
		out[i] = seed
		if i%2 == 0 {
			out[i] |= 1 // multiplier: force odd
		}
	}
	return out
}

// minhasher holds the precomputed permutation constants of one MinHash
// pass. It is immutable after construction and therefore safe to share
// across concurrent index queries (the Index contract: Keys functions run
// inside CandidateIndices from many workers at once), so per-call state
// lives on the caller's stack or in a per-call signature slice.
type minhasher struct {
	p      MinHashParams
	consts []uint64
}

func newMinhasher(p MinHashParams) *minhasher {
	p = p.withDefaults()
	return &minhasher{p: p, consts: permConsts(p.Hashes)}
}

// signature fills sig (length p.Hashes) with the MinHash signature of the
// padded q-gram set of the already-normalized value and reports whether the
// value produced any grams. Gram hashing is byte-oriented over the UTF-8
// encoding — after strsim.Normalize folds diacritics the hot path is pure
// ASCII, and any remaining multi-byte runes hash consistently on both sides
// of a pair.
func (h *minhasher) signature(norm string, sig []uint64) bool {
	if norm == "" {
		return false
	}
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	q := h.p.Q
	// Pad with q-1 sentinel bytes on both ends, mirroring strsim.qgrams, so
	// prefix and suffix grams carry extra weight.
	pad := q - 1
	n := len(norm) + 2*pad
	if n < q {
		return false
	}
	for start := 0; start+q <= n; start++ {
		// FNV-1a over the gram bytes, computed inline so no gram buffer is
		// materialized (out-of-range positions are the 0x00 pad sentinel).
		g := uint64(offset64)
		for j := 0; j < q; j++ {
			pos := start + j - pad
			var c byte
			if pos >= 0 && pos < len(norm) {
				c = norm[pos]
			}
			g ^= uint64(c)
			g *= prime64
		}
		for i := 0; i < h.p.Hashes; i++ {
			v := h.consts[2*i]*g + h.consts[2*i+1]
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return true
}

// bandKeys appends one key per band of the signature, prefixed so keys of
// different passes (and different band indices) never collide.
func (h *minhasher) bandKeys(sig []uint64, prefix string, suffix string, keys []string) []string {
	rows := h.p.Hashes / h.p.Bands
	var buf [16]byte
	for b := 0; b < h.p.Bands; b++ {
		// Mix the band's rows into one 64-bit key value.
		acc := uint64(b) + 0x9e3779b97f4a7c15
		for r := 0; r < rows; r++ {
			acc = splitmix64(acc ^ sig[b*rows+r])
		}
		for i := 0; i < 16; i++ {
			buf[i] = "0123456789abcdef"[acc>>(60-4*i)&0xf]
		}
		keys = append(keys, prefix+string(rune('a'+b))+":"+string(buf[:])+suffix)
	}
	return keys
}

// SurnameMinHash blocks on banded MinHash signatures of the surname's
// q-grams: the LSH counterpart of SurnameSoundex.
func SurnameMinHash(p MinHashParams) Strategy {
	h := newMinhasher(p)
	return Strategy{
		Name: "surname-minhash(" + h.p.String() + ")",
		Keys: func(r *census.Record, _ int) []string {
			sig := make([]uint64, h.p.Hashes)
			if !h.signature(strsim.Normalize(r.Surname), sig) {
				return nil
			}
			return h.bandKeys(sig, "Ls", "", make([]string, 0, h.p.Bands))
		},
	}
}

// FirstNameMinHashSex blocks on banded MinHash signatures of the first
// name's q-grams combined with sex: the LSH counterpart of
// FirstNameSoundexSex, recovering records whose surname changed between
// censuses.
func FirstNameMinHashSex(p MinHashParams) Strategy {
	h := newMinhasher(p)
	return Strategy{
		Name: "firstname-minhash-sex(" + h.p.String() + ")",
		Keys: func(r *census.Record, _ int) []string {
			sig := make([]uint64, h.p.Hashes)
			if !h.signature(strsim.Normalize(r.FirstName), sig) {
				return nil
			}
			return h.bandKeys(sig, "Lf", ":"+r.Sex.String(), make([]string, 0, h.p.Bands))
		},
	}
}

// FullNameMinHash blocks on banded MinHash signatures of the q-grams of the
// whole name (first name and surname, separator-joined so grams never span
// the boundary). It is the safety net of the LSH scheme: records the
// birth-year-composed passes exclude (missing age, larger age-recording
// errors) still pair with their close full-name variants.
func FullNameMinHash(p MinHashParams) Strategy {
	h := newMinhasher(p)
	return Strategy{
		Name: "fullname-minhash(" + h.p.String() + ")",
		Keys: func(r *census.Record, _ int) []string {
			fn, sn := strsim.Normalize(r.FirstName), strsim.Normalize(r.Surname)
			if fn == "" && sn == "" {
				return nil
			}
			sig := make([]uint64, h.p.Hashes)
			if !h.signature(fn+"|"+sn, sig) {
				return nil
			}
			return h.bandKeys(sig, "Ln", "", make([]string, 0, h.p.Bands))
		},
	}
}

// LSHConfig parameterizes the full MinHash/LSH blocking scheme.
//
// Measurement on the synthetic evaluation pair shows why the scheme has
// three passes rather than mirroring the two phonetic passes directly: over
// 90% of the default scheme's candidate pairs come from records with
// *identical* surnames or identical first names (the census name pool is
// small), and no similarity threshold separates identical values. The
// per-field passes therefore compose their LSH bands with a narrow
// birth-year band (±width years of slack), which subdivides the big
// same-name buckets by a nearly-stable second attribute; the full-name pass
// then recovers the records those passes exclude (missing age, age errors
// beyond the band) whenever the whole name stays recognizably similar.
type LSHConfig struct {
	// Name parameterizes the surname and first-name passes (zero value:
	// q=2, h=16, b=8 — a loose ≈0.35 Jaccard knee, fine because the
	// birth-year composition does the heavy pruning).
	Name MinHashParams
	// FullName parameterizes the full-name recovery pass (zero value:
	// q=2, h=24, b=4 — a tight ≈0.79 knee, since this pass runs without a
	// birth-year guard).
	FullName MinHashParams
	// BirthYearWidth is the band width composed with the name passes; bands
	// are emitted with their two neighbours, so records collide when their
	// estimated birth years differ by at most 2·width (zero value: 1).
	BirthYearWidth int
}

// DefaultLSHConfig is the measured trade-off point: ≥ 5x fewer candidate
// pairs than DefaultStrategies at ≥ 0.98 of their true-match coverage on
// the synthetic evaluation pair (see the experiments harness
// BlockingComparison and the prematch_lsh_* bench-trajectory rows).
func DefaultLSHConfig() LSHConfig {
	return LSHConfig{
		Name:           MinHashParams{Q: 2, Hashes: 16, Bands: 8},
		FullName:       MinHashParams{Q: 2, Hashes: 24, Bands: 4},
		BirthYearWidth: 1,
	}
}

// withDefaults fills zero fields with the default scheme parameterization.
func (c LSHConfig) withDefaults() LSHConfig {
	def := DefaultLSHConfig()
	if c.FullName == (MinHashParams{}) {
		c.FullName = def.FullName
	}
	if c.BirthYearWidth < 1 {
		c.BirthYearWidth = def.BirthYearWidth
	}
	c.Name = c.Name.withDefaults()
	c.FullName = c.FullName.withDefaults()
	return c
}

// LSHStrategies is the MinHash/LSH multi-pass blocking configuration: the
// birth-year-guarded surname and first-name+sex LSH passes plus the
// full-name recovery pass (see LSHConfig for why). Every pass emits plain
// string keys, so the scheme shares the exact-key index machinery and
// composes with block-key sharding unchanged.
func LSHStrategies(c LSHConfig) []Strategy {
	c = c.withDefaults()
	sur := SurnameMinHash(c.Name)
	fn := FirstNameMinHashSex(c.Name)
	by := func() Strategy { return BirthYearBand(c.BirthYearWidth) }
	return []Strategy{
		Composite(sur.Name+"+by"+itoa(c.BirthYearWidth), sur, by()),
		Composite(fn.Name+"+by"+itoa(c.BirthYearWidth), fn, by()),
		FullNameMinHash(c.FullName),
	}
}
