package block

import (
	"fmt"
	"testing"

	"censuslink/internal/census"
)

// makeDataset builds a dataset from (first, surname, sex, age) tuples, one
// record per household.
func makeDataset(t *testing.T, year int, rows [][4]string) *census.Dataset {
	t.Helper()
	d := census.NewDataset(year)
	for i, row := range rows {
		age := census.AgeMissing
		if row[3] != "" {
			fmt.Sscanf(row[3], "%d", &age)
		}
		r := &census.Record{
			ID:          fmt.Sprintf("%d_%d", year, i),
			HouseholdID: fmt.Sprintf("h%d_%d", year, i),
			FirstName:   row[0],
			Surname:     row[1],
			Sex:         census.ParseSex(row[2]),
			Age:         age,
			Role:        census.RoleHead,
		}
		if err := d.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func collectPairs(old, new *census.Dataset, strategies []Strategy) map[string]bool {
	got := map[string]bool{}
	Candidates(old.Records(), old.Year, new.Records(), new.Year, strategies, func(o, n *census.Record) {
		got[o.ID+"|"+n.ID] = true
	})
	return got
}

func TestSurnameSoundexBlocksVariants(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"john", "smith", "m", "30"},
		{"mary", "taylor", "f", "25"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"john", "smyth", "m", "40"}, // same soundex as smith
		{"mary", "walker", "f", "35"},
	})
	pairs := collectPairs(old, new, []Strategy{SurnameSoundex()})
	if !pairs["1871_0|1881_0"] {
		t.Error("smith/smyth should be candidates")
	}
	if pairs["1871_1|1881_1"] {
		t.Error("taylor/walker should not be candidates")
	}
}

func TestFirstNameSexPassRecoversSurnameChange(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"alice", "ashworth", "f", "18"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"alice", "smith", "f", "28"}, // married, surname changed
		{"alice", "smith", "m", "2"},  // different sex, must not block on pass 2
	})
	surnameOnly := collectPairs(old, new, []Strategy{SurnameSoundex()})
	if len(surnameOnly) != 0 {
		t.Fatalf("surname pass should miss the marriage case: %v", surnameOnly)
	}
	both := collectPairs(old, new, DefaultStrategies())
	if !both["1871_0|1881_0"] {
		t.Error("first-name pass should recover the surname change")
	}
	if both["1871_0|1881_1"] {
		t.Error("sex mismatch should prevent first-name blocking")
	}
}

func TestCandidatesDeduplicates(t *testing.T) {
	// Same surname soundex AND same first name soundex: both passes emit the
	// pair; visit must run once.
	old := makeDataset(t, 1871, [][4]string{{"john", "smith", "m", "30"}})
	new := makeDataset(t, 1881, [][4]string{{"john", "smith", "m", "40"}})
	count := 0
	Candidates(old.Records(), old.Year, new.Records(), new.Year, DefaultStrategies(), func(_, _ *census.Record) { count++ })
	if count != 1 {
		t.Errorf("pair visited %d times, want 1", count)
	}
}

func TestBirthYearBand(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"a", "b", "m", "30"}, // born 1841
		{"c", "d", "m", ""},   // missing age -> no key
	})
	new := makeDataset(t, 1881, [][4]string{
		{"e", "f", "m", "41"}, // born 1840: adjacent band must collide
		{"g", "h", "m", "5"},  // born 1876: far away
	})
	pairs := collectPairs(old, new, []Strategy{BirthYearBand(5)})
	if !pairs["1871_0|1881_0"] {
		t.Error("neighbouring birth-year bands should collide")
	}
	if pairs["1871_0|1881_1"] {
		t.Error("distant birth years should not collide")
	}
	for k := range pairs {
		if k[:6] == "1871_1" {
			t.Error("record with missing age should emit no keys")
		}
	}
}

func TestCrossProduct(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"a", "b", "m", "1"}, {"c", "d", "f", "2"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"e", "f", "m", "3"}, {"g", "h", "f", "4"}, {"i", "j", "m", "5"},
	})
	if got := CountPairs(old.Records(), old.Year, new.Records(), new.Year, []Strategy{CrossProduct()}); got != 6 {
		t.Errorf("CountPairs cross product = %d, want 6", got)
	}
}

// TestCandidatesSupersetOfExactKey: every pair of records with identical
// surname must be produced by the surname pass (blocking completeness on
// exact duplicates).
func TestCandidatesSupersetOfExactKey(t *testing.T) {
	names := []string{"smith", "ashworth", "riley", "taylor", "smith", "riley"}
	var rowsOld, rowsNew [][4]string
	for i, n := range names {
		rowsOld = append(rowsOld, [4]string{fmt.Sprintf("p%d", i), n, "m", "20"})
		rowsNew = append(rowsNew, [4]string{fmt.Sprintf("q%d", i), n, "m", "30"})
	}
	old := makeDataset(t, 1871, rowsOld)
	new := makeDataset(t, 1881, rowsNew)
	pairs := collectPairs(old, new, []Strategy{SurnameSoundex()})
	for i, a := range names {
		for j, b := range names {
			if a == b && !pairs[fmt.Sprintf("1871_%d|1881_%d", i, j)] {
				t.Errorf("exact surname pair (%d,%d) missing", i, j)
			}
		}
	}
}

func TestCandidatesDeterministicOrder(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"john", "smith", "m", "30"}, {"jane", "smith", "f", "28"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"john", "smith", "m", "40"}, {"jane", "smith", "f", "38"}, {"jack", "smith", "m", "10"},
	})
	var first []string
	Candidates(old.Records(), old.Year, new.Records(), new.Year, DefaultStrategies(), func(o, n *census.Record) {
		first = append(first, o.ID+"|"+n.ID)
	})
	for trial := 0; trial < 5; trial++ {
		var again []string
		Candidates(old.Records(), old.Year, new.Records(), new.Year, DefaultStrategies(), func(o, n *census.Record) {
			again = append(again, o.ID+"|"+n.ID)
		})
		if len(again) != len(first) {
			t.Fatalf("pair count varies: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("order varies at %d: %s vs %s", i, first[i], again[i])
			}
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", -3: "-3", 1851: "1851", -190: "-190"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkCandidates(b *testing.B) {
	old := census.NewDataset(1871)
	new := census.NewDataset(1881)
	surnames := []string{"smith", "ashworth", "riley", "taylor", "walker", "holt", "lord", "barnes"}
	firsts := []string{"john", "mary", "william", "elizabeth", "thomas", "sarah"}
	for i := 0; i < 2000; i++ {
		r := &census.Record{
			ID: fmt.Sprintf("o%d", i), HouseholdID: fmt.Sprintf("ho%d", i/4),
			FirstName: firsts[i%len(firsts)], Surname: surnames[i%len(surnames)],
			Sex: census.SexMale, Age: i % 80, Role: census.RoleHead,
		}
		if err := old.AddRecord(r); err != nil {
			b.Fatal(err)
		}
		r2 := *r
		r2.ID = fmt.Sprintf("n%d", i)
		r2.HouseholdID = fmt.Sprintf("hn%d", i/4)
		if err := new.AddRecord(&r2); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountPairs(old.Records(), old.Year, new.Records(), new.Year, DefaultStrategies())
	}
}
