package block

import (
	"sort"

	"censuslink/internal/census"
)

// SortKey derives the sorting key of a record for sorted-neighbourhood
// blocking (e.g. surname + first-name initial).
type SortKey func(r *census.Record) string

// DefaultSortKey sorts by surname, then first name — the classic choice for
// census data.
func DefaultSortKey(r *census.Record) string {
	return r.Surname + "\x00" + r.FirstName
}

// SortedNeighborhood enumerates candidate pairs with the sorted-
// neighbourhood method (Hernández & Stolfo): the records of both datasets
// are merged, sorted by the key, and a window of the given size slides over
// the sorted list; every old/new pair inside a window becomes a candidate.
// Each distinct pair is visited once, in deterministic order.
//
// Compared to key blocking, sorted neighbourhood also pairs records whose
// keys are close but not identical (adjacent typo variants), at the cost of
// missing pairs whose keys diverge early (e.g. a changed surname).
func SortedNeighborhood(old []*census.Record, new []*census.Record,
	key SortKey, window int, visit func(o, n *census.Record)) {
	if key == nil {
		key = DefaultSortKey
	}
	if window < 2 {
		window = 2
	}
	type entry struct {
		rec   *census.Record
		key   string
		isOld bool
		pos   int // original position, for stable ordering
	}
	merged := make([]entry, 0, len(old)+len(new))
	for i, r := range old {
		merged = append(merged, entry{rec: r, key: key(r), isOld: true, pos: i})
	}
	for i, r := range new {
		merged = append(merged, entry{rec: r, key: key(r), isOld: false, pos: i})
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].key != merged[j].key {
			return merged[i].key < merged[j].key
		}
		if merged[i].isOld != merged[j].isOld {
			return merged[i].isOld
		}
		return merged[i].pos < merged[j].pos
	})

	// Each record appears exactly once in the merged list and each position
	// pair (i, j) with i < j < i+window is enumerated exactly once, so every
	// (old, new) record pair is emitted at most once by construction — no
	// dedup map is needed (the one this loop used to carry held
	// O(window·n) entries of pure overhead on million-record runs; see
	// TestSortedNeighborhoodNoDuplicates).
	for i := range merged {
		hi := i + window
		if hi > len(merged) {
			hi = len(merged)
		}
		for j := i + 1; j < hi; j++ {
			a, b := merged[i], merged[j]
			if a.isOld == b.isOld {
				continue
			}
			if !a.isOld {
				a, b = b, a
			}
			visit(a.rec, b.rec)
		}
	}
}
