package block

import (
	"strings"
	"sync"
	"testing"

	"censuslink/internal/census"
)

func mhRecord(first, sur, sex string) *census.Record {
	return &census.Record{
		ID:        "x",
		FirstName: first,
		Surname:   sur,
		Sex:       census.ParseSex(sex),
	}
}

func TestMinHashParamsDefaults(t *testing.T) {
	p := MinHashParams{}.withDefaults()
	if p.Q != 2 || p.Hashes != 16 || p.Bands != 8 {
		t.Fatalf("defaults = %+v, want q=2 h=16 b=8", p)
	}
	// Signature length rounds up to a whole number of bands.
	p = MinHashParams{Q: 2, Hashes: 10, Bands: 4}.withDefaults()
	if p.Hashes%p.Bands != 0 {
		t.Fatalf("hashes %d not a multiple of bands %d", p.Hashes, p.Bands)
	}
	if (MinHashParams{Q: 3, Hashes: 12, Bands: 6}).String() != "q=3,h=12,b=6" {
		t.Fatal("String() does not render params")
	}
}

func TestMinHashKeysDeterministic(t *testing.T) {
	s := SurnameMinHash(MinHashParams{})
	r := mhRecord("ann", "ashworth", "f")
	first := s.Keys(r, 1871)
	if len(first) != 8 {
		t.Fatalf("got %d band keys, want 8", len(first))
	}
	for i := 0; i < 5; i++ {
		again := SurnameMinHash(MinHashParams{}).Keys(r, 1881)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("keys not deterministic across instances/years: %v vs %v", first, again)
			}
		}
	}
}

// TestMinHashIdenticalValuesCollide: equal (post-normalization) values must
// share every band key — exact duplicates always survive LSH blocking.
func TestMinHashIdenticalValuesCollide(t *testing.T) {
	s := SurnameMinHash(MinHashParams{})
	a := s.Keys(mhRecord("x", "Jóhannsson", "m"), 1871)
	b := s.Keys(mhRecord("y", "johannsson", "f"), 1881)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("key counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("band %d differs for identical normalized surnames: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestMinHashSimilarNamesCollide: close typo variants should share at least
// one band (that is the entire point of banding), while unrelated names
// should share none.
func TestMinHashSimilarNamesCollide(t *testing.T) {
	s := SurnameMinHash(MinHashParams{})
	shared := func(x, y string) int {
		a := s.Keys(mhRecord("", x, "m"), 1871)
		b := s.Keys(mhRecord("", y, "m"), 1881)
		bs := map[string]bool{}
		for _, k := range b {
			bs[k] = true
		}
		n := 0
		for _, k := range a {
			if bs[k] {
				n++
			}
		}
		return n
	}
	for _, pair := range [][2]string{
		{"ashworth", "ashwirth"},
		{"johansson", "johanson"},
		{"thompson", "thomson"},
	} {
		if shared(pair[0], pair[1]) == 0 {
			t.Errorf("typo variants %q/%q share no band", pair[0], pair[1])
		}
	}
	if n := shared("ashworth", "zimmermann"); n != 0 {
		t.Errorf("unrelated surnames share %d bands, want 0", n)
	}
}

func TestMinHashKeyShape(t *testing.T) {
	sur := SurnameMinHash(MinHashParams{})
	for i, k := range sur.Keys(mhRecord("", "smith", "m"), 1871) {
		if !strings.HasPrefix(k, "Ls"+string(rune('a'+i))+":") {
			t.Errorf("surname band %d key %q lacks its band prefix", i, k)
		}
	}
	fn := FirstNameMinHashSex(MinHashParams{})
	keys := fn.Keys(mhRecord("mary", "", "f"), 1871)
	for i, k := range keys {
		if !strings.HasPrefix(k, "Lf"+string(rune('a'+i))+":") {
			t.Errorf("firstname band %d key %q lacks its band prefix", i, k)
		}
		if !strings.HasSuffix(k, ":f") {
			t.Errorf("firstname key %q lacks the sex suffix", k)
		}
	}
	// Different sex must never collide on the firstname pass.
	m := fn.Keys(mhRecord("mary", "", "m"), 1871)
	for i := range keys {
		if keys[i] == m[i] {
			t.Errorf("band %d collides across sex: %q", i, keys[i])
		}
	}
	// Empty values exclude the record from the pass.
	if got := sur.Keys(mhRecord("x", "", "m"), 1871); got != nil {
		t.Errorf("empty surname produced keys %v", got)
	}
	if got := sur.Keys(mhRecord("x", "   ", "m"), 1871); got != nil {
		t.Errorf("blank surname produced keys %v", got)
	}
}

// TestMinHashNamesEncodeParams: Config.Fingerprint hashes strategies by name
// only, so distinct parameterizations must have distinct names.
func TestMinHashNamesEncodeParams(t *testing.T) {
	a := SurnameMinHash(MinHashParams{Hashes: 16, Bands: 8})
	b := SurnameMinHash(MinHashParams{Hashes: 32, Bands: 16})
	if a.Name == b.Name {
		t.Fatalf("parameterizations share the name %q", a.Name)
	}
	names := map[string]bool{}
	for _, s := range LSHStrategies(LSHConfig{}) {
		if names[s.Name] {
			t.Fatalf("duplicate strategy name %q in LSH bundle", s.Name)
		}
		names[s.Name] = true
	}
	// The zero config resolves to the documented default scheme, and its
	// composite names bake every parameter in.
	def := LSHStrategies(DefaultLSHConfig())
	zero := LSHStrategies(LSHConfig{})
	if len(def) != 3 || len(zero) != 3 {
		t.Fatalf("LSH bundle has %d/%d passes, want 3", len(def), len(zero))
	}
	for i := range def {
		if def[i].Name != zero[i].Name {
			t.Errorf("pass %d: zero config %q != default config %q", i, zero[i].Name, def[i].Name)
		}
	}
	tighter := LSHStrategies(LSHConfig{BirthYearWidth: 3})
	if tighter[0].Name == def[0].Name {
		t.Errorf("birth-year width not baked into pass name %q", tighter[0].Name)
	}
}

// TestMinHashConcurrentQueries: Keys functions run inside concurrent index
// queries; the strategy must be safe to share (run with -race).
func TestMinHashConcurrentQueries(t *testing.T) {
	rows := [][4]string{
		{"ann", "ashworth", "f", "30"}, {"bob", "ashwirth", "m", "31"},
		{"cat", "johansson", "f", "32"}, {"dan", "johanson", "m", "33"},
	}
	old := makeDataset(t, 1871, rows)
	new := makeDataset(t, 1881, rows)
	ix := NewIndex(new.Records(), 1881, LSHStrategies(LSHConfig{}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc Scratch
			for i := 0; i < 50; i++ {
				for _, o := range old.Records() {
					ix.CandidateIndices(o, 1871, &sc)
				}
			}
		}()
	}
	wg.Wait()
}

// TestMinHashUnionWithIndex: through the full multi-pass index, identical
// records pair via LSH blocking just as with the exact passes.
func TestMinHashUnionWithIndex(t *testing.T) {
	rows := [][4]string{
		{"ann", "ashworth", "f", "30"},
		{"mary", "zimmer", "f", "25"},
	}
	old := makeDataset(t, 1871, rows)
	new := makeDataset(t, 1881, [][4]string{
		{"ann", "ashwirth", "f", "40"}, // surname typo
		{"mary", "taylor", "f", "35"},  // surname change: firstname pass must catch it
	})
	got := map[string]bool{}
	Candidates(old.Records(), 1871, new.Records(), 1881, LSHStrategies(LSHConfig{}),
		func(o, n *census.Record) { got[o.ID+"|"+n.ID] = true })
	if !got["1871_0|1881_0"] {
		t.Error("surname typo pair missed by LSH blocking")
	}
	if !got["1871_1|1881_1"] {
		t.Error("surname-change pair missed by the firstname LSH pass")
	}
}

// TestMinHashMissingAgeRecovered: records without an age fall out of the
// birth-year-guarded passes; the full-name pass must still pair them. An
// identical full name collides in every band (Jaccard 1), so this is
// deterministic; typo variants collide probabilistically per the S-curve
// and are covered in aggregate by the experiments coverage gate.
func TestMinHashMissingAgeRecovered(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{{"ann", "ashworth", "f", ""}})
	new := makeDataset(t, 1881, [][4]string{{"ann", "ashworth", "f", "40"}})
	got := 0
	Candidates(old.Records(), 1871, new.Records(), 1881, LSHStrategies(LSHConfig{}),
		func(o, n *census.Record) { got++ })
	if got != 1 {
		t.Errorf("missing-age pair candidates = %d, want 1", got)
	}
	// With ages present but far apart, only the full-name pass can pair the
	// records — the birth-year guard excludes the per-field passes.
	old = makeDataset(t, 1871, [][4]string{{"ann", "ashworth", "f", "20"}})
	new = makeDataset(t, 1881, [][4]string{{"ann", "ashworth", "f", "50"}})
	got = 0
	Candidates(old.Records(), 1871, new.Records(), 1881, LSHStrategies(LSHConfig{}),
		func(o, n *census.Record) { got++ })
	if got != 1 {
		t.Errorf("age-divergent pair candidates = %d, want 1 (full-name pass)", got)
	}
}
