package block

import (
	"math/rand"
	"testing"

	"censuslink/internal/census"
)

func snPairs(old, new *census.Dataset, window int) map[string]bool {
	got := map[string]bool{}
	SortedNeighborhood(old.Records(), new.Records(), nil, window,
		func(o, n *census.Record) { got[o.ID+"|"+n.ID] = true })
	return got
}

func TestSortedNeighborhoodAdjacentKeys(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"john", "ashworth", "m", "30"},
		{"mary", "zimmer", "f", "25"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"john", "ashwirth", "m", "40"}, // typo: sorts adjacent to ashworth
		{"mary", "zimmer", "f", "35"},
	})
	pairs := snPairs(old, new, 2)
	if !pairs["1871_0|1881_0"] {
		t.Error("adjacent typo variant should be a candidate")
	}
	if !pairs["1871_1|1881_1"] {
		t.Error("identical keys should be candidates")
	}
	// ashworth and zimmer sort far apart: not candidates at window 3.
	if pairs["1871_0|1881_1"] {
		t.Error("distant keys should not pair at window 2")
	}
}

func TestSortedNeighborhoodWindowGrowsCoverage(t *testing.T) {
	rows := [][4]string{
		{"a", "barker", "m", "20"}, {"b", "barnes", "m", "21"},
		{"c", "barton", "m", "22"}, {"d", "baxter", "m", "23"},
	}
	old := makeDataset(t, 1871, rows)
	new := makeDataset(t, 1881, rows)
	small := snPairs(old, new, 2)
	large := snPairs(old, new, 8)
	if len(large) <= len(small) {
		t.Errorf("larger window should add candidates: %d vs %d", len(large), len(small))
	}
	for p := range small {
		if !large[p] {
			t.Errorf("pair %s lost when growing the window", p)
		}
	}
}

func TestSortedNeighborhoodNoDuplicatesNoSameSide(t *testing.T) {
	rows := [][4]string{
		{"a", "smith", "m", "20"}, {"b", "smith", "m", "21"}, {"c", "smith", "m", "22"},
	}
	old := makeDataset(t, 1871, rows)
	new := makeDataset(t, 1881, rows)
	count := map[string]int{}
	SortedNeighborhood(old.Records(), new.Records(), nil, 6,
		func(o, n *census.Record) {
			if o.ID[:4] != "1871" || n.ID[:4] != "1881" {
				t.Fatalf("pair sides wrong: %s %s", o.ID, n.ID)
			}
			count[o.ID+"|"+n.ID]++
		})
	for p, c := range count {
		if c != 1 {
			t.Errorf("pair %s visited %d times", p, c)
		}
	}
	// Window 6 over 6 identical keys: all 9 cross pairs.
	if len(count) != 9 {
		t.Errorf("pairs = %d, want 9", len(count))
	}
}

// TestSortedNeighborhoodNoDuplicates drives the window over randomized
// datasets with heavy key skew (many ties, interleaved sides) across window
// sizes and asserts every (old, new) pair is emitted exactly once — the
// by-construction uniqueness that let the O(window·n) dedup map be removed.
func TestSortedNeighborhoodNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	surnames := []string{"smith", "smith", "smyth", "taylor", "b", ""}
	firsts := []string{"ann", "ann", "bob", "cy", ""}
	mk := func(year, n int) *census.Dataset {
		rows := make([][4]string, n)
		for i := range rows {
			rows[i] = [4]string{
				firsts[rng.Intn(len(firsts))],
				surnames[rng.Intn(len(surnames))],
				"m", "30",
			}
		}
		return makeDataset(t, year, rows)
	}
	for _, window := range []int{2, 3, 5, 17, 1000} {
		old := mk(1871, 40)
		new := mk(1881, 37)
		count := map[string]int{}
		SortedNeighborhood(old.Records(), new.Records(), nil, window,
			func(o, n *census.Record) { count[o.ID+"|"+n.ID]++ })
		for p, c := range count {
			if c != 1 {
				t.Fatalf("window %d: pair %s emitted %d times, want exactly 1", window, p, c)
			}
		}
		if window >= 1000 && len(count) != 40*37 {
			t.Errorf("window %d: pairs = %d, want full cross product %d", window, len(count), 40*37)
		}
	}
}

func TestSortedNeighborhoodDeterministic(t *testing.T) {
	rows := [][4]string{
		{"a", "smith", "m", "20"}, {"b", "smith", "m", "21"}, {"c", "taylor", "m", "22"},
	}
	old := makeDataset(t, 1871, rows)
	new := makeDataset(t, 1881, rows)
	var first []string
	SortedNeighborhood(old.Records(), new.Records(), nil, 4,
		func(o, n *census.Record) { first = append(first, o.ID+"|"+n.ID) })
	for i := 0; i < 3; i++ {
		var again []string
		SortedNeighborhood(old.Records(), new.Records(), nil, 4,
			func(o, n *census.Record) { again = append(again, o.ID+"|"+n.ID) })
		if len(again) != len(first) {
			t.Fatal("length varies")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("order varies")
			}
		}
	}
}
