package block

import (
	"testing"

	"censuslink/internal/census"
)

func TestSurnameNYSIIS(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"a", "brown", "m", "30"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"b", "browne", "m", "40"},
		{"c", "taylor", "m", "40"},
	})
	pairs := collectPairs(old, new, []Strategy{SurnameNYSIIS()})
	if !pairs["1871_0|1881_0"] {
		t.Error("brown/browne should share a NYSIIS block")
	}
	if pairs["1871_0|1881_1"] {
		t.Error("brown/taylor should not share a NYSIIS block")
	}
}

func TestSurnameQGramsCatchesAnyTypo(t *testing.T) {
	// A middle-of-word substitution breaks Soundex ("ashworth" vs
	// "ashwgrth": A263 vs A262) but q-gram blocking still collides.
	old := makeDataset(t, 1871, [][4]string{{"a", "ashworth", "m", "30"}})
	new := makeDataset(t, 1881, [][4]string{{"a", "ashwgrth", "m", "40"}})
	qg := collectPairs(old, new, []Strategy{SurnameQGrams(3, 4)})
	if !qg["1871_0|1881_0"] {
		t.Error("q-gram blocking should survive a mid-word substitution")
	}
}

func TestSurnameQGramsMinLen(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{{"a", "kay", "m", "30"}})
	new := makeDataset(t, 1881, [][4]string{{"a", "kay", "m", "40"}})
	if got := collectPairs(old, new, []Strategy{SurnameQGrams(3, 4)}); len(got) != 0 {
		t.Errorf("surname below min length should emit no keys: %v", got)
	}
}

func TestSurnameQGramsNoDuplicateVisits(t *testing.T) {
	// Shared q-grams appear in several positions; the pair must still be
	// visited once.
	old := makeDataset(t, 1871, [][4]string{{"a", "banana", "m", "30"}})
	new := makeDataset(t, 1881, [][4]string{{"a", "banana", "m", "40"}})
	count := 0
	Candidates(old.Records(), old.Year, new.Records(), new.Year,
		[]Strategy{SurnameQGrams(3, 4)}, func(_, _ *census.Record) { count++ })
	if count != 1 {
		t.Errorf("visited %d times, want 1", count)
	}
}

func TestComposite(t *testing.T) {
	comp := Composite("surname+sex", SurnameSoundex(), SexKey())
	old := makeDataset(t, 1871, [][4]string{
		{"a", "smith", "m", "30"},
		{"b", "smith", "", "30"}, // unknown sex: excluded
	})
	new := makeDataset(t, 1881, [][4]string{
		{"c", "smith", "m", "40"},
		{"d", "smith", "f", "40"},
	})
	pairs := collectPairs(old, new, []Strategy{comp})
	if !pairs["1871_0|1881_0"] {
		t.Error("same surname and sex should block")
	}
	if pairs["1871_0|1881_1"] {
		t.Error("sex mismatch should not block")
	}
	for k := range pairs {
		if k[:6] == "1871_1" {
			t.Error("record with unknown sex should emit no composite keys")
		}
	}
}

func TestCompositeMultiKeyParts(t *testing.T) {
	// BirthYearBand emits three keys; composite with sex must multiply out
	// and still match neighbouring bands.
	comp := Composite("birthyear+sex", BirthYearBand(5), SexKey())
	old := makeDataset(t, 1871, [][4]string{{"a", "x", "m", "30"}})
	new := makeDataset(t, 1881, [][4]string{{"b", "y", "m", "41"}})
	pairs := collectPairs(old, new, []Strategy{comp})
	if !pairs["1871_0|1881_0"] {
		t.Error("adjacent birth-year bands with matching sex should block")
	}
}

func TestHighRecallStrategiesSuperset(t *testing.T) {
	old := makeDataset(t, 1871, [][4]string{
		{"john", "ashworth", "m", "30"},
		{"mary", "pickup", "f", "28"},
	})
	new := makeDataset(t, 1881, [][4]string{
		{"john", "ashworth", "m", "40"},
		{"mary", "pickup", "f", "38"},
		{"jane", "walker", "f", "20"},
	})
	base := collectPairs(old, new, DefaultStrategies())
	high := collectPairs(old, new, HighRecallStrategies())
	for p := range base {
		if !high[p] {
			t.Errorf("high-recall strategies lost pair %s", p)
		}
	}
}
