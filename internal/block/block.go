// Package block provides blocking (indexing) strategies that restrict the
// pairwise record comparison space between two census datasets, avoiding the
// full cross product R_i × R_{i+1}.
//
// A blocking Strategy maps each record to one or more blocking keys; records
// from the two datasets that share a key become candidate pairs. Multiple
// strategies are combined as a union (multi-pass blocking), and every
// candidate pair is visited exactly once.
package block

import (
	"sort"
	"sync/atomic"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// KeyFunc derives the blocking keys of a record. The census year is passed
// so keys can be computed on time-shifted values such as the birth year.
// Returning no keys excludes the record from the pass.
type KeyFunc func(r *census.Record, year int) []string

// Strategy is a named blocking pass.
type Strategy struct {
	Name string
	Keys KeyFunc
}

// SurnameSoundex blocks on the Soundex code of the surname. It is the
// primary pass: surnames are the most stable high-selectivity attribute.
func SurnameSoundex() Strategy {
	return Strategy{
		Name: "surname-soundex",
		Keys: func(r *census.Record, _ int) []string {
			code := strsim.Soundex(r.Surname)
			if code == "" {
				return nil
			}
			return []string{"sn:" + code}
		},
	}
}

// FirstNameSoundexSex blocks on the Soundex code of the first name combined
// with sex. This pass recovers records whose surname changed between
// censuses (typically women at marriage).
func FirstNameSoundexSex() Strategy {
	return Strategy{
		Name: "firstname-soundex-sex",
		Keys: func(r *census.Record, _ int) []string {
			code := strsim.Soundex(r.FirstName)
			if code == "" {
				return nil
			}
			return []string{"fn:" + code + ":" + r.Sex.String()}
		},
	}
}

// BirthYearBand blocks on the estimated birth year (census year minus age)
// rounded into bands of the given width, emitting the band and its two
// neighbours so that small age-recording errors still collide.
func BirthYearBand(width int) Strategy {
	if width < 1 {
		width = 5
	}
	return Strategy{
		Name: "birthyear-band",
		Keys: func(r *census.Record, year int) []string {
			if r.Age == census.AgeMissing {
				return nil
			}
			birth := year - r.Age
			band := birth / width
			return []string{
				"by:" + itoa(band-1),
				"by:" + itoa(band),
				"by:" + itoa(band+1),
			}
		},
	}
}

// DefaultStrategies is the multi-pass configuration used by the linkage
// pipeline: a stable-surname pass plus a surname-change recovery pass.
func DefaultStrategies() []Strategy {
	return []Strategy{SurnameSoundex(), FirstNameSoundexSex()}
}

// CrossProduct is a degenerate strategy that puts every record into a single
// block. Only suitable for small datasets and tests.
func CrossProduct() Strategy {
	return Strategy{
		Name: "cross-product",
		Keys: func(*census.Record, int) []string { return []string{"all"} },
	}
}

// Index is a prebuilt blocking index over the records of the newer dataset.
// It stores dataset positions (int32) rather than record pointers so the
// iterative linkage loop can build it once per year-pair and filter the
// shrinking unlinked subset per δ-iteration instead of rebuilding it.
// It can be queried concurrently once built.
type Index struct {
	recs       []*census.Record
	strategies []Strategy
	byKey      []map[string][]int32 // one map per strategy; values are positions in recs
	generated  atomic.Int64         // raw key collisions across all Candidates calls
}

// Generated returns the raw number of candidate-pair hits the index has
// produced so far, before cross-strategy deduplication — the "blocking
// pairs generated" figure of the run report. Distinct pairs actually handed
// to comparison are counted by the caller; the difference measures how much
// the multi-pass strategies overlap. Safe for concurrent queries.
func (ix *Index) Generated() int64 { return ix.generated.Load() }

// NewIndex indexes the given records (of the dataset with the given census
// year) under every strategy.
func NewIndex(recs []*census.Record, year int, strategies []Strategy) *Index {
	ix := &Index{
		recs:       recs,
		strategies: strategies,
		byKey:      make([]map[string][]int32, len(strategies)),
	}
	for si, s := range strategies {
		m := make(map[string][]int32)
		for i, r := range recs {
			for _, k := range s.Keys(r, year) {
				m[k] = append(m[k], int32(i))
			}
		}
		ix.byKey[si] = m
	}
	return ix
}

// Len returns the number of indexed records.
func (ix *Index) Len() int { return len(ix.recs) }

// Record returns the indexed record at position i.
func (ix *Index) Record(i int32) *census.Record { return ix.recs[i] }

// Scratch is reusable per-worker query state for CandidateIndices. The
// epoch-stamp array replaces the per-call map clear of the old scratch map:
// bumping the epoch invalidates every previous stamp in O(1), so dedup
// state is reused across candidate calls without any reset loop.
type Scratch struct {
	stamp []int32
	epoch int32
	out   []int32
}

// reset prepares the scratch for an index of n records and starts a new
// dedup epoch.
func (sc *Scratch) reset(n int) {
	if len(sc.stamp) < n {
		sc.stamp = make([]int32, n)
		sc.epoch = 0
	}
	if sc.epoch == int32(^uint32(0)>>1) { // epoch overflow: hard reset
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	sc.out = sc.out[:0]
}

// CandidateIndices returns the positions of the distinct indexed records
// sharing at least one blocking key with record o (whose dataset has the
// given year), in ascending position order — the same order the pointer
// API returns records in. The returned slice aliases the scratch buffer
// and is only valid until the next call with the same Scratch.
func (ix *Index) CandidateIndices(o *census.Record, oldYear int, sc *Scratch) []int32 {
	if sc == nil {
		sc = &Scratch{}
	}
	sc.reset(len(ix.recs))
	raw := 0
	for si, s := range ix.strategies {
		for _, k := range s.Keys(o, oldYear) {
			for _, n := range ix.byKey[si][k] {
				raw++
				if sc.stamp[n] == sc.epoch {
					continue
				}
				sc.stamp[n] = sc.epoch
				sc.out = append(sc.out, n)
			}
		}
	}
	if raw > 0 {
		ix.generated.Add(int64(raw)) // one add per query, not per hit
	}
	sort.Slice(sc.out, func(i, j int) bool { return sc.out[i] < sc.out[j] })
	return sc.out
}

// Candidates returns the distinct indexed records sharing at least one
// blocking key with record o, ordered by their position in the indexed
// dataset. Convenience wrapper over CandidateIndices; the scratch, if
// non-nil, is reused across calls to avoid allocation in tight loops.
func (ix *Index) Candidates(o *census.Record, oldYear int, sc *Scratch) []*census.Record {
	idxs := ix.CandidateIndices(o, oldYear, sc)
	out := make([]*census.Record, len(idxs))
	for i, n := range idxs {
		out[i] = ix.recs[n]
	}
	return out
}

// Candidates enumerates the union of candidate pairs over all strategies and
// calls visit exactly once per distinct (old, new) record pair. Enumeration
// order is deterministic: old records in input order, and for each old
// record its candidates in new-input order.
func Candidates(old []*census.Record, oldYear int, new []*census.Record, newYear int,
	strategies []Strategy, visit func(o, n *census.Record)) {
	ix := NewIndex(new, newYear, strategies)
	var scratch Scratch
	for _, o := range old {
		for _, n := range ix.Candidates(o, oldYear, &scratch) {
			visit(o, n)
		}
	}
}

// CountPairs returns the number of distinct candidate pairs the strategies
// generate, for reduction-ratio reporting.
func CountPairs(old []*census.Record, oldYear int, new []*census.Record, newYear int, strategies []Strategy) int {
	n := 0
	Candidates(old, oldYear, new, newYear, strategies, func(_, _ *census.Record) { n++ })
	return n
}

// itoa is a minimal integer formatter (avoids strconv import for one use).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
