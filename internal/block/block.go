// Package block provides blocking (indexing) strategies that restrict the
// pairwise record comparison space between two census datasets, avoiding the
// full cross product R_i × R_{i+1}.
//
// A blocking Strategy maps each record to one or more blocking keys; records
// from the two datasets that share a key become candidate pairs. Multiple
// strategies are combined as a union (multi-pass blocking), and every
// candidate pair is visited exactly once.
package block

import (
	"sort"
	"sync/atomic"

	"censuslink/internal/census"
	"censuslink/internal/strsim"
)

// KeyFunc derives the blocking keys of a record. The census year is passed
// so keys can be computed on time-shifted values such as the birth year.
// Returning no keys excludes the record from the pass.
type KeyFunc func(r *census.Record, year int) []string

// Strategy is a named blocking pass.
type Strategy struct {
	Name string
	Keys KeyFunc
}

// SurnameSoundex blocks on the Soundex code of the surname. It is the
// primary pass: surnames are the most stable high-selectivity attribute.
func SurnameSoundex() Strategy {
	return Strategy{
		Name: "surname-soundex",
		Keys: func(r *census.Record, _ int) []string {
			code := strsim.Soundex(r.Surname)
			if code == "" {
				return nil
			}
			return []string{"sn:" + code}
		},
	}
}

// FirstNameSoundexSex blocks on the Soundex code of the first name combined
// with sex. This pass recovers records whose surname changed between
// censuses (typically women at marriage).
func FirstNameSoundexSex() Strategy {
	return Strategy{
		Name: "firstname-soundex-sex",
		Keys: func(r *census.Record, _ int) []string {
			code := strsim.Soundex(r.FirstName)
			if code == "" {
				return nil
			}
			return []string{"fn:" + code + ":" + r.Sex.String()}
		},
	}
}

// BirthYearBand blocks on the estimated birth year (census year minus age)
// rounded into bands of the given width, emitting the band and its two
// neighbours so that small age-recording errors still collide.
func BirthYearBand(width int) Strategy {
	if width < 1 {
		width = 5
	}
	return Strategy{
		Name: "birthyear-band",
		Keys: func(r *census.Record, year int) []string {
			if r.Age == census.AgeMissing {
				return nil
			}
			birth := year - r.Age
			band := birth / width
			return []string{
				"by:" + itoa(band-1),
				"by:" + itoa(band),
				"by:" + itoa(band+1),
			}
		},
	}
}

// DefaultStrategies is the multi-pass configuration used by the linkage
// pipeline: a stable-surname pass plus a surname-change recovery pass.
func DefaultStrategies() []Strategy {
	return []Strategy{SurnameSoundex(), FirstNameSoundexSex()}
}

// CrossProduct is a degenerate strategy that puts every record into a single
// block. Only suitable for small datasets and tests.
func CrossProduct() Strategy {
	return Strategy{
		Name: "cross-product",
		Keys: func(*census.Record, int) []string { return []string{"all"} },
	}
}

// Index is a prebuilt blocking index over the records of the newer dataset.
// It can be queried concurrently once built.
type Index struct {
	strategies []Strategy
	byKey      []map[string][]*census.Record // one map per strategy
	pos        map[string]int                // record ID -> dataset position
	generated  atomic.Int64                  // raw key collisions across all Candidates calls
}

// Generated returns the raw number of candidate-pair hits the index has
// produced so far, before cross-strategy deduplication — the "blocking
// pairs generated" figure of the run report. Distinct pairs actually handed
// to comparison are counted by the caller; the difference measures how much
// the multi-pass strategies overlap. Safe for concurrent queries.
func (ix *Index) Generated() int64 { return ix.generated.Load() }

// NewIndex indexes the given records (of the dataset with the given census
// year) under every strategy.
func NewIndex(recs []*census.Record, year int, strategies []Strategy) *Index {
	ix := &Index{
		strategies: strategies,
		byKey:      make([]map[string][]*census.Record, len(strategies)),
		pos:        make(map[string]int, len(recs)),
	}
	for i, r := range recs {
		ix.pos[r.ID] = i
	}
	for si, s := range strategies {
		m := make(map[string][]*census.Record)
		for _, r := range recs {
			for _, k := range s.Keys(r, year) {
				m[k] = append(m[k], r)
			}
		}
		ix.byKey[si] = m
	}
	return ix
}

// Candidates returns the distinct indexed records sharing at least one
// blocking key with record o (whose dataset has the given year), ordered by
// their position in the indexed dataset. The scratch map, if non-nil, is
// cleared and reused to avoid allocation in tight loops.
func (ix *Index) Candidates(o *census.Record, oldYear int, scratch map[string]struct{}) []*census.Record {
	if scratch == nil {
		scratch = make(map[string]struct{})
	} else {
		clear(scratch)
	}
	var out []*census.Record
	raw := 0
	for si, s := range ix.strategies {
		for _, k := range s.Keys(o, oldYear) {
			for _, n := range ix.byKey[si][k] {
				raw++
				if _, dup := scratch[n.ID]; dup {
					continue
				}
				scratch[n.ID] = struct{}{}
				out = append(out, n)
			}
		}
	}
	if raw > 0 {
		ix.generated.Add(int64(raw)) // one add per query, not per hit
	}
	sort.Slice(out, func(i, j int) bool { return ix.pos[out[i].ID] < ix.pos[out[j].ID] })
	return out
}

// Candidates enumerates the union of candidate pairs over all strategies and
// calls visit exactly once per distinct (old, new) record pair. Enumeration
// order is deterministic: old records in input order, and for each old
// record its candidates in new-input order.
func Candidates(old []*census.Record, oldYear int, new []*census.Record, newYear int,
	strategies []Strategy, visit func(o, n *census.Record)) {
	ix := NewIndex(new, newYear, strategies)
	scratch := make(map[string]struct{})
	for _, o := range old {
		for _, n := range ix.Candidates(o, oldYear, scratch) {
			visit(o, n)
		}
	}
}

// CountPairs returns the number of distinct candidate pairs the strategies
// generate, for reduction-ratio reporting.
func CountPairs(old []*census.Record, oldYear int, new []*census.Record, newYear int, strategies []Strategy) int {
	n := 0
	Candidates(old, oldYear, new, newYear, strategies, func(_, _ *census.Record) { n++ })
	return n
}

// itoa is a minimal integer formatter (avoids strconv import for one use).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
