package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"censuslink/internal/census"
	"censuslink/internal/linkage"
	"censuslink/internal/obs"
	"censuslink/internal/store"

	"censuslink/internal/server/api"
)

// flakyStore is a ResultStore + Ping whose medium can be switched off, for
// driving the degraded-mode state machine deterministically (a real
// unreadable directory cannot be simulated with permissions here, since
// tests run as root).
type flakyStore struct {
	mu      sync.Mutex
	failing bool
	saved   map[string]*linkage.Result
	saves   int
}

func newFlakyStore() *flakyStore {
	return &flakyStore{saved: make(map[string]*linkage.Result)}
}

func (f *flakyStore) fail(v bool) {
	f.mu.Lock()
	f.failing = v
	f.mu.Unlock()
}

func (f *flakyStore) key(cfgHash string, oldDS, newDS *census.Dataset) string {
	return fmt.Sprintf("%s|%d|%d", cfgHash, oldDS.Year, newDS.Year)
}

func (f *flakyStore) LoadResult(cfgHash string, oldDS, newDS *census.Dataset) (*linkage.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return nil, errors.New("flaky store: medium down")
	}
	return f.saved[f.key(cfgHash, oldDS, newDS)], nil
}

func (f *flakyStore) SaveResult(cfgHash string, oldDS, newDS *census.Dataset, res *linkage.Result) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return errors.New("flaky store: medium down")
	}
	f.saves++
	f.saved[f.key(cfgHash, oldDS, newDS)] = res
	return nil
}

func (f *flakyStore) Ping() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return errors.New("flaky store: medium down")
	}
	return nil
}

func (f *flakyStore) saveCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.saves
}

// TestDegradedModeServesAndRecovers walks the whole state machine: a down
// store degrades the server without taking /v1 down, write-throughs pause,
// /healthz and the gauge report it, and when the store answers again the
// server recovers on its own and flushes the results computed during the
// outage.
func TestDegradedModeServesAndRecovers(t *testing.T) {
	fs := newFlakyStore()
	fs.fail(true)
	cfg := testConfig(t)
	cfg.Store = fs
	stats := obs.NewStats(nil)
	cfg.Stats = stats
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm start hit the dead medium once per pair (2); one failed probe
	// more crosses storeDegradedAfter.
	if srv.health.isDegraded() {
		t.Fatal("degraded after warm start alone; threshold too low")
	}
	srv.cache.refreshOnce(context.Background())
	if !srv.health.isDegraded() {
		t.Fatalf("not degraded after %d consecutive failures", storeDegradedAfter)
	}

	// Serving continues from the pipeline; the write-through is skipped
	// rather than burning its retry budget against a dead medium.
	if status, body := get(t, ts, "/v1/links/1871/1881/records"); status != http.StatusOK {
		t.Fatalf("degraded /v1 query: status %d: %s", status, body)
	}
	if n := fs.saveCount(); n != 0 {
		t.Errorf("%d write-throughs while degraded, want 0", n)
	}

	var h struct {
		Status string `json:"status"`
		Store  string `json:"store"`
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" || h.Store != "degraded" {
		t.Errorf(`/healthz = {status %q, store %q}, want {"ok", "degraded"}`, h.Status, h.Store)
	}
	if _, body := get(t, ts, "/metrics"); !strings.Contains(string(body), "censuslink_store_degraded 1") {
		t.Error("/metrics does not report censuslink_store_degraded 1")
	}

	// Medium returns: the next probe recovers and flushes the outage's
	// computed pair into the store.
	fs.fail(false)
	srv.cache.refreshOnce(context.Background())
	if srv.health.isDegraded() {
		t.Fatal("still degraded after a successful probe")
	}
	if n := fs.saveCount(); n != 1 {
		t.Errorf("recovery flushed %d results, want 1", n)
	}
	if got := stats.Total(obs.StoreRecoveries); got != 1 {
		t.Errorf("store_recoveries = %d, want 1", got)
	}
	if got := stats.Total(obs.StoreIOErrors); got < int64(storeDegradedAfter) {
		t.Errorf("store_io_errors = %d, want >= %d", got, storeDegradedAfter)
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Store != "ok" {
		t.Errorf(`/healthz store = %q after recovery, want "ok"`, h.Store)
	}
	if _, body := get(t, ts, "/metrics"); !strings.Contains(string(body), "censuslink_store_degraded 0") {
		t.Error("/metrics does not report censuslink_store_degraded 0 after recovery")
	}
}

// TestReplicaRefreshSharesStore: two servers over one store directory are
// the read-replica deployment. The replica whose pipeline is forbidden to
// run must adopt, within a refresh interval, the snapshot its peer computed
// — and serve it.
func TestReplicaRefreshSharesStore(t *testing.T) {
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := testConfig(t)
	cfgA.Store = stA
	srvA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Abort()
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig(t)
	cfgB.Store = stB
	cfgB.StoreRefresh = 5 * time.Millisecond
	statsB := obs.NewStats(nil)
	cfgB.Stats = statsB
	cfgB.linkFn = func(ctx context.Context, old, new *census.Dataset, lc linkage.Config) (*linkage.Result, error) {
		t.Errorf("replica B computed %d-%d itself instead of adopting A's snapshot", old.Year, new.Year)
		return nil, errors.New("replica must not compute")
	}
	srvB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Abort()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	// A computes and persists the pair; B's refresh loop adopts it.
	if status, body := get(t, tsA, "/v1/links/1871/1881/records"); status != http.StatusOK {
		t.Fatalf("replica A: status %d: %s", status, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for statsB.Total(obs.StoreRefreshLoads) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica B never adopted A's snapshot from the shared store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var rl struct {
		Page api.Page `json:"page"`
	}
	getJSON(t, tsB, "/v1/links/1871/1881/records", &rl)
	if rl.Page.Total == 0 {
		t.Error("replica B served an empty adopted pair")
	}
}
