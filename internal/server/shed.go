package server

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"censuslink/internal/server/api"
)

// Load shedding: a server that accepts every request under overload serves
// none of them well. Two gates run ahead of the query handlers — a bounded
// in-flight cap that sheds excess concurrency with 503, and a per-client
// token bucket that throttles any single chatty client with 429 — both
// answering with the typed error envelope and a Retry-After hint, and both
// exempting /healthz and /metrics so the server stays observable while it
// sheds.

// maxTrackedClients caps the rate limiter's client table; beyond it, idle
// (fully refilled) buckets are evicted before new clients are admitted.
const maxTrackedClients = 8192

// tokenBuckets is a per-client token-bucket rate limiter. Each client key
// (the request's remote IP) owns a bucket of `burst` tokens refilled at
// `rate` tokens per second; a request spends one token or is rejected with
// the time until the next token.
type tokenBuckets struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	clients map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTokenBuckets builds a limiter; rate <= 0 disables limiting entirely
// (nil limiter). burst < 1 is clamped to 1 so a conforming client can
// always make progress.
func newTokenBuckets(rate float64, burst int) *tokenBuckets {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBuckets{
		rate:    rate,
		burst:   b,
		clients: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token of the client's bucket. When the bucket is empty
// it reports false plus how long until a token is available.
func (t *tokenBuckets) allow(key string) (ok bool, retryAfter time.Duration) {
	if t == nil {
		return true, 0
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.clients[key]
	if b == nil {
		if len(t.clients) >= maxTrackedClients {
			t.evictIdleLocked()
		}
		b = &bucket{tokens: t.burst, last: now}
		t.clients[key] = b
	} else {
		b.tokens = math.Min(t.burst, b.tokens+t.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / t.rate * float64(time.Second))
}

// evictIdleLocked drops every bucket that has fully refilled — a client
// idle long enough to be indistinguishable from a new one. If every bucket
// is active the table grows past the cap rather than punishing live
// clients.
func (t *tokenBuckets) evictIdleLocked() {
	now := t.now()
	for k, b := range t.clients {
		if math.Min(t.burst, b.tokens+t.rate*now.Sub(b.last).Seconds()) >= t.burst {
			delete(t.clients, k)
		}
	}
}

// clientKey identifies the requester for rate limiting: the remote IP
// without the ephemeral port, so one client's many connections share one
// bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterHeader renders a Retry-After value in whole seconds, at least 1
// — a 0 would invite an immediate retry storm.
func retryAfterHeader(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// api wraps a query handler with the two shedding gates ahead of the usual
// accounting. Infrastructure endpoints use counted directly and are never
// shed.
func (s *Server) api(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return s.counted(endpoint, func(w http.ResponseWriter, r *http.Request) {
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			s.requests.shed(endpoint, "rate_limit")
			w.Header().Set("Retry-After", retryAfterHeader(retry))
			api.Error(w, http.StatusTooManyRequests, api.CodeRateLimited,
				"per-client rate limit exceeded, slow down")
			return
		}
		if s.maxInFlight > 0 {
			if n := s.apiInflight.Add(1); n > int64(s.maxInFlight) {
				s.apiInflight.Add(-1)
				s.requests.shed(endpoint, "overload")
				w.Header().Set("Retry-After", "1")
				api.Error(w, http.StatusServiceUnavailable, api.CodeOverloaded,
					"server at capacity ("+strconv.Itoa(s.maxInFlight)+" requests in flight), retry later")
				return
			}
			defer s.apiInflight.Add(-1)
		}
		h(w, r)
	})
}
